//! Umbrella package for the oneDNN Graph Compiler reproduction.
//!
//! The real functionality lives in the workspace crates under `crates/`.
//! This package hosts the runnable examples (`examples/`) and the
//! cross-crate integration tests (`tests/`).

pub use gc_baseline as baseline;
pub use gc_core as compiler;
pub use gc_graph as graph;
pub use gc_machine as machine;
pub use gc_tensor as tensor;
