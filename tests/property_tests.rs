//! Property-based tests on the core invariants:
//!
//! - compiled execution ≡ reference for random matmul(+post-op) shapes;
//! - reorder round trips are identity for random layouts;
//! - quantization algebra (compensated int8 == dequantized f32);
//! - buffer reuse / tensor shrink never change results;
//! - the parameter heuristic always returns valid tilings;
//! - plan-time offset interval bounds contain every offset checked
//!   execution actually evaluates, over random loop nests with Div/Rem
//!   index arithmetic.

use gc_bench::workloads::{self, random_inputs, reference_eval};
use gc_core::{CompileOptions, Compiler};
use gc_graph::{BinaryKind, Graph, OpKind, UnaryKind};
use gc_lowering::{choose_params, Constraints, MatmulProblem};
use gc_machine::MachineDescriptor;
use gc_tensor::{reorder, DataType, Layout, QuantParams, Tensor, TensorDesc};
use proptest::prelude::*;

fn small_dim() -> impl Strategy<Value = usize> {
    // dims that exercise odd tilings without slowing the suite down
    prop_oneof![1usize..=8, Just(13), Just(16), Just(24), Just(31), Just(32)]
}

fn machine() -> MachineDescriptor {
    MachineDescriptor::xeon_8358()
}

fn compile_opts() -> CompileOptions {
    let mut o = CompileOptions::new(machine());
    o.threads = Some(1);
    o
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn compiled_matmul_matches_reference(
        m in small_dim(),
        n in small_dim(),
        k in small_dim(),
        relu in any::<bool>(),
        seed in 0u64..1000,
    ) {
        let mut g = Graph::new();
        let x = g.add_input(TensorDesc::new([m, k], DataType::F32), "x");
        let w = g.add_constant(Tensor::random(&[k, n], DataType::F32, seed), "w");
        let mut out = g.add_op(OpKind::MatMul, &[x, w]).unwrap();
        if relu {
            out = g.add_op(OpKind::Unary(UnaryKind::Relu), &[out]).unwrap();
        }
        g.mark_output(out);
        let inputs = random_inputs(&g, seed + 1);
        let want = reference_eval(&g, &inputs);
        let compiled = Compiler::new(compile_opts()).compile(g).unwrap();
        let (outs, _) = compiled.execute(&inputs).unwrap();
        for i in 0..want[0].desc().volume() {
            let a = outs[0].storage().get_as_f64(i);
            let b = want[0].storage().get_as_f64(i);
            prop_assert!((a - b).abs() < 1e-3, "elem {i}: {a} vs {b}");
        }
    }

    #[test]
    fn reorder_round_trip_is_identity(
        rows_t in 1usize..=6,
        cols_t in 1usize..=6,
        rb in 1usize..=4,
        cb in 1usize..=4,
        weight_layout in any::<bool>(),
        seed in 0u64..1000,
    ) {
        let shape = [rows_t * rb, cols_t * cb];
        let t = Tensor::random(&shape, DataType::F32, seed);
        let layout = if weight_layout {
            Layout::blocked_b(2, rb, cb)
        } else {
            Layout::blocked_a(2, rb, cb)
        };
        // blocked_b blocks (col, row): its factors apply to (k=rows, n=cols)
        let layout = if weight_layout {
            Layout::blocked_b(2, rb, cb) // kb = rb divides rows? blocked_b(rank, kb, nb)
        } else {
            layout
        };
        let shape_ok = if weight_layout {
            shape[0] % rb == 0 && shape[1] % cb == 0
        } else {
            true
        };
        prop_assume!(shape_ok);
        let blocked = reorder::reorder(&t, layout).unwrap();
        prop_assert!(blocked.allclose(&t, 0.0));
        let back = reorder::reorder(&blocked, Layout::Plain).unwrap();
        prop_assert_eq!(back.f32_slice().unwrap(), t.f32_slice().unwrap());
    }

    #[test]
    fn int8_compensation_matches_f32_path(
        m in 1usize..=12,
        n in 1usize..=12,
        k in 1usize..=24,
        a_zero in 0i32..=16,
        seed in 0u64..1000,
    ) {
        let a_q = QuantParams::new(0.05, a_zero);
        let g = |()| {
            let mut g = Graph::new();
            let a = g.add_input(TensorDesc::new([m, k], DataType::U8), "a");
            let b = g.add_constant(Tensor::random(&[k, n], DataType::I8, seed), "b");
            let af = g.add_op(OpKind::Dequantize { params: a_q }, &[a]).unwrap();
            let bf = g
                .add_op(
                    OpKind::Dequantize {
                        params: QuantParams::symmetric(0.1),
                    },
                    &[b],
                )
                .unwrap();
            let mm = g.add_op(OpKind::MatMul, &[af, bf]).unwrap();
            g.mark_output(mm);
            g
        };
        let g0 = g(());
        let inputs = random_inputs(&g0, seed + 7);
        let want = reference_eval(&g0, &inputs);
        let compiled = Compiler::new(compile_opts()).compile(g(())).unwrap();
        let (outs, _) = compiled.execute(&inputs).unwrap();
        for i in 0..want[0].desc().volume() {
            let a = outs[0].storage().get_as_f64(i);
            let b = want[0].storage().get_as_f64(i);
            prop_assert!((a - b).abs() < 1e-3, "elem {i}: {a} vs {b}");
        }
    }

    #[test]
    fn buffer_passes_never_change_results(
        m in small_dim(),
        n in small_dim(),
        seed in 0u64..1000,
    ) {
        let build = || workloads::mlp_f32(m.max(2) * 4, &[n.max(2) * 4, 16, 8], seed);
        let inputs = random_inputs(&build(), seed + 3);
        let run = |reuse: bool, shrink: bool| {
            let mut o = compile_opts();
            o.reuse_buffers = reuse;
            o.shrink_tensors = shrink;
            let c = Compiler::new(o).compile(build()).unwrap();
            let (outs, _) = c.execute(&inputs).unwrap();
            outs[0].f32_slice().unwrap().to_vec()
        };
        let base = run(false, false);
        prop_assert_eq!(run(true, false), base.clone());
        prop_assert_eq!(run(false, true), base.clone());
        prop_assert_eq!(run(true, true), base);
    }

    #[test]
    fn heuristic_always_returns_valid_params(
        m in 1usize..=512,
        n in 1usize..=512,
        k in 1usize..=512,
        batch in 1usize..=8,
        int8 in any::<bool>(),
        full_n in any::<bool>(),
    ) {
        let prob = MatmulProblem::batched(batch, m, n, k, if int8 { 1 } else { 4 });
        let c = Constraints {
            full_n_per_task: full_n,
            ..Constraints::default()
        };
        let p = choose_params(&machine(), &prob, &c);
        prop_assert!(p.validate(&prob).is_ok(), "{p:?} invalid for {prob:?}");
        if full_n {
            prop_assert_eq!(p.npn, 1);
        }
    }

    #[test]
    fn softmax_fusion_matches_reference(
        bh in 1usize..=4,
        rows in 2usize..=12,
        cols in 2usize..=12,
        seed in 0u64..1000,
    ) {
        // batched matmul + softmax: the split-reduction post-op path
        let build = || {
            let mut g = Graph::new();
            let a = g.add_input(TensorDesc::new([bh, rows, cols], DataType::F32), "a");
            let b = g.add_input(TensorDesc::new([bh, cols, rows], DataType::F32), "b");
            let mm = g.add_op(OpKind::MatMul, &[a, b]).unwrap();
            let sm = g.add_op(OpKind::Softmax, &[mm]).unwrap();
            g.mark_output(sm);
            g
        };
        let g0 = build();
        let inputs = random_inputs(&g0, seed);
        let want = reference_eval(&g0, &inputs);
        let compiled = Compiler::new(compile_opts()).compile(build()).unwrap();
        let (outs, _) = compiled.execute(&inputs).unwrap();
        for i in 0..want[0].desc().volume() {
            let a = outs[0].storage().get_as_f64(i);
            let b = want[0].storage().get_as_f64(i);
            prop_assert!((a - b).abs() < 1e-4, "elem {i}: {a} vs {b}");
        }
    }

    #[test]
    fn plan_offsets_stay_within_compile_time_bounds(
        e0 in 1usize..=4,
        e1 in 1usize..=4,
        e2 in 1usize..=4,
        depth in 1usize..=3,
        parallel in any::<bool>(),
        seed in 0u64..1_000_000,
    ) {
        // Random loop nest over a random index expression with Div/Rem
        // corners, executed three ways: validator (static), interpreter
        // (reference), and the compiled plan under checked execution.
        // If the plan builder's interval analysis under-approximated an
        // offset range, the checked executor panics naming the access;
        // if it mis-lowered the arithmetic, the bitwise compare fails.
        use gc_runtime::ThreadPool;
        use gc_tensor::Storage;
        use gc_tir::plan::{run_plan_call_opts, PlanScratch};
        use gc_tir::{
            compile_module, validate_module, BufDecl, BufId, Call, Expr, ExecOptions, Func,
            GlobalDecl, GlobalKind, Intrinsic, Module, Stmt, VarId, View,
        };

        const CAP: usize = 64;

        fn lcg(rng: &mut u64) -> u64 {
            *rng = rng
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            *rng >> 33
        }

        /// A random non-negative index expression over `vars` loop
        /// variables: Add/Mul of subexpressions, Div/Rem by positive
        /// constants — exactly the corners the interval analysis must
        /// bound conservatively.
        fn gen_expr(rng: &mut u64, vars: usize, depth: usize) -> Expr {
            if depth == 0 || lcg(rng).is_multiple_of(4) {
                return if vars > 0 && lcg(rng).is_multiple_of(2) {
                    Expr::v(VarId(lcg(rng) as usize % vars))
                } else {
                    Expr::c((lcg(rng) % 7) as i64)
                };
            }
            let a = gen_expr(rng, vars, depth - 1);
            match lcg(rng) % 4 {
                0 => a.add(gen_expr(rng, vars, depth - 1)),
                1 => a.mul(gen_expr(rng, vars, depth - 1)),
                2 => Expr::Div(Box::new(a), Box::new(Expr::c((lcg(rng) % 4 + 1) as i64))),
                _ => Expr::Rem(Box::new(a), Box::new(Expr::c((lcg(rng) % 4 + 1) as i64))),
            }
        }

        let extents = [e0, e1, e2][..depth].to_vec();
        let mut rng = seed.wrapping_mul(2654435761).wrapping_add(12345);
        let n_vars = extents.len();
        let cap_rem = |e: Expr| Expr::Rem(Box::new(e), Box::new(Expr::c(CAP as i64)));
        let src_off = cap_rem(gen_expr(&mut rng, n_vars, 3));
        let dst_off = cap_rem(gen_expr(&mut rng, n_vars, 3));
        let mut body = vec![Stmt::Op(Intrinsic::Unary {
            op: gc_microkernel::UnaryOp::Relu,
            src: View::new(BufId::Param(0), src_off, 1),
            dst: View::new(BufId::Param(1), dst_off, 1),
        })];
        for (i, &e) in extents.iter().enumerate().rev() {
            body = vec![Stmt::For {
                var: VarId(i),
                extent: e,
                parallel: parallel && i == 0,
                body,
            }];
        }
        let func = Func {
            name: "random_nest".into(),
            params: vec![
                BufDecl::new(DataType::F32, CAP, "in"),
                BufDecl::new(DataType::F32, CAP, "out"),
            ],
            locals: vec![],
            var_count: n_vars,
            body,
        };

        let mut m = Module::new();
        let g_in = m.add_global(GlobalDecl {
            dtype: DataType::F32,
            elems: CAP,
            kind: GlobalKind::Input(0),
            name: "x".into(),
        });
        let g_out = m.add_global(GlobalDecl {
            dtype: DataType::F32,
            elems: CAP,
            kind: GlobalKind::Output(0),
            name: "y".into(),
        });
        let f = m.add_func(func);
        m.main_calls.push(Call { func: f, args: vec![g_in, g_out] });

        // the validator must accept every generated program
        prop_assert!(
            validate_module(&m).is_ok(),
            "validator rejected a well-formed random nest: {:?}",
            validate_module(&m)
        );

        let plan = compile_module(&m, 1);
        prop_assert!(
            plan.func(f).is_some(),
            "plan builder rejected a bounded random nest (seed {seed})"
        );

        let pool = ThreadPool::new(1);
        let x: Vec<f32> = (0..CAP).map(|i| i as f32 - 31.5).collect();
        let mut interp_globals = vec![Storage::F32(x.clone()), Storage::F32(vec![0.0; CAP])];
        gc_tir::exec::run_calls(&m, &m.main_calls, &mut interp_globals, &pool);

        let mut plan_globals = vec![Storage::F32(x), Storage::F32(vec![0.0; CAP])];
        let mut scratch = PlanScratch::for_plan(&plan);
        run_plan_call_opts(
            &plan,
            f,
            &m.main_calls[0].args,
            &mut plan_globals,
            &pool,
            &mut scratch,
            ExecOptions::checked(),
        );

        match (&interp_globals[g_out], &plan_globals[g_out]) {
            (Storage::F32(a), Storage::F32(b)) => {
                for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
                    prop_assert!(
                        x.to_bits() == y.to_bits(),
                        "out[{i}]: interp {x} vs checked plan {y} (seed {seed})"
                    );
                }
            }
            _ => prop_assert!(false, "output storage dtype changed"),
        }
    }

    #[test]
    fn projection_is_deterministic(
        m in small_dim(),
        h in small_dim(),
        coarse in any::<bool>(),
        ragged in any::<bool>(),
        seed in 0u64..1000,
    ) {
        // The performance projector is the arbiter for every schedule
        // gate (merged-vs-split, ragged-vs-exact) and for measured
        // tuning, so it must be a pure function of the module: two
        // independent compiles of the same graph under the same options
        // must project bit-identically, and re-projecting the same
        // compiled partition must never drift.
        let build = || workloads::mlp_f32(m.max(2) * 4, &[h.max(2) * 4, 24, 8], seed);
        let opts = |()| {
            let mut o = compile_opts();
            o.coarse_fusion = coarse;
            o.ragged = ragged;
            o
        };
        let c1 = Compiler::new(opts(())).compile(build()).unwrap();
        let c2 = Compiler::new(opts(())).compile(build()).unwrap();
        let (p1, p1b, p2) = (c1.project(), c1.project(), c2.project());
        for (a, b) in [(&p1, &p1b), (&p1, &p2)] {
            prop_assert_eq!(a.cycles.to_bits(), b.cycles.to_bits());
            prop_assert_eq!(a.compute_cycles.to_bits(), b.compute_cycles.to_bits());
            prop_assert_eq!(a.memory_cycles.to_bits(), b.memory_cycles.to_bits());
            prop_assert_eq!(a.sync_cycles.to_bits(), b.sync_cycles.to_bits());
            prop_assert_eq!(a.dispatch_cycles.to_bits(), b.dispatch_cycles.to_bits());
            prop_assert_eq!(a.per_call.len(), b.per_call.len());
            for (x, y) in a.per_call.iter().zip(&b.per_call) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn scalar_binary_chain_matches(
        m in small_dim(),
        n in small_dim(),
        scale in 0.25f32..4.0,
        seed in 0u64..1000,
    ) {
        let build = || {
            let mut g = Graph::new();
            let x = g.add_input(TensorDesc::new([m, 8], DataType::F32), "x");
            let w = g.add_constant(Tensor::random(&[8, n], DataType::F32, seed), "w");
            let s = g.add_constant(Tensor::scalar_f32(scale), "s");
            let mm = g.add_op(OpKind::MatMul, &[x, w]).unwrap();
            let d = g.add_op(OpKind::Binary(BinaryKind::Div), &[mm, s]).unwrap();
            let t = g.add_op(OpKind::Unary(UnaryKind::Tanh), &[d]).unwrap();
            g.mark_output(t);
            g
        };
        let g0 = build();
        let inputs = random_inputs(&g0, seed + 11);
        let want = reference_eval(&g0, &inputs);
        let compiled = Compiler::new(compile_opts()).compile(build()).unwrap();
        let (outs, _) = compiled.execute(&inputs).unwrap();
        for i in 0..want[0].desc().volume() {
            let a = outs[0].storage().get_as_f64(i);
            let b = want[0].storage().get_as_f64(i);
            prop_assert!((a - b).abs() < 1e-4, "elem {i}: {a} vs {b}");
        }
    }
}
