//! Edge cases and failure injection through the public API: degenerate
//! shapes, saturation, shared weights, multi-output graphs, thread-count
//! independence, and the batchnorm/gelu decomposition paths end-to-end.

use gc_bench::workloads::{random_inputs, reference_eval};
use gc_core::{CompileOptions, Compiler};
use gc_graph::{BinaryKind, Graph, OpKind, UnaryKind};
use gc_machine::MachineDescriptor;
use gc_tensor::{DataType, QuantParams, Tensor, TensorDesc};

fn opts(threads: usize) -> CompileOptions {
    let mut o = CompileOptions::new(MachineDescriptor::xeon_8358());
    o.threads = Some(threads);
    o
}

fn assert_close_flat(got: &Tensor, want: &Tensor, tol: f64, label: &str) {
    let n = want.desc().volume();
    assert_eq!(got.desc().volume(), n, "{label}: volume");
    for i in 0..n {
        let a = got.storage().get_as_f64(i);
        let b = want.storage().get_as_f64(i);
        assert!((a - b).abs() <= tol, "{label} elem {i}: {a} vs {b}");
    }
}

#[test]
fn degenerate_matmul_shapes() {
    // 1x1x1 through to vectors: every degenerate corner must still tile
    for &(m, n, k) in &[
        (1usize, 1usize, 1usize),
        (1, 64, 64),
        (64, 1, 64),
        (64, 64, 1),
        (1, 1, 512),
        (2, 3, 5),
    ] {
        let mut g = Graph::new();
        let x = g.add_input(TensorDesc::new([m, k], DataType::F32), "x");
        let w = g.add_constant(Tensor::random(&[k, n], DataType::F32, 1), "w");
        let y = g.add_op(OpKind::MatMul, &[x, w]).unwrap();
        g.mark_output(y);
        let inputs = random_inputs(&g, 2);
        let want = reference_eval(&g, &inputs);
        let c = Compiler::new(opts(2)).compile(g).expect("compile");
        let (outs, _) = c.execute(&inputs).expect("exec");
        assert_close_flat(&outs[0], &want[0], 1e-3, &format!("{m}x{n}x{k}"));
    }
}

#[test]
fn batchnorm_inference_end_to_end() {
    let build = || {
        let mut g = Graph::new();
        let x = g.add_input(TensorDesc::new([16, 8], DataType::F32), "x");
        let w = g.add_constant(Tensor::random(&[8, 8], DataType::F32, 3), "w");
        let gamma = g.add_constant(Tensor::random(&[8], DataType::F32, 4), "gamma");
        let beta = g.add_constant(Tensor::random(&[8], DataType::F32, 5), "beta");
        let mean = g.add_constant(Tensor::random(&[8], DataType::F32, 6), "mean");
        // variance must be positive
        let var_vals: Vec<f32> = (0..8).map(|i| 0.5 + 0.1 * i as f32).collect();
        let var = g.add_constant(Tensor::from_vec_f32(&[8], var_vals).unwrap(), "var");
        let mm = g.add_op(OpKind::MatMul, &[x, w]).unwrap();
        let bn = g
            .add_op(
                OpKind::BatchNormInference { epsilon: 1e-5 },
                &[mm, gamma, beta, mean, var],
            )
            .unwrap();
        g.mark_output(bn);
        g
    };
    let inputs = random_inputs(&build(), 7);
    let want = reference_eval_batchnorm(&build(), &inputs);
    let c = Compiler::new(opts(1)).compile(build()).expect("compile");
    let (outs, _) = c.execute(&inputs).expect("exec");
    assert_close_flat(&outs[0], &want, 1e-4, "batchnorm");
    // batchnorm folds to scale+shift, fusable into the matmul
    assert_eq!(c.report().partitions, 1);
}

/// Manual reference for batchnorm (reference_eval rejects complex ops;
/// evaluate the formula directly).
fn reference_eval_batchnorm(g: &Graph, inputs: &[Tensor]) -> Tensor {
    use gc_tensor::reference as r;
    let x = &inputs[0];
    let consts: Vec<Tensor> = g
        .live_ops()
        .flat_map(|id| g.op(id).inputs.clone())
        .filter_map(|lt| g.const_value(lt).cloned())
        .collect();
    // order of constants added: w, gamma, beta, mean, var
    let (w, gamma, beta, mean, var) = (&consts[0], &consts[1], &consts[2], &consts[3], &consts[4]);
    let mm = r::matmul_f32(x, w).unwrap();
    let mut out = vec![0f32; mm.desc().volume()];
    let c = 8usize;
    let (gs, bs, ms, vs) = (
        gamma.f32_slice().unwrap(),
        beta.f32_slice().unwrap(),
        mean.f32_slice().unwrap(),
        var.f32_slice().unwrap(),
    );
    for (i, o) in out.iter_mut().enumerate() {
        let j = i % c;
        let v = mm.f32_slice().unwrap()[i];
        *o = gs[j] * (v - ms[j]) / (vs[j] + 1e-5).sqrt() + bs[j];
    }
    Tensor::from_vec_f32(mm.desc().shape(), out).unwrap()
}

#[test]
fn activation_zoo_end_to_end() {
    for act in [
        UnaryKind::Gelu,
        UnaryKind::Sigmoid,
        UnaryKind::Tanh,
        UnaryKind::Square,
    ] {
        let build = || {
            let mut g = Graph::new();
            let x = g.add_input(TensorDesc::new([8, 16], DataType::F32), "x");
            let w = g.add_constant(Tensor::random(&[16, 8], DataType::F32, 9), "w");
            let mm = g.add_op(OpKind::MatMul, &[x, w]).unwrap();
            let a = g.add_op(OpKind::Unary(act), &[mm]).unwrap();
            g.mark_output(a);
            g
        };
        let inputs = random_inputs(&build(), 10);
        let want = reference_eval(&build(), &inputs);
        let c = Compiler::new(opts(1)).compile(build()).expect("compile");
        let (outs, _) = c.execute(&inputs).expect("exec");
        assert_close_flat(&outs[0], &want[0], 1e-4, &format!("{act:?}"));
    }
}

#[test]
fn extreme_quantization_saturates_cleanly() {
    // output scale so small everything clamps to 0 or 255
    let mut g = Graph::new();
    let a = g.add_input(TensorDesc::new([8, 16], DataType::U8), "a");
    let w = g.add_constant(Tensor::random(&[16, 8], DataType::I8, 11), "w");
    let af = g
        .add_op(
            OpKind::Dequantize {
                params: QuantParams::new(1.0, 0),
            },
            &[a],
        )
        .unwrap();
    let wf = g
        .add_op(
            OpKind::Dequantize {
                params: QuantParams::symmetric(1.0),
            },
            &[w],
        )
        .unwrap();
    let mm = g.add_op(OpKind::MatMul, &[af, wf]).unwrap();
    let q = g
        .add_op(
            OpKind::Quantize {
                dtype: DataType::U8,
                params: QuantParams::new(1e-3, 128),
            },
            &[mm],
        )
        .unwrap();
    g.mark_output(q);
    let inputs = random_inputs(&g, 12);
    let want = reference_eval(&g, &inputs);
    let c = Compiler::new(opts(1)).compile(g).expect("compile");
    let (outs, _) = c.execute(&inputs).expect("exec");
    let got = outs[0].u8_slice().unwrap();
    let exp = want[0].u8_slice().unwrap();
    // saturated values must match exactly
    for (g_, e) in got.iter().zip(exp) {
        assert!((*g_ as i32 - *e as i32).abs() <= 1);
        if *e == 0 || *e == 255 {
            assert_eq!(g_, e, "saturation must be exact");
        }
    }
}

#[test]
fn shared_weight_prepacked_once() {
    // the same constant weight feeds two matmuls: prepack init work must
    // be memoized (one prepack func, not two)
    let mut g = Graph::new();
    let x1 = g.add_input(TensorDesc::new([8, 16], DataType::F32), "x1");
    let x2 = g.add_input(TensorDesc::new([8, 16], DataType::F32), "x2");
    let w = g.add_constant(Tensor::random(&[16, 16], DataType::F32, 13), "w");
    let y1 = g.add_op(OpKind::MatMul, &[x1, w]).unwrap();
    let y2 = g.add_op(OpKind::MatMul, &[x2, w]).unwrap();
    let s = g
        .add_op(OpKind::Binary(BinaryKind::Add), &[y1, y2])
        .unwrap();
    g.mark_output(s);
    let inputs = random_inputs(&g, 14);
    let want = reference_eval(&g, &inputs);
    let c = Compiler::new(opts(1)).compile(g).expect("compile");
    // both matmuls share shapes, so the heuristic picks the same
    // (kb, nb) and the memoized prepack is reused: exactly 1 init call
    assert_eq!(c.executable().module().init_calls.len(), 1);
    let (outs, _) = c.execute(&inputs).expect("exec");
    assert_close_flat(&outs[0], &want[0], 1e-3, "shared weight");
}

#[test]
fn multi_output_graph() {
    let mut g = Graph::new();
    let x = g.add_input(TensorDesc::new([8, 8], DataType::F32), "x");
    let w = g.add_constant(Tensor::random(&[8, 8], DataType::F32, 15), "w");
    let mm = g.add_op(OpKind::MatMul, &[x, w]).unwrap();
    let r = g.add_op(OpKind::Unary(UnaryKind::Relu), &[mm]).unwrap();
    g.mark_output(mm);
    g.mark_output(r);
    let inputs = random_inputs(&g, 16);
    let want = reference_eval(&g, &inputs);
    let c = Compiler::new(opts(1)).compile(g).expect("compile");
    let (outs, _) = c.execute(&inputs).expect("exec");
    assert_eq!(outs.len(), 2);
    assert_close_flat(&outs[0], &want[0], 1e-3, "out0");
    assert_close_flat(&outs[1], &want[1], 1e-3, "out1");
}

#[test]
fn thread_count_does_not_change_results() {
    let build = || gc_bench::workloads::mlp_f32(64, &gc_bench::workloads::mlp1_layers(), 17);
    let inputs = random_inputs(&build(), 18);
    let run = |threads: usize| {
        let c = Compiler::new(opts(threads))
            .compile(build())
            .expect("compile");
        let (outs, _) = c.execute(&inputs).expect("exec");
        outs[0].f32_slice().unwrap().to_vec()
    };
    let one = run(1);
    let four = run(4);
    assert_eq!(one, four, "results must be thread-count independent");
}

#[test]
fn input_aliased_as_output_is_rejected() {
    let mut g = Graph::new();
    let x = g.add_input(TensorDesc::new([4, 4], DataType::F32), "x");
    let w = g.add_constant(Tensor::random(&[4, 4], DataType::F32, 19), "w");
    let y = g.add_op(OpKind::MatMul, &[x, w]).unwrap();
    g.mark_output(y);
    g.mark_output(x); // also expose the raw input
    let err = Compiler::new(opts(1)).compile(g).unwrap_err();
    assert!(err.to_string().contains("also a graph input"), "{err}");
}

#[test]
fn residual_connection_same_tensor_twice() {
    // y = matmul(x, w) + x_row: the same input feeds the matmul and a
    // fused binary post-op (duplicate global in one call)
    let mut g = Graph::new();
    let x = g.add_input(TensorDesc::new([8, 8], DataType::F32), "x");
    let row = g.add_input(TensorDesc::new([8], DataType::F32), "row");
    let w = g.add_constant(Tensor::random(&[8, 8], DataType::F32, 20), "w");
    let mm = g.add_op(OpKind::MatMul, &[x, w]).unwrap();
    let s = g
        .add_op(OpKind::Binary(BinaryKind::Add), &[mm, row])
        .unwrap();
    // also divide by the SAME row vector, so `row` binds to two params
    let d = g
        .add_op(OpKind::Binary(BinaryKind::Div), &[s, row])
        .unwrap();
    g.mark_output(d);
    let mut inputs = random_inputs(&g, 21);
    // avoid division near zero
    {
        let v = inputs[1].make_mut().as_mut_slice::<f32>().unwrap();
        for x in v.iter_mut() {
            *x = x.abs() + 1.0;
        }
    }
    let want = reference_eval(&g, &inputs);
    let c = Compiler::new(opts(2)).compile(g).expect("compile");
    let (outs, _) = c.execute(&inputs).expect("exec");
    assert_close_flat(&outs[0], &want[0], 1e-4, "residual");
}

#[test]
fn rank3_and_rank2_matmuls_in_one_graph() {
    let mut g = Graph::new();
    let a = g.add_input(TensorDesc::new([2, 8, 8], DataType::F32), "a");
    let b = g.add_input(TensorDesc::new([2, 8, 8], DataType::F32), "b");
    let bmm = g.add_op(OpKind::MatMul, &[a, b]).unwrap();
    g.mark_output(bmm);
    let x = g.add_input(TensorDesc::new([4, 8], DataType::F32), "x");
    let w = g.add_constant(Tensor::random(&[8, 4], DataType::F32, 22), "w");
    let mm = g.add_op(OpKind::MatMul, &[x, w]).unwrap();
    g.mark_output(mm);
    let inputs = random_inputs(&g, 23);
    let want = reference_eval(&g, &inputs);
    let c = Compiler::new(opts(1)).compile(g).expect("compile");
    let (outs, _) = c.execute(&inputs).expect("exec");
    assert_close_flat(&outs[0], &want[0], 1e-4, "bmm");
    assert_close_flat(&outs[1], &want[1], 1e-4, "mm");
}
