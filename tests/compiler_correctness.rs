//! End-to-end correctness: compiled executions vs the naive reference,
//! across shapes, precisions, and optimization settings.

use gc_bench::workloads::{
    self, mha_configs, mlp1_layers, mlp_f32, mlp_int8, random_inputs, reference_eval, MhaConfig,
};
use gc_core::{CompileOptions, CompiledPartition, Compiler};
use gc_machine::MachineDescriptor;
use gc_tensor::{DataType, Tensor, TensorDesc};

fn opts() -> CompileOptions {
    let mut o = CompileOptions::new(MachineDescriptor::xeon_8358());
    o.threads = Some(2);
    o
}

fn compile_with(o: CompileOptions, g: gc_graph::Graph) -> CompiledPartition {
    Compiler::new(o).compile(g).expect("compile")
}

fn assert_close(got: &Tensor, want: &Tensor, tol: f64, label: &str) {
    assert_eq!(
        got.desc().volume(),
        want.desc().volume(),
        "{label}: volume mismatch"
    );
    // compiled outputs come back flat; compare element streams
    let n = want.desc().volume();
    let mut worst = 0f64;
    for i in 0..n {
        let a = got.storage().get_as_f64(i);
        let b = want.storage().get_as_f64(i);
        worst = worst.max((a - b).abs());
    }
    assert!(worst <= tol, "{label}: max diff {worst} > {tol}");
}

#[test]
fn single_matmul_f32_many_shapes() {
    for &(m, n, k) in &[
        (4usize, 4usize, 4usize),
        (32, 512, 13),
        (64, 256, 512),
        (16, 48, 96),
        (32, 1, 256),
        (8, 7, 5),
    ] {
        let g = workloads::single_matmul(m, n, k, workloads::Precision::F32, 1);
        let inputs = random_inputs(&g, 9);
        let want = reference_eval(&g, &inputs);
        let compiled = compile_with(opts(), g);
        let (outs, _) = compiled.execute(&inputs).expect("exec");
        assert_close(&outs[0], &want[0], 1e-3, &format!("matmul {m}x{n}x{k}"));
    }
}

#[test]
fn single_matmul_int8_matches_reference_pipeline() {
    for &(m, n, k) in &[(32usize, 64usize, 16usize), (32, 512, 13), (64, 128, 256)] {
        let g = workloads::single_matmul(m, n, k, workloads::Precision::Int8, 2);
        let inputs = random_inputs(&g, 11);
        // reference runs the *unconverted* graph (dequant -> f32 matmul
        // -> quantize); the compiled path uses the int8 rewrite. They
        // must agree to within one quantization step.
        let want = reference_eval(&g, &inputs);
        let compiled = compile_with(opts(), g);
        let (outs, _) = compiled.execute(&inputs).expect("exec");
        let n_el = want[0].desc().volume();
        let mut worst = 0i64;
        for i in 0..n_el {
            let a = outs[0].storage().get_as_f64(i) as i64;
            let b = want[0].storage().get_as_f64(i) as i64;
            worst = worst.max((a - b).abs());
        }
        assert!(worst <= 1, "int8 {m}x{n}x{k}: worst quant diff {worst}");
    }
}

#[test]
fn mlp1_f32_all_settings_agree_with_reference() {
    let g0 = mlp_f32(32, &mlp1_layers(), 3);
    let inputs = random_inputs(&g0, 5);
    let want = reference_eval(&g0, &inputs);
    let machine = MachineDescriptor::xeon_8358();

    let settings: Vec<(&str, CompileOptions)> = vec![
        ("full", opts()),
        ("no-coarse", {
            let mut o = CompileOptions::without_coarse_fusion(machine.clone());
            o.threads = Some(2);
            o
        }),
        ("unfused", {
            let mut o = CompileOptions::unfused(machine.clone());
            o.threads = Some(2);
            o
        }),
        ("no-layout-prop", {
            let mut o = opts();
            o.propagate_layouts = false;
            o
        }),
        ("no-reuse-no-shrink", {
            let mut o = opts();
            o.reuse_buffers = false;
            o.shrink_tensors = false;
            o
        }),
    ];
    for (name, o) in settings {
        let g = mlp_f32(32, &mlp1_layers(), 3);
        let compiled = compile_with(o, g);
        let (outs, _) = compiled.execute(&inputs).expect("exec");
        assert_close(&outs[0], &want[0], 1e-2, name);
    }
}

#[test]
fn mlp1_f32_larger_batches() {
    for batch in [64usize, 128] {
        let g = mlp_f32(batch, &mlp1_layers(), 4);
        let inputs = random_inputs(&g, 6);
        let want = reference_eval(&g, &inputs);
        let compiled = compile_with(opts(), g);
        let (outs, _) = compiled.execute(&inputs).expect("exec");
        assert_close(&outs[0], &want[0], 1e-2, &format!("mlp1 b{batch}"));
    }
}

#[test]
fn mlp_int8_full_pipeline() {
    let g0 = mlp_int8(32, &mlp1_layers(), 7);
    let inputs = random_inputs(&g0, 8);
    let want = reference_eval(&g0, &inputs);
    let compiled = compile_with(opts(), mlp_int8(32, &mlp1_layers(), 7));
    let (outs, _) = compiled.execute(&inputs).expect("exec");
    // int8 chains accumulate rounding: allow a few quantization steps
    let n = want[0].desc().volume();
    let mut worst = 0i64;
    for i in 0..n {
        let a = outs[0].storage().get_as_f64(i) as i64;
        let b = want[0].storage().get_as_f64(i) as i64;
        worst = worst.max((a - b).abs());
    }
    assert!(worst <= 3, "int8 MLP worst diff {worst} quant steps");
}

fn tiny_mha() -> MhaConfig {
    MhaConfig {
        name: "tiny",
        seq: 16,
        hidden: 64,
        heads: 4,
    }
}

#[test]
fn mha_f32_matches_reference() {
    let (g0, _) = workloads::mha_f32(2, &tiny_mha());
    let inputs = random_inputs(&g0, 13);
    let want = reference_eval(&g0, &inputs);
    let (g, _) = workloads::mha_f32(2, &tiny_mha());
    let compiled = compile_with(opts(), g);
    let (outs, _) = compiled.execute(&inputs).expect("exec");
    assert_close(&outs[0], &want[0], 1e-3, "mha tiny");
}

#[test]
fn mha_f32_real_config_small_batch() {
    let cfg = mha_configs()[0]; // seq 128, hidden 768, heads 8
    let (g0, _) = workloads::mha_f32(1, &cfg);
    let inputs = random_inputs(&g0, 17);
    let want = reference_eval(&g0, &inputs);
    let (g, _) = workloads::mha_f32(1, &cfg);
    let compiled = compile_with(opts(), g);
    let (outs, _) = compiled.execute(&inputs).expect("exec");
    assert_close(&outs[0], &want[0], 5e-2, "mha_1 b1");
}

#[test]
fn mha_f32_no_coarse_fusion_agrees() {
    let (g0, _) = workloads::mha_f32(2, &tiny_mha());
    let inputs = random_inputs(&g0, 19);
    let want = reference_eval(&g0, &inputs);
    let mut o = CompileOptions::without_coarse_fusion(MachineDescriptor::xeon_8358());
    o.threads = Some(2);
    let (g, _) = workloads::mha_f32(2, &tiny_mha());
    let compiled = compile_with(o, g);
    let (outs, _) = compiled.execute(&inputs).expect("exec");
    assert_close(&outs[0], &want[0], 1e-3, "mha no-coarse");
}

#[test]
fn mha_int8_runs_and_is_close() {
    let (g0, _) = workloads::mha_int8(2, &tiny_mha());
    let inputs = random_inputs(&g0, 23);
    let want = reference_eval(&g0, &inputs);
    let (g, _) = workloads::mha_int8(2, &tiny_mha());
    let compiled = compile_with(opts(), g);
    let (outs, _) = compiled.execute(&inputs).expect("exec");
    // attention outputs are weighted averages of dequantized int8 V
    // values; everything is O(1), so absolute tolerance works
    assert_close(&outs[0], &want[0], 0.15, "mha int8");
}

#[test]
fn compiled_partition_is_reusable_and_init_runs_once() {
    let g = mlp_f32(32, &mlp1_layers(), 31);
    let inputs = random_inputs(&g, 37);
    let want = reference_eval(&g, &inputs);
    let compiled = compile_with(opts(), mlp_f32(32, &mlp1_layers(), 31));
    for _ in 0..3 {
        let (outs, _) = compiled.execute(&inputs).expect("exec");
        assert_close(&outs[0], &want[0], 1e-2, "repeat exec");
    }
    assert_eq!(compiled.executable().init_runs(), 1);
}

#[test]
fn report_reflects_fusion_decisions() {
    let compiled = compile_with(opts(), mlp_f32(512, &mlp1_layers(), 41));
    let r = compiled.report();
    assert_eq!(r.partitions, 3, "3 fused matmuls");
    assert!(r.fused_post_ops >= 2, "two relus fused");
    assert_eq!(r.merged_groups, 1, "MLP chain merges into one group");

    let mut o = CompileOptions::without_coarse_fusion(MachineDescriptor::xeon_8358());
    o.threads = Some(1);
    let nc = compile_with(o, mlp_f32(128, &mlp1_layers(), 41));
    assert_eq!(nc.report().merged_groups, 0);
}

/// The phase-2 partial-accumulator fold (`add.f32.acc` / `add.i32.acc`)
/// only appears in k-sliced lowerings, so its presence in a compiled
/// module pins template selection end-to-end.
fn has_acc_add(m: &gc_tir::Module) -> bool {
    fn in_stmts(stmts: &[gc_tir::Stmt]) -> bool {
        stmts.iter().any(|s| match s {
            gc_tir::Stmt::For { body, .. } => in_stmts(body),
            gc_tir::Stmt::Op(i) => matches!(
                i,
                gc_tir::Intrinsic::AddF32 { .. } | gc_tir::Intrinsic::AddI32 { .. }
            ),
        })
    }
    m.funcs.iter().any(|f| in_stmts(&f.body))
}

/// A small-batch, deep-reduction matmul on a wide pool: 16x64 rows/cols
/// block into at most `4 x 4 = 16` M x N tasks, which underfills a
/// 128-core pool eightfold, so the tunable-config search must pick the
/// k-sliced template (it chooses `kpn = 16`, putting 256 workers on the
/// reduction). The lowered module must carry the phase-2 accumulator
/// fold, validate, and match the reference; disabling the `k_slice`
/// knob must both remove the reduction phase and leave results
/// unchanged.
#[test]
fn underfilled_pool_selects_k_sliced_template() {
    let mut machine = MachineDescriptor::xeon_8358();
    machine.cores = 128;
    let build = || workloads::single_matmul(16, 64, 8192, workloads::Precision::F32, 51);

    let g = build();
    let inputs = random_inputs(&g, 53);
    let want = reference_eval(&g, &inputs);

    let mut o = CompileOptions::new(machine.clone());
    o.threads = Some(2);
    let sliced = compile_with(o.clone(), build());
    assert!(
        has_acc_add(sliced.executable().module()),
        "16x64x8192 on a 128-core pool must lower k-sliced"
    );
    gc_tir::validate_module(sliced.executable().module())
        .expect("k-sliced reduction nests must pass the TIR validator");
    let (outs, _) = sliced.execute(&inputs).expect("exec sliced");
    assert_close(&outs[0], &want[0], 1e-1, "k-sliced deep-K matmul");

    o.k_slice = false;
    let plain = compile_with(o, build());
    assert!(
        !has_acc_add(plain.executable().module()),
        "k_slice = false must keep the unsliced template"
    );
    let (outs, _) = plain.execute(&inputs).expect("exec plain");
    assert_close(&outs[0], &want[0], 1e-1, "unsliced deep-K matmul");
}

/// Small-batch MLP_1 at the default 32-core machine: the cost model
/// keeps the free (split) schedules, which fill the pool by
/// N-shattering, so the end-to-end module must stay unsliced — and must
/// still match the reference with the knob on. This pins the selection
/// boundary from the other side: k-slicing is a targeted template, not
/// a default.
#[test]
fn small_batch_mlp_stays_unsliced_on_narrow_pool() {
    let g = mlp_f32(16, &mlp1_layers(), 51);
    let inputs = random_inputs(&g, 53);
    let want = reference_eval(&g, &inputs);

    let compiled = compile_with(opts(), mlp_f32(16, &mlp1_layers(), 51));
    assert!(
        !has_acc_add(compiled.executable().module()),
        "MLP_1 b=16 at 32 cores: free N-shattered schedules fill the pool"
    );
    let (outs, _) = compiled.execute(&inputs).expect("exec");
    assert_close(&outs[0], &want[0], 1e-2, "MLP_1 b=16 default pipeline");
}

#[test]
fn rectangular_and_degenerate_shapes() {
    // n = 1 (DLRM final layer), k prime
    for &(m, n, k) in &[(32usize, 1usize, 256usize), (64, 16, 479), (16, 31, 7)] {
        let g = workloads::single_matmul(m, n, k, workloads::Precision::F32, 43);
        let inputs = random_inputs(&g, 47);
        let want = reference_eval(&g, &inputs);
        let compiled = compile_with(opts(), g);
        let (outs, _) = compiled.execute(&inputs).expect("exec");
        assert_close(&outs[0], &want[0], 1e-3, &format!("edge {m}x{n}x{k}"));
    }
}

#[test]
fn matmul_with_bias_and_gelu_chain() {
    use gc_graph::{BinaryKind, OpKind, UnaryKind};
    let mut g = gc_graph::Graph::new();
    let x = g.add_input(TensorDesc::new([32, 64], DataType::F32), "x");
    let w = g.add_constant(Tensor::random(&[64, 48], DataType::F32, 51), "w");
    let b = g.add_constant(Tensor::random(&[48], DataType::F32, 53), "b");
    let mm = g.add_op(OpKind::MatMul, &[x, w]).unwrap();
    let biased = g.add_op(OpKind::Binary(BinaryKind::Add), &[mm, b]).unwrap();
    let act = g.add_op(OpKind::Unary(UnaryKind::Gelu), &[biased]).unwrap();
    g.mark_output(act);
    let inputs = random_inputs(&g, 55);
    let want = reference_eval(&g, &inputs);
    let compiled = compile_with(opts(), g);
    let (outs, _) = compiled.execute(&inputs).expect("exec");
    assert_close(&outs[0], &want[0], 1e-3, "bias+gelu");
}
