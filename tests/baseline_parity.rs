//! The primitives baseline must produce the same results as the
//! compiler and the reference — and exhibit the capability envelope the
//! paper describes (per-primitive dispatch, no softmax fusion).

use gc_baseline::{Baseline, BaselineOptions};
use gc_bench::workloads::{self, random_inputs, reference_eval, MhaConfig};
use gc_machine::MachineDescriptor;

fn baseline() -> Baseline {
    let mut o = BaselineOptions::new(MachineDescriptor::xeon_8358());
    o.threads = Some(2);
    Baseline::new(o)
}

fn assert_close_flat(got: &gc_tensor::Tensor, want: &gc_tensor::Tensor, tol: f64, label: &str) {
    let n = want.desc().volume();
    assert_eq!(got.desc().volume(), n, "{label}");
    for i in 0..n {
        let a = got.storage().get_as_f64(i);
        let b = want.storage().get_as_f64(i);
        assert!((a - b).abs() <= tol, "{label} elem {i}: {a} vs {b}");
    }
}

#[test]
fn baseline_mlp_f32_matches_reference() {
    let build = || workloads::mlp_f32(64, &workloads::mlp1_layers(), 3);
    let inputs = random_inputs(&build(), 5);
    let want = reference_eval(&build(), &inputs);
    let exe = baseline().build(build()).expect("build");
    let (outs, _) = exe.execute(&inputs).expect("exec");
    assert_close_flat(&outs[0], &want[0], 1e-2, "baseline mlp f32");
}

#[test]
fn baseline_mlp_int8_matches_reference() {
    let build = || workloads::mlp_int8(32, &workloads::mlp1_layers(), 7);
    let inputs = random_inputs(&build(), 9);
    let want = reference_eval(&build(), &inputs);
    let exe = baseline().build(build()).expect("build");
    let (outs, _) = exe.execute(&inputs).expect("exec");
    assert_close_flat(&outs[0], &want[0], 3.0, "baseline mlp int8");
}

#[test]
fn baseline_mha_matches_reference() {
    let cfg = MhaConfig {
        name: "tiny",
        seq: 16,
        hidden: 64,
        heads: 4,
    };
    let build = || workloads::mha_f32(2, &cfg).0;
    let inputs = random_inputs(&build(), 11);
    let want = reference_eval(&build(), &inputs);
    let exe = baseline().build(build()).expect("build");
    let (outs, _) = exe.execute(&inputs).expect("exec");
    assert_close_flat(&outs[0], &want[0], 1e-3, "baseline mha");
}

#[test]
fn baseline_dispatches_once_per_primitive() {
    // MLP_1: three matmul primitives (relu folded as post-op attr)
    let exe = baseline()
        .build(workloads::mlp_f32(64, &workloads::mlp1_layers(), 3))
        .expect("build");
    assert_eq!(exe.primitive_count(), 3);
    assert_eq!(exe.executable().dispatch_count(), 3);
}

#[test]
fn baseline_does_not_fuse_softmax() {
    // MHA: 2 batch matmuls + decomposed softmax chain + scale/mask ops
    // all dispatched separately — far more primitives than the
    // compiler's 2 partitions.
    let cfg = MhaConfig {
        name: "tiny",
        seq: 16,
        hidden: 64,
        heads: 4,
    };
    let exe = baseline()
        .build(workloads::mha_f32(2, &cfg).0)
        .expect("build");
    assert!(
        exe.primitive_count() >= 6,
        "softmax must stay unfused; got {} primitives",
        exe.primitive_count()
    );
}

#[test]
fn baseline_weight_prepack_cached_across_runs() {
    let build = || workloads::mlp_f32(64, &workloads::mlp1_layers(), 3);
    let inputs = random_inputs(&build(), 5);
    let exe = baseline().build(build()).expect("build");
    let (_, first) = exe.execute(&inputs).expect("exec");
    let (_, second) = exe.execute(&inputs).expect("exec");
    assert!(first.init_wall > std::time::Duration::ZERO);
    assert_eq!(second.init_wall, std::time::Duration::ZERO);
    assert_eq!(exe.executable().init_runs(), 1);
}

#[test]
fn baseline_projection_charges_per_primitive_dispatch() {
    let machine = MachineDescriptor::xeon_8358();
    let exe = baseline()
        .build(workloads::mlp_f32(64, &workloads::mlp1_layers(), 3))
        .expect("build");
    let proj = exe.project();
    let per = gc_machine::cost::dispatch_cycles(&machine);
    assert!((proj.dispatch_cycles - 3.0 * per).abs() < 1e-6);
}
