//! Differential tests for the KV-cache decode subsystem.
//!
//! The property under test: decoding *incrementally* — one token per
//! `decode_step`, through gc-serve's continuous-batching scheduler,
//! with the cache growing across capacity buckets — produces the same
//! attention outputs as a *full-prefill recompute*, where at every
//! position the whole cache is rebuilt from scratch and one masked
//! attention step runs over it. Any bug in the cache append path, the
//! mask construction, bucket growth, or the batch gather/scatter shows
//! up as a divergence between the two.
//!
//! Tolerances follow the engine's own precision contract: f32 decode
//! matches within 1e-5 (same math, potentially different compiled
//! schedules), int8 decode matches *bit-for-bit* (integer kernels are
//! deterministic, and the f32 epilogue of identical integer inputs is
//! identical).

use gc_bench::workloads;
use gc_core::{CompileOptions, Compiler};
use gc_serve::decode::MASKED;
use gc_serve::{DecodeConfig, DecodeModel, PlanCache, ServeError};
use gc_tensor::{DataType, Storage, Tensor, TensorDesc};
use gc_tir::InitCache;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

fn opts() -> CompileOptions {
    CompileOptions {
        threads: Some(2),
        ..CompileOptions::default()
    }
}

fn config(min_cap: usize, max_cap: usize) -> DecodeConfig {
    DecodeConfig {
        compile: opts(),
        min_capacity: min_cap,
        max_capacity: max_cap,
        max_delay: Duration::from_micros(200),
        // Private caches: differential runs must not be contaminated
        // by (or pollute) other tests' process-wide cache state.
        plan_cache: Some(Arc::new(PlanCache::new())),
        init_cache: Some(Arc::new(InitCache::new())),
        ..DecodeConfig::default()
    }
}

/// The capacity bucket a session of length `len` occupies: caches
/// start at `min_cap` and double when full.
fn bucket_cap(len: usize, min_cap: usize) -> usize {
    len.next_power_of_two().max(min_cap)
}

/// Copy `n` same-dtype elements between flat storages.
fn copy(src: &Storage, src_off: usize, dst: &mut Storage, dst_off: usize, n: usize) {
    match (src, dst) {
        (Storage::F32(s), Storage::F32(d)) => {
            d[dst_off..dst_off + n].copy_from_slice(&s[src_off..src_off + n]);
        }
        (Storage::I8(s), Storage::I8(d)) => {
            d[dst_off..dst_off + n].copy_from_slice(&s[src_off..src_off + n]);
        }
        (Storage::U8(s), Storage::U8(d)) => {
            d[dst_off..dst_off + n].copy_from_slice(&s[src_off..src_off + n]);
        }
        _ => panic!("dtype mismatch in test copy"),
    }
}

/// Build a `[heads, cap, d]` cache from per-step rows (`[heads, 1, d]`
/// each), zero past `rows.len()` — the prefill side of the diff.
fn prefill_cache(rows: &[Tensor], heads: usize, cap: usize, d: usize) -> Tensor {
    let dtype = rows[0].desc().dtype();
    let mut st = Storage::zeros(dtype, heads * cap * d);
    for (j, r) in rows.iter().enumerate() {
        for h in 0..heads {
            copy(r.storage(), h * d, &mut st, h * cap * d + j * d, d);
        }
    }
    Tensor::from_parts(TensorDesc::new([heads, cap, d], dtype), st).unwrap()
}

/// `[heads, 1, cap]` mask admitting positions `0..len`.
fn mask(heads: usize, cap: usize, len: usize) -> Tensor {
    let mut m = vec![0f32; heads * cap];
    for h in 0..heads {
        for j in len..cap {
            m[h * cap + j] = MASKED;
        }
    }
    Tensor::from_vec_f32(&[heads, 1, cap], m).unwrap()
}

fn max_rel_err(got: &Tensor, want: &Tensor) -> f32 {
    got.f32_slice()
        .unwrap()
        .iter()
        .zip(want.f32_slice().unwrap())
        .map(|(g, w)| (g - w).abs() / w.abs().max(1.0))
        .fold(0.0, f32::max)
}

/// Run `steps` incremental decode steps through a model and return
/// `(q_rows, k_rows, v_rows, outputs)`.
type Trace = (Vec<Tensor>, Vec<Tensor>, Vec<Tensor>, Vec<Tensor>);

fn decode_trace(
    model: &DecodeModel,
    heads: usize,
    d: usize,
    q_dtype: DataType,
    kv_dtype: DataType,
    steps: usize,
    seed: u64,
) -> Trace {
    let session = model.session().unwrap();
    let (mut qs, mut ks, mut vs, mut outs) = (vec![], vec![], vec![], vec![]);
    for t in 0..steps as u64 {
        let q = Tensor::random(&[heads, 1, d], q_dtype, seed * 1000 + t);
        let k = Tensor::random(&[heads, 1, d], kv_dtype, seed * 1000 + 300 + t);
        let v = Tensor::random(&[heads, 1, d], kv_dtype, seed * 1000 + 600 + t);
        let out = session.decode_step(&q, &k, &v).unwrap().wait().unwrap();
        qs.push(q);
        ks.push(k);
        vs.push(v);
        outs.push(out);
    }
    (qs, ks, vs, outs)
}

/// For every position `t`, recompute attention from a full prefill of
/// the cache at `t`'s capacity bucket and compare against the
/// incremental output via `check(t, incremental, prefill)`.
fn diff_against_prefill(
    builder: impl Fn(usize, usize) -> gc_graph::Graph,
    trace: &Trace,
    heads: usize,
    d: usize,
    min_cap: usize,
    check: impl Fn(usize, &Tensor, &Tensor),
) {
    let (qs, ks, vs, outs) = trace;
    let mut plans = HashMap::new();
    for t in 0..outs.len() {
        let cap = bucket_cap(t + 1, min_cap);
        let plan = plans
            .entry(cap)
            .or_insert_with(|| Compiler::new(opts()).compile(builder(heads, cap)).unwrap());
        let inputs = [
            qs[t].clone(),
            prefill_cache(&ks[..=t], heads, cap, d),
            prefill_cache(&vs[..=t], heads, cap, d),
            mask(heads, cap, t + 1),
        ];
        let (want, _) = plan.execute(&inputs).unwrap();
        check(t, &outs[t], &want[0]);
    }
}

#[test]
fn incremental_f32_matches_full_prefill_recompute() {
    let (heads, d, steps, min_cap) = (2, 8, 24, 4);
    // 24 steps cross the 4 → 8 → 16 → 32 capacity-bucket boundaries.
    let model = DecodeModel::load(
        move |r, c| workloads::decode_f32(r, c, d),
        heads,
        config(min_cap, 64),
    )
    .unwrap();
    let trace = decode_trace(&model, heads, d, DataType::F32, DataType::F32, steps, 1);
    assert_eq!(bucket_cap(steps, min_cap), 32, "steps must cross buckets");
    diff_against_prefill(
        move |r, c| workloads::decode_f32(r, c, d),
        &trace,
        heads,
        d,
        min_cap,
        |t, got, want| {
            let err = max_rel_err(got, want);
            assert!(err <= 1e-5, "position {t}: rel err {err}");
        },
    );
}

#[test]
fn incremental_int8_bitmatches_full_prefill_recompute() {
    let (heads, d, steps, min_cap) = (2, 16, 12, 4);
    let model = DecodeModel::load(
        move |r, c| workloads::decode_int8(r, c, d),
        heads,
        config(min_cap, 32),
    )
    .unwrap();
    let trace = decode_trace(&model, heads, d, DataType::U8, DataType::I8, steps, 2);
    diff_against_prefill(
        move |r, c| workloads::decode_int8(r, c, d),
        &trace,
        heads,
        d,
        min_cap,
        |t, got, want| {
            let g: Vec<u32> = got
                .f32_slice()
                .unwrap()
                .iter()
                .map(|x| x.to_bits())
                .collect();
            let w: Vec<u32> = want
                .f32_slice()
                .unwrap()
                .iter()
                .map(|x| x.to_bits())
                .collect();
            assert_eq!(g, w, "position {t}: int8 decode must bit-match prefill");
        },
    );
}

/// 64 concurrent sessions decoding through the continuous-batching
/// scheduler must produce exactly what each session produces decoding
/// alone (serial, batch of one) — coalescing, padding, and the batch
/// gather/scatter must be invisible.
#[test]
fn batched_64_sessions_match_serial_decode() {
    let (heads, d, steps, sessions) = (2, 8, 6, 64u64);
    let builder = move |r: usize, c: usize| workloads::decode_f32(r, c, d);
    // Generous delay so concurrent steps actually coalesce.
    let mut cfg = config(4, 16);
    cfg.max_delay = Duration::from_millis(4);
    let batched = Arc::new(DecodeModel::load(builder, heads, cfg).unwrap());
    let handles: Vec<_> = (0..sessions)
        .map(|s| {
            let model = Arc::clone(&batched);
            std::thread::spawn(move || {
                decode_trace(
                    &model,
                    heads,
                    d,
                    DataType::F32,
                    DataType::F32,
                    steps,
                    100 + s,
                )
                .3
            })
        })
        .collect();
    let batched_outs: Vec<Vec<Tensor>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let snap = batched.stats();
    assert_eq!(snap.decode_steps(), sessions * steps as u64);
    assert!(
        snap.decode_coalesce_ratio().unwrap() > 1.5,
        "scheduler failed to coalesce concurrent sessions: {snap}"
    );

    let serial = DecodeModel::load(builder, heads, config(4, 16)).unwrap();
    for (s, batched_session) in batched_outs.iter().enumerate() {
        let serial_outs = decode_trace(
            &serial,
            heads,
            d,
            DataType::F32,
            DataType::F32,
            steps,
            100 + s as u64,
        )
        .3;
        for (t, (b, a)) in batched_session.iter().zip(&serial_outs).enumerate() {
            let gb: Vec<u32> = b.f32_slice().unwrap().iter().map(|x| x.to_bits()).collect();
            let ga: Vec<u32> = a.f32_slice().unwrap().iter().map(|x| x.to_bits()).collect();
            assert_eq!(gb, ga, "session {s} step {t}: batched != serial");
        }
    }
    assert_eq!(serial.stats().decode_coalesce_ratio(), Some(1.0));
}

/// Sessions joining and leaving mid-stream: staggered lifetimes must
/// not perturb other sessions' outputs.
#[test]
fn sessions_join_and_leave_without_crosstalk() {
    let (heads, d) = (2, 8);
    let builder = move |r: usize, c: usize| workloads::decode_f32(r, c, d);
    let mut cfg = config(4, 16);
    cfg.max_delay = Duration::from_millis(2);
    let model = Arc::new(DecodeModel::load(builder, heads, cfg).unwrap());
    // Session s runs 2 + s % 5 steps, so the cohort shrinks while the
    // long-lived sessions keep decoding; late joiners start fresh.
    let handles: Vec<_> = (0..24u64)
        .map(|s| {
            let model = Arc::clone(&model);
            std::thread::spawn(move || {
                if s % 3 == 0 {
                    std::thread::sleep(Duration::from_millis(s / 3));
                }
                let steps = 2 + (s as usize) % 5;
                decode_trace(
                    &model,
                    heads,
                    d,
                    DataType::F32,
                    DataType::F32,
                    steps,
                    500 + s,
                )
                .3
            })
        })
        .collect();
    let all: Vec<Vec<Tensor>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    assert_eq!(model.live_sessions(), 0);

    let serial = DecodeModel::load(builder, heads, config(4, 16)).unwrap();
    for (s, outs) in all.iter().enumerate() {
        let steps = 2 + s % 5;
        let want = decode_trace(
            &serial,
            heads,
            d,
            DataType::F32,
            DataType::F32,
            steps,
            500 + s as u64,
        )
        .3;
        for (t, (b, a)) in outs.iter().zip(&want).enumerate() {
            assert_eq!(
                b.f32_slice().unwrap(),
                a.f32_slice().unwrap(),
                "session {s} step {t} diverged"
            );
        }
    }
}

/// Shutdown while steps are pending: every waiter resolves (no hang),
/// each with either a real output or `Closed` — never a panic.
#[test]
fn shutdown_resolves_pending_steps() {
    let (heads, d) = (1, 4);
    let mut cfg = config(4, 8);
    cfg.max_delay = Duration::from_secs(5); // hold steps in the queue
    let model = DecodeModel::load(move |r, c| workloads::decode_f32(r, c, d), heads, cfg).unwrap();
    let sessions: Vec<_> = (0..4).map(|_| model.session().unwrap()).collect();
    let futures: Vec<_> = sessions
        .iter()
        .map(|s| {
            s.decode_step(
                &Tensor::random(&[heads, 1, d], DataType::F32, 1),
                &Tensor::random(&[heads, 1, d], DataType::F32, 2),
                &Tensor::random(&[heads, 1, d], DataType::F32, 3),
            )
            .unwrap()
        })
        .collect();
    model.shutdown();
    for f in futures {
        match f.wait() {
            Ok(out) => assert_eq!(out.desc().shape(), &[heads, 1, d]),
            Err(ServeError::Closed) => {}
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
}
