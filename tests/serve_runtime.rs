//! Serving-runtime integration tests: concurrent execution safety of a
//! shared `Executable`, and dynamically batched + padded execution
//! against unbatched compilation on the paper's Table-1 MLP workloads
//! (int8 bitwise-exact, f32 to 1e-5).

use gc_bench::workloads;
use gc_core::{CompileOptions, Compiler};
use gc_machine::MachineDescriptor;
use gc_runtime::ThreadPool;
use gc_serve::{Model, PlanCache, ServeConfig};
use gc_tensor::{Storage, Tensor};
use gc_tir::InitCache;
use std::sync::Arc;

fn options(threads: usize) -> CompileOptions {
    CompileOptions {
        threads: Some(threads),
        ..CompileOptions::new(MachineDescriptor::xeon_8358())
    }
}

fn serve_config(threads: usize) -> ServeConfig {
    ServeConfig {
        compile: options(threads),
        // Private caches: keep this test hermetic under parallel runs.
        plan_cache: Some(Arc::new(PlanCache::new())),
        init_cache: Some(Arc::new(InitCache::new())),
        ..ServeConfig::default()
    }
}

fn assert_storage_close(got: &Storage, want: &Storage, tol: f32, what: &str) {
    match (got, want) {
        (Storage::F32(g), Storage::F32(w)) => {
            assert_eq!(g.len(), w.len(), "{what}: length");
            for (ei, (&x, &y)) in g.iter().zip(w.iter()).enumerate() {
                if tol == 0.0 {
                    assert_eq!(x.to_bits(), y.to_bits(), "{what}[{ei}]: {x:?} != {y:?}");
                } else {
                    assert!(
                        (x - y).abs() <= tol * (1.0 + y.abs()),
                        "{what}[{ei}]: {x} vs {y}"
                    );
                }
            }
        }
        (g, w) => assert_eq!(g, w, "{what}: non-f32 outputs must be bitwise equal"),
    }
}

/// Satellite: 8 threads hammer one shared `Executable`; every output
/// must bit-match the serial run of the same input.
#[test]
fn concurrent_execute_stress_bitmatches_serial() {
    let g = workloads::mlp_f32(8, &workloads::mlp1_layers(), 42);
    let pool = Arc::new(ThreadPool::new(2));
    let arts = Compiler::new(options(2))
        .compile_artifacts(g, pool)
        .expect("compile");
    let exe = Arc::new(arts.exe);

    // Serial references, one distinct input per future thread.
    let inputs: Vec<Tensor> = (0..8)
        .map(|t| Tensor::random(&[8, 13], gc_tensor::DataType::F32, 1000 + t))
        .collect();
    let expected: Vec<Vec<Tensor>> = inputs
        .iter()
        .map(|x| exe.execute(std::slice::from_ref(x)).expect("serial").0)
        .collect();

    let mut handles = Vec::new();
    for t in 0..8 {
        let exe = Arc::clone(&exe);
        let x = inputs[t].clone();
        let want: Vec<Vec<u32>> = expected[t]
            .iter()
            .map(|o| o.f32_slice().unwrap().iter().map(|v| v.to_bits()).collect())
            .collect();
        handles.push(std::thread::spawn(move || {
            for round in 0..10 {
                let (outs, _) = exe.execute(std::slice::from_ref(&x)).expect("execute");
                for (oi, (o, w)) in outs.iter().zip(&want).enumerate() {
                    let got: Vec<u32> =
                        o.f32_slice().unwrap().iter().map(|v| v.to_bits()).collect();
                    assert_eq!(&got, w, "thread {t} round {round} output {oi}");
                }
            }
        }));
    }
    for h in handles {
        h.join().expect("stress thread");
    }
    // The state pool grew to at most the observed concurrency.
    assert!(exe.pooled_states() <= 8);
    // One executable, one init, no matter how many threads ran it.
    assert_eq!(exe.init_runs(), 1);
}

/// Run `rows`-row requests through a serving model built on a 1-row
/// template and compare each against an unbatched compile at the exact
/// request shape.
fn batched_vs_unbatched(
    template: gc_graph::Graph,
    build_rows: impl Fn(usize) -> gc_graph::Graph,
    rows_list: &[usize],
    tol: f32,
) {
    let model = Model::load(template, serve_config(2)).expect("load model");
    let session = model.session();
    for &rows in rows_list {
        let unbatched = Compiler::new(options(2))
            .compile(build_rows(rows))
            .expect("unbatched compile");
        let inputs: Vec<Tensor> = unbatched
            .input_descs()
            .iter()
            .enumerate()
            .map(|(i, d)| Tensor::random(d.shape(), d.dtype(), 70 + rows as u64 + i as u64))
            .collect();
        let (want, _) = unbatched.execute(&inputs).expect("unbatched execute");
        let (got, stats) = session.infer_with_stats(&inputs).expect("batched infer");
        // rows pads up to the next power of two inside the batcher
        assert_eq!(stats.batch_rows, rows.next_power_of_two() as u64);
        assert_eq!(got.len(), want.len());
        // A request that exactly fills its bucket compiles the same
        // graph the unbatched path does, so it must be bitwise equal.
        // A padded bucket may pick different kernel blocking (another
        // accumulation order), so f32 gets the caller's tolerance.
        let effective_tol = if rows.is_power_of_two() { 0.0 } else { tol };
        for (oi, (g, w)) in got.iter().zip(&want).enumerate() {
            assert_eq!(g.desc().volume(), w.desc().volume());
            assert_storage_close(
                g.storage(),
                w.storage(),
                effective_tol,
                &format!("rows {rows} output {oi}"),
            );
        }
    }
    let snap = model.stats();
    assert_eq!(snap.requests, rows_list.len() as u64);
    assert!(snap.buckets.iter().any(|b| b.padded_rows > 0));
}

/// Satellite: batched + padded f32 execution matches unbatched on the
/// MLP_1 progression — bitwise at bucket-exact sizes, to a small
/// accumulation-order tolerance when padding changes the blocking.
#[test]
fn batched_matches_unbatched_f32_mlp1() {
    let layers = workloads::mlp1_layers();
    batched_vs_unbatched(
        workloads::mlp_f32(1, &layers, 7),
        |rows| workloads::mlp_f32(rows, &workloads::mlp1_layers(), 7),
        &[1, 3, 4, 5],
        5e-5,
    );
}

/// Satellite: batched + padded int8 execution is bitwise exact vs
/// unbatched on MLP_1.
#[test]
fn batched_matches_unbatched_int8_mlp1() {
    let layers = workloads::mlp1_layers();
    batched_vs_unbatched(
        workloads::mlp_int8(1, &layers, 11),
        |rows| workloads::mlp_int8(rows, &workloads::mlp1_layers(), 11),
        &[2, 3],
        0.0,
    );
}

/// Satellite: the deeper MLP_2 progression, int8, padded bucket.
#[test]
fn batched_matches_unbatched_int8_mlp2() {
    let layers = workloads::mlp2_layers();
    batched_vs_unbatched(
        workloads::mlp_int8(1, &layers, 23),
        |rows| workloads::mlp_int8(rows, &workloads::mlp2_layers(), 23),
        &[3],
        0.0,
    );
}

/// Two models loaded from identical graphs share one compiled
/// executable and one folded-constant set, end to end.
#[test]
fn sessions_share_compiled_plan_and_folds() {
    let cfg = serve_config(2);
    let layers = workloads::mlp1_layers();
    let m1 = Model::load(workloads::mlp_f32(4, &layers, 5), cfg.clone()).expect("m1");
    let m2 = Model::load(workloads::mlp_f32(4, &layers, 5), cfg.clone()).expect("m2");
    let e1 = m1.executable_for_units(4).expect("e1");
    let e2 = m2.executable_for_units(4).expect("e2");
    assert!(
        Arc::ptr_eq(&e1, &e2),
        "same graph must share one executable"
    );

    let x = Tensor::random(&[4, 13], gc_tensor::DataType::F32, 3);
    let a = m1
        .session()
        .infer(std::slice::from_ref(&x))
        .expect("m1 infer");
    let b = m2
        .session()
        .infer(std::slice::from_ref(&x))
        .expect("m2 infer");
    assert_storage_close(a[0].storage(), b[0].storage(), 0.0, "shared plan output");
    assert_eq!(cfg.init_cache.unwrap().compute_count(), 1);
    assert_eq!(cfg.plan_cache.unwrap().misses(), 1);
}

/// A model loaded with a tuning database warm-starts its bucket
/// compiles: the serve-side compile makes the exact same parameter
/// decisions as a direct tuned compile of the same graph, and a model
/// loaded with a different-content database gets its own plan-cache
/// entry (no stale-plan aliasing).
#[test]
fn serve_warm_starts_from_tuning_database() {
    use gc_core::{tune_graph, TuneConfig, TuningDb};
    use std::sync::Mutex;

    let batch = 16;
    let layers = workloads::mlp1_layers();
    let graph = workloads::mlp_f32(batch, &layers, 7);
    let opts = options(1);

    let db = Arc::new(TuningDb::in_memory());
    let cfg = TuneConfig {
        top_k: 3,
        max_trials: 8,
        wall_reps: 1,
    };
    let report = tune_graph(&graph, &opts, &db, &cfg).expect("tune");
    assert!(!report.warm_start);

    // Reference: a direct tuned compile's parameter decisions.
    let direct_log: gc_lowering::ParamLog = Arc::new(Mutex::new(Vec::new()));
    let mut direct_opts = opts.clone();
    direct_opts.tuning = Some(db.clone());
    direct_opts.param_log = Some(direct_log.clone());
    let direct = Compiler::new(direct_opts)
        .compile(graph.clone())
        .expect("direct compile");
    assert!(direct.report().tuned, "direct compile must hit the record");

    // Serve: loading the model compiles the template-sized bucket (16
    // units = the tuned shape) through the plan cache; with the
    // database attached that compile must warm-start.
    let shared_cache = Arc::new(PlanCache::new());
    let serve_log: gc_lowering::ParamLog = Arc::new(Mutex::new(Vec::new()));
    let mut sc = serve_config(1).with_tuning(db.clone());
    sc.plan_cache = Some(shared_cache.clone());
    sc.compile.param_log = Some(serve_log.clone());
    let model = Model::load(graph.clone(), sc).expect("load tuned");
    let x = Tensor::random(&[batch, layers[0]], gc_tensor::DataType::F32, 3);
    let tuned_out = model
        .session()
        .infer(std::slice::from_ref(&x))
        .expect("tuned infer");

    let serve_choices = serve_log.lock().unwrap().clone();
    let direct_choices = direct_log.lock().unwrap().clone();
    assert!(!serve_choices.is_empty());
    assert_eq!(
        serve_choices, direct_choices,
        "serve bucket compile must replay the tuned decisions"
    );

    // Same graph, same shared cache, no database: the untuned model
    // must get its own plan-cache entry, not the tuned model's plan.
    let mut plain_cfg = serve_config(1);
    plain_cfg.plan_cache = Some(shared_cache.clone());
    let plain = Model::load(graph, plain_cfg).expect("load untuned");
    let plain_out = plain
        .session()
        .infer(std::slice::from_ref(&x))
        .expect("plain infer");
    assert_eq!(
        shared_cache.misses(),
        2,
        "tuned and untuned configurations must not share a plan entry"
    );
    assert_storage_close(
        tuned_out[0].storage(),
        plain_out[0].storage(),
        1e-4,
        "tuned vs untuned output",
    );
}
