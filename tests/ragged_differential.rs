//! Differential tests for ragged (non-divisor) shapes through the full
//! compiler: the heuristic is free to pick non-divisor blockings, so
//! pack-time padding / edge-tile kernels must round-trip
//! pack → execute → unpack exactly like the naive reference, and the
//! checked plan executor must agree with the interpreter bit for bit.

use gc_bench::workloads::{random_inputs, reference_eval};
use gc_core::{CompileOptions, Compiler};
use gc_graph::{Graph, OpKind, UnaryKind};
use gc_machine::MachineDescriptor;
use gc_tensor::{DataType, QuantParams, Tensor, TensorDesc};
use proptest::prelude::*;

fn compile_opts() -> CompileOptions {
    let mut o = CompileOptions::new(MachineDescriptor::xeon_8358());
    o.threads = Some(1);
    o
}

/// Dims that hit every small residue class and a few just past block
/// boundaries (the heuristic picks blocks from powers of two and
/// divisors, so 9..=33 sweeps M%MR, N%NR, K%KB over realistic tiles).
fn ragged_dim() -> impl Strategy<Value = usize> {
    prop_oneof![9usize..=33, Just(63), Just(65)]
}

fn matmul_graph(m: usize, n: usize, k: usize, relu: bool, seed: u64) -> Graph {
    let mut g = Graph::new();
    let x = g.add_input(TensorDesc::new([m, k], DataType::F32), "x");
    let w = g.add_constant(Tensor::random(&[k, n], DataType::F32, seed), "w");
    let mut out = g.add_op(OpKind::MatMul, &[x, w]).unwrap();
    if relu {
        out = g.add_op(OpKind::Unary(UnaryKind::Relu), &[out]).unwrap();
    }
    g.mark_output(out);
    g
}

fn int8_graph(m: usize, n: usize, k: usize, a_zero: i32, seed: u64) -> Graph {
    let mut g = Graph::new();
    let a = g.add_input(TensorDesc::new([m, k], DataType::U8), "a");
    let b = g.add_constant(Tensor::random(&[k, n], DataType::I8, seed), "b");
    let af = g
        .add_op(
            OpKind::Dequantize {
                params: QuantParams::new(0.05, a_zero),
            },
            &[a],
        )
        .unwrap();
    let bf = g
        .add_op(
            OpKind::Dequantize {
                params: QuantParams::symmetric(0.1),
            },
            &[b],
        )
        .unwrap();
    let mm = g.add_op(OpKind::MatMul, &[af, bf]).unwrap();
    g.mark_output(mm);
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// pack → execute → unpack over ragged shapes equals the reference
    /// within 1e-5 (f32). The validator runs on every lowering pass
    /// (`validate: true` in the default options), so a passing compile
    /// also certifies the chosen plan is validator-clean.
    #[test]
    fn ragged_f32_matches_reference(
        m in ragged_dim(),
        n in ragged_dim(),
        k in ragged_dim(),
        relu in any::<bool>(),
        seed in 0u64..1000,
    ) {
        let g = matmul_graph(m, n, k, relu, seed);
        let inputs = random_inputs(&g, seed + 1);
        let want = reference_eval(&g, &inputs);
        let compiled = Compiler::new(compile_opts())
            .compile(matmul_graph(m, n, k, relu, seed))
            .unwrap();
        let (outs, _) = compiled.execute(&inputs).unwrap();
        for i in 0..want[0].desc().volume() {
            let a = outs[0].storage().get_as_f64(i);
            let b = want[0].storage().get_as_f64(i);
            prop_assert!((a - b).abs() < 1e-5, "elem {i}: {a} vs {b} (m={m} n={n} k={k})");
        }
    }

    /// The checked plan executor and the tree-walking interpreter must
    /// produce bit-identical outputs on ragged shapes — for f32 and for
    /// the compensated-int8 path, whose padded weight tiles and comp
    /// vector must contribute exactly zero for pad rows/cols.
    #[test]
    fn ragged_checked_plan_matches_interpreter_bitexact(
        m in ragged_dim(),
        n in ragged_dim(),
        k in ragged_dim(),
        int8 in any::<bool>(),
        seed in 0u64..1000,
    ) {
        let build = || if int8 {
            int8_graph(m, n, k, (seed % 16) as i32, seed)
        } else {
            matmul_graph(m, n, k, false, seed)
        };
        let inputs = random_inputs(&build(), seed + 3);

        let mut interp_opts = compile_opts();
        interp_opts.interpret = true;
        let (interp, _) = Compiler::new(interp_opts)
            .compile(build())
            .unwrap()
            .execute(&inputs)
            .unwrap();

        let mut plan_opts = compile_opts();
        plan_opts.checked = true;
        let (plan, _) = Compiler::new(plan_opts)
            .compile(build())
            .unwrap()
            .execute(&inputs)
            .unwrap();

        let (a, b) = (interp[0].f32_slice().unwrap(), plan[0].f32_slice().unwrap());
        for i in 0..a.len() {
            prop_assert!(
                a[i].to_bits() == b[i].to_bits(),
                "elem {i}: interp {} vs checked plan {} (m={m} n={n} k={k} int8={int8})",
                a[i], b[i]
            );
        }
    }
}

/// Table 1's irregular reduction dim: k = 479 is prime, so divisor-only
/// blocking degenerates to KB ∈ {1, 479}. With ragged blocking the
/// compile must stay validator-clean and exact.
#[test]
fn table1_prime_k479_is_validator_clean_and_exact() {
    let (m, n, k) = (64, 256, 479);
    let g = matmul_graph(m, n, k, false, 42);
    let inputs = random_inputs(&g, 43);
    let want = reference_eval(&g, &inputs);
    let compiled = Compiler::new(compile_opts())
        .compile(matmul_graph(m, n, k, false, 42))
        .unwrap();
    let (outs, _) = compiled.execute(&inputs).unwrap();
    let mut max_rel = 0.0f64;
    for i in 0..want[0].desc().volume() {
        let a = outs[0].storage().get_as_f64(i);
        let b = want[0].storage().get_as_f64(i);
        let rel = (a - b).abs() / b.abs().max(1.0);
        max_rel = max_rel.max(rel);
    }
    // k=479 accumulation chains: allow reassociation error but nothing
    // structural (a misplaced edge tile would be off by whole products).
    assert!(max_rel < 1e-4, "max relative error {max_rel}");
}

/// The ragged-blocking win on Table 1's irregular workload, pinned: the
/// MLP_2 chain (479 -> 1024 -> 1024 -> 512 -> 256 -> 1, prime first
/// reduction dim, n=1 head) must project at least 1.15x faster with
/// ragged blocking than with the divisor-only degenerate blocking.
/// (The pin was 1.2x before the projector gained the cross-layer LLC
/// reuse term; keeping inter-layer lines warm in the LLC narrows the
/// gap a hair — to ~1.199x — because the divisor-only schedule's extra
/// inter-layer traffic now partially hits the LLC instead of DRAM.)
#[test]
fn ragged_mlp2_projects_1_2x_over_degenerate_blocking() {
    use gc_bench::workloads;
    let project = |ragged: bool| {
        let mut o = compile_opts();
        o.ragged = ragged;
        Compiler::new(o)
            .compile(workloads::mlp_f32(256, &workloads::mlp2_layers(), 1))
            .unwrap()
            .project()
            .cycles
    };
    let (on, off) = (project(true), project(false));
    let speedup = off / on;
    assert!(
        speedup >= 1.15,
        "ragged {on:.0} vs divisor-only {off:.0}: speedup {speedup:.2} < 1.15"
    );
}
