//! Differential tests: compiled execution plans vs the tree-walking
//! interpreter (`CompileOptions::interpret`) on the paper's Table-1
//! workloads. The plan path must agree bit-for-bit on the int8 pipeline
//! and to 1e-5 on f32.

use gc_bench::workloads;
use gc_core::{CompileOptions, CompiledPartition, Compiler};
use gc_graph::Graph;
use gc_machine::MachineDescriptor;
use gc_tensor::{Storage, Tensor};

fn compile(graph: Graph, threads: usize, interpret: bool) -> CompiledPartition {
    let mut opts = CompileOptions::new(MachineDescriptor::xeon_8358());
    opts.threads = Some(threads);
    opts.interpret = interpret;
    Compiler::new(opts).compile(graph).expect("compile")
}

fn random_inputs_for(p: &CompiledPartition, seed: u64) -> Vec<Tensor> {
    p.input_descs()
        .iter()
        .enumerate()
        .map(|(i, d)| Tensor::random(d.shape(), d.dtype(), seed + i as u64))
        .collect()
}

/// Run `build()`'s graph through both execution modes (twice each, to
/// cover the init-cached steady state) and compare every output.
/// `tol == 0.0` demands bitwise identity.
fn differential(build: impl Fn() -> Graph, threads: usize, tol: f32) {
    let compiled = compile(build(), threads, false);
    let interp = compile(build(), threads, true);

    let stats = compiled.executable().plan_stats();
    assert!(
        stats.compiled_funcs > 0,
        "workload must exercise the plan path, got {stats:?}"
    );
    assert!(stats.hoisted_bounds > 0, "no bounds hoisted: {stats:?}");

    let inputs = random_inputs_for(&compiled, 7);
    for round in 0..2 {
        let (got, _) = compiled.execute(&inputs).expect("plan execute");
        let (want, _) = interp.execute(&inputs).expect("interp execute");
        assert_eq!(got.len(), want.len());
        for (oi, (g, w)) in got.iter().zip(want.iter()).enumerate() {
            match (g.storage(), w.storage()) {
                (Storage::F32(g), Storage::F32(w)) => {
                    assert_eq!(g.len(), w.len());
                    for (ei, (&x, &y)) in g.iter().zip(w.iter()).enumerate() {
                        if tol == 0.0 {
                            assert!(
                                x.to_bits() == y.to_bits(),
                                "round {round} out {oi}[{ei}]: {x:?} != {y:?} (bitwise)"
                            );
                        } else {
                            assert!(
                                (x - y).abs() <= tol * (1.0 + y.abs()),
                                "round {round} out {oi}[{ei}]: {x} vs {y}"
                            );
                        }
                    }
                }
                // integer / quantized outputs must always be identical
                (Storage::U8(g), Storage::U8(w)) => assert_eq!(g, w, "round {round} out {oi}"),
                (Storage::I8(g), Storage::I8(w)) => assert_eq!(g, w, "round {round} out {oi}"),
                (Storage::I32(g), Storage::I32(w)) => assert_eq!(g, w, "round {round} out {oi}"),
                (g, w) => panic!("round {round} out {oi}: dtype mismatch {g:?} vs {w:?}"),
            }
        }
    }
}

#[test]
fn mlp_f32_single_thread() {
    differential(
        || workloads::mlp_f32(16, &workloads::mlp1_layers(), 3),
        1,
        1e-5,
    );
}

#[test]
fn mlp_f32_multi_thread() {
    differential(
        || workloads::mlp_f32(32, &workloads::mlp1_layers(), 4),
        4,
        1e-5,
    );
}

#[test]
fn mlp2_f32_multi_thread() {
    differential(
        || workloads::mlp_f32(16, &workloads::mlp2_layers(), 5),
        2,
        1e-5,
    );
}

#[test]
fn mlp_int8_bit_identical_single_thread() {
    differential(
        || workloads::mlp_int8(16, &workloads::mlp1_layers(), 6),
        1,
        0.0,
    );
}

#[test]
fn mlp_int8_bit_identical_multi_thread() {
    differential(
        || workloads::mlp_int8(32, &workloads::mlp1_layers(), 7),
        4,
        0.0,
    );
}

#[test]
fn mha_f32_multi_thread() {
    differential(
        || workloads::mha_f32(2, &workloads::mha_configs()[0]).0,
        4,
        1e-5,
    );
}

/// The interpreter mode must actually bypass the plan (guards against
/// the reference path silently becoming the thing under test).
#[test]
fn interpret_mode_is_reported() {
    let g = workloads::mlp_f32(8, &workloads::mlp1_layers(), 8);
    let p = compile(g, 1, true);
    assert_eq!(p.executable().mode(), gc_tir::ExecMode::Interpret);
    let g = workloads::mlp_f32(8, &workloads::mlp1_layers(), 8);
    let p = compile(g, 1, false);
    assert_eq!(p.executable().mode(), gc_tir::ExecMode::Compiled);
}
