//! Sharded-vs-serial differential tests (DESIGN.md "Sharded
//! execution"): a model serving through engine shards must agree with
//! the unbatched single-engine compile of the same request — bitwise
//! for int8 (integer accumulation is order-independent), to a small
//! accumulation-order tolerance for f32 (each shard pads its slice to
//! its own bucket, so kernel blocking may differ). Also covers ragged
//! uneven splits across heterogeneous shards and panic isolation.

use gc_bench::workloads;
use gc_core::{CompileOptions, Compiler};
use gc_machine::MachineDescriptor;
use gc_serve::{EngineShard, Model, PlanCache, ServeConfig, ShardConfig, ShardSpec};
use gc_tensor::Storage;
use gc_tir::InitCache;
use std::sync::Arc;

fn options(threads: usize) -> CompileOptions {
    CompileOptions {
        threads: Some(threads),
        ..CompileOptions::new(MachineDescriptor::xeon_8358())
    }
}

fn serve_config(threads: usize) -> ServeConfig {
    ServeConfig {
        compile: options(threads),
        // Private caches: keep this test hermetic under parallel runs.
        plan_cache: Some(Arc::new(PlanCache::new())),
        init_cache: Some(Arc::new(InitCache::new())),
        ..ServeConfig::default()
    }
}

fn sharded_config(threads: usize, shards: usize, min_units: usize) -> ServeConfig {
    let mut sc = ShardConfig::uniform(shards);
    sc.min_units_per_shard = min_units;
    ServeConfig {
        sharding: Some(sc),
        ..serve_config(threads)
    }
}

fn assert_storage_close(got: &Storage, want: &Storage, tol: f32, what: &str) {
    match (got, want) {
        (Storage::F32(g), Storage::F32(w)) => {
            assert_eq!(g.len(), w.len(), "{what}: length");
            for (ei, (&x, &y)) in g.iter().zip(w.iter()).enumerate() {
                assert!(
                    (x - y).abs() <= tol * (1.0 + y.abs()),
                    "{what}[{ei}]: {x} vs {y}"
                );
            }
        }
        (g, w) => assert_eq!(g, w, "{what}: non-f32 outputs must be bitwise equal"),
    }
}

/// Run `rows`-row requests through a sharded model built on a 1-row
/// template and compare each against (a) the same model served
/// *serially* (unsharded, same pipeline — the ISSUE's serial ≡ sharded
/// contract, `serial_tol`) and (b) a raw unbatched single-engine
/// compile at the exact request shape (`unbatched_tol`; looser for f32
/// because bucketing changes kernel blocking).
fn sharded_vs_serial(
    template: gc_graph::Graph,
    build_rows: impl Fn(usize) -> gc_graph::Graph,
    rows_list: &[usize],
    config: ServeConfig,
    serial_tol: f32,
    unbatched_tol: f32,
) {
    let shard_count = config.sharding.as_ref().map_or(0, |s| s.shards.len());
    let serial = Model::load(
        template.clone(),
        ServeConfig {
            sharding: None,
            ..config.clone()
        },
    )
    .expect("load serial model");
    let model = Model::load(template, config).expect("load sharded model");
    let session = model.session();
    let serial_session = serial.session();
    for &rows in rows_list {
        let g = build_rows(rows);
        let inputs = workloads::random_inputs(&g, 70 + rows as u64);
        let unbatched = Compiler::new(options(1)).compile(g).expect("unbatched");
        let (want, _) = unbatched.execute(&inputs).expect("unbatched execute");
        let serial_out = serial_session.infer(&inputs).expect("serial infer");
        let got = session.infer(&inputs).expect("sharded infer");
        assert_eq!(got.len(), want.len());
        assert_eq!(got.len(), serial_out.len());
        for (oi, ((g, s), w)) in got.iter().zip(&serial_out).zip(&want).enumerate() {
            assert_eq!(g.desc().volume(), w.desc().volume());
            assert_storage_close(
                g.storage(),
                s.storage(),
                serial_tol,
                &format!("rows {rows} output {oi} (vs serial)"),
            );
            assert_storage_close(
                g.storage(),
                w.storage(),
                unbatched_tol,
                &format!("rows {rows} output {oi} (vs unbatched)"),
            );
        }
    }
    let snap = model.stats();
    assert_eq!(snap.shards.len(), shard_count);
    assert_eq!(snap.requests, rows_list.len() as u64);
    // Every unit served went through some shard, and at least one batch
    // was big enough to scatter.
    let shard_units: u64 = snap.shards.iter().map(|s| s.units).sum();
    let total_units: u64 = rows_list.iter().map(|&r| r as u64).sum();
    assert_eq!(shard_units, total_units, "{snap}");
    assert!(snap.scattered_batches > 0, "{snap}");
}

/// Tentpole: sharded f32 serving agrees with the serial (unsharded)
/// model and with a raw unbatched compile to the repo's standard 5e-5
/// relative tolerance, across bucket-exact, padded, and ragged
/// (uneven-split) request sizes. The bound cannot be tighter: the
/// lowering heuristic picks `kb`/`bs` per padded-bucket `m`, so a
/// serial bucket of 4 and shard buckets of 2|1 group the K reduction
/// differently — a few-ULP f32 summation-order difference over
/// MLP-sized K. The exactness guarantee lives in the int8 tests below,
/// where accumulation is integer and order-independent.
#[test]
fn sharded_matches_serial_f32_mlp1() {
    let layers = workloads::mlp1_layers();
    sharded_vs_serial(
        workloads::mlp_f32(1, &layers, 7),
        |rows| workloads::mlp_f32(rows, &workloads::mlp1_layers(), 7),
        // 11 over 2 shards splits 6|5 — a ragged, uneven scatter.
        &[1, 3, 5, 8, 11],
        sharded_config(2, 2, 1),
        5e-5,
        5e-5,
    );
}

/// Tentpole: the int8 pipeline is bitwise exact under sharding — no
/// tolerance, any split.
#[test]
fn sharded_matches_serial_int8_mlp1() {
    let layers = workloads::mlp1_layers();
    sharded_vs_serial(
        workloads::mlp_int8(1, &layers, 11),
        |rows| workloads::mlp_int8(rows, &workloads::mlp1_layers(), 11),
        &[2, 3, 8, 11],
        sharded_config(2, 2, 1),
        0.0,
        0.0,
    );
}

/// Ragged splits across a *heterogeneous* fleet: shards of different
/// widths, one forced to the scalar backend — mixed ISAs in one
/// process must still agree with the single-engine result.
#[test]
fn ragged_split_across_heterogeneous_shards() {
    let layers = workloads::mlp1_layers();
    let sc = ShardConfig {
        shards: vec![
            ShardSpec {
                threads: 2,
                ..ShardSpec::default()
            },
            ShardSpec {
                threads: 1,
                isa: Some(gc_microkernel::Isa::Scalar),
                ..ShardSpec::default()
            },
        ],
        min_units_per_shard: 1,
    };
    let config = ServeConfig {
        sharding: Some(sc),
        ..serve_config(3)
    };
    sharded_vs_serial(
        workloads::mlp_int8(1, &layers, 31),
        |rows| workloads::mlp_int8(rows, &workloads::mlp1_layers(), 31),
        &[3, 7, 11],
        config,
        0.0, // int8: exact even across backends
        0.0,
    );
}

/// Panic isolation: a job that panics on one shard fails only its own
/// waiter — the shard's executor survives, later jobs run, and the
/// panic is counted. (Inside a model, `run_batch` turns that failure
/// into an error for exactly the waiters of the panicking batch.)
#[test]
fn shard_panic_fails_only_its_own_waiters() {
    let shard = EngineShard::new(0, &ShardSpec::default(), 1).expect("shard");
    let before = shard.run(|| 1).wait().expect("job before panic");
    let bad = shard.run(|| -> i32 { panic!("injected failure") });
    let after = shard.run(|| 2);
    assert!(bad.wait().is_err(), "panicking job must fail its waiter");
    assert_eq!(after.wait().expect("job after panic"), 2);
    assert_eq!(before, 1);
    assert_eq!(shard.stats().panics(), 1);
}

/// A model keeps serving after its fleet absorbed a panic elsewhere:
/// load a sharded model, hammer it, and confirm no request is lost and
/// the queue drains (the waiter-fanout guarantee under shard errors).
#[test]
fn sharded_model_serves_concurrent_requests() {
    let layers = workloads::mlp1_layers();
    let model = Arc::new(
        Model::load(
            workloads::mlp_f32(1, &layers, 3),
            ServeConfig {
                fast_path: false, // force everything through the batcher
                ..sharded_config(2, 2, 1)
            },
        )
        .expect("load"),
    );
    let mut handles = Vec::new();
    for t in 0..4 {
        let session = model.session();
        let layers = layers.clone();
        handles.push(std::thread::spawn(move || {
            for i in 0..8 {
                let rows = 1 + ((t + i) % 5) as usize;
                let g = workloads::mlp_f32(rows, &layers, 3);
                let inputs = workloads::random_inputs(&g, 900 + t * 100 + i);
                let outs = session.infer(&inputs).expect("infer");
                assert_eq!(outs[0].desc().shape()[0], rows);
            }
        }));
    }
    for h in handles {
        h.join().expect("client thread");
    }
    let snap = model.stats();
    assert_eq!(snap.requests, 32);
    assert_eq!(snap.queue_depth, 0);
}
