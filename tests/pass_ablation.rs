//! Pass-ablation differential fuzzing: run the paper's workloads through
//! the full pipeline with each optimization pass individually disabled
//! and compare every variant against an all-optimizations-off reference
//! (unfused, interpreted, no TIR passes). Because exactly one pass
//! differs per variant, a disagreement names the guilty pass in the
//! assertion message instead of presenting an undebuggable
//! "full pipeline is wrong somewhere".
//!
//! Quantized outputs must match the reference bit-for-bit (integer
//! accumulation is exact, so no optimization may change a single bit);
//! f32 outputs get a tolerance because blocking changes the summation
//! order. A `checked` variant additionally runs every plan offset
//! through runtime bounds assertions.

use gc_core::{CompileOptions, CompiledPartition, Compiler};
use gc_graph::Graph;
use gc_machine::MachineDescriptor;
use gc_tensor::{Storage, Tensor};

use gc_bench::workloads::{self, mlp1_layers, MhaConfig};

fn machine() -> MachineDescriptor {
    MachineDescriptor::xeon_8358()
}

/// Everything off: no fine- or coarse-grain fusion, no layout
/// propagation, no TIR buffer passes, no constant-weight folding, and
/// the tree-walking interpreter instead of compiled plans. Low-precision
/// legalization stays on so int8 graphs compute in int8 in both arms
/// and can be compared bit-for-bit.
fn reference_opts(threads: usize) -> CompileOptions {
    let mut o = CompileOptions::unfused(machine());
    o.shrink_tensors = false;
    o.reuse_buffers = false;
    o.reuse_locals = false;
    o.constant_weights = false;
    o.interpret = true;
    o.threads = Some(threads);
    o
}

fn full_opts(threads: usize) -> CompileOptions {
    let mut o = CompileOptions::new(machine());
    o.threads = Some(threads);
    o
}

/// The ablation matrix: the full pipeline, the full pipeline under
/// checked execution, and the full pipeline with exactly one pass
/// disabled per entry. If "full" disagrees with the reference but
/// "without-X" agrees, X is the miscompiling pass.
fn ablations(threads: usize) -> Vec<(&'static str, CompileOptions)> {
    let base = full_opts(threads);
    let mut m = vec![("full", base.clone())];
    m.push(("full-checked", {
        let mut o = base.clone();
        o.checked = true;
        o
    }));
    m.push(("without-fine-fusion", {
        let mut o = base.clone();
        o.fusion = gc_graph::FusionOptions::disabled();
        o
    }));
    m.push(("without-coarse-fusion", {
        let mut o = base.clone();
        o.coarse_fusion = false;
        o
    }));
    m.push(("without-layout-propagation", {
        let mut o = base.clone();
        o.propagate_layouts = false;
        o
    }));
    m.push(("without-shrink-tensors", {
        let mut o = base.clone();
        o.shrink_tensors = false;
        o
    }));
    m.push(("without-reuse-buffers", {
        let mut o = base.clone();
        o.reuse_buffers = false;
        o
    }));
    m.push(("without-reuse-locals", {
        let mut o = base.clone();
        o.reuse_locals = false;
        o
    }));
    m.push(("without-constant-weights", {
        let mut o = base.clone();
        o.constant_weights = false;
        o
    }));
    m.push(("without-k-slicing", {
        let mut o = base.clone();
        o.k_slice = false;
        o
    }));
    m.push(("without-plans (interpret)", {
        let mut o = base;
        o.interpret = true;
        o
    }));
    m
}

fn compare_outputs(name: &str, got: &[Tensor], want: &[Tensor], f32_tol: f32) {
    assert_eq!(got.len(), want.len(), "[{name}] output count");
    for (oi, (g, w)) in got.iter().zip(want.iter()).enumerate() {
        match (g.storage(), w.storage()) {
            (Storage::F32(g), Storage::F32(w)) => {
                assert_eq!(g.len(), w.len(), "[{name}] out {oi} length");
                for (ei, (&x, &y)) in g.iter().zip(w.iter()).enumerate() {
                    assert!(
                        (x - y).abs() <= f32_tol * (1.0 + y.abs()),
                        "[{name}] out {oi}[{ei}]: {x} vs {y}"
                    );
                }
            }
            // quantized / integer outputs: a single flipped bit is a
            // miscompile, no tolerance
            (Storage::U8(g), Storage::U8(w)) => assert_eq!(g, w, "[{name}] out {oi} (u8)"),
            (Storage::I8(g), Storage::I8(w)) => assert_eq!(g, w, "[{name}] out {oi} (i8)"),
            (Storage::I32(g), Storage::I32(w)) => assert_eq!(g, w, "[{name}] out {oi} (i32)"),
            (g, w) => panic!("[{name}] out {oi}: dtype mismatch {g:?} vs {w:?}"),
        }
    }
}

fn compile(opts: CompileOptions, g: Graph) -> CompiledPartition {
    Compiler::new(opts).compile(g).expect("compile")
}

/// Run `build()`'s graph through the reference and every ablation and
/// compare. Two rounds each so the init-cached steady state is covered.
fn ablate(build: impl Fn() -> Graph, threads: usize, f32_tol: f32) {
    let reference = compile(reference_opts(threads), build());
    let inputs: Vec<Tensor> = reference
        .input_descs()
        .iter()
        .enumerate()
        .map(|(i, d)| Tensor::random(d.shape(), d.dtype(), 71 + i as u64))
        .collect();
    let (want, _) = reference.execute(&inputs).expect("reference execute");
    for (name, opts) in ablations(threads) {
        let variant = compile(opts, build());
        for round in 0..2 {
            let (got, _) = variant
                .execute(&inputs)
                .unwrap_or_else(|e| panic!("[{name}] round {round} failed: {e}"));
            compare_outputs(name, &got, &want, f32_tol);
        }
    }
}

#[test]
fn mlp_f32_survives_every_ablation() {
    ablate(|| workloads::mlp_f32(16, &mlp1_layers(), 3), 2, 1e-4);
}

#[test]
fn mlp_int8_bit_exact_under_every_ablation() {
    // quantized output: every variant must match the all-off reference
    // bit-for-bit (f32_tol only applies to float outputs, of which the
    // int8 MLP has none)
    ablate(|| workloads::mlp_int8(16, &mlp1_layers(), 6), 2, 0.0);
}

fn tiny_mha() -> MhaConfig {
    MhaConfig {
        name: "tiny",
        seq: 16,
        hidden: 64,
        heads: 4,
    }
}

#[test]
fn mha_f32_survives_every_ablation() {
    ablate(|| workloads::mha_f32(2, &tiny_mha()).0, 2, 1e-4);
}

#[test]
fn matmul_relu_f32_survives_every_ablation() {
    ablate(
        || workloads::single_matmul(32, 48, 13, workloads::Precision::F32, 9),
        1,
        1e-4,
    );
}

#[test]
fn matmul_int8_bit_exact_under_every_ablation() {
    ablate(
        || workloads::single_matmul(32, 64, 16, workloads::Precision::Int8, 2),
        1,
        0.0,
    );
}

/// A deliberately under-sized local buffer — the forged output of a
/// buggy tensor-shrink pass — must be rejected by the same validator
/// the lowering pipeline runs after `shrink_locals`, with the access
/// that escapes named in the error.
#[test]
fn corrupted_shrink_is_rejected() {
    use gc_tir::validate_module;
    let compiled = compile(full_opts(1), workloads::mlp_f32(16, &mlp1_layers(), 3));
    let mut module = compiled.executable().module().clone();
    validate_module(&module).expect("lowered module is validator-clean");
    let f = module
        .funcs
        .iter_mut()
        .find(|f| f.locals.iter().any(|l| l.elems > 1))
        .expect("a lowered func with a sized local buffer");
    let name = f.name.clone();
    let l = f.locals.iter_mut().find(|l| l.elems > 1).unwrap();
    l.elems = 1;
    let e = validate_module(&module).expect_err("under-sized local must be rejected");
    let msg = e.to_string();
    assert!(
        msg.contains("can reach element") || msg.contains("out-of-bounds"),
        "error must name the escaping access, got: {msg}"
    );
    assert!(
        msg.contains(&name),
        "error must name the function, got: {msg}"
    );
}

/// A forged buffer-reuse rewrite that redirects a read onto a different
/// global — the observable symptom of merging two buffers with
/// overlapping live ranges — must be rejected by the before/after
/// dataflow check the pipeline runs after `reuse_module_scratch`.
#[test]
fn rewired_buffer_reuse_is_rejected() {
    use gc_tir::passes::check_module_reuse;
    use gc_tir::visit::intrinsic_accesses;
    use gc_tir::{BufId, Func, GlobalKind, Stmt};

    fn read_params(f: &Func) -> Vec<bool> {
        fn go(stmts: &[Stmt], reads: &mut Vec<bool>) {
            for s in stmts {
                match s {
                    Stmt::For { body, .. } => go(body, reads),
                    Stmt::Op(i) => {
                        for a in intrinsic_accesses(i) {
                            if let BufId::Param(p) = a.buf {
                                if !a.write {
                                    reads[p] = true;
                                }
                            }
                        }
                    }
                }
            }
        }
        let mut reads = vec![false; f.params.len()];
        go(&f.body, &mut reads);
        reads
    }

    // coarse fusion off so the MLP stays a chain of calls linked by
    // scratch activations (a single merged call has no cross-call reads
    // to rewire)
    let mut opts = full_opts(1);
    opts.coarse_fusion = false;
    let compiled = compile(opts, workloads::mlp_f32(16, &mlp1_layers(), 3));
    let before = compiled.executable().module().clone();
    check_module_reuse(&before, &before).expect("identity rewrite is clean");

    let mut after = before.clone();
    let input_g = after
        .globals
        .iter()
        .position(|g| matches!(g.kind, GlobalKind::Input(_)))
        .expect("module has an input global");
    let mut rewired = false;
    'calls: for ci in (0..after.main_calls.len()).rev() {
        let fi = after.main_calls[ci].func;
        let reads = read_params(&after.funcs[fi]);
        for (p, read) in reads.iter().enumerate() {
            let g = after.main_calls[ci].args[p];
            if *read && after.globals[g].kind == GlobalKind::Scratch {
                after.main_calls[ci].args[p] = input_g;
                rewired = true;
                break 'calls;
            }
        }
    }
    assert!(rewired, "expected a call reading a scratch activation");
    let e = check_module_reuse(&before, &after).expect_err("rewired read must be rejected");
    assert!(
        e.to_string().contains("overlapped live ranges"),
        "error must blame the reuse rewrite, got: {e}"
    );
}

/// The validator itself must hold on every variant of every workload:
/// compilation above already ran it after each TIR pass (it is on by
/// default), so reaching this test at all proves the pipeline is
/// validator-clean. This test pins the default so a future change
/// cannot silently turn it off.
#[test]
fn validator_is_on_by_default() {
    assert!(CompileOptions::default().validate);
    assert!(reference_opts(1).validate);
    for (name, o) in ablations(1) {
        assert!(o.validate, "{name} must keep the validator on");
    }
}
