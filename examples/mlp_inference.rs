//! DLRM-style MLP inference (the paper's MLP_1 workload) in both FP32
//! and Int8, comparing the full compiler against the primitives-library
//! baseline — a miniature of the paper's Figure 8 (left).
//!
//! Run with: `cargo run --release --example mlp_inference`

use gc_baseline::{Baseline, BaselineOptions};
use gc_bench::workloads::{self, random_inputs};
use gc_core::{CompileOptions, Compiler};
use gc_machine::MachineDescriptor;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let machine = MachineDescriptor::xeon_8358();
    let batch = 256;
    let layers = workloads::mlp1_layers();
    println!(
        "MLP_1: batch {batch}, layers {:?} on {}",
        layers, machine.name
    );

    for (name, int8) in [("fp32", false), ("int8", true)] {
        let build = || {
            if int8 {
                workloads::mlp_int8(batch, &layers, 3)
            } else {
                workloads::mlp_f32(batch, &layers, 3)
            }
        };
        let inputs = random_inputs(&build(), 5);

        // full compiler
        let compiled = Compiler::new(CompileOptions::new(machine.clone())).compile(build())?;
        let (_, _warm) = compiled.execute(&inputs)?; // init run
        let (c_out, c_stats) = compiled.execute(&inputs)?;
        let c_proj = compiled.project();

        // primitives baseline
        let baseline = Baseline::new(BaselineOptions::new(machine.clone())).build(build())?;
        let (_, _warm) = baseline.execute(&inputs)?;
        let (b_out, b_stats) = baseline.execute(&inputs)?;
        let b_proj = baseline.project();

        // both paths must agree
        let n = c_out[0].desc().volume();
        let mut worst = 0f64;
        for i in 0..n {
            worst = worst
                .max((c_out[0].storage().get_as_f64(i) - b_out[0].storage().get_as_f64(i)).abs());
        }

        println!("--- {name} ---");
        println!(
            "  baseline : {:>2} primitives, {:>3} barriers, projected {:.4} ms, wall {:.2} ms",
            baseline.primitive_count(),
            b_stats.barriers,
            machine.cycles_to_ms(b_proj.cycles),
            b_stats.wall.as_secs_f64() * 1e3,
        );
        println!(
            "  compiler : {:>2} partition,   {:>3} barriers, projected {:.4} ms, wall {:.2} ms",
            1,
            c_stats.barriers,
            machine.cycles_to_ms(c_proj.cycles),
            c_stats.wall.as_secs_f64() * 1e3,
        );
        println!(
            "  projected speedup {:.2}x  (outputs agree to {worst:.2e})",
            b_proj.cycles / c_proj.cycles
        );
    }
    Ok(())
}
