//! Low-precision conversion walkthrough: shows the Graph IR before and
//! after the int8 legalization, and verifies the compensated int8
//! execution against the dequantize→fp32→quantize reference.
//!
//! Run with: `cargo run --release --example int8_quantization`

use gc_core::{CompileOptions, Compiler};
use gc_graph::{Graph, OpKind, UnaryKind};
use gc_machine::MachineDescriptor;
use gc_tensor::{DataType, QuantParams, Tensor, TensorDesc};

fn build() -> Graph {
    // The framework pattern the paper's Figure 5 starts from:
    //   C = Q(relu(DQ(A, a_s, a_z) x DQ(B, b_s)), c_s, c_z)
    let a_q = QuantParams::new(0.02, 8);
    let c_q = QuantParams::new(0.04, 12);
    let mut g = Graph::new();
    let a = g.add_input(TensorDesc::new([64, 256], DataType::U8), "A_q");
    let b = g.add_constant(Tensor::random(&[256, 64], DataType::I8, 17), "B_q");
    let a_f = g.add_op(OpKind::Dequantize { params: a_q }, &[a]).unwrap();
    let b_f = g
        .add_op(
            OpKind::Dequantize {
                params: QuantParams::symmetric(0.05),
            },
            &[b],
        )
        .unwrap();
    let mm = g.add_op(OpKind::MatMul, &[a_f, b_f]).unwrap();
    let act = g.add_op(OpKind::Unary(UnaryKind::Relu), &[mm]).unwrap();
    let out = g
        .add_op(
            OpKind::Quantize {
                dtype: DataType::U8,
                params: c_q,
            },
            &[act],
        )
        .unwrap();
    g.mark_output(out);
    g
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let machine = MachineDescriptor::xeon_8358();

    println!("== input graph (framework quantization pattern) ==");
    let shown = build();
    for line in shown.to_text().lines().filter(|l| l.contains(" = ")) {
        println!("  {line}");
    }

    // run the Graph IR pipeline only, to show the rewritten graph
    let mut g = build();
    gc_core::pipeline::optimize_graph(&mut g, &CompileOptions::new(machine.clone()))?;
    println!("\n== after low-precision conversion + cleanups ==");
    for line in g.to_text().lines().filter(|l| l.contains(" = ")) {
        println!("  {line}");
    }

    // full compile + differential check
    let inputs = vec![Tensor::random(&[64, 256], DataType::U8, 3)];
    let want = gc_bench::workloads::reference_eval(&build(), &inputs);
    let compiled = Compiler::new(CompileOptions::new(machine)).compile(build())?;
    let (outs, _) = compiled.execute(&inputs)?;
    let mut worst = 0i64;
    for i in 0..want[0].desc().volume() {
        let a = outs[0].storage().get_as_f64(i) as i64;
        let b = want[0].storage().get_as_f64(i) as i64;
        worst = worst.max((a - b).abs());
    }
    println!(
        "\nint8 path vs f32 reference: max difference {worst} quantization step(s) \
         over {} outputs",
        want[0].desc().volume()
    );
    assert!(worst <= 1);
    println!(
        "init stage ran {} time(s): weight prepack + zero-point compensation are cached",
        compiled.executable().init_runs()
    );
    Ok(())
}
