//! BERT-style multi-head attention (the paper's MHA workload): shows
//! how the compiler decomposes softmax into basic ops, fuses them into
//! the first batch matmul as split-reduction post-ops, and merges the
//! two batch matmuls under one parallel loop (coarse-grain fusion).
//!
//! Run with: `cargo run --release --example mha_attention`

use gc_bench::workloads::{self, random_inputs, reference_eval, MhaConfig};
use gc_core::{CompileOptions, Compiler};
use gc_machine::MachineDescriptor;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let machine = MachineDescriptor::xeon_8358();
    let cfg = MhaConfig {
        name: "MHA_demo",
        seq: 128,
        hidden: 256,
        heads: 4,
    };
    let batch = 8;
    println!(
        "{}: batch {batch}, seq {}, hidden {}, heads {} ({} per-head dims)",
        cfg.name,
        cfg.seq,
        cfg.hidden,
        cfg.heads,
        cfg.hidden / cfg.heads
    );

    // reference result from the unoptimized graph
    let (g0, _) = workloads::mha_f32(batch, &cfg);
    let inputs = random_inputs(&g0, 11);
    let want = reference_eval(&g0, &inputs);

    for (label, opts) in [
        ("full compiler", CompileOptions::new(machine.clone())),
        (
            "without coarse-grain fusion",
            CompileOptions::without_coarse_fusion(machine.clone()),
        ),
        ("unfused (every op standalone)", {
            CompileOptions::unfused(machine.clone())
        }),
    ] {
        let (g, _) = workloads::mha_f32(batch, &cfg);
        let compiled = Compiler::new(opts).compile(g)?;
        let (outs, _) = compiled.execute(&inputs)?;
        let n = want[0].desc().volume();
        let mut worst = 0f64;
        for i in 0..n {
            worst = worst
                .max((outs[0].storage().get_as_f64(i) - want[0].storage().get_as_f64(i)).abs());
        }
        let r = compiled.report();
        let proj = compiled.project();
        println!(
            "  {label:<32}: {:>2} partitions, {:>2} fused post-ops, projected {:.4} ms, max diff {worst:.1e}",
            r.partitions,
            r.fused_post_ops,
            machine.cycles_to_ms(proj.cycles)
        );
        assert!(worst < 1e-2);
    }

    println!("\nThe fused Tensor IR of the full pipeline (excerpt):");
    let (g, _) = workloads::mha_f32(batch, &cfg);
    let compiled = Compiler::new(CompileOptions::new(machine)).compile(g)?;
    for line in compiled.tir_text().lines().take(28) {
        println!("  {line}");
    }
    Ok(())
}
