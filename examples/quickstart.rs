//! Quickstart: build a small graph, compile it, execute it, and project
//! its performance on the paper's 32-core Xeon machine model.
//!
//! Run with: `cargo run --release --example quickstart`

use gc_core::{CompileOptions, Compiler};
use gc_graph::{Graph, OpKind, UnaryKind};
use gc_machine::MachineDescriptor;
use gc_tensor::{reference, DataType, Tensor, TensorDesc};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Describe the computation: y = relu(x W) for x[64, 128].
    let mut graph = Graph::new();
    let x = graph.add_input(TensorDesc::new([64, 128], DataType::F32), "x");
    let w = graph.add_constant(Tensor::random(&[128, 32], DataType::F32, 7), "W");
    let mm = graph.add_op(OpKind::MatMul, &[x, w])?;
    let y = graph.add_op(OpKind::Unary(UnaryKind::Relu), &[mm])?;
    graph.mark_output(y);

    // Keep the original around for the reference check (compilation
    // consumes the graph).
    let w_val = Tensor::random(&[128, 32], DataType::F32, 7);

    // 2. Compile for the paper's evaluation machine.
    let machine = MachineDescriptor::xeon_8358();
    let compiler = Compiler::new(CompileOptions::new(machine.clone()));
    let compiled = compiler.compile(graph)?;
    println!(
        "compiled: {} fused partition(s), {} post-op(s) fused, {} merged group(s)",
        compiled.report().partitions,
        compiled.report().fused_post_ops,
        compiled.report().merged_groups
    );

    // 3. Execute on real data. The first run also executes the
    //    constant-weight init stage (weight prepacking); later runs
    //    reuse the cached result.
    let x_val = Tensor::random(&[64, 128], DataType::F32, 1);
    let (outputs, stats) = compiled.execute(std::slice::from_ref(&x_val))?;
    println!(
        "executed in {:.3} ms wall ({} parallel-loop barriers)",
        stats.wall.as_secs_f64() * 1e3,
        stats.barriers
    );

    // 4. Check against the naive reference implementation.
    let want = reference::relu(&reference::matmul_f32(&x_val, &w_val)?)?;
    let flat_want = want.f32_slice()?;
    let got = outputs[0].f32_slice()?;
    let worst = got
        .iter()
        .zip(flat_want)
        .map(|(a, b)| (a - b).abs())
        .fold(0f32, f32::max);
    println!("max |diff| vs reference: {worst:.2e}");
    assert!(worst < 1e-3);

    // 5. Project the steady-state cost on the 32-core target.
    let proj = compiled.project();
    println!(
        "projected on {}: {:.1}k cycles = {:.4} ms",
        machine.name,
        proj.cycles / 1e3,
        machine.cycles_to_ms(proj.cycles)
    );
    Ok(())
}
