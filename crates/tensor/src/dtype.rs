//! Element data types supported by the compiler.
//!
//! The paper's workloads use FP32 and Int8 (asymmetric U8 activations,
//! symmetric I8 weights) with I32 accumulation; BF16 is carried as a
//! storage-only type converted through F32, matching how low-precision
//! types are treated by the Graph IR's low-precision conversion pass.

use std::fmt;

/// Data type of a tensor element.
///
/// # Examples
///
/// ```
/// use gc_tensor::DataType;
/// assert_eq!(DataType::F32.size_bytes(), 4);
/// assert!(DataType::I8.is_integral());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DataType {
    /// IEEE-754 single precision.
    F32,
    /// bfloat16, stored as the upper 16 bits of an `f32`.
    Bf16,
    /// Unsigned 8-bit integer (quantized activations).
    U8,
    /// Signed 8-bit integer (quantized weights).
    I8,
    /// Signed 32-bit integer (int8 matmul accumulator).
    I32,
    /// Signed 64-bit integer (indices, zero points after widening).
    I64,
}

impl DataType {
    /// Size of one element in bytes.
    pub fn size_bytes(self) -> usize {
        match self {
            DataType::F32 => 4,
            DataType::Bf16 => 2,
            DataType::U8 | DataType::I8 => 1,
            DataType::I32 => 4,
            DataType::I64 => 8,
        }
    }

    /// Whether the type is an integer type.
    pub fn is_integral(self) -> bool {
        matches!(
            self,
            DataType::U8 | DataType::I8 | DataType::I32 | DataType::I64
        )
    }

    /// Whether the type is a floating-point type.
    pub fn is_float(self) -> bool {
        !self.is_integral()
    }

    /// Whether the type is one of the 8-bit quantized types.
    pub fn is_quantized_int(self) -> bool {
        matches!(self, DataType::U8 | DataType::I8)
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::F32 => "f32",
            DataType::Bf16 => "bf16",
            DataType::U8 => "u8",
            DataType::I8 => "i8",
            DataType::I32 => "i32",
            DataType::I64 => "i64",
        };
        f.write_str(s)
    }
}

/// Convert an `f32` to bfloat16 bits with round-to-nearest-even.
pub fn f32_to_bf16_bits(x: f32) -> u16 {
    let bits = x.to_bits();
    // round-to-nearest-even on the truncated 16 bits
    let rounding_bias = 0x7fff + ((bits >> 16) & 1);
    ((bits.wrapping_add(rounding_bias)) >> 16) as u16
}

/// Convert bfloat16 bits back to `f32` (exact).
pub fn bf16_bits_to_f32(bits: u16) -> f32 {
    f32::from_bits((bits as u32) << 16)
}

/// A Rust type that can be stored as a tensor element.
///
/// This trait is sealed; it is implemented exactly for the Rust carrier
/// types of [`DataType`].
pub trait Element: Copy + Default + PartialEq + fmt::Debug + Send + Sync + 'static {
    /// The corresponding [`DataType`].
    const DTYPE: DataType;
}

impl Element for f32 {
    const DTYPE: DataType = DataType::F32;
}
impl Element for u8 {
    const DTYPE: DataType = DataType::U8;
}
impl Element for i8 {
    const DTYPE: DataType = DataType::I8;
}
impl Element for i32 {
    const DTYPE: DataType = DataType::I32;
}
impl Element for i64 {
    const DTYPE: DataType = DataType::I64;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes() {
        assert_eq!(DataType::F32.size_bytes(), 4);
        assert_eq!(DataType::Bf16.size_bytes(), 2);
        assert_eq!(DataType::U8.size_bytes(), 1);
        assert_eq!(DataType::I8.size_bytes(), 1);
        assert_eq!(DataType::I32.size_bytes(), 4);
        assert_eq!(DataType::I64.size_bytes(), 8);
    }

    #[test]
    fn classification() {
        assert!(DataType::F32.is_float());
        assert!(DataType::Bf16.is_float());
        assert!(DataType::U8.is_integral());
        assert!(DataType::I8.is_quantized_int());
        assert!(!DataType::I32.is_quantized_int());
    }

    #[test]
    fn display() {
        assert_eq!(DataType::F32.to_string(), "f32");
        assert_eq!(DataType::I8.to_string(), "i8");
    }

    #[test]
    fn bf16_round_trip_exact_values() {
        for &x in &[0.0f32, 1.0, -2.5, 0.15625, 1024.0] {
            let b = f32_to_bf16_bits(x);
            assert_eq!(bf16_bits_to_f32(b), x, "value {x} should be bf16-exact");
        }
    }

    #[test]
    fn bf16_rounds_to_nearest() {
        // 1.0 + 2^-9 is not representable in bf16; nearest is 1.0.
        let x = 1.0f32 + 2f32.powi(-9);
        let y = bf16_bits_to_f32(f32_to_bf16_bits(x));
        assert!((y - x).abs() <= 2f32.powi(-8));
    }

    #[test]
    fn element_dtype_mapping() {
        assert_eq!(<f32 as Element>::DTYPE, DataType::F32);
        assert_eq!(<u8 as Element>::DTYPE, DataType::U8);
        assert_eq!(<i8 as Element>::DTYPE, DataType::I8);
        assert_eq!(<i32 as Element>::DTYPE, DataType::I32);
        assert_eq!(<i64 as Element>::DTYPE, DataType::I64);
    }
}
