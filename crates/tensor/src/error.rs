//! Error type for tensor operations.

use crate::DataType;
use std::fmt;

/// Error returned by fallible tensor operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Two shapes that were required to match did not.
    ShapeMismatch {
        /// Shape that was expected.
        expected: Vec<usize>,
        /// Shape that was provided.
        actual: Vec<usize>,
    },
    /// A data type did not match what the operation requires.
    DtypeMismatch {
        /// Data type that was expected.
        expected: DataType,
        /// Data type that was provided.
        actual: DataType,
    },
    /// A dimension is not divisible by its block size.
    BlockNotDivisible {
        /// Axis being blocked.
        axis: usize,
        /// Dimension extent.
        dim: usize,
        /// Block size.
        block: usize,
    },
    /// An axis index was out of range for the tensor rank.
    AxisOutOfRange {
        /// Offending axis.
        axis: usize,
        /// Tensor rank.
        rank: usize,
    },
    /// The provided element count does not match the shape volume.
    LengthMismatch {
        /// Number of elements expected from the shape.
        expected: usize,
        /// Number provided.
        actual: usize,
    },
    /// A layout was not valid for the requested operation.
    InvalidLayout(String),
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { expected, actual } => {
                write!(f, "shape mismatch: expected {expected:?}, got {actual:?}")
            }
            TensorError::DtypeMismatch { expected, actual } => {
                write!(f, "dtype mismatch: expected {expected}, got {actual}")
            }
            TensorError::BlockNotDivisible { axis, dim, block } => write!(
                f,
                "dimension {dim} on axis {axis} is not divisible by block {block}"
            ),
            TensorError::AxisOutOfRange { axis, rank } => {
                write!(f, "axis {axis} out of range for rank {rank}")
            }
            TensorError::LengthMismatch { expected, actual } => {
                write!(
                    f,
                    "length mismatch: expected {expected} elements, got {actual}"
                )
            }
            TensorError::InvalidLayout(msg) => write!(f, "invalid layout: {msg}"),
        }
    }
}

impl std::error::Error for TensorError {}

/// Convenience alias for results of tensor operations.
pub type Result<T> = std::result::Result<T, TensorError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_nonempty() {
        let e = TensorError::ShapeMismatch {
            expected: vec![2, 3],
            actual: vec![3, 2],
        };
        let s = e.to_string();
        assert!(s.starts_with("shape mismatch"));
        let e = TensorError::DtypeMismatch {
            expected: DataType::F32,
            actual: DataType::I8,
        };
        assert!(e.to_string().contains("f32"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
