//! Dense tensors: a descriptor (shape, dtype, layout) plus storage.

use crate::dtype::{DataType, Element};
use crate::error::{Result, TensorError};
use crate::layout::{volume, Layout};
use rand::distributions::{Distribution, Uniform};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;
use std::sync::Arc;

/// Untyped tensor storage: one variant per supported [`DataType`].
#[derive(Debug, Clone, PartialEq)]
pub enum Storage {
    /// f32 elements.
    F32(Vec<f32>),
    /// bf16 elements stored as raw bits.
    Bf16(Vec<u16>),
    /// u8 elements.
    U8(Vec<u8>),
    /// i8 elements.
    I8(Vec<i8>),
    /// i32 elements.
    I32(Vec<i32>),
    /// i64 elements.
    I64(Vec<i64>),
}

impl Storage {
    /// Allocate zero-filled storage of `len` elements of `dtype`.
    pub fn zeros(dtype: DataType, len: usize) -> Storage {
        match dtype {
            DataType::F32 => Storage::F32(vec![0.0; len]),
            DataType::Bf16 => Storage::Bf16(vec![0; len]),
            DataType::U8 => Storage::U8(vec![0; len]),
            DataType::I8 => Storage::I8(vec![0; len]),
            DataType::I32 => Storage::I32(vec![0; len]),
            DataType::I64 => Storage::I64(vec![0; len]),
        }
    }

    /// The data type held by this storage.
    pub fn dtype(&self) -> DataType {
        match self {
            Storage::F32(_) => DataType::F32,
            Storage::Bf16(_) => DataType::Bf16,
            Storage::U8(_) => DataType::U8,
            Storage::I8(_) => DataType::I8,
            Storage::I32(_) => DataType::I32,
            Storage::I64(_) => DataType::I64,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        match self {
            Storage::F32(v) => v.len(),
            Storage::Bf16(v) => v.len(),
            Storage::U8(v) => v.len(),
            Storage::I8(v) => v.len(),
            Storage::I32(v) => v.len(),
            Storage::I64(v) => v.len(),
        }
    }

    /// Whether the storage holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Size of the storage in bytes.
    pub fn size_bytes(&self) -> usize {
        self.len() * self.dtype().size_bytes()
    }

    /// View as a typed slice.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DtypeMismatch`] if `T` does not match the
    /// stored data type.
    pub fn as_slice<T: StorageElement>(&self) -> Result<&[T]> {
        T::slice(self).ok_or(TensorError::DtypeMismatch {
            expected: T::DTYPE,
            actual: self.dtype(),
        })
    }

    /// View as a mutable typed slice.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DtypeMismatch`] if `T` does not match the
    /// stored data type.
    pub fn as_mut_slice<T: StorageElement>(&mut self) -> Result<&mut [T]> {
        let dt = self.dtype();
        T::slice_mut(self).ok_or(TensorError::DtypeMismatch {
            expected: T::DTYPE,
            actual: dt,
        })
    }

    /// Copy `src` into this storage in place (no reallocation).
    ///
    /// # Panics
    ///
    /// Panics if the data types or lengths differ — callers are expected
    /// to have validated both against their descriptors.
    pub fn copy_from(&mut self, src: &Storage) {
        match (self, src) {
            (Storage::F32(d), Storage::F32(s)) => d.copy_from_slice(s),
            (Storage::Bf16(d), Storage::Bf16(s)) => d.copy_from_slice(s),
            (Storage::U8(d), Storage::U8(s)) => d.copy_from_slice(s),
            (Storage::I8(d), Storage::I8(s)) => d.copy_from_slice(s),
            (Storage::I32(d), Storage::I32(s)) => d.copy_from_slice(s),
            (Storage::I64(d), Storage::I64(s)) => d.copy_from_slice(s),
            (d, s) => panic!("copy_from dtype mismatch: {} <- {}", d.dtype(), s.dtype()),
        }
    }

    /// Read element `i` widened to `f64` (bf16 goes through f32).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn get_as_f64(&self, i: usize) -> f64 {
        match self {
            Storage::F32(v) => v[i] as f64,
            Storage::Bf16(v) => crate::dtype::bf16_bits_to_f32(v[i]) as f64,
            Storage::U8(v) => v[i] as f64,
            Storage::I8(v) => v[i] as f64,
            Storage::I32(v) => v[i] as f64,
            Storage::I64(v) => v[i] as f64,
        }
    }
}

/// An [`Element`] whose typed slice can be extracted from a [`Storage`].
///
/// This trait is sealed: it is implemented exactly for the Rust carrier
/// types of the [`DataType`] variants and cannot be implemented outside
/// this crate.
pub trait StorageElement: Element + sealed::Sealed {
    #[doc(hidden)]
    fn slice(s: &Storage) -> Option<&[Self]>
    where
        Self: Sized;
    #[doc(hidden)]
    fn slice_mut(s: &mut Storage) -> Option<&mut [Self]>
    where
        Self: Sized;
}

mod sealed {
    pub trait Sealed {}
    impl Sealed for f32 {}
    impl Sealed for u8 {}
    impl Sealed for i8 {}
    impl Sealed for i32 {}
    impl Sealed for i64 {}
}

macro_rules! impl_storage_element {
    ($t:ty, $variant:ident) => {
        impl StorageElement for $t {
            fn slice(s: &Storage) -> Option<&[Self]> {
                match s {
                    Storage::$variant(v) => Some(v),
                    _ => None,
                }
            }
            fn slice_mut(s: &mut Storage) -> Option<&mut [Self]> {
                match s {
                    Storage::$variant(v) => Some(v),
                    _ => None,
                }
            }
        }
    };
}

impl_storage_element!(f32, F32);
impl_storage_element!(u8, U8);
impl_storage_element!(i8, I8);
impl_storage_element!(i32, I32);
impl_storage_element!(i64, I64);

/// Metadata of a tensor: logical shape, element type and memory layout.
///
/// This corresponds to the paper's *logical tensor*.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TensorDesc {
    shape: Vec<usize>,
    dtype: DataType,
    layout: Layout,
}

impl TensorDesc {
    /// Create a descriptor with the plain layout.
    pub fn new(shape: impl Into<Vec<usize>>, dtype: DataType) -> Self {
        TensorDesc {
            shape: shape.into(),
            dtype,
            layout: Layout::Plain,
        }
    }

    /// Create a descriptor with an explicit layout.
    ///
    /// # Errors
    ///
    /// Returns an error if the layout is invalid for the shape.
    pub fn with_layout(
        shape: impl Into<Vec<usize>>,
        dtype: DataType,
        layout: Layout,
    ) -> Result<Self> {
        let shape = shape.into();
        layout.storage_dims(&shape)?;
        Ok(TensorDesc {
            shape,
            dtype,
            layout,
        })
    }

    /// Logical shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Element data type.
    pub fn dtype(&self) -> DataType {
        self.dtype
    }

    /// Memory layout.
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    /// Number of logical elements.
    pub fn volume(&self) -> usize {
        volume(&self.shape)
    }

    /// Logical rank.
    pub fn rank(&self) -> usize {
        self.shape.len()
    }

    /// Size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.volume() * self.dtype.size_bytes()
    }

    /// Replace the layout, validating it against the shape.
    ///
    /// # Errors
    ///
    /// Returns an error if the layout is invalid for the shape.
    pub fn reinterpret_layout(&self, layout: Layout) -> Result<TensorDesc> {
        TensorDesc::with_layout(self.shape.clone(), self.dtype, layout)
    }
}

impl fmt::Display for TensorDesc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{:?} @{}", self.dtype, self.shape, self.layout)
    }
}

/// A dense tensor value: descriptor plus shared, immutable storage.
///
/// Cloning is cheap (the storage is reference counted). Mutation happens
/// through [`Tensor::make_mut`], which copies on write when shared.
///
/// # Examples
///
/// ```
/// use gc_tensor::{Tensor, DataType};
/// let t = Tensor::from_vec_f32(&[2, 2], vec![1.0, 2.0, 3.0, 4.0])?;
/// assert_eq!(t.desc().shape(), &[2, 2]);
/// assert_eq!(t.f32_slice()?[3], 4.0);
/// # Ok::<(), gc_tensor::TensorError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Tensor {
    desc: TensorDesc,
    data: Arc<Storage>,
}

impl Tensor {
    /// Zero-filled tensor with the plain layout.
    pub fn zeros(shape: &[usize], dtype: DataType) -> Tensor {
        let desc = TensorDesc::new(shape, dtype);
        let data = Arc::new(Storage::zeros(dtype, desc.volume()));
        Tensor { desc, data }
    }

    /// Zero-filled tensor with an explicit descriptor.
    pub fn zeros_desc(desc: &TensorDesc) -> Tensor {
        let data = Arc::new(Storage::zeros(desc.dtype(), desc.volume()));
        Tensor {
            desc: desc.clone(),
            data,
        }
    }

    /// Build a tensor from a descriptor and storage.
    ///
    /// # Errors
    ///
    /// Returns an error if the storage dtype or length disagree with the
    /// descriptor.
    pub fn from_parts(desc: TensorDesc, storage: Storage) -> Result<Tensor> {
        if storage.dtype() != desc.dtype() {
            return Err(TensorError::DtypeMismatch {
                expected: desc.dtype(),
                actual: storage.dtype(),
            });
        }
        if storage.len() != desc.volume() {
            return Err(TensorError::LengthMismatch {
                expected: desc.volume(),
                actual: storage.len(),
            });
        }
        Ok(Tensor {
            desc,
            data: Arc::new(storage),
        })
    }

    /// Build an f32 tensor from a flat row-major vector.
    ///
    /// # Errors
    ///
    /// Returns an error if `data.len()` disagrees with `shape`.
    pub fn from_vec_f32(shape: &[usize], data: Vec<f32>) -> Result<Tensor> {
        Tensor::from_parts(TensorDesc::new(shape, DataType::F32), Storage::F32(data))
    }

    /// Build a u8 tensor from a flat row-major vector.
    ///
    /// # Errors
    ///
    /// Returns an error if `data.len()` disagrees with `shape`.
    pub fn from_vec_u8(shape: &[usize], data: Vec<u8>) -> Result<Tensor> {
        Tensor::from_parts(TensorDesc::new(shape, DataType::U8), Storage::U8(data))
    }

    /// Build an i8 tensor from a flat row-major vector.
    ///
    /// # Errors
    ///
    /// Returns an error if `data.len()` disagrees with `shape`.
    pub fn from_vec_i8(shape: &[usize], data: Vec<i8>) -> Result<Tensor> {
        Tensor::from_parts(TensorDesc::new(shape, DataType::I8), Storage::I8(data))
    }

    /// Build an i32 tensor from a flat row-major vector.
    ///
    /// # Errors
    ///
    /// Returns an error if `data.len()` disagrees with `shape`.
    pub fn from_vec_i32(shape: &[usize], data: Vec<i32>) -> Result<Tensor> {
        Tensor::from_parts(TensorDesc::new(shape, DataType::I32), Storage::I32(data))
    }

    /// A scalar (rank-0) f32 tensor.
    pub fn scalar_f32(v: f32) -> Tensor {
        Tensor::from_vec_f32(&[], vec![v]).expect("scalar shape always matches")
    }

    /// Deterministic pseudo-random tensor (uniform), plain layout.
    ///
    /// f32 values lie in `[-1, 1)`; u8 in `[0, 16)`; i8 in `[-8, 8)`;
    /// wider integer types in small ranges suitable for tests.
    pub fn random(shape: &[usize], dtype: DataType, seed: u64) -> Tensor {
        let n = volume(shape);
        let mut rng = StdRng::seed_from_u64(seed);
        let storage = match dtype {
            DataType::F32 => {
                let d = Uniform::new(-1.0f32, 1.0);
                Storage::F32((0..n).map(|_| d.sample(&mut rng)).collect())
            }
            DataType::Bf16 => {
                let d = Uniform::new(-1.0f32, 1.0);
                Storage::Bf16(
                    (0..n)
                        .map(|_| crate::dtype::f32_to_bf16_bits(d.sample(&mut rng)))
                        .collect(),
                )
            }
            DataType::U8 => {
                let d = Uniform::new(0u8, 16);
                Storage::U8((0..n).map(|_| d.sample(&mut rng)).collect())
            }
            DataType::I8 => {
                let d = Uniform::new(-8i8, 8);
                Storage::I8((0..n).map(|_| d.sample(&mut rng)).collect())
            }
            DataType::I32 => {
                let d = Uniform::new(-100i32, 100);
                Storage::I32((0..n).map(|_| d.sample(&mut rng)).collect())
            }
            DataType::I64 => {
                let d = Uniform::new(-100i64, 100);
                Storage::I64((0..n).map(|_| d.sample(&mut rng)).collect())
            }
        };
        Tensor {
            desc: TensorDesc::new(shape, dtype),
            data: Arc::new(storage),
        }
    }

    /// Tensor descriptor.
    pub fn desc(&self) -> &TensorDesc {
        &self.desc
    }

    /// Shared storage.
    pub fn storage(&self) -> &Storage {
        &self.data
    }

    /// Mutable storage, copying if it is shared.
    pub fn make_mut(&mut self) -> &mut Storage {
        Arc::make_mut(&mut self.data)
    }

    /// Consume the tensor and return its storage, cloning if shared.
    pub fn into_storage(self) -> Storage {
        Arc::try_unwrap(self.data).unwrap_or_else(|arc| (*arc).clone())
    }

    /// Typed f32 view of the storage.
    ///
    /// # Errors
    ///
    /// Returns an error if the tensor is not f32.
    pub fn f32_slice(&self) -> Result<&[f32]> {
        self.data.as_slice::<f32>()
    }

    /// Typed u8 view.
    ///
    /// # Errors
    ///
    /// Returns an error if the tensor is not u8.
    pub fn u8_slice(&self) -> Result<&[u8]> {
        self.data.as_slice::<u8>()
    }

    /// Typed i8 view.
    ///
    /// # Errors
    ///
    /// Returns an error if the tensor is not i8.
    pub fn i8_slice(&self) -> Result<&[i8]> {
        self.data.as_slice::<i8>()
    }

    /// Typed i32 view.
    ///
    /// # Errors
    ///
    /// Returns an error if the tensor is not i32.
    pub fn i32_slice(&self) -> Result<&[i32]> {
        self.data.as_slice::<i32>()
    }

    /// Element at logical index `idx` widened to f64, honouring layout.
    pub fn at(&self, idx: &[usize]) -> f64 {
        let off = self.desc.layout().offset_of(self.desc.shape(), idx);
        self.data.get_as_f64(off)
    }

    /// Maximum absolute elementwise difference against `other`.
    ///
    /// Compares *logical* elements, so tensors in different layouts can
    /// be compared directly.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn max_abs_diff(&self, other: &Tensor) -> f64 {
        assert_eq!(
            self.desc.shape(),
            other.desc.shape(),
            "max_abs_diff requires equal shapes"
        );
        let mut idx = vec![0usize; self.desc.rank()];
        let n = self.desc.volume();
        let mut worst = 0f64;
        for _ in 0..n {
            let d = (self.at(&idx) - other.at(&idx)).abs();
            if d > worst {
                worst = d;
            }
            // increment mixed-radix index
            for ax in (0..idx.len()).rev() {
                idx[ax] += 1;
                if idx[ax] < self.desc.shape()[ax] {
                    break;
                }
                idx[ax] = 0;
            }
        }
        worst
    }

    /// Whether all logical elements agree with `other` within `tol`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn allclose(&self, other: &Tensor, tol: f64) -> bool {
        self.max_abs_diff(other) <= tol
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor({})", self.desc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::Layout;

    #[test]
    fn zeros_has_right_volume() {
        let t = Tensor::zeros(&[3, 4], DataType::F32);
        assert_eq!(t.storage().len(), 12);
        assert_eq!(t.desc().size_bytes(), 48);
        assert!(t.f32_slice().unwrap().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn from_vec_checks_length() {
        assert!(Tensor::from_vec_f32(&[2, 2], vec![1.0; 3]).is_err());
        assert!(Tensor::from_vec_f32(&[2, 2], vec![1.0; 4]).is_ok());
    }

    #[test]
    fn typed_view_wrong_dtype_errors() {
        let t = Tensor::zeros(&[2], DataType::F32);
        assert!(t.i8_slice().is_err());
        let err = t.u8_slice().unwrap_err();
        assert!(matches!(err, TensorError::DtypeMismatch { .. }));
    }

    #[test]
    fn make_mut_copies_on_write() {
        let mut a = Tensor::from_vec_f32(&[2], vec![1.0, 2.0]).unwrap();
        let b = a.clone();
        a.make_mut().as_mut_slice::<f32>().unwrap()[0] = 9.0;
        assert_eq!(a.f32_slice().unwrap()[0], 9.0);
        assert_eq!(b.f32_slice().unwrap()[0], 1.0);
    }

    #[test]
    fn at_honours_blocked_layout() {
        // 4x4 f32 blocked 2x2: storage [2,2,2,2]
        let layout = Layout::blocked_a(2, 2, 2);
        let desc = TensorDesc::with_layout([4, 4], DataType::F32, layout).unwrap();
        let mut data = vec![0f32; 16];
        // logical (1, 2) -> outer (0, 1), inner (1, 0):
        // off = 0*8 + 1*4 + 1*2 + 0 = 6
        data[6] = 42.0;
        let t = Tensor::from_parts(desc, Storage::F32(data)).unwrap();
        assert_eq!(t.at(&[1, 2]), 42.0);
    }

    #[test]
    fn allclose_across_layouts() {
        // same logical content, plain vs blocked
        let plain = Tensor::from_vec_f32(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let layout = Layout::blocked_a(2, 1, 2);
        // blocked 1x2 over [2,2] -> storage [2,1,1,2]; same linear order
        let desc = TensorDesc::with_layout([2, 2], DataType::F32, layout).unwrap();
        let blocked = Tensor::from_parts(desc, Storage::F32(vec![1.0, 2.0, 3.0, 4.0])).unwrap();
        assert!(plain.allclose(&blocked, 0.0));
    }

    #[test]
    fn random_is_deterministic() {
        let a = Tensor::random(&[8], DataType::F32, 7);
        let b = Tensor::random(&[8], DataType::F32, 7);
        assert_eq!(a.f32_slice().unwrap(), b.f32_slice().unwrap());
        let c = Tensor::random(&[8], DataType::F32, 8);
        assert_ne!(a.f32_slice().unwrap(), c.f32_slice().unwrap());
    }

    #[test]
    fn random_ranges() {
        let t = Tensor::random(&[100], DataType::U8, 3);
        assert!(t.u8_slice().unwrap().iter().all(|&x| x < 16));
        let t = Tensor::random(&[100], DataType::I8, 3);
        assert!(t.i8_slice().unwrap().iter().all(|&x| (-8..8).contains(&x)));
    }

    #[test]
    fn scalar_rank0() {
        let t = Tensor::scalar_f32(3.5);
        assert_eq!(t.desc().rank(), 0);
        assert_eq!(t.desc().volume(), 1);
        assert_eq!(t.at(&[]), 3.5);
    }

    #[test]
    fn desc_display() {
        let d = TensorDesc::new([2, 3], DataType::I8);
        assert_eq!(d.to_string(), "i8[2, 3] @plain");
    }

    #[test]
    fn max_abs_diff_detects_difference() {
        let a = Tensor::from_vec_f32(&[3], vec![1.0, 2.0, 3.0]).unwrap();
        let b = Tensor::from_vec_f32(&[3], vec![1.0, 2.5, 3.0]).unwrap();
        assert_eq!(a.max_abs_diff(&b), 0.5);
        assert!(!a.allclose(&b, 0.4));
        assert!(a.allclose(&b, 0.5));
    }
}
