//! Naive reference implementations of every DNN operation.
//!
//! These are the *oracle* against which compiled executions, the
//! baseline primitives library, and the microkernels are all tested.
//! They favour obviousness over speed and operate on plain-layout
//! tensors only.

use crate::dtype::DataType;
use crate::error::{Result, TensorError};
use crate::quant::QuantParams;
use crate::tensor::{Storage, Tensor, TensorDesc};

fn require_plain(t: &Tensor) -> Result<()> {
    if t.desc().layout().is_plain() {
        Ok(())
    } else {
        Err(TensorError::InvalidLayout(
            "reference ops require plain layout".to_string(),
        ))
    }
}

fn matmul_dims(a: &Tensor, b: &Tensor) -> Result<(usize, usize, usize, usize)> {
    let (sa, sb) = (a.desc().shape(), b.desc().shape());
    if sa.len() < 2 || sb.len() < 2 || sa.len() != sb.len() {
        return Err(TensorError::ShapeMismatch {
            expected: sa.to_vec(),
            actual: sb.to_vec(),
        });
    }
    let r = sa.len();
    let (m, k) = (sa[r - 2], sa[r - 1]);
    let (k2, n) = (sb[r - 2], sb[r - 1]);
    if k != k2 || sa[..r - 2] != sb[..r - 2] {
        return Err(TensorError::ShapeMismatch {
            expected: sa.to_vec(),
            actual: sb.to_vec(),
        });
    }
    let batch: usize = sa[..r - 2].iter().product();
    Ok((batch, m, n, k))
}

/// `C[..., M, N] = A[..., M, K] x B[..., K, N]` in f32.
///
/// Leading axes are a shared batch. Inputs must be plain-layout f32.
///
/// # Errors
///
/// Returns an error on shape/dtype/layout mismatch.
pub fn matmul_f32(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    require_plain(a)?;
    require_plain(b)?;
    let (batch, m, n, k) = matmul_dims(a, b)?;
    let av = a.f32_slice()?;
    let bv = b.f32_slice()?;
    let mut out = vec![0f32; batch * m * n];
    for t in 0..batch {
        let abase = t * m * k;
        let bbase = t * k * n;
        let cbase = t * m * n;
        for i in 0..m {
            for l in 0..k {
                let x = av[abase + i * k + l];
                for j in 0..n {
                    out[cbase + i * n + j] += x * bv[bbase + l * n + j];
                }
            }
        }
    }
    let mut shape = a.desc().shape().to_vec();
    let r = shape.len();
    shape[r - 1] = n;
    Tensor::from_vec_f32(&shape, out)
}

/// Int8 matmul: `C_i32[..., M, N] = A_u8[..., M, K] x B_i8[..., K, N]`
/// with raw (uncompensated) i32 accumulation.
///
/// # Errors
///
/// Returns an error on shape/dtype/layout mismatch.
pub fn matmul_u8i8_i32(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    require_plain(a)?;
    require_plain(b)?;
    let (batch, m, n, k) = matmul_dims(a, b)?;
    let av = a.u8_slice()?;
    let bv = b.i8_slice()?;
    let mut out = vec![0i32; batch * m * n];
    for t in 0..batch {
        let abase = t * m * k;
        let bbase = t * k * n;
        let cbase = t * m * n;
        for i in 0..m {
            for l in 0..k {
                let x = av[abase + i * k + l] as i32;
                for j in 0..n {
                    out[cbase + i * n + j] += x * bv[bbase + l * n + j] as i32;
                }
            }
        }
    }
    let mut shape = a.desc().shape().to_vec();
    let r = shape.len();
    shape[r - 1] = n;
    Tensor::from_vec_i32(&shape, out)
}

fn unary_f32(t: &Tensor, f: impl Fn(f32) -> f32) -> Result<Tensor> {
    require_plain(t)?;
    let v = t.f32_slice()?;
    let out: Vec<f32> = v.iter().map(|&x| f(x)).collect();
    Tensor::from_vec_f32(t.desc().shape(), out)
}

/// Elementwise ReLU.
///
/// # Errors
///
/// Returns an error if the input is not plain-layout f32.
pub fn relu(t: &Tensor) -> Result<Tensor> {
    unary_f32(t, |x| x.max(0.0))
}

/// Elementwise GELU (tanh approximation, as decomposed by DL frameworks).
///
/// # Errors
///
/// Returns an error if the input is not plain-layout f32.
pub fn gelu(t: &Tensor) -> Result<Tensor> {
    unary_f32(t, gelu_scalar)
}

/// The scalar GELU-tanh formula shared with compiled kernels.
pub fn gelu_scalar(x: f32) -> f32 {
    const SQRT_2_OVER_PI: f32 = 0.797_884_6;
    0.5 * x * (1.0 + (SQRT_2_OVER_PI * (x + 0.044_715 * x * x * x)).tanh())
}

/// Elementwise sigmoid.
///
/// # Errors
///
/// Returns an error if the input is not plain-layout f32.
pub fn sigmoid(t: &Tensor) -> Result<Tensor> {
    unary_f32(t, |x| 1.0 / (1.0 + (-x).exp()))
}

/// Elementwise tanh.
///
/// # Errors
///
/// Returns an error if the input is not plain-layout f32.
pub fn tanh(t: &Tensor) -> Result<Tensor> {
    unary_f32(t, f32::tanh)
}

/// Elementwise exp.
///
/// # Errors
///
/// Returns an error if the input is not plain-layout f32.
pub fn exp(t: &Tensor) -> Result<Tensor> {
    unary_f32(t, f32::exp)
}

/// Supported binary ops for [`binary`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinaryKind {
    /// Elementwise addition.
    Add,
    /// Elementwise subtraction.
    Sub,
    /// Elementwise multiplication.
    Mul,
    /// Elementwise division.
    Div,
    /// Elementwise maximum.
    Max,
    /// Elementwise minimum.
    Min,
}

impl BinaryKind {
    /// Apply the op to two scalars.
    pub fn apply(self, a: f32, b: f32) -> f32 {
        match self {
            BinaryKind::Add => a + b,
            BinaryKind::Sub => a - b,
            BinaryKind::Mul => a * b,
            BinaryKind::Div => a / b,
            BinaryKind::Max => a.max(b),
            BinaryKind::Min => a.min(b),
        }
    }
}

/// Elementwise binary op with right-aligned broadcasting of `b` onto `a`
/// (numpy rules restricted to: equal dims, or `b` dim == 1, or missing
/// leading dims in `b`).
///
/// # Errors
///
/// Returns an error on incompatible shapes or non-f32 inputs.
pub fn binary(kind: BinaryKind, a: &Tensor, b: &Tensor) -> Result<Tensor> {
    require_plain(a)?;
    require_plain(b)?;
    let sa = a.desc().shape().to_vec();
    let sb = b.desc().shape().to_vec();
    // validate right-aligned broadcast of b onto a
    let offset = sa
        .len()
        .checked_sub(sb.len())
        .ok_or_else(|| TensorError::ShapeMismatch {
            expected: sa.clone(),
            actual: sb.clone(),
        })?;
    for (i, &db) in sb.iter().enumerate() {
        let da = sa[offset + i];
        if db != da && db != 1 {
            return Err(TensorError::ShapeMismatch {
                expected: sa.clone(),
                actual: sb.clone(),
            });
        }
    }
    let av = a.f32_slice()?;
    let bv = b.f32_slice()?;
    let mut out = vec![0f32; av.len()];
    let rank = sa.len();
    let mut idx = vec![0usize; rank];
    let b_strides = crate::layout::row_major_strides(&sb);
    for (lin, o) in out.iter_mut().enumerate() {
        let mut b_off = 0usize;
        for (i, &db) in sb.iter().enumerate() {
            let ia = idx[offset + i];
            let ib = if db == 1 { 0 } else { ia };
            b_off += ib * b_strides[i];
        }
        *o = kind.apply(av[lin], bv[b_off]);
        for ax in (0..rank).rev() {
            idx[ax] += 1;
            if idx[ax] < sa[ax] {
                break;
            }
            idx[ax] = 0;
        }
    }
    Tensor::from_vec_f32(&sa, out)
}

/// Add a bias vector `[N]` to the last axis of `t`.
///
/// # Errors
///
/// Returns an error on shape mismatch.
pub fn bias_add(t: &Tensor, bias: &Tensor) -> Result<Tensor> {
    binary(BinaryKind::Add, t, bias)
}

/// Reduction kinds for [`reduce_last_axis`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReduceKind {
    /// Sum of the axis.
    Sum,
    /// Maximum of the axis.
    Max,
}

/// Reduce the last axis; output keeps the axis with extent 1.
///
/// # Errors
///
/// Returns an error for non-f32 or non-plain input.
pub fn reduce_last_axis(kind: ReduceKind, t: &Tensor) -> Result<Tensor> {
    require_plain(t)?;
    let shape = t.desc().shape();
    let r = shape.len();
    if r == 0 {
        return Err(TensorError::AxisOutOfRange { axis: 0, rank: 0 });
    }
    let n = shape[r - 1];
    let rows: usize = shape[..r - 1].iter().product();
    let v = t.f32_slice()?;
    let mut out = Vec::with_capacity(rows);
    for row in v.chunks_exact(n) {
        let val = match kind {
            ReduceKind::Sum => row.iter().sum::<f32>(),
            ReduceKind::Max => row.iter().copied().fold(f32::NEG_INFINITY, f32::max),
        };
        out.push(val);
    }
    let mut out_shape = shape.to_vec();
    out_shape[r - 1] = 1;
    Tensor::from_vec_f32(&out_shape, out)
}

/// Numerically-stable softmax over the last axis.
///
/// # Errors
///
/// Returns an error for non-f32 or non-plain input.
pub fn softmax_last_axis(t: &Tensor) -> Result<Tensor> {
    require_plain(t)?;
    let shape = t.desc().shape();
    let r = shape.len();
    let n = shape[r - 1];
    let v = t.f32_slice()?;
    let mut out = vec![0f32; v.len()];
    for (orow, row) in out.chunks_exact_mut(n).zip(v.chunks_exact(n)) {
        let mx = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0f32;
        for (o, &x) in orow.iter_mut().zip(row) {
            let e = (x - mx).exp();
            *o = e;
            sum += e;
        }
        let inv = 1.0 / sum;
        for o in orow.iter_mut() {
            *o *= inv;
        }
    }
    Tensor::from_vec_f32(shape, out)
}

/// Quantize an f32 tensor to `U8` or `I8`.
///
/// # Errors
///
/// Returns an error for non-f32 input or a non-quantized target dtype.
pub fn quantize(t: &Tensor, dtype: DataType, p: QuantParams) -> Result<Tensor> {
    require_plain(t)?;
    let v = t.f32_slice()?;
    let desc = TensorDesc::new(t.desc().shape(), dtype);
    let storage = match dtype {
        DataType::U8 => Storage::U8(v.iter().map(|&x| crate::quant::quantize_u8(x, p)).collect()),
        DataType::I8 => Storage::I8(
            v.iter()
                .map(|&x| crate::quant::quantize_i8(x, p.scale))
                .collect(),
        ),
        other => {
            return Err(TensorError::DtypeMismatch {
                expected: DataType::U8,
                actual: other,
            })
        }
    };
    Tensor::from_parts(desc, storage)
}

/// Dequantize a `U8`/`I8` tensor to f32.
///
/// # Errors
///
/// Returns an error for a non-quantized input dtype.
pub fn dequantize(t: &Tensor, p: QuantParams) -> Result<Tensor> {
    require_plain(t)?;
    let out: Vec<f32> = match t.storage() {
        Storage::U8(v) => v
            .iter()
            .map(|&q| crate::quant::dequantize_u8(q, p))
            .collect(),
        Storage::I8(v) => v
            .iter()
            .map(|&q| crate::quant::dequantize_i8(q, p.scale))
            .collect(),
        other => {
            return Err(TensorError::DtypeMismatch {
                expected: DataType::U8,
                actual: other.dtype(),
            })
        }
    };
    Tensor::from_vec_f32(t.desc().shape(), out)
}

/// Cast i32 to f32 elementwise.
///
/// # Errors
///
/// Returns an error for a non-i32 input.
pub fn cast_i32_f32(t: &Tensor) -> Result<Tensor> {
    require_plain(t)?;
    let v = t.i32_slice()?;
    Tensor::from_vec_f32(t.desc().shape(), v.iter().map(|&x| x as f32).collect())
}

/// A full reference MLP layer: `act(X x W + b)` in f32.
///
/// `act` of `None` means linear.
///
/// # Errors
///
/// Propagates any shape/dtype error from the constituent ops.
pub fn mlp_layer_f32(
    x: &Tensor,
    w: &Tensor,
    bias: Option<&Tensor>,
    act: Option<fn(&Tensor) -> Result<Tensor>>,
) -> Result<Tensor> {
    let mut y = matmul_f32(x, w)?;
    if let Some(b) = bias {
        y = bias_add(&y, b)?;
    }
    if let Some(f) = act {
        y = f(&y)?;
    }
    Ok(y)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_small_known() {
        let a = Tensor::from_vec_f32(&[2, 3], vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let b = Tensor::from_vec_f32(&[3, 2], vec![7., 8., 9., 10., 11., 12.]).unwrap();
        let c = matmul_f32(&a, &b).unwrap();
        assert_eq!(c.desc().shape(), &[2, 2]);
        assert_eq!(c.f32_slice().unwrap(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_batched() {
        let a = Tensor::random(&[3, 2, 4], DataType::F32, 1);
        let b = Tensor::random(&[3, 4, 5], DataType::F32, 2);
        let c = matmul_f32(&a, &b).unwrap();
        assert_eq!(c.desc().shape(), &[3, 2, 5]);
        // check one element by hand
        let want: f32 = (0..4)
            .map(|k| a.at(&[2, 1, k]) as f32 * b.at(&[2, k, 3]) as f32)
            .sum();
        assert!((c.at(&[2, 1, 3]) as f32 - want).abs() < 1e-5);
    }

    #[test]
    fn matmul_shape_mismatch() {
        let a = Tensor::zeros(&[2, 3], DataType::F32);
        let b = Tensor::zeros(&[4, 2], DataType::F32);
        assert!(matmul_f32(&a, &b).is_err());
    }

    #[test]
    fn matmul_int8_known() {
        let a = Tensor::from_vec_u8(&[1, 2], vec![3, 5]).unwrap();
        let b = Tensor::from_vec_i8(&[2, 1], vec![-2, 4]).unwrap();
        let c = matmul_u8i8_i32(&a, &b).unwrap();
        assert_eq!(c.i32_slice().unwrap(), &[3 * -2 + 5 * 4]);
    }

    #[test]
    fn relu_clamps() {
        let t = Tensor::from_vec_f32(&[4], vec![-1., 0., 2., -3.]).unwrap();
        assert_eq!(relu(&t).unwrap().f32_slice().unwrap(), &[0., 0., 2., 0.]);
    }

    #[test]
    fn gelu_known_points() {
        let t = Tensor::from_vec_f32(&[3], vec![0., 1., -1.]).unwrap();
        let g = gelu(&t).unwrap();
        let v = g.f32_slice().unwrap();
        assert!((v[0] - 0.0).abs() < 1e-6);
        assert!((v[1] - 0.841192).abs() < 1e-4);
        assert!((v[2] + 0.158808).abs() < 1e-4);
    }

    #[test]
    fn binary_broadcast_row() {
        let a = Tensor::from_vec_f32(&[2, 3], vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let b = Tensor::from_vec_f32(&[3], vec![10., 20., 30.]).unwrap();
        let c = binary(BinaryKind::Add, &a, &b).unwrap();
        assert_eq!(c.f32_slice().unwrap(), &[11., 22., 33., 14., 25., 36.]);
    }

    #[test]
    fn binary_broadcast_keepdim() {
        // b has shape [2, 1]: broadcast along last axis
        let a = Tensor::from_vec_f32(&[2, 3], vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let b = Tensor::from_vec_f32(&[2, 1], vec![10., 100.]).unwrap();
        let c = binary(BinaryKind::Mul, &a, &b).unwrap();
        assert_eq!(c.f32_slice().unwrap(), &[10., 20., 30., 400., 500., 600.]);
    }

    #[test]
    fn binary_incompatible_shapes_error() {
        let a = Tensor::zeros(&[2, 3], DataType::F32);
        let b = Tensor::zeros(&[2], DataType::F32);
        assert!(binary(BinaryKind::Add, &a, &b).is_err());
    }

    #[test]
    fn reduce_sum_and_max() {
        let t = Tensor::from_vec_f32(&[2, 3], vec![1., 5., 2., -1., -5., -2.]).unwrap();
        let s = reduce_last_axis(ReduceKind::Sum, &t).unwrap();
        assert_eq!(s.desc().shape(), &[2, 1]);
        assert_eq!(s.f32_slice().unwrap(), &[8., -8.]);
        let m = reduce_last_axis(ReduceKind::Max, &t).unwrap();
        assert_eq!(m.f32_slice().unwrap(), &[5., -1.]);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let t = Tensor::random(&[4, 7], DataType::F32, 9);
        let s = softmax_last_axis(&t).unwrap();
        for row in s.f32_slice().unwrap().chunks_exact(7) {
            let sum: f32 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
            assert!(row.iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let t = Tensor::from_vec_f32(&[1, 3], vec![1., 2., 3.]).unwrap();
        let t2 = Tensor::from_vec_f32(&[1, 3], vec![1001., 1002., 1003.]).unwrap();
        let a = softmax_last_axis(&t).unwrap();
        let b = softmax_last_axis(&t2).unwrap();
        assert!(a.allclose(&b, 1e-5));
    }

    #[test]
    fn quantize_dequantize_tensors() {
        let t = Tensor::from_vec_f32(&[3], vec![0.0, 0.5, -0.5]).unwrap();
        let p = QuantParams::new(0.25, 128);
        let q = quantize(&t, DataType::U8, p).unwrap();
        assert_eq!(q.u8_slice().unwrap(), &[128, 130, 126]);
        let d = dequantize(&q, p).unwrap();
        assert!(t.allclose(&d, 1e-6));
    }

    #[test]
    fn cast_i32() {
        let t = Tensor::from_vec_i32(&[2], vec![3, -4]).unwrap();
        let f = cast_i32_f32(&t).unwrap();
        assert_eq!(f.f32_slice().unwrap(), &[3.0, -4.0]);
    }

    #[test]
    fn mlp_layer_composes() {
        let x = Tensor::random(&[2, 4], DataType::F32, 11);
        let w = Tensor::random(&[4, 3], DataType::F32, 12);
        let b = Tensor::random(&[3], DataType::F32, 13);
        let y = mlp_layer_f32(&x, &w, Some(&b), Some(relu)).unwrap();
        let manual = relu(&bias_add(&matmul_f32(&x, &w).unwrap(), &b).unwrap()).unwrap();
        assert!(y.allclose(&manual, 0.0));
    }

    #[test]
    fn reference_rejects_blocked_layout() {
        let t = Tensor::random(&[4, 4], DataType::F32, 14);
        let blocked = crate::reorder::reorder(&t, crate::Layout::blocked_a(2, 2, 2)).unwrap();
        assert!(relu(&blocked).is_err());
    }
}
