//! Layout reorders: copy a tensor's logical contents into a new layout.
//!
//! Layout propagation inserts reorder OPs at graph boundaries and
//! between Tunable OPs whose preferred blocked layouts differ; this
//! module is the runtime realization of those OPs (and the oracle the
//! fused in-template reorders are tested against).

use crate::error::{Result, TensorError};
use crate::layout::Layout;
use crate::tensor::{Storage, StorageElement, Tensor, TensorDesc};

/// Reorder `src` into layout `dst_layout`, preserving logical contents.
///
/// # Errors
///
/// Returns an error if `dst_layout` is invalid for the shape or the
/// dtype is unsupported for reorder (bf16 reorders are not needed by any
/// pipeline and are rejected).
pub fn reorder(src: &Tensor, dst_layout: Layout) -> Result<Tensor> {
    let desc = TensorDesc::with_layout(src.desc().shape(), src.desc().dtype(), dst_layout)?;
    if src.desc().layout() == desc.layout() {
        return Ok(src.clone());
    }
    let mut out = Storage::zeros(desc.dtype(), desc.volume());
    match src.storage() {
        Storage::F32(_) => reorder_typed::<f32>(src, &desc, &mut out)?,
        Storage::U8(_) => reorder_typed::<u8>(src, &desc, &mut out)?,
        Storage::I8(_) => reorder_typed::<i8>(src, &desc, &mut out)?,
        Storage::I32(_) => reorder_typed::<i32>(src, &desc, &mut out)?,
        Storage::I64(_) => reorder_typed::<i64>(src, &desc, &mut out)?,
        Storage::Bf16(_) => {
            return Err(TensorError::InvalidLayout(
                "bf16 reorder is not supported".to_string(),
            ))
        }
    }
    Tensor::from_parts(desc, out)
}

fn reorder_typed<T: StorageElement>(
    src: &Tensor,
    dst_desc: &TensorDesc,
    out: &mut Storage,
) -> Result<()> {
    let shape = src.desc().shape().to_vec();
    let src_layout = src.desc().layout().clone();
    let dst_layout = dst_desc.layout().clone();
    let sdata = src.storage().as_slice::<T>()?;
    let ddata = out.as_mut_slice::<T>()?;
    let rank = shape.len();
    let mut idx = vec![0usize; rank];
    let n: usize = shape.iter().product();
    for _ in 0..n {
        let s_off = src_layout.offset_of(&shape, &idx);
        let d_off = dst_layout.offset_of(&shape, &idx);
        ddata[d_off] = sdata[s_off];
        for ax in (0..rank).rev() {
            idx[ax] += 1;
            if idx[ax] < shape[ax] {
                break;
            }
            idx[ax] = 0;
        }
    }
    Ok(())
}

/// Transpose the last two logical axes of a plain-layout tensor.
///
/// Used by the MHA pipeline (`K^T` in `Q x K^T`).
///
/// # Errors
///
/// Returns an error if the tensor is not plain-layout, has rank < 2, or
/// is bf16.
pub fn transpose_last2(src: &Tensor) -> Result<Tensor> {
    if !src.desc().layout().is_plain() {
        return Err(TensorError::InvalidLayout(
            "transpose requires plain layout".to_string(),
        ));
    }
    let shape = src.desc().shape();
    if shape.len() < 2 {
        return Err(TensorError::AxisOutOfRange {
            axis: 1,
            rank: shape.len(),
        });
    }
    let mut out_shape = shape.to_vec();
    let r = out_shape.len();
    out_shape.swap(r - 2, r - 1);
    let desc = TensorDesc::new(out_shape.clone(), src.desc().dtype());
    let mut out = Storage::zeros(desc.dtype(), desc.volume());
    match src.storage() {
        Storage::F32(_) => transpose_typed::<f32>(src, &out_shape, &mut out)?,
        Storage::U8(_) => transpose_typed::<u8>(src, &out_shape, &mut out)?,
        Storage::I8(_) => transpose_typed::<i8>(src, &out_shape, &mut out)?,
        Storage::I32(_) => transpose_typed::<i32>(src, &out_shape, &mut out)?,
        Storage::I64(_) => transpose_typed::<i64>(src, &out_shape, &mut out)?,
        Storage::Bf16(_) => {
            return Err(TensorError::InvalidLayout(
                "bf16 transpose is not supported".to_string(),
            ))
        }
    }
    Tensor::from_parts(desc, out)
}

fn transpose_typed<T: StorageElement>(
    src: &Tensor,
    out_shape: &[usize],
    out: &mut Storage,
) -> Result<()> {
    let in_shape = src.desc().shape();
    let r = in_shape.len();
    let rows = in_shape[r - 2];
    let cols = in_shape[r - 1];
    let batch: usize = in_shape[..r - 2].iter().product();
    let _ = out_shape;
    let sdata = src.storage().as_slice::<T>()?;
    let ddata = out.as_mut_slice::<T>()?;
    for b in 0..batch {
        let s = &sdata[b * rows * cols..(b + 1) * rows * cols];
        let d = &mut ddata[b * rows * cols..(b + 1) * rows * cols];
        for i in 0..rows {
            for j in 0..cols {
                d[j * rows + i] = s[i * cols + j];
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtype::DataType;

    #[test]
    fn reorder_plain_to_blocked_round_trip() {
        let t = Tensor::random(&[8, 12], DataType::F32, 1);
        let blocked = reorder(&t, Layout::blocked_a(2, 4, 3)).unwrap();
        assert!(t.allclose(&blocked, 0.0));
        let back = reorder(&blocked, Layout::Plain).unwrap();
        assert_eq!(back.f32_slice().unwrap(), t.f32_slice().unwrap());
    }

    #[test]
    fn reorder_b_layout_places_panels_contiguously() {
        // B[4, 4] with KB=2, NB=2 -> storage [2, 2, 2, 2] with inner (n, k)
        let t = Tensor::from_vec_f32(&[4, 4], (0..16).map(|x| x as f32).collect()).unwrap();
        let b = reorder(&t, Layout::blocked_b(2, 2, 2)).unwrap();
        let d = b.f32_slice().unwrap();
        // first tile: k in 0..2, n in 0..2, stored n-major then k:
        // (n=0,k=0)=B[0,0]=0, (n=0,k=1)=B[1,0]=4, (n=1,k=0)=B[0,1]=1, (n=1,k=1)=B[1,1]=5
        assert_eq!(&d[..4], &[0.0, 4.0, 1.0, 5.0]);
    }

    #[test]
    fn reorder_same_layout_is_identity() {
        let t = Tensor::random(&[4, 4], DataType::I8, 2);
        let r = reorder(&t, Layout::Plain).unwrap();
        assert_eq!(r.i8_slice().unwrap(), t.i8_slice().unwrap());
    }

    #[test]
    fn reorder_between_two_blocked_layouts() {
        let t = Tensor::random(&[8, 8], DataType::F32, 3);
        let a = reorder(&t, Layout::blocked_a(2, 2, 4)).unwrap();
        let b = reorder(&a, Layout::blocked_a(2, 4, 2)).unwrap();
        assert!(t.allclose(&b, 0.0));
    }

    #[test]
    fn reorder_int8_types() {
        let t = Tensor::random(&[4, 8], DataType::U8, 4);
        let b = reorder(&t, Layout::blocked_b(2, 2, 4)).unwrap();
        assert!(t.allclose(&b, 0.0));
    }

    #[test]
    fn transpose_2d() {
        let t = Tensor::from_vec_f32(&[2, 3], vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let tt = transpose_last2(&t).unwrap();
        assert_eq!(tt.desc().shape(), &[3, 2]);
        assert_eq!(tt.f32_slice().unwrap(), &[1., 4., 2., 5., 3., 6.]);
    }

    #[test]
    fn transpose_batched() {
        let t = Tensor::random(&[3, 4, 5], DataType::F32, 5);
        let tt = transpose_last2(&t).unwrap();
        assert_eq!(tt.desc().shape(), &[3, 5, 4]);
        for b in 0..3 {
            for i in 0..4 {
                for j in 0..5 {
                    assert_eq!(t.at(&[b, i, j]), tt.at(&[b, j, i]));
                }
            }
        }
    }

    #[test]
    fn transpose_rejects_blocked() {
        let t = Tensor::random(&[4, 4], DataType::F32, 6);
        let b = reorder(&t, Layout::blocked_a(2, 2, 2)).unwrap();
        assert!(transpose_last2(&b).is_err());
    }

    #[test]
    fn transpose_rejects_rank1() {
        let t = Tensor::random(&[4], DataType::F32, 7);
        assert!(transpose_last2(&t).is_err());
    }
}
