//! Memory layouts: plain (row-major strided) and blocked.
//!
//! The paper's Tunable-OP templates require *blocked* layouts so each
//! microkernel invocation reads a contiguous buffer: a logical matrix
//! `A[M, K]` blocked with factors `[MB, KB]` is stored as the 4-D plain
//! array `A'[M/MB, K/KB, MB, KB]`. The weight matrix `B[K, N]` uses the
//! transposed-inner layout `B'[K/KB, N/NB, NB, KB]` so that a `(n, k)`
//! microtile is contiguous. Both are expressed here by listing, per
//! blocked axis, the block size and the order in which the *inner*
//! (block) dimensions appear in storage.

use crate::error::{Result, TensorError};
use std::fmt;

/// One blocked axis: which logical axis is split and by what factor.
///
/// The position of a `BlockSpec` within [`Layout::Blocked`]'s list gives
/// the storage order of the inner block dimensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BlockSpec {
    /// Logical axis being blocked.
    pub axis: usize,
    /// Block size (tile extent along `axis`).
    pub block: usize,
}

impl BlockSpec {
    /// Create a block spec for `axis` with block size `block`.
    pub fn new(axis: usize, block: usize) -> Self {
        BlockSpec { axis, block }
    }
}

/// Memory layout of a tensor.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Layout {
    /// Dense row-major storage in logical axis order.
    Plain,
    /// Blocked storage.
    ///
    /// Storage dimensions are: all logical axes in order, with blocked
    /// axes replaced by their outer extents (`dim / block`), followed by
    /// the block (inner) dimensions in the order given by `blocks`.
    Blocked(Vec<BlockSpec>),
}

impl Layout {
    /// The canonical blocked layout for a left-hand matmul operand
    /// `A[..., M, K]`: storage `[..., M/MB, K/KB, MB, KB]`.
    pub fn blocked_a(rank: usize, mb: usize, kb: usize) -> Layout {
        Layout::Blocked(vec![
            BlockSpec::new(rank - 2, mb),
            BlockSpec::new(rank - 1, kb),
        ])
    }

    /// The canonical blocked layout for a right-hand matmul operand
    /// `B[..., K, N]`: storage `[..., K/KB, N/NB, NB, KB]` (inner tile is
    /// `(n, k)`-major so a microkernel's B panel is contiguous).
    pub fn blocked_b(rank: usize, kb: usize, nb: usize) -> Layout {
        Layout::Blocked(vec![
            BlockSpec::new(rank - 1, nb),
            BlockSpec::new(rank - 2, kb),
        ])
    }

    /// Whether this is the plain layout.
    pub fn is_plain(&self) -> bool {
        matches!(self, Layout::Plain)
    }

    /// Whether this is a blocked layout.
    pub fn is_blocked(&self) -> bool {
        matches!(self, Layout::Blocked(_))
    }

    /// Block size applied to logical `axis`, if any.
    pub fn block_of(&self, axis: usize) -> Option<usize> {
        match self {
            Layout::Plain => None,
            Layout::Blocked(blocks) => blocks.iter().find(|b| b.axis == axis).map(|b| b.block),
        }
    }

    /// Compute the *storage* dimensions for a tensor of `shape` under
    /// this layout.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::BlockNotDivisible`] if a blocked axis is
    /// not divisible by its block size, or [`TensorError::AxisOutOfRange`]
    /// if a block spec names an axis beyond the rank.
    pub fn storage_dims(&self, shape: &[usize]) -> Result<Vec<usize>> {
        match self {
            Layout::Plain => Ok(shape.to_vec()),
            Layout::Blocked(blocks) => {
                let mut dims = Vec::with_capacity(shape.len() + blocks.len());
                for (axis, &d) in shape.iter().enumerate() {
                    if let Some(block) = self.block_of(axis) {
                        if d % block != 0 {
                            return Err(TensorError::BlockNotDivisible {
                                axis,
                                dim: d,
                                block,
                            });
                        }
                        dims.push(d / block);
                    } else {
                        dims.push(d);
                    }
                }
                for b in blocks {
                    if b.axis >= shape.len() {
                        return Err(TensorError::AxisOutOfRange {
                            axis: b.axis,
                            rank: shape.len(),
                        });
                    }
                    dims.push(b.block);
                }
                Ok(dims)
            }
        }
    }

    /// Row-major strides of the storage dims for a tensor of `shape`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Layout::storage_dims`].
    pub fn storage_strides(&self, shape: &[usize]) -> Result<Vec<usize>> {
        let dims = self.storage_dims(shape)?;
        Ok(row_major_strides(&dims))
    }

    /// Linear storage offset of the logical index `idx` for a tensor of
    /// `shape` under this layout.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `idx` rank differs from `shape` rank.
    pub fn offset_of(&self, shape: &[usize], idx: &[usize]) -> usize {
        debug_assert_eq!(shape.len(), idx.len());
        match self {
            Layout::Plain => {
                let strides = row_major_strides(shape);
                idx.iter().zip(&strides).map(|(i, s)| i * s).sum()
            }
            Layout::Blocked(blocks) => {
                let dims = self
                    .storage_dims(shape)
                    .expect("offset_of requires a valid layout for the shape");
                let strides = row_major_strides(&dims);
                let rank = shape.len();
                let mut off = 0usize;
                for (axis, &i) in idx.iter().enumerate() {
                    if let Some(block) = self.block_of(axis) {
                        off += (i / block) * strides[axis];
                        // inner position
                        let inner_pos = blocks.iter().position(|b| b.axis == axis).unwrap();
                        off += (i % block) * strides[rank + inner_pos];
                    } else {
                        off += i * strides[axis];
                    }
                }
                off
            }
        }
    }
}

impl fmt::Display for Layout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Layout::Plain => f.write_str("plain"),
            Layout::Blocked(blocks) => {
                f.write_str("blocked[")?;
                for (i, b) in blocks.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "ax{}:{}", b.axis, b.block)?;
                }
                f.write_str("]")
            }
        }
    }
}

/// Row-major strides for `dims`.
pub fn row_major_strides(dims: &[usize]) -> Vec<usize> {
    let mut strides = vec![1usize; dims.len()];
    for i in (0..dims.len().saturating_sub(1)).rev() {
        strides[i] = strides[i + 1] * dims[i + 1];
    }
    strides
}

/// Total number of elements of `dims`.
pub fn volume(dims: &[usize]) -> usize {
    dims.iter().product()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_storage_is_shape() {
        let l = Layout::Plain;
        assert_eq!(l.storage_dims(&[4, 6]).unwrap(), vec![4, 6]);
        assert_eq!(l.storage_strides(&[4, 6]).unwrap(), vec![6, 1]);
    }

    #[test]
    fn blocked_a_storage_dims() {
        let l = Layout::blocked_a(2, 2, 4);
        // A[6, 8] with MB=2, KB=4 -> [3, 2, 2, 4]
        assert_eq!(l.storage_dims(&[6, 8]).unwrap(), vec![3, 2, 2, 4]);
    }

    #[test]
    fn blocked_b_storage_dims() {
        let l = Layout::blocked_b(2, 4, 2);
        // B[8, 6] with KB=4, NB=2 -> [2, 3, 2, 4]
        assert_eq!(l.storage_dims(&[8, 6]).unwrap(), vec![2, 3, 2, 4]);
    }

    #[test]
    fn blocked_batched_keeps_leading_dims() {
        let l = Layout::blocked_a(3, 2, 4);
        assert_eq!(l.storage_dims(&[5, 6, 8]).unwrap(), vec![5, 3, 2, 2, 4]);
    }

    #[test]
    fn non_divisible_block_errors() {
        let l = Layout::blocked_a(2, 4, 4);
        let err = l.storage_dims(&[6, 8]).unwrap_err();
        assert!(matches!(
            err,
            TensorError::BlockNotDivisible { axis: 0, .. }
        ));
    }

    #[test]
    fn axis_out_of_range_errors() {
        let l = Layout::Blocked(vec![BlockSpec::new(5, 2)]);
        assert!(l.storage_dims(&[4, 4]).is_err());
    }

    #[test]
    fn offset_plain_matches_row_major() {
        let l = Layout::Plain;
        assert_eq!(l.offset_of(&[4, 6], &[2, 3]), 2 * 6 + 3);
    }

    #[test]
    fn offset_blocked_a() {
        // A[4, 8], MB=2, KB=4 -> [2, 2, 2, 4]; element (3, 5):
        // outer (1, 1), inner (1, 1) -> ((1*2+1)*2+1)*4+1
        let l = Layout::blocked_a(2, 2, 4);
        let strides = l.storage_strides(&[4, 8]).unwrap();
        assert_eq!(strides, vec![16, 8, 4, 1]);
        assert_eq!(l.offset_of(&[4, 8], &[3, 5]), 16 + 8 + 4 + 1);
    }

    #[test]
    fn offset_blocked_b_inner_order() {
        // B[8, 4], KB=4, NB=2 -> dims [2, 2, 2, 4] strides [16, 8, 4, 1].
        // element (k=5, n=3): outer k=1, outer n=1, inner n=1, inner k=1
        // -> 16 + 8 + 1*4 (inner n stride) + 1
        let l = Layout::blocked_b(2, 4, 2);
        assert_eq!(l.offset_of(&[8, 4], &[5, 3]), 16 + 8 + 4 + 1);
    }

    #[test]
    fn block_of_finds_blocks() {
        let l = Layout::blocked_b(2, 4, 2);
        assert_eq!(l.block_of(0), Some(4));
        assert_eq!(l.block_of(1), Some(2));
        assert_eq!(Layout::Plain.block_of(0), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Layout::Plain.to_string(), "plain");
        assert_eq!(
            Layout::blocked_a(2, 32, 64).to_string(),
            "blocked[ax0:32, ax1:64]"
        );
    }

    #[test]
    fn strides_helpers() {
        assert_eq!(row_major_strides(&[2, 3, 4]), vec![12, 4, 1]);
        assert_eq!(volume(&[2, 3, 4]), 24);
        assert_eq!(row_major_strides(&[]), Vec::<usize>::new());
    }
}
