//! Tensor substrate for the oneDNN Graph Compiler reproduction.
//!
//! This crate provides the data-plane foundation every other crate
//! builds on:
//!
//! - [`DataType`] and the [`Element`] trait — the element types the
//!   compiler supports (f32, bf16, u8, i8, i32, i64);
//! - [`Layout`] — plain (row-major) and *blocked* layouts, the central
//!   memory-layout abstraction of the paper's Tunable-OP templates;
//! - [`Tensor`] / [`TensorDesc`] / [`Storage`] — dense tensors with
//!   cheaply clonable shared storage;
//! - [`reorder`] — layout conversion (the runtime realization of the
//!   reorder OPs that layout propagation inserts);
//! - [`mod@reference`] — naive oracle implementations of every DNN op used
//!   for differential testing;
//! - [`quant`] — the quantization algebra of the low-precision
//!   conversion pass, including weight compensation.
//!
//! # Examples
//!
//! ```
//! use gc_tensor::{Tensor, DataType, Layout, reorder::reorder, reference};
//!
//! let a = Tensor::random(&[4, 8], DataType::F32, 0);
//! let b = Tensor::random(&[8, 2], DataType::F32, 1);
//! let c = reference::matmul_f32(&a, &b)?;
//! assert_eq!(c.desc().shape(), &[4, 2]);
//!
//! // Block A the way a Tunable-OP template would:
//! let blocked = reorder(&a, Layout::blocked_a(2, 2, 4))?;
//! assert!(blocked.allclose(&a, 0.0));
//! # Ok::<(), gc_tensor::TensorError>(())
//! ```

#![warn(missing_docs)]

mod dtype;
mod error;
pub mod layout;
pub mod quant;
pub mod reference;
pub mod reorder;
mod tensor;

pub use dtype::{bf16_bits_to_f32, f32_to_bf16_bits, DataType, Element};
pub use error::{Result, TensorError};
pub use layout::{BlockSpec, Layout};
pub use quant::QuantParams;
pub use tensor::{Storage, StorageElement, Tensor, TensorDesc};
