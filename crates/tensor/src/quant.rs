//! Quantization math used by the low-precision conversion pass.
//!
//! The paper's asymmetric dynamic quantization case:
//!
//! ```text
//! C = Quantize(Dequantize(A, a_s, a_z) x Dequantize(B, b_s), c_s, c_z)
//!   = (A x_int8 B * (a_s * b_s) + (a_z * I x B * b_s)) * c_s + c_z
//! ```
//!
//! where the `a_z * I x B` term is the *compensation* over the constant
//! weight, precomputed once by constant-weight preprocessing.

/// Affine quantization parameters: `real = scale * (quant - zero_point)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantParams {
    /// Scale factor.
    pub scale: f32,
    /// Zero point (in the quantized domain).
    pub zero_point: i32,
}

impl QuantParams {
    /// Create parameters from scale and zero point.
    pub fn new(scale: f32, zero_point: i32) -> Self {
        QuantParams { scale, zero_point }
    }

    /// Symmetric parameters (zero point 0).
    pub fn symmetric(scale: f32) -> Self {
        QuantParams {
            scale,
            zero_point: 0,
        }
    }
}

impl Default for QuantParams {
    fn default() -> Self {
        QuantParams::symmetric(1.0)
    }
}

/// Dequantize one u8 activation value.
pub fn dequantize_u8(q: u8, p: QuantParams) -> f32 {
    p.scale * (q as i32 - p.zero_point) as f32
}

/// Dequantize one i8 weight value (symmetric: zero point ignored by
/// convention for weights, matching the paper's `Dequantize(B, b_s)`).
pub fn dequantize_i8(q: i8, scale: f32) -> f32 {
    scale * q as f32
}

/// Quantize one f32 value to u8 with round-to-nearest and saturation.
pub fn quantize_u8(x: f32, p: QuantParams) -> u8 {
    let q = (x / p.scale).round() as i64 + p.zero_point as i64;
    q.clamp(0, 255) as u8
}

/// Quantize one f32 value to i8 with round-to-nearest and saturation.
pub fn quantize_i8(x: f32, scale: f32) -> i8 {
    let q = (x / scale).round() as i64;
    q.clamp(-128, 127) as i8
}

/// Quantize an f32 slice into u8s.
pub fn quantize_slice_u8(xs: &[f32], p: QuantParams, out: &mut [u8]) {
    assert_eq!(xs.len(), out.len());
    for (o, &x) in out.iter_mut().zip(xs) {
        *o = quantize_u8(x, p);
    }
}

/// Quantize an f32 slice into i8s (symmetric).
pub fn quantize_slice_i8(xs: &[f32], scale: f32, out: &mut [i8]) {
    assert_eq!(xs.len(), out.len());
    for (o, &x) in out.iter_mut().zip(xs) {
        *o = quantize_i8(x, scale);
    }
}

/// Dequantize a u8 slice into f32s.
pub fn dequantize_slice_u8(qs: &[u8], p: QuantParams, out: &mut [f32]) {
    assert_eq!(qs.len(), out.len());
    for (o, &q) in out.iter_mut().zip(qs) {
        *o = dequantize_u8(q, p);
    }
}

/// Dequantize an i8 slice into f32s (symmetric).
pub fn dequantize_slice_i8(qs: &[i8], scale: f32, out: &mut [f32]) {
    assert_eq!(qs.len(), out.len());
    for (o, &q) in out.iter_mut().zip(qs) {
        *o = dequantize_i8(q, scale);
    }
}

/// Per-column compensation for an i8 weight matrix `B[K, N]` in plain
/// row-major layout: `comp[n] = sum_k B[k, n]`.
///
/// The int8 matmul computes `sum_k A[m,k] * B[k,n]` with raw u8 `A`
/// values; the true product needs `(A[m,k] - a_z)`, so the corrected
/// result is `acc[m,n] - a_z * comp[n]`. Constant-weight preprocessing
/// computes `comp` once.
pub fn weight_compensation(b: &[i8], k: usize, n: usize) -> Vec<i32> {
    assert_eq!(b.len(), k * n, "weight buffer must be K*N");
    let mut comp = vec![0i32; n];
    for row in b.chunks_exact(n) {
        for (c, &v) in comp.iter_mut().zip(row) {
            *c += v as i32;
        }
    }
    comp
}

/// Apply the paper's full requantization equation to one i32 accumulator:
///
/// `out = clamp(round(((acc - a_z*comp) * a_s * b_s [+bias]) * inv(c_s)) + c_z)`
///
/// `bias` is an optional f32 bias added in the dequantized domain.
#[allow(clippy::too_many_arguments)]
pub fn requantize_acc(
    acc: i32,
    comp: i32,
    a: QuantParams,
    b_scale: f32,
    bias: f32,
    c: QuantParams,
) -> u8 {
    let corrected = acc - a.zero_point * comp;
    let real = corrected as f32 * (a.scale * b_scale) + bias;
    quantize_u8(real, c)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantize_round_trips_within_scale() {
        let p = QuantParams::new(0.1, 128);
        for &x in &[-3.0f32, -0.05, 0.0, 0.04, 2.7] {
            let q = quantize_u8(x, p);
            let y = dequantize_u8(q, p);
            assert!((x - y).abs() <= 0.05 + 1e-6, "x={x} y={y}");
        }
    }

    #[test]
    fn quantize_saturates() {
        let p = QuantParams::new(0.1, 0);
        assert_eq!(quantize_u8(1e9, p), 255);
        assert_eq!(quantize_u8(-1e9, p), 0);
        assert_eq!(quantize_i8(1e9, 0.1), 127);
        assert_eq!(quantize_i8(-1e9, 0.1), -128);
    }

    #[test]
    fn symmetric_zero_point_is_zero() {
        let p = QuantParams::symmetric(0.5);
        assert_eq!(p.zero_point, 0);
        assert_eq!(dequantize_u8(4, p), 2.0);
    }

    #[test]
    fn compensation_is_column_sums() {
        // B[2, 3]
        let b = [1i8, 2, 3, 4, 5, 6];
        let comp = weight_compensation(&b, 2, 3);
        assert_eq!(comp, vec![5, 7, 9]);
    }

    #[test]
    fn requantize_matches_dequantized_compute() {
        // A scalar "matmul" with K=2: A=[a0,a1] u8, B=[b0,b1] i8.
        let a_p = QuantParams::new(0.2, 3);
        let b_s = 0.5f32;
        let c_p = QuantParams::new(0.25, 10);
        let a_q = [7u8, 1u8];
        let b_q = [2i8, -3i8];
        // reference: dequantize, multiply-accumulate, quantize
        let real: f32 = a_q
            .iter()
            .zip(&b_q)
            .map(|(&a, &b)| dequantize_u8(a, a_p) * dequantize_i8(b, b_s))
            .sum();
        let expected = quantize_u8(real, c_p);
        // int8 path: raw accumulate + compensation
        let acc: i32 = a_q
            .iter()
            .zip(&b_q)
            .map(|(&a, &b)| a as i32 * b as i32)
            .sum();
        let comp: i32 = b_q.iter().map(|&b| b as i32).sum();
        let got = requantize_acc(acc, comp, a_p, b_s, 0.0, c_p);
        assert_eq!(got, expected);
    }

    #[test]
    fn slice_helpers_match_scalar() {
        let p = QuantParams::new(0.1, 5);
        let xs = [0.3f32, -0.2, 1.0];
        let mut qs = [0u8; 3];
        quantize_slice_u8(&xs, p, &mut qs);
        for (q, &x) in qs.iter().zip(&xs) {
            assert_eq!(*q, quantize_u8(x, p));
        }
        let mut ys = [0f32; 3];
        dequantize_slice_u8(&qs, p, &mut ys);
        for (y, &q) in ys.iter().zip(&qs) {
            assert_eq!(*y, dequantize_u8(q, p));
        }
    }
}
