//! Analytical cost model.
//!
//! The paper's heuristic "iteratively searches for the best parameters,
//! based on a cost model which considers multi-core load balancing and
//! single-core kernel efficiency". This module provides those terms, as
//! well as the streaming / synchronization / dispatch costs used by the
//! fusion profitability heuristic and the performance projector.

use crate::desc::MachineDescriptor;

/// Parallel efficiency of distributing `tasks` equal tasks over the
/// machine's cores: `tasks / (ceil(tasks/cores) * cores)`, in `(0, 1]`.
pub fn load_balance(machine: &MachineDescriptor, tasks: usize) -> f64 {
    if tasks == 0 {
        return 0.0;
    }
    let waves = tasks.div_ceil(machine.cores);
    tasks as f64 / (waves * machine.cores) as f64
}

/// Single-core efficiency (0, 1] of a brgemm microkernel with tile
/// sizes `[mb, nb, kb]` and batch `bs`.
///
/// The shape of this function encodes the expert knowledge the paper
/// distills from kernel development:
///
/// - `nb` should be a multiple of the SIMD width (register blocking);
/// - `mb` has a sweet spot — enough rows to hide FMA latency, few
///   enough to keep the accumulator tile in registers;
/// - the working set `(mb + nb) * kb * bs + mb * nb` must fit in L1;
/// - small `kb * bs` can't amortize the tile setup.
pub fn microkernel_efficiency(
    machine: &MachineDescriptor,
    mb: usize,
    nb: usize,
    kb: usize,
    bs: usize,
    elem_bytes: usize,
) -> f64 {
    let lanes = machine.f32_lanes(); // accumulators are f32/i32
    let mut eff = 1.0;

    // Register blocking along n.
    if !nb.is_multiple_of(lanes) {
        eff *= 0.6 + 0.4 * (nb % lanes) as f64 / lanes as f64 * 0.0;
    }
    let n_regs = nb.div_ceil(lanes);

    // Accumulator tile must fit the register file (the architectural
    // SIMD file minus operand registers — 32 zmm − 4 on the Xeon).
    let acc_regs = mb * n_regs;
    let budget = machine.acc_reg_budget();
    if acc_regs > budget {
        eff *= budget as f64 / acc_regs as f64;
    }

    // FMA-latency hiding: each FMA port needs a couple of independent
    // accumulator rows in flight, so m tiles shorter than 2 rows/port
    // stall the pipeline. The penalty ramps from 0.55 at mb=1 to 1.0
    // at the full-rate height.
    let min_mb = 2 * machine.fma_ports;
    if mb < min_mb {
        let slope = 0.45 / (min_mb as f64 - 1.0).max(1.0);
        eff *= 0.55 + slope * (mb as f64 - 1.0);
    }

    // L1 residency of the microkernel working set.
    let ws = (mb + nb) * kb * bs * elem_bytes + mb * nb * 4;
    let l1 = machine.l1_bytes();
    if ws > l1 {
        eff *= (l1 as f64 / ws as f64).max(0.35);
    }

    // Reduction depth amortizes prologue/epilogue.
    let kdepth = kb * bs;
    if kdepth < 32 {
        eff *= 0.7 + 0.3 * kdepth as f64 / 32.0;
    }

    // SIMD remainder of the k loop: the microkernel walks k in groups
    // (vector lanes for f32, dot groups for VNNI/sdot int8) and
    // finishes the `kb % group` remainder scalar, once per register
    // block — a kb off the lane grid (e.g. a prime 479) pays this on
    // every block pass, which is exactly what pack-time padding to a
    // lane-multiple kb avoids.
    let group = if elem_bytes == 1 {
        machine.int8_dot_group.max(1)
    } else {
        lanes
    };
    let rem = kb % group;
    if rem > 0 && kdepth > 0 {
        let vector_iters = (kb / group * bs) as f64;
        let ideal = kdepth as f64 / group as f64;
        eff *= ideal / (vector_iters + (rem * bs) as f64);
    }

    eff.clamp(0.05, 1.0)
}

/// Ideal compute cycles for `flops` floating/integer ops on one core at
/// `efficiency`.
pub fn compute_cycles(
    machine: &MachineDescriptor,
    flops: f64,
    elem_bytes: usize,
    efficiency: f64,
) -> f64 {
    flops / (machine.ops_per_cycle(elem_bytes) * efficiency.max(1e-6))
}

/// Cycles to stream `bytes` from memory on one core (bandwidth-bound).
pub fn stream_cycles(machine: &MachineDescriptor, bytes: f64) -> f64 {
    bytes / machine.mem_bw_bytes_per_cycle
}

/// Cycles to stream `bytes` that stay resident in a core's private L2:
/// cache bandwidth runs well ahead of the DRAM pipe (8x here — the
/// same ratio the parameter heuristic's residency tiers use).
pub fn l2_stream_cycles(machine: &MachineDescriptor, bytes: f64) -> f64 {
    bytes / (8.0 * machine.mem_bw_bytes_per_cycle)
}

/// Cycles to stream `bytes` served by the shared LLC rather than DRAM
/// (4x the DRAM pipe). This is the *cross-layer reuse* rate: a producer
/// layer's output tile that survives the inter-layer barrier in the LLC
/// is re-read by the consumer at this cost instead of
/// [`stream_cycles`] — the term that lets merged-vs-split schedule
/// comparisons credit an unmerged schedule with LLC locality (and no
/// more than that).
pub fn llc_stream_cycles(machine: &MachineDescriptor, bytes: f64) -> f64 {
    bytes / (4.0 * machine.mem_bw_bytes_per_cycle)
}

/// Cycles for one all-core barrier (ends every parallel region).
pub fn barrier_cycles(machine: &MachineDescriptor) -> f64 {
    machine.barrier_cycles as f64
}

/// Fixed per-primitive dispatch overhead (framework API call, primitive
/// cache lookup). The paper measures this at ~10% of MLP_1 baseline
/// runtime, recovered by compiling the subgraph into a single call.
pub fn dispatch_cycles(machine: &MachineDescriptor) -> f64 {
    machine.dispatch_cycles as f64
}

/// Estimated total cycles of a multi-core matmul `[m, n, k]` given a
/// task decomposition producing `tasks` single-core kernels with
/// single-core efficiency `kernel_eff`.
pub fn matmul_cycles(
    machine: &MachineDescriptor,
    m: usize,
    n: usize,
    k: usize,
    elem_bytes: usize,
    tasks: usize,
    kernel_eff: f64,
) -> f64 {
    let flops = 2.0 * m as f64 * n as f64 * k as f64;
    let per_core_flops = flops / machine.cores.min(tasks.max(1)) as f64;
    let balance = load_balance(machine, tasks).max(1e-6);
    compute_cycles(machine, per_core_flops, elem_bytes, kernel_eff) / balance
        + barrier_cycles(machine)
}

/// Extent of a dimension after pack-time padding to whole `block`
/// tiles: the pad-and-go edge policy computes (and packs, and streams)
/// this many elements along the axis, of which `dim` are live.
pub fn padded_extent(dim: usize, block: usize) -> usize {
    dim.div_ceil(block.max(1)) * block.max(1)
}

/// Extra cycles a clamped (tail) brgemm call pays over a full-tile
/// call: evaluating the row clamp against the loop indices and
/// dispatching a partial-height register tile instead of the hot
/// full-size kernel. Charged on *every* call of a tail-policy loop
/// nest, not just the edge tiles — the template has no conditionals, so
/// interior tiles also go through the clamped entry point.
pub fn tail_call_cycles(machine: &MachineDescriptor) -> f64 {
    // A clamp evaluation (~2 ALU ops), an indirect kernel dispatch, and
    // the front-end bubble of re-entering the interior of the kernel
    // instead of its hot full-tile entry. The bubble is a fixed number
    // of issue slots, so machines with wider FMA throughput waste more
    // potential FLOPs per stalled cycle — pricing it as a few hundred
    // flops' worth of cycles models exactly that.
    16.0 + 512.0 / machine.f32_flops_per_cycle
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xeon() -> MachineDescriptor {
        MachineDescriptor::xeon_8358()
    }

    #[test]
    fn padded_extent_rounds_up_to_tiles() {
        assert_eq!(padded_extent(479, 64), 512);
        assert_eq!(padded_extent(512, 64), 512);
        assert_eq!(padded_extent(1, 32), 32);
        assert_eq!(padded_extent(0, 32), 0);
        assert_eq!(padded_extent(7, 0), 7, "degenerate block treated as 1");
    }

    #[test]
    fn tail_overhead_small_next_to_tile_compute() {
        // A full 32x32x64 f32 tile is ~4k cycles of compute at high
        // efficiency; the per-call tail overhead must stay well under
        // 1% of that so the Tail policy wins whenever the padded-FLOP
        // waste is more than a few percent.
        let m = xeon();
        let tile = compute_cycles(&m, 2.0 * 32.0 * 32.0 * 64.0, 4, 0.9);
        assert!(tail_call_cycles(&m) < tile * 0.05);
        assert!(tail_call_cycles(&m) > 0.0);
    }

    #[test]
    fn load_balance_perfect_and_ragged() {
        let m = xeon();
        assert_eq!(load_balance(&m, 32), 1.0);
        assert_eq!(load_balance(&m, 64), 1.0);
        let lb33 = load_balance(&m, 33);
        assert!(lb33 < 0.6, "33 tasks on 32 cores wastes almost a wave");
        assert_eq!(load_balance(&m, 0), 0.0);
    }

    #[test]
    fn efficiency_prefers_lane_multiples() {
        let m = xeon();
        let good = microkernel_efficiency(&m, 6, 32, 64, 4, 4);
        let bad = microkernel_efficiency(&m, 6, 33, 64, 4, 4);
        assert!(good > bad);
    }

    #[test]
    fn efficiency_penalizes_register_overflow() {
        let m = xeon();
        let fits = microkernel_efficiency(&m, 6, 64, 32, 2, 4);
        let spills = microkernel_efficiency(&m, 24, 64, 32, 2, 4);
        assert!(fits > spills);
    }

    #[test]
    fn efficiency_penalizes_l1_overflow() {
        let m = xeon();
        let fits = microkernel_efficiency(&m, 8, 32, 64, 2, 4);
        let blows = microkernel_efficiency(&m, 8, 32, 1024, 16, 4);
        assert!(fits > blows);
    }

    #[test]
    fn efficiency_in_unit_range() {
        let m = xeon();
        for mb in [1, 2, 8, 32] {
            for nb in [8, 16, 48] {
                for kb in [16, 64, 512] {
                    let e = microkernel_efficiency(&m, mb, nb, kb, 4, 4);
                    assert!((0.05..=1.0).contains(&e));
                }
            }
        }
    }

    #[test]
    fn efficiency_penalizes_off_lane_k_depth() {
        // prime kb = 479 leaves a 7-lane scalar tail every block pass;
        // the padded kb = 64 runs pure vector code.
        let m = xeon();
        let on_grid = microkernel_efficiency(&m, 8, 16, 64, 1, 4);
        let off_grid = microkernel_efficiency(&m, 8, 16, 479, 1, 4);
        assert!(off_grid < on_grid * 0.95, "{off_grid} vs {on_grid}");
        // int8 dot groups are 4 wide, so the same 479 tail costs ~2%.
        let off_i8 = microkernel_efficiency(&m, 8, 16, 479, 1, 1);
        let on_i8 = microkernel_efficiency(&m, 8, 16, 64, 1, 1);
        assert!(off_i8 > on_i8 * 0.9, "{off_i8} vs {on_i8}");
    }

    /// The pre-descriptor formula with its hard-coded 16-lane / 28-reg
    /// / mb<4 / group-4 constants, kept verbatim as the regression
    /// oracle for the Xeon preset.
    fn legacy_xeon_efficiency(
        machine: &MachineDescriptor,
        mb: usize,
        nb: usize,
        kb: usize,
        bs: usize,
        elem_bytes: usize,
    ) -> f64 {
        let lanes = machine.vector_bytes / 4;
        let mut eff = 1.0;
        if !nb.is_multiple_of(lanes) {
            eff *= 0.6 + 0.4 * (nb % lanes) as f64 / lanes as f64 * 0.0;
        }
        let n_regs = nb.div_ceil(lanes);
        let acc_regs = mb * n_regs;
        if acc_regs > 28 {
            eff *= 28.0 / acc_regs as f64;
        }
        if mb < 4 {
            eff *= 0.55 + 0.15 * (mb as f64 - 1.0);
        }
        let ws = (mb + nb) * kb * bs * elem_bytes + mb * nb * 4;
        let l1 = machine.l1_bytes();
        if ws > l1 {
            eff *= (l1 as f64 / ws as f64).max(0.35);
        }
        let kdepth = kb * bs;
        if kdepth < 32 {
            eff *= 0.7 + 0.3 * kdepth as f64 / 32.0;
        }
        let group = if elem_bytes == 1 { 4 } else { lanes };
        let rem = kb % group;
        if rem > 0 && kdepth > 0 {
            let vector_iters = (kb / group * bs) as f64;
            let ideal = kdepth as f64 / group as f64;
            eff *= ideal / (vector_iters + (rem * bs) as f64);
        }
        eff.clamp(0.05, 1.0)
    }

    #[test]
    fn xeon_costs_unchanged_by_descriptor_derivation() {
        // Satellite guarantee: deriving the SIMD constants from
        // MachineDescriptor must leave every xeon_8358 cost bit-exactly
        // where the hard-coded formula had it (32 − 4 = 28 accumulator
        // regs, 2 ports × 2 = mb 4, int8 group 4).
        let m = xeon();
        for mb in [1usize, 2, 3, 4, 6, 8, 16, 24, 32] {
            for nb in [8usize, 16, 32, 33, 48, 64] {
                for kb in [16usize, 64, 479, 512] {
                    for bs in [1usize, 2, 4, 16] {
                        for elem in [1usize, 4] {
                            let new = microkernel_efficiency(&m, mb, nb, kb, bs, elem);
                            let old = legacy_xeon_efficiency(&m, mb, nb, kb, bs, elem);
                            assert_eq!(
                                new.to_bits(),
                                old.to_bits(),
                                "mb={mb} nb={nb} kb={kb} bs={bs} elem={elem}: {new} vs {old}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn narrow_vector_machine_prefers_different_tiles() {
        // On 4-lane NEON a 16-wide nb costs 4 accumulator registers per
        // row; the same (mb=24, nb=64) tile that fits the Xeon register
        // file overflows nothing on aarch64 either (32 regs), but a
        // (mb=14, nb=32) tile that is register-clean on the Xeon
        // (14 × 2 = 28) overflows the NEON budget (14 × 8 = 112).
        let xeon = MachineDescriptor::xeon_8358();
        let arm = MachineDescriptor::aarch64_small();
        let x = microkernel_efficiency(&xeon, 14, 32, 64, 1, 4);
        let a = microkernel_efficiency(&arm, 14, 32, 64, 1, 4);
        assert!(a < x, "NEON register pressure must show up: {a} vs {x}");
        // And nb=8 is lane-aligned on NEON but off-grid costs nothing
        // extra there while the Xeon leaves half a zmm idle (modelled
        // via the multiple check: 8 % 16 != 0 on xeon, 8 % 4 == 0 on
        // arm).
        let x8 = microkernel_efficiency(&xeon, 8, 8, 64, 1, 4);
        let a8 = microkernel_efficiency(&arm, 8, 8, 64, 1, 4);
        assert!(a8 > x8, "narrow lanes should like nb=8: {a8} vs {x8}");
    }

    #[test]
    fn int8_compute_is_faster() {
        let m = xeon();
        let f32c = compute_cycles(&m, 1e9, 4, 1.0);
        let i8c = compute_cycles(&m, 1e9, 1, 1.0);
        assert!((f32c / i8c - m.int8_speedup).abs() < 1e-9);
    }

    #[test]
    fn matmul_cycles_scale_with_size() {
        let m = xeon();
        let small = matmul_cycles(&m, 128, 128, 128, 4, 32, 0.9);
        let big = matmul_cycles(&m, 512, 512, 512, 4, 32, 0.9);
        assert!(big > small * 10.0);
    }

    #[test]
    fn stream_and_fixed_costs() {
        let m = xeon();
        assert_eq!(stream_cycles(&m, 4096.0), 1024.0);
        assert!(barrier_cycles(&m) > 0.0);
        assert!(dispatch_cycles(&m) > barrier_cycles(&m));
    }
}
