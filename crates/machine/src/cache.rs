//! A multi-level set-associative LRU cache simulator.
//!
//! Used by the performance projector to estimate memory-access cycles of
//! a compiled program's memory trace on the paper's target machine. The
//! simulator models one core's private L1/L2 plus its slice of the
//! shared LLC; multi-core projection scales the per-core trace (the
//! templates give each core a disjoint, load-balanced slice, so traces
//! are statistically identical across cores).

use crate::desc::{CacheLevel, MachineDescriptor};

/// One set-associative LRU cache level.
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    line_bytes: u64,
    sets: usize,
    assoc: usize,
    latency: u64,
    /// Whether this level is shared across cores (an LLC slice) rather
    /// than private to one core.
    shared: bool,
    /// tags[set] is most-recent-last.
    tags: Vec<Vec<u64>>,
    hits: u64,
    misses: u64,
}

impl SetAssocCache {
    /// Build a cache from its level description.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero size/assoc/line).
    pub fn new(level: &CacheLevel) -> Self {
        assert!(level.size_bytes > 0 && level.associativity > 0 && level.line_bytes > 0);
        let lines = level.size_bytes / level.line_bytes;
        let sets = (lines / level.associativity).max(1);
        SetAssocCache {
            line_bytes: level.line_bytes as u64,
            sets,
            assoc: level.associativity,
            latency: level.latency_cycles,
            shared: level.shared,
            tags: vec![Vec::new(); sets],
            hits: 0,
            misses: 0,
        }
    }

    /// Access one cache line by address; returns `true` on hit. The line
    /// is installed (and LRU updated) either way.
    ///
    /// The set index XOR-folds the upper line-address bits (as real
    /// hashed-index caches do) so regular power-of-two strides — which
    /// blocked tensor layouts produce constantly — do not alias into a
    /// single set.
    pub fn access_line(&mut self, addr: u64) -> bool {
        let line = addr / self.line_bytes;
        let bits = usize::BITS - (self.sets.max(2) - 1).leading_zeros();
        let folded = line ^ (line >> bits) ^ (line >> (2 * bits));
        let set = (folded as usize) % self.sets;
        let ways = &mut self.tags[set];
        if let Some(pos) = ways.iter().position(|&t| t == line) {
            let t = ways.remove(pos);
            ways.push(t);
            self.hits += 1;
            true
        } else {
            if ways.len() == self.assoc {
                ways.remove(0);
            }
            ways.push(line);
            self.misses += 1;
            false
        }
    }

    /// Line size in bytes.
    pub fn line_bytes(&self) -> u64 {
        self.line_bytes
    }

    /// Access latency in cycles.
    pub fn latency(&self) -> u64 {
        self.latency
    }

    /// (hits, misses) counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Drop all contents and counters.
    pub fn reset(&mut self) {
        for s in &mut self.tags {
            s.clear();
        }
        self.hits = 0;
        self.misses = 0;
    }
}

/// Per-level statistics snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LevelStats {
    /// Line accesses that hit.
    pub hits: u64,
    /// Line accesses that missed.
    pub misses: u64,
}

/// A simulated cache hierarchy for one core.
#[derive(Debug, Clone)]
pub struct CacheHierarchy {
    levels: Vec<SetAssocCache>,
    mem_latency: u64,
    total_cycles: u64,
    total_lines: u64,
}

impl CacheHierarchy {
    /// Build the hierarchy a single core sees on `machine`: private
    /// levels at full size, shared levels divided by the core count
    /// (an LLC "slice" approximation).
    pub fn for_core(machine: &MachineDescriptor) -> Self {
        let levels = machine
            .caches
            .iter()
            .map(|c| {
                let mut level = *c;
                if level.shared && machine.cores > 1 {
                    level.size_bytes = (level.size_bytes / machine.cores).max(level.line_bytes);
                }
                SetAssocCache::new(&level)
            })
            .collect();
        CacheHierarchy {
            levels,
            mem_latency: machine.mem_latency_cycles,
            total_cycles: 0,
            total_lines: 0,
        }
    }

    /// Simulate an access of `bytes` starting at `addr`; returns the
    /// cycles charged. Each touched line is looked up level by level;
    /// a miss at every level costs memory latency. Subsequent lines of a
    /// streaming access are charged at one quarter latency to model the
    /// hardware prefetcher.
    pub fn access(&mut self, addr: u64, bytes: u64) -> u64 {
        if bytes == 0 {
            return 0;
        }
        let line = self.levels.first().map(|l| l.line_bytes()).unwrap_or(64);
        let first_line = addr / line;
        let last_line = (addr + bytes - 1) / line;
        let mut cycles = 0u64;
        for (i, l) in (first_line..=last_line).enumerate() {
            let mut hit_cost = None;
            for level in self.levels.iter_mut() {
                if level.access_line(l * line) {
                    hit_cost = Some(level.latency());
                    break;
                }
            }
            let c = hit_cost.unwrap_or(self.mem_latency);
            // prefetcher: streaming lines after the first cost less
            let c = if i == 0 { c } else { (c / 4).max(1) };
            cycles += c;
            self.total_lines += 1;
        }
        self.total_cycles += cycles;
        cycles
    }

    /// Total memory cycles charged so far.
    pub fn total_cycles(&self) -> u64 {
        self.total_cycles
    }

    /// Total cache lines touched so far.
    pub fn total_lines(&self) -> u64 {
        self.total_lines
    }

    /// Per-level hit/miss statistics, innermost first.
    pub fn level_stats(&self) -> Vec<LevelStats> {
        self.levels
            .iter()
            .map(|l| {
                let (hits, misses) = l.stats();
                LevelStats { hits, misses }
            })
            .collect()
    }

    /// Evict all contents but keep statistics — models the cache state
    /// a core is left with after working through multiple tasks' data
    /// (each wave of a wide parallel loop displaces the previous one).
    pub fn evict_contents(&mut self) {
        for l in &mut self.levels {
            for set in &mut l.tags {
                set.clear();
            }
        }
    }

    /// Evict only the *private* levels (L1/L2), keeping the shared LLC
    /// slice warm — the cross-layer reuse term. After a parallel
    /// region's barrier, the next region's tasks land on whichever core
    /// frees up first, so private-cache locality does not survive the
    /// rendezvous; but a producer layer's output tiles written through
    /// to the shared LLC *are* still there for the consumer layer. This
    /// is exactly the reuse that makes split (unmerged) schedules pay
    /// LLC latency between layers where merged schedules keep the tile
    /// in registers/L1 — the effect the paper's Figure-8 coarse-fusion
    /// win rests on.
    pub fn evict_private_contents(&mut self) {
        for l in &mut self.levels {
            if !l.shared {
                for set in &mut l.tags {
                    set.clear();
                }
            }
        }
    }

    /// Reset contents, counters and charged cycles.
    pub fn reset(&mut self) {
        for l in &mut self.levels {
            l.reset();
        }
        self.total_cycles = 0;
        self.total_lines = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::desc::MachineDescriptor;

    fn small_cache() -> SetAssocCache {
        SetAssocCache::new(&CacheLevel {
            size_bytes: 4 * 64, // 4 lines
            associativity: 2,   // 2 sets x 2 ways
            line_bytes: 64,
            latency_cycles: 3,
            shared: false,
        })
    }

    use crate::desc::CacheLevel;

    #[test]
    fn hit_after_install() {
        let mut c = small_cache();
        assert!(!c.access_line(0));
        assert!(c.access_line(0));
        assert!(c.access_line(63)); // same line
        assert!(!c.access_line(64)); // next line, different set
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut c = small_cache();
        // lines 0, 3, 5 map to set 0 under the folded index; assoc 2
        assert!(!c.access_line(0));
        assert!(!c.access_line(3 * 64));
        assert!(!c.access_line(5 * 64)); // evicts line 0
        assert!(!c.access_line(0)); // miss again
        assert!(c.access_line(5 * 64)); // still resident
    }

    #[test]
    fn lru_updates_on_hit() {
        let mut c = small_cache();
        c.access_line(0);
        c.access_line(3 * 64);
        c.access_line(0); // refresh line 0
        c.access_line(5 * 64); // should evict line 3, not line 0
        assert!(c.access_line(0));
        assert!(!c.access_line(3 * 64));
    }

    #[test]
    fn hierarchy_charges_l1_hits_cheaply() {
        let m = MachineDescriptor::small_generic();
        let mut h = CacheHierarchy::for_core(&m);
        let cold = h.access(0, 64);
        let warm = h.access(0, 64);
        assert!(cold > warm);
        assert_eq!(warm, m.caches[0].latency_cycles);
    }

    #[test]
    fn hierarchy_l2_serves_l1_evictions() {
        let m = MachineDescriptor::small_generic();
        let mut h = CacheHierarchy::for_core(&m);
        // stream 2x L1 of data, then re-access the start: L1 miss, L2 hit
        let l1 = m.l1_bytes() as u64;
        for a in (0..2 * l1).step_by(64) {
            h.access(a, 64);
        }
        let c = h.access(0, 64);
        assert_eq!(c, m.caches[1].latency_cycles);
    }

    #[test]
    fn streaming_access_is_prefetched() {
        let m = MachineDescriptor::small_generic();
        let mut h = CacheHierarchy::for_core(&m);
        let burst = h.access(1 << 30, 64 * 16); // 16 cold lines, one call
        let mut seq = 0;
        h.reset();
        for i in 0..16u64 {
            seq += h.access((1 << 30) + i * 64, 64);
        }
        assert!(burst < seq, "burst {burst} should beat per-line {seq}");
    }

    #[test]
    fn stats_track_hits_and_misses() {
        let m = MachineDescriptor::small_generic();
        let mut h = CacheHierarchy::for_core(&m);
        h.access(0, 64);
        h.access(0, 64);
        let s = h.level_stats();
        assert_eq!(s[0].hits, 1);
        assert_eq!(s[0].misses, 1);
        assert_eq!(h.total_lines(), 2);
        h.reset();
        assert_eq!(h.total_cycles(), 0);
    }

    #[test]
    fn shared_llc_is_sliced_per_core() {
        let m = MachineDescriptor::xeon_8358();
        let h = CacheHierarchy::for_core(&m);
        // 48 MiB / 32 cores = 1.5 MiB slice -> 24576 lines / 12 ways = 2048 sets
        let llc = &h.levels[2];
        assert_eq!(llc.sets, 2048);
    }

    #[test]
    fn private_eviction_keeps_llc_warm() {
        let m = MachineDescriptor::xeon_8358();
        let mut h = CacheHierarchy::for_core(&m);
        h.access(0, 64); // cold: installs in L1, L2 and the LLC slice
        h.evict_private_contents();
        let c = h.access(0, 64);
        assert_eq!(
            c, m.caches[2].latency_cycles,
            "after private eviction the line must be served by the LLC"
        );
        h.evict_contents();
        let c = h.access(0, 64);
        assert_eq!(
            c, m.mem_latency_cycles,
            "full eviction must fall through to memory"
        );
    }

    #[test]
    fn zero_byte_access_free() {
        let m = MachineDescriptor::small_generic();
        let mut h = CacheHierarchy::for_core(&m);
        assert_eq!(h.access(0, 0), 0);
    }
}
