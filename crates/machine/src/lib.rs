//! Hardware-model substrate for the oneDNN Graph Compiler reproduction.
//!
//! The paper's heuristics pick template parameters from "hardware sizes
//! of the microarchitecture" and its evaluation runs on a 32-core Intel
//! Xeon Platinum 8358. That machine is not available to this
//! reproduction, so this crate supplies:
//!
//! - [`MachineDescriptor`] — cores, SIMD width, cache hierarchy, peak
//!   throughput (with the Xeon 8358 preset used by all experiments);
//! - [`cache`] — a set-associative LRU multi-level cache simulator that
//!   replays a compiled program's memory trace;
//! - [`cost`] — the analytical cost model shared by the lowering
//!   heuristic, the fusion-profitability analysis, and the multi-core
//!   performance projector.
//!
//! # Examples
//!
//! ```
//! use gc_machine::{MachineDescriptor, cost};
//!
//! let m = MachineDescriptor::xeon_8358();
//! // 32 perfectly balanced tasks use all cores:
//! assert_eq!(cost::load_balance(&m, 32), 1.0);
//! // int8 peak throughput is 4x f32 (VNNI):
//! assert_eq!(m.ops_per_cycle(1), 4.0 * m.ops_per_cycle(4));
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod cost;
mod desc;

pub use cache::{CacheHierarchy, LevelStats, SetAssocCache};
pub use desc::{CacheLevel, MachineDescriptor};
