//! Machine descriptors: the hardware parameters the heuristics and the
//! performance projector consume.
//!
//! The paper's heuristic decides template parameters "based on the input
//! data tensor shape and hardware sizes of the microarchitecture"; this
//! module is where those hardware sizes live.

/// One level of the data-cache hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheLevel {
    /// Capacity in bytes (per core for private levels, total for shared).
    pub size_bytes: usize,
    /// Associativity (ways per set).
    pub associativity: usize,
    /// Cache line size in bytes.
    pub line_bytes: usize,
    /// Load-to-use latency in cycles.
    pub latency_cycles: u64,
    /// Whether the level is shared by all cores.
    pub shared: bool,
}

/// Descriptor of a target CPU.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineDescriptor {
    /// Human-readable name.
    pub name: String,
    /// Physical cores available to the kernel.
    pub cores: usize,
    /// Nominal frequency in GHz (for cycle→time conversion in reports).
    pub freq_ghz: f64,
    /// SIMD register width in bytes (64 for AVX-512).
    pub vector_bytes: usize,
    /// Cache levels, innermost first (L1d, L2, L3).
    pub caches: Vec<CacheLevel>,
    /// Main-memory latency in cycles.
    pub mem_latency_cycles: u64,
    /// Sustained per-core memory bandwidth, bytes per cycle.
    pub mem_bw_bytes_per_cycle: f64,
    /// Peak f32 FLOPs per cycle per core (2 × FMA width × units).
    pub f32_flops_per_cycle: f64,
    /// Throughput multiplier for int8 (VNNI ≈ 4× over f32).
    pub int8_speedup: f64,
    /// Cycles for a full-barrier synchronization across `cores`.
    pub barrier_cycles: u64,
    /// Cycles of fixed overhead per primitive/partition dispatch
    /// (framework API call, descriptor hash lookup, ...).
    pub dispatch_cycles: u64,
}

impl MachineDescriptor {
    /// The paper's evaluation machine: Intel Xeon Platinum 8358
    /// (Ice Lake SP), 32 cores, AVX-512 + VNNI.
    pub fn xeon_8358() -> Self {
        MachineDescriptor {
            name: "Intel Xeon Platinum 8358 (32c, AVX-512/VNNI)".to_string(),
            cores: 32,
            freq_ghz: 2.6,
            vector_bytes: 64,
            caches: vec![
                CacheLevel {
                    size_bytes: 48 * 1024,
                    associativity: 12,
                    line_bytes: 64,
                    latency_cycles: 5,
                    shared: false,
                },
                CacheLevel {
                    size_bytes: 1280 * 1024,
                    associativity: 20,
                    line_bytes: 64,
                    latency_cycles: 14,
                    shared: false,
                },
                CacheLevel {
                    size_bytes: 48 * 1024 * 1024,
                    associativity: 12,
                    line_bytes: 64,
                    latency_cycles: 42,
                    shared: true,
                },
            ],
            mem_latency_cycles: 220,
            mem_bw_bytes_per_cycle: 4.0,
            // 2 AVX-512 FMA units × 16 f32 lanes × 2 (mul+add)
            f32_flops_per_cycle: 64.0,
            int8_speedup: 4.0,
            barrier_cycles: 2_000,
            dispatch_cycles: 12_000,
        }
    }

    /// A small generic machine useful for fast tests: 4 cores, AVX2-ish.
    pub fn small_generic() -> Self {
        MachineDescriptor {
            name: "generic-4c".to_string(),
            cores: 4,
            freq_ghz: 3.0,
            vector_bytes: 32,
            caches: vec![
                CacheLevel {
                    size_bytes: 32 * 1024,
                    associativity: 8,
                    line_bytes: 64,
                    latency_cycles: 4,
                    shared: false,
                },
                CacheLevel {
                    size_bytes: 512 * 1024,
                    associativity: 8,
                    line_bytes: 64,
                    latency_cycles: 12,
                    shared: false,
                },
                CacheLevel {
                    size_bytes: 8 * 1024 * 1024,
                    associativity: 16,
                    line_bytes: 64,
                    latency_cycles: 36,
                    shared: true,
                },
            ],
            mem_latency_cycles: 180,
            mem_bw_bytes_per_cycle: 3.0,
            f32_flops_per_cycle: 16.0,
            int8_speedup: 2.0,
            barrier_cycles: 600,
            dispatch_cycles: 6_000,
        }
    }

    /// L1 data cache size in bytes.
    pub fn l1_bytes(&self) -> usize {
        self.caches
            .first()
            .map(|c| c.size_bytes)
            .unwrap_or(32 * 1024)
    }

    /// L2 cache size in bytes.
    pub fn l2_bytes(&self) -> usize {
        self.caches
            .get(1)
            .map(|c| c.size_bytes)
            .unwrap_or(512 * 1024)
    }

    /// Last-level cache size in bytes (total if shared).
    pub fn llc_bytes(&self) -> usize {
        self.caches.last().map(|c| c.size_bytes).unwrap_or(8 << 20)
    }

    /// f32 lanes per SIMD register.
    pub fn f32_lanes(&self) -> usize {
        self.vector_bytes / 4
    }

    /// Peak ops/cycle/core for a dtype with the given element size in
    /// bytes (1 for int8, 4 for f32).
    pub fn ops_per_cycle(&self, elem_bytes: usize) -> f64 {
        if elem_bytes == 1 {
            self.f32_flops_per_cycle * self.int8_speedup
        } else {
            self.f32_flops_per_cycle
        }
    }

    /// Convert cycles at this machine's frequency to milliseconds.
    pub fn cycles_to_ms(&self, cycles: f64) -> f64 {
        cycles / (self.freq_ghz * 1e6)
    }
}

impl Default for MachineDescriptor {
    fn default() -> Self {
        MachineDescriptor::xeon_8358()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xeon_preset_sizes() {
        let m = MachineDescriptor::xeon_8358();
        assert_eq!(m.cores, 32);
        assert_eq!(m.l1_bytes(), 48 * 1024);
        assert_eq!(m.l2_bytes(), 1280 * 1024);
        assert_eq!(m.llc_bytes(), 48 * 1024 * 1024);
        assert_eq!(m.f32_lanes(), 16);
    }

    #[test]
    fn int8_is_faster_than_f32() {
        let m = MachineDescriptor::xeon_8358();
        assert!(m.ops_per_cycle(1) > m.ops_per_cycle(4));
        assert_eq!(m.ops_per_cycle(1), 256.0);
    }

    #[test]
    fn cycles_to_ms_conversion() {
        let m = MachineDescriptor::xeon_8358();
        let ms = m.cycles_to_ms(2.6e6);
        assert!((ms - 1.0).abs() < 1e-9);
    }

    #[test]
    fn default_is_xeon() {
        assert_eq!(MachineDescriptor::default().cores, 32);
    }
}
