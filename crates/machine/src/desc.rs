//! Machine descriptors: the hardware parameters the heuristics and the
//! performance projector consume.
//!
//! The paper's heuristic decides template parameters "based on the input
//! data tensor shape and hardware sizes of the microarchitecture"; this
//! module is where those hardware sizes live.

/// One level of the data-cache hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheLevel {
    /// Capacity in bytes (per core for private levels, total for shared).
    pub size_bytes: usize,
    /// Associativity (ways per set).
    pub associativity: usize,
    /// Cache line size in bytes.
    pub line_bytes: usize,
    /// Load-to-use latency in cycles.
    pub latency_cycles: u64,
    /// Whether the level is shared by all cores.
    pub shared: bool,
}

/// Descriptor of a target CPU.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineDescriptor {
    /// Human-readable name.
    pub name: String,
    /// Physical cores available to the kernel.
    pub cores: usize,
    /// Nominal frequency in GHz (for cycle→time conversion in reports).
    pub freq_ghz: f64,
    /// SIMD register width in bytes (64 for AVX-512).
    pub vector_bytes: usize,
    /// Cache levels, innermost first (L1d, L2, L3).
    pub caches: Vec<CacheLevel>,
    /// Main-memory latency in cycles.
    pub mem_latency_cycles: u64,
    /// Sustained per-core memory bandwidth, bytes per cycle.
    pub mem_bw_bytes_per_cycle: f64,
    /// Peak f32 FLOPs per cycle per core (2 × FMA width × units).
    pub f32_flops_per_cycle: f64,
    /// Throughput multiplier for int8 (VNNI ≈ 4× over f32).
    pub int8_speedup: f64,
    /// Cycles for a full-barrier synchronization across `cores`.
    pub barrier_cycles: u64,
    /// Cycles of fixed overhead per primitive/partition dispatch
    /// (framework API call, descriptor hash lookup, ...).
    pub dispatch_cycles: u64,
    /// Architectural SIMD registers available to the microkernel (32
    /// zmm on AVX-512, 16 ymm on AVX2, 32 vector regs on AArch64).
    pub simd_regs: usize,
    /// FMA execution ports (units that can issue one vector FMA per
    /// cycle each); determines the minimum `mb` needed to hide FMA
    /// latency.
    pub fma_ports: usize,
    /// Whether the machine has a fused int8 dot-product instruction
    /// (VNNI `vpdpbusd` / NEON `sdot`-class).
    pub vnni: bool,
    /// Elements consumed per int8 dot-product group along k (4 for both
    /// VNNI and NEON sdot); the int8 k-remainder granularity.
    pub int8_dot_group: usize,
}

impl MachineDescriptor {
    /// The paper's evaluation machine: Intel Xeon Platinum 8358
    /// (Ice Lake SP), 32 cores, AVX-512 + VNNI.
    pub fn xeon_8358() -> Self {
        MachineDescriptor {
            name: "Intel Xeon Platinum 8358 (32c, AVX-512/VNNI)".to_string(),
            cores: 32,
            freq_ghz: 2.6,
            vector_bytes: 64,
            caches: vec![
                CacheLevel {
                    size_bytes: 48 * 1024,
                    associativity: 12,
                    line_bytes: 64,
                    latency_cycles: 5,
                    shared: false,
                },
                CacheLevel {
                    size_bytes: 1280 * 1024,
                    associativity: 20,
                    line_bytes: 64,
                    latency_cycles: 14,
                    shared: false,
                },
                CacheLevel {
                    size_bytes: 48 * 1024 * 1024,
                    associativity: 12,
                    line_bytes: 64,
                    latency_cycles: 42,
                    shared: true,
                },
            ],
            mem_latency_cycles: 220,
            mem_bw_bytes_per_cycle: 4.0,
            // 2 AVX-512 FMA units × 16 f32 lanes × 2 (mul+add)
            f32_flops_per_cycle: 64.0,
            int8_speedup: 4.0,
            barrier_cycles: 2_000,
            dispatch_cycles: 12_000,
            simd_regs: 32,
            fma_ports: 2,
            vnni: true,
            int8_dot_group: 4,
        }
    }

    /// A small generic machine useful for fast tests: 4 cores, AVX2-ish.
    pub fn small_generic() -> Self {
        MachineDescriptor {
            name: "generic-4c".to_string(),
            cores: 4,
            freq_ghz: 3.0,
            vector_bytes: 32,
            caches: vec![
                CacheLevel {
                    size_bytes: 32 * 1024,
                    associativity: 8,
                    line_bytes: 64,
                    latency_cycles: 4,
                    shared: false,
                },
                CacheLevel {
                    size_bytes: 512 * 1024,
                    associativity: 8,
                    line_bytes: 64,
                    latency_cycles: 12,
                    shared: false,
                },
                CacheLevel {
                    size_bytes: 8 * 1024 * 1024,
                    associativity: 16,
                    line_bytes: 64,
                    latency_cycles: 36,
                    shared: true,
                },
            ],
            mem_latency_cycles: 180,
            mem_bw_bytes_per_cycle: 3.0,
            f32_flops_per_cycle: 16.0,
            int8_speedup: 2.0,
            barrier_cycles: 600,
            dispatch_cycles: 6_000,
            simd_regs: 16,
            fma_ports: 2,
            vnni: false,
            int8_dot_group: 4,
        }
    }

    /// An AArch64-class edge/server core: 128-bit NEON vectors (4 f32
    /// lanes), a big 32-register vector file, and small caches. The
    /// point of this preset is that the *same* graph must lower to
    /// genuinely different template parameters than on
    /// [`xeon_8358`](Self::xeon_8358): `nb` snaps to a 4-lane grid
    /// instead of 16, and the L1 residency bound pushes `kb * bs` well
    /// below the Xeon sweet spot.
    pub fn aarch64_small() -> Self {
        MachineDescriptor {
            name: "aarch64-8c (NEON 128-bit)".to_string(),
            cores: 8,
            freq_ghz: 2.4,
            vector_bytes: 16,
            caches: vec![
                CacheLevel {
                    size_bytes: 32 * 1024,
                    associativity: 4,
                    line_bytes: 64,
                    latency_cycles: 4,
                    shared: false,
                },
                CacheLevel {
                    size_bytes: 256 * 1024,
                    associativity: 8,
                    line_bytes: 64,
                    latency_cycles: 13,
                    shared: false,
                },
                CacheLevel {
                    size_bytes: 4 * 1024 * 1024,
                    associativity: 16,
                    line_bytes: 64,
                    latency_cycles: 40,
                    shared: true,
                },
            ],
            mem_latency_cycles: 200,
            mem_bw_bytes_per_cycle: 2.5,
            // 2 NEON FMA pipes × 4 f32 lanes × 2 (mul+add)
            f32_flops_per_cycle: 16.0,
            // sdot gives int8 a real edge, but less than VNNI-on-zmm
            int8_speedup: 2.0,
            barrier_cycles: 500,
            dispatch_cycles: 5_000,
            simd_regs: 32,
            fma_ports: 2,
            vnni: false,
            int8_dot_group: 4,
        }
    }

    /// L1 data cache size in bytes.
    pub fn l1_bytes(&self) -> usize {
        self.caches
            .first()
            .map(|c| c.size_bytes)
            .unwrap_or(32 * 1024)
    }

    /// L2 cache size in bytes.
    pub fn l2_bytes(&self) -> usize {
        self.caches
            .get(1)
            .map(|c| c.size_bytes)
            .unwrap_or(512 * 1024)
    }

    /// Last-level cache size in bytes (total if shared).
    pub fn llc_bytes(&self) -> usize {
        self.caches.last().map(|c| c.size_bytes).unwrap_or(8 << 20)
    }

    /// f32 lanes per SIMD register.
    pub fn f32_lanes(&self) -> usize {
        self.vector_bytes / 4
    }

    /// SIMD registers the microkernel can spend on the accumulator
    /// tile: the architectural file minus the registers pinned to A
    /// broadcasts and B panel loads.
    pub fn acc_reg_budget(&self) -> usize {
        self.simd_regs.saturating_sub(4).max(1)
    }

    /// Peak ops/cycle/core for a dtype with the given element size in
    /// bytes (1 for int8, 4 for f32).
    pub fn ops_per_cycle(&self, elem_bytes: usize) -> f64 {
        if elem_bytes == 1 {
            self.f32_flops_per_cycle * self.int8_speedup
        } else {
            self.f32_flops_per_cycle
        }
    }

    /// Convert cycles at this machine's frequency to milliseconds.
    pub fn cycles_to_ms(&self, cycles: f64) -> f64 {
        cycles / (self.freq_ghz * 1e6)
    }
}

impl Default for MachineDescriptor {
    fn default() -> Self {
        MachineDescriptor::xeon_8358()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xeon_preset_sizes() {
        let m = MachineDescriptor::xeon_8358();
        assert_eq!(m.cores, 32);
        assert_eq!(m.l1_bytes(), 48 * 1024);
        assert_eq!(m.l2_bytes(), 1280 * 1024);
        assert_eq!(m.llc_bytes(), 48 * 1024 * 1024);
        assert_eq!(m.f32_lanes(), 16);
    }

    #[test]
    fn int8_is_faster_than_f32() {
        let m = MachineDescriptor::xeon_8358();
        assert!(m.ops_per_cycle(1) > m.ops_per_cycle(4));
        assert_eq!(m.ops_per_cycle(1), 256.0);
    }

    #[test]
    fn cycles_to_ms_conversion() {
        let m = MachineDescriptor::xeon_8358();
        let ms = m.cycles_to_ms(2.6e6);
        assert!((ms - 1.0).abs() < 1e-9);
    }

    #[test]
    fn default_is_xeon() {
        assert_eq!(MachineDescriptor::default().cores, 32);
    }

    #[test]
    fn simd_fields_per_preset() {
        let xeon = MachineDescriptor::xeon_8358();
        assert_eq!(xeon.simd_regs, 32);
        assert_eq!(xeon.acc_reg_budget(), 28);
        assert!(xeon.vnni);
        let small = MachineDescriptor::small_generic();
        assert_eq!(small.simd_regs, 16);
        assert!(!small.vnni);
        for m in [
            MachineDescriptor::xeon_8358(),
            MachineDescriptor::small_generic(),
            MachineDescriptor::aarch64_small(),
        ] {
            assert_eq!(m.fma_ports, 2, "{}", m.name);
            assert_eq!(m.int8_dot_group, 4, "{}", m.name);
        }
    }

    #[test]
    fn aarch64_preset_sizes() {
        let m = MachineDescriptor::aarch64_small();
        assert_eq!(m.cores, 8);
        assert_eq!(m.vector_bytes, 16);
        assert_eq!(m.f32_lanes(), 4);
        assert_eq!(m.l1_bytes(), 32 * 1024);
        assert_eq!(m.l2_bytes(), 256 * 1024);
        assert_eq!(m.llc_bytes(), 4 * 1024 * 1024);
        // 32 NEON regs leave a large accumulator budget despite the
        // narrow lanes.
        assert_eq!(m.acc_reg_budget(), 28);
        assert!(!m.vnni);
    }
}
