//! Steady-state plan execution must not touch the heap: offsets, brgemm
//! tables, and bounds were all resolved at plan-build time, locals are
//! re-zeroed in place, and parallel chunks copy a stack array. Verified
//! with a counting global allocator.
//!
//! Single test function on purpose — the counter is process-global, so
//! concurrent tests would pollute the deltas. The libtest harness's own
//! main thread allocates concurrently with the test body (channel and
//! timeout bookkeeping), so the counter only counts the one thread that
//! registered itself — plan execution dispatches *work* to the pool,
//! but every allocation we guard against (task publication, interpreter
//! fallbacks) happens on the calling thread.

use gc_runtime::ThreadPool;
use gc_tensor::{DataType, Storage};
use gc_tir::compile::compile_module;
use gc_tir::expr::Expr;
use gc_tir::ir::{
    BufDecl, BufId, Call, Func, GlobalDecl, GlobalKind, Intrinsic, Module, Stmt, View,
};
use gc_tir::plan::{run_plan_call, PlanScratch};
use gc_tir::VarId;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct Counting;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
/// `pthread_self()` of the thread whose allocations are counted (0 =
/// nobody yet). Thread identity must come from something that neither
/// allocates nor touches Rust TLS — `std::thread::current()` does both
/// on first use, which would recurse into the allocator.
static MEASURED: AtomicU64 = AtomicU64::new(0);

unsafe extern "C" {
    fn pthread_self() -> u64;
}

fn counted_thread() -> bool {
    // SAFETY: pthread_self has no preconditions.
    MEASURED.load(Ordering::Relaxed) == unsafe { pthread_self() }
}

unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, l: Layout) -> *mut u8 {
        if counted_thread() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(l) }
    }

    unsafe fn dealloc(&self, p: *mut u8, l: Layout) {
        unsafe { System.dealloc(p, l) }
    }

    unsafe fn realloc(&self, p: *mut u8, l: Layout, new_size: usize) -> *mut u8 {
        if counted_thread() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(p, l, new_size) }
    }
}

#[global_allocator]
static A: Counting = Counting;

/// A function touching the allocation-prone interpreter paths: a
/// parallel loop (the interpreter clones its variable `Vec` per
/// iteration), brgemm (the interpreter rebuilds offset tables per
/// call), and a local temporary (the interpreter allocates it per
/// call). Tiles are 16x16x128 so the loop clears the plan builder's
/// dispatch-worthiness threshold even at extent 16 — a smaller body
/// would be demoted to a serial loop and never hit the pool.
fn test_module(extent: usize) -> Module {
    let m_tile = 16usize;
    let n_tile = 16usize;
    let k = 128usize;
    let mut module = Module::new();
    let g_a = module.add_global(GlobalDecl {
        dtype: DataType::F32,
        elems: extent * m_tile * k,
        kind: GlobalKind::Input(0),
        name: "a".into(),
    });
    let g_b = module.add_global(GlobalDecl {
        dtype: DataType::F32,
        elems: n_tile * k,
        kind: GlobalKind::Weight,
        name: "b".into(),
    });
    let g_c = module.add_global(GlobalDecl {
        dtype: DataType::F32,
        elems: extent * m_tile * n_tile,
        kind: GlobalKind::Output(0),
        name: "c".into(),
    });
    let v = VarId(0);
    let func = Func {
        name: "pargemm".into(),
        params: vec![
            BufDecl::new(DataType::F32, extent * m_tile * k, "a"),
            BufDecl::new(DataType::F32, n_tile * k, "b"),
            BufDecl::new(DataType::F32, extent * m_tile * n_tile, "c"),
        ],
        locals: vec![BufDecl::new(DataType::F32, m_tile * n_tile, "tmp")],
        var_count: 1,
        body: vec![Stmt::For {
            var: v,
            extent,
            parallel: true,
            body: vec![
                Stmt::Op(Intrinsic::BrgemmF32 {
                    a: View::new(
                        BufId::Param(0),
                        Expr::v(v).mul(Expr::c((m_tile * k) as i64)),
                        m_tile * k,
                    ),
                    a_stride: 0,
                    b: View::new(BufId::Param(1), Expr::c(0), n_tile * k),
                    b_stride: 0,
                    c: View::new(BufId::Local(0), Expr::c(0), m_tile * n_tile),
                    m: m_tile,
                    n: n_tile,
                    k,
                    batch: 1,
                }),
                Stmt::Op(Intrinsic::Unary {
                    op: gc_microkernel::UnaryOp::Relu,
                    src: View::new(BufId::Local(0), Expr::c(0), m_tile * n_tile),
                    dst: View::new(
                        BufId::Param(2),
                        Expr::v(v).mul(Expr::c((m_tile * n_tile) as i64)),
                        m_tile * n_tile,
                    ),
                }),
            ],
        }],
    };
    let f = module.add_func(func);
    module.main_calls.push(Call {
        func: f,
        args: vec![g_a, g_b, g_c],
    });
    module.validate().unwrap();
    module
}

fn globals_for(module: &Module) -> Vec<Storage> {
    module
        .globals
        .iter()
        .map(|g| Storage::zeros(g.dtype, g.elems))
        .collect()
}

/// Allocation delta of each of `calls` steady-state calls, counting
/// only the calling thread (see module docs). Callers still assert on
/// the per-call *minimum*: the caller participates in its own parallel
/// regions, and a rare OS-level wake path on re-entry may allocate.
fn allocs_per_call(
    module: &Module,
    pool: &ThreadPool,
    globals: &mut [Storage],
    scratch: &mut PlanScratch,
    plan: &gc_tir::Plan,
    calls: usize,
) -> Vec<u64> {
    let call = &module.main_calls[0];
    // warm-up: first call may grow the scratch buffer table
    run_plan_call(plan, call.func, &call.args, globals, pool, scratch);
    (0..calls)
        .map(|_| {
            let before = ALLOCS.load(Ordering::Relaxed);
            run_plan_call(plan, call.func, &call.args, globals, pool, scratch);
            ALLOCS.load(Ordering::Relaxed) - before
        })
        .collect()
}

#[test]
fn steady_state_plan_execution_does_not_allocate() {
    // Count this thread (and only this thread) from here on.
    // SAFETY: pthread_self has no preconditions.
    MEASURED.store(unsafe { pthread_self() }, Ordering::Relaxed);

    // Single-threaded: parallel loops inline, so steady state must be
    // exactly allocation-free.
    let module = test_module(64);
    let plan = compile_module(&module, 1);
    assert_eq!(plan.stats().interpreted_funcs, 0, "{:?}", plan.stats());
    let pool = ThreadPool::new(1);
    let mut globals = globals_for(&module);
    let mut scratch = PlanScratch::for_plan(&plan);
    let allocs = allocs_per_call(&module, &pool, &mut globals, &mut scratch, &plan, 16);
    assert!(
        allocs.iter().all(|&a| a == 0),
        "steady-state single-threaded plan execution allocated: {allocs:?}"
    );

    // Multi-threaded: the pool publishes one Arc'd task per parallel
    // region, but the per-iteration cost must be zero — the allocation
    // count cannot grow with the loop extent.
    let pool = ThreadPool::new(4);
    let small = test_module(16);
    let large = test_module(256);
    let plan_small = compile_module(&small, 4);
    let plan_large = compile_module(&large, 4);
    assert!(
        plan_small.stats().serialized_loops == 0 && plan_large.stats().serialized_loops == 0,
        "both loops must stay dispatched for this comparison to mean anything"
    );
    let mut g_small = globals_for(&small);
    let mut g_large = globals_for(&large);
    let mut s_small = PlanScratch::for_plan(&plan_small);
    let mut s_large = PlanScratch::for_plan(&plan_large);
    let calls = 16;
    let a_small = allocs_per_call(
        &small,
        &pool,
        &mut g_small,
        &mut s_small,
        &plan_small,
        calls,
    );
    let a_large = allocs_per_call(
        &large,
        &pool,
        &mut g_large,
        &mut s_large,
        &plan_large,
        calls,
    );
    let min_small = *a_small.iter().min().unwrap();
    let min_large = *a_large.iter().min().unwrap();
    assert_eq!(
        min_small, min_large,
        "per-call allocation count must be independent of the parallel extent \
         (16 iters: {a_small:?}, 256 iters: {a_large:?})"
    );
    assert!(
        min_large <= 1,
        "at most one task publication per parallel region, got {min_large} per call"
    );
}
