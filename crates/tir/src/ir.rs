//! Tensor IR structures: module, function, statement, intrinsic.
//!
//! Tensor IR "is close to the C program semantics. The data structure it
//! operates on is multidimensional arrays, representing tensor buffers
//! in physical memory." All shapes, strides and loop extents are
//! compile-time constants (static-shape optimization); only buffer
//! offsets contain loop variables. Bulk data work happens in
//! *intrinsics* — microkernel calls and vectorized slice kernels.

use crate::expr::{Expr, VarId};
use gc_microkernel::{BinaryOp, UnaryOp};
use gc_tensor::DataType;

/// Reference to a buffer visible inside a function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BufId {
    /// One of the function's parameters.
    Param(usize),
    /// A function-local temporary.
    Local(usize),
}

/// A contiguous window into a buffer: `buf[offset .. offset + len]`
/// (in elements).
#[derive(Debug, Clone, PartialEq)]
pub struct View {
    /// Underlying buffer.
    pub buf: BufId,
    /// Element offset (may reference loop variables).
    pub offset: Expr,
    /// Window length in elements (static).
    pub len: usize,
}

impl View {
    /// Create a view.
    pub fn new(buf: BufId, offset: impl Into<Expr>, len: usize) -> View {
        View {
            buf,
            offset: offset.into(),
            len,
        }
    }
}

/// Reduction flavour for [`Intrinsic::ReduceRows`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// Row-wise sum.
    Sum,
    /// Row-wise max.
    Max,
}

/// Clamp of one axis of a clamped copy / tail kernel against a logical
/// bound.
///
/// Ragged-shape support keeps the *physical* tile grid full-sized
/// (`rows`/`cols`/`m` stay the padded block extents) while this struct
/// carries the *logical* truth: the axis base in axis units (a loop
/// expression, excluded from the intrinsic's offset expression so that
/// static bounds analysis can cap the reachable span at
/// `(logical - 1) * stride`), plus the logical extent. Executors
/// compute `avail = logical.saturating_sub(base)` at runtime and
/// zero-fill (pack), skip (unpack) or shorten (brgemm tail) everything
/// at axis index `>= avail`.
#[derive(Debug, Clone, PartialEq)]
pub struct AxisClamp {
    /// Axis base in axis units (may reference loop variables). The
    /// matching `base * stride` term is *not* part of the offset
    /// expression of the intrinsic that owns this clamp.
    pub base: Expr,
    /// Logical extent of the axis.
    pub logical: usize,
}

impl AxisClamp {
    /// Create a clamp.
    pub fn new(base: impl Into<Expr>, logical: usize) -> AxisClamp {
        AxisClamp {
            base: base.into(),
            logical,
        }
    }

    /// Axis elements available from `base`, capped at `tile`.
    pub fn avail(&self, base: usize, tile: usize) -> usize {
        self.logical.saturating_sub(base).min(tile)
    }
}

/// The intrinsic functions available to lowered code.
///
/// Each "is carefully hand-tuned and fulfills a subtask of a DNN OP with
/// data in the fastest cache on a single CPU core" — in this
/// reproduction, the kernels of `gc-microkernel`.
#[derive(Debug, Clone, PartialEq)]
pub enum Intrinsic {
    /// `c[m,n] += sum_b a_tile(b) x b_tile(b)` — f32 batch-reduce GEMM.
    /// Tile `i` of A starts at `a.offset + i * a_stride` (likewise B).
    BrgemmF32 {
        /// First A tile (len `m * k`).
        a: View,
        /// Element stride between consecutive A tiles.
        a_stride: usize,
        /// First B tile (len `n * k`, `[n][k]` panels).
        b: View,
        /// Element stride between consecutive B tiles.
        b_stride: usize,
        /// C tile (len `m * n`), accumulated into.
        c: View,
        /// Rows.
        m: usize,
        /// Columns.
        n: usize,
        /// Reduction per tile.
        k: usize,
        /// Number of tile pairs (BS).
        batch: usize,
    },
    /// Int8 batch-reduce GEMM (u8 × i8 → i32).
    BrgemmU8I8 {
        /// First A tile (u8).
        a: View,
        /// Element stride between A tiles.
        a_stride: usize,
        /// First B tile (i8).
        b: View,
        /// Element stride between B tiles.
        b_stride: usize,
        /// C tile (i32), accumulated into.
        c: View,
        /// Rows.
        m: usize,
        /// Columns.
        n: usize,
        /// Reduction per tile.
        k: usize,
        /// Number of tile pairs.
        batch: usize,
    },
    /// Fill an f32 view with a constant.
    FillF32 {
        /// Destination.
        dst: View,
        /// Fill value.
        value: f32,
    },
    /// Zero an i32 view.
    ZeroI32 {
        /// Destination.
        dst: View,
    },
    /// 2-D strided gather into a contiguous tile (layout pack /
    /// transpose). `dst[r * cols + c] = src[off + r*rs + c*cs]`.
    Pack2D {
        /// Source buffer.
        src: BufId,
        /// Source base offset.
        src_offset: Expr,
        /// Source row stride (elements).
        src_row_stride: usize,
        /// Source column stride (elements; 1 for plain rows, use the
        /// row pitch to express a transpose).
        src_col_stride: usize,
        /// Contiguous destination tile (len `rows * cols`).
        dst: View,
        /// Rows.
        rows: usize,
        /// Columns.
        cols: usize,
    },
    /// 2-D strided scatter from a contiguous tile (layout unpack).
    /// `dst[off + r*rs + c*cs] = src[r * cols + c]`.
    Unpack2D {
        /// Contiguous source tile (len `rows * cols`).
        src: View,
        /// Destination buffer.
        dst: BufId,
        /// Destination base offset.
        dst_offset: Expr,
        /// Destination row stride.
        dst_row_stride: usize,
        /// Destination column stride.
        dst_col_stride: usize,
        /// Rows.
        rows: usize,
        /// Columns.
        cols: usize,
    },
    /// Clamped 2-D gather: like [`Intrinsic::Pack2D`] but each axis is
    /// clamped against a logical bound and out-of-range destination
    /// elements are zero-filled, so edge tiles of ragged shapes pack
    /// into full physical blocks.
    /// `dst[r*cols + c] = src[off + (rb+r)*rs + (cb+c)*cs]` when
    /// `rb+r < row_clamp.logical && cb+c < col_clamp.logical`, else 0.
    /// The `rb*rs` / `cb*cs` terms live in the clamps, not in
    /// `src_offset`.
    Pack2DPad {
        /// Source buffer.
        src: BufId,
        /// Source base offset *excluding* the clamped axis bases.
        src_offset: Expr,
        /// Source row stride (elements).
        src_row_stride: usize,
        /// Source column stride (elements).
        src_col_stride: usize,
        /// Contiguous destination tile (len `rows * cols`, fully
        /// written).
        dst: View,
        /// Physical rows.
        rows: usize,
        /// Physical columns.
        cols: usize,
        /// Row-axis clamp.
        row_clamp: AxisClamp,
        /// Column-axis clamp.
        col_clamp: AxisClamp,
    },
    /// Clamped 2-D scatter: like [`Intrinsic::Unpack2D`] but writes to
    /// rows/columns at or past the logical bounds are skipped, so edge
    /// tiles never scribble past a ragged output.
    /// `dst[off + (rb+r)*rs + (cb+c)*cs] = src[r*cols + c]` only when
    /// `rb+r < row_clamp.logical && cb+c < col_clamp.logical`.
    Unpack2DClamp {
        /// Contiguous source tile (len `rows * cols`).
        src: View,
        /// Destination buffer.
        dst: BufId,
        /// Destination base offset *excluding* the clamped axis bases.
        dst_offset: Expr,
        /// Destination row stride.
        dst_row_stride: usize,
        /// Destination column stride.
        dst_col_stride: usize,
        /// Physical rows.
        rows: usize,
        /// Physical columns.
        cols: usize,
        /// Row-axis clamp.
        row_clamp: AxisClamp,
        /// Column-axis clamp.
        col_clamp: AxisClamp,
    },
    /// M-tail batch-reduce GEMM: like [`Intrinsic::BrgemmF32`] but only
    /// the first `m_eff = m_clamp.avail(..)` rows are computed; the C
    /// view's `m_eff * n` prefix is accumulated and rows past the
    /// logical M are untouched. A no-op when `m_eff == 0`.
    BrgemmF32Tail {
        /// First A tile (len `m * k`; only `m_eff * k` read).
        a: View,
        /// Element stride between A tiles.
        a_stride: usize,
        /// First B tile.
        b: View,
        /// Element stride between B tiles.
        b_stride: usize,
        /// C tile (len `m * n`; `m_eff * n` prefix accumulated).
        c: View,
        /// Physical rows.
        m: usize,
        /// Columns.
        n: usize,
        /// Reduction per tile.
        k: usize,
        /// Number of tile pairs.
        batch: usize,
        /// Row-axis clamp (base in M-rows).
        m_clamp: AxisClamp,
    },
    /// Int8 M-tail batch-reduce GEMM (see [`Intrinsic::BrgemmF32Tail`]).
    BrgemmU8I8Tail {
        /// First A tile (u8).
        a: View,
        /// Element stride between A tiles.
        a_stride: usize,
        /// First B tile (i8).
        b: View,
        /// Element stride between B tiles.
        b_stride: usize,
        /// C tile (i32; `m_eff * n` prefix accumulated).
        c: View,
        /// Physical rows.
        m: usize,
        /// Columns.
        n: usize,
        /// Reduction per tile.
        k: usize,
        /// Number of tile pairs.
        batch: usize,
        /// Row-axis clamp (base in M-rows).
        m_clamp: AxisClamp,
    },
    /// Elementwise unary over f32 views (equal lengths; in-place allowed
    /// when `src` and `dst` coincide exactly).
    Unary {
        /// Operation.
        op: UnaryOp,
        /// Source.
        src: View,
        /// Destination.
        dst: View,
    },
    /// Elementwise binary over f32 views.
    Binary {
        /// Operation.
        op: BinaryOp,
        /// Left operand.
        a: View,
        /// Right operand.
        b: View,
        /// Destination.
        dst: View,
    },
    /// Elementwise binary with a scalar rhs.
    BinaryScalar {
        /// Operation.
        op: BinaryOp,
        /// Left operand.
        a: View,
        /// Scalar rhs.
        scalar: f32,
        /// Destination.
        dst: View,
    },
    /// `dst[r,c] = op(a[r,c], b[c])` — rhs broadcast along rows
    /// (bias-style).
    BinaryRowBcast {
        /// Operation.
        op: BinaryOp,
        /// Tile operand (len `rows * cols`).
        a: View,
        /// Broadcast vector (len `cols`).
        b: View,
        /// Destination (len `rows * cols`).
        dst: View,
        /// Rows.
        rows: usize,
        /// Columns.
        cols: usize,
    },
    /// `dst[r,c] = op(a[r,c], b[r])` — rhs broadcast along columns
    /// (softmax normalization style).
    BinaryColBcast {
        /// Operation.
        op: BinaryOp,
        /// Tile operand.
        a: View,
        /// Broadcast vector (len `rows`).
        b: View,
        /// Destination.
        dst: View,
        /// Rows.
        rows: usize,
        /// Columns.
        cols: usize,
    },
    /// Row-wise reduction of a tile into `acc[rows]`; `accumulate`
    /// combines with existing contents (the partial half of a split
    /// reduction post-op).
    ReduceRows {
        /// Sum or max.
        op: ReduceOp,
        /// Tile (len `rows * cols`).
        src: View,
        /// Accumulator (len `rows`).
        acc: View,
        /// Rows.
        rows: usize,
        /// Columns.
        cols: usize,
        /// Combine with existing accumulator contents.
        accumulate: bool,
    },
    /// Int8 epilogue: dequantize an i32 accumulator tile applying
    /// zero-point compensation, combined scale and optional bias.
    DequantAcc {
        /// Accumulator tile (i32, len `rows * cols`).
        acc: View,
        /// Compensation vector (i32, len `cols`).
        comp: View,
        /// Activation zero point.
        a_zero: i32,
        /// Combined scale (`a_s * b_s`).
        scale: f32,
        /// Optional bias (f32, len `cols`).
        bias: Option<View>,
        /// Destination (f32).
        dst: View,
        /// Rows.
        rows: usize,
        /// Columns.
        cols: usize,
    },
    /// Requantize f32 → u8.
    QuantU8 {
        /// Source (f32).
        src: View,
        /// Destination (u8).
        dst: View,
        /// Quantization scale.
        scale: f32,
        /// Zero point.
        zero_point: i32,
    },
    /// Dequantize u8 → f32.
    DequantU8 {
        /// Source (u8).
        src: View,
        /// Destination (f32).
        dst: View,
        /// Quantization scale.
        scale: f32,
        /// Zero point.
        zero_point: i32,
    },
    /// Dequantize i8 → f32 (symmetric).
    DequantI8 {
        /// Source (i8).
        src: View,
        /// Destination (f32).
        dst: View,
        /// Quantization scale.
        scale: f32,
    },
    /// Accumulate weight compensation from one blocked i8 weight tile:
    /// `comp[j] += sum_k tile[j * kb + k]`.
    CompAccumulate {
        /// Weight tile (i8, `[nb][kb]` panels).
        b_tile: View,
        /// Compensation accumulator (i32, len `nb`).
        comp: View,
        /// Panels.
        nb: usize,
        /// Panel length.
        kb: usize,
    },
    /// Widen i32 → f32.
    CastI32F32 {
        /// Source (i32).
        src: View,
        /// Destination (f32).
        dst: View,
    },
    /// `dst[i] += src[i]` over f32 views (equal lengths). The reduction
    /// step of the k-slicing template: folds one k-slice's partial
    /// accumulator into the task's final accumulator.
    AddF32 {
        /// Partial accumulator to fold in.
        src: View,
        /// Running accumulator (read-modify-write).
        dst: View,
    },
    /// `dst[i] += src[i]` over i32 views (equal lengths). The u8×i8
    /// variant of the k-slicing reduction; exact, so sliced and unsliced
    /// int8 plans agree bit-for-bit.
    AddI32 {
        /// Partial accumulator to fold in.
        src: View,
        /// Running accumulator (read-modify-write).
        dst: View,
    },
}

/// One Tensor IR statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// A counted loop `for var in 0..extent`.
    For {
        /// Loop variable.
        var: VarId,
        /// Static trip count.
        extent: usize,
        /// Whether iterations run on the thread pool (with an implicit
        /// trailing barrier).
        parallel: bool,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// An intrinsic call.
    Op(Intrinsic),
}

impl Stmt {
    /// Build a serial loop.
    pub fn loop_(var: VarId, extent: usize, body: Vec<Stmt>) -> Stmt {
        Stmt::For {
            var,
            extent,
            parallel: false,
            body,
        }
    }

    /// Build a parallel loop.
    pub fn parallel(var: VarId, extent: usize, body: Vec<Stmt>) -> Stmt {
        Stmt::For {
            var,
            extent,
            parallel: true,
            body,
        }
    }
}

/// Declaration of a buffer (parameter or local).
#[derive(Debug, Clone, PartialEq)]
pub struct BufDecl {
    /// Element type.
    pub dtype: DataType,
    /// Number of elements.
    pub elems: usize,
    /// Debug name.
    pub name: String,
}

impl BufDecl {
    /// Create a declaration.
    pub fn new(dtype: DataType, elems: usize, name: impl Into<String>) -> Self {
        BufDecl {
            dtype,
            elems,
            name: name.into(),
        }
    }

    /// Size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.elems * self.dtype.size_bytes()
    }
}

/// A lowered Fused OP: one function.
#[derive(Debug, Clone, PartialEq)]
pub struct Func {
    /// Name (diagnostics).
    pub name: String,
    /// Parameter buffers (bound to module globals at call sites).
    pub params: Vec<BufDecl>,
    /// Local temporary buffers.
    pub locals: Vec<BufDecl>,
    /// Number of scalar variables used by the body.
    pub var_count: usize,
    /// Statements.
    pub body: Vec<Stmt>,
}

impl Func {
    /// Allocate a fresh variable id.
    pub fn fresh_var(&mut self) -> VarId {
        let v = VarId(self.var_count);
        self.var_count += 1;
        v
    }

    /// Declare a local buffer; returns its [`BufId`].
    pub fn add_local(&mut self, decl: BufDecl) -> BufId {
        self.locals.push(decl);
        BufId::Local(self.locals.len() - 1)
    }

    /// Total bytes of all local temporaries (before buffer reuse).
    pub fn local_bytes(&self) -> usize {
        self.locals.iter().map(BufDecl::size_bytes).sum()
    }
}

/// Role of a module-level buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GlobalKind {
    /// Bound to the i-th execution input.
    Input(usize),
    /// Bound to the i-th execution output.
    Output(usize),
    /// A weight (or other constant) bound at compile time.
    Weight,
    /// Produced by the init stage, cached across executions.
    Persistent,
    /// Scratch between fused ops, allocated per execution.
    Scratch,
}

/// Declaration of a module-level buffer.
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalDecl {
    /// Element type.
    pub dtype: DataType,
    /// Number of elements.
    pub elems: usize,
    /// Role.
    pub kind: GlobalKind,
    /// Debug name.
    pub name: String,
}

/// A call in the module's entry sequence: `funcs[func](globals[args])`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Call {
    /// Index into [`Module::funcs`].
    pub func: usize,
    /// Global indices bound to the function's parameters, in order.
    pub args: Vec<usize>,
}

/// A compiled Tensor IR module: "multiple functions, each of which
/// represents a lowered Fused OP", plus an entry sequence of calls.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Module {
    /// Functions (one per fused op / merged group).
    pub funcs: Vec<Func>,
    /// Module-level buffers.
    pub globals: Vec<GlobalDecl>,
    /// Calls executed once, on first run (constant preprocessing).
    pub init_calls: Vec<Call>,
    /// Calls executed on every run.
    pub main_calls: Vec<Call>,
}

impl Module {
    /// An empty module.
    pub fn new() -> Self {
        Module::default()
    }

    /// Add a global buffer; returns its index.
    pub fn add_global(&mut self, decl: GlobalDecl) -> usize {
        self.globals.push(decl);
        self.globals.len() - 1
    }

    /// Add a function; returns its index.
    pub fn add_func(&mut self, func: Func) -> usize {
        self.funcs.push(func);
        self.funcs.len() - 1
    }

    /// Basic structural validation: call arities, buffer indices, and
    /// unique input/output slot assignments. Deeper semantic checks
    /// (def-before-use, in-bounds accesses, reuse live ranges) live in
    /// [`crate::passes::validate`].
    ///
    /// # Errors
    ///
    /// Returns a message describing the first violation.
    pub fn validate(&self) -> Result<(), String> {
        let mut inputs = std::collections::HashMap::new();
        let mut outputs = std::collections::HashMap::new();
        for (gi, g) in self.globals.iter().enumerate() {
            let dup = match g.kind {
                GlobalKind::Input(slot) => inputs.insert(slot, gi),
                GlobalKind::Output(slot) => outputs.insert(slot, gi),
                _ => None,
            };
            if let Some(prev) = dup {
                return Err(format!(
                    "globals {} and {} both claim {:?}",
                    self.globals[prev].name, g.name, g.kind
                ));
            }
        }
        for (ci, call) in self.init_calls.iter().chain(&self.main_calls).enumerate() {
            let f = self
                .funcs
                .get(call.func)
                .ok_or_else(|| format!("call {ci}: unknown func {}", call.func))?;
            if call.args.len() != f.params.len() {
                return Err(format!(
                    "call {ci} to {}: {} args for {} params",
                    f.name,
                    call.args.len(),
                    f.params.len()
                ));
            }
            for (&a, p) in call.args.iter().zip(&f.params) {
                let g = self
                    .globals
                    .get(a)
                    .ok_or_else(|| format!("call {ci}: unknown global {a}"))?;
                if g.dtype != p.dtype || g.elems < p.elems {
                    return Err(format!(
                        "call {ci} to {}: global {} ({} x{}) incompatible with param {} ({} x{})",
                        f.name, g.name, g.dtype, g.elems, p.name, p.dtype, p.elems
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_func() -> Func {
        let mut f = Func {
            name: "f".to_string(),
            params: vec![
                BufDecl::new(DataType::F32, 16, "in"),
                BufDecl::new(DataType::F32, 16, "out"),
            ],
            locals: vec![],
            var_count: 0,
            body: vec![],
        };
        let v = f.fresh_var();
        f.body.push(Stmt::loop_(
            v,
            4,
            vec![Stmt::Op(Intrinsic::Unary {
                op: UnaryOp::Relu,
                src: View::new(BufId::Param(0), Expr::v(v).mul(Expr::c(4)), 4),
                dst: View::new(BufId::Param(1), Expr::v(v).mul(Expr::c(4)), 4),
            })],
        ));
        f
    }

    #[test]
    fn func_helpers() {
        let mut f = tiny_func();
        assert_eq!(f.var_count, 1);
        let l = f.add_local(BufDecl::new(DataType::F32, 8, "tmp"));
        assert_eq!(l, BufId::Local(0));
        assert_eq!(f.local_bytes(), 32);
    }

    #[test]
    fn module_validate_catches_arity() {
        let mut m = Module::new();
        let f = m.add_func(tiny_func());
        let a = m.add_global(GlobalDecl {
            dtype: DataType::F32,
            elems: 16,
            kind: GlobalKind::Input(0),
            name: "a".to_string(),
        });
        m.main_calls.push(Call {
            func: f,
            args: vec![a],
        });
        assert!(m.validate().is_err()); // 1 arg for 2 params
        let b = m.add_global(GlobalDecl {
            dtype: DataType::F32,
            elems: 16,
            kind: GlobalKind::Output(0),
            name: "b".to_string(),
        });
        m.main_calls[0].args.push(b);
        m.validate().unwrap();
    }

    #[test]
    fn module_validate_catches_dtype() {
        let mut m = Module::new();
        let f = m.add_func(tiny_func());
        let a = m.add_global(GlobalDecl {
            dtype: DataType::I8,
            elems: 16,
            kind: GlobalKind::Input(0),
            name: "a".to_string(),
        });
        let b = m.add_global(GlobalDecl {
            dtype: DataType::F32,
            elems: 16,
            kind: GlobalKind::Output(0),
            name: "b".to_string(),
        });
        m.main_calls.push(Call {
            func: f,
            args: vec![a, b],
        });
        assert!(m.validate().is_err());
    }

    #[test]
    fn undersized_global_rejected() {
        let mut m = Module::new();
        let f = m.add_func(tiny_func());
        let a = m.add_global(GlobalDecl {
            dtype: DataType::F32,
            elems: 8,
            kind: GlobalKind::Input(0),
            name: "a".to_string(),
        });
        let b = m.add_global(GlobalDecl {
            dtype: DataType::F32,
            elems: 16,
            kind: GlobalKind::Output(0),
            name: "b".to_string(),
        });
        m.main_calls.push(Call {
            func: f,
            args: vec![a, b],
        });
        assert!(m.validate().is_err());
    }
}
