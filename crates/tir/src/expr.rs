//! Integer index expressions.
//!
//! Tensor IR operates on *static* shapes — the paper's "optimization for
//! static tensor shapes" — so every extent and stride is a compile-time
//! constant and expressions only combine constants with loop variables.

use std::fmt;

/// Identifier of a scalar loop/index variable within a function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub usize);

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// An integer expression over constants and variables.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// Integer constant.
    Const(i64),
    /// Loop/index variable.
    Var(VarId),
    /// Sum.
    Add(Box<Expr>, Box<Expr>),
    /// Product.
    Mul(Box<Expr>, Box<Expr>),
    /// Truncating division.
    Div(Box<Expr>, Box<Expr>),
    /// Remainder.
    Rem(Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Convenience constant.
    pub fn c(v: i64) -> Expr {
        Expr::Const(v)
    }

    /// Convenience variable.
    pub fn v(id: VarId) -> Expr {
        Expr::Var(id)
    }

    /// `self + rhs`, folding constants.
    #[allow(clippy::should_implement_trait)] // builder API with const-folding, not `std::ops::Add`
    pub fn add(self, rhs: Expr) -> Expr {
        match (&self, &rhs) {
            (Expr::Const(0), _) => rhs,
            (_, Expr::Const(0)) => self,
            (Expr::Const(a), Expr::Const(b)) => Expr::Const(a + b),
            _ => Expr::Add(Box::new(self), Box::new(rhs)),
        }
    }

    /// `self * rhs`, folding constants.
    #[allow(clippy::should_implement_trait)] // builder API with const-folding, not `std::ops::Mul`
    pub fn mul(self, rhs: Expr) -> Expr {
        match (&self, &rhs) {
            (Expr::Const(0), _) | (_, Expr::Const(0)) => Expr::Const(0),
            (Expr::Const(1), _) => rhs,
            (_, Expr::Const(1)) => self,
            (Expr::Const(a), Expr::Const(b)) => Expr::Const(a * b),
            _ => Expr::Mul(Box::new(self), Box::new(rhs)),
        }
    }

    /// Evaluate with variable values from `vars` (indexed by [`VarId`]).
    ///
    /// # Panics
    ///
    /// Panics if a variable is out of range or on division by zero.
    pub fn eval(&self, vars: &[i64]) -> i64 {
        match self {
            Expr::Const(v) => *v,
            Expr::Var(v) => vars[v.0],
            Expr::Add(a, b) => a.eval(vars) + b.eval(vars),
            Expr::Mul(a, b) => a.eval(vars) * b.eval(vars),
            Expr::Div(a, b) => a.eval(vars) / b.eval(vars),
            Expr::Rem(a, b) => a.eval(vars) % b.eval(vars),
        }
    }

    /// Whether the expression mentions `var`.
    pub fn uses(&self, var: VarId) -> bool {
        match self {
            Expr::Const(_) => false,
            Expr::Var(v) => *v == var,
            Expr::Add(a, b) | Expr::Mul(a, b) | Expr::Div(a, b) | Expr::Rem(a, b) => {
                a.uses(var) || b.uses(var)
            }
        }
    }

    /// Constant value if the expression is constant.
    pub fn as_const(&self) -> Option<i64> {
        match self {
            Expr::Const(v) => Some(*v),
            _ => None,
        }
    }

    /// Substitute `var` with `with`.
    pub fn subst(&self, var: VarId, with: &Expr) -> Expr {
        match self {
            Expr::Const(_) => self.clone(),
            Expr::Var(v) => {
                if *v == var {
                    with.clone()
                } else {
                    self.clone()
                }
            }
            Expr::Add(a, b) => a.subst(var, with).add(b.subst(var, with)),
            Expr::Mul(a, b) => a.subst(var, with).mul(b.subst(var, with)),
            Expr::Div(a, b) => {
                Expr::Div(Box::new(a.subst(var, with)), Box::new(b.subst(var, with)))
            }
            Expr::Rem(a, b) => {
                Expr::Rem(Box::new(a.subst(var, with)), Box::new(b.subst(var, with)))
            }
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Const(v) => write!(f, "{v}"),
            Expr::Var(v) => write!(f, "{v}"),
            Expr::Add(a, b) => write!(f, "({a} + {b})"),
            Expr::Mul(a, b) => write!(f, "({a} * {b})"),
            Expr::Div(a, b) => write!(f, "({a} / {b})"),
            Expr::Rem(a, b) => write!(f, "({a} % {b})"),
        }
    }
}

impl From<i64> for Expr {
    fn from(v: i64) -> Expr {
        Expr::Const(v)
    }
}

impl From<usize> for Expr {
    fn from(v: usize) -> Expr {
        Expr::Const(v as i64)
    }
}

impl From<VarId> for Expr {
    fn from(v: VarId) -> Expr {
        Expr::Var(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn folding_constructors() {
        assert_eq!(Expr::c(2).add(Expr::c(3)), Expr::c(5));
        assert_eq!(Expr::c(2).mul(Expr::c(3)), Expr::c(6));
        assert_eq!(Expr::v(VarId(0)).mul(Expr::c(0)), Expr::c(0));
        assert_eq!(Expr::v(VarId(0)).add(Expr::c(0)), Expr::v(VarId(0)));
        assert_eq!(Expr::v(VarId(0)).mul(Expr::c(1)), Expr::v(VarId(0)));
    }

    #[test]
    fn eval_with_vars() {
        // v0 * 8 + v1
        let e = Expr::v(VarId(0)).mul(Expr::c(8)).add(Expr::v(VarId(1)));
        assert_eq!(e.eval(&[3, 2]), 26);
    }

    #[test]
    fn uses_detects_vars() {
        let e = Expr::v(VarId(0)).mul(Expr::c(8)).add(Expr::v(VarId(1)));
        assert!(e.uses(VarId(0)));
        assert!(e.uses(VarId(1)));
        assert!(!e.uses(VarId(2)));
    }

    #[test]
    fn subst_replaces_and_folds() {
        let e = Expr::v(VarId(0)).mul(Expr::c(8)).add(Expr::c(4));
        let s = e.subst(VarId(0), &Expr::c(2));
        assert_eq!(s, Expr::c(20));
    }

    #[test]
    fn display_round_trip_shape() {
        let e = Expr::v(VarId(0)).mul(Expr::c(8)).add(Expr::v(VarId(1)));
        assert_eq!(e.to_string(), "((v0 * 8) + v1)");
    }

    #[test]
    fn div_rem_eval() {
        let e = Expr::Div(Box::new(Expr::c(7)), Box::new(Expr::c(2)));
        assert_eq!(e.eval(&[]), 3);
        let e = Expr::Rem(Box::new(Expr::c(7)), Box::new(Expr::c(2)));
        assert_eq!(e.eval(&[]), 1);
    }
}
