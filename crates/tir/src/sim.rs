//! Multi-core performance projection.
//!
//! The paper evaluates on a 32-core Xeon 8358; this container has one
//! core. The projector replays a compiled module's memory trace through
//! `gc-machine`'s cache simulator and charges compute cycles per
//! intrinsic from the analytical model, projecting what the code would
//! cost on the target machine:
//!
//! - a parallel loop simulates one representative iteration and scales
//!   by `ceil(extent / cores)` (template decompositions give every core
//!   a statistically identical slice), plus one barrier;
//! - per intrinsic, memory and compute overlap: the charge is
//!   `max(compute, memory)` — the roofline behaviour real kernels show;
//! - every entry call costs one dispatch overhead (the framework API
//!   cost the compiled partition amortizes over the whole subgraph).

use crate::expr::{Expr, VarId};
use crate::ir::{BufId, Func, Intrinsic, Module, Stmt};
use crate::visit::{intrinsic_accesses, Access};
use gc_machine::{cost, CacheHierarchy, MachineDescriptor};
use std::collections::HashMap;

/// Result of projecting one module execution.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Projection {
    /// Total projected cycles for one execution (main stage).
    pub cycles: f64,
    /// Compute-bound portion.
    pub compute_cycles: f64,
    /// Memory-bound portion.
    pub memory_cycles: f64,
    /// Synchronization (barriers) portion.
    pub sync_cycles: f64,
    /// Dispatch-overhead portion.
    pub dispatch_cycles: f64,
    /// Cycles per function, in call order.
    pub per_call: Vec<f64>,
}

impl Projection {
    /// Projected milliseconds on `machine`.
    pub fn millis(&self, machine: &MachineDescriptor) -> f64 {
        machine.cycles_to_ms(self.cycles)
    }
}

struct SimCtx<'a> {
    machine: &'a MachineDescriptor,
    cache: CacheHierarchy,
    /// base synthetic address per (call-scope buffer)
    param_base: Vec<u64>,
    local_base: Vec<u64>,
    elem_size: HashMap<(usize, bool), usize>,
    compute: f64,
    memory: f64,
}

const GLOBAL_REGION: u64 = 1 << 32;
const LOCAL_REGION: u64 = 1 << 44;

/// Project the cost of one full execution of the module's main calls.
///
/// `dispatch_count` is the number of user-visible API calls this module
/// corresponds to (1 for a compiled partition; the baseline executor
/// passes one per primitive).
pub fn project(module: &Module, machine: &MachineDescriptor, dispatch_count: usize) -> Projection {
    let mut proj = Projection::default();
    // assign synthetic base addresses to globals
    let mut global_base = Vec::with_capacity(module.globals.len());
    let mut cursor = GLOBAL_REGION;
    for g in &module.globals {
        global_base.push(cursor);
        cursor += align64((g.elems * g.dtype.size_bytes()) as u64) + 64;
    }
    // Locals live in a shared (arena-like) region reused across calls.
    let mut cache = CacheHierarchy::for_core(machine);
    for call in &module.main_calls {
        let func = &module.funcs[call.func];
        let mut local_base = Vec::with_capacity(func.locals.len());
        let mut lcur = LOCAL_REGION;
        for l in &func.locals {
            local_base.push(lcur);
            lcur += align64((l.elems * l.dtype.size_bytes()) as u64) + 64;
        }
        let mut elem_size = HashMap::new();
        for (i, p) in func.params.iter().enumerate() {
            elem_size.insert((i, true), p.dtype.size_bytes());
        }
        for (i, l) in func.locals.iter().enumerate() {
            elem_size.insert((i, false), l.dtype.size_bytes());
        }
        let mut ctx = SimCtx {
            machine,
            cache,
            param_base: call.args.iter().map(|&a| global_base[a]).collect(),
            local_base,
            elem_size,
            compute: 0.0,
            memory: 0.0,
        };
        let mut vars = vec![0i64; func.var_count];
        let mut sync = 0.0;
        let cycles = sim_stmts(&func.body, func, &mut ctx, &mut vars, &mut sync);
        proj.per_call.push(cycles + sync);
        proj.cycles += cycles + sync;
        proj.compute_cycles += ctx.compute;
        proj.memory_cycles += ctx.memory;
        proj.sync_cycles += sync;
        cache = ctx.cache;
    }
    let disp = cost::dispatch_cycles(machine) * dispatch_count as f64;
    proj.dispatch_cycles = disp;
    proj.cycles += disp;
    proj
}

fn align64(x: u64) -> u64 {
    (x + 63) & !63
}

fn sim_stmts(
    stmts: &[Stmt],
    func: &Func,
    ctx: &mut SimCtx<'_>,
    vars: &mut Vec<i64>,
    sync: &mut f64,
) -> f64 {
    let mut cycles = 0.0;
    for s in stmts {
        cycles += sim_stmt(s, func, ctx, vars, sync);
    }
    cycles
}

fn sim_stmt(
    stmt: &Stmt,
    func: &Func,
    ctx: &mut SimCtx<'_>,
    vars: &mut Vec<i64>,
    sync: &mut f64,
) -> f64 {
    match stmt {
        Stmt::For {
            var,
            extent,
            parallel,
            body,
        } => {
            if var.0 >= vars.len() {
                vars.resize(var.0 + 1, 0);
            }
            if *parallel {
                // one representative iteration, scaled by waves
                set(vars, *var, 0);
                let one = sim_stmts(body, func, ctx, vars, sync);
                let waves = extent.div_ceil(ctx.machine.cores);
                *sync += cost::barrier_cycles(ctx.machine);
                if waves > 1 {
                    // the representative core worked through other
                    // tasks' data after iteration 0; whatever locality
                    // iteration 0 built is gone
                    ctx.cache.evict_contents();
                } else {
                    // single wave: the core ran exactly one task, but
                    // after the barrier the runtime reassigns tasks to
                    // whichever core frees up first, so private-cache
                    // (L1/L2) locality does not survive into the next
                    // parallel region. The shared LLC does — this is
                    // the cross-layer reuse term that separates a
                    // merged schedule (producer tile consumed inside
                    // the same region, register/L1 hot) from a split
                    // one (re-read through the LLC after the barrier).
                    ctx.cache.evict_private_contents();
                }
                one * waves as f64
            } else {
                let mut total = 0.0;
                for i in 0..*extent {
                    set(vars, *var, i as i64);
                    total += sim_stmts(body, func, ctx, vars, sync);
                }
                total
            }
        }
        Stmt::Op(i) => sim_intrinsic(i, ctx, vars),
    }
}

fn set(vars: &mut [i64], var: VarId, v: i64) {
    vars[var.0] = v;
}

/// Accesses for the simulator. The clamped intrinsics get precise,
/// runtime-evaluated windows here: the validator-facing
/// [`intrinsic_accesses`] must report the whole logical region
/// (clamp bases are excluded from its offsets), which would wildly
/// overstate cache traffic during replay — the sim has concrete loop
/// indices, so it can evaluate the clamps exactly.
fn sim_accesses(i: &Intrinsic, vars: &[i64]) -> Vec<Access> {
    let full = |v: &crate::ir::View, write: bool| Access {
        buf: v.buf,
        offset: v.offset.clone(),
        len: v.len,
        write,
    };
    match i {
        Intrinsic::Pack2DPad {
            src,
            src_offset,
            src_row_stride,
            src_col_stride,
            dst,
            rows,
            cols,
            row_clamp,
            col_clamp,
        } => {
            let rb = row_clamp.base.eval(vars).max(0) as usize;
            let cb = col_clamp.base.eval(vars).max(0) as usize;
            let (ar, ac) = (row_clamp.avail(rb, *rows), col_clamp.avail(cb, *cols));
            let mut v = vec![full(dst, true)];
            if ar > 0 && ac > 0 {
                v.push(Access {
                    buf: *src,
                    offset: src_offset
                        .clone()
                        .add(Expr::from(rb * src_row_stride + cb * src_col_stride)),
                    len: (ar - 1) * src_row_stride + (ac - 1) * src_col_stride + 1,
                    write: false,
                });
            }
            v
        }
        Intrinsic::Unpack2DClamp {
            src,
            dst,
            dst_offset,
            dst_row_stride,
            dst_col_stride,
            rows,
            cols,
            row_clamp,
            col_clamp,
        } => {
            let rb = row_clamp.base.eval(vars).max(0) as usize;
            let cb = col_clamp.base.eval(vars).max(0) as usize;
            let (ar, ac) = (row_clamp.avail(rb, *rows), col_clamp.avail(cb, *cols));
            if ar == 0 || ac == 0 {
                return vec![];
            }
            vec![
                Access {
                    buf: src.buf,
                    offset: src.offset.clone(),
                    len: (ar - 1) * cols + ac,
                    write: false,
                },
                Access {
                    buf: *dst,
                    offset: dst_offset
                        .clone()
                        .add(Expr::from(rb * dst_row_stride + cb * dst_col_stride)),
                    len: (ar - 1) * dst_row_stride + (ac - 1) * dst_col_stride + 1,
                    write: true,
                },
            ]
        }
        Intrinsic::BrgemmF32Tail {
            a,
            a_stride,
            b,
            b_stride,
            c,
            m,
            n,
            k,
            batch,
            m_clamp,
        }
        | Intrinsic::BrgemmU8I8Tail {
            a,
            a_stride,
            b,
            b_stride,
            c,
            m,
            n,
            k,
            batch,
            m_clamp,
        } => {
            let mb = m_clamp.base.eval(vars).max(0) as usize;
            let m_eff = m_clamp.avail(mb, *m);
            if m_eff == 0 {
                return vec![];
            }
            let mut v = Vec::with_capacity(2 * batch + 1);
            for i in 0..*batch {
                v.push(Access {
                    buf: a.buf,
                    offset: a.offset.clone().add(Expr::from(i * a_stride)),
                    len: m_eff * k,
                    write: false,
                });
                v.push(Access {
                    buf: b.buf,
                    offset: b.offset.clone().add(Expr::from(i * b_stride)),
                    len: n * k,
                    write: false,
                });
            }
            v.push(Access {
                buf: c.buf,
                offset: c.offset.clone(),
                len: m_eff * n,
                write: true,
            });
            v
        }
        _ => intrinsic_accesses(i),
    }
}

fn sim_intrinsic(i: &Intrinsic, ctx: &mut SimCtx<'_>, vars: &[i64]) -> f64 {
    // memory: replay every access through the cache hierarchy
    let mut mem = 0u64;
    for a in sim_accesses(i, vars) {
        let (base, es) = match a.buf {
            BufId::Param(p) => (ctx.param_base[p], ctx.elem_size[&(p, true)]),
            BufId::Local(l) => (ctx.local_base[l], ctx.elem_size[&(l, false)]),
        };
        let off = a.offset.eval(vars).max(0) as u64;
        mem += ctx
            .cache
            .access(base + off * es as u64, (a.len * es) as u64);
    }
    // compute
    let comp = match i {
        Intrinsic::BrgemmF32 { m, n, k, batch, .. } => {
            let eff = cost::microkernel_efficiency(ctx.machine, *m, *n, *k, *batch, 4);
            cost::compute_cycles(ctx.machine, 2.0 * (m * n * k * batch) as f64, 4, eff)
        }
        Intrinsic::BrgemmU8I8 { m, n, k, batch, .. } => {
            let eff = cost::microkernel_efficiency(ctx.machine, *m, *n, *k, *batch, 1);
            cost::compute_cycles(ctx.machine, 2.0 * (m * n * k * batch) as f64, 1, eff)
        }
        Intrinsic::BrgemmF32Tail {
            m,
            n,
            k,
            batch,
            m_clamp,
            ..
        } => {
            let mb = m_clamp.base.eval(vars).max(0) as usize;
            let m_eff = m_clamp.avail(mb, *m);
            let eff = cost::microkernel_efficiency(ctx.machine, m_eff.max(1), *n, *k, *batch, 4);
            cost::compute_cycles(ctx.machine, 2.0 * (m_eff * n * k * batch) as f64, 4, eff)
        }
        Intrinsic::BrgemmU8I8Tail {
            m,
            n,
            k,
            batch,
            m_clamp,
            ..
        } => {
            let mb = m_clamp.base.eval(vars).max(0) as usize;
            let m_eff = m_clamp.avail(mb, *m);
            let eff = cost::microkernel_efficiency(ctx.machine, m_eff.max(1), *n, *k, *batch, 1);
            cost::compute_cycles(ctx.machine, 2.0 * (m_eff * n * k * batch) as f64, 1, eff)
        }
        // vectorized elementwise: ~1 op per element
        Intrinsic::Unary { dst, .. }
        | Intrinsic::BinaryScalar { dst, .. }
        | Intrinsic::Binary { dst, .. }
        | Intrinsic::QuantU8 { dst, .. }
        | Intrinsic::DequantU8 { dst, .. }
        | Intrinsic::DequantI8 { dst, .. }
        | Intrinsic::CastI32F32 { dst, .. }
        | Intrinsic::AddF32 { dst, .. }
        | Intrinsic::AddI32 { dst, .. }
        | Intrinsic::FillF32 { dst, .. }
        | Intrinsic::ZeroI32 { dst } => dst.len as f64 / ctx.machine.f32_lanes() as f64,
        Intrinsic::BinaryRowBcast { rows, cols, .. }
        | Intrinsic::BinaryColBcast { rows, cols, .. }
        | Intrinsic::ReduceRows { rows, cols, .. } => {
            (rows * cols) as f64 / ctx.machine.f32_lanes() as f64
        }
        Intrinsic::DequantAcc { rows, cols, .. } => {
            2.0 * (rows * cols) as f64 / ctx.machine.f32_lanes() as f64
        }
        Intrinsic::Pack2D {
            rows,
            cols,
            src_col_stride,
            ..
        }
        | Intrinsic::Pack2DPad {
            rows,
            cols,
            src_col_stride,
            ..
        } => {
            // strided gathers don't vectorize as well; the padded
            // variant still touches every dst element (zero fill)
            let per = if *src_col_stride == 1 { 1.0 } else { 4.0 };
            per * (rows * cols) as f64 / ctx.machine.f32_lanes() as f64
        }
        Intrinsic::Unpack2D {
            rows,
            cols,
            dst_col_stride,
            ..
        }
        | Intrinsic::Unpack2DClamp {
            rows,
            cols,
            dst_col_stride,
            ..
        } => {
            let per = if *dst_col_stride == 1 { 1.0 } else { 4.0 };
            per * (rows * cols) as f64 / ctx.machine.f32_lanes() as f64
        }
        Intrinsic::CompAccumulate { nb, kb, .. } => (nb * kb) as f64 / 16.0,
    };
    ctx.compute += comp;
    ctx.memory += mem as f64;
    comp.max(mem as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::ir::{BufDecl, Call, GlobalDecl, GlobalKind, View};
    use gc_microkernel::UnaryOp;
    use gc_tensor::DataType;

    fn relu_module(elems: usize, parallel: bool, chunks: usize) -> Module {
        let mut f = Func {
            name: "relu".into(),
            params: vec![
                BufDecl::new(DataType::F32, elems, "in"),
                BufDecl::new(DataType::F32, elems, "out"),
            ],
            locals: vec![],
            var_count: 0,
            body: vec![],
        };
        let v = f.fresh_var();
        let per = elems / chunks;
        f.body.push(Stmt::For {
            var: v,
            extent: chunks,
            parallel,
            body: vec![Stmt::Op(Intrinsic::Unary {
                op: UnaryOp::Relu,
                src: View::new(BufId::Param(0), Expr::v(v).mul(Expr::from(per)), per),
                dst: View::new(BufId::Param(1), Expr::v(v).mul(Expr::from(per)), per),
            })],
        });
        let mut m = Module::new();
        let fi = m.add_func(f);
        m.add_global(GlobalDecl {
            dtype: DataType::F32,
            elems,
            kind: GlobalKind::Input(0),
            name: "in".into(),
        });
        m.add_global(GlobalDecl {
            dtype: DataType::F32,
            elems,
            kind: GlobalKind::Output(0),
            name: "out".into(),
        });
        m.main_calls.push(Call {
            func: fi,
            args: vec![0, 1],
        });
        m
    }

    #[test]
    fn parallel_projection_is_faster() {
        let machine = MachineDescriptor::xeon_8358();
        let serial = project(&relu_module(1 << 20, false, 64), &machine, 1);
        let parallel = project(&relu_module(1 << 20, true, 64), &machine, 1);
        assert!(
            parallel.cycles < serial.cycles / 4.0,
            "parallel {} vs serial {}",
            parallel.cycles,
            serial.cycles
        );
    }

    #[test]
    fn dispatch_overhead_scales_with_count() {
        let machine = MachineDescriptor::xeon_8358();
        let m = relu_module(1 << 12, false, 4);
        let one = project(&m, &machine, 1);
        let five = project(&m, &machine, 5);
        let d = cost::dispatch_cycles(&machine);
        assert!((five.cycles - one.cycles - 4.0 * d).abs() < 1e-6);
    }

    #[test]
    fn bigger_work_costs_more() {
        let machine = MachineDescriptor::xeon_8358();
        let small = project(&relu_module(1 << 12, false, 4), &machine, 1);
        let big = project(&relu_module(1 << 18, false, 4), &machine, 1);
        assert!(big.cycles > small.cycles);
    }

    #[test]
    fn barrier_counted_per_parallel_loop() {
        let machine = MachineDescriptor::xeon_8358();
        let p = project(&relu_module(1 << 12, true, 4), &machine, 1);
        assert!((p.sync_cycles - cost::barrier_cycles(&machine)).abs() < 1e-9);
    }

    #[test]
    fn brgemm_compute_dominates_for_large_tiles() {
        let machine = MachineDescriptor::xeon_8358();
        let mut f = Func {
            name: "mm".into(),
            params: vec![
                BufDecl::new(DataType::F32, 64 * 64, "a"),
                BufDecl::new(DataType::F32, 64 * 64, "b"),
                BufDecl::new(DataType::F32, 64 * 64, "c"),
            ],
            locals: vec![],
            var_count: 0,
            body: vec![Stmt::Op(Intrinsic::BrgemmF32 {
                a: View::new(BufId::Param(0), 0usize, 64 * 64),
                a_stride: 0,
                b: View::new(BufId::Param(1), 0usize, 64 * 64),
                b_stride: 0,
                c: View::new(BufId::Param(2), 0usize, 64 * 64),
                m: 64,
                n: 64,
                k: 64,
                batch: 1,
            })],
        };
        f.var_count = 0;
        let mut m = Module::new();
        let fi = m.add_func(f);
        for n in ["a", "b", "c"] {
            m.add_global(GlobalDecl {
                dtype: DataType::F32,
                elems: 64 * 64,
                kind: GlobalKind::Scratch,
                name: n.into(),
            });
        }
        m.main_calls.push(Call {
            func: fi,
            args: vec![0, 1, 2],
        });
        let p = project(&m, &machine, 0);
        assert!(p.compute_cycles > 0.0);
        assert!(p.cycles >= p.compute_cycles.max(p.memory_cycles));
    }
}
