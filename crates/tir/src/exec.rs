//! Tensor IR execution.
//!
//! The original system lowers Tensor IR to LLVM IR and JITs native code.
//! This reproduction executes the same IR directly: loop nests are
//! interpreted (they are shallow — a handful of levels with static trip
//! counts), and all bulk data work happens inside pre-compiled native
//! intrinsics from `gc-microkernel`, exactly at the boundary where the
//! original calls its JITed microkernels.
//!
//! # Safety model
//!
//! Parallel loop iterations write to disjoint buffer regions — this is a
//! *lowering invariant*, the same one the original compiler's codegen
//! guarantees. The executor materializes each buffer's raw pointer once
//! per function call and builds disjoint slices from it; debug builds
//! assert in-bounds access and dtype agreement.

use crate::expr::VarId;
use crate::ir::{BufId, Call, Func, Intrinsic, Module, ReduceOp, Stmt, View};
use gc_microkernel::{brgemm, eltwise, epilogue, reduce, tail, UnaryOp};
use gc_runtime::ThreadPool;
use gc_tensor::{DataType, Storage};

/// Error produced while preparing execution (dtype/shape mismatches are
/// panics, as they indicate compiler bugs, not user errors).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecError(pub String);

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "execution error: {}", self.0)
    }
}

impl std::error::Error for ExecError {}

#[derive(Clone, Copy)]
pub(crate) struct RawBuf {
    pub(crate) ptr: *mut u8,
    elems: usize,
    dtype: DataType,
    /// Hard-assert every slice access (checked execution); otherwise
    /// bounds are debug-only.
    checked: bool,
}

impl std::fmt::Debug for RawBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "RawBuf({:?} x{} {})", self.ptr, self.elems, self.dtype)
    }
}

unsafe impl Send for RawBuf {}
unsafe impl Sync for RawBuf {}

impl RawBuf {
    pub(crate) fn of(storage: &mut Storage, checked: bool) -> RawBuf {
        let dtype = storage.dtype();
        let elems = storage.len();
        let ptr = match storage {
            Storage::F32(v) => v.as_mut_ptr() as *mut u8,
            Storage::Bf16(v) => v.as_mut_ptr() as *mut u8,
            Storage::U8(v) => v.as_mut_ptr(),
            Storage::I8(v) => v.as_mut_ptr() as *mut u8,
            Storage::I32(v) => v.as_mut_ptr() as *mut u8,
            Storage::I64(v) => v.as_mut_ptr() as *mut u8,
        };
        RawBuf {
            ptr,
            elems,
            dtype,
            checked,
        }
    }

    /// Buffer capacity in elements (checked execution compares evaluated
    /// offsets against this).
    #[inline]
    pub(crate) fn elems(&self) -> usize {
        self.elems
    }

    /// Element type of the underlying storage.
    #[inline]
    #[allow(dead_code)]
    pub(crate) fn dtype(&self) -> DataType {
        self.dtype
    }

    #[inline]
    fn check(&self, off: usize, len: usize, dtype: DataType) {
        if self.checked {
            assert_eq!(self.dtype, dtype, "intrinsic dtype mismatch");
            assert!(
                off + len <= self.elems,
                "view out of bounds: {}+{} > {}",
                off,
                len,
                self.elems
            );
        } else {
            debug_assert_eq!(self.dtype, dtype, "intrinsic dtype mismatch");
            debug_assert!(
                off + len <= self.elems,
                "view out of bounds: {}+{} > {}",
                off,
                len,
                self.elems
            );
        }
    }

    /// # Safety
    /// Range must be in bounds and disjoint from other live slices.
    #[inline]
    pub(crate) unsafe fn f32<'a>(self, off: usize, len: usize) -> &'a mut [f32] {
        self.check(off, len, DataType::F32);
        std::slice::from_raw_parts_mut((self.ptr as *mut f32).add(off), len)
    }

    /// # Safety
    /// Range must be in bounds and disjoint from other live slices.
    #[inline]
    pub(crate) unsafe fn u8<'a>(self, off: usize, len: usize) -> &'a mut [u8] {
        self.check(off, len, DataType::U8);
        std::slice::from_raw_parts_mut(self.ptr.add(off), len)
    }

    /// # Safety
    /// Range must be in bounds and disjoint from other live slices.
    #[inline]
    pub(crate) unsafe fn i8<'a>(self, off: usize, len: usize) -> &'a mut [i8] {
        self.check(off, len, DataType::I8);
        std::slice::from_raw_parts_mut((self.ptr as *mut i8).add(off), len)
    }

    /// # Safety
    /// Range must be in bounds and disjoint from other live slices.
    #[inline]
    pub(crate) unsafe fn i32<'a>(self, off: usize, len: usize) -> &'a mut [i32] {
        self.check(off, len, DataType::I32);
        std::slice::from_raw_parts_mut((self.ptr as *mut i32).add(off), len)
    }
}

struct Frame<'a> {
    bufs: Vec<RawBuf>,
    n_params: usize,
    pool: &'a ThreadPool,
    checked: bool,
}

impl Frame<'_> {
    #[inline]
    fn buf(&self, id: BufId) -> RawBuf {
        match id {
            BufId::Param(i) => self.bufs[i],
            BufId::Local(i) => self.bufs[self.n_params + i],
        }
    }

    #[inline]
    fn resolve(&self, v: &View, vars: &[i64]) -> (RawBuf, usize) {
        let off = v.offset.eval(vars);
        if self.checked {
            assert!(off >= 0, "negative view offset {off}");
        } else {
            debug_assert!(off >= 0, "negative view offset {off}");
        }
        (self.buf(v.buf), off as usize)
    }

    /// Evaluate a scalar index expression (axis-clamp base), asserting
    /// non-negativity.
    #[inline]
    fn index(&self, e: &crate::expr::Expr, vars: &[i64]) -> usize {
        let v = e.eval(vars);
        if self.checked {
            assert!(v >= 0, "negative clamp base {v}");
        } else {
            debug_assert!(v >= 0, "negative clamp base {v}");
        }
        v.max(0) as usize
    }
}

/// Execute a module's init and/or main call sequences against `globals`
/// (one [`Storage`] per module global, in declaration order).
///
/// # Errors
///
/// Returns an error if `globals` disagrees with the module's
/// declarations.
///
/// # Panics
///
/// Panics on out-of-bounds views or dtype mismatches (compiler-invariant
/// violations).
pub fn run_module(
    module: &Module,
    globals: &mut [Storage],
    pool: &ThreadPool,
    include_init: bool,
) -> Result<(), ExecError> {
    run_module_opts(
        module,
        globals,
        pool,
        include_init,
        crate::plan::ExecOptions::default(),
    )
}

/// [`run_module`] with explicit execution options (e.g. checked
/// bounds-asserted interpretation).
///
/// # Errors
///
/// Returns an error if `globals` disagrees with the module's
/// declarations.
///
/// # Panics
///
/// Panics on out-of-bounds views or dtype mismatches (compiler-invariant
/// violations); with `opts.checked` these are hard asserts in release
/// builds too.
pub fn run_module_opts(
    module: &Module,
    globals: &mut [Storage],
    pool: &ThreadPool,
    include_init: bool,
    opts: crate::plan::ExecOptions,
) -> Result<(), ExecError> {
    if globals.len() != module.globals.len() {
        return Err(ExecError(format!(
            "{} globals provided, module declares {}",
            globals.len(),
            module.globals.len()
        )));
    }
    for (g, decl) in globals.iter().zip(&module.globals) {
        if g.dtype() != decl.dtype || g.len() < decl.elems {
            return Err(ExecError(format!(
                "global {}: have {} x{}, need {} x{}",
                decl.name,
                g.dtype(),
                g.len(),
                decl.dtype,
                decl.elems
            )));
        }
    }
    if include_init {
        run_calls_opts(module, &module.init_calls, globals, pool, opts);
    }
    run_calls_opts(module, &module.main_calls, globals, pool, opts);
    Ok(())
}

/// Execute a list of calls (no validation; see [`run_module`]).
///
/// # Panics
///
/// Panics on compiler-invariant violations.
pub fn run_calls(module: &Module, calls: &[Call], globals: &mut [Storage], pool: &ThreadPool) {
    run_calls_opts(
        module,
        calls,
        globals,
        pool,
        crate::plan::ExecOptions::default(),
    );
}

/// [`run_calls`] with explicit execution options.
///
/// # Panics
///
/// Panics on compiler-invariant violations.
pub fn run_calls_opts(
    module: &Module,
    calls: &[Call],
    globals: &mut [Storage],
    pool: &ThreadPool,
    opts: crate::plan::ExecOptions,
) {
    for call in calls {
        let func = &module.funcs[call.func];
        run_func(func, call, globals, pool, opts);
    }
}

pub(crate) fn run_func(
    func: &Func,
    call: &Call,
    globals: &mut [Storage],
    pool: &ThreadPool,
    opts: crate::plan::ExecOptions,
) {
    // Materialize raw param pointers (sequentially, one &mut at a time).
    // A global may be bound to several parameters (e.g. a residual graph
    // passing the same tensor as activation and post-op operand); those
    // parameters share one RawBuf, so aliasing stays confined to the
    // intrinsic-level disjointness contract.
    let mut bufs: Vec<RawBuf> = Vec::with_capacity(func.params.len() + func.locals.len());
    {
        let mut seen: std::collections::HashMap<usize, RawBuf> = std::collections::HashMap::new();
        for &a in &call.args {
            let raw = match seen.get(&a) {
                Some(r) => *r,
                None => {
                    let r = RawBuf::of(&mut globals[a], opts.checked);
                    seen.insert(a, r);
                    r
                }
            };
            bufs.push(raw);
        }
    }
    // Allocate locals.
    let mut local_storage: Vec<Storage> = func
        .locals
        .iter()
        .map(|d| Storage::zeros(d.dtype, d.elems))
        .collect();
    for s in &mut local_storage {
        bufs.push(RawBuf::of(s, opts.checked));
    }
    let frame = Frame {
        bufs,
        n_params: func.params.len(),
        pool,
        checked: opts.checked,
    };
    let mut vars = vec![0i64; func.var_count];
    exec_stmts(&func.body, &frame, &mut vars);
    // local_storage dropped here; frame pointers die with it.
}

fn exec_stmts(stmts: &[Stmt], frame: &Frame<'_>, vars: &mut Vec<i64>) {
    for s in stmts {
        exec_stmt(s, frame, vars);
    }
}

fn exec_stmt(stmt: &Stmt, frame: &Frame<'_>, vars: &mut Vec<i64>) {
    match stmt {
        Stmt::For {
            var,
            extent,
            parallel,
            body,
        } => {
            if *parallel && frame.pool.threads() > 1 && *extent > 1 {
                let vars_proto = vars.clone();
                let var = *var;
                frame.pool.parallel_for(*extent, |i| {
                    let mut my_vars = vars_proto.clone();
                    set_var(&mut my_vars, var, i as i64);
                    exec_stmts(body, frame, &mut my_vars);
                });
            } else {
                for i in 0..*extent {
                    set_var(vars, *var, i as i64);
                    exec_stmts(body, frame, vars);
                }
            }
        }
        Stmt::Op(intr) => exec_intrinsic(intr, frame, vars),
    }
}

#[inline]
fn set_var(vars: &mut Vec<i64>, var: VarId, val: i64) {
    if var.0 >= vars.len() {
        vars.resize(var.0 + 1, 0);
    }
    vars[var.0] = val;
}

#[inline]
pub(crate) fn assert_disjoint(a: (RawBuf, usize, usize), b: (RawBuf, usize, usize)) {
    debug_assert!(
        a.0.ptr != b.0.ptr || a.1 + a.2 <= b.1 || b.1 + b.2 <= a.1,
        "overlapping views in intrinsic"
    );
}

#[allow(clippy::too_many_lines)]
fn exec_intrinsic(intr: &Intrinsic, frame: &Frame<'_>, vars: &[i64]) {
    match intr {
        Intrinsic::BrgemmF32 {
            a,
            a_stride,
            b,
            b_stride,
            c,
            m,
            n,
            k,
            batch,
        } => {
            let (ab, ao) = frame.resolve(a, vars);
            let (bb, bo) = frame.resolve(b, vars);
            let (cb, co) = frame.resolve(c, vars);
            let a_offs: Vec<usize> = (0..*batch).map(|i| ao + i * a_stride).collect();
            let b_offs: Vec<usize> = (0..*batch).map(|i| bo + i * b_stride).collect();
            let a_end = a_offs.last().map(|&o| o + m * k).unwrap_or(ao);
            let b_end = b_offs.last().map(|&o| o + n * k).unwrap_or(bo);
            unsafe {
                let asl = ab.f32(ao, a_end - ao);
                let bsl = bb.f32(bo, b_end - bo);
                let csl = cb.f32(co, m * n);
                let a_rel: Vec<usize> = a_offs.iter().map(|&o| o - ao).collect();
                let b_rel: Vec<usize> = b_offs.iter().map(|&o| o - bo).collect();
                brgemm::brgemm_f32(
                    brgemm::BrgemmShape::new(*m, *n, *k),
                    asl,
                    &a_rel,
                    bsl,
                    &b_rel,
                    csl,
                );
            }
        }
        Intrinsic::BrgemmU8I8 {
            a,
            a_stride,
            b,
            b_stride,
            c,
            m,
            n,
            k,
            batch,
        } => {
            let (ab, ao) = frame.resolve(a, vars);
            let (bb, bo) = frame.resolve(b, vars);
            let (cb, co) = frame.resolve(c, vars);
            let a_offs: Vec<usize> = (0..*batch).map(|i| i * a_stride).collect();
            let b_offs: Vec<usize> = (0..*batch).map(|i| i * b_stride).collect();
            let a_len = a_offs.last().unwrap_or(&0) + m * k;
            let b_len = b_offs.last().unwrap_or(&0) + n * k;
            unsafe {
                let asl = ab.u8(ao, a_len);
                let bsl = bb.i8(bo, b_len);
                let csl = cb.i32(co, m * n);
                brgemm::brgemm_u8i8(
                    brgemm::BrgemmShape::new(*m, *n, *k),
                    asl,
                    &a_offs,
                    bsl,
                    &b_offs,
                    csl,
                );
            }
        }
        Intrinsic::FillF32 { dst, value } => {
            let (db, off) = frame.resolve(dst, vars);
            unsafe { db.f32(off, dst.len) }.fill(*value);
        }
        Intrinsic::ZeroI32 { dst } => {
            let (db, off) = frame.resolve(dst, vars);
            unsafe { db.i32(off, dst.len) }.fill(0);
        }
        Intrinsic::Pack2D {
            src,
            src_offset,
            src_row_stride,
            src_col_stride,
            dst,
            rows,
            cols,
        } => {
            let sb = frame.buf(*src);
            let so = src_offset.eval(vars) as usize;
            let (db, doff) = frame.resolve(dst, vars);
            pack2d(
                sb,
                so,
                *src_row_stride,
                *src_col_stride,
                db,
                doff,
                *rows,
                *cols,
            );
        }
        Intrinsic::Unpack2D {
            src,
            dst,
            dst_offset,
            dst_row_stride,
            dst_col_stride,
            rows,
            cols,
        } => {
            let (sb, so) = frame.resolve(src, vars);
            let db = frame.buf(*dst);
            let doff = dst_offset.eval(vars) as usize;
            unpack2d(
                sb,
                so,
                db,
                doff,
                *dst_row_stride,
                *dst_col_stride,
                *rows,
                *cols,
            );
        }
        Intrinsic::Pack2DPad {
            src,
            src_offset,
            src_row_stride,
            src_col_stride,
            dst,
            rows,
            cols,
            row_clamp,
            col_clamp,
        } => {
            let sb = frame.buf(*src);
            let so = frame.index(src_offset, vars);
            let (db, doff) = frame.resolve(dst, vars);
            let rb = frame.index(&row_clamp.base, vars);
            let cb = frame.index(&col_clamp.base, vars);
            let avail_r = row_clamp.avail(rb, *rows);
            let avail_c = col_clamp.avail(cb, *cols);
            pack2d_pad(
                sb,
                so + rb * src_row_stride + cb * src_col_stride,
                *src_row_stride,
                *src_col_stride,
                db,
                doff,
                *rows,
                *cols,
                avail_r,
                avail_c,
            );
        }
        Intrinsic::Unpack2DClamp {
            src,
            dst,
            dst_offset,
            dst_row_stride,
            dst_col_stride,
            rows,
            cols,
            row_clamp,
            col_clamp,
        } => {
            let (sb, so) = frame.resolve(src, vars);
            let db = frame.buf(*dst);
            let doff = frame.index(dst_offset, vars);
            let rb = frame.index(&row_clamp.base, vars);
            let cb = frame.index(&col_clamp.base, vars);
            let avail_r = row_clamp.avail(rb, *rows);
            let avail_c = col_clamp.avail(cb, *cols);
            unpack2d_clamp(
                sb,
                so,
                db,
                doff + rb * dst_row_stride + cb * dst_col_stride,
                *dst_row_stride,
                *dst_col_stride,
                *cols,
                avail_r,
                avail_c,
            );
        }
        Intrinsic::BrgemmF32Tail {
            a,
            a_stride,
            b,
            b_stride,
            c,
            m,
            n,
            k,
            batch,
            m_clamp,
        } => {
            let mb = frame.index(&m_clamp.base, vars);
            let m_eff = m_clamp.avail(mb, *m);
            if m_eff == 0 {
                return;
            }
            let (ab, ao) = frame.resolve(a, vars);
            let (bb, bo) = frame.resolve(b, vars);
            let (cb, co) = frame.resolve(c, vars);
            let a_offs: Vec<usize> = (0..*batch).map(|i| i * a_stride).collect();
            let b_offs: Vec<usize> = (0..*batch).map(|i| i * b_stride).collect();
            let a_len = a_offs.last().unwrap_or(&0) + m * k;
            let b_len = b_offs.last().unwrap_or(&0) + n * k;
            unsafe {
                let asl = ab.f32(ao, a_len);
                let bsl = bb.f32(bo, b_len);
                let csl = cb.f32(co, m_eff * n);
                tail::brgemm_f32_m_tail(
                    brgemm::BrgemmShape::new(*m, *n, *k),
                    m_eff,
                    asl,
                    &a_offs,
                    bsl,
                    &b_offs,
                    csl,
                );
            }
        }
        Intrinsic::BrgemmU8I8Tail {
            a,
            a_stride,
            b,
            b_stride,
            c,
            m,
            n,
            k,
            batch,
            m_clamp,
        } => {
            let mb = frame.index(&m_clamp.base, vars);
            let m_eff = m_clamp.avail(mb, *m);
            if m_eff == 0 {
                return;
            }
            let (ab, ao) = frame.resolve(a, vars);
            let (bb, bo) = frame.resolve(b, vars);
            let (cb, co) = frame.resolve(c, vars);
            let a_offs: Vec<usize> = (0..*batch).map(|i| i * a_stride).collect();
            let b_offs: Vec<usize> = (0..*batch).map(|i| i * b_stride).collect();
            let a_len = a_offs.last().unwrap_or(&0) + m * k;
            let b_len = b_offs.last().unwrap_or(&0) + n * k;
            unsafe {
                let asl = ab.u8(ao, a_len);
                let bsl = bb.i8(bo, b_len);
                let csl = cb.i32(co, m_eff * n);
                tail::brgemm_u8i8_m_tail(
                    brgemm::BrgemmShape::new(*m, *n, *k),
                    m_eff,
                    asl,
                    &a_offs,
                    bsl,
                    &b_offs,
                    csl,
                );
            }
        }
        Intrinsic::Unary { op, src, dst } => {
            let (sb, so) = frame.resolve(src, vars);
            let (db, doff) = frame.resolve(dst, vars);
            if sb.ptr == db.ptr && so == doff {
                debug_assert_eq!(src.len, dst.len);
                let buf = unsafe { db.f32(doff, dst.len) };
                eltwise::unary_inplace(*op, buf);
            } else {
                assert_disjoint((sb, so, src.len), (db, doff, dst.len));
                unsafe {
                    eltwise::unary(*op, sb.f32(so, src.len), db.f32(doff, dst.len));
                }
            }
        }
        Intrinsic::Binary { op, a, b, dst } => {
            let (ab, ao) = frame.resolve(a, vars);
            let (bb, bo) = frame.resolve(b, vars);
            let (db, doff) = frame.resolve(dst, vars);
            // In-place over `a` is permitted (dst == a); `b` must be
            // disjoint from dst.
            assert_disjoint((bb, bo, b.len), (db, doff, dst.len));
            if ab.ptr == db.ptr && ao == doff {
                unsafe {
                    let dsl = db.f32(doff, dst.len);
                    let bsl = bb.f32(bo, b.len);
                    for (d, &y) in dsl.iter_mut().zip(bsl.iter()) {
                        *d = op.apply(*d, y);
                    }
                }
            } else {
                assert_disjoint((ab, ao, a.len), (db, doff, dst.len));
                unsafe {
                    eltwise::binary(
                        *op,
                        ab.f32(ao, a.len),
                        bb.f32(bo, b.len),
                        db.f32(doff, dst.len),
                    );
                }
            }
        }
        Intrinsic::BinaryScalar { op, a, scalar, dst } => {
            let (ab, ao) = frame.resolve(a, vars);
            let (db, doff) = frame.resolve(dst, vars);
            if ab.ptr == db.ptr && ao == doff {
                let dsl = unsafe { db.f32(doff, dst.len) };
                for d in dsl.iter_mut() {
                    *d = op.apply(*d, *scalar);
                }
            } else {
                assert_disjoint((ab, ao, a.len), (db, doff, dst.len));
                unsafe {
                    eltwise::binary_scalar(*op, ab.f32(ao, a.len), *scalar, db.f32(doff, dst.len));
                }
            }
        }
        Intrinsic::BinaryRowBcast {
            op,
            a,
            b,
            dst,
            rows,
            cols,
        } => {
            let (ab, ao) = frame.resolve(a, vars);
            let (bb, bo) = frame.resolve(b, vars);
            let (db, doff) = frame.resolve(dst, vars);
            unsafe {
                let bsl = bb.f32(bo, *cols);
                for r in 0..*rows {
                    let arow = ab.f32(ao + r * cols, *cols);
                    let drow = db.f32(doff + r * cols, *cols);
                    for ((d, &x), &y) in drow.iter_mut().zip(arow.iter()).zip(bsl.iter()) {
                        *d = op.apply(x, y);
                    }
                }
            }
        }
        Intrinsic::BinaryColBcast {
            op,
            a,
            b,
            dst,
            rows,
            cols,
        } => {
            let (ab, ao) = frame.resolve(a, vars);
            let (bb, bo) = frame.resolve(b, vars);
            let (db, doff) = frame.resolve(dst, vars);
            unsafe {
                let bsl = bb.f32(bo, *rows);
                for (r, &y) in bsl.iter().enumerate() {
                    let arow = ab.f32(ao + r * cols, *cols);
                    let drow = db.f32(doff + r * cols, *cols);
                    match op {
                        gc_microkernel::BinaryOp::Div => {
                            let inv = 1.0 / y;
                            for (d, &x) in drow.iter_mut().zip(arow.iter()) {
                                *d = x * inv;
                            }
                        }
                        _ => {
                            for (d, &x) in drow.iter_mut().zip(arow.iter()) {
                                *d = op.apply(x, y);
                            }
                        }
                    }
                }
            }
        }
        Intrinsic::ReduceRows {
            op,
            src,
            acc,
            rows,
            cols,
            accumulate,
        } => {
            let (sb, so) = frame.resolve(src, vars);
            let (accb, acco) = frame.resolve(acc, vars);
            unsafe {
                let ssl = sb.f32(so, rows * cols);
                let asl = accb.f32(acco, *rows);
                match (op, accumulate) {
                    (ReduceOp::Max, false) => reduce::reduce_rows_max(ssl, *rows, *cols, asl),
                    (ReduceOp::Sum, false) => reduce::reduce_rows_sum(ssl, *rows, *cols, asl),
                    (ReduceOp::Max, true) => {
                        for (a, row) in asl.iter_mut().zip(ssl.chunks_exact(*cols)) {
                            let m = reduce::reduce_max(row);
                            if m > *a {
                                *a = m;
                            }
                        }
                    }
                    (ReduceOp::Sum, true) => {
                        for (a, row) in asl.iter_mut().zip(ssl.chunks_exact(*cols)) {
                            *a += reduce::reduce_sum(row);
                        }
                    }
                }
            }
        }
        Intrinsic::DequantAcc {
            acc,
            comp,
            a_zero,
            scale,
            bias,
            dst,
            rows,
            cols,
        } => {
            let (accb, acco) = frame.resolve(acc, vars);
            let (compb, compo) = frame.resolve(comp, vars);
            let (db, doff) = frame.resolve(dst, vars);
            unsafe {
                let asl = accb.i32(acco, rows * cols);
                let csl = compb.i32(compo, *cols);
                let dsl = db.f32(doff, rows * cols);
                match bias {
                    Some(bv) => {
                        let (bb, bo) = frame.resolve(bv, vars);
                        let bsl = bb.f32(bo, *cols);
                        epilogue::dequant_acc_bias(
                            asl, *rows, *cols, csl, *a_zero, *scale, bsl, dsl,
                        );
                    }
                    None => epilogue::dequant_acc(asl, *rows, *cols, csl, *a_zero, *scale, dsl),
                }
            }
        }
        Intrinsic::QuantU8 {
            src,
            dst,
            scale,
            zero_point,
        } => {
            let (sb, so) = frame.resolve(src, vars);
            let (db, doff) = frame.resolve(dst, vars);
            unsafe {
                epilogue::requant_u8(
                    sb.f32(so, src.len),
                    1.0 / *scale,
                    *zero_point,
                    db.u8(doff, dst.len),
                );
            }
        }
        Intrinsic::DequantU8 {
            src,
            dst,
            scale,
            zero_point,
        } => {
            let (sb, so) = frame.resolve(src, vars);
            let (db, doff) = frame.resolve(dst, vars);
            unsafe {
                let ssl = sb.u8(so, src.len);
                let dsl = db.f32(doff, dst.len);
                for (d, &q) in dsl.iter_mut().zip(ssl.iter()) {
                    *d = *scale * (q as i32 - zero_point) as f32;
                }
            }
        }
        Intrinsic::DequantI8 { src, dst, scale } => {
            let (sb, so) = frame.resolve(src, vars);
            let (db, doff) = frame.resolve(dst, vars);
            unsafe {
                let ssl = sb.i8(so, src.len);
                let dsl = db.f32(doff, dst.len);
                for (d, &q) in dsl.iter_mut().zip(ssl.iter()) {
                    *d = *scale * q as f32;
                }
            }
        }
        Intrinsic::CompAccumulate {
            b_tile,
            comp,
            nb,
            kb,
        } => {
            let (bb, bo) = frame.resolve(b_tile, vars);
            let (cb, co) = frame.resolve(comp, vars);
            unsafe {
                let bsl = bb.i8(bo, nb * kb);
                let csl = cb.i32(co, *nb);
                for (c, panel) in csl.iter_mut().zip(bsl.chunks_exact(*kb)) {
                    *c += panel.iter().map(|&x| x as i32).sum::<i32>();
                }
            }
        }
        Intrinsic::CastI32F32 { src, dst } => {
            let (sb, so) = frame.resolve(src, vars);
            let (db, doff) = frame.resolve(dst, vars);
            unsafe {
                epilogue::i32_to_f32(sb.i32(so, src.len), db.f32(doff, dst.len));
            }
        }
        Intrinsic::AddF32 { src, dst } => {
            let (sb, so) = frame.resolve(src, vars);
            let (db, doff) = frame.resolve(dst, vars);
            assert_disjoint((sb, so, src.len), (db, doff, dst.len));
            unsafe {
                eltwise::acc_add_f32(sb.f32(so, src.len), db.f32(doff, dst.len));
            }
        }
        Intrinsic::AddI32 { src, dst } => {
            let (sb, so) = frame.resolve(src, vars);
            let (db, doff) = frame.resolve(dst, vars);
            assert_disjoint((sb, so, src.len), (db, doff, dst.len));
            unsafe {
                eltwise::acc_add_i32(sb.i32(so, src.len), db.i32(doff, dst.len));
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
pub(crate) fn pack2d(
    sb: RawBuf,
    so: usize,
    rs: usize,
    cs: usize,
    db: RawBuf,
    doff: usize,
    rows: usize,
    cols: usize,
) {
    macro_rules! go {
        ($get:ident) => {{
            unsafe {
                let need = so + (rows - 1) * rs + (cols - 1) * cs + 1;
                let ssl = sb.$get(so, need - so);
                let dsl = db.$get(doff, rows * cols);
                if cs == 1 {
                    for r in 0..rows {
                        dsl[r * cols..(r + 1) * cols].copy_from_slice(&ssl[r * rs..r * rs + cols]);
                    }
                } else {
                    for r in 0..rows {
                        for c in 0..cols {
                            dsl[r * cols + c] = ssl[r * rs + c * cs];
                        }
                    }
                }
            }
        }};
    }
    match sb.dtype {
        DataType::F32 => go!(f32),
        DataType::U8 => go!(u8),
        DataType::I8 => go!(i8),
        DataType::I32 => go!(i32),
        other => panic!("pack2d unsupported dtype {other}"),
    }
}

#[allow(clippy::too_many_arguments)]
pub(crate) fn unpack2d(
    sb: RawBuf,
    so: usize,
    db: RawBuf,
    doff: usize,
    rs: usize,
    cs: usize,
    rows: usize,
    cols: usize,
) {
    macro_rules! go {
        ($get:ident) => {{
            unsafe {
                let ssl = sb.$get(so, rows * cols);
                let need = doff + (rows - 1) * rs + (cols - 1) * cs + 1;
                let dsl = db.$get(doff, need - doff);
                if cs == 1 {
                    for r in 0..rows {
                        dsl[r * rs..r * rs + cols].copy_from_slice(&ssl[r * cols..(r + 1) * cols]);
                    }
                } else {
                    for r in 0..rows {
                        for c in 0..cols {
                            dsl[r * rs + c * cs] = ssl[r * cols + c];
                        }
                    }
                }
            }
        }};
    }
    match sb.dtype {
        DataType::F32 => go!(f32),
        DataType::U8 => go!(u8),
        DataType::I8 => go!(i8),
        DataType::I32 => go!(i32),
        other => panic!("unpack2d unsupported dtype {other}"),
    }
}

/// Clamped pack: copy the `avail_r x avail_c` in-bounds block of a
/// strided source into the top-left of a contiguous `rows x cols` tile
/// and zero-fill the remainder. `so` is the fully evaluated source base
/// (clamp bases already applied).
#[allow(clippy::too_many_arguments)]
pub(crate) fn pack2d_pad(
    sb: RawBuf,
    so: usize,
    rs: usize,
    cs: usize,
    db: RawBuf,
    doff: usize,
    rows: usize,
    cols: usize,
    avail_r: usize,
    avail_c: usize,
) {
    debug_assert!(avail_r <= rows && avail_c <= cols);
    macro_rules! go {
        ($get:ident, $zero:expr) => {{
            unsafe {
                let dsl = db.$get(doff, rows * cols);
                if avail_r == 0 || avail_c == 0 {
                    dsl.fill($zero);
                    return;
                }
                let need = so + (avail_r - 1) * rs + (avail_c - 1) * cs + 1;
                let ssl = sb.$get(so, need - so);
                tail::pack_pad_2d(ssl, rs, cs, dsl, rows, cols, avail_r, avail_c, $zero);
            }
        }};
    }
    match sb.dtype {
        DataType::F32 => go!(f32, 0.0f32),
        DataType::U8 => go!(u8, 0u8),
        DataType::I8 => go!(i8, 0i8),
        DataType::I32 => go!(i32, 0i32),
        other => panic!("pack2d_pad unsupported dtype {other}"),
    }
}

/// Clamped unpack: scatter only the `avail_r x avail_c` in-bounds block
/// of a contiguous `rows x cols` tile (row pitch `cols`) into a strided
/// destination. `doff` is the fully evaluated destination base (clamp
/// bases already applied).
#[allow(clippy::too_many_arguments)]
pub(crate) fn unpack2d_clamp(
    sb: RawBuf,
    so: usize,
    db: RawBuf,
    doff: usize,
    rs: usize,
    cs: usize,
    cols: usize,
    avail_r: usize,
    avail_c: usize,
) {
    if avail_r == 0 || avail_c == 0 {
        return;
    }
    macro_rules! go {
        ($get:ident) => {{
            unsafe {
                let ssl = sb.$get(so, (avail_r - 1) * cols + avail_c);
                let need = doff + (avail_r - 1) * rs + (avail_c - 1) * cs + 1;
                let dsl = db.$get(doff, need - doff);
                tail::store_clamped_2d(ssl, dsl, rs, cs, avail_r, cols, avail_r, avail_c);
            }
        }};
    }
    match sb.dtype {
        DataType::F32 => go!(f32),
        DataType::U8 => go!(u8),
        DataType::I8 => go!(i8),
        DataType::I32 => go!(i32),
        other => panic!("unpack2d_clamp unsupported dtype {other}"),
    }
}

/// Convenience: like [`UnaryOp::Identity`] copy via `Unary`, used by
/// tests to express plain copies.
pub fn copy_intrinsic(src: View, dst: View) -> Intrinsic {
    Intrinsic::Unary {
        op: UnaryOp::Identity,
        src,
        dst,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::ir::{BufDecl, GlobalDecl, GlobalKind};
    use gc_microkernel::BinaryOp;

    fn pool() -> ThreadPool {
        ThreadPool::new(2)
    }

    fn mk_module(func: Func, globals: Vec<GlobalDecl>) -> Module {
        let n = func.params.len();
        let mut m = Module::new();
        let f = m.add_func(func);
        for g in globals {
            m.add_global(g);
        }
        m.main_calls.push(Call {
            func: f,
            args: (0..n).collect(),
        });
        m
    }

    fn g(dtype: DataType, elems: usize, name: &str) -> GlobalDecl {
        GlobalDecl {
            dtype,
            elems,
            kind: GlobalKind::Scratch,
            name: name.to_string(),
        }
    }

    #[test]
    fn relu_loop_executes() {
        let mut f = Func {
            name: "relu".into(),
            params: vec![
                BufDecl::new(DataType::F32, 8, "in"),
                BufDecl::new(DataType::F32, 8, "out"),
            ],
            locals: vec![],
            var_count: 0,
            body: vec![],
        };
        let v = f.fresh_var();
        f.body.push(Stmt::loop_(
            v,
            2,
            vec![Stmt::Op(Intrinsic::Unary {
                op: UnaryOp::Relu,
                src: View::new(BufId::Param(0), Expr::v(v).mul(Expr::c(4)), 4),
                dst: View::new(BufId::Param(1), Expr::v(v).mul(Expr::c(4)), 4),
            })],
        ));
        let m = mk_module(
            f,
            vec![g(DataType::F32, 8, "in"), g(DataType::F32, 8, "out")],
        );
        m.validate().unwrap();
        let mut globals = vec![
            Storage::F32(vec![-1., 2., -3., 4., -5., 6., -7., 8.]),
            Storage::F32(vec![0.; 8]),
        ];
        run_module(&m, &mut globals, &pool(), true).unwrap();
        let out = globals[1].as_slice::<f32>().unwrap();
        assert_eq!(out, &[0., 2., 0., 4., 0., 6., 0., 8.]);
    }

    #[test]
    fn parallel_loop_matches_serial() {
        let build = |parallel: bool| {
            let mut f = Func {
                name: "square".into(),
                params: vec![
                    BufDecl::new(DataType::F32, 64, "in"),
                    BufDecl::new(DataType::F32, 64, "out"),
                ],
                locals: vec![],
                var_count: 0,
                body: vec![],
            };
            let v = f.fresh_var();
            f.body.push(Stmt::For {
                var: v,
                extent: 8,
                parallel,
                body: vec![Stmt::Op(Intrinsic::Unary {
                    op: UnaryOp::Square,
                    src: View::new(BufId::Param(0), Expr::v(v).mul(Expr::c(8)), 8),
                    dst: View::new(BufId::Param(1), Expr::v(v).mul(Expr::c(8)), 8),
                })],
            });
            mk_module(
                f,
                vec![g(DataType::F32, 64, "in"), g(DataType::F32, 64, "out")],
            )
        };
        let input: Vec<f32> = (0..64).map(|i| i as f32 - 32.0).collect();
        let run = |m: &Module| {
            let mut globals = vec![Storage::F32(input.clone()), Storage::F32(vec![0.; 64])];
            run_module(m, &mut globals, &pool(), true).unwrap();
            globals[1].as_slice::<f32>().unwrap().to_vec()
        };
        assert_eq!(run(&build(false)), run(&build(true)));
    }

    #[test]
    fn brgemm_intrinsic_matches_reference() {
        use gc_tensor::{reference, Tensor};
        // single-tile matmul: A[4,8] x B[8,4]
        let a = Tensor::random(&[4, 8], DataType::F32, 1);
        let bt = Tensor::random(&[4, 8], DataType::F32, 2); // [n][k] panels
        let mut f = Func {
            name: "mm".into(),
            params: vec![
                BufDecl::new(DataType::F32, 32, "a"),
                BufDecl::new(DataType::F32, 32, "b"),
                BufDecl::new(DataType::F32, 16, "c"),
            ],
            locals: vec![],
            var_count: 0,
            body: vec![],
        };
        f.body.push(Stmt::Op(Intrinsic::FillF32 {
            dst: View::new(BufId::Param(2), 0usize, 16),
            value: 0.0,
        }));
        f.body.push(Stmt::Op(Intrinsic::BrgemmF32 {
            a: View::new(BufId::Param(0), 0usize, 32),
            a_stride: 0,
            b: View::new(BufId::Param(1), 0usize, 32),
            b_stride: 0,
            c: View::new(BufId::Param(2), 0usize, 16),
            m: 4,
            n: 4,
            k: 8,
            batch: 1,
        }));
        let m = mk_module(
            f,
            vec![
                g(DataType::F32, 32, "a"),
                g(DataType::F32, 32, "b"),
                g(DataType::F32, 16, "c"),
            ],
        );
        let mut globals = vec![
            Storage::F32(a.f32_slice().unwrap().to_vec()),
            Storage::F32(bt.f32_slice().unwrap().to_vec()),
            Storage::F32(vec![0.; 16]),
        ];
        run_module(&m, &mut globals, &pool(), true).unwrap();
        // reference: B = bt transposed
        let b_plain = gc_tensor::reorder::transpose_last2(&bt).unwrap();
        let want = reference::matmul_f32(&a, &b_plain).unwrap();
        let got = globals[2].as_slice::<f32>().unwrap();
        for (x, y) in got.iter().zip(want.f32_slice().unwrap()) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn pack_unpack_round_trip_with_transpose() {
        // pack a transposed 3x5 -> 5x3 tile and unpack it back
        let mut f = Func {
            name: "t".into(),
            params: vec![
                BufDecl::new(DataType::F32, 15, "in"),
                BufDecl::new(DataType::F32, 15, "out"),
            ],
            locals: vec![BufDecl::new(DataType::F32, 15, "tile")],
            var_count: 0,
            body: vec![],
        };
        // transpose: dst[r,c] = src[c*5 + r] -> row stride 1, col stride 5
        f.body.push(Stmt::Op(Intrinsic::Pack2D {
            src: BufId::Param(0),
            src_offset: Expr::c(0),
            src_row_stride: 1,
            src_col_stride: 5,
            dst: View::new(BufId::Local(0), 0usize, 15),
            rows: 5,
            cols: 3,
        }));
        // unpack transposing again restores original
        f.body.push(Stmt::Op(Intrinsic::Unpack2D {
            src: View::new(BufId::Local(0), 0usize, 15),
            dst: BufId::Param(1),
            dst_offset: Expr::c(0),
            dst_row_stride: 1,
            dst_col_stride: 5,
            rows: 5,
            cols: 3,
        }));
        let m = mk_module(
            f,
            vec![g(DataType::F32, 15, "in"), g(DataType::F32, 15, "out")],
        );
        let input: Vec<f32> = (0..15).map(|x| x as f32).collect();
        let mut globals = vec![Storage::F32(input.clone()), Storage::F32(vec![0.; 15])];
        run_module(&m, &mut globals, &pool(), true).unwrap();
        assert_eq!(globals[1].as_slice::<f32>().unwrap(), input.as_slice());
    }

    #[test]
    fn reduce_rows_and_col_broadcast_make_softmax_rows() {
        // one 2x4 tile: exp, row sums, divide -> rows sum to 1
        let mut f = Func {
            name: "sm".into(),
            params: vec![
                BufDecl::new(DataType::F32, 8, "in"),
                BufDecl::new(DataType::F32, 8, "out"),
            ],
            locals: vec![BufDecl::new(DataType::F32, 2, "sums")],
            var_count: 0,
            body: vec![],
        };
        f.body.push(Stmt::Op(Intrinsic::Unary {
            op: UnaryOp::Exp,
            src: View::new(BufId::Param(0), 0usize, 8),
            dst: View::new(BufId::Param(1), 0usize, 8),
        }));
        f.body.push(Stmt::Op(Intrinsic::ReduceRows {
            op: ReduceOp::Sum,
            src: View::new(BufId::Param(1), 0usize, 8),
            acc: View::new(BufId::Local(0), 0usize, 2),
            rows: 2,
            cols: 4,
            accumulate: false,
        }));
        f.body.push(Stmt::Op(Intrinsic::BinaryColBcast {
            op: BinaryOp::Div,
            a: View::new(BufId::Param(1), 0usize, 8),
            b: View::new(BufId::Local(0), 0usize, 2),
            dst: View::new(BufId::Param(1), 0usize, 8),
            rows: 2,
            cols: 4,
        }));
        let m = mk_module(
            f,
            vec![g(DataType::F32, 8, "in"), g(DataType::F32, 8, "out")],
        );
        let mut globals = vec![
            Storage::F32(vec![0.1, 0.2, 0.3, 0.4, -1.0, 0.0, 1.0, 2.0]),
            Storage::F32(vec![0.; 8]),
        ];
        run_module(&m, &mut globals, &pool(), true).unwrap();
        let out = globals[1].as_slice::<f32>().unwrap();
        for row in out.chunks_exact(4) {
            let s: f32 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn int8_pipeline_brgemm_plus_epilogue() {
        use gc_tensor::QuantParams;
        // A[1,4] u8, B[4,2] i8 as [n][k] panels, comp, dequant
        let a = vec![1u8, 2, 3, 4];
        let b_panels = vec![1i8, 1, 1, 1, -1, -1, -1, -1]; // n0 = ones, n1 = -ones
        let comp: Vec<i32> = vec![4, -4];
        let mut f = Func {
            name: "q".into(),
            params: vec![
                BufDecl::new(DataType::U8, 4, "a"),
                BufDecl::new(DataType::I8, 8, "b"),
                BufDecl::new(DataType::I32, 2, "comp"),
                BufDecl::new(DataType::F32, 2, "out"),
            ],
            locals: vec![BufDecl::new(DataType::I32, 2, "acc")],
            var_count: 0,
            body: vec![],
        };
        f.body.push(Stmt::Op(Intrinsic::ZeroI32 {
            dst: View::new(BufId::Local(0), 0usize, 2),
        }));
        f.body.push(Stmt::Op(Intrinsic::BrgemmU8I8 {
            a: View::new(BufId::Param(0), 0usize, 4),
            a_stride: 0,
            b: View::new(BufId::Param(1), 0usize, 8),
            b_stride: 0,
            c: View::new(BufId::Local(0), 0usize, 2),
            m: 1,
            n: 2,
            k: 4,
            batch: 1,
        }));
        f.body.push(Stmt::Op(Intrinsic::DequantAcc {
            acc: View::new(BufId::Local(0), 0usize, 2),
            comp: View::new(BufId::Param(2), 0usize, 2),
            a_zero: 1,
            scale: 0.5,
            bias: None,
            dst: View::new(BufId::Param(3), 0usize, 2),
            rows: 1,
            cols: 2,
        }));
        let m = mk_module(
            f,
            vec![
                g(DataType::U8, 4, "a"),
                g(DataType::I8, 8, "b"),
                g(DataType::I32, 2, "comp"),
                g(DataType::F32, 2, "out"),
            ],
        );
        let mut globals = vec![
            Storage::U8(a.clone()),
            Storage::I8(b_panels),
            Storage::I32(comp),
            Storage::F32(vec![0.; 2]),
        ];
        run_module(&m, &mut globals, &pool(), true).unwrap();
        let out = globals[3].as_slice::<f32>().unwrap();
        // acc = [10, -10]; corrected = acc - 1*comp = [6, -6]; * 0.5
        assert_eq!(out, &[3.0, -3.0]);
        // reference check via quant module
        let p = QuantParams::new(0.5, 1);
        let real: f32 = a
            .iter()
            .map(|&q| gc_tensor::quant::dequantize_u8(q, QuantParams::new(1.0, 1)))
            .sum();
        let _ = (real, p);
    }

    #[test]
    fn module_global_mismatch_errors() {
        let f = Func {
            name: "f".into(),
            params: vec![BufDecl::new(DataType::F32, 4, "x")],
            locals: vec![],
            var_count: 0,
            body: vec![],
        };
        let m = mk_module(f, vec![g(DataType::F32, 4, "x")]);
        let mut wrong = vec![Storage::I8(vec![0; 4])];
        assert!(run_module(&m, &mut wrong, &pool(), true).is_err());
        let mut short = vec![Storage::F32(vec![0.; 2])];
        assert!(run_module(&m, &mut short, &pool(), true).is_err());
    }
}
