//! The compiled-partition execution engine.
//!
//! An [`Executable`] owns a compiled [`Module`] plus everything needed
//! to run it: seeded weight globals, the cached persistent state
//! produced by the init stage ("these runtime constants only be
//! executed once in the first execution"), its thread pool, and
//! execution statistics. Engines are **first-class values**, not a
//! process singleton: an [`Engine`] bundles one thread pool with an
//! execution policy and per-instance counters, and any number of them
//! coexist in a process — gc-serve runs one per `EngineShard` so
//! heterogeneous shards (different widths, different kernel ISAs,
//! different core ranges) serve side by side (DESIGN.md "Sharded
//! execution").
//!
//! # Concurrency
//!
//! [`Executable::execute`] is safe to call from many threads at once
//! (`Executable` is `Send + Sync`, statically asserted below). The
//! engine keeps a checkout pool of execution states — each holding its
//! own copy of the global buffers and plan scratch — so concurrent
//! calls never share mutable memory; the one-time init stage runs
//! under a [`std::sync::OnceLock`], and every state is cloned from the
//! initialized template. The idle pool is capped at the thread pool's
//! worker count so a concurrency burst does not pin
//! weights-times-concurrency of memory forever. Results are bit-identical to serial runs: a
//! plan's parallel chunks each compute a deterministic, disjoint
//! region regardless of which worker claims them.

use crate::compile::compile_module;
use crate::exec::{run_calls_opts, ExecError};
use crate::ir::{GlobalKind, Module};
use crate::plan::{run_plan_call_opts, ExecOptions, Plan, PlanScratch, PlanStats};
use crate::sim::{project, Projection};
use gc_machine::MachineDescriptor;
use gc_runtime::{ConstantCache, ExecStats, ThreadPool};
use gc_tensor::{Storage, Tensor, TensorDesc};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// A live set of engine execution counters. One instance is process
/// wide (backing [`engine_totals`], kept for whole-process
/// observability); every [`Engine`] value carries its own in addition,
/// so multi-engine hosts — gc-serve's shards — get per-instance totals.
/// Monotonic; tests must assert on deltas, not absolute values, because
/// the test harness runs in parallel.
#[derive(Debug, Default)]
pub struct EngineCounters {
    executions: AtomicU64,
    plan_dispatches: AtomicU64,
    interp_dispatches: AtomicU64,
    init_runs: AtomicU64,
    exec_states: AtomicU64,
}

impl EngineCounters {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot the current values.
    pub fn totals(&self) -> EngineTotals {
        EngineTotals {
            executions: self.executions.load(Ordering::Relaxed),
            plan_dispatches: self.plan_dispatches.load(Ordering::Relaxed),
            interp_dispatches: self.interp_dispatches.load(Ordering::Relaxed),
            init_runs: self.init_runs.load(Ordering::Relaxed),
            exec_states: self.exec_states.load(Ordering::Relaxed),
        }
    }
}

/// The process-wide counter instance (every executable increments it,
/// instrumented or not).
static GLOBAL_COUNTERS: EngineCounters = EngineCounters {
    executions: AtomicU64::new(0),
    plan_dispatches: AtomicU64::new(0),
    interp_dispatches: AtomicU64::new(0),
    init_runs: AtomicU64::new(0),
    exec_states: AtomicU64::new(0),
};

/// A snapshot of engine counters — process-wide from
/// [`engine_totals`], per-instance from [`Engine::totals`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineTotals {
    /// Completed [`Executable::execute`] calls.
    pub executions: u64,
    /// Main-stage calls dispatched through compiled plans.
    pub plan_dispatches: u64,
    /// Main-stage calls dispatched through the interpreter.
    pub interp_dispatches: u64,
    /// Init stages actually computed (constant-cache hits excluded).
    pub init_runs: u64,
    /// Execution states materialized (peak concurrency × executables).
    pub exec_states: u64,
}

/// Read the process-wide engine counters (the sum over every engine
/// instance and standalone executable in the process).
pub fn engine_totals() -> EngineTotals {
    GLOBAL_COUNTERS.totals()
}

/// A first-class engine instance: a thread pool plus the execution
/// policy (mode, options) and counters for everything built on it.
///
/// Historically the pool/options pair was threaded through every
/// [`Executable`] constructor by hand and observability was process
/// wide only. `Engine` names that bundle so several instances can
/// coexist deliberately in one process — gc-serve's `EngineShard`s each
/// own one, giving every shard its own pool, its own exec-state
/// checkout pools (via the executables it builds), and its own totals
/// (DESIGN.md "Sharded execution"). Construction is cheap beyond the
/// pool itself; clone the `Arc`s freely.
#[derive(Clone)]
pub struct Engine {
    pool: Arc<ThreadPool>,
    mode: ExecMode,
    exec_options: ExecOptions,
    counters: Arc<EngineCounters>,
}

impl Engine {
    /// An engine instance on `pool` with default (compiled, unchecked)
    /// execution policy and fresh counters.
    pub fn new(pool: Arc<ThreadPool>) -> Self {
        Engine {
            pool,
            mode: ExecMode::default(),
            exec_options: ExecOptions::default(),
            counters: Arc::new(EngineCounters::new()),
        }
    }

    /// Set the dispatch mode for executables built by this engine.
    pub fn with_mode(mut self, mode: ExecMode) -> Self {
        self.mode = mode;
        self
    }

    /// Set the plan-execution options for executables built by this
    /// engine.
    pub fn with_exec_options(mut self, opts: ExecOptions) -> Self {
        self.exec_options = opts;
        self
    }

    /// The engine's thread pool.
    pub fn pool(&self) -> &Arc<ThreadPool> {
        &self.pool
    }

    /// Cores this engine keeps busy (its pool's width).
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// This instance's counters (for attaching to executables compiled
    /// elsewhere; see [`Executable::with_counters`]).
    pub fn counters(&self) -> &Arc<EngineCounters> {
        &self.counters
    }

    /// Snapshot this instance's counters — only work executed through
    /// executables built by (or instrumented with) this engine.
    pub fn totals(&self) -> EngineTotals {
        self.counters.totals()
    }

    /// Wrap a lowered module into an [`Executable`] running on this
    /// engine: its pool, its mode and options, its counters.
    pub fn build(
        &self,
        module: Module,
        weight_seeds: Vec<(usize, Tensor)>,
        dispatch_count: usize,
    ) -> Executable {
        Executable::with_mode(
            module,
            weight_seeds,
            Arc::clone(&self.pool),
            dispatch_count,
            self.mode,
        )
        .with_exec_options(self.exec_options)
        .with_counters(Arc::clone(&self.counters))
    }
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("threads", &self.pool.threads())
            .field("mode", &self.mode)
            .finish()
    }
}

/// How the main stage of an [`Executable`] runs its functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Flat execution plans compiled at construction; functions the
    /// plan builder rejected fall back to the interpreter per call.
    #[default]
    Compiled,
    /// Tree-walking interpreter for every call — the reference path
    /// differential tests compare against (`--interpret`).
    Interpret,
}

/// The init-stage product shared by every execution state: the global
/// buffers after weight seeding and one-time constant preprocessing.
/// `init_wall` is reported once, by the caller that ran (or fetched)
/// the init stage.
struct InitTemplate {
    globals: Arc<Vec<Storage>>,
}

/// One checked-out execution context: a private copy of the globals
/// (inputs are copied into place per call; outputs and scratch are
/// overwritten) plus the reusable plan-execution scratch. States are
/// pooled, so steady-state execution allocates nothing.
struct ExecState {
    globals: Vec<Storage>,
    scratch: PlanScratch,
}

/// A shared, persistent-globals cache for init-stage results, keyed by
/// the caller (e.g. a model's graph hash + shape bucket). Lets distinct
/// `Executable`s of the same logical model reuse one folded-constant
/// computation.
pub type InitCache = ConstantCache<Vec<Storage>>;

/// A compiled, executable partition.
pub struct Executable {
    module: Module,
    weight_seeds: Vec<(usize, Tensor)>,
    pool: Arc<ThreadPool>,
    /// Number of user-visible API calls this module replaces (1 for a
    /// compiled partition, one per primitive for the baseline).
    dispatch_count: usize,
    plan: Plan,
    mode: ExecMode,
    exec_options: ExecOptions,
    /// Optional cross-executable init cache (see [`InitCache`]).
    init_cache: Option<(Arc<InitCache>, u64)>,
    template: OnceLock<InitTemplate>,
    /// Idle execution states; `execute` pops one (or clones a fresh one
    /// from the template) and pushes it back when done. Bounded by
    /// `max_idle_states`: each state carries a full copy of the global
    /// buffers (weights included), so retaining one per peak-concurrent
    /// caller would pin roughly weights × concurrency of memory for the
    /// process lifetime. Excess states are dropped on return; callers
    /// beyond the pool width pay a template clone instead — they are
    /// serialized on the thread pool anyway.
    states: Mutex<Vec<ExecState>>,
    /// Idle-pool bound: the embedded pool's worker count.
    max_idle_states: usize,
    init_runs: AtomicU64,
    /// Per-engine-instance counters, incremented alongside the
    /// process-wide ones when set (see [`Engine`]).
    counters: Option<Arc<EngineCounters>>,
}

// `Executable` must stay shareable across serving threads; this fails
// to compile if a field ever loses `Send + Sync`.
const fn _assert_send_sync<T: Send + Sync>() {}
const _: () = _assert_send_sync::<Executable>();

impl std::fmt::Debug for Executable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Executable")
            .field("funcs", &self.module.funcs.len())
            .field("globals", &self.module.globals.len())
            .field("dispatch_count", &self.dispatch_count)
            .finish()
    }
}

impl Executable {
    /// Wrap a lowered module, compiling its execution plan.
    pub fn new(
        module: Module,
        weight_seeds: Vec<(usize, Tensor)>,
        pool: Arc<ThreadPool>,
        dispatch_count: usize,
    ) -> Self {
        Self::with_mode(
            module,
            weight_seeds,
            pool,
            dispatch_count,
            ExecMode::Compiled,
        )
    }

    /// Wrap a lowered module with an explicit execution mode. The plan
    /// is compiled either way (it is cheap and [`Self::plan_stats`]
    /// stays meaningful); `mode` only selects the dispatch path.
    pub fn with_mode(
        module: Module,
        weight_seeds: Vec<(usize, Tensor)>,
        pool: Arc<ThreadPool>,
        dispatch_count: usize,
        mode: ExecMode,
    ) -> Self {
        // Resolve the microkernel ISA dispatch table now, so backend
        // selection (feature detection + GC_FORCE_ISA) happens at
        // engine init rather than inside the first hot loop.
        gc_microkernel::arch::init();
        let plan = compile_module(&module, pool.threads());
        let max_idle_states = pool.threads().max(1);
        Executable {
            module,
            weight_seeds,
            pool,
            dispatch_count,
            plan,
            mode,
            exec_options: ExecOptions::default(),
            init_cache: None,
            template: OnceLock::new(),
            states: Mutex::new(Vec::new()),
            max_idle_states,
            init_runs: AtomicU64::new(0),
            counters: None,
        }
    }

    /// Attach per-instance [`EngineCounters`] (normally an [`Engine`]'s,
    /// via [`Engine::build`]): every execution increments them alongside
    /// the process-wide totals.
    pub fn with_counters(mut self, counters: Arc<EngineCounters>) -> Self {
        self.counters = Some(counters);
        self
    }

    /// Bump one counter on the process-wide instance and, when
    /// instrumented, the owning engine's.
    #[inline]
    fn count(&self, field: impl Fn(&EngineCounters) -> &AtomicU64) {
        field(&GLOBAL_COUNTERS).fetch_add(1, Ordering::Relaxed);
        if let Some(c) = &self.counters {
            field(c).fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Route the one-time init stage through a shared [`InitCache`]
    /// under `key`: if another executable with the same key already
    /// folded its constants, this one reuses the processed globals
    /// instead of recomputing them. Must be set before the first
    /// execution.
    pub fn with_init_cache(mut self, cache: Arc<InitCache>, key: u64) -> Self {
        self.init_cache = Some((cache, key));
        self
    }

    /// The underlying module (diagnostics, projection).
    pub fn module(&self) -> &Module {
        &self.module
    }

    /// Set the plan-execution options (e.g. [`ExecOptions::checked`]
    /// for bounds-asserting debug runs). Applies to every subsequent
    /// `execute` call.
    pub fn with_exec_options(mut self, opts: ExecOptions) -> Self {
        self.exec_options = opts;
        self
    }

    /// The active execution mode.
    pub fn mode(&self) -> ExecMode {
        self.mode
    }

    /// The active plan-execution options.
    pub fn exec_options(&self) -> ExecOptions {
        self.exec_options
    }

    /// What the plan builder achieved for this module.
    pub fn plan_stats(&self) -> PlanStats {
        self.plan.stats()
    }

    /// Number of framework API calls this executable stands for.
    pub fn dispatch_count(&self) -> usize {
        self.dispatch_count
    }

    /// How many times the init stage actually ran (stays 1 without an
    /// [`InitCache`]; 0 when a shared cache already held the result).
    pub fn init_runs(&self) -> u64 {
        self.init_runs.load(Ordering::Relaxed)
    }

    /// Idle pooled execution states (diagnostics; the peak number of
    /// concurrent `execute` calls observed so far, capped at the pool's
    /// worker count).
    pub fn pooled_states(&self) -> usize {
        self.states.lock().expect("state pool poisoned").len()
    }

    /// Expected input descriptors, in order.
    pub fn input_descs(&self) -> Vec<(usize, gc_tensor::DataType)> {
        let mut ins: Vec<(usize, usize, gc_tensor::DataType)> = self
            .module
            .globals
            .iter()
            .filter_map(|g| match g.kind {
                GlobalKind::Input(i) => Some((i, g.elems, g.dtype)),
                _ => None,
            })
            .collect();
        ins.sort();
        ins.into_iter().map(|(_, e, d)| (e, d)).collect()
    }

    /// Run the init stage from scratch: allocate globals, seed weights,
    /// install the first call's inputs (runtime constants arrive with
    /// them), and execute the init calls.
    fn build_init_globals(&self, inputs: &[Tensor]) -> Vec<Storage> {
        let mut globals: Vec<Storage> = self
            .module
            .globals
            .iter()
            .map(|g| Storage::zeros(g.dtype, g.elems))
            .collect();
        for (gi, t) in &self.weight_seeds {
            globals[*gi] = t.storage().clone();
        }
        install_inputs(&self.module, &mut globals, inputs);
        run_calls_opts(
            &self.module,
            &self.module.init_calls,
            &mut globals,
            &self.pool,
            self.exec_options,
        );
        self.init_runs.fetch_add(1, Ordering::Relaxed);
        self.count(|c| &c.init_runs);
        globals
    }

    /// Execute on `inputs` (one tensor per graph input, in order).
    /// Returns the outputs in graph-output order plus statistics.
    ///
    /// Safe to call concurrently from multiple threads; see the module
    /// docs for the memory model.
    ///
    /// # Errors
    ///
    /// Returns an error when inputs disagree with the compiled
    /// descriptors.
    pub fn execute(&self, inputs: &[Tensor]) -> Result<(Vec<Tensor>, ExecStats), ExecError> {
        let mut stats = ExecStats::default();
        let wall0 = Instant::now();

        // validate inputs against the compiled descriptors
        let mut n_inputs = 0usize;
        for g in &self.module.globals {
            if let GlobalKind::Input(i) = g.kind {
                n_inputs = n_inputs.max(i + 1);
                let t = inputs
                    .get(i)
                    .ok_or_else(|| ExecError(format!("missing input {i} ({})", g.name)))?;
                if t.desc().dtype() != g.dtype || t.desc().volume() != g.elems {
                    return Err(ExecError(format!(
                        "input {i} ({}) expects {} x{}, got {} x{}",
                        g.name,
                        g.dtype,
                        g.elems,
                        t.desc().dtype(),
                        t.desc().volume()
                    )));
                }
            }
        }
        if inputs.len() != n_inputs {
            return Err(ExecError(format!(
                "{} inputs provided, partition expects {n_inputs}",
                inputs.len()
            )));
        }

        // One-time init: the first caller computes (or fetches from the
        // shared init cache) the seeded + preprocessed globals template;
        // concurrent callers block in `get_or_init` until it is ready.
        let mut init_wall = Duration::ZERO;
        let template = self.template.get_or_init(|| {
            let init0 = Instant::now();
            let globals = match &self.init_cache {
                Some((cache, key)) => cache.get_or_init(*key, || self.build_init_globals(inputs)),
                None => Arc::new(self.build_init_globals(inputs)),
            };
            init_wall = init0.elapsed();
            InitTemplate { globals }
        });
        stats.init_wall = init_wall;

        // Check out a private execution state (clone the template when
        // none is idle — happens once per concurrency level).
        // Accumulating buffers are explicitly zeroed by the lowered code
        // (FillF32 / ZeroI32 ahead of every k-loop), so stale scratch
        // contents from a previous call are never observed.
        let mut state = {
            let mut pool = self.states.lock().expect("state pool poisoned");
            pool.pop()
        }
        .unwrap_or_else(|| {
            self.count(|c| &c.exec_states);
            ExecState {
                globals: (*template.globals).clone(),
                scratch: PlanScratch::for_plan(&self.plan),
            }
        });
        let globals = &mut state.globals;
        install_inputs(&self.module, globals, inputs);

        // Main stage: compiled plans where available, interpreter
        // otherwise (and for every call in `Interpret` mode).
        for call in &self.module.main_calls {
            if self.mode == ExecMode::Compiled && self.plan.func(call.func).is_some() {
                run_plan_call_opts(
                    &self.plan,
                    call.func,
                    &call.args,
                    globals,
                    &self.pool,
                    &mut state.scratch,
                    self.exec_options,
                );
                self.count(|c| &c.plan_dispatches);
            } else {
                crate::exec::run_func(
                    &self.module.funcs[call.func],
                    call,
                    globals,
                    &self.pool,
                    self.exec_options,
                );
                self.count(|c| &c.interp_dispatches);
            }
        }

        // collect outputs
        let mut outs: Vec<(usize, Tensor)> = Vec::new();
        for (gi, g) in self.module.globals.iter().enumerate() {
            if let GlobalKind::Output(i) = g.kind {
                let desc = TensorDesc::new(vec![g.elems], g.dtype);
                let t = Tensor::from_parts(desc, globals[gi].clone())
                    .map_err(|e| ExecError(format!("output {i}: {e}")))?;
                outs.push((i, t));
            }
        }
        outs.sort_by_key(|(i, _)| *i);

        // Return the state to the idle pool for the next call; beyond
        // the cap, drop it — a retained state pins a full copy of the
        // globals (weights included) for the process lifetime.
        {
            let mut idle = self.states.lock().expect("state pool poisoned");
            if idle.len() < self.max_idle_states {
                idle.push(state);
            }
        }
        self.count(|c| &c.executions);

        stats.wall = wall0.elapsed();
        // Barriers are counted structurally (every executed parallel
        // region ends in one), so the number is meaningful even when
        // the host pool degenerates to a single thread.
        stats.barriers = self
            .module
            .main_calls
            .iter()
            .map(|c| parallel_regions(&self.module.funcs[c.func].body, 1))
            .sum();
        stats.func_calls = self.module.main_calls.len() as u64;
        stats.peak_temp_bytes = self
            .module
            .globals
            .iter()
            .filter(|g| g.kind == GlobalKind::Scratch)
            .map(|g| g.elems * g.dtype.size_bytes())
            .sum::<usize>()
            + self
                .module
                .funcs
                .iter()
                .map(crate::ir::Func::local_bytes)
                .max()
                .unwrap_or(0);
        Ok((outs.into_iter().map(|(_, t)| t).collect(), stats))
    }

    /// Project one steady-state execution (init excluded) on `machine`.
    pub fn project(&self, machine: &MachineDescriptor) -> Projection {
        project(&self.module, machine, self.dispatch_count)
    }
}

/// Copy the call's input tensors into their persistent global slots.
/// Inputs were already validated against the descriptors, so the
/// in-place `copy_from` cannot panic.
fn install_inputs(module: &Module, globals: &mut [Storage], inputs: &[Tensor]) {
    for (gi, g) in module.globals.iter().enumerate() {
        if let GlobalKind::Input(i) = g.kind {
            globals[gi].copy_from(inputs[i].storage());
        }
    }
}

fn parallel_regions(stmts: &[crate::ir::Stmt], mult: u64) -> u64 {
    use crate::ir::Stmt;
    let mut n = 0;
    for s in stmts {
        if let Stmt::For {
            extent,
            parallel,
            body,
            ..
        } = s
        {
            if *parallel {
                n += mult;
            } else {
                n += parallel_regions(body, mult * *extent as u64);
            }
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::ir::{BufDecl, BufId, Call, Func, GlobalDecl, Intrinsic, Stmt, View};
    use gc_microkernel::UnaryOp;
    use gc_tensor::DataType;

    /// out = relu(in) with a persistent "processed weight" that the
    /// init stage computes as square(weight).
    fn demo_module() -> (Module, Vec<(usize, Tensor)>) {
        let mut m = Module::new();
        let g_in = m.add_global(GlobalDecl {
            dtype: DataType::F32,
            elems: 8,
            kind: GlobalKind::Input(0),
            name: "x".into(),
        });
        let g_w = m.add_global(GlobalDecl {
            dtype: DataType::F32,
            elems: 8,
            kind: GlobalKind::Weight,
            name: "w".into(),
        });
        let g_wp = m.add_global(GlobalDecl {
            dtype: DataType::F32,
            elems: 8,
            kind: GlobalKind::Persistent,
            name: "w_processed".into(),
        });
        let g_out = m.add_global(GlobalDecl {
            dtype: DataType::F32,
            elems: 8,
            kind: GlobalKind::Output(0),
            name: "y".into(),
        });
        let square = Func {
            name: "init_square".into(),
            params: vec![
                BufDecl::new(DataType::F32, 8, "in"),
                BufDecl::new(DataType::F32, 8, "out"),
            ],
            locals: vec![],
            var_count: 0,
            body: vec![Stmt::Op(Intrinsic::Unary {
                op: UnaryOp::Square,
                src: View::new(BufId::Param(0), Expr::c(0), 8),
                dst: View::new(BufId::Param(1), Expr::c(0), 8),
            })],
        };
        let addw = Func {
            name: "main_add".into(),
            params: vec![
                BufDecl::new(DataType::F32, 8, "x"),
                BufDecl::new(DataType::F32, 8, "w"),
                BufDecl::new(DataType::F32, 8, "y"),
            ],
            locals: vec![],
            var_count: 0,
            body: vec![Stmt::Op(Intrinsic::Binary {
                op: gc_microkernel::BinaryOp::Add,
                a: View::new(BufId::Param(0), Expr::c(0), 8),
                b: View::new(BufId::Param(1), Expr::c(0), 8),
                dst: View::new(BufId::Param(2), Expr::c(0), 8),
            })],
        };
        let f_init = m.add_func(square);
        let f_main = m.add_func(addw);
        m.init_calls.push(Call {
            func: f_init,
            args: vec![g_w, g_wp],
        });
        m.main_calls.push(Call {
            func: f_main,
            args: vec![g_in, g_wp, g_out],
        });
        m.validate().unwrap();
        let w = Tensor::from_vec_f32(&[8], vec![1., 2., 3., 4., 5., 6., 7., 8.]).unwrap();
        (m, vec![(g_w, w)])
    }

    #[test]
    fn init_runs_once_and_results_are_cached() {
        let (m, seeds) = demo_module();
        let exe = Executable::new(m, seeds, Arc::new(ThreadPool::new(1)), 1);
        let x = Tensor::from_vec_f32(&[8], vec![0.5; 8]).unwrap();
        let (out1, s1) = exe.execute(std::slice::from_ref(&x)).unwrap();
        let (out2, s2) = exe.execute(&[x]).unwrap();
        assert_eq!(exe.init_runs(), 1);
        assert!(s1.init_wall > std::time::Duration::ZERO);
        assert_eq!(s2.init_wall, std::time::Duration::ZERO);
        // y = x + w^2
        let want: Vec<f32> = (1..=8).map(|i| 0.5 + (i * i) as f32).collect();
        assert_eq!(out1[0].f32_slice().unwrap(), want.as_slice());
        assert_eq!(out2[0].f32_slice().unwrap(), want.as_slice());
    }

    #[test]
    fn rejects_bad_inputs() {
        let (m, seeds) = demo_module();
        let exe = Executable::new(m, seeds, Arc::new(ThreadPool::new(1)), 1);
        assert!(exe.execute(&[]).is_err());
        let wrong = Tensor::zeros(&[4], DataType::F32);
        assert!(exe.execute(&[wrong]).is_err());
        let wrong_dt = Tensor::zeros(&[8], DataType::I8);
        assert!(exe.execute(&[wrong_dt]).is_err());
    }

    #[test]
    fn projection_is_positive_and_counts_dispatch() {
        let (m, seeds) = demo_module();
        let exe = Executable::new(m, seeds, Arc::new(ThreadPool::new(1)), 3);
        let machine = MachineDescriptor::xeon_8358();
        let p = exe.project(&machine);
        assert!(p.cycles > 0.0);
        assert_eq!(
            p.dispatch_cycles,
            3.0 * gc_machine::cost::dispatch_cycles(&machine)
        );
    }

    #[test]
    fn input_descs_reported() {
        let (m, seeds) = demo_module();
        let exe = Executable::new(m, seeds, Arc::new(ThreadPool::new(1)), 1);
        assert_eq!(exe.input_descs(), vec![(8, DataType::F32)]);
    }

    #[test]
    fn concurrent_execute_bitmatches_serial() {
        let (m, seeds) = demo_module();
        let exe = Arc::new(Executable::new(m, seeds, Arc::new(ThreadPool::new(2)), 1));
        let reference: Arc<Vec<Vec<f32>>> = Arc::new(
            (0..4)
                .map(|t| {
                    let x = Tensor::from_vec_f32(&[8], vec![t as f32; 8]).unwrap();
                    let (out, _) = exe.execute(&[x]).unwrap();
                    out[0].f32_slice().unwrap().to_vec()
                })
                .collect(),
        );
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let exe = Arc::clone(&exe);
                let reference = Arc::clone(&reference);
                std::thread::spawn(move || {
                    let x = Tensor::from_vec_f32(&[8], vec![t as f32; 8]).unwrap();
                    for _ in 0..50 {
                        let (out, _) = exe.execute(std::slice::from_ref(&x)).unwrap();
                        assert_eq!(out[0].f32_slice().unwrap(), reference[t].as_slice());
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(exe.init_runs(), 1);
        assert!(exe.pooled_states() >= 1);
    }

    #[test]
    fn idle_state_pool_is_bounded() {
        let (m, seeds) = demo_module();
        let exe = Arc::new(Executable::new(m, seeds, Arc::new(ThreadPool::new(1)), 1));
        let handles: Vec<_> = (0..6)
            .map(|t| {
                let exe = Arc::clone(&exe);
                std::thread::spawn(move || {
                    let x = Tensor::from_vec_f32(&[8], vec![t as f32; 8]).unwrap();
                    exe.execute(&[x]).unwrap();
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // Worker count is 1, so at most one idle state is retained no
        // matter how many callers ran concurrently.
        assert!(exe.pooled_states() <= 1);
        let x = Tensor::from_vec_f32(&[8], vec![0.5; 8]).unwrap();
        exe.execute(&[x]).unwrap();
    }

    #[test]
    fn shared_init_cache_folds_constants_once() {
        let cache: Arc<InitCache> = Arc::new(InitCache::new());
        let (m1, seeds1) = demo_module();
        let (m2, seeds2) = demo_module();
        let exe1 = Executable::new(m1, seeds1, Arc::new(ThreadPool::new(1)), 1)
            .with_init_cache(Arc::clone(&cache), 99);
        let exe2 = Executable::new(m2, seeds2, Arc::new(ThreadPool::new(1)), 1)
            .with_init_cache(Arc::clone(&cache), 99);
        let x = Tensor::from_vec_f32(&[8], vec![0.5; 8]).unwrap();
        let (o1, _) = exe1.execute(std::slice::from_ref(&x)).unwrap();
        let (o2, _) = exe2.execute(std::slice::from_ref(&x)).unwrap();
        assert_eq!(o1[0].f32_slice().unwrap(), o2[0].f32_slice().unwrap());
        // exactly one init computation across both executables
        assert_eq!(cache.compute_count(), 1);
        assert_eq!(exe1.init_runs() + exe2.init_runs(), 1);
    }

    #[test]
    fn checked_execution_bitmatches_default() {
        let (m, seeds) = demo_module();
        let plain = Executable::new(m, seeds, Arc::new(ThreadPool::new(1)), 1);
        let (m2, seeds2) = demo_module();
        let checked = Executable::new(m2, seeds2, Arc::new(ThreadPool::new(1)), 1)
            .with_exec_options(ExecOptions::checked());
        assert!(checked.exec_options().checked);
        let x = Tensor::from_vec_f32(&[8], vec![0.5; 8]).unwrap();
        let (a, _) = plain.execute(std::slice::from_ref(&x)).unwrap();
        let (b, _) = checked.execute(&[x]).unwrap();
        assert_eq!(a[0].f32_slice().unwrap(), b[0].f32_slice().unwrap());
    }

    #[test]
    fn engine_instances_count_independently() {
        let a = Engine::new(Arc::new(ThreadPool::new(1)));
        let b = Engine::new(Arc::new(ThreadPool::new(2)));
        let (m, seeds) = demo_module();
        let exe_a = a.build(m, seeds, 1);
        let (m2, seeds2) = demo_module();
        let exe_b = b.build(m2, seeds2, 1);
        let x = Tensor::from_vec_f32(&[8], vec![0.5; 8]).unwrap();
        let global_before = engine_totals();
        exe_a.execute(std::slice::from_ref(&x)).unwrap();
        exe_a.execute(std::slice::from_ref(&x)).unwrap();
        exe_b.execute(&[x]).unwrap();
        // Per-instance counters see only their own engine's work; the
        // process-wide totals see all of it.
        assert_eq!(a.totals().executions, 2);
        assert_eq!(b.totals().executions, 1);
        assert_eq!(a.totals().init_runs, 1);
        assert_eq!(b.totals().init_runs, 1);
        assert!(engine_totals().executions >= global_before.executions + 3);
        assert_eq!(b.threads(), 2);
    }

    #[test]
    fn engine_policy_applies_to_built_executables() {
        let eng = Engine::new(Arc::new(ThreadPool::new(1)))
            .with_mode(ExecMode::Interpret)
            .with_exec_options(ExecOptions::checked());
        let (m, seeds) = demo_module();
        let exe = eng.build(m, seeds, 1);
        assert_eq!(exe.mode(), ExecMode::Interpret);
        assert!(exe.exec_options().checked);
        let x = Tensor::from_vec_f32(&[8], vec![0.5; 8]).unwrap();
        exe.execute(&[x]).unwrap();
        assert_eq!(eng.totals().interp_dispatches, 1);
        assert_eq!(eng.totals().plan_dispatches, 0);
    }

    #[test]
    fn engine_totals_monotonic() {
        let before = engine_totals();
        let (m, seeds) = demo_module();
        let exe = Executable::new(m, seeds, Arc::new(ThreadPool::new(1)), 1);
        let x = Tensor::from_vec_f32(&[8], vec![0.5; 8]).unwrap();
        exe.execute(&[x]).unwrap();
        let after = engine_totals();
        assert!(after.executions > before.executions);
        assert!(after.init_runs > before.init_runs);
        assert!(after.exec_states > before.exec_states);
        assert!(
            after.plan_dispatches + after.interp_dispatches
                > before.plan_dispatches + before.interp_dispatches
        );
    }
}
