//! Flat execution plans: the compiled form of Tensor IR functions.
//!
//! The interpreter in [`crate::exec`] re-derives everything on every
//! visit of every statement: view offsets re-walk [`crate::expr::Expr`]
//! trees, brgemm calls rebuild their batch-offset tables, every slice is
//! re-bounds-checked, and each parallel iteration clones the variable
//! environment. A [`Plan`] performs that work once, at compile time —
//! the reproduction's stand-in for the original system's LLVM `-O3`
//! pipeline hoisting loop-invariant address arithmetic:
//!
//! - view offsets are strength-reduced to linear form
//!   `base + Σ stride_v · var_v` (non-affine `div`/`rem` offsets fall
//!   back to a tiny postfix program evaluated on a fixed stack);
//! - brgemm batch-offset tables — loop-invariant by construction, since
//!   tile strides are static — are computed once per op and shared by
//!   every call;
//! - buffer bounds are verified against loop extents at plan-build time
//!   (interval analysis), so steady-state execution does no checking;
//! - parallel loops dispatch contiguous index chunks to the pool, each
//!   chunk copying one fixed-size variable scratch instead of cloning a
//!   heap `Vec` per iteration.
//!
//! Functions the builder cannot prove safe (too many variables, offsets
//! it cannot bound) stay on the interpreter — [`Plan::func`] returns
//! `None` and the engine routes that call through [`crate::exec`].

use crate::exec::{assert_disjoint, pack2d, pack2d_pad, unpack2d, unpack2d_clamp, RawBuf};
use crate::ir::ReduceOp;
use gc_microkernel::{brgemm, eltwise, epilogue, reduce, tail, BinaryOp, UnaryOp};
use gc_runtime::ThreadPool;
use gc_tensor::{DataType, Storage};

/// Maximum scalar variables a compiled function may use; the per-chunk
/// variable scratch is a stack array of this size.
pub const MAX_VARS: usize = 64;

/// Maximum operand-stack depth of a postfix offset program.
pub const MAX_PROG_STACK: usize = 8;

/// Options controlling how a compiled plan is executed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecOptions {
    /// Verify, at every intrinsic, that each evaluated offset is
    /// non-negative and that the span the kernel will touch fits the
    /// buffer — the dynamic counterpart of the bounds the plan builder
    /// proved statically. A violation panics with the buffer slot and
    /// the offending offset instead of silently reading garbage.
    ///
    /// Costs one predictable branch per view resolution when off (the
    /// default); roughly doubles address-arithmetic work when on.
    pub checked: bool,
}

impl ExecOptions {
    /// Options with runtime bounds checking enabled.
    pub fn checked() -> ExecOptions {
        ExecOptions { checked: true }
    }
}

/// One postfix instruction of a non-affine offset program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OffsetOp {
    /// Push a constant.
    PushC(i64),
    /// Push a variable's current value.
    PushV(u32),
    /// Pop two, push their sum.
    Add,
    /// Pop two, push their product.
    Mul,
    /// Pop two, push the truncating quotient.
    Div,
    /// Pop two, push the remainder.
    Rem,
}

/// A compiled view offset.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanOffset {
    /// Loop-invariant offset.
    Const(i64),
    /// Affine offset `base + Σ terms[i].1 * vars[terms[i].0]`.
    Linear {
        /// Constant part.
        base: i64,
        /// `(variable, stride)` pairs.
        terms: Box<[(u32, i64)]>,
    },
    /// Non-affine offset as a postfix program (div/rem by constants).
    Program(Box<[OffsetOp]>),
}

#[inline]
fn eval_program(ops: &[OffsetOp], vars: &[i64; MAX_VARS]) -> i64 {
    let mut stack = [0i64; MAX_PROG_STACK];
    let mut sp = 0usize;
    for op in ops {
        match op {
            OffsetOp::PushC(c) => {
                stack[sp] = *c;
                sp += 1;
            }
            OffsetOp::PushV(v) => {
                stack[sp] = vars[*v as usize];
                sp += 1;
            }
            OffsetOp::Add => {
                sp -= 1;
                stack[sp - 1] += stack[sp];
            }
            OffsetOp::Mul => {
                sp -= 1;
                stack[sp - 1] *= stack[sp];
            }
            OffsetOp::Div => {
                sp -= 1;
                stack[sp - 1] /= stack[sp];
            }
            OffsetOp::Rem => {
                sp -= 1;
                stack[sp - 1] %= stack[sp];
            }
        }
    }
    stack[0]
}

impl PlanOffset {
    /// Evaluate against the current variable values.
    ///
    /// The plan builder proves every offset's interval lower bound is
    /// `>= 0` before emitting it, so the `usize` conversions cannot
    /// wrap for a well-formed plan; the debug assertions catch a
    /// miscompiled plan before it turns into a silent wild read.
    #[inline]
    pub fn eval(&self, vars: &[i64; MAX_VARS]) -> usize {
        match self {
            PlanOffset::Const(c) => {
                debug_assert!(*c >= 0, "const plan offset is negative: {c}");
                *c as usize
            }
            PlanOffset::Linear { base, terms } => {
                let mut s = *base;
                for &(v, stride) in terms.iter() {
                    s += vars[v as usize] * stride;
                }
                debug_assert!(s >= 0, "linear plan offset evaluated negative: {s}");
                s as usize
            }
            PlanOffset::Program(ops) => {
                let s = eval_program(ops, vars);
                debug_assert!(s >= 0, "program plan offset evaluated negative: {s}");
                s as usize
            }
        }
    }

    /// Evaluate without converting to `usize`: checked execution wants
    /// to see a negative offset as itself, not wrapped to a huge index.
    #[inline]
    pub fn eval_signed(&self, vars: &[i64; MAX_VARS]) -> i64 {
        match self {
            PlanOffset::Const(c) => *c,
            PlanOffset::Linear { base, terms } => {
                let mut s = *base;
                for &(v, stride) in terms.iter() {
                    s += vars[v as usize] * stride;
                }
                s
            }
            PlanOffset::Program(ops) => eval_program(ops, vars),
        }
    }

    /// Whether the offset is loop-invariant.
    pub fn is_const(&self) -> bool {
        matches!(self, PlanOffset::Const(_))
    }
}

/// A compiled view: flat buffer slot + compiled offset.
#[derive(Debug, Clone, PartialEq)]
pub struct PView {
    /// Index into the call frame's flat buffer table (params then
    /// locals).
    pub buf: u32,
    /// Compiled element offset.
    pub offset: PlanOffset,
    /// Window length in elements.
    pub len: usize,
}

/// A compiled intrinsic: every view resolved to a [`PView`], every
/// loop-invariant derived quantity precomputed.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // field meanings mirror crate::ir::Intrinsic
pub enum POp {
    BrgemmF32 {
        a: PView,
        b: PView,
        c: PView,
        shape: brgemm::BrgemmShape,
        /// Tile offsets relative to the A view base, one per batch
        /// element — computed once at plan-build time.
        a_rel: Box<[usize]>,
        b_rel: Box<[usize]>,
        /// Span of the A buffer touched by all tiles.
        a_span: usize,
        b_span: usize,
    },
    BrgemmU8I8 {
        a: PView,
        b: PView,
        c: PView,
        shape: brgemm::BrgemmShape,
        a_rel: Box<[usize]>,
        b_rel: Box<[usize]>,
        a_span: usize,
        b_span: usize,
    },
    FillF32 {
        dst: PView,
        value: f32,
    },
    ZeroI32 {
        dst: PView,
    },
    Pack2D {
        src_buf: u32,
        src_offset: PlanOffset,
        src_row_stride: usize,
        src_col_stride: usize,
        dst: PView,
        rows: usize,
        cols: usize,
    },
    Unpack2D {
        src: PView,
        dst_buf: u32,
        dst_offset: PlanOffset,
        dst_row_stride: usize,
        dst_col_stride: usize,
        rows: usize,
        cols: usize,
    },
    Pack2DPad {
        src_buf: u32,
        src_offset: PlanOffset,
        src_row_stride: usize,
        src_col_stride: usize,
        dst: PView,
        rows: usize,
        cols: usize,
        row_base: PlanOffset,
        row_logical: usize,
        col_base: PlanOffset,
        col_logical: usize,
    },
    Unpack2DClamp {
        src: PView,
        dst_buf: u32,
        dst_offset: PlanOffset,
        dst_row_stride: usize,
        dst_col_stride: usize,
        rows: usize,
        cols: usize,
        row_base: PlanOffset,
        row_logical: usize,
        col_base: PlanOffset,
        col_logical: usize,
    },
    BrgemmF32Tail {
        a: PView,
        b: PView,
        c: PView,
        shape: brgemm::BrgemmShape,
        a_rel: Box<[usize]>,
        b_rel: Box<[usize]>,
        a_span: usize,
        b_span: usize,
        m_base: PlanOffset,
        m_logical: usize,
    },
    BrgemmU8I8Tail {
        a: PView,
        b: PView,
        c: PView,
        shape: brgemm::BrgemmShape,
        a_rel: Box<[usize]>,
        b_rel: Box<[usize]>,
        a_span: usize,
        b_span: usize,
        m_base: PlanOffset,
        m_logical: usize,
    },
    Unary {
        op: UnaryOp,
        src: PView,
        dst: PView,
    },
    Binary {
        op: BinaryOp,
        a: PView,
        b: PView,
        dst: PView,
    },
    BinaryScalar {
        op: BinaryOp,
        a: PView,
        scalar: f32,
        dst: PView,
    },
    BinaryRowBcast {
        op: BinaryOp,
        a: PView,
        b: PView,
        dst: PView,
        rows: usize,
        cols: usize,
    },
    BinaryColBcast {
        op: BinaryOp,
        a: PView,
        b: PView,
        dst: PView,
        rows: usize,
        cols: usize,
    },
    ReduceRows {
        op: ReduceOp,
        src: PView,
        acc: PView,
        rows: usize,
        cols: usize,
        accumulate: bool,
    },
    DequantAcc {
        acc: PView,
        comp: PView,
        a_zero: i32,
        scale: f32,
        bias: Option<PView>,
        dst: PView,
        rows: usize,
        cols: usize,
    },
    QuantU8 {
        src: PView,
        dst: PView,
        scale: f32,
        zero_point: i32,
    },
    DequantU8 {
        src: PView,
        dst: PView,
        scale: f32,
        zero_point: i32,
    },
    DequantI8 {
        src: PView,
        dst: PView,
        scale: f32,
    },
    CompAccumulate {
        b_tile: PView,
        comp: PView,
        nb: usize,
        kb: usize,
    },
    CastI32F32 {
        src: PView,
        dst: PView,
    },
    AddF32 {
        src: PView,
        dst: PView,
    },
    AddI32 {
        src: PView,
        dst: PView,
    },
}

/// One flat-plan instruction. Loop bodies are the instruction range
/// `(header + 1)..body_end`.
// `Op` dominates plan streams; boxing it would put a pointer chase on
// every dispatched intrinsic to shrink the rare loop headers.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum PInstr {
    /// Serial counted loop.
    For {
        /// Loop variable (index into the variable scratch).
        var: u32,
        /// Static trip count.
        extent: usize,
        /// One past the last body instruction.
        body_end: usize,
    },
    /// Parallel counted loop with a precomputed chunk grain.
    ParFor {
        /// Loop variable.
        var: u32,
        /// Static trip count.
        extent: usize,
        /// One past the last body instruction.
        body_end: usize,
        /// Contiguous iterations per dispatched chunk.
        grain: usize,
    },
    /// A compiled intrinsic.
    Op(POp),
}

/// A compiled function: flat instruction array plus frame layout.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanFunc {
    pub(crate) instrs: Box<[PInstr]>,
    pub(crate) n_params: usize,
    /// Local temporaries: `(dtype, elems)` per local, in order.
    pub(crate) locals: Box<[(DataType, usize)]>,
}

/// Counters describing what the plan builder achieved; used by tests to
/// verify that hot-path work was actually hoisted.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanStats {
    /// Functions compiled to plans.
    pub compiled_funcs: usize,
    /// Functions left on the interpreter.
    pub interpreted_funcs: usize,
    /// View bounds checks verified at build time (none remain at run
    /// time).
    pub hoisted_bounds: usize,
    /// Offsets strength-reduced to `Const` or `Linear` form.
    pub linear_offsets: usize,
    /// Non-affine offsets compiled to postfix programs.
    pub program_offsets: usize,
    /// brgemm batch-offset tables precomputed.
    pub brgemm_tables: usize,
    /// Parallel loops demoted to serial because their total work is
    /// below the dispatch-worthiness threshold.
    pub serialized_loops: usize,
}

/// A compiled module: one optional [`PlanFunc`] per module function
/// (`None` = interpreter fallback), plus build statistics.
#[derive(Debug, Clone, Default)]
pub struct Plan {
    pub(crate) funcs: Vec<Option<PlanFunc>>,
    pub(crate) stats: PlanStats,
}

impl Plan {
    /// The compiled form of function `idx`, if the builder succeeded.
    pub fn func(&self, idx: usize) -> Option<&PlanFunc> {
        self.funcs.get(idx).and_then(Option::as_ref)
    }

    /// Build statistics.
    pub fn stats(&self) -> PlanStats {
        self.stats
    }
}

/// Reusable per-engine execution scratch: preallocated local storages
/// and the flat buffer table. Steady-state plan execution allocates
/// nothing — locals are zero-filled in place and the table is reused.
#[derive(Debug, Default)]
pub struct PlanScratch {
    /// Per module-function local storages (allocated once, re-zeroed per
    /// call).
    locals: Vec<Vec<Storage>>,
    bufs: Vec<RawBuf>,
}

impl PlanScratch {
    /// Preallocate locals for every compiled function of `plan`.
    pub fn for_plan(plan: &Plan) -> PlanScratch {
        let locals = plan
            .funcs
            .iter()
            .map(|f| match f {
                Some(pf) => pf
                    .locals
                    .iter()
                    .map(|&(dt, elems)| Storage::zeros(dt, elems))
                    .collect(),
                None => Vec::new(),
            })
            .collect();
        PlanScratch {
            locals,
            bufs: Vec::new(),
        }
    }
}

fn zero_storage(s: &mut Storage) {
    match s {
        Storage::F32(v) => v.fill(0.0),
        Storage::Bf16(v) => v.fill(0),
        Storage::U8(v) => v.fill(0),
        Storage::I8(v) => v.fill(0),
        Storage::I32(v) => v.fill(0),
        Storage::I64(v) => v.fill(0),
    }
}

/// Execute one compiled call: bind `args` (global indices) to the
/// function's parameters, zero its locals, run the instruction stream.
///
/// # Panics
///
/// Panics if `func_idx` has no compiled plan (callers must check
/// [`Plan::func`] and fall back to the interpreter).
pub fn run_plan_call(
    plan: &Plan,
    func_idx: usize,
    args: &[usize],
    globals: &mut [Storage],
    pool: &ThreadPool,
    scratch: &mut PlanScratch,
) {
    run_plan_call_opts(
        plan,
        func_idx,
        args,
        globals,
        pool,
        scratch,
        ExecOptions::default(),
    );
}

/// [`run_plan_call`] with explicit [`ExecOptions`] (checked mode).
pub fn run_plan_call_opts(
    plan: &Plan,
    func_idx: usize,
    args: &[usize],
    globals: &mut [Storage],
    pool: &ThreadPool,
    scratch: &mut PlanScratch,
    opts: ExecOptions,
) {
    let pf = plan.funcs[func_idx]
        .as_ref()
        .expect("run_plan_call on interpreter-fallback function");
    scratch.bufs.clear();
    for &a in args {
        // Duplicate args share a Storage; RawBuf::of is a pure pointer
        // materialization, so materializing twice yields identical bufs.
        scratch.bufs.push(RawBuf::of(&mut globals[a], opts.checked));
    }
    let locals = &mut scratch.locals[func_idx];
    for s in locals.iter_mut() {
        zero_storage(s);
    }
    for s in locals.iter_mut() {
        scratch.bufs.push(RawBuf::of(s, opts.checked));
    }
    let ctx = Ctx {
        bufs: &scratch.bufs,
        pool,
        checked: opts.checked,
    };
    let mut vars = [0i64; MAX_VARS];
    run_range(&pf.instrs, 0, pf.instrs.len(), &ctx, &mut vars);
}

#[derive(Clone, Copy)]
struct Ctx<'a> {
    bufs: &'a [RawBuf],
    pool: &'a ThreadPool,
    checked: bool,
}

impl Ctx<'_> {
    /// Resolve a view whose kernel touches exactly `v.len` elements.
    #[inline]
    fn resolve(&self, v: &PView, vars: &[i64; MAX_VARS]) -> (RawBuf, usize) {
        self.resolve_span(v, v.len, vars)
    }

    /// Resolve a view whose kernel touches `span` elements from the
    /// offset (brgemm tile tables, broadcast/reduce row blocks).
    #[inline]
    fn resolve_span(&self, v: &PView, span: usize, vars: &[i64; MAX_VARS]) -> (RawBuf, usize) {
        let buf = self.bufs[v.buf as usize];
        if self.checked {
            let off = check_offset(&v.offset, v.buf, span, buf, vars);
            return (buf, off);
        }
        (buf, v.offset.eval(vars))
    }

    /// Evaluate an axis-clamp base (a scalar index, not a buffer
    /// offset); must be non-negative for a well-formed plan.
    #[inline]
    fn clamp_base(&self, off: &PlanOffset, vars: &[i64; MAX_VARS]) -> usize {
        let s = off.eval_signed(vars);
        if self.checked {
            assert!(s >= 0, "checked exec: clamp base evaluated negative ({s})");
        } else {
            debug_assert!(s >= 0, "clamp base evaluated negative ({s})");
        }
        s.max(0) as usize
    }

    /// Resolve a raw (buffer, offset) pair — the strided side of
    /// pack/unpack — whose kernel touches `span` elements.
    #[inline]
    fn resolve_raw(
        &self,
        buf_idx: u32,
        offset: &PlanOffset,
        span: usize,
        vars: &[i64; MAX_VARS],
    ) -> (RawBuf, usize) {
        let buf = self.bufs[buf_idx as usize];
        if self.checked {
            let off = check_offset(offset, buf_idx, span, buf, vars);
            return (buf, off);
        }
        (buf, offset.eval(vars))
    }
}

/// Checked-mode offset resolution: panic (rather than wrap or read out
/// of bounds) when an evaluated offset escapes its buffer.
#[cold]
fn check_offset(
    offset: &PlanOffset,
    buf_idx: u32,
    span: usize,
    buf: RawBuf,
    vars: &[i64; MAX_VARS],
) -> usize {
    let s = offset.eval_signed(vars);
    assert!(
        s >= 0,
        "checked exec: offset of buffer slot {buf_idx} evaluated negative ({s})"
    );
    let off = s as usize;
    let end = off
        .checked_add(span)
        .unwrap_or_else(|| panic!("checked exec: offset {off} + span {span} overflows"));
    assert!(
        end <= buf.elems(),
        "checked exec: access [{off}, {end}) escapes buffer slot {buf_idx} ({} elems)",
        buf.elems()
    );
    off
}

fn run_range(
    instrs: &[PInstr],
    mut pc: usize,
    end: usize,
    ctx: &Ctx<'_>,
    vars: &mut [i64; MAX_VARS],
) {
    while pc < end {
        match &instrs[pc] {
            PInstr::For {
                var,
                extent,
                body_end,
            } => {
                for i in 0..*extent {
                    vars[*var as usize] = i as i64;
                    run_range(instrs, pc + 1, *body_end, ctx, vars);
                }
                pc = *body_end;
            }
            PInstr::ParFor {
                var,
                extent,
                body_end,
                grain,
            } => {
                let extent = *extent;
                if ctx.pool.threads() > 1 && extent > 1 {
                    let var = *var as usize;
                    let body_end = *body_end;
                    // One stack copy of the variable scratch per chunk —
                    // this replaces the interpreter's per-iteration
                    // `Vec` clone.
                    let proto: [i64; MAX_VARS] = *vars;
                    ctx.pool
                        .parallel_for_grained(extent, *grain, |start, stop| {
                            let mut my_vars = proto;
                            for i in start..stop {
                                my_vars[var] = i as i64;
                                run_range(instrs, pc + 1, body_end, ctx, &mut my_vars);
                            }
                        });
                } else {
                    for i in 0..extent {
                        vars[*var as usize] = i as i64;
                        run_range(instrs, pc + 1, *body_end, ctx, vars);
                    }
                }
                pc = *body_end;
            }
            PInstr::Op(op) => {
                exec_pop(op, ctx, vars);
                pc += 1;
            }
        }
    }
}

#[allow(clippy::too_many_lines)]
fn exec_pop(op: &POp, ctx: &Ctx<'_>, vars: &[i64; MAX_VARS]) {
    match op {
        POp::BrgemmF32 {
            a,
            b,
            c,
            shape,
            a_rel,
            b_rel,
            a_span,
            b_span,
        } => {
            let (ab, ao) = ctx.resolve_span(a, *a_span, vars);
            let (bb, bo) = ctx.resolve_span(b, *b_span, vars);
            let (cb, co) = ctx.resolve_span(c, shape.c_len(), vars);
            unsafe {
                let asl = ab.f32(ao, *a_span);
                let bsl = bb.f32(bo, *b_span);
                let csl = cb.f32(co, shape.c_len());
                brgemm::brgemm_f32(*shape, asl, a_rel, bsl, b_rel, csl);
            }
        }
        POp::BrgemmU8I8 {
            a,
            b,
            c,
            shape,
            a_rel,
            b_rel,
            a_span,
            b_span,
        } => {
            let (ab, ao) = ctx.resolve_span(a, *a_span, vars);
            let (bb, bo) = ctx.resolve_span(b, *b_span, vars);
            let (cb, co) = ctx.resolve_span(c, shape.c_len(), vars);
            unsafe {
                let asl = ab.u8(ao, *a_span);
                let bsl = bb.i8(bo, *b_span);
                let csl = cb.i32(co, shape.c_len());
                brgemm::brgemm_u8i8(*shape, asl, a_rel, bsl, b_rel, csl);
            }
        }
        POp::FillF32 { dst, value } => {
            let (db, off) = ctx.resolve(dst, vars);
            unsafe { db.f32(off, dst.len) }.fill(*value);
        }
        POp::ZeroI32 { dst } => {
            let (db, off) = ctx.resolve(dst, vars);
            unsafe { db.i32(off, dst.len) }.fill(0);
        }
        POp::Pack2D {
            src_buf,
            src_offset,
            src_row_stride,
            src_col_stride,
            dst,
            rows,
            cols,
        } => {
            let src_span = (rows - 1) * src_row_stride + (cols - 1) * src_col_stride + 1;
            let (sb, so) = ctx.resolve_raw(*src_buf, src_offset, src_span, vars);
            let (db, doff) = ctx.resolve_span(dst, rows * cols, vars);
            pack2d(
                sb,
                so,
                *src_row_stride,
                *src_col_stride,
                db,
                doff,
                *rows,
                *cols,
            );
        }
        POp::Unpack2D {
            src,
            dst_buf,
            dst_offset,
            dst_row_stride,
            dst_col_stride,
            rows,
            cols,
        } => {
            let (sb, so) = ctx.resolve_span(src, rows * cols, vars);
            let dst_span = (rows - 1) * dst_row_stride + (cols - 1) * dst_col_stride + 1;
            let (db, doff) = ctx.resolve_raw(*dst_buf, dst_offset, dst_span, vars);
            unpack2d(
                sb,
                so,
                db,
                doff,
                *dst_row_stride,
                *dst_col_stride,
                *rows,
                *cols,
            );
        }
        POp::Pack2DPad {
            src_buf,
            src_offset,
            src_row_stride,
            src_col_stride,
            dst,
            rows,
            cols,
            row_base,
            row_logical,
            col_base,
            col_logical,
        } => {
            let rb = ctx.clamp_base(row_base, vars);
            let cb = ctx.clamp_base(col_base, vars);
            let avail_r = row_logical.saturating_sub(rb).min(*rows);
            let avail_c = col_logical.saturating_sub(cb).min(*cols);
            // base-excluded static span capped by the logical extents
            let src_span = row_logical.saturating_sub(1) * src_row_stride
                + col_logical.saturating_sub(1) * src_col_stride
                + 1;
            let (sb, so) = ctx.resolve_raw(*src_buf, src_offset, src_span, vars);
            let (db, doff) = ctx.resolve_span(dst, rows * cols, vars);
            pack2d_pad(
                sb,
                so + rb * src_row_stride + cb * src_col_stride,
                *src_row_stride,
                *src_col_stride,
                db,
                doff,
                *rows,
                *cols,
                avail_r,
                avail_c,
            );
        }
        POp::Unpack2DClamp {
            src,
            dst_buf,
            dst_offset,
            dst_row_stride,
            dst_col_stride,
            rows,
            cols,
            row_base,
            row_logical,
            col_base,
            col_logical,
        } => {
            let rb = ctx.clamp_base(row_base, vars);
            let cb = ctx.clamp_base(col_base, vars);
            let avail_r = row_logical.saturating_sub(rb).min(*rows);
            let avail_c = col_logical.saturating_sub(cb).min(*cols);
            let (sb, so) = ctx.resolve_span(src, rows * cols, vars);
            let dst_span = row_logical.saturating_sub(1) * dst_row_stride
                + col_logical.saturating_sub(1) * dst_col_stride
                + 1;
            let (db, doff) = ctx.resolve_raw(*dst_buf, dst_offset, dst_span, vars);
            unpack2d_clamp(
                sb,
                so,
                db,
                doff + rb * dst_row_stride + cb * dst_col_stride,
                *dst_row_stride,
                *dst_col_stride,
                *cols,
                avail_r,
                avail_c,
            );
        }
        POp::BrgemmF32Tail {
            a,
            b,
            c,
            shape,
            a_rel,
            b_rel,
            a_span,
            b_span,
            m_base,
            m_logical,
        } => {
            let mb = ctx.clamp_base(m_base, vars);
            let m_eff = m_logical.saturating_sub(mb).min(shape.m);
            if m_eff == 0 {
                return;
            }
            let (ab, ao) = ctx.resolve_span(a, *a_span, vars);
            let (bb, bo) = ctx.resolve_span(b, *b_span, vars);
            let (cb, co) = ctx.resolve_span(c, shape.c_len(), vars);
            unsafe {
                let asl = ab.f32(ao, *a_span);
                let bsl = bb.f32(bo, *b_span);
                let csl = cb.f32(co, m_eff * shape.n);
                tail::brgemm_f32_m_tail(*shape, m_eff, asl, a_rel, bsl, b_rel, csl);
            }
        }
        POp::BrgemmU8I8Tail {
            a,
            b,
            c,
            shape,
            a_rel,
            b_rel,
            a_span,
            b_span,
            m_base,
            m_logical,
        } => {
            let mb = ctx.clamp_base(m_base, vars);
            let m_eff = m_logical.saturating_sub(mb).min(shape.m);
            if m_eff == 0 {
                return;
            }
            let (ab, ao) = ctx.resolve_span(a, *a_span, vars);
            let (bb, bo) = ctx.resolve_span(b, *b_span, vars);
            let (cb, co) = ctx.resolve_span(c, shape.c_len(), vars);
            unsafe {
                let asl = ab.u8(ao, *a_span);
                let bsl = bb.i8(bo, *b_span);
                let csl = cb.i32(co, m_eff * shape.n);
                tail::brgemm_u8i8_m_tail(*shape, m_eff, asl, a_rel, bsl, b_rel, csl);
            }
        }
        POp::Unary { op, src, dst } => {
            let (sb, so) = ctx.resolve(src, vars);
            let (db, doff) = ctx.resolve(dst, vars);
            if sb.ptr == db.ptr && so == doff {
                let buf = unsafe { db.f32(doff, dst.len) };
                eltwise::unary_inplace(*op, buf);
            } else {
                assert_disjoint((sb, so, src.len), (db, doff, dst.len));
                unsafe {
                    eltwise::unary(*op, sb.f32(so, src.len), db.f32(doff, dst.len));
                }
            }
        }
        POp::Binary { op, a, b, dst } => {
            let (ab, ao) = ctx.resolve(a, vars);
            let (bb, bo) = ctx.resolve(b, vars);
            let (db, doff) = ctx.resolve(dst, vars);
            assert_disjoint((bb, bo, b.len), (db, doff, dst.len));
            if ab.ptr == db.ptr && ao == doff {
                unsafe {
                    let dsl = db.f32(doff, dst.len);
                    let bsl = bb.f32(bo, b.len);
                    for (d, &y) in dsl.iter_mut().zip(bsl.iter()) {
                        *d = op.apply(*d, y);
                    }
                }
            } else {
                assert_disjoint((ab, ao, a.len), (db, doff, dst.len));
                unsafe {
                    eltwise::binary(
                        *op,
                        ab.f32(ao, a.len),
                        bb.f32(bo, b.len),
                        db.f32(doff, dst.len),
                    );
                }
            }
        }
        POp::BinaryScalar { op, a, scalar, dst } => {
            let (ab, ao) = ctx.resolve(a, vars);
            let (db, doff) = ctx.resolve(dst, vars);
            if ab.ptr == db.ptr && ao == doff {
                let dsl = unsafe { db.f32(doff, dst.len) };
                for d in dsl.iter_mut() {
                    *d = op.apply(*d, *scalar);
                }
            } else {
                assert_disjoint((ab, ao, a.len), (db, doff, dst.len));
                unsafe {
                    eltwise::binary_scalar(*op, ab.f32(ao, a.len), *scalar, db.f32(doff, dst.len));
                }
            }
        }
        POp::BinaryRowBcast {
            op,
            a,
            b,
            dst,
            rows,
            cols,
        } => {
            let (ab, ao) = ctx.resolve_span(a, rows * cols, vars);
            let (bb, bo) = ctx.resolve_span(b, *cols, vars);
            let (db, doff) = ctx.resolve_span(dst, rows * cols, vars);
            unsafe {
                let bsl = bb.f32(bo, *cols);
                for r in 0..*rows {
                    let arow = ab.f32(ao + r * cols, *cols);
                    let drow = db.f32(doff + r * cols, *cols);
                    for ((d, &x), &y) in drow.iter_mut().zip(arow.iter()).zip(bsl.iter()) {
                        *d = op.apply(x, y);
                    }
                }
            }
        }
        POp::BinaryColBcast {
            op,
            a,
            b,
            dst,
            rows,
            cols,
        } => {
            let (ab, ao) = ctx.resolve_span(a, rows * cols, vars);
            let (bb, bo) = ctx.resolve_span(b, *rows, vars);
            let (db, doff) = ctx.resolve_span(dst, rows * cols, vars);
            unsafe {
                let bsl = bb.f32(bo, *rows);
                for (r, &y) in bsl.iter().enumerate() {
                    let arow = ab.f32(ao + r * cols, *cols);
                    let drow = db.f32(doff + r * cols, *cols);
                    match op {
                        BinaryOp::Div => {
                            let inv = 1.0 / y;
                            for (d, &x) in drow.iter_mut().zip(arow.iter()) {
                                *d = x * inv;
                            }
                        }
                        _ => {
                            for (d, &x) in drow.iter_mut().zip(arow.iter()) {
                                *d = op.apply(x, y);
                            }
                        }
                    }
                }
            }
        }
        POp::ReduceRows {
            op,
            src,
            acc,
            rows,
            cols,
            accumulate,
        } => {
            let (sb, so) = ctx.resolve_span(src, rows * cols, vars);
            let (accb, acco) = ctx.resolve_span(acc, *rows, vars);
            unsafe {
                let ssl = sb.f32(so, rows * cols);
                let asl = accb.f32(acco, *rows);
                match (op, accumulate) {
                    (ReduceOp::Max, false) => reduce::reduce_rows_max(ssl, *rows, *cols, asl),
                    (ReduceOp::Sum, false) => reduce::reduce_rows_sum(ssl, *rows, *cols, asl),
                    (ReduceOp::Max, true) => {
                        for (a, row) in asl.iter_mut().zip(ssl.chunks_exact(*cols)) {
                            let m = reduce::reduce_max(row);
                            if m > *a {
                                *a = m;
                            }
                        }
                    }
                    (ReduceOp::Sum, true) => {
                        for (a, row) in asl.iter_mut().zip(ssl.chunks_exact(*cols)) {
                            *a += reduce::reduce_sum(row);
                        }
                    }
                }
            }
        }
        POp::DequantAcc {
            acc,
            comp,
            a_zero,
            scale,
            bias,
            dst,
            rows,
            cols,
        } => {
            let (accb, acco) = ctx.resolve_span(acc, rows * cols, vars);
            let (compb, compo) = ctx.resolve_span(comp, *cols, vars);
            let (db, doff) = ctx.resolve_span(dst, rows * cols, vars);
            unsafe {
                let asl = accb.i32(acco, rows * cols);
                let csl = compb.i32(compo, *cols);
                let dsl = db.f32(doff, rows * cols);
                match bias {
                    Some(bv) => {
                        let (bb, bo) = ctx.resolve_span(bv, *cols, vars);
                        let bsl = bb.f32(bo, *cols);
                        epilogue::dequant_acc_bias(
                            asl, *rows, *cols, csl, *a_zero, *scale, bsl, dsl,
                        );
                    }
                    None => epilogue::dequant_acc(asl, *rows, *cols, csl, *a_zero, *scale, dsl),
                }
            }
        }
        POp::QuantU8 {
            src,
            dst,
            scale,
            zero_point,
        } => {
            let (sb, so) = ctx.resolve(src, vars);
            let (db, doff) = ctx.resolve(dst, vars);
            unsafe {
                epilogue::requant_u8(
                    sb.f32(so, src.len),
                    1.0 / *scale,
                    *zero_point,
                    db.u8(doff, dst.len),
                );
            }
        }
        POp::DequantU8 {
            src,
            dst,
            scale,
            zero_point,
        } => {
            let (sb, so) = ctx.resolve(src, vars);
            let (db, doff) = ctx.resolve(dst, vars);
            unsafe {
                let ssl = sb.u8(so, src.len);
                let dsl = db.f32(doff, dst.len);
                for (d, &q) in dsl.iter_mut().zip(ssl.iter()) {
                    *d = *scale * (q as i32 - zero_point) as f32;
                }
            }
        }
        POp::DequantI8 { src, dst, scale } => {
            let (sb, so) = ctx.resolve(src, vars);
            let (db, doff) = ctx.resolve(dst, vars);
            unsafe {
                let ssl = sb.i8(so, src.len);
                let dsl = db.f32(doff, dst.len);
                for (d, &q) in dsl.iter_mut().zip(ssl.iter()) {
                    *d = *scale * q as f32;
                }
            }
        }
        POp::CompAccumulate {
            b_tile,
            comp,
            nb,
            kb,
        } => {
            let (bb, bo) = ctx.resolve_span(b_tile, nb * kb, vars);
            let (cb, co) = ctx.resolve_span(comp, *nb, vars);
            unsafe {
                let bsl = bb.i8(bo, nb * kb);
                let csl = cb.i32(co, *nb);
                for (c, panel) in csl.iter_mut().zip(bsl.chunks_exact(*kb)) {
                    *c += panel.iter().map(|&x| x as i32).sum::<i32>();
                }
            }
        }
        POp::CastI32F32 { src, dst } => {
            let (sb, so) = ctx.resolve(src, vars);
            let (db, doff) = ctx.resolve(dst, vars);
            unsafe {
                epilogue::i32_to_f32(sb.i32(so, src.len), db.f32(doff, dst.len));
            }
        }
        POp::AddF32 { src, dst } => {
            let (sb, so) = ctx.resolve(src, vars);
            let (db, doff) = ctx.resolve(dst, vars);
            assert_disjoint((sb, so, src.len), (db, doff, dst.len));
            unsafe {
                eltwise::acc_add_f32(sb.f32(so, src.len), db.f32(doff, dst.len));
            }
        }
        POp::AddI32 { src, dst } => {
            let (sb, so) = ctx.resolve(src, vars);
            let (db, doff) = ctx.resolve(dst, vars);
            assert_disjoint((sb, so, src.len), (db, doff, dst.len));
            unsafe {
                eltwise::acc_add_i32(sb.i32(so, src.len), db.i32(doff, dst.len));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn const_offset_evals() {
        let vars = [0i64; MAX_VARS];
        assert_eq!(PlanOffset::Const(17).eval(&vars), 17);
    }

    #[test]
    fn linear_offset_evals() {
        let mut vars = [0i64; MAX_VARS];
        vars[2] = 3;
        vars[5] = 7;
        let off = PlanOffset::Linear {
            base: 10,
            terms: vec![(2, 100), (5, 2)].into_boxed_slice(),
        };
        assert_eq!(off.eval(&vars), 10 + 300 + 14);
    }

    #[test]
    fn program_offset_evals_div_rem() {
        // (v0 / 3) * 8 + (v0 % 3)
        let mut vars = [0i64; MAX_VARS];
        vars[0] = 7;
        let prog = PlanOffset::Program(
            vec![
                OffsetOp::PushV(0),
                OffsetOp::PushC(3),
                OffsetOp::Div,
                OffsetOp::PushC(8),
                OffsetOp::Mul,
                OffsetOp::PushV(0),
                OffsetOp::PushC(3),
                OffsetOp::Rem,
                OffsetOp::Add,
            ]
            .into_boxed_slice(),
        );
        assert_eq!(prog.eval(&vars), (7 / 3) * 8 + (7 % 3));
    }
}
