//! Plan compilation: Tensor IR functions → flat execution plans.
//!
//! [`compile_module`] lowers every function of a [`Module`] into the
//! [`crate::plan`] representation, performing at build time the work the
//! interpreter repeats per iteration:
//!
//! - **offset strength reduction** — every [`Expr`] offset is reduced to
//!   `base + Σ stride_v · var_v` when affine, or a flat postfix program
//!   when it contains `div`/`rem`;
//! - **bounds hoisting** — interval analysis over loop extents proves
//!   each view access in bounds for *all* iterations, so the compiled
//!   path does no per-access checking (a dtype mismatch or unprovable
//!   bound rejects the function instead);
//! - **brgemm table precomputation** — batch-offset tables depend only
//!   on static strides, so they are materialized once per op;
//! - **grain selection** — each parallel loop stores the chunk size the
//!   pool should dispatch, computed from the thread count;
//! - **dispatch-worthiness** — a parallel loop whose *total* work (from
//!   the static shapes of every op it encloses) is smaller than the cost
//!   of waking the pool is demoted to a serial loop. The interpreter
//!   discovers loop bodies one iteration at a time and cannot make this
//!   call.
//!
//! Rejected functions (`None` in the result) run on the interpreter —
//! correctness never depends on compilation succeeding.

use crate::expr::{Expr, VarId};
use crate::ir::{BufId, Func, Intrinsic, Module, Stmt, View};
use crate::plan::{
    OffsetOp, PInstr, POp, PView, Plan, PlanFunc, PlanOffset, PlanStats, MAX_PROG_STACK, MAX_VARS,
};
use gc_microkernel::brgemm::BrgemmShape;
use gc_tensor::DataType;

/// Compile every function of `module`; `threads` sizes parallel-loop
/// grains (pass the executing pool's thread count).
pub fn compile_module(module: &Module, threads: usize) -> Plan {
    let mut stats = PlanStats::default();
    let funcs = module
        .funcs
        .iter()
        .map(|f| match FuncBuilder::new(f, threads.max(1)).build() {
            Ok((pf, fs)) => {
                stats.compiled_funcs += 1;
                stats.hoisted_bounds += fs.hoisted_bounds;
                stats.linear_offsets += fs.linear_offsets;
                stats.program_offsets += fs.program_offsets;
                stats.brgemm_tables += fs.brgemm_tables;
                stats.serialized_loops += fs.serialized_loops;
                Some(pf)
            }
            Err(_) => {
                stats.interpreted_funcs += 1;
                None
            }
        })
        .collect();
    Plan { funcs, stats }
}

/// Why a function stays on the interpreter. Internal: the engine only
/// needs the `Option`, but tests assert on specific reasons.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Reject {
    /// More scalar variables than the fixed scratch holds.
    TooManyVars,
    /// An offset's range could not be bounded (or overflowed i64).
    Unbounded,
    /// A proven-possible out-of-range access (negative offset or
    /// overrun) — the interpreter's debug assertions would fire too.
    OutOfBounds,
    /// Buffer dtype disagrees with the intrinsic's access type.
    DtypeMismatch,
    /// A postfix offset program exceeded the fixed stack.
    ProgramTooDeep,
    /// Operand lengths disagree (e.g. unary src/dst).
    LenMismatch,
}

struct FuncStats {
    hoisted_bounds: usize,
    linear_offsets: usize,
    program_offsets: usize,
    brgemm_tables: usize,
    serialized_loops: usize,
}

/// Minimum total work (in [`pop_units`]) a parallel loop must enclose
/// for pool dispatch to pay for itself. Below this, waking worker
/// threads and the closing barrier cost more than the loop body — the
/// loop is emitted serial. Calibrated against the pool's wake+barrier
/// latency (tens of microseconds) at roughly one unit per element-op.
const PARALLEL_MIN_UNITS: u64 = 1 << 18;

struct FuncBuilder<'f> {
    func: &'f Func,
    threads: usize,
    /// Current inclusive interval of each variable at the emission
    /// point, maintained scope-wise: `[0, 0]` before any binding (the
    /// scratch is zeroed), `[0, extent-1]` inside a binding loop,
    /// pinned to `[extent-1, extent-1]` after a serial loop, and the
    /// hull of both after a parallel loop (whose serial fallback — one
    /// thread or trip count 1 — mutates the variable, while the
    /// dispatched form does not).
    var_iv: Vec<(i64, i64)>,
    stats: FuncStats,
}

impl<'f> FuncBuilder<'f> {
    fn new(func: &'f Func, threads: usize) -> Self {
        FuncBuilder {
            func,
            threads,
            var_iv: vec![(0, 0); func.var_count],
            stats: FuncStats {
                hoisted_bounds: 0,
                linear_offsets: 0,
                program_offsets: 0,
                brgemm_tables: 0,
                serialized_loops: 0,
            },
        }
    }

    fn build(mut self) -> Result<(PlanFunc, FuncStats), Reject> {
        if self.func.var_count > MAX_VARS {
            return Err(Reject::TooManyVars);
        }
        let mut instrs = Vec::new();
        self.emit_stmts(&self.func.body, &mut instrs)?;
        Ok((
            PlanFunc {
                instrs: instrs.into_boxed_slice(),
                n_params: self.func.params.len(),
                locals: self
                    .func
                    .locals
                    .iter()
                    .map(|d| (d.dtype, d.elems))
                    .collect(),
            },
            self.stats,
        ))
    }

    fn emit_stmts(&mut self, stmts: &[Stmt], out: &mut Vec<PInstr>) -> Result<(), Reject> {
        for s in stmts {
            match s {
                Stmt::For {
                    var,
                    extent,
                    parallel,
                    body,
                } => {
                    let header = out.len();
                    // Placeholder patched once the body length is known.
                    out.push(PInstr::For {
                        var: var.0 as u32,
                        extent: *extent,
                        body_end: 0,
                    });
                    let saved = self.var_iv[var.0];
                    let last = *extent as i64 - 1;
                    self.var_iv[var.0] = (0, last.max(0));
                    self.emit_stmts(body, out)?;
                    self.var_iv[var.0] = if *extent == 0 {
                        saved // zero-trip loop never touches the var
                    } else if *parallel {
                        // dispatched: untouched; serial fallback: last
                        (saved.0.min(last), saved.1.max(last))
                    } else {
                        (last, last)
                    };
                    let body_end = out.len();
                    let dispatch = *parallel
                        && self.threads > 1
                        && *extent as u64 * range_units(out, header + 1, body_end)
                            >= PARALLEL_MIN_UNITS;
                    if *parallel && !dispatch {
                        self.stats.serialized_loops += 1;
                    }
                    out[header] = if dispatch {
                        PInstr::ParFor {
                            var: var.0 as u32,
                            extent: *extent,
                            body_end,
                            grain: (*extent / (self.threads * 4)).max(1),
                        }
                    } else {
                        PInstr::For {
                            var: var.0 as u32,
                            extent: *extent,
                            body_end,
                        }
                    };
                }
                Stmt::Op(intr) => {
                    let pop = self.compile_intrinsic(intr)?;
                    out.push(PInstr::Op(pop));
                }
            }
        }
        Ok(())
    }

    /// Buffer declaration for a [`BufId`]: `(flat index, dtype, elems)`.
    fn buf_decl(&self, id: BufId) -> (u32, DataType, usize) {
        match id {
            BufId::Param(i) => {
                let d = &self.func.params[i];
                // Module validation guarantees every bound global has at
                // least the parameter's declared elems, so the declared
                // size is the safe hoisting bound.
                (i as u32, d.dtype, d.elems)
            }
            BufId::Local(i) => {
                let d = &self.func.locals[i];
                ((self.func.params.len() + i) as u32, d.dtype, d.elems)
            }
        }
    }

    /// Compile an offset expression and prove `0 <= offset` and
    /// `offset + span <= elems` for all iterations.
    fn compile_offset(
        &mut self,
        offset: &Expr,
        span: usize,
        elems: usize,
    ) -> Result<PlanOffset, Reject> {
        let (lo, hi) = interval(offset, &self.var_iv).ok_or(Reject::Unbounded)?;
        if lo < 0 || (hi as i128) + (span as i128) > elems as i128 {
            return Err(Reject::OutOfBounds);
        }
        self.stats.hoisted_bounds += 1;
        self.reduce_offset(offset)
    }

    /// Strength-reduce an already-bounded expression to a
    /// [`PlanOffset`].
    fn reduce_offset(&mut self, offset: &Expr) -> Result<PlanOffset, Reject> {
        let compiled = match linearize(offset) {
            Some((base, terms)) => {
                self.stats.linear_offsets += 1;
                if terms.is_empty() {
                    PlanOffset::Const(base)
                } else {
                    PlanOffset::Linear {
                        base,
                        terms: terms.into_boxed_slice(),
                    }
                }
            }
            None => {
                let mut ops = Vec::new();
                let depth = emit_program(offset, &mut ops)?;
                debug_assert_eq!(depth, 1);
                self.stats.program_offsets += 1;
                PlanOffset::Program(ops.into_boxed_slice())
            }
        };
        Ok(compiled)
    }

    /// Compile an axis-clamp base expression. The only static
    /// requirement is non-negativity: the upper side is enforced by the
    /// runtime clamp against the logical extent, and the buffer span is
    /// proven separately from the base-excluded offset.
    fn compile_clamp_base(&mut self, base: &Expr) -> Result<PlanOffset, Reject> {
        let (lo, _) = interval(base, &self.var_iv).ok_or(Reject::Unbounded)?;
        if lo < 0 {
            return Err(Reject::OutOfBounds);
        }
        self.reduce_offset(base)
    }

    /// Compile a view accessed as `dtype` over `span` elements from its
    /// offset (the span actually touched, which for 2-D ops exceeds
    /// `view.len`).
    fn compile_view_span(
        &mut self,
        view: &View,
        dtype: DataType,
        span: usize,
    ) -> Result<PView, Reject> {
        let (buf, decl_dtype, elems) = self.buf_decl(view.buf);
        if decl_dtype != dtype {
            return Err(Reject::DtypeMismatch);
        }
        let offset = self.compile_offset(&view.offset, span, elems)?;
        Ok(PView {
            buf,
            offset,
            len: view.len,
        })
    }

    fn compile_view(&mut self, view: &View, dtype: DataType) -> Result<PView, Reject> {
        self.compile_view_span(view, dtype, view.len)
    }

    #[allow(clippy::too_many_lines)]
    fn compile_intrinsic(&mut self, intr: &Intrinsic) -> Result<POp, Reject> {
        use DataType::{F32, I32, I8, U8};
        Ok(match intr {
            Intrinsic::BrgemmF32 {
                a,
                a_stride,
                b,
                b_stride,
                c,
                m,
                n,
                k,
                batch,
            } => {
                let (a_rel, a_span) = batch_table(*batch, *a_stride, m * k);
                let (b_rel, b_span) = batch_table(*batch, *b_stride, n * k);
                self.stats.brgemm_tables += 2;
                POp::BrgemmF32 {
                    a: self.compile_view_span(a, F32, a_span)?,
                    b: self.compile_view_span(b, F32, b_span)?,
                    c: self.compile_view_span(c, F32, m * n)?,
                    shape: BrgemmShape::new(*m, *n, *k),
                    a_rel,
                    b_rel,
                    a_span,
                    b_span,
                }
            }
            Intrinsic::BrgemmU8I8 {
                a,
                a_stride,
                b,
                b_stride,
                c,
                m,
                n,
                k,
                batch,
            } => {
                let (a_rel, a_span) = batch_table(*batch, *a_stride, m * k);
                let (b_rel, b_span) = batch_table(*batch, *b_stride, n * k);
                self.stats.brgemm_tables += 2;
                POp::BrgemmU8I8 {
                    a: self.compile_view_span(a, U8, a_span)?,
                    b: self.compile_view_span(b, I8, b_span)?,
                    c: self.compile_view_span(c, I32, m * n)?,
                    shape: BrgemmShape::new(*m, *n, *k),
                    a_rel,
                    b_rel,
                    a_span,
                    b_span,
                }
            }
            Intrinsic::FillF32 { dst, value } => POp::FillF32 {
                dst: self.compile_view(dst, F32)?,
                value: *value,
            },
            Intrinsic::ZeroI32 { dst } => POp::ZeroI32 {
                dst: self.compile_view(dst, I32)?,
            },
            Intrinsic::Pack2D {
                src,
                src_offset,
                src_row_stride,
                src_col_stride,
                dst,
                rows,
                cols,
            } => {
                let (src_buf, src_dtype, src_elems) = self.buf_decl(*src);
                let (_, dst_dtype, _) = self.buf_decl(dst.buf);
                if src_dtype != dst_dtype || !pack_dtype_ok(src_dtype) {
                    return Err(Reject::DtypeMismatch);
                }
                let span = strided_span(*rows, *cols, *src_row_stride, *src_col_stride);
                let src_off = self.compile_offset(src_offset, span, src_elems)?;
                POp::Pack2D {
                    src_buf,
                    src_offset: src_off,
                    src_row_stride: *src_row_stride,
                    src_col_stride: *src_col_stride,
                    dst: self.compile_view_span(dst, dst_dtype, rows * cols)?,
                    rows: *rows,
                    cols: *cols,
                }
            }
            Intrinsic::Unpack2D {
                src,
                dst,
                dst_offset,
                dst_row_stride,
                dst_col_stride,
                rows,
                cols,
            } => {
                let (dst_buf, dst_dtype, dst_elems) = self.buf_decl(*dst);
                let (_, src_dtype, _) = self.buf_decl(src.buf);
                if src_dtype != dst_dtype || !pack_dtype_ok(src_dtype) {
                    return Err(Reject::DtypeMismatch);
                }
                let span = strided_span(*rows, *cols, *dst_row_stride, *dst_col_stride);
                let dst_off = self.compile_offset(dst_offset, span, dst_elems)?;
                POp::Unpack2D {
                    src: self.compile_view_span(src, src_dtype, rows * cols)?,
                    dst_buf,
                    dst_offset: dst_off,
                    dst_row_stride: *dst_row_stride,
                    dst_col_stride: *dst_col_stride,
                    rows: *rows,
                    cols: *cols,
                }
            }
            Intrinsic::Pack2DPad {
                src,
                src_offset,
                src_row_stride,
                src_col_stride,
                dst,
                rows,
                cols,
                row_clamp,
                col_clamp,
            } => {
                let (src_buf, src_dtype, src_elems) = self.buf_decl(*src);
                let (_, dst_dtype, _) = self.buf_decl(dst.buf);
                if src_dtype != dst_dtype || !pack_dtype_ok(src_dtype) {
                    return Err(Reject::DtypeMismatch);
                }
                // base-excluded offset: the reachable span is capped by
                // the logical extents, not the physical tile
                let span = strided_span(
                    row_clamp.logical,
                    col_clamp.logical,
                    *src_row_stride,
                    *src_col_stride,
                );
                let src_off = self.compile_offset(src_offset, span, src_elems)?;
                POp::Pack2DPad {
                    src_buf,
                    src_offset: src_off,
                    src_row_stride: *src_row_stride,
                    src_col_stride: *src_col_stride,
                    dst: self.compile_view_span(dst, dst_dtype, rows * cols)?,
                    rows: *rows,
                    cols: *cols,
                    row_base: self.compile_clamp_base(&row_clamp.base)?,
                    row_logical: row_clamp.logical,
                    col_base: self.compile_clamp_base(&col_clamp.base)?,
                    col_logical: col_clamp.logical,
                }
            }
            Intrinsic::Unpack2DClamp {
                src,
                dst,
                dst_offset,
                dst_row_stride,
                dst_col_stride,
                rows,
                cols,
                row_clamp,
                col_clamp,
            } => {
                let (dst_buf, dst_dtype, dst_elems) = self.buf_decl(*dst);
                let (_, src_dtype, _) = self.buf_decl(src.buf);
                if src_dtype != dst_dtype || !pack_dtype_ok(src_dtype) {
                    return Err(Reject::DtypeMismatch);
                }
                let span = strided_span(
                    row_clamp.logical,
                    col_clamp.logical,
                    *dst_row_stride,
                    *dst_col_stride,
                );
                let dst_off = self.compile_offset(dst_offset, span, dst_elems)?;
                POp::Unpack2DClamp {
                    src: self.compile_view_span(src, src_dtype, rows * cols)?,
                    dst_buf,
                    dst_offset: dst_off,
                    dst_row_stride: *dst_row_stride,
                    dst_col_stride: *dst_col_stride,
                    rows: *rows,
                    cols: *cols,
                    row_base: self.compile_clamp_base(&row_clamp.base)?,
                    row_logical: row_clamp.logical,
                    col_base: self.compile_clamp_base(&col_clamp.base)?,
                    col_logical: col_clamp.logical,
                }
            }
            Intrinsic::BrgemmF32Tail {
                a,
                a_stride,
                b,
                b_stride,
                c,
                m,
                n,
                k,
                batch,
                m_clamp,
            } => {
                let (a_rel, a_span) = batch_table(*batch, *a_stride, m * k);
                let (b_rel, b_span) = batch_table(*batch, *b_stride, n * k);
                self.stats.brgemm_tables += 2;
                POp::BrgemmF32Tail {
                    a: self.compile_view_span(a, F32, a_span)?,
                    b: self.compile_view_span(b, F32, b_span)?,
                    c: self.compile_view_span(c, F32, m * n)?,
                    shape: BrgemmShape::new(*m, *n, *k),
                    a_rel,
                    b_rel,
                    a_span,
                    b_span,
                    m_base: self.compile_clamp_base(&m_clamp.base)?,
                    m_logical: m_clamp.logical,
                }
            }
            Intrinsic::BrgemmU8I8Tail {
                a,
                a_stride,
                b,
                b_stride,
                c,
                m,
                n,
                k,
                batch,
                m_clamp,
            } => {
                let (a_rel, a_span) = batch_table(*batch, *a_stride, m * k);
                let (b_rel, b_span) = batch_table(*batch, *b_stride, n * k);
                self.stats.brgemm_tables += 2;
                POp::BrgemmU8I8Tail {
                    a: self.compile_view_span(a, U8, a_span)?,
                    b: self.compile_view_span(b, I8, b_span)?,
                    c: self.compile_view_span(c, I32, m * n)?,
                    shape: BrgemmShape::new(*m, *n, *k),
                    a_rel,
                    b_rel,
                    a_span,
                    b_span,
                    m_base: self.compile_clamp_base(&m_clamp.base)?,
                    m_logical: m_clamp.logical,
                }
            }
            Intrinsic::Unary { op, src, dst } => {
                if src.len != dst.len {
                    return Err(Reject::LenMismatch);
                }
                POp::Unary {
                    op: *op,
                    src: self.compile_view(src, F32)?,
                    dst: self.compile_view(dst, F32)?,
                }
            }
            Intrinsic::Binary { op, a, b, dst } => POp::Binary {
                op: *op,
                a: self.compile_view(a, F32)?,
                b: self.compile_view(b, F32)?,
                dst: self.compile_view(dst, F32)?,
            },
            Intrinsic::BinaryScalar { op, a, scalar, dst } => POp::BinaryScalar {
                op: *op,
                a: self.compile_view(a, F32)?,
                scalar: *scalar,
                dst: self.compile_view(dst, F32)?,
            },
            Intrinsic::BinaryRowBcast {
                op,
                a,
                b,
                dst,
                rows,
                cols,
            } => POp::BinaryRowBcast {
                op: *op,
                a: self.compile_view_span(a, F32, rows * cols)?,
                b: self.compile_view_span(b, F32, *cols)?,
                dst: self.compile_view_span(dst, F32, rows * cols)?,
                rows: *rows,
                cols: *cols,
            },
            Intrinsic::BinaryColBcast {
                op,
                a,
                b,
                dst,
                rows,
                cols,
            } => POp::BinaryColBcast {
                op: *op,
                a: self.compile_view_span(a, F32, rows * cols)?,
                b: self.compile_view_span(b, F32, *rows)?,
                dst: self.compile_view_span(dst, F32, rows * cols)?,
                rows: *rows,
                cols: *cols,
            },
            Intrinsic::ReduceRows {
                op,
                src,
                acc,
                rows,
                cols,
                accumulate,
            } => POp::ReduceRows {
                op: *op,
                src: self.compile_view_span(src, F32, rows * cols)?,
                acc: self.compile_view_span(acc, F32, *rows)?,
                rows: *rows,
                cols: *cols,
                accumulate: *accumulate,
            },
            Intrinsic::DequantAcc {
                acc,
                comp,
                a_zero,
                scale,
                bias,
                dst,
                rows,
                cols,
            } => POp::DequantAcc {
                acc: self.compile_view_span(acc, I32, rows * cols)?,
                comp: self.compile_view_span(comp, I32, *cols)?,
                a_zero: *a_zero,
                scale: *scale,
                bias: match bias {
                    Some(b) => Some(self.compile_view_span(b, F32, *cols)?),
                    None => None,
                },
                dst: self.compile_view_span(dst, F32, rows * cols)?,
                rows: *rows,
                cols: *cols,
            },
            Intrinsic::QuantU8 {
                src,
                dst,
                scale,
                zero_point,
            } => {
                if src.len != dst.len {
                    return Err(Reject::LenMismatch);
                }
                POp::QuantU8 {
                    src: self.compile_view(src, F32)?,
                    dst: self.compile_view(dst, U8)?,
                    scale: *scale,
                    zero_point: *zero_point,
                }
            }
            Intrinsic::DequantU8 {
                src,
                dst,
                scale,
                zero_point,
            } => {
                if src.len != dst.len {
                    return Err(Reject::LenMismatch);
                }
                POp::DequantU8 {
                    src: self.compile_view(src, U8)?,
                    dst: self.compile_view(dst, F32)?,
                    scale: *scale,
                    zero_point: *zero_point,
                }
            }
            Intrinsic::DequantI8 { src, dst, scale } => {
                if src.len != dst.len {
                    return Err(Reject::LenMismatch);
                }
                POp::DequantI8 {
                    src: self.compile_view(src, I8)?,
                    dst: self.compile_view(dst, F32)?,
                    scale: *scale,
                }
            }
            Intrinsic::CompAccumulate {
                b_tile,
                comp,
                nb,
                kb,
            } => POp::CompAccumulate {
                b_tile: self.compile_view_span(b_tile, I8, nb * kb)?,
                comp: self.compile_view_span(comp, I32, *nb)?,
                nb: *nb,
                kb: *kb,
            },
            Intrinsic::CastI32F32 { src, dst } => {
                if src.len != dst.len {
                    return Err(Reject::LenMismatch);
                }
                POp::CastI32F32 {
                    src: self.compile_view(src, I32)?,
                    dst: self.compile_view(dst, F32)?,
                }
            }
            Intrinsic::AddF32 { src, dst } => {
                if src.len != dst.len {
                    return Err(Reject::LenMismatch);
                }
                POp::AddF32 {
                    src: self.compile_view(src, F32)?,
                    dst: self.compile_view(dst, F32)?,
                }
            }
            Intrinsic::AddI32 { src, dst } => {
                if src.len != dst.len {
                    return Err(Reject::LenMismatch);
                }
                POp::AddI32 {
                    src: self.compile_view(src, I32)?,
                    dst: self.compile_view(dst, I32)?,
                }
            }
        })
    }
}

/// Run the plan builder purely for its checks (dtype agreement, operand
/// arity, hoisted bounds), discarding the plan. The validator promotes
/// the fatal rejects to errors.
pub(crate) fn probe_func(f: &Func) -> Result<(), Reject> {
    FuncBuilder::new(f, 1).build().map(|_| ())
}

/// Per-op fixed cost in units — covers offset evaluation and the call
/// into the microkernel, so loops of many tiny ops still register.
const OP_OVERHEAD_UNITS: u64 = 64;

/// Static work estimate for one compiled op, in element-op units
/// (one unit ≈ one multiply-accumulate or one element moved).
fn pop_units(op: &POp) -> u64 {
    let elems = match op {
        POp::BrgemmF32 { shape, a_rel, .. }
        | POp::BrgemmU8I8 { shape, a_rel, .. }
        | POp::BrgemmF32Tail { shape, a_rel, .. }
        | POp::BrgemmU8I8Tail { shape, a_rel, .. } => {
            (shape.m * shape.n * shape.k * a_rel.len().max(1)) as u64
        }
        POp::Pack2D { rows, cols, .. }
        | POp::Unpack2D { rows, cols, .. }
        | POp::Pack2DPad { rows, cols, .. }
        | POp::Unpack2DClamp { rows, cols, .. } => (rows * cols) as u64,
        POp::FillF32 { dst, .. } => dst.len as u64,
        POp::ZeroI32 { dst } => dst.len as u64,
        POp::Unary { src, .. } => src.len as u64,
        POp::Binary { a, .. } | POp::BinaryScalar { a, .. } => a.len as u64,
        POp::BinaryRowBcast { rows, cols, .. }
        | POp::BinaryColBcast { rows, cols, .. }
        | POp::ReduceRows { rows, cols, .. }
        | POp::DequantAcc { rows, cols, .. } => (rows * cols) as u64,
        POp::QuantU8 { src, .. }
        | POp::CastI32F32 { src, .. }
        | POp::AddF32 { src, .. }
        | POp::AddI32 { src, .. } => src.len as u64,
        POp::DequantU8 { src, .. } | POp::DequantI8 { src, .. } => src.len as u64,
        POp::CompAccumulate { nb, kb, .. } => (nb * kb) as u64,
    };
    OP_OVERHEAD_UNITS + elems
}

/// Total work of `instrs[start..end]` for one pass, multiplying nested
/// loop bodies by their extents.
fn range_units(instrs: &[PInstr], start: usize, end: usize) -> u64 {
    let mut units = 0u64;
    let mut pc = start;
    while pc < end {
        match &instrs[pc] {
            PInstr::For {
                extent, body_end, ..
            }
            | PInstr::ParFor {
                extent, body_end, ..
            } => {
                units = units.saturating_add((*extent as u64).saturating_mul(range_units(
                    instrs,
                    pc + 1,
                    *body_end,
                )));
                pc = *body_end;
            }
            PInstr::Op(op) => {
                units = units.saturating_add(pop_units(op));
                pc += 1;
            }
        }
    }
    units
}

fn pack_dtype_ok(dt: DataType) -> bool {
    matches!(
        dt,
        DataType::F32 | DataType::U8 | DataType::I8 | DataType::I32
    )
}

/// Span of a strided 2-D access pattern starting at its base offset.
fn strided_span(rows: usize, cols: usize, rs: usize, cs: usize) -> usize {
    if rows == 0 || cols == 0 {
        return 0;
    }
    (rows - 1) * rs + (cols - 1) * cs + 1
}

/// The brgemm batch-offset table for `batch` tiles of `tile_len`
/// elements every `stride`, plus the buffer span they cover.
fn batch_table(batch: usize, stride: usize, tile_len: usize) -> (Box<[usize]>, usize) {
    let rel: Box<[usize]> = (0..batch).map(|i| i * stride).collect();
    let span = rel.last().map_or(0, |&last| last + tile_len);
    (rel, span)
}

/// Affine decomposition: `Some((base, terms))` with `terms` sorted by
/// variable, or `None` for non-affine expressions.
fn linearize(e: &Expr) -> Option<(i64, Vec<(u32, i64)>)> {
    fn go(e: &Expr) -> Option<(i64, std::collections::BTreeMap<u32, i64>)> {
        match e {
            Expr::Const(c) => Some((*c, std::collections::BTreeMap::new())),
            Expr::Var(VarId(v)) => {
                let mut m = std::collections::BTreeMap::new();
                m.insert(*v as u32, 1i64);
                Some((0, m))
            }
            Expr::Add(a, b) => {
                let (ca, mut ma) = go(a)?;
                let (cb, mb) = go(b)?;
                for (v, s) in mb {
                    *ma.entry(v).or_insert(0) += s;
                }
                Some((ca + cb, ma))
            }
            Expr::Mul(a, b) => {
                let (ca, ma) = go(a)?;
                let (cb, mb) = go(b)?;
                if mb.is_empty() {
                    Some((ca * cb, ma.into_iter().map(|(v, s)| (v, s * cb)).collect()))
                } else if ma.is_empty() {
                    Some((ca * cb, mb.into_iter().map(|(v, s)| (v, s * ca)).collect()))
                } else {
                    None // variable × variable: not affine
                }
            }
            Expr::Div(..) | Expr::Rem(..) => None,
        }
    }
    let (base, terms) = go(e)?;
    Some((base, terms.into_iter().filter(|&(_, s)| s != 0).collect()))
}

/// Emit a postfix program for `e`; returns the stack height contributed
/// (always 1 on success).
fn emit_program(e: &Expr, ops: &mut Vec<OffsetOp>) -> Result<usize, Reject> {
    fn go(e: &Expr, ops: &mut Vec<OffsetOp>, depth: usize, peak: &mut usize) -> Result<(), Reject> {
        if depth + 1 > MAX_PROG_STACK {
            return Err(Reject::ProgramTooDeep);
        }
        *peak = (*peak).max(depth + 1);
        match e {
            Expr::Const(c) => ops.push(OffsetOp::PushC(*c)),
            Expr::Var(VarId(v)) => ops.push(OffsetOp::PushV(*v as u32)),
            Expr::Add(a, b) | Expr::Mul(a, b) | Expr::Div(a, b) | Expr::Rem(a, b) => {
                go(a, ops, depth, peak)?;
                go(b, ops, depth + 1, peak)?;
                ops.push(match e {
                    Expr::Add(..) => OffsetOp::Add,
                    Expr::Mul(..) => OffsetOp::Mul,
                    Expr::Div(..) => OffsetOp::Div,
                    _ => OffsetOp::Rem,
                });
            }
        }
        Ok(())
    }
    let mut peak = 0;
    go(e, ops, 0, &mut peak)?;
    Ok(1)
}

/// Interval of `e` over the box `var_iv[v].0 <= vars[v] <= var_iv[v].1`,
/// or `None` when it cannot be bounded (division by a possibly-
/// nonpositive value, remainder of a possibly-negative numerator,
/// arithmetic overflow).
pub(crate) fn interval(e: &Expr, var_iv: &[(i64, i64)]) -> Option<(i64, i64)> {
    match e {
        Expr::Const(c) => Some((*c, *c)),
        Expr::Var(VarId(v)) => Some(var_iv.get(*v).copied().unwrap_or((0, 0))),
        Expr::Add(a, b) => {
            let (al, ah) = interval(a, var_iv)?;
            let (bl, bh) = interval(b, var_iv)?;
            Some((al.checked_add(bl)?, ah.checked_add(bh)?))
        }
        Expr::Mul(a, b) => {
            let (al, ah) = interval(a, var_iv)?;
            let (bl, bh) = interval(b, var_iv)?;
            corner_bounds(al, ah, bl, bh, i64::checked_mul)
        }
        Expr::Div(a, b) => {
            let (al, ah) = interval(a, var_iv)?;
            let (bl, bh) = interval(b, var_iv)?;
            if bl <= 0 {
                return None; // divisor may be zero or negative
            }
            // Truncating division by a positive divisor is monotone in
            // the numerator and anti-/monotone in the divisor per
            // numerator sign, so extremes sit at box corners.
            corner_bounds(al, ah, bl, bh, |x, d| Some(x / d))
        }
        Expr::Rem(a, b) => {
            let (al, ah) = interval(a, var_iv)?;
            let (bl, bh) = interval(b, var_iv)?;
            if bl <= 0 || al < 0 {
                return None;
            }
            Some((0, (bh - 1).min(ah)))
        }
    }
}

fn corner_bounds(
    al: i64,
    ah: i64,
    bl: i64,
    bh: i64,
    f: impl Fn(i64, i64) -> Option<i64>,
) -> Option<(i64, i64)> {
    let mut lo = i64::MAX;
    let mut hi = i64::MIN;
    for x in [al, ah] {
        for y in [bl, bh] {
            let v = f(x, y)?;
            lo = lo.min(v);
            hi = hi.max(v);
        }
    }
    Some((lo, hi))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::BufDecl;

    fn v(i: usize) -> Expr {
        Expr::v(VarId(i))
    }

    #[test]
    fn linearize_affine() {
        // 3 + v0 * 8 + v1 * 2
        let e = Expr::c(3)
            .add(v(0).mul(Expr::c(8)))
            .add(v(1).mul(Expr::c(2)));
        let (base, terms) = linearize(&e).unwrap();
        assert_eq!(base, 3);
        assert_eq!(terms, vec![(0, 8), (1, 2)]);
    }

    #[test]
    fn linearize_merges_repeated_vars() {
        // v0 * 4 + v0 -> stride 5
        let e = v(0).mul(Expr::c(4)).add(v(0));
        let (base, terms) = linearize(&e).unwrap();
        assert_eq!((base, terms), (0, vec![(0, 5)]));
    }

    #[test]
    fn linearize_rejects_div_and_var_products() {
        assert!(linearize(&Expr::Div(Box::new(v(0)), Box::new(Expr::c(2)))).is_none());
        assert!(linearize(&v(0).mul(v(1))).is_none());
    }

    #[test]
    fn interval_affine_and_divrem() {
        let hi = vec![(0i64, 7i64), (0, 3)];
        // v0 * 8 + v1 in [0, 59]
        let e = v(0).mul(Expr::c(8)).add(v(1));
        assert_eq!(interval(&e, &hi), Some((0, 59)));
        // v0 / 2 in [0, 3]
        let d = Expr::Div(Box::new(v(0)), Box::new(Expr::c(2)));
        assert_eq!(interval(&d, &hi), Some((0, 3)));
        // v0 % 3 in [0, 2]
        let r = Expr::Rem(Box::new(v(0)), Box::new(Expr::c(3)));
        assert_eq!(interval(&r, &hi), Some((0, 2)));
        // division by zero constant is rejected
        let z = Expr::Div(Box::new(v(0)), Box::new(Expr::c(0)));
        assert_eq!(interval(&z, &hi), None);
    }

    #[test]
    fn batch_table_layout() {
        let (rel, span) = batch_table(3, 10, 4);
        assert_eq!(rel.as_ref(), &[0, 10, 20]);
        assert_eq!(span, 24);
        let (rel0, span0) = batch_table(0, 10, 4);
        assert!(rel0.is_empty());
        assert_eq!(span0, 0);
    }

    fn simple_func(offset: Expr, elems: usize, extent: usize) -> Func {
        // for v0 in 0..extent { relu(in[offset..offset+4] -> out[same]) }
        Func {
            name: "f".into(),
            params: vec![
                BufDecl::new(DataType::F32, elems, "in"),
                BufDecl::new(DataType::F32, elems, "out"),
            ],
            locals: vec![],
            var_count: 1,
            body: vec![Stmt::loop_(
                VarId(0),
                extent,
                vec![Stmt::Op(Intrinsic::Unary {
                    op: gc_microkernel::UnaryOp::Relu,
                    src: View::new(BufId::Param(0), offset.clone(), 4),
                    dst: View::new(BufId::Param(1), offset, 4),
                })],
            )],
        }
    }

    #[test]
    fn compiles_in_bounds_loop() {
        let f = simple_func(v(0).mul(Expr::c(4)), 32, 8);
        let (pf, fs) = FuncBuilder::new(&f, 4).build().unwrap();
        assert_eq!(pf.instrs.len(), 2); // For + Op
        assert_eq!(fs.hoisted_bounds, 2);
        assert_eq!(fs.linear_offsets, 2);
    }

    #[test]
    fn rejects_out_of_bounds_loop() {
        // extent 9 -> max offset 32, 32 + 4 > 32
        let f = simple_func(v(0).mul(Expr::c(4)), 32, 9);
        assert_eq!(
            FuncBuilder::new(&f, 4).build().err(),
            Some(Reject::OutOfBounds)
        );
    }

    #[test]
    fn rejects_dtype_mismatch() {
        let mut f = simple_func(Expr::c(0), 32, 1);
        f.params[0].dtype = DataType::I8; // Unary needs F32
        assert_eq!(
            FuncBuilder::new(&f, 4).build().err(),
            Some(Reject::DtypeMismatch)
        );
    }

    #[test]
    fn compiles_div_rem_offset_as_program() {
        // offset = (v0 / 2) * 8 + (v0 % 2) * 4 — stays within [0, 28]
        let off = Expr::Div(Box::new(v(0)), Box::new(Expr::c(2)))
            .mul(Expr::c(8))
            .add(Expr::Rem(Box::new(v(0)), Box::new(Expr::c(2))).mul(Expr::c(4)));
        let f = simple_func(off, 32, 7);
        let (pf, fs) = FuncBuilder::new(&f, 4).build().unwrap();
        assert_eq!(fs.program_offsets, 2);
        assert_eq!(fs.linear_offsets, 0);
        // evaluate the compiled offset across the loop and compare with
        // the source expression
        let PInstr::Op(POp::Unary { src, .. }) = &pf.instrs[1] else {
            panic!("expected compiled unary");
        };
        let mut vars = [0i64; MAX_VARS];
        for i in 0..7 {
            vars[0] = i;
            let want = f.body.iter().find_map(|s| match s {
                Stmt::For { body, .. } => match &body[0] {
                    Stmt::Op(Intrinsic::Unary { src, .. }) => Some(src.offset.eval(&vars[..1])),
                    _ => None,
                },
                _ => None,
            });
            assert_eq!(src.offset.eval(&vars) as i64, want.unwrap());
        }
    }

    #[test]
    fn parallel_loop_gets_grain() {
        // Big enough (4096 iters x ~68 units) to stay dispatched.
        let mut f = simple_func(v(0).mul(Expr::c(4)), 16384, 4096);
        let Stmt::For { parallel, .. } = &mut f.body[0] else {
            panic!()
        };
        *parallel = true;
        let (pf, fs) = FuncBuilder::new(&f, 4).build().unwrap();
        let PInstr::ParFor { grain, extent, .. } = &pf.instrs[0] else {
            panic!("expected ParFor");
        };
        assert_eq!(*extent, 4096);
        assert_eq!(*grain, 256); // 4096 / (4 threads * 4)
        assert_eq!(fs.serialized_loops, 0);
    }

    #[test]
    fn tiny_parallel_loop_is_serialized() {
        // 128 iterations of a 4-element relu: far below the dispatch
        // threshold, so the loop must come out serial.
        let mut f = simple_func(v(0).mul(Expr::c(4)), 512, 128);
        let Stmt::For { parallel, .. } = &mut f.body[0] else {
            panic!()
        };
        *parallel = true;
        let (pf, fs) = FuncBuilder::new(&f, 4).build().unwrap();
        assert!(matches!(pf.instrs[0], PInstr::For { .. }));
        assert_eq!(fs.serialized_loops, 1);
        // On one thread every parallel loop is serial regardless of size.
        let big = {
            let mut f = simple_func(v(0).mul(Expr::c(4)), 16384, 4096);
            let Stmt::For { parallel, .. } = &mut f.body[0] else {
                panic!()
            };
            *parallel = true;
            f
        };
        let (pf1, _) = FuncBuilder::new(&big, 1).build().unwrap();
        assert!(matches!(pf1.instrs[0], PInstr::For { .. }));
    }

    #[test]
    fn module_compile_counts_fallbacks() {
        let good = simple_func(v(0).mul(Expr::c(4)), 32, 8);
        let bad = simple_func(v(0).mul(Expr::c(4)), 32, 9);
        let mut m = Module::new();
        m.add_func(good);
        m.add_func(bad);
        let plan = compile_module(&m, 4);
        assert!(plan.func(0).is_some());
        assert!(plan.func(1).is_none());
        assert_eq!(plan.stats().compiled_funcs, 1);
        assert_eq!(plan.stats().interpreted_funcs, 1);
    }
}
