//! Mechanical merging of adjacent parallel loops.
//!
//! "When the coarse-grain fusion optimization decides to merge two fused
//! ops, it marks the two nested loops in Tensor IR as 'mergeable' during
//! the lowering process. Then Tensor IR merges two nested loops
//! mechanically as guided by the Graph IR optimizations."
//!
//! The lowering emits one top-level parallel loop per fused op; for a
//! coarse-fusion group it emits them adjacently in one function with
//! identical trip counts. This pass fuses such runs into a single
//! parallel loop, eliminating the intermediate barriers and letting each
//! core's slice of the intermediate tensor stay hot in its cache.

use crate::ir::{Func, Stmt};

/// Result of the merge pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MergeStats {
    /// Parallel loops before merging.
    pub before: usize,
    /// Parallel loops after merging.
    pub after: usize,
}

/// Merge adjacent top-level parallel loops with equal trip counts. The
/// later loop's variable is renamed to the earlier one's.
///
/// Correctness relies on the Graph IR coarse-fusion guarantee: iteration
/// `i` of a later loop reads only data produced by iteration `i` of the
/// earlier loops (the same row slice).
pub fn merge_parallel_loops(func: &mut Func) -> MergeStats {
    let stmts = std::mem::take(&mut func.body);
    let before = stmts
        .iter()
        .filter(|s| matches!(s, Stmt::For { parallel: true, .. }))
        .count();
    let mut out: Vec<Stmt> = Vec::with_capacity(stmts.len());
    for s in stmts {
        match (&mut out.last_mut(), s) {
            (
                Some(Stmt::For {
                    var: v1,
                    extent: e1,
                    parallel: true,
                    body: b1,
                }),
                Stmt::For {
                    var: v2,
                    extent: e2,
                    parallel: true,
                    body: b2,
                },
            ) if *e1 == e2 => {
                // rename v2 -> v1 in b2 and append
                let renamed = rename_var_in_stmts(b2, v2, *v1);
                b1.extend(renamed);
            }
            (_, other) => out.push(other),
        }
    }
    let after = out
        .iter()
        .filter(|s| matches!(s, Stmt::For { parallel: true, .. }))
        .count();
    func.body = out;
    MergeStats { before, after }
}

fn rename_var_in_stmts(
    stmts: Vec<Stmt>,
    from: crate::expr::VarId,
    to: crate::expr::VarId,
) -> Vec<Stmt> {
    let with = crate::expr::Expr::Var(to);
    stmts
        .into_iter()
        .map(|s| rename_stmt(s, from, &with))
        .collect()
}

fn rename_stmt(s: Stmt, from: crate::expr::VarId, with: &crate::expr::Expr) -> Stmt {
    match s {
        Stmt::For {
            var,
            extent,
            parallel,
            body,
        } => Stmt::For {
            var,
            extent,
            parallel,
            body: body
                .into_iter()
                .map(|b| rename_stmt(b, from, with))
                .collect(),
        },
        Stmt::Op(i) => Stmt::Op(crate::visit::map_intrinsic_exprs(i, &|e| {
            e.subst(from, with)
        })),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{Expr, VarId};
    use crate::ir::{BufDecl, BufId, Intrinsic, View};
    use gc_microkernel::UnaryOp;
    use gc_tensor::DataType;

    fn unary_on(v: VarId, buf: usize) -> Stmt {
        Stmt::Op(Intrinsic::Unary {
            op: UnaryOp::Relu,
            src: View::new(BufId::Param(buf), Expr::v(v).mul(Expr::c(4)), 4),
            dst: View::new(BufId::Param(buf), Expr::v(v).mul(Expr::c(4)), 4),
        })
    }

    fn func_with(body: Vec<Stmt>, var_count: usize) -> Func {
        Func {
            name: "f".into(),
            params: vec![
                BufDecl::new(DataType::F32, 64, "a"),
                BufDecl::new(DataType::F32, 64, "b"),
            ],
            locals: vec![],
            var_count,
            body,
        }
    }

    #[test]
    fn merges_equal_extent_parallel_loops() {
        let (v0, v1) = (VarId(0), VarId(1));
        let mut f = func_with(
            vec![
                Stmt::parallel(v0, 8, vec![unary_on(v0, 0)]),
                Stmt::parallel(v1, 8, vec![unary_on(v1, 1)]),
            ],
            2,
        );
        let stats = merge_parallel_loops(&mut f);
        assert_eq!(
            stats,
            MergeStats {
                before: 2,
                after: 1
            }
        );
        // single loop with both bodies, second renamed to v0
        let Stmt::For { body, .. } = &f.body[0] else {
            panic!()
        };
        assert_eq!(body.len(), 2);
        let Stmt::Op(Intrinsic::Unary { src, .. }) = &body[1] else {
            panic!()
        };
        assert!(src.offset.uses(v0));
        assert!(!src.offset.uses(v1));
    }

    #[test]
    fn different_extents_not_merged() {
        let (v0, v1) = (VarId(0), VarId(1));
        let mut f = func_with(
            vec![
                Stmt::parallel(v0, 8, vec![unary_on(v0, 0)]),
                Stmt::parallel(v1, 4, vec![unary_on(v1, 1)]),
            ],
            2,
        );
        let stats = merge_parallel_loops(&mut f);
        assert_eq!(stats.after, 2);
    }

    #[test]
    fn serial_loops_untouched() {
        let (v0, v1) = (VarId(0), VarId(1));
        let mut f = func_with(
            vec![
                Stmt::loop_(v0, 8, vec![unary_on(v0, 0)]),
                Stmt::loop_(v1, 8, vec![unary_on(v1, 1)]),
            ],
            2,
        );
        merge_parallel_loops(&mut f);
        assert_eq!(f.body.len(), 2);
    }

    #[test]
    fn three_way_merge() {
        let (v0, v1, v2) = (VarId(0), VarId(1), VarId(2));
        let mut f = func_with(
            vec![
                Stmt::parallel(v0, 4, vec![unary_on(v0, 0)]),
                Stmt::parallel(v1, 4, vec![unary_on(v1, 1)]),
                Stmt::parallel(v2, 4, vec![unary_on(v2, 0)]),
            ],
            3,
        );
        let stats = merge_parallel_loops(&mut f);
        assert_eq!(
            stats,
            MergeStats {
                before: 3,
                after: 1
            }
        );
    }
}
