//! Tensor-size optimization: shrink temporary tensors.
//!
//! "Tensor size optimization tries to reduce the tensor size of each
//! temporary tensor. The temporary tensor was initially introduced as a
//! full-size tensor in the lowering process and then reduced [...] For
//! example, A'[MSN, BS, MB, KB] could be reduced to A'[BS, MB, KB],
//! since the producer of A' and consumer are within the 'msi' loop, so
//! there is no need to save the result along the 2nd dimension."
//!
//! Implementation: a function-local buffer whose every access offset is
//! `v * c + rest` for a common enclosing *serial* loop variable `v` and
//! constant `c`, where each iteration's accesses stay within a
//! `c`-element window, can drop the `v` term and shrink to `c` elements.
//! (Parallel loop variables are never dropped — per-iteration regions
//! provide race freedom.)

use crate::expr::{Expr, VarId};
use crate::ir::{BufId, Func, Stmt};
use crate::visit::intrinsic_accesses;
use std::collections::{HashMap, HashSet};

/// Report of the shrink pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShrinkStats {
    /// Locals shrunk.
    pub shrunk: usize,
    /// Local bytes before.
    pub bytes_before: usize,
    /// Local bytes after.
    pub bytes_after: usize,
}

/// Split `e` as `v * coef + rest` with `rest` independent of `v`.
/// Returns `None` when `e` is not linear in `v` in that simple form.
fn split_linear(e: &Expr, v: VarId) -> Option<(i64, Expr)> {
    match e {
        Expr::Const(_) => Some((0, e.clone())),
        Expr::Var(x) => {
            if *x == v {
                Some((1, Expr::Const(0)))
            } else {
                Some((0, e.clone()))
            }
        }
        Expr::Add(a, b) => {
            let (ca, ra) = split_linear(a, v)?;
            let (cb, rb) = split_linear(b, v)?;
            Some((ca + cb, ra.add(rb)))
        }
        Expr::Mul(a, b) => {
            // only Var(v) * Const or Const * subexpr patterns
            match (&**a, &**b) {
                (_, Expr::Const(k)) => {
                    let (c, r) = split_linear(a, v)?;
                    Some((c * k, r.mul(Expr::Const(*k))))
                }
                (Expr::Const(k), _) => {
                    let (c, r) = split_linear(b, v)?;
                    Some((c * k, Expr::Const(*k).mul(r)))
                }
                _ => {
                    if a.uses(v) || b.uses(v) {
                        None
                    } else {
                        Some((0, e.clone()))
                    }
                }
            }
        }
        Expr::Div(a, b) | Expr::Rem(a, b) => {
            if a.uses(v) || b.uses(v) {
                None
            } else {
                Some((0, e.clone()))
            }
        }
    }
}

/// Upper bound of a non-negative monotone expression given each
/// variable's maximum value. Returns `None` if a negative constant or an
/// unknown variable makes monotonicity unclear.
fn upper_bound(e: &Expr, max_of: &HashMap<VarId, i64>) -> Option<i64> {
    match e {
        Expr::Const(c) => {
            if *c >= 0 {
                Some(*c)
            } else {
                None
            }
        }
        Expr::Var(v) => max_of.get(v).copied(),
        Expr::Add(a, b) => Some(upper_bound(a, max_of)? + upper_bound(b, max_of)?),
        Expr::Mul(a, b) => Some(upper_bound(a, max_of)? * upper_bound(b, max_of)?),
        Expr::Div(a, b) => {
            let d = upper_bound(b, max_of)?;
            if d > 0 {
                Some(upper_bound(a, max_of)?) // conservative: skip division shrink
            } else {
                None
            }
        }
        Expr::Rem(_, b) => upper_bound(b, max_of).map(|x| x - 1),
    }
}

struct AccessRec {
    offset: Expr,
    len: usize,
    /// serial loop vars enclosing this access (outermost first)
    serial_vars: Vec<VarId>,
}

fn collect(
    stmts: &[Stmt],
    serial_stack: &mut Vec<VarId>,
    extents: &mut HashMap<VarId, i64>,
    out: &mut HashMap<usize, Vec<AccessRec>>,
) {
    for s in stmts {
        match s {
            Stmt::For {
                var,
                extent,
                parallel,
                body,
            } => {
                extents.insert(*var, (*extent as i64 - 1).max(0));
                if !*parallel {
                    serial_stack.push(*var);
                }
                collect(body, serial_stack, extents, out);
                if !*parallel {
                    serial_stack.pop();
                }
            }
            Stmt::Op(i) => {
                for a in intrinsic_accesses(i) {
                    if let BufId::Local(l) = a.buf {
                        out.entry(l).or_default().push(AccessRec {
                            offset: a.offset,
                            len: a.len,
                            serial_vars: serial_stack.clone(),
                        });
                    }
                }
            }
        }
    }
}

/// Run the tensor-size optimization on one function.
pub fn shrink_locals(func: &mut Func) -> ShrinkStats {
    let bytes_before = func.local_bytes();
    let mut accesses: HashMap<usize, Vec<AccessRec>> = HashMap::new();
    let mut extents: HashMap<VarId, i64> = HashMap::new();
    collect(&func.body, &mut Vec::new(), &mut extents, &mut accesses);

    let mut shrunk = 0usize;
    let mut rewrites: Vec<(usize, VarId)> = Vec::new();
    for (&local, recs) in &accesses {
        if recs.is_empty() {
            continue;
        }
        // candidate vars: serial vars enclosing every access
        let mut common: Vec<VarId> = recs[0].serial_vars.clone();
        for r in &recs[1..] {
            let set: HashSet<_> = r.serial_vars.iter().copied().collect();
            common.retain(|v| set.contains(v));
        }
        // try outermost candidates first (biggest shrink)
        'vars: for v in common {
            let mut coef: Option<i64> = None;
            let mut ok = true;
            for r in recs {
                let Some((c, rest)) = split_linear(&r.offset, v) else {
                    ok = false;
                    break;
                };
                if c <= 0 {
                    ok = false;
                    break;
                }
                match coef {
                    None => coef = Some(c),
                    Some(prev) if prev == c => {}
                    _ => {
                        ok = false;
                        break;
                    }
                }
                let Some(ub) = upper_bound(&rest, &extents) else {
                    ok = false;
                    break;
                };
                if ub + r.len as i64 > c {
                    ok = false;
                    break;
                }
            }
            if ok {
                if let Some(c) = coef {
                    func.locals[local].elems = c as usize;
                    rewrites.push((local, v));
                    shrunk += 1;
                    break 'vars;
                }
            }
        }
    }

    // apply rewrites: drop the v-term in offsets of views on each local
    for (local, v) in rewrites {
        let body = std::mem::take(&mut func.body);
        func.body = body
            .into_iter()
            .map(|s| drop_term_stmt(s, local, v))
            .collect();
    }
    ShrinkStats {
        shrunk,
        bytes_before,
        bytes_after: func.local_bytes(),
    }
}

fn drop_term_stmt(s: Stmt, local: usize, v: VarId) -> Stmt {
    match s {
        Stmt::For {
            var,
            extent,
            parallel,
            body,
        } => Stmt::For {
            var,
            extent,
            parallel,
            body: body
                .into_iter()
                .map(|b| drop_term_stmt(b, local, v))
                .collect(),
        },
        Stmt::Op(i) => {
            // only offsets of views on `local` lose the v*coef term
            let needs = crate::visit::intrinsic_accesses(&i)
                .iter()
                .any(|a| a.buf == BufId::Local(local) && a.offset.uses(v));
            if !needs {
                return Stmt::Op(i);
            }
            // map each view individually: subtract the term by
            // re-splitting; non-local views stay unchanged
            Stmt::Op(map_views(i, &|view: crate::ir::View| {
                if view.buf == BufId::Local(local) {
                    if let Some((_, rest)) = split_linear(&view.offset, v) {
                        return crate::ir::View {
                            buf: view.buf,
                            offset: rest,
                            len: view.len,
                        };
                    }
                }
                view
            }))
        }
    }
}

/// Map every view (but not raw buf references) of an intrinsic.
fn map_views(
    i: crate::ir::Intrinsic,
    f: &impl Fn(crate::ir::View) -> crate::ir::View,
) -> crate::ir::Intrinsic {
    // Reuse map_intrinsic_exprs is expression-level; we need view-level.
    use crate::ir::Intrinsic as I;
    macro_rules! v {
        ($x:expr) => {
            f($x)
        };
    }
    match i {
        I::BrgemmF32 {
            a,
            a_stride,
            b,
            b_stride,
            c,
            m,
            n,
            k,
            batch,
        } => I::BrgemmF32 {
            a: v!(a),
            a_stride,
            b: v!(b),
            b_stride,
            c: v!(c),
            m,
            n,
            k,
            batch,
        },
        I::BrgemmU8I8 {
            a,
            a_stride,
            b,
            b_stride,
            c,
            m,
            n,
            k,
            batch,
        } => I::BrgemmU8I8 {
            a: v!(a),
            a_stride,
            b: v!(b),
            b_stride,
            c: v!(c),
            m,
            n,
            k,
            batch,
        },
        I::FillF32 { dst, value } => I::FillF32 {
            dst: v!(dst),
            value,
        },
        I::ZeroI32 { dst } => I::ZeroI32 { dst: v!(dst) },
        I::Pack2D {
            src,
            src_offset,
            src_row_stride,
            src_col_stride,
            dst,
            rows,
            cols,
        } => I::Pack2D {
            src,
            src_offset,
            src_row_stride,
            src_col_stride,
            dst: v!(dst),
            rows,
            cols,
        },
        I::Unpack2D {
            src,
            dst,
            dst_offset,
            dst_row_stride,
            dst_col_stride,
            rows,
            cols,
        } => I::Unpack2D {
            src: v!(src),
            dst,
            dst_offset,
            dst_row_stride,
            dst_col_stride,
            rows,
            cols,
        },
        I::Pack2DPad {
            src,
            src_offset,
            src_row_stride,
            src_col_stride,
            dst,
            rows,
            cols,
            row_clamp,
            col_clamp,
        } => I::Pack2DPad {
            src,
            src_offset,
            src_row_stride,
            src_col_stride,
            dst: v!(dst),
            rows,
            cols,
            row_clamp,
            col_clamp,
        },
        I::Unpack2DClamp {
            src,
            dst,
            dst_offset,
            dst_row_stride,
            dst_col_stride,
            rows,
            cols,
            row_clamp,
            col_clamp,
        } => I::Unpack2DClamp {
            src: v!(src),
            dst,
            dst_offset,
            dst_row_stride,
            dst_col_stride,
            rows,
            cols,
            row_clamp,
            col_clamp,
        },
        I::BrgemmF32Tail {
            a,
            a_stride,
            b,
            b_stride,
            c,
            m,
            n,
            k,
            batch,
            m_clamp,
        } => I::BrgemmF32Tail {
            a: v!(a),
            a_stride,
            b: v!(b),
            b_stride,
            c: v!(c),
            m,
            n,
            k,
            batch,
            m_clamp,
        },
        I::BrgemmU8I8Tail {
            a,
            a_stride,
            b,
            b_stride,
            c,
            m,
            n,
            k,
            batch,
            m_clamp,
        } => I::BrgemmU8I8Tail {
            a: v!(a),
            a_stride,
            b: v!(b),
            b_stride,
            c: v!(c),
            m,
            n,
            k,
            batch,
            m_clamp,
        },
        I::Unary { op, src, dst } => I::Unary {
            op,
            src: v!(src),
            dst: v!(dst),
        },
        I::Binary { op, a, b, dst } => I::Binary {
            op,
            a: v!(a),
            b: v!(b),
            dst: v!(dst),
        },
        I::BinaryScalar { op, a, scalar, dst } => I::BinaryScalar {
            op,
            a: v!(a),
            scalar,
            dst: v!(dst),
        },
        I::BinaryRowBcast {
            op,
            a,
            b,
            dst,
            rows,
            cols,
        } => I::BinaryRowBcast {
            op,
            a: v!(a),
            b: v!(b),
            dst: v!(dst),
            rows,
            cols,
        },
        I::BinaryColBcast {
            op,
            a,
            b,
            dst,
            rows,
            cols,
        } => I::BinaryColBcast {
            op,
            a: v!(a),
            b: v!(b),
            dst: v!(dst),
            rows,
            cols,
        },
        I::ReduceRows {
            op,
            src,
            acc,
            rows,
            cols,
            accumulate,
        } => I::ReduceRows {
            op,
            src: v!(src),
            acc: v!(acc),
            rows,
            cols,
            accumulate,
        },
        I::DequantAcc {
            acc,
            comp,
            a_zero,
            scale,
            bias,
            dst,
            rows,
            cols,
        } => I::DequantAcc {
            acc: v!(acc),
            comp: v!(comp),
            a_zero,
            scale,
            bias: bias.map(f),
            dst: v!(dst),
            rows,
            cols,
        },
        I::QuantU8 {
            src,
            dst,
            scale,
            zero_point,
        } => I::QuantU8 {
            src: v!(src),
            dst: v!(dst),
            scale,
            zero_point,
        },
        I::DequantU8 {
            src,
            dst,
            scale,
            zero_point,
        } => I::DequantU8 {
            src: v!(src),
            dst: v!(dst),
            scale,
            zero_point,
        },
        I::DequantI8 { src, dst, scale } => I::DequantI8 {
            src: v!(src),
            dst: v!(dst),
            scale,
        },
        I::CompAccumulate {
            b_tile,
            comp,
            nb,
            kb,
        } => I::CompAccumulate {
            b_tile: v!(b_tile),
            comp: v!(comp),
            nb,
            kb,
        },
        I::CastI32F32 { src, dst } => I::CastI32F32 {
            src: v!(src),
            dst: v!(dst),
        },
        I::AddF32 { src, dst } => I::AddF32 {
            src: v!(src),
            dst: v!(dst),
        },
        I::AddI32 { src, dst } => I::AddI32 {
            src: v!(src),
            dst: v!(dst),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{BufDecl, Intrinsic, View};
    use gc_microkernel::UnaryOp;
    use gc_tensor::DataType;

    #[test]
    fn split_linear_basic() {
        let v = VarId(0);
        // v*8 + 3
        let e = Expr::v(v).mul(Expr::c(8)).add(Expr::c(3));
        let (c, r) = split_linear(&e, v).unwrap();
        assert_eq!(c, 8);
        assert_eq!(r, Expr::c(3));
        // independent
        let e2 = Expr::v(VarId(1)).mul(Expr::c(4));
        let (c2, _) = split_linear(&e2, v).unwrap();
        assert_eq!(c2, 0);
    }

    #[test]
    fn shrinks_per_iteration_buffer() {
        // local written and read per msi iteration, indexed msi*16 + inner
        let (msi, inner) = (VarId(0), VarId(1));
        let mut f = Func {
            name: "f".into(),
            params: vec![BufDecl::new(DataType::F32, 64, "io")],
            locals: vec![BufDecl::new(DataType::F32, 64, "aprime")],
            var_count: 2,
            body: vec![Stmt::loop_(
                msi,
                4,
                vec![Stmt::loop_(
                    inner,
                    2,
                    vec![
                        Stmt::Op(Intrinsic::Unary {
                            op: UnaryOp::Relu,
                            src: View::new(
                                BufId::Param(0),
                                Expr::v(msi)
                                    .mul(Expr::c(16))
                                    .add(Expr::v(inner).mul(Expr::c(8))),
                                8,
                            ),
                            dst: View::new(
                                BufId::Local(0),
                                Expr::v(msi)
                                    .mul(Expr::c(16))
                                    .add(Expr::v(inner).mul(Expr::c(8))),
                                8,
                            ),
                        }),
                        Stmt::Op(Intrinsic::Unary {
                            op: UnaryOp::Identity,
                            src: View::new(
                                BufId::Local(0),
                                Expr::v(msi)
                                    .mul(Expr::c(16))
                                    .add(Expr::v(inner).mul(Expr::c(8))),
                                8,
                            ),
                            dst: View::new(
                                BufId::Param(0),
                                Expr::v(msi)
                                    .mul(Expr::c(16))
                                    .add(Expr::v(inner).mul(Expr::c(8))),
                                8,
                            ),
                        }),
                    ],
                )],
            )],
        };
        let stats = shrink_locals(&mut f);
        assert_eq!(stats.shrunk, 1);
        assert_eq!(f.locals[0].elems, 16);
        // offsets on the local no longer mention msi
        let mut saw_local = false;
        crate::visit::visit_intrinsics(&f.body, &mut |i| {
            for a in intrinsic_accesses(i) {
                if a.buf == BufId::Local(0) {
                    saw_local = true;
                    assert!(!a.offset.uses(msi));
                    assert!(a.offset.uses(inner));
                }
                if a.buf == BufId::Param(0) {
                    assert!(a.offset.uses(msi), "param offsets untouched");
                }
            }
        });
        assert!(saw_local);
    }

    #[test]
    fn parallel_var_never_dropped() {
        let p = VarId(0);
        let mut f = Func {
            name: "f".into(),
            params: vec![BufDecl::new(DataType::F32, 64, "io")],
            locals: vec![BufDecl::new(DataType::F32, 64, "t")],
            var_count: 1,
            body: vec![Stmt::parallel(
                p,
                4,
                vec![Stmt::Op(Intrinsic::Unary {
                    op: UnaryOp::Relu,
                    src: View::new(BufId::Param(0), Expr::v(p).mul(Expr::c(16)), 16),
                    dst: View::new(BufId::Local(0), Expr::v(p).mul(Expr::c(16)), 16),
                })],
            )],
        };
        let stats = shrink_locals(&mut f);
        assert_eq!(stats.shrunk, 0);
        assert_eq!(f.locals[0].elems, 64);
    }

    #[test]
    fn window_overflow_blocks_shrink() {
        // iteration window larger than the stride: cannot shrink
        let v = VarId(0);
        let mut f = Func {
            name: "f".into(),
            params: vec![BufDecl::new(DataType::F32, 64, "io")],
            locals: vec![BufDecl::new(DataType::F32, 64, "t")],
            var_count: 1,
            body: vec![Stmt::loop_(
                v,
                4,
                vec![Stmt::Op(Intrinsic::Unary {
                    op: UnaryOp::Relu,
                    src: View::new(BufId::Param(0), Expr::v(v).mul(Expr::c(8)), 16),
                    dst: View::new(BufId::Local(0), Expr::v(v).mul(Expr::c(8)), 16),
                })],
            )],
        };
        let stats = shrink_locals(&mut f);
        assert_eq!(stats.shrunk, 0);
    }

    #[test]
    fn shrunk_function_still_executes_correctly() {
        use gc_runtime::ThreadPool;
        use gc_tensor::Storage;
        // build the same function twice, shrink one, compare outputs
        let build = || {
            let (msi, _) = (VarId(0), VarId(1));
            Func {
                name: "f".into(),
                params: vec![
                    BufDecl::new(DataType::F32, 32, "in"),
                    BufDecl::new(DataType::F32, 32, "out"),
                ],
                locals: vec![BufDecl::new(DataType::F32, 32, "t")],
                var_count: 1,
                body: vec![Stmt::loop_(
                    msi,
                    4,
                    vec![
                        Stmt::Op(Intrinsic::Unary {
                            op: UnaryOp::Square,
                            src: View::new(BufId::Param(0), Expr::v(msi).mul(Expr::c(8)), 8),
                            dst: View::new(BufId::Local(0), Expr::v(msi).mul(Expr::c(8)), 8),
                        }),
                        Stmt::Op(Intrinsic::Unary {
                            op: UnaryOp::Neg,
                            src: View::new(BufId::Local(0), Expr::v(msi).mul(Expr::c(8)), 8),
                            dst: View::new(BufId::Param(1), Expr::v(msi).mul(Expr::c(8)), 8),
                        }),
                    ],
                )],
            }
        };
        let run = |f: Func| {
            let mut m = crate::ir::Module::new();
            let fi = m.add_func(f);
            m.add_global(crate::ir::GlobalDecl {
                dtype: DataType::F32,
                elems: 32,
                kind: crate::ir::GlobalKind::Input(0),
                name: "in".into(),
            });
            m.add_global(crate::ir::GlobalDecl {
                dtype: DataType::F32,
                elems: 32,
                kind: crate::ir::GlobalKind::Output(0),
                name: "out".into(),
            });
            m.main_calls.push(crate::ir::Call {
                func: fi,
                args: vec![0, 1],
            });
            let mut globals = vec![
                Storage::F32((0..32).map(|i| i as f32 - 16.0).collect()),
                Storage::F32(vec![0.; 32]),
            ];
            crate::exec::run_module(&m, &mut globals, &ThreadPool::new(1), true).unwrap();
            globals[1].as_slice::<f32>().unwrap().to_vec()
        };
        let plain = run(build());
        let mut shrunk_f = build();
        let stats = shrink_locals(&mut shrunk_f);
        assert_eq!(stats.shrunk, 1);
        assert_eq!(shrunk_f.locals[0].elems, 8);
        assert_eq!(run(shrunk_f), plain);
    }
}
