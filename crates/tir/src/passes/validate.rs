//! TIR validator: the compiler policing its own rewrites.
//!
//! Every Tensor IR pass (tensor shrinking, buffer reuse, loop merging)
//! rewrites buffers and offsets that the executor later dereferences
//! without bounds checks in release builds. A pass bug therefore does
//! not crash — it silently reads or clobbers neighbouring tensors. This
//! module makes the pipeline fail loudly instead:
//!
//! - [`validate_func`] / [`validate_module`] check structural sanity
//!   after a pass: def-before-use of loop variables, buffer indices in
//!   range, no references to orphaned (zero-sized) buffers, and — via
//!   the same interval analysis the plan compiler uses for bounds
//!   hoisting — that no access can escape its buffer for any iteration.
//!   Dtype/arity agreement is checked by running the plan builder and
//!   promoting its fatal rejects (`OutOfBounds`, `DtypeMismatch`,
//!   `LenMismatch`) to validation errors; its benign rejects
//!   (`TooManyVars`, `Unbounded`, `ProgramTooDeep`) merely route the
//!   function to the interpreter and are not correctness bugs.
//! - [`check_func_reuse`] / [`check_module_reuse`] verify that a
//!   buffer-merging pass preserved dataflow: they value-number reads
//!   against their defining writes in the module before and after the
//!   pass, and reject the rewrite if any read now observes a different
//!   definition — the observable symptom of merging two buffers whose
//!   live ranges overlap.
//!
//! The lowering pipeline runs these after every pass and names the
//! guilty pass in the error, so a miscompile is caught at compile time
//! with a pass name attached instead of shipping garbage.

use crate::compile::{interval, probe_func, Reject};
use crate::expr::Expr;
use crate::ir::{BufId, Func, GlobalKind, Module, Stmt};
use crate::visit::intrinsic_accesses;
use std::collections::HashMap;
use std::fmt;

/// A validation failure, rendered with enough context (function, call,
/// buffer) to locate the miscompile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidateError(pub String);

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ValidateError {}

fn err<T>(msg: String) -> Result<T, ValidateError> {
    Err(ValidateError(msg))
}

fn visit_expr_vars(e: &Expr, f: &mut impl FnMut(usize)) {
    match e {
        Expr::Const(_) => {}
        Expr::Var(v) => f(v.0),
        Expr::Add(a, b) | Expr::Mul(a, b) | Expr::Div(a, b) | Expr::Rem(a, b) => {
            visit_expr_vars(a, f);
            visit_expr_vars(b, f);
        }
    }
}

/// Per-variable state during the structural walk, mirroring the plan
/// builder's scope discipline so bounds verdicts agree with what the
/// compiled plan will actually do.
struct VarState {
    /// Inclusive interval at the current emission point.
    iv: Vec<(i64, i64)>,
    /// Bound by some loop already executed or enclosing.
    bound: Vec<bool>,
    /// Currently bound by an *enclosing* loop (rebinding is an error).
    active: Vec<bool>,
}

/// Validate one function: loop-variable def-before-use, buffer indices
/// in range, no references to orphaned buffers, and interval-provable
/// in-bounds accesses. Dtype/arity agreement is delegated to the plan
/// builder (fatal rejects only).
///
/// # Errors
///
/// Returns a message describing the first violation.
pub fn validate_func(f: &Func) -> Result<(), ValidateError> {
    let mut vs = VarState {
        iv: vec![(0, 0); f.var_count],
        bound: vec![false; f.var_count],
        active: vec![false; f.var_count],
    };
    walk_stmts(f, &f.body, &mut vs)?;
    // Plan-builder backstop: dtype and operand-arity agreement, plus
    // bounds through the exact span decomposition the compiler uses.
    match probe_func(f) {
        Ok(())
        | Err(Reject::TooManyVars)
        | Err(Reject::Unbounded)
        | Err(Reject::ProgramTooDeep) => Ok(()),
        Err(Reject::OutOfBounds) => err(format!(
            "func {}: plan builder proves an out-of-bounds access",
            f.name
        )),
        Err(Reject::DtypeMismatch) => err(format!(
            "func {}: buffer dtype disagrees with an intrinsic's access type",
            f.name
        )),
        Err(Reject::LenMismatch) => err(format!(
            "func {}: intrinsic operand lengths disagree",
            f.name
        )),
    }
}

fn walk_stmts(f: &Func, stmts: &[Stmt], vs: &mut VarState) -> Result<(), ValidateError> {
    for s in stmts {
        match s {
            Stmt::For {
                var,
                extent,
                parallel,
                body,
            } => {
                let v = var.0;
                if v >= f.var_count {
                    return err(format!(
                        "func {}: loop variable v{} out of range (var_count {})",
                        f.name, v, f.var_count
                    ));
                }
                if vs.active[v] {
                    return err(format!(
                        "func {}: loop rebinds variable v{v} already bound by an enclosing loop",
                        f.name
                    ));
                }
                let saved_iv = vs.iv[v];
                let saved_bound = vs.bound[v];
                let last = *extent as i64 - 1;
                vs.iv[v] = (0, last.max(0));
                vs.bound[v] = true;
                vs.active[v] = true;
                walk_stmts(f, body, vs)?;
                vs.active[v] = false;
                if *extent == 0 {
                    // zero-trip loop never touches the variable
                    vs.iv[v] = saved_iv;
                    vs.bound[v] = saved_bound;
                } else if *parallel {
                    // dispatched form leaves the var untouched; the
                    // serial fallback pins it to `last` — keep the hull
                    vs.iv[v] = (saved_iv.0.min(last), saved_iv.1.max(last));
                } else {
                    vs.iv[v] = (last, last);
                }
            }
            Stmt::Op(intr) => {
                for a in intrinsic_accesses(intr) {
                    check_access(f, &a, vs)?;
                }
                // Axis-clamp bases are real runtime indices excluded
                // from the access offsets above: def-before-use and
                // non-negativity must be proven separately (the upper
                // side is enforced by the runtime clamp).
                for base in crate::visit::intrinsic_clamp_bases(intr) {
                    check_clamp_base(f, base, vs)?;
                }
            }
        }
    }
    Ok(())
}

fn check_access(f: &Func, a: &crate::visit::Access, vs: &VarState) -> Result<(), ValidateError> {
    let mut bad_var = None;
    visit_expr_vars(&a.offset, &mut |v| {
        if bad_var.is_none() && (v >= f.var_count || !vs.bound[v]) {
            bad_var = Some(v);
        }
    });
    if let Some(v) = bad_var {
        return err(format!(
            "func {}: offset uses variable v{v} before any loop binds it",
            f.name
        ));
    }
    let (name, elems) = match a.buf {
        BufId::Param(p) => match f.params.get(p) {
            Some(d) => (d.name.as_str(), d.elems),
            None => {
                return err(format!(
                    "func {}: access to unknown param {p} ({} declared)",
                    f.name,
                    f.params.len()
                ))
            }
        },
        BufId::Local(l) => match f.locals.get(l) {
            Some(d) => (d.name.as_str(), d.elems),
            None => {
                return err(format!(
                    "func {}: access to unknown local {l} ({} declared)",
                    f.name,
                    f.locals.len()
                ))
            }
        },
    };
    if a.len == 0 {
        return Ok(());
    }
    if elems == 0 {
        return err(format!(
            "func {}: access to orphaned zero-sized buffer {name}",
            f.name
        ));
    }
    if let Some((lo, hi)) = interval(&a.offset, &vs.iv) {
        if lo < 0 {
            return err(format!(
                "func {}: offset of {name} can go negative (min {lo})",
                f.name
            ));
        }
        if hi as i128 + a.len as i128 > elems as i128 {
            return err(format!(
                "func {}: access to {name} can reach element {} but the buffer holds {elems}",
                f.name,
                hi as i128 + a.len as i128 - 1
            ));
        }
    }
    Ok(())
}

fn check_clamp_base(f: &Func, base: &Expr, vs: &VarState) -> Result<(), ValidateError> {
    let mut bad_var = None;
    visit_expr_vars(base, &mut |v| {
        if bad_var.is_none() && (v >= f.var_count || !vs.bound[v]) {
            bad_var = Some(v);
        }
    });
    if let Some(v) = bad_var {
        return err(format!(
            "func {}: clamp base uses variable v{v} before any loop binds it",
            f.name
        ));
    }
    if let Some((lo, _)) = interval(base, &vs.iv) {
        if lo < 0 {
            return err(format!(
                "func {}: clamp base can go negative (min {lo})",
                f.name
            ));
        }
    }
    Ok(())
}

/// Which way a function uses each of its parameters, at whole-buffer
/// granularity and in traversal order.
#[derive(Debug, Clone, Copy, Default)]
struct ParamUse {
    reads: bool,
    writes: bool,
    /// The first access in traversal order is a read (so the call
    /// observes the caller-visible value before overwriting it).
    read_first: bool,
}

fn param_usage(f: &Func) -> Vec<ParamUse> {
    let mut use_ = vec![ParamUse::default(); f.params.len()];
    fn go(stmts: &[Stmt], use_: &mut [ParamUse]) {
        for s in stmts {
            match s {
                Stmt::For { body, .. } => go(body, use_),
                Stmt::Op(i) => {
                    for a in intrinsic_accesses(i) {
                        if let BufId::Param(p) = a.buf {
                            let u = &mut use_[p];
                            if !u.reads && !u.writes {
                                u.read_first = !a.write;
                            }
                            if a.write {
                                u.writes = true;
                            } else {
                                u.reads = true;
                            }
                        }
                    }
                }
            }
        }
    }
    go(&f.body, &mut use_);
    use_
}

/// Validate a whole module: structural checks ([`Module::validate`]),
/// every function ([`validate_func`]), and module-level buffer
/// def-before-use — no call may read a scratch or output global that no
/// earlier call (init calls included) has written.
///
/// # Errors
///
/// Returns a message describing the first violation.
pub fn validate_module(m: &Module) -> Result<(), ValidateError> {
    m.validate().map_err(ValidateError)?;
    for f in &m.funcs {
        validate_func(f)?;
    }
    let usages: Vec<Vec<ParamUse>> = m.funcs.iter().map(param_usage).collect();
    let mut written: Vec<bool> = m
        .globals
        .iter()
        .map(|g| !matches!(g.kind, GlobalKind::Scratch | GlobalKind::Output(_)))
        .collect();
    for (seq, call) in m.init_calls.iter().chain(&m.main_calls).enumerate() {
        let usage = &usages[call.func];
        for (p, &g) in call.args.iter().enumerate() {
            let u = usage[p];
            if u.reads && !written[g] && (u.read_first || !u.writes) {
                return err(format!(
                    "call {seq} ({}): reads global {} before any call writes it",
                    m.funcs[call.func].name, m.globals[g].name
                ));
            }
        }
        for (p, &g) in call.args.iter().enumerate() {
            if usage[p].writes {
                written[g] = true;
            }
        }
    }
    Ok(())
}

/// The value a read observes, at whole-buffer granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Val {
    /// The global's external/initial contents (index identifies it).
    Ext(usize),
    /// Written by call `seq`'s parameter `param`.
    Def(usize, usize),
}

fn observations(m: &Module, usages: &[Vec<ParamUse>]) -> Vec<(usize, usize, Val)> {
    let mut val: Vec<Val> = (0..m.globals.len()).map(Val::Ext).collect();
    let mut out = Vec::new();
    for (seq, call) in m.init_calls.iter().chain(&m.main_calls).enumerate() {
        let usage = &usages[call.func];
        for (p, &g) in call.args.iter().enumerate() {
            if usage[p].reads {
                out.push((seq, p, val[g]));
            }
        }
        for (p, &g) in call.args.iter().enumerate() {
            if usage[p].writes {
                val[g] = Val::Def(seq, p);
            }
        }
    }
    out
}

/// Verify that a module-level buffer-merging pass (scratch reuse)
/// preserved dataflow: every read in `after` must observe the value
/// written by the same defining call as in `before`. Merging two
/// globals whose live ranges overlap makes some read observe a later
/// write — exactly what this catches.
///
/// # Errors
///
/// Returns a message naming the first call whose read changed meaning.
pub fn check_module_reuse(before: &Module, after: &Module) -> Result<(), ValidateError> {
    if before.funcs.len() != after.funcs.len()
        || before.init_calls.len() != after.init_calls.len()
        || before.main_calls.len() != after.main_calls.len()
    {
        return err("reuse pass changed the module's call structure".into());
    }
    let usages: Vec<Vec<ParamUse>> = before.funcs.iter().map(param_usage).collect();
    let obs_b = observations(before, &usages);
    let obs_a = observations(after, &usages);
    if obs_b.len() != obs_a.len() {
        return err("reuse pass changed the module's access structure".into());
    }
    for ((seq, p, vb), (_, _, va)) in obs_b.iter().zip(&obs_a) {
        if vb != va {
            let call = before
                .init_calls
                .iter()
                .chain(&before.main_calls)
                .nth(*seq)
                .expect("observation seq in range");
            return err(format!(
                "buffer reuse overlapped live ranges: call {seq} ({}) param {p} \
                 read {:?} before the pass but {:?} after",
                before.funcs[call.func].name, vb, va
            ));
        }
    }
    Ok(())
}

fn access_trace(f: &Func) -> Vec<(BufId, bool)> {
    let mut out = Vec::new();
    fn go(stmts: &[Stmt], out: &mut Vec<(BufId, bool)>) {
        for s in stmts {
            match s {
                Stmt::For { body, .. } => go(body, out),
                Stmt::Op(i) => {
                    for a in intrinsic_accesses(i) {
                        out.push((a.buf, a.write));
                    }
                }
            }
        }
    }
    go(&f.body, &mut out);
    out
}

fn read_defs(trace: &[(BufId, bool)]) -> Vec<Option<usize>> {
    let mut last: HashMap<BufId, usize> = HashMap::new();
    let mut out = Vec::new();
    for (i, &(buf, write)) in trace.iter().enumerate() {
        if write {
            last.insert(buf, i);
        } else {
            out.push(last.get(&buf).copied());
        }
    }
    out
}

/// Function-level counterpart of [`check_module_reuse`]: verify that a
/// local-merging or offset-rewriting pass preserved each read's
/// defining write. Accesses are paired positionally (the passes rename
/// buffers and rewrite offsets but keep the access structure), and each
/// read must resolve to the write at the same trace position before and
/// after.
///
/// # Errors
///
/// Returns a message naming the first read whose definition changed.
pub fn check_func_reuse(before: &Func, after: &Func) -> Result<(), ValidateError> {
    let tb = access_trace(before);
    let ta = access_trace(after);
    if tb.len() != ta.len() || tb.iter().zip(&ta).any(|(b, a)| b.1 != a.1) {
        return err(format!(
            "func {}: pass changed the access structure",
            before.name
        ));
    }
    let db = read_defs(&tb);
    let da = read_defs(&ta);
    for (i, (b, a)) in db.iter().zip(&da).enumerate() {
        if b != a {
            return err(format!(
                "func {}: buffer merge overlapped live ranges — read #{i} was defined \
                 by write at {:?} before the pass but {:?} after",
                before.name, b, a
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::VarId;
    use crate::ir::{BufDecl, Call, GlobalDecl, Intrinsic, View};
    use gc_microkernel::UnaryOp;
    use gc_tensor::DataType;

    fn unary(src: View, dst: View) -> Stmt {
        Stmt::Op(Intrinsic::Unary {
            op: UnaryOp::Relu,
            src,
            dst,
        })
    }

    fn io_func(elems: usize, body: Vec<Stmt>, var_count: usize, locals: Vec<BufDecl>) -> Func {
        Func {
            name: "f".into(),
            params: vec![
                BufDecl::new(DataType::F32, elems, "in"),
                BufDecl::new(DataType::F32, elems, "out"),
            ],
            locals,
            var_count,
            body,
        }
    }

    #[test]
    fn accepts_in_bounds_loop() {
        let v = VarId(0);
        let f = io_func(
            32,
            vec![Stmt::loop_(
                v,
                8,
                vec![unary(
                    View::new(BufId::Param(0), Expr::v(v).mul(Expr::c(4)), 4),
                    View::new(BufId::Param(1), Expr::v(v).mul(Expr::c(4)), 4),
                )],
            )],
            1,
            vec![],
        );
        validate_func(&f).unwrap();
    }

    #[test]
    fn rejects_out_of_bounds_loop() {
        let v = VarId(0);
        // extent 9: max offset 32, 32 + 4 > 32
        let f = io_func(
            32,
            vec![Stmt::loop_(
                v,
                9,
                vec![unary(
                    View::new(BufId::Param(0), Expr::v(v).mul(Expr::c(4)), 4),
                    View::new(BufId::Param(1), Expr::v(v).mul(Expr::c(4)), 4),
                )],
            )],
            1,
            vec![],
        );
        let e = validate_func(&f).unwrap_err();
        assert!(e.0.contains("can reach element"), "{e}");
    }

    #[test]
    fn rejects_negative_offset() {
        let f = io_func(
            32,
            vec![unary(
                View::new(BufId::Param(0), Expr::c(-4), 4),
                View::new(BufId::Param(1), 0usize, 4),
            )],
            0,
            vec![],
        );
        let e = validate_func(&f).unwrap_err();
        assert!(e.0.contains("negative"), "{e}");
    }

    #[test]
    fn rejects_unbound_variable_use() {
        // v0 used outside any loop that binds it
        let f = io_func(
            32,
            vec![unary(
                View::new(BufId::Param(0), Expr::v(VarId(0)), 4),
                View::new(BufId::Param(1), 0usize, 4),
            )],
            1,
            vec![],
        );
        let e = validate_func(&f).unwrap_err();
        assert!(e.0.contains("before any loop binds it"), "{e}");
    }

    #[test]
    fn allows_pinned_variable_after_serial_loop() {
        let v = VarId(0);
        // after `for v in 0..8`, v stays 7; offset 7*4=28, 28+4 <= 32
        let f = io_func(
            32,
            vec![
                Stmt::loop_(
                    v,
                    8,
                    vec![unary(
                        View::new(BufId::Param(0), Expr::v(v).mul(Expr::c(4)), 4),
                        View::new(BufId::Param(1), Expr::v(v).mul(Expr::c(4)), 4),
                    )],
                ),
                unary(
                    View::new(BufId::Param(0), Expr::v(v).mul(Expr::c(4)), 4),
                    View::new(BufId::Param(1), Expr::v(v).mul(Expr::c(4)), 4),
                ),
            ],
            1,
            vec![],
        );
        validate_func(&f).unwrap();
    }

    #[test]
    fn rejects_rebinding_live_variable() {
        let v = VarId(0);
        let f = io_func(
            64,
            vec![Stmt::loop_(
                v,
                4,
                vec![Stmt::loop_(
                    v,
                    4,
                    vec![unary(
                        View::new(BufId::Param(0), Expr::v(v), 4),
                        View::new(BufId::Param(1), Expr::v(v), 4),
                    )],
                )],
            )],
            1,
            vec![],
        );
        let e = validate_func(&f).unwrap_err();
        assert!(e.0.contains("rebinds"), "{e}");
    }

    #[test]
    fn rejects_orphan_buffer_reference() {
        let f = io_func(
            32,
            vec![unary(
                View::new(BufId::Local(0), 0usize, 4),
                View::new(BufId::Param(1), 0usize, 4),
            )],
            0,
            vec![BufDecl::new(DataType::U8, 0, "orphan")],
        );
        let e = validate_func(&f).unwrap_err();
        assert!(e.0.contains("orphaned"), "{e}");
    }

    #[test]
    fn rejects_dtype_mismatch_via_plan_builder() {
        let mut f = io_func(
            32,
            vec![unary(
                View::new(BufId::Param(0), 0usize, 4),
                View::new(BufId::Param(1), 0usize, 4),
            )],
            0,
            vec![],
        );
        f.params[0].dtype = DataType::I8;
        let e = validate_func(&f).unwrap_err();
        assert!(e.0.contains("dtype"), "{e}");
    }

    fn scratch(elems: usize, name: &str) -> GlobalDecl {
        GlobalDecl {
            dtype: DataType::F32,
            elems,
            kind: GlobalKind::Scratch,
            name: name.into(),
        }
    }

    fn copy_func(elems: usize) -> Func {
        io_func(
            elems,
            vec![unary(
                View::new(BufId::Param(0), 0usize, elems),
                View::new(BufId::Param(1), 0usize, elems),
            )],
            0,
            vec![],
        )
    }

    fn pipeline_module() -> (Module, usize, usize, usize) {
        // in -> t0 -> t1 -> out
        let mut m = Module::new();
        let f = m.add_func(copy_func(8));
        let input = m.add_global(GlobalDecl {
            dtype: DataType::F32,
            elems: 8,
            kind: GlobalKind::Input(0),
            name: "in".into(),
        });
        let t0 = m.add_global(scratch(8, "t0"));
        let t1 = m.add_global(scratch(8, "t1"));
        let out = m.add_global(GlobalDecl {
            dtype: DataType::F32,
            elems: 8,
            kind: GlobalKind::Output(0),
            name: "out".into(),
        });
        for (a, b) in [(input, t0), (t0, t1), (t1, out)] {
            m.main_calls.push(Call {
                func: f,
                args: vec![a, b],
            });
        }
        (m, t0, t1, out)
    }

    #[test]
    fn validates_module_and_catches_uninitialized_scratch_read() {
        let (m, t0, _, _) = pipeline_module();
        validate_module(&m).unwrap();
        // drop the call that writes t0: the next call reads zeros
        let mut bad = m.clone();
        bad.main_calls.remove(0);
        let e = validate_module(&bad).unwrap_err();
        assert!(e.0.contains("before any call writes it"), "{e}");
        let _ = t0;
    }

    #[test]
    fn module_reuse_overlap_is_detected() {
        // in -> t0; t0 -> t1; (t0, t1 both read) -> out would need a
        // binary op; model it with a third scratch instead:
        // c0: in -> t0, c1: t0 -> t1, c2: t1 -> out, and t0 read again
        // at c3 -> out2. Merging t1 into t0 overlaps t0's live range.
        let mut m = Module::new();
        let f = m.add_func(copy_func(8));
        let input = m.add_global(GlobalDecl {
            dtype: DataType::F32,
            elems: 8,
            kind: GlobalKind::Input(0),
            name: "in".into(),
        });
        let t0 = m.add_global(scratch(8, "t0"));
        let t1 = m.add_global(scratch(8, "t1"));
        let out = m.add_global(GlobalDecl {
            dtype: DataType::F32,
            elems: 8,
            kind: GlobalKind::Output(0),
            name: "out".into(),
        });
        let out2 = m.add_global(GlobalDecl {
            dtype: DataType::F32,
            elems: 8,
            kind: GlobalKind::Output(1),
            name: "out2".into(),
        });
        for (a, b) in [(input, t0), (t0, t1), (t1, out), (t0, out2)] {
            m.main_calls.push(Call {
                func: f,
                args: vec![a, b],
            });
        }
        validate_module(&m).unwrap();
        // a correct reuse pass must NOT merge t1 into t0 (t0 is read at
        // call 3, after t1's write at call 1); forge that bad merge
        let mut bad = m.clone();
        for call in &mut bad.main_calls {
            for a in &mut call.args {
                if *a == t1 {
                    *a = t0;
                }
            }
        }
        check_module_reuse(&m, &m).unwrap();
        let e = check_module_reuse(&m, &bad).unwrap_err();
        assert!(e.0.contains("overlapped live ranges"), "{e}");
    }

    #[test]
    fn func_reuse_overlap_is_detected() {
        // t0 written (stmt0), t1 written (stmt1), t0 read (stmt2):
        // merging t1 into t0 makes the read observe t1's write.
        let mk = |merged: bool| {
            let l1 = if merged { 0 } else { 1 };
            io_func(
                8,
                vec![
                    unary(
                        View::new(BufId::Param(0), 0usize, 8),
                        View::new(BufId::Local(0), 0usize, 8),
                    ),
                    unary(
                        View::new(BufId::Param(0), 0usize, 8),
                        View::new(BufId::Local(l1), 0usize, 8),
                    ),
                    unary(
                        View::new(BufId::Local(0), 0usize, 8),
                        View::new(BufId::Param(1), 0usize, 8),
                    ),
                ],
                0,
                vec![
                    BufDecl::new(DataType::F32, 8, "t0"),
                    BufDecl::new(DataType::F32, 8, "t1"),
                ],
            )
        };
        let before = mk(false);
        let after = mk(true);
        check_func_reuse(&before, &before).unwrap();
        let e = check_func_reuse(&before, &after).unwrap_err();
        assert!(e.0.contains("overlapped live ranges"), "{e}");
    }
}
