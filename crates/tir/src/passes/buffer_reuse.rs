//! Memory-buffer optimization: reuse temporary buffers.
//!
//! "Memory buffer optimization uses life span analysis like traditional
//! compiler analysis for register allocation based on the def-use chain.
//! [...] At each point, when an intermediate buffer is needed, it tries
//! to reuse the free intermediate buffers [...] it chooses the one that
//! was used most recently, so likely the data is still in the cache."
//!
//! Two levels, as in the paper:
//!
//! - **module level** ([`reuse_module_scratch`]): scratch globals
//!   carrying data between fused ops are merged when their live ranges
//!   (call index intervals) are disjoint — inference pipelines reclaim
//!   each activation buffer as soon as its consumer completes;
//! - **function level** ([`reuse_func_locals`]): local temporaries with
//!   disjoint top-level-statement intervals share storage.

use crate::ir::{BufId, Func, GlobalKind, Module, Stmt};
use crate::visit::intrinsic_accesses;
use gc_tensor::DataType;
use std::collections::HashMap;

/// Report of a reuse pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReuseStats {
    /// Buffer bytes before merging.
    pub bytes_before: usize,
    /// Buffer bytes after merging.
    pub bytes_after: usize,
    /// Number of buffers merged away.
    pub merged: usize,
}

/// Merge scratch globals with disjoint live ranges across the module's
/// main call sequence. Rewrites call argument lists in place.
pub fn reuse_module_scratch(module: &mut Module) -> ReuseStats {
    // live range of each scratch global over main_calls
    let mut range: HashMap<usize, (usize, usize)> = HashMap::new();
    for (ci, call) in module.main_calls.iter().enumerate() {
        for &a in &call.args {
            if module.globals[a].kind == GlobalKind::Scratch {
                let e = range.entry(a).or_insert((ci, ci));
                e.0 = e.0.min(ci);
                e.1 = e.1.max(ci);
            }
        }
    }
    let bytes_before: usize = scratch_bytes(module);
    // Greedy linear-scan: process by start; free list keyed by dtype,
    // most recently freed first (hot reuse).
    let mut order: Vec<usize> = range.keys().copied().collect();
    order.sort_by_key(|g| (range[g].0, range[g].1));
    let mut remap: HashMap<usize, usize> = HashMap::new();
    let mut free: Vec<(usize, usize)> = Vec::new(); // (global, free_since_end)
    let mut active: Vec<(usize, usize)> = Vec::new(); // (rep global, end)
    for g in order {
        let (start, end) = range[&g];
        // expire
        active.retain(|&(rep, e)| {
            if e < start {
                free.push((rep, e));
                false
            } else {
                true
            }
        });
        let dt = module.globals[g].dtype;
        let need = module.globals[g].elems;
        // most recently freed compatible rep
        if let Some(pos) = free
            .iter()
            .rposition(|&(rep, _)| module.globals[rep].dtype == dt)
        {
            let (rep, _) = free.remove(pos);
            if module.globals[rep].elems < need {
                module.globals[rep].elems = need;
            }
            remap.insert(g, rep);
            active.push((rep, end));
        } else {
            active.push((g, end));
        }
    }
    // rewrite calls
    let merged = remap.len();
    if merged > 0 {
        for call in module
            .init_calls
            .iter_mut()
            .chain(module.main_calls.iter_mut())
        {
            for a in &mut call.args {
                if let Some(&rep) = remap.get(a) {
                    *a = rep;
                }
            }
        }
        // orphaned globals shrink to zero so they cost nothing
        for (&g, _) in remap.iter() {
            module.globals[g].elems = 0;
        }
    }
    ReuseStats {
        bytes_before,
        bytes_after: scratch_bytes(module),
        merged,
    }
}

fn scratch_bytes(m: &Module) -> usize {
    m.globals
        .iter()
        .filter(|g| g.kind == GlobalKind::Scratch)
        .map(|g| g.elems * g.dtype.size_bytes())
        .sum()
}

/// Merge function locals whose top-level-statement live intervals are
/// disjoint (a loop counts as one interval unit, so buffers live inside
/// the same loop never merge — they may interleave across iterations).
pub fn reuse_func_locals(func: &mut Func) -> ReuseStats {
    let bytes_before = func.local_bytes();
    let n = func.locals.len();
    if n == 0 {
        return ReuseStats {
            bytes_before,
            bytes_after: bytes_before,
            merged: 0,
        };
    }
    // interval per local over top-level statements
    let mut range: HashMap<usize, (usize, usize)> = HashMap::new();
    for (si, stmt) in func.body.iter().enumerate() {
        let mut touch = |l: usize| {
            let e = range.entry(l).or_insert((si, si));
            e.0 = e.0.min(si);
            e.1 = e.1.max(si);
        };
        collect_locals(stmt, &mut touch);
    }
    let mut order: Vec<usize> = range.keys().copied().collect();
    order.sort_by_key(|l| (range[l].0, range[l].1));
    let mut remap: HashMap<usize, usize> = HashMap::new();
    let mut free: Vec<usize> = Vec::new();
    let mut active: Vec<(usize, usize)> = Vec::new();
    for l in order {
        let (start, end) = range[&l];
        active.retain(|&(rep, e)| {
            if e < start {
                free.push(rep);
                false
            } else {
                true
            }
        });
        let dt = func.locals[l].dtype;
        if let Some(pos) = free.iter().rposition(|&rep| func.locals[rep].dtype == dt) {
            let rep = free.remove(pos);
            if func.locals[rep].elems < func.locals[l].elems {
                func.locals[rep].elems = func.locals[l].elems;
            }
            remap.insert(l, rep);
            active.push((rep, end));
        } else {
            active.push((l, end));
        }
    }
    let merged = remap.len();
    if merged > 0 {
        let body = std::mem::take(&mut func.body);
        func.body = body.into_iter().map(|s| remap_stmt(s, &remap)).collect();
        for (&l, _) in remap.iter() {
            func.locals[l].elems = 0;
            func.locals[l].dtype = DataType::U8; // zero-byte placeholder
        }
    }
    ReuseStats {
        bytes_before,
        bytes_after: func.local_bytes(),
        merged,
    }
}

fn collect_locals(stmt: &Stmt, touch: &mut impl FnMut(usize)) {
    match stmt {
        Stmt::For { body, .. } => {
            for s in body {
                collect_locals(s, touch);
            }
        }
        Stmt::Op(i) => {
            for a in intrinsic_accesses(i) {
                if let BufId::Local(l) = a.buf {
                    touch(l);
                }
            }
        }
    }
}

fn remap_stmt(s: Stmt, remap: &HashMap<usize, usize>) -> Stmt {
    match s {
        Stmt::For {
            var,
            extent,
            parallel,
            body,
        } => Stmt::For {
            var,
            extent,
            parallel,
            body: body.into_iter().map(|b| remap_stmt(b, remap)).collect(),
        },
        Stmt::Op(i) => Stmt::Op(remap_intrinsic(i, remap)),
    }
}

fn remap_intrinsic(i: crate::ir::Intrinsic, remap: &HashMap<usize, usize>) -> crate::ir::Intrinsic {
    // map BufIds through the remap table by round-tripping through the
    // expression mapper (which preserves structure) plus a manual buf fix
    use crate::ir::Intrinsic as I;
    let mb = |b: BufId| match b {
        BufId::Local(l) => BufId::Local(*remap.get(&l).unwrap_or(&l)),
        p => p,
    };
    let mv = |v: crate::ir::View| crate::ir::View {
        buf: mb(v.buf),
        offset: v.offset,
        len: v.len,
    };
    match i {
        I::BrgemmF32 {
            a,
            a_stride,
            b,
            b_stride,
            c,
            m,
            n,
            k,
            batch,
        } => I::BrgemmF32 {
            a: mv(a),
            a_stride,
            b: mv(b),
            b_stride,
            c: mv(c),
            m,
            n,
            k,
            batch,
        },
        I::BrgemmU8I8 {
            a,
            a_stride,
            b,
            b_stride,
            c,
            m,
            n,
            k,
            batch,
        } => I::BrgemmU8I8 {
            a: mv(a),
            a_stride,
            b: mv(b),
            b_stride,
            c: mv(c),
            m,
            n,
            k,
            batch,
        },
        I::FillF32 { dst, value } => I::FillF32 {
            dst: mv(dst),
            value,
        },
        I::ZeroI32 { dst } => I::ZeroI32 { dst: mv(dst) },
        I::Pack2D {
            src,
            src_offset,
            src_row_stride,
            src_col_stride,
            dst,
            rows,
            cols,
        } => I::Pack2D {
            src: mb(src),
            src_offset,
            src_row_stride,
            src_col_stride,
            dst: mv(dst),
            rows,
            cols,
        },
        I::Unpack2D {
            src,
            dst,
            dst_offset,
            dst_row_stride,
            dst_col_stride,
            rows,
            cols,
        } => I::Unpack2D {
            src: mv(src),
            dst: mb(dst),
            dst_offset,
            dst_row_stride,
            dst_col_stride,
            rows,
            cols,
        },
        I::Pack2DPad {
            src,
            src_offset,
            src_row_stride,
            src_col_stride,
            dst,
            rows,
            cols,
            row_clamp,
            col_clamp,
        } => I::Pack2DPad {
            src: mb(src),
            src_offset,
            src_row_stride,
            src_col_stride,
            dst: mv(dst),
            rows,
            cols,
            row_clamp,
            col_clamp,
        },
        I::Unpack2DClamp {
            src,
            dst,
            dst_offset,
            dst_row_stride,
            dst_col_stride,
            rows,
            cols,
            row_clamp,
            col_clamp,
        } => I::Unpack2DClamp {
            src: mv(src),
            dst: mb(dst),
            dst_offset,
            dst_row_stride,
            dst_col_stride,
            rows,
            cols,
            row_clamp,
            col_clamp,
        },
        I::BrgemmF32Tail {
            a,
            a_stride,
            b,
            b_stride,
            c,
            m,
            n,
            k,
            batch,
            m_clamp,
        } => I::BrgemmF32Tail {
            a: mv(a),
            a_stride,
            b: mv(b),
            b_stride,
            c: mv(c),
            m,
            n,
            k,
            batch,
            m_clamp,
        },
        I::BrgemmU8I8Tail {
            a,
            a_stride,
            b,
            b_stride,
            c,
            m,
            n,
            k,
            batch,
            m_clamp,
        } => I::BrgemmU8I8Tail {
            a: mv(a),
            a_stride,
            b: mv(b),
            b_stride,
            c: mv(c),
            m,
            n,
            k,
            batch,
            m_clamp,
        },
        I::Unary { op, src, dst } => I::Unary {
            op,
            src: mv(src),
            dst: mv(dst),
        },
        I::Binary { op, a, b, dst } => I::Binary {
            op,
            a: mv(a),
            b: mv(b),
            dst: mv(dst),
        },
        I::BinaryScalar { op, a, scalar, dst } => I::BinaryScalar {
            op,
            a: mv(a),
            scalar,
            dst: mv(dst),
        },
        I::BinaryRowBcast {
            op,
            a,
            b,
            dst,
            rows,
            cols,
        } => I::BinaryRowBcast {
            op,
            a: mv(a),
            b: mv(b),
            dst: mv(dst),
            rows,
            cols,
        },
        I::BinaryColBcast {
            op,
            a,
            b,
            dst,
            rows,
            cols,
        } => I::BinaryColBcast {
            op,
            a: mv(a),
            b: mv(b),
            dst: mv(dst),
            rows,
            cols,
        },
        I::ReduceRows {
            op,
            src,
            acc,
            rows,
            cols,
            accumulate,
        } => I::ReduceRows {
            op,
            src: mv(src),
            acc: mv(acc),
            rows,
            cols,
            accumulate,
        },
        I::DequantAcc {
            acc,
            comp,
            a_zero,
            scale,
            bias,
            dst,
            rows,
            cols,
        } => I::DequantAcc {
            acc: mv(acc),
            comp: mv(comp),
            a_zero,
            scale,
            bias: bias.map(mv),
            dst: mv(dst),
            rows,
            cols,
        },
        I::QuantU8 {
            src,
            dst,
            scale,
            zero_point,
        } => I::QuantU8 {
            src: mv(src),
            dst: mv(dst),
            scale,
            zero_point,
        },
        I::DequantU8 {
            src,
            dst,
            scale,
            zero_point,
        } => I::DequantU8 {
            src: mv(src),
            dst: mv(dst),
            scale,
            zero_point,
        },
        I::DequantI8 { src, dst, scale } => I::DequantI8 {
            src: mv(src),
            dst: mv(dst),
            scale,
        },
        I::CompAccumulate {
            b_tile,
            comp,
            nb,
            kb,
        } => I::CompAccumulate {
            b_tile: mv(b_tile),
            comp: mv(comp),
            nb,
            kb,
        },
        I::CastI32F32 { src, dst } => I::CastI32F32 {
            src: mv(src),
            dst: mv(dst),
        },
        I::AddF32 { src, dst } => I::AddF32 {
            src: mv(src),
            dst: mv(dst),
        },
        I::AddI32 { src, dst } => I::AddI32 {
            src: mv(src),
            dst: mv(dst),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::ir::{BufDecl, Call, GlobalDecl, Intrinsic, View};
    use gc_microkernel::UnaryOp;

    fn scratch(elems: usize, name: &str) -> GlobalDecl {
        GlobalDecl {
            dtype: DataType::F32,
            elems,
            kind: GlobalKind::Scratch,
            name: name.to_string(),
        }
    }

    fn passthrough_func(elems: usize) -> Func {
        Func {
            name: "copy".into(),
            params: vec![
                BufDecl::new(DataType::F32, elems, "in"),
                BufDecl::new(DataType::F32, elems, "out"),
            ],
            locals: vec![],
            var_count: 0,
            body: vec![Stmt::Op(Intrinsic::Unary {
                op: UnaryOp::Identity,
                src: View::new(BufId::Param(0), 0usize, elems),
                dst: View::new(BufId::Param(1), 0usize, elems),
            })],
        }
    }

    #[test]
    fn pipeline_scratch_buffers_collapse() {
        // in -> t0 -> t1 -> t2 -> out : t0 dead once call1 done, so t2
        // can reuse it.
        let mut m = Module::new();
        let f = m.add_func(passthrough_func(64));
        let input = m.add_global(GlobalDecl {
            dtype: DataType::F32,
            elems: 64,
            kind: GlobalKind::Input(0),
            name: "in".into(),
        });
        let t0 = m.add_global(scratch(64, "t0"));
        let t1 = m.add_global(scratch(64, "t1"));
        let t2 = m.add_global(scratch(64, "t2"));
        let out = m.add_global(GlobalDecl {
            dtype: DataType::F32,
            elems: 64,
            kind: GlobalKind::Output(0),
            name: "out".into(),
        });
        for (a, b) in [(input, t0), (t0, t1), (t1, t2), (t2, out)] {
            m.main_calls.push(Call {
                func: f,
                args: vec![a, b],
            });
        }
        let stats = reuse_module_scratch(&mut m);
        assert_eq!(stats.merged, 1);
        assert_eq!(stats.bytes_before, 3 * 64 * 4);
        assert_eq!(stats.bytes_after, 2 * 64 * 4);
        m.validate().unwrap();
        // t2's uses now point at t0
        assert_eq!(m.main_calls[2].args[1], t0);
        assert_eq!(m.main_calls[3].args[0], t0);
        let _ = (t1, t2);
    }

    #[test]
    fn overlapping_scratch_not_merged() {
        // both scratches live in the same call
        let mut m = Module::new();
        let f = m.add_func(Func {
            name: "two".into(),
            params: vec![
                BufDecl::new(DataType::F32, 8, "a"),
                BufDecl::new(DataType::F32, 8, "b"),
            ],
            locals: vec![],
            var_count: 0,
            body: vec![],
        });
        let t0 = m.add_global(scratch(8, "t0"));
        let t1 = m.add_global(scratch(8, "t1"));
        m.main_calls.push(Call {
            func: f,
            args: vec![t0, t1],
        });
        let stats = reuse_module_scratch(&mut m);
        assert_eq!(stats.merged, 0);
    }

    #[test]
    fn grows_representative_to_max_size() {
        let mut m = Module::new();
        let f = m.add_func(passthrough_func(8));
        // widening copy: 8-element input, 32-element output
        let widen = m.add_func(Func {
            name: "widen".into(),
            params: vec![
                BufDecl::new(DataType::F32, 8, "in"),
                BufDecl::new(DataType::F32, 32, "out"),
            ],
            locals: vec![],
            var_count: 0,
            body: vec![],
        });
        let big_f = m.add_func(passthrough_func(32));
        let input = m.add_global(GlobalDecl {
            dtype: DataType::F32,
            elems: 8,
            kind: GlobalKind::Input(0),
            name: "in".into(),
        });
        let small = m.add_global(scratch(8, "small"));
        let mid = m.add_global(scratch(8, "mid"));
        let big = m.add_global(scratch(32, "big"));
        let out = m.add_global(GlobalDecl {
            dtype: DataType::F32,
            elems: 32,
            kind: GlobalKind::Output(0),
            name: "out".into(),
        });
        m.main_calls.push(Call {
            func: f,
            args: vec![input, small],
        });
        m.main_calls.push(Call {
            func: f,
            args: vec![small, mid],
        });
        m.main_calls.push(Call {
            func: widen,
            args: vec![mid, big],
        });
        m.main_calls.push(Call {
            func: big_f,
            args: vec![big, out],
        });
        let stats = reuse_module_scratch(&mut m);
        assert_eq!(stats.merged, 1);
        // `big` (32 elems) reused `small`'s slot, growing it
        assert_eq!(m.globals[small].elems, 32);
        m.validate().unwrap();
    }

    #[test]
    fn func_locals_merge_across_top_level_stmts() {
        let mut f = Func {
            name: "f".into(),
            params: vec![BufDecl::new(DataType::F32, 8, "io")],
            locals: vec![
                BufDecl::new(DataType::F32, 8, "t0"),
                BufDecl::new(DataType::F32, 8, "t1"),
            ],
            var_count: 0,
            body: vec![
                // stmt 0: writes t0 from io
                Stmt::Op(Intrinsic::Unary {
                    op: UnaryOp::Relu,
                    src: View::new(BufId::Param(0), 0usize, 8),
                    dst: View::new(BufId::Local(0), 0usize, 8),
                }),
                // stmt 1: io = t0 (last use of t0)
                Stmt::Op(Intrinsic::Unary {
                    op: UnaryOp::Identity,
                    src: View::new(BufId::Local(0), 0usize, 8),
                    dst: View::new(BufId::Param(0), 0usize, 8),
                }),
                // stmt 2: t1 = io
                Stmt::Op(Intrinsic::Unary {
                    op: UnaryOp::Exp,
                    src: View::new(BufId::Param(0), 0usize, 8),
                    dst: View::new(BufId::Local(1), 0usize, 8),
                }),
                // stmt 3: io = t1
                Stmt::Op(Intrinsic::Unary {
                    op: UnaryOp::Identity,
                    src: View::new(BufId::Local(1), 0usize, 8),
                    dst: View::new(BufId::Param(0), 0usize, 8),
                }),
            ],
        };
        let stats = reuse_func_locals(&mut f);
        assert_eq!(stats.merged, 1);
        assert_eq!(stats.bytes_after, 32);
        // all local references now use local 0
        let Stmt::Op(Intrinsic::Unary { dst, .. }) = &f.body[2] else {
            panic!()
        };
        assert_eq!(dst.buf, BufId::Local(0));
    }

    #[test]
    fn locals_in_same_loop_never_merge() {
        let v = crate::expr::VarId(0);
        let mut f = Func {
            name: "f".into(),
            params: vec![BufDecl::new(DataType::F32, 8, "io")],
            locals: vec![
                BufDecl::new(DataType::F32, 8, "t0"),
                BufDecl::new(DataType::F32, 8, "t1"),
            ],
            var_count: 1,
            body: vec![Stmt::loop_(
                v,
                4,
                vec![
                    Stmt::Op(Intrinsic::Unary {
                        op: UnaryOp::Relu,
                        src: View::new(BufId::Param(0), 0usize, 8),
                        dst: View::new(BufId::Local(0), 0usize, 8),
                    }),
                    Stmt::Op(Intrinsic::Unary {
                        op: UnaryOp::Exp,
                        src: View::new(BufId::Local(0), Expr::c(0), 8),
                        dst: View::new(BufId::Local(1), 0usize, 8),
                    }),
                ],
            )],
        };
        let stats = reuse_func_locals(&mut f);
        assert_eq!(stats.merged, 0);
    }
}
