//! Tensor IR optimization passes.

pub mod buffer_reuse;
pub mod merge_loops;
pub mod shrink;
pub mod validate;

pub use buffer_reuse::{reuse_func_locals, reuse_module_scratch, ReuseStats};
pub use merge_loops::{merge_parallel_loops, MergeStats};
pub use shrink::{shrink_locals, ShrinkStats};
pub use validate::{
    check_func_reuse, check_module_reuse, validate_func, validate_module, ValidateError,
};
