//! Human-readable Tensor IR printer (diagnostics and golden tests).

use crate::ir::{BufId, Func, Intrinsic, Module, Stmt, View};
use std::fmt::Write;

fn view_str(f: &Func, v: &View) -> String {
    format!("{}[{} +{}]", buf_str(f, v.buf), v.offset, v.len)
}

fn buf_str(f: &Func, b: BufId) -> String {
    match b {
        BufId::Param(i) => format!("%{}", f.params[i].name),
        BufId::Local(i) => format!("${}", f.locals[i].name),
    }
}

fn intr_str(f: &Func, i: &Intrinsic) -> String {
    match i {
        Intrinsic::BrgemmF32 {
            a,
            b,
            c,
            m,
            n,
            k,
            batch,
            ..
        } => format!(
            "brgemm.f32 {} += {} x {}  (m={m} n={n} k={k} bs={batch})",
            view_str(f, c),
            view_str(f, a),
            view_str(f, b)
        ),
        Intrinsic::BrgemmU8I8 {
            a,
            b,
            c,
            m,
            n,
            k,
            batch,
            ..
        } => format!(
            "brgemm.u8i8 {} += {} x {}  (m={m} n={n} k={k} bs={batch})",
            view_str(f, c),
            view_str(f, a),
            view_str(f, b)
        ),
        Intrinsic::FillF32 { dst, value } => format!("fill {} = {value}", view_str(f, dst)),
        Intrinsic::ZeroI32 { dst } => format!("zero.i32 {}", view_str(f, dst)),
        Intrinsic::Pack2D {
            src,
            src_offset,
            src_row_stride,
            src_col_stride,
            dst,
            rows,
            cols,
        } => format!(
            "pack2d {} = {}[{} rs={src_row_stride} cs={src_col_stride}] ({rows}x{cols})",
            view_str(f, dst),
            buf_str(f, *src),
            src_offset
        ),
        Intrinsic::Unpack2D {
            src,
            dst,
            dst_offset,
            dst_row_stride,
            dst_col_stride,
            rows,
            cols,
        } => format!(
            "unpack2d {}[{} rs={dst_row_stride} cs={dst_col_stride}] = {} ({rows}x{cols})",
            buf_str(f, *dst),
            dst_offset,
            view_str(f, src)
        ),
        Intrinsic::Pack2DPad {
            src,
            src_offset,
            src_row_stride,
            src_col_stride,
            dst,
            rows,
            cols,
            row_clamp,
            col_clamp,
        } => format!(
            "pack2d.pad {} = {}[{} rs={src_row_stride} cs={src_col_stride}] ({rows}x{cols} rows@{}<{} cols@{}<{})",
            view_str(f, dst),
            buf_str(f, *src),
            src_offset,
            row_clamp.base,
            row_clamp.logical,
            col_clamp.base,
            col_clamp.logical
        ),
        Intrinsic::Unpack2DClamp {
            src,
            dst,
            dst_offset,
            dst_row_stride,
            dst_col_stride,
            rows,
            cols,
            row_clamp,
            col_clamp,
        } => format!(
            "unpack2d.clamp {}[{} rs={dst_row_stride} cs={dst_col_stride}] = {} ({rows}x{cols} rows@{}<{} cols@{}<{})",
            buf_str(f, *dst),
            dst_offset,
            view_str(f, src),
            row_clamp.base,
            row_clamp.logical,
            col_clamp.base,
            col_clamp.logical
        ),
        Intrinsic::BrgemmF32Tail {
            a,
            b,
            c,
            m,
            n,
            k,
            batch,
            m_clamp,
            ..
        } => format!(
            "brgemm.f32.tail {} += {} x {}  (m={m} n={n} k={k} bs={batch} m@{}<{})",
            view_str(f, c),
            view_str(f, a),
            view_str(f, b),
            m_clamp.base,
            m_clamp.logical
        ),
        Intrinsic::BrgemmU8I8Tail {
            a,
            b,
            c,
            m,
            n,
            k,
            batch,
            m_clamp,
            ..
        } => format!(
            "brgemm.u8i8.tail {} += {} x {}  (m={m} n={n} k={k} bs={batch} m@{}<{})",
            view_str(f, c),
            view_str(f, a),
            view_str(f, b),
            m_clamp.base,
            m_clamp.logical
        ),
        Intrinsic::Unary { op, src, dst } => {
            format!("{op:?} {} = {}", view_str(f, dst), view_str(f, src))
        }
        Intrinsic::Binary { op, a, b, dst } => format!(
            "{op:?} {} = {}, {}",
            view_str(f, dst),
            view_str(f, a),
            view_str(f, b)
        ),
        Intrinsic::BinaryScalar { op, a, scalar, dst } => format!(
            "{op:?}.s {} = {}, {scalar}",
            view_str(f, dst),
            view_str(f, a)
        ),
        Intrinsic::BinaryRowBcast {
            op,
            a,
            b,
            dst,
            rows,
            cols,
        } => format!(
            "{op:?}.rowb {} = {}, {} ({rows}x{cols})",
            view_str(f, dst),
            view_str(f, a),
            view_str(f, b)
        ),
        Intrinsic::BinaryColBcast {
            op,
            a,
            b,
            dst,
            rows,
            cols,
        } => format!(
            "{op:?}.colb {} = {}, {} ({rows}x{cols})",
            view_str(f, dst),
            view_str(f, a),
            view_str(f, b)
        ),
        Intrinsic::ReduceRows {
            op,
            src,
            acc,
            rows,
            cols,
            accumulate,
        } => format!(
            "reduce.{op:?}{} {} <- {} ({rows}x{cols})",
            if *accumulate { ".acc" } else { "" },
            view_str(f, acc),
            view_str(f, src)
        ),
        Intrinsic::DequantAcc {
            acc,
            dst,
            rows,
            cols,
            ..
        } => format!(
            "dequant_acc {} = {} ({rows}x{cols})",
            view_str(f, dst),
            view_str(f, acc)
        ),
        Intrinsic::QuantU8 { src, dst, .. } => {
            format!("quant.u8 {} = {}", view_str(f, dst), view_str(f, src))
        }
        Intrinsic::DequantU8 { src, dst, .. } => {
            format!("dequant.u8 {} = {}", view_str(f, dst), view_str(f, src))
        }
        Intrinsic::DequantI8 { src, dst, .. } => {
            format!("dequant.i8 {} = {}", view_str(f, dst), view_str(f, src))
        }
        Intrinsic::CompAccumulate {
            b_tile,
            comp,
            nb,
            kb,
        } => format!(
            "comp_acc {} += colsums({}) (nb={nb} kb={kb})",
            view_str(f, comp),
            view_str(f, b_tile)
        ),
        Intrinsic::CastI32F32 { src, dst } => {
            format!("cast.i32f32 {} = {}", view_str(f, dst), view_str(f, src))
        }
        Intrinsic::AddF32 { src, dst } => {
            format!("add.f32.acc {} += {}", view_str(f, dst), view_str(f, src))
        }
        Intrinsic::AddI32 { src, dst } => {
            format!("add.i32.acc {} += {}", view_str(f, dst), view_str(f, src))
        }
    }
}

fn print_stmts(f: &Func, stmts: &[Stmt], indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    for s in stmts {
        match s {
            Stmt::For {
                var,
                extent,
                parallel,
                body,
            } => {
                let kw = if *parallel { "parallel" } else { "for" };
                let _ = writeln!(out, "{pad}{kw} {var} in 0..{extent} {{");
                print_stmts(f, body, indent + 1, out);
                let _ = writeln!(out, "{pad}}}");
            }
            Stmt::Op(i) => {
                let _ = writeln!(out, "{pad}{}", intr_str(f, i));
            }
        }
    }
}

/// Print one function.
pub fn print_func(f: &Func) -> String {
    let mut s = String::new();
    let params: Vec<String> = f
        .params
        .iter()
        .map(|p| format!("%{}: {}[{}]", p.name, p.dtype, p.elems))
        .collect();
    let _ = writeln!(s, "func {}({}) {{", f.name, params.join(", "));
    for l in &f.locals {
        let _ = writeln!(s, "  local ${}: {}[{}]", l.name, l.dtype, l.elems);
    }
    print_stmts(f, &f.body, 1, &mut s);
    let _ = writeln!(s, "}}");
    s
}

/// Print a whole module.
pub fn print_module(m: &Module) -> String {
    let mut s = String::new();
    for g in &m.globals {
        let _ = writeln!(
            s,
            "global {}: {}[{}] {:?}",
            g.name, g.dtype, g.elems, g.kind
        );
    }
    for f in &m.funcs {
        s.push('\n');
        s.push_str(&print_func(f));
    }
    let _ = writeln!(s, "\nentry {{");
    for c in &m.init_calls {
        let _ = writeln!(s, "  init  call {} {:?}", m.funcs[c.func].name, c.args);
    }
    for c in &m.main_calls {
        let _ = writeln!(s, "  call {} {:?}", m.funcs[c.func].name, c.args);
    }
    let _ = writeln!(s, "}}");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::ir::BufDecl;
    use gc_microkernel::UnaryOp;
    use gc_tensor::DataType;

    #[test]
    fn prints_loops_and_intrinsics() {
        let mut f = Func {
            name: "demo".into(),
            params: vec![
                BufDecl::new(DataType::F32, 8, "in"),
                BufDecl::new(DataType::F32, 8, "out"),
            ],
            locals: vec![BufDecl::new(DataType::F32, 4, "tmp")],
            var_count: 0,
            body: vec![],
        };
        let v = f.fresh_var();
        f.body.push(Stmt::parallel(
            v,
            2,
            vec![Stmt::Op(Intrinsic::Unary {
                op: UnaryOp::Relu,
                src: View::new(BufId::Param(0), Expr::v(v).mul(Expr::c(4)), 4),
                dst: View::new(BufId::Param(1), Expr::v(v).mul(Expr::c(4)), 4),
            })],
        ));
        let text = print_func(&f);
        assert!(text.contains("parallel v0 in 0..2"));
        assert!(text.contains("Relu %out"));
        assert!(text.contains("local $tmp"));
    }
}
