//! Traversal helpers over Tensor IR.

use crate::expr::Expr;
use crate::ir::{AxisClamp, BufId, Intrinsic, Stmt, View};

/// Apply `f` to every expression inside an intrinsic (view offsets,
/// strided-copy base offsets, and axis-clamp bases).
pub fn map_intrinsic_exprs(i: Intrinsic, f: &impl Fn(&Expr) -> Expr) -> Intrinsic {
    let mv = |v: View| View {
        buf: v.buf,
        offset: f(&v.offset),
        len: v.len,
    };
    let mc = |c: AxisClamp| AxisClamp {
        base: f(&c.base),
        logical: c.logical,
    };
    match i {
        Intrinsic::BrgemmF32 {
            a,
            a_stride,
            b,
            b_stride,
            c,
            m,
            n,
            k,
            batch,
        } => Intrinsic::BrgemmF32 {
            a: mv(a),
            a_stride,
            b: mv(b),
            b_stride,
            c: mv(c),
            m,
            n,
            k,
            batch,
        },
        Intrinsic::BrgemmU8I8 {
            a,
            a_stride,
            b,
            b_stride,
            c,
            m,
            n,
            k,
            batch,
        } => Intrinsic::BrgemmU8I8 {
            a: mv(a),
            a_stride,
            b: mv(b),
            b_stride,
            c: mv(c),
            m,
            n,
            k,
            batch,
        },
        Intrinsic::FillF32 { dst, value } => Intrinsic::FillF32 {
            dst: mv(dst),
            value,
        },
        Intrinsic::ZeroI32 { dst } => Intrinsic::ZeroI32 { dst: mv(dst) },
        Intrinsic::Pack2D {
            src,
            src_offset,
            src_row_stride,
            src_col_stride,
            dst,
            rows,
            cols,
        } => Intrinsic::Pack2D {
            src,
            src_offset: f(&src_offset),
            src_row_stride,
            src_col_stride,
            dst: mv(dst),
            rows,
            cols,
        },
        Intrinsic::Unpack2D {
            src,
            dst,
            dst_offset,
            dst_row_stride,
            dst_col_stride,
            rows,
            cols,
        } => Intrinsic::Unpack2D {
            src: mv(src),
            dst,
            dst_offset: f(&dst_offset),
            dst_row_stride,
            dst_col_stride,
            rows,
            cols,
        },
        Intrinsic::Pack2DPad {
            src,
            src_offset,
            src_row_stride,
            src_col_stride,
            dst,
            rows,
            cols,
            row_clamp,
            col_clamp,
        } => Intrinsic::Pack2DPad {
            src,
            src_offset: f(&src_offset),
            src_row_stride,
            src_col_stride,
            dst: mv(dst),
            rows,
            cols,
            row_clamp: mc(row_clamp),
            col_clamp: mc(col_clamp),
        },
        Intrinsic::Unpack2DClamp {
            src,
            dst,
            dst_offset,
            dst_row_stride,
            dst_col_stride,
            rows,
            cols,
            row_clamp,
            col_clamp,
        } => Intrinsic::Unpack2DClamp {
            src: mv(src),
            dst,
            dst_offset: f(&dst_offset),
            dst_row_stride,
            dst_col_stride,
            rows,
            cols,
            row_clamp: mc(row_clamp),
            col_clamp: mc(col_clamp),
        },
        Intrinsic::BrgemmF32Tail {
            a,
            a_stride,
            b,
            b_stride,
            c,
            m,
            n,
            k,
            batch,
            m_clamp,
        } => Intrinsic::BrgemmF32Tail {
            a: mv(a),
            a_stride,
            b: mv(b),
            b_stride,
            c: mv(c),
            m,
            n,
            k,
            batch,
            m_clamp: mc(m_clamp),
        },
        Intrinsic::BrgemmU8I8Tail {
            a,
            a_stride,
            b,
            b_stride,
            c,
            m,
            n,
            k,
            batch,
            m_clamp,
        } => Intrinsic::BrgemmU8I8Tail {
            a: mv(a),
            a_stride,
            b: mv(b),
            b_stride,
            c: mv(c),
            m,
            n,
            k,
            batch,
            m_clamp: mc(m_clamp),
        },
        Intrinsic::Unary { op, src, dst } => Intrinsic::Unary {
            op,
            src: mv(src),
            dst: mv(dst),
        },
        Intrinsic::Binary { op, a, b, dst } => Intrinsic::Binary {
            op,
            a: mv(a),
            b: mv(b),
            dst: mv(dst),
        },
        Intrinsic::BinaryScalar { op, a, scalar, dst } => Intrinsic::BinaryScalar {
            op,
            a: mv(a),
            scalar,
            dst: mv(dst),
        },
        Intrinsic::BinaryRowBcast {
            op,
            a,
            b,
            dst,
            rows,
            cols,
        } => Intrinsic::BinaryRowBcast {
            op,
            a: mv(a),
            b: mv(b),
            dst: mv(dst),
            rows,
            cols,
        },
        Intrinsic::BinaryColBcast {
            op,
            a,
            b,
            dst,
            rows,
            cols,
        } => Intrinsic::BinaryColBcast {
            op,
            a: mv(a),
            b: mv(b),
            dst: mv(dst),
            rows,
            cols,
        },
        Intrinsic::ReduceRows {
            op,
            src,
            acc,
            rows,
            cols,
            accumulate,
        } => Intrinsic::ReduceRows {
            op,
            src: mv(src),
            acc: mv(acc),
            rows,
            cols,
            accumulate,
        },
        Intrinsic::DequantAcc {
            acc,
            comp,
            a_zero,
            scale,
            bias,
            dst,
            rows,
            cols,
        } => Intrinsic::DequantAcc {
            acc: mv(acc),
            comp: mv(comp),
            a_zero,
            scale,
            bias: bias.map(mv),
            dst: mv(dst),
            rows,
            cols,
        },
        Intrinsic::QuantU8 {
            src,
            dst,
            scale,
            zero_point,
        } => Intrinsic::QuantU8 {
            src: mv(src),
            dst: mv(dst),
            scale,
            zero_point,
        },
        Intrinsic::DequantU8 {
            src,
            dst,
            scale,
            zero_point,
        } => Intrinsic::DequantU8 {
            src: mv(src),
            dst: mv(dst),
            scale,
            zero_point,
        },
        Intrinsic::DequantI8 { src, dst, scale } => Intrinsic::DequantI8 {
            src: mv(src),
            dst: mv(dst),
            scale,
        },
        Intrinsic::CompAccumulate {
            b_tile,
            comp,
            nb,
            kb,
        } => Intrinsic::CompAccumulate {
            b_tile: mv(b_tile),
            comp: mv(comp),
            nb,
            kb,
        },
        Intrinsic::CastI32F32 { src, dst } => Intrinsic::CastI32F32 {
            src: mv(src),
            dst: mv(dst),
        },
        Intrinsic::AddF32 { src, dst } => Intrinsic::AddF32 {
            src: mv(src),
            dst: mv(dst),
        },
        Intrinsic::AddI32 { src, dst } => Intrinsic::AddI32 {
            src: mv(src),
            dst: mv(dst),
        },
    }
}

/// An access to a buffer: the view plus whether it is written.
#[derive(Debug, Clone)]
pub struct Access {
    /// Buffer accessed.
    pub buf: BufId,
    /// Element offset expression.
    pub offset: Expr,
    /// Window length.
    pub len: usize,
    /// True if the access writes.
    pub write: bool,
}

fn acc(v: &View, write: bool) -> Access {
    Access {
        buf: v.buf,
        offset: v.offset.clone(),
        len: v.len,
        write,
    }
}

/// Enumerate the buffer accesses an intrinsic performs.
pub fn intrinsic_accesses(i: &Intrinsic) -> Vec<Access> {
    match i {
        Intrinsic::BrgemmF32 {
            a,
            a_stride,
            b,
            b_stride,
            c,
            m,
            n,
            k,
            batch,
        }
        | Intrinsic::BrgemmU8I8 {
            a,
            a_stride,
            b,
            b_stride,
            c,
            m,
            n,
            k,
            batch,
        }
        | Intrinsic::BrgemmF32Tail {
            a,
            a_stride,
            b,
            b_stride,
            c,
            m,
            n,
            k,
            batch,
            ..
        }
        | Intrinsic::BrgemmU8I8Tail {
            a,
            a_stride,
            b,
            b_stride,
            c,
            m,
            n,
            k,
            batch,
            ..
        } => {
            // one access per tile: the batch tiles may be far apart in
            // the blocked layouts, and a dense span would wildly
            // overstate the traffic
            let mut v = Vec::with_capacity(2 * batch + 1);
            for i in 0..*batch {
                v.push(Access {
                    buf: a.buf,
                    offset: a.offset.clone().add(Expr::from(i * a_stride)),
                    len: m * k,
                    write: false,
                });
                v.push(Access {
                    buf: b.buf,
                    offset: b.offset.clone().add(Expr::from(i * b_stride)),
                    len: n * k,
                    write: false,
                });
            }
            v.push(acc(c, true));
            v
        }
        Intrinsic::FillF32 { dst, .. } | Intrinsic::ZeroI32 { dst } => vec![acc(dst, true)],
        Intrinsic::Pack2D {
            src,
            src_offset,
            src_row_stride,
            src_col_stride,
            dst,
            rows,
            cols,
        } => vec![
            Access {
                buf: *src,
                offset: src_offset.clone(),
                len: (rows - 1) * src_row_stride + (cols - 1) * src_col_stride + 1,
                write: false,
            },
            acc(dst, true),
        ],
        Intrinsic::Unpack2D {
            src,
            dst,
            dst_offset,
            dst_row_stride,
            dst_col_stride,
            rows,
            cols,
        } => vec![
            acc(src, false),
            Access {
                buf: *dst,
                offset: dst_offset.clone(),
                len: (rows - 1) * dst_row_stride + (cols - 1) * dst_col_stride + 1,
                write: true,
            },
        ],
        Intrinsic::Pack2DPad {
            src,
            src_offset,
            src_row_stride,
            src_col_stride,
            dst,
            row_clamp,
            col_clamp,
            ..
        } => vec![
            Access {
                buf: *src,
                offset: src_offset.clone(),
                // the clamp bases are excluded from `src_offset`, so
                // the farthest reachable element is statically capped
                // by the logical extents (runtime indices satisfy
                // `base + r <= logical - 1` on each axis)
                len: clamped_span(
                    row_clamp.logical,
                    *src_row_stride,
                    col_clamp.logical,
                    *src_col_stride,
                ),
                write: false,
            },
            acc(dst, true),
        ],
        Intrinsic::Unpack2DClamp {
            src,
            dst,
            dst_offset,
            dst_row_stride,
            dst_col_stride,
            row_clamp,
            col_clamp,
            ..
        } => vec![
            acc(src, false),
            Access {
                buf: *dst,
                offset: dst_offset.clone(),
                len: clamped_span(
                    row_clamp.logical,
                    *dst_row_stride,
                    col_clamp.logical,
                    *dst_col_stride,
                ),
                write: true,
            },
        ],
        Intrinsic::Unary { src, dst, .. } => vec![acc(src, false), acc(dst, true)],
        Intrinsic::Binary { a, b, dst, .. } => {
            vec![acc(a, false), acc(b, false), acc(dst, true)]
        }
        Intrinsic::BinaryScalar { a, dst, .. } => vec![acc(a, false), acc(dst, true)],
        Intrinsic::BinaryRowBcast { a, b, dst, .. }
        | Intrinsic::BinaryColBcast { a, b, dst, .. } => {
            vec![acc(a, false), acc(b, false), acc(dst, true)]
        }
        Intrinsic::ReduceRows { src, acc: a, .. } => vec![acc(src, false), self_acc(a)],
        Intrinsic::DequantAcc {
            acc: a,
            comp,
            bias,
            dst,
            ..
        } => {
            let mut v = vec![acc(a, false), acc(comp, false), acc(dst, true)];
            if let Some(b) = bias {
                v.push(acc(b, false));
            }
            v
        }
        Intrinsic::QuantU8 { src, dst, .. }
        | Intrinsic::DequantU8 { src, dst, .. }
        | Intrinsic::DequantI8 { src, dst, .. }
        | Intrinsic::CastI32F32 { src, dst } => vec![acc(src, false), acc(dst, true)],
        Intrinsic::CompAccumulate { b_tile, comp, .. } => {
            vec![acc(b_tile, false), self_acc(comp)]
        }
        Intrinsic::AddF32 { src, dst } | Intrinsic::AddI32 { src, dst } => {
            vec![acc(src, false), self_acc(dst)]
        }
    }
}

/// Span reachable by a clamped 2-D copy whose offset excludes the axis
/// bases: indices are capped at `(logical - 1) * stride` per axis.
fn clamped_span(logical_rows: usize, rs: usize, logical_cols: usize, cs: usize) -> usize {
    logical_rows.saturating_sub(1) * rs + logical_cols.saturating_sub(1) * cs + 1
}

/// Axis-clamp base expressions of an intrinsic (empty for unclamped
/// ops). These are real runtime indices: their `base * stride` terms
/// are *excluded* from the offsets reported by [`intrinsic_accesses`],
/// so validators must separately prove each base non-negative (the
/// upper side is enforced by the runtime clamp itself).
pub fn intrinsic_clamp_bases(i: &Intrinsic) -> Vec<&Expr> {
    match i {
        Intrinsic::Pack2DPad {
            row_clamp,
            col_clamp,
            ..
        }
        | Intrinsic::Unpack2DClamp {
            row_clamp,
            col_clamp,
            ..
        } => vec![&row_clamp.base, &col_clamp.base],
        Intrinsic::BrgemmF32Tail { m_clamp, .. } | Intrinsic::BrgemmU8I8Tail { m_clamp, .. } => {
            vec![&m_clamp.base]
        }
        _ => vec![],
    }
}

fn self_acc(v: &View) -> Access {
    // read-modify-write accumulator
    Access {
        buf: v.buf,
        offset: v.offset.clone(),
        len: v.len,
        write: true,
    }
}

/// Visit every intrinsic in a statement tree.
pub fn visit_intrinsics<'a>(stmts: &'a [Stmt], f: &mut impl FnMut(&'a Intrinsic)) {
    for s in stmts {
        match s {
            Stmt::For { body, .. } => visit_intrinsics(body, f),
            Stmt::Op(i) => f(i),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::VarId;
    use gc_microkernel::UnaryOp;

    #[test]
    fn map_exprs_substitutes_offsets() {
        let i = Intrinsic::Unary {
            op: UnaryOp::Relu,
            src: View::new(BufId::Param(0), Expr::v(VarId(1)), 4),
            dst: View::new(BufId::Param(1), Expr::v(VarId(1)), 4),
        };
        let j = map_intrinsic_exprs(i, &|e| e.subst(VarId(1), &Expr::c(7)));
        let Intrinsic::Unary { src, dst, .. } = j else {
            panic!()
        };
        assert_eq!(src.offset, Expr::c(7));
        assert_eq!(dst.offset, Expr::c(7));
    }

    #[test]
    fn accesses_cover_brgemm_tiles() {
        let i = Intrinsic::BrgemmF32 {
            a: View::new(BufId::Param(0), 0usize, 8),
            a_stride: 100,
            b: View::new(BufId::Param(1), 0usize, 8),
            b_stride: 200,
            c: View::new(BufId::Param(2), 0usize, 4),
            m: 2,
            n: 2,
            k: 4,
            batch: 3,
        };
        let accs = intrinsic_accesses(&i);
        // 3 A tiles + 3 B tiles + C
        assert_eq!(accs.len(), 7);
        assert_eq!(accs[0].len, 8);
        assert_eq!(accs[2].offset.eval(&[]), 100); // second A tile
        assert_eq!(accs[3].offset.eval(&[]), 200); // second B tile
        assert!(accs[6].write);
    }

    #[test]
    fn visit_counts_ops() {
        let v = VarId(0);
        let s = vec![Stmt::loop_(
            v,
            3,
            vec![
                Stmt::Op(Intrinsic::FillF32 {
                    dst: View::new(BufId::Param(0), 0usize, 4),
                    value: 0.0,
                }),
                Stmt::loop_(
                    VarId(1),
                    2,
                    vec![Stmt::Op(Intrinsic::ZeroI32 {
                        dst: View::new(BufId::Param(1), 0usize, 4),
                    })],
                ),
            ],
        )];
        let mut count = 0;
        visit_intrinsics(&s, &mut |_| count += 1);
        assert_eq!(count, 2);
    }
}
