//! Tensor IR for the oneDNN Graph Compiler reproduction.
//!
//! "Tensor IR is the lowest intermediate representation [...] the DNN
//! computation graph is lowered to a C-like program, which includes
//! function, statement, expression, and intrinsic functions." This crate
//! provides:
//!
//! - the IR ([`ir`]): [`Module`] / [`Func`] / [`Stmt`] / [`Intrinsic`]
//!   with integer index expressions ([`expr`]);
//! - execution ([`exec`]): an in-process executor whose bulk work runs
//!   in the native microkernels (the reproduction's stand-in for LLVM
//!   JIT codegen);
//! - the Tensor IR optimizations ([`passes`]): mechanical parallel-loop
//!   merging (coarse-grain fusion), tensor-size optimization, and
//!   memory-buffer reuse;
//! - multi-core performance projection ([`sim`]) via the `gc-machine`
//!   cache simulator and cost model;
//! - a printer ([`printer`]) for diagnostics.

#![warn(missing_docs)]

pub mod compile;
pub mod engine;
pub mod exec;
pub mod expr;
pub mod ir;
pub mod passes;
pub mod plan;
pub mod printer;
pub mod sim;
pub mod visit;

pub use compile::compile_module;
pub use engine::{
    engine_totals, Engine, EngineCounters, EngineTotals, ExecMode, Executable, InitCache,
};
pub use expr::{Expr, VarId};
pub use ir::{
    AxisClamp, BufDecl, BufId, Call, Func, GlobalDecl, GlobalKind, Intrinsic, Module, ReduceOp,
    Stmt, View,
};
pub use passes::validate::{validate_module, ValidateError};
pub use plan::{ExecOptions, Plan, PlanStats};
