//! Tuning-database round trip: tune → serialize to disk → reload →
//! warm-start. The warm-started compile must make bit-identical
//! template-parameter selections (checked through [`ParamLog`]) and the
//! second `tune_graph` call must run zero measured trials.

use gc_core::{tune_graph, CompileOptions, Compiler, TuneConfig, TuningDb};
use gc_graph::{Graph, OpKind, UnaryKind};
use gc_lowering::ParamLog;
use gc_machine::MachineDescriptor;
use gc_tensor::{DataType, Tensor, TensorDesc};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

/// MLP_1 at batch 16 (13×512×256×128, final layer linear) — small
/// enough to tune in a test, rich enough to have several choice points.
fn mlp1(batch: usize) -> Graph {
    let layers = [13usize, 512, 256, 128];
    let mut g = Graph::new();
    let mut cur = g.add_input(TensorDesc::new([batch, layers[0]], DataType::F32), "x");
    for (i, w) in layers.windows(2).enumerate() {
        let weight = g.add_constant(
            Tensor::random(&[w[0], w[1]], DataType::F32, 7 + i as u64),
            &format!("w{i}"),
        );
        let mm = g.add_op(OpKind::MatMul, &[cur, weight]).unwrap();
        cur = if i + 2 < layers.len() {
            g.add_op(OpKind::Unary(UnaryKind::Relu), &[mm]).unwrap()
        } else {
            mm
        };
    }
    g.mark_output(cur);
    g
}

fn opts() -> CompileOptions {
    let mut o = CompileOptions::new(MachineDescriptor::xeon_8358());
    o.threads = Some(1);
    o
}

fn quick() -> TuneConfig {
    TuneConfig {
        top_k: 3,
        max_trials: 8,
        wall_reps: 1,
    }
}

/// A scratch file path unique to this test run; removed on drop.
struct TmpDb(PathBuf);

impl TmpDb {
    fn new(tag: &str) -> TmpDb {
        TmpDb(std::env::temp_dir().join(format!("gc-tunedb-{tag}-{}", std::process::id())))
    }
}

impl Drop for TmpDb {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

fn logged_compile(
    graph: &Graph,
    db: &Arc<TuningDb>,
) -> (gc_core::CompileReport, Vec<gc_lowering::ParamChoice>, f64) {
    let log: ParamLog = Arc::new(Mutex::new(Vec::new()));
    let mut o = opts();
    o.tuning = Some(db.clone());
    o.param_log = Some(log.clone());
    let compiled = Compiler::new(o).compile(graph.clone()).unwrap();
    let cycles = compiled.project().cycles;
    let report = compiled.report().clone();
    let choices = log.lock().unwrap().clone();
    (report, choices, cycles)
}

#[test]
fn tune_serialize_reload_warm_starts_bit_identically() {
    let g = mlp1(16);
    let tmp = TmpDb::new("roundtrip");
    let db = Arc::new(TuningDb::open(&tmp.0).unwrap());

    // Cold tune: measures trials, lands a record, never regresses the
    // analytic baseline (the analytic plan is trial zero).
    let r1 = tune_graph(&g, &opts(), &db, &quick()).unwrap();
    assert!(!r1.warm_start);
    assert!(r1.choice_points > 0, "MLP has matmul choice points");
    assert!(r1.trials > 0, "cold tuning must measure candidates");
    assert!(r1.best_cycles <= r1.analytic_cycles);
    assert_eq!(db.len(), 1);
    db.save().unwrap();

    // Reference: what a tuned compile against the live database picks.
    let (rep_live, log_live, cycles_live) = logged_compile(&g, &db);
    assert!(rep_live.tuned);
    assert!(!log_live.is_empty());
    assert_eq!(cycles_live.to_bits(), r1.best_cycles.to_bits());

    // Reload from disk into a fresh database: same content, and a
    // warm-started compile replays the exact same parameter decisions.
    let db2 = Arc::new(TuningDb::open(&tmp.0).unwrap());
    assert_eq!(db2.len(), 1);
    assert_eq!(db2.fingerprint(), db.fingerprint());
    let (rep_warm, log_warm, cycles_warm) = logged_compile(&g, &db2);
    assert!(rep_warm.tuned);
    assert_eq!(cycles_warm.to_bits(), cycles_live.to_bits());
    assert_eq!(log_warm.len(), log_live.len());
    for (a, b) in log_warm.iter().zip(&log_live) {
        assert_eq!(a, b, "warm-started choice differs from tuned choice");
    }

    // Second tune against the reloaded database: zero re-measurement.
    let r2 = tune_graph(&g, &opts(), &db2, &quick()).unwrap();
    assert!(r2.warm_start);
    assert_eq!(r2.trials, 0);
    assert_eq!(r2.key, r1.key);
    assert_eq!(r2.best_cycles.to_bits(), r1.best_cycles.to_bits());
}

#[test]
fn untuned_compile_is_unaffected_by_unrelated_records() {
    // A database holding records for *other* keys must leave compilation
    // byte-for-byte analytic: lookups miss, no overrides apply.
    let g = mlp1(16);
    let other = mlp1(64); // different shape bucket → different key
    let db = Arc::new(TuningDb::in_memory());
    tune_graph(&other, &opts(), &db, &quick()).unwrap();

    let log_plain: ParamLog = Arc::new(Mutex::new(Vec::new()));
    let mut o = opts();
    o.param_log = Some(log_plain.clone());
    let plain = Compiler::new(o).compile(g.clone()).unwrap();

    let (rep, log_db, cycles_db) = logged_compile(&g, &db);
    assert!(!rep.tuned, "miss must not mark the compile tuned");
    assert_eq!(cycles_db.to_bits(), plain.project().cycles.to_bits());
    let plain_choices = log_plain.lock().unwrap().clone();
    assert_eq!(log_db, plain_choices);
}

#[test]
fn tuning_beats_or_matches_analytic_on_mlp1() {
    // The acceptance workload: measured tuning on MLP_1 must find a
    // plan the projector scores at least as fast as the analytic one
    // (on this shape it finds a strictly faster plan).
    let g = mlp1(16);
    let db = Arc::new(TuningDb::in_memory());
    let r = tune_graph(&g, &opts(), &db, &TuneConfig::default()).unwrap();
    assert!(
        r.speedup() >= 1.0,
        "tuning regressed: {:.0} → {:.0}",
        r.analytic_cycles,
        r.best_cycles
    );
}

#[test]
fn tune_keys_never_mix_isa_variants() {
    // Warm starts carry wall-clock winners; a measurement taken under
    // GC_FORCE_ISA=scalar must never replay onto an AVX2/AVX-512
    // process. Every ISA name must land in its own key, and the active
    // ISA's key must be exactly what TuneKey::for_graph produces.
    use gc_core::TuneKey;
    let g = mlp1(16);
    let o = opts();
    let keys: Vec<TuneKey> = ["scalar", "avx2", "avx512"]
        .iter()
        .map(|isa| TuneKey::for_graph_with_isa(&g, &o, isa).unwrap())
        .collect();
    for i in 0..keys.len() {
        for j in i + 1..keys.len() {
            assert_ne!(keys[i].machine, keys[j].machine, "{i} vs {j}");
        }
        // same graph/shape/threads — only the machine hash moves
        assert_eq!(keys[i].graph, keys[0].graph);
        assert_eq!(keys[i].shape_bucket, keys[0].shape_bucket);
        assert_eq!(keys[i].threads, keys[0].threads);
    }
    let live = TuneKey::for_graph(&g, &o).unwrap();
    let active = gc_microkernel::arch::active_isa().name();
    assert_eq!(
        live,
        TuneKey::for_graph_with_isa(&g, &o, active).unwrap(),
        "for_graph must key under the process-wide active ISA"
    );
}
