//! End-to-end check that the second machine preset is a real compile
//! target, not just a cost-model toy: MLP_1 compiled for the
//! AArch64-ish preset must pass the TIR validator (validation is on by
//! default), lower to different template parameters than the Xeon
//! preset, and still execute correctly on the host.

use gc_core::{CompileOptions, Compiler};
use gc_graph::{Graph, OpKind, UnaryKind};
use gc_lowering::ParamLog;
use gc_machine::MachineDescriptor;
use gc_tensor::{DataType, Tensor, TensorDesc};
use std::sync::{Arc, Mutex};

/// MLP_1 (Table 1): 13 -> 512 -> 256 -> 128, relu between layers.
fn mlp1(batch: usize) -> Graph {
    let layers = [13usize, 512, 256, 128];
    let mut g = Graph::new();
    let mut cur = g.add_input(TensorDesc::new([batch, layers[0]], DataType::F32), "x");
    for (i, w) in layers.windows(2).enumerate() {
        let weight = g.add_constant(
            Tensor::random(&[w[0], w[1]], DataType::F32, 7 + i as u64),
            &format!("w{i}"),
        );
        let mm = g.add_op(OpKind::MatMul, &[cur, weight]).unwrap();
        cur = if i + 2 < layers.len() {
            g.add_op(OpKind::Unary(UnaryKind::Relu), &[mm]).unwrap()
        } else {
            mm
        };
    }
    g.mark_output(cur);
    g
}

fn compile_logged(
    machine: MachineDescriptor,
    graph: &Graph,
) -> (gc_core::CompiledPartition, Vec<gc_lowering::ParamChoice>) {
    let log: ParamLog = Arc::new(Mutex::new(Vec::new()));
    let mut o = CompileOptions::new(machine);
    o.threads = Some(1);
    assert!(o.validate, "validator must be on for this test");
    o.param_log = Some(log.clone());
    let compiled = Compiler::new(o).compile(graph.clone()).unwrap();
    let choices = log.lock().unwrap().clone();
    (compiled, choices)
}

#[test]
fn aarch64_preset_compiles_validator_clean_and_diverges() {
    let g = mlp1(32);
    let (xeon_exe, xeon_choices) = compile_logged(MachineDescriptor::xeon_8358(), &g);
    let (arm_exe, arm_choices) = compile_logged(MachineDescriptor::aarch64_small(), &g);

    // Both compiles made choices and passed the (default-on) validator.
    assert!(!xeon_choices.is_empty());
    assert!(!arm_choices.is_empty());

    // The plans must be genuinely different: either the machines chose
    // different schedule structures outright (different choice-point
    // sets), or at least one shared choice point picked different
    // microkernel tile parameters.
    let diverged = xeon_choices.len() != arm_choices.len()
        || xeon_choices.iter().zip(&arm_choices).any(|(x, a)| {
            (x.params.mb, x.params.nb, x.params.kb) != (a.params.mb, a.params.nb, a.params.kb)
        });
    assert!(
        diverged,
        "xeon and aarch64 presets lowered MLP_1 identically:\n{xeon_choices:?}\n{arm_choices:?}"
    );

    // Both plans execute on the host and agree numerically: plan shape
    // is machine-specific, results are not.
    let x = Tensor::random(&[32, 13], DataType::F32, 42);
    let (out_x, _) = xeon_exe.execute(std::slice::from_ref(&x)).unwrap();
    let (out_a, _) = arm_exe.execute(std::slice::from_ref(&x)).unwrap();
    assert_eq!(out_x.len(), 1);
    let (fx, fa) = (out_x[0].f32_slice().unwrap(), out_a[0].f32_slice().unwrap());
    assert_eq!(fx.len(), fa.len());
    for (i, (a, b)) in fx.iter().zip(fa).enumerate() {
        let tol = 1e-4f32.max(b.abs() * 1e-5);
        assert!((a - b).abs() <= tol, "output {i}: {a} vs {b}");
    }
}
