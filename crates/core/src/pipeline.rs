//! The compilation pipeline: Graph IR optimization → fusion → lowering.

use crate::options::CompileOptions;
use crate::CoreError;
use gc_graph::passes::coarse_fusion::coarse_fuse;
use gc_graph::passes::constant_fold::ConstantFold;
use gc_graph::passes::constant_weight::ConstantWeight;
use gc_graph::passes::cse::CommonSubexpressionElimination;
use gc_graph::passes::dce::DeadCodeElimination;
use gc_graph::passes::decompose::Decompose;
use gc_graph::passes::low_precision::LowPrecision;
use gc_graph::passes::PassManager;
use gc_graph::{CoarseGroups, Graph, Partitioning};
use gc_lowering::{lower_partitions, LowerOptions, Lowered};

/// What the Graph IR stage decided (surfaced for tests, benches and the
/// ablation harness).
#[derive(Debug, Clone)]
pub struct CompileReport {
    /// Number of main-stage fused ops.
    pub partitions: usize,
    /// Number of init-stage (constant preprocessing) partitions.
    pub init_partitions: usize,
    /// Coarse-fusion groups with more than one member.
    pub merged_groups: usize,
    /// Post-ops fused across all partitions.
    pub fused_post_ops: usize,
    /// Live graph ops after optimization.
    pub graph_ops: usize,
    /// Tunable partitions in the final plan whose chosen parameters
    /// tile some axis raggedly (pack-time padding / edge tiles). Zero
    /// when the ragged-vs-exact gate kept the divisor-only plan.
    pub ragged_partitions: usize,
    /// True iff the final plan came out of a ragged-*enabled* lowering
    /// (the divisor-only re-lowering, if the gate ran one, lost). This
    /// is the knob setting a warm start must replay to reproduce the
    /// plan — distinct from `ragged_partitions`, since a ragged-enabled
    /// lowering can happen to choose all-divisor tiles.
    pub ragged_kept: bool,
    /// True iff lowering warm-started from a tuning-database record
    /// (pinned schedule decisions, no projection gates).
    pub tuned: bool,
}

/// Run the Graph IR pass pipeline in the paper's order: decompose →
/// general cleanups → low-precision conversion → constant-weight
/// preprocessing → fusion.
///
/// # Errors
///
/// Propagates pass errors (e.g. non-constant batchnorm statistics).
pub fn optimize_graph(graph: &mut Graph, opts: &CompileOptions) -> Result<(), CoreError> {
    graph.validate()?;
    let mut pm = PassManager::new();
    // Low-precision conversion must see the original quantize/dequantize
    // pattern, so constant folding (which would fold `dequantize(w)`
    // into an f32 weight) only runs afterwards.
    pm.add(Decompose)
        .add(CommonSubexpressionElimination)
        .add(DeadCodeElimination);
    if opts.low_precision {
        pm.add(LowPrecision);
    }
    pm.add(CommonSubexpressionElimination)
        .add(ConstantFold::default())
        .add(DeadCodeElimination);
    if opts.constant_weights {
        pm.add(ConstantWeight);
    }
    pm.run_to_fixpoint(graph, 8)?;
    Ok(())
}

/// Partition the optimized graph (fine-grain fusion) and group for
/// coarse-grain fusion.
///
/// # Errors
///
/// Propagates graph traversal errors.
pub fn partition_graph(
    graph: &Graph,
    opts: &CompileOptions,
) -> Result<(Partitioning, CoarseGroups), CoreError> {
    let parts = gc_graph::passes::fusion::fuse(graph, &opts.fusion)?;
    let groups = coarse_fuse(graph, &parts, opts.coarse_fusion)?;
    Ok((parts, groups))
}

/// Lower the partitioned graph to an executable Tensor IR module.
///
/// # Errors
///
/// Propagates lowering errors.
pub fn lower(
    graph: &Graph,
    parts: &Partitioning,
    groups: &CoarseGroups,
    opts: &CompileOptions,
) -> Result<(Lowered, CompileReport), CoreError> {
    // Tuning-database warm start: a hit supplies measured parameter
    // overrides plus (once tuned, not during trials) the pinned
    // merged-vs-split and ragged-vs-exact decisions, so the projection
    // gates below — each of which lowers the graph a second time — are
    // skipped entirely.
    let tuned: Option<crate::tune::TunedRecord> = match &opts.tuning {
        Some(db) => crate::tune::TuneKey::for_graph(graph, opts)
            .ok()
            .and_then(|k| db.lookup(&k)),
        None => None,
    };
    let overrides = tuned.as_ref().map(|r| r.overrides()).unwrap_or_default();
    // Pins only apply where the corresponding gate could run at all:
    // with the knob off, the baseline path never double-lowers, and
    // honoring a pin would produce a structurally different plan than
    // an untuned compile with the same options.
    let pin_merge = tuned
        .as_ref()
        .and_then(|r| r.merge_coarse)
        .filter(|_| opts.coarse_fusion);
    let pin_ragged = tuned
        .as_ref()
        .and_then(|r| r.ragged)
        .filter(|_| opts.ragged);

    let singletons = || gc_graph::CoarseGroups {
        groups: groups
            .groups
            .iter()
            .flat_map(|g| g.iter().map(|&pi| vec![pi]).collect::<Vec<_>>())
            .collect(),
    };

    // One coarse-gated lowering under a given ragged setting: lower,
    // then validate coarse-grain fusion against the performance
    // projector — if merging the loops projects slower than leaving
    // the fused ops separate (the analytic model is only a shortlist),
    // keep the unmerged lowering. A pinned decision replaces the gate
    // with a single lowering of the recorded shape.
    let lower_once = |ragged: bool| -> Result<Lowered, CoreError> {
        let lower_opts = LowerOptions {
            machine: opts.machine.clone(),
            merge_coarse_groups: opts.coarse_fusion,
            propagate_layouts: opts.propagate_layouts,
            shrink_tensors: opts.shrink_tensors,
            reuse_buffers: opts.reuse_buffers,
            reuse_locals: opts.reuse_locals,
            validate: opts.validate,
            forced_post_anchor: opts.forced_post_anchor,
            forced_pack: opts.forced_pack,
            library_params: opts.library_params,
            k_slice: opts.k_slice,
            force_coarse_merge: false,
            ragged,
            overrides: overrides.clone(),
            param_log: opts.param_log.clone(),
        };
        match pin_merge {
            Some(true) => return Ok(lower_partitions(graph, parts, groups, &lower_opts)?),
            Some(false) => return Ok(lower_partitions(graph, parts, &singletons(), &lower_opts)?),
            None => {}
        }
        let mut lowered = lower_partitions(graph, parts, groups, &lower_opts)?;
        if opts.coarse_fusion && lowered.merged_groups > 0 {
            let split = lower_partitions(graph, parts, &singletons(), &lower_opts)?;
            let merged_proj = gc_tir::sim::project(&lowered.module, &opts.machine, 1);
            let split_proj = gc_tir::sim::project(&split.module, &opts.machine, 1);
            if std::env::var("GC_DEBUG_COARSE").is_ok() {
                eprintln!(
                    "[coarse] merged: total {:.0} comp {:.0} mem {:.0} sync {:.0} | split: total {:.0} comp {:.0} mem {:.0} sync {:.0}",
                    merged_proj.cycles, merged_proj.compute_cycles, merged_proj.memory_cycles, merged_proj.sync_cycles,
                    split_proj.cycles, split_proj.compute_cycles, split_proj.memory_cycles, split_proj.sync_cycles,
                );
            }
            if split_proj.cycles < merged_proj.cycles {
                lowered = split;
            }
        }
        Ok(lowered)
    };
    let (lowered, ragged_kept) = match pin_ragged {
        Some(r) => (lower_once(r)?, r),
        None => {
            let mut ragged_kept = opts.ragged;
            let mut lowered = lower_once(opts.ragged)?;
            // Ragged blocking is gated the same way as coarse fusion:
            // the heuristic's analytic model favors dense microkernel
            // tiles, but pack-time padding streams extra bytes — on
            // memory-bound shapes the exact divisor-only plan can win.
            // Re-lower with ragged off and keep whichever the projector
            // prefers.
            if opts.ragged && lowered.ragged_partitions > 0 {
                let exact = lower_once(false)?;
                let ragged_proj = gc_tir::sim::project(&lowered.module, &opts.machine, 1);
                let exact_proj = gc_tir::sim::project(&exact.module, &opts.machine, 1);
                if std::env::var("GC_DEBUG_RAGGED").is_ok() {
                    eprintln!(
                        "[ragged] padded/edge: total {:.0} | divisor-only: total {:.0}",
                        ragged_proj.cycles, exact_proj.cycles,
                    );
                }
                if exact_proj.cycles < ragged_proj.cycles {
                    lowered = exact;
                    ragged_kept = false;
                }
            }
            (lowered, ragged_kept)
        }
    };
    let report = CompileReport {
        partitions: parts.parts.len(),
        init_partitions: parts.init_parts.len(),
        merged_groups: lowered.merged_groups,
        fused_post_ops: parts.parts.iter().map(|p| p.post_ops.len()).sum(),
        graph_ops: graph.live_ops().count(),
        ragged_partitions: lowered.ragged_partitions,
        ragged_kept,
        tuned: tuned.is_some(),
    };
    Ok((lowered, report))
}
