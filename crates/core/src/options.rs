//! Compilation options: every optimization in the paper has a switch so
//! the benchmark harness can reproduce the paper's ablations (the "middle
//! setting" of Figure 8 disables coarse-grain fusion, etc.).

use gc_graph::FusionOptions;
use gc_lowering::anchors::{PackPlacement, PostOpAnchor};
use gc_machine::MachineDescriptor;

/// Options for [`crate::Compiler`].
#[derive(Debug, Clone)]
pub struct CompileOptions {
    /// Target machine model.
    pub machine: MachineDescriptor,
    /// Fine-grain fusion limits (set `.enabled = false` to disable).
    pub fusion: FusionOptions,
    /// Coarse-grain fusion (merge fused-op parallel loops).
    pub coarse_fusion: bool,
    /// Low-precision conversion (int8 legalization).
    pub low_precision: bool,
    /// Constant-weight preprocessing (init-stage marking + caching).
    pub constant_weights: bool,
    /// Keep activations blocked between chained matmuls.
    pub propagate_layouts: bool,
    /// Tensor-size optimization at the Tensor IR level.
    pub shrink_tensors: bool,
    /// Memory-buffer reuse at the Tensor IR level.
    pub reuse_buffers: bool,
    /// Function-local buffer merging at the Tensor IR level (the
    /// within-function half of memory-buffer reuse).
    pub reuse_locals: bool,
    /// Force a post-op anchor (ablation; None = cost model).
    pub forced_post_anchor: Option<PostOpAnchor>,
    /// Force the activation pack placement (ablation; None = cost
    /// model).
    pub forced_pack: Option<PackPlacement>,
    /// Use the primitives-library kernel menu instead of the compiler
    /// heuristic (the baseline runs through this).
    pub library_params: bool,
    /// Allow the k-slicing matmul template variant: when the `M x N`
    /// block decomposition underfills the thread pool, split the
    /// reduction dimension across workers into per-slice partial
    /// accumulators plus a parallel reduction/epilogue phase.
    pub k_slice: bool,
    /// Worker threads for execution (None = host parallelism).
    pub threads: Option<usize>,
    /// Run the main stage on the tree-walking interpreter instead of
    /// compiled execution plans (`--interpret`; the reference path for
    /// differential testing).
    pub interpret: bool,
    /// Run the Tensor IR validator after every lowering-time
    /// optimization pass; a failed check aborts compilation with an
    /// error naming the guilty pass. Cheap (microseconds per function),
    /// on by default.
    pub validate: bool,
    /// Checked execution: assert at runtime that every evaluated plan
    /// offset lands in-bounds (debug mode; costs address-arithmetic
    /// work per intrinsic, off by default).
    pub checked: bool,
    /// Allow ragged (non-divisor) tile sizes for blocked-weight
    /// matmuls: edge tiles are zero-padded at pack time or clamped by
    /// tail kernels. Off = divisor-only blocking (ablation: prime dims
    /// degenerate to `KB ∈ {1, K}`).
    pub ragged: bool,
    /// Measured-tuning database. When set, compilation looks up the
    /// graph's [`crate::tune::TuneKey`] and — on a hit — warm-starts
    /// lowering with the recorded parameters and schedule decisions,
    /// skipping the analytic search's double-lowering projection gates
    /// entirely. A miss compiles analytically as usual (nothing is
    /// written back; populating the database is the tuner's job).
    pub tuning: Option<std::sync::Arc<crate::tune::TuningDb>>,
    /// When set, lowering appends every template-parameter decision it
    /// makes (problem, constraints, chosen params) to this log.
    /// Observability for the tuner and tests; does not affect the
    /// compiled plan and is deliberately excluded from plan-cache
    /// fingerprints.
    pub param_log: Option<gc_lowering::ParamLog>,
}

impl CompileOptions {
    /// Full optimization for a machine.
    pub fn new(machine: MachineDescriptor) -> Self {
        CompileOptions {
            machine,
            fusion: FusionOptions::default(),
            coarse_fusion: true,
            low_precision: true,
            constant_weights: true,
            propagate_layouts: true,
            shrink_tensors: true,
            reuse_buffers: true,
            reuse_locals: true,
            forced_post_anchor: None,
            forced_pack: None,
            library_params: false,
            k_slice: true,
            threads: None,
            interpret: false,
            validate: true,
            checked: false,
            ragged: true,
            tuning: None,
            param_log: None,
        }
    }

    /// The paper's Figure-8 "middle setting": coarse-grain fusion
    /// disabled, everything else on.
    pub fn without_coarse_fusion(machine: MachineDescriptor) -> Self {
        CompileOptions {
            coarse_fusion: false,
            ..CompileOptions::new(machine)
        }
    }

    /// All fusion off (every op lowered standalone).
    pub fn unfused(machine: MachineDescriptor) -> Self {
        CompileOptions {
            fusion: FusionOptions::disabled(),
            coarse_fusion: false,
            propagate_layouts: false,
            ..CompileOptions::new(machine)
        }
    }

    /// The same options retargeted at a pool of `threads` workers.
    ///
    /// Plans embed chunk grains and task decompositions chosen for a
    /// pool width, so a compile for one width must not run on another —
    /// gc-serve's engine shards use this to compile each shard's slice
    /// of a batch for that shard's own (narrower) pool while sharing
    /// every other knob with the model's configuration (DESIGN.md
    /// "Sharded execution").
    #[must_use]
    pub fn for_pool_width(&self, threads: usize) -> Self {
        CompileOptions {
            threads: Some(threads),
            ..self.clone()
        }
    }
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions::new(MachineDescriptor::xeon_8358())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets() {
        let o = CompileOptions::default();
        assert!(o.coarse_fusion && o.fusion.enabled);
        assert!(o.validate && !o.checked && o.reuse_locals);
        let m = CompileOptions::without_coarse_fusion(MachineDescriptor::xeon_8358());
        assert!(!m.coarse_fusion && m.fusion.enabled);
        let u = CompileOptions::unfused(MachineDescriptor::xeon_8358());
        assert!(!u.fusion.enabled && !u.propagate_layouts);
    }

    #[test]
    fn for_pool_width_retargets_only_threads() {
        let base = CompileOptions {
            checked: true,
            ragged: false,
            ..CompileOptions::default()
        };
        let narrowed = base.for_pool_width(3);
        assert_eq!(narrowed.threads, Some(3));
        assert!(narrowed.checked, "other knobs must carry over");
        assert!(!narrowed.ragged);
        assert_eq!(base.threads, None, "source options are untouched");
    }
}
