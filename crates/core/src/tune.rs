//! Measured autotuning with a persistent tuning database.
//!
//! The analytic heuristic ([`gc_lowering::choose_params`]) is a model,
//! and models are wrong at the margin: the paper's own approach is to
//! use the cost model to *shortlist* and let measurement settle close
//! calls. This module closes that loop:
//!
//! 1. a baseline compile (with a [`gc_lowering::ParamLog`] attached)
//!    discovers every template-parameter choice point the graph
//!    actually exercises;
//! 2. [`gc_lowering::choose_params_ranked`] supplies the analytic
//!    top-k candidates per choice point;
//! 3. [`tune_graph`] measures candidates one choice point at a time —
//!    each trial is a full compile through the *same warm-start path a
//!    database hit uses* (a throwaway in-memory [`TuningDb`] holding
//!    the trial record), projected on the target machine's cache
//!    simulator and timed on the host wall clock;
//! 4. the winning record — parameter overrides plus the pinned
//!    merged-vs-split and ragged-vs-exact decisions of the winning
//!    plan — is persisted in a [`TuningDb`] keyed by
//!    (graph fingerprint, shape bucket, machine, threads).
//!
//! A later compile with [`crate::CompileOptions::tuning`] set to that
//! database warm-starts: one lowering, no candidate search, no
//! double-lowering projection gates, zero re-measurement.
//!
//! Winner selection is by *projected* cycles on the target machine
//! model (the host running the tuner is rarely the 32-core target);
//! host wall time is measured and recorded with each winner as
//! corroborating evidence, and reported so a tuner running *on* the
//! target can see both.
//!
//! The on-disk format is a line-oriented text file (this repository
//! uses no serialization dependencies). Floats round-trip bit-exactly
//! via `f64::to_bits` hex.

use crate::{CompileOptions, Compiler, CoreError};
use gc_graph::{Fnv1a, Graph};
use gc_lowering::heuristic::ParamChoice;
use gc_lowering::{choose_params_ranked, Constraints, EdgePolicy, MatmulParams, MatmulProblem};
use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Identity of a tuning-database entry: which graph, at which leading
/// shape, compiled for which machine, executed with how many threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TuneKey {
    /// Canonical fingerprint of the *optimized* graph
    /// ([`gc_graph::graph_fingerprint`] — weights included).
    pub graph: u64,
    /// Shape bucket: the leading dimension of graph input 0 (batch /
    /// token count — the dimension serving actually varies). The graph
    /// fingerprint already covers all shapes exactly; keeping the
    /// bucket explicit makes entries legible in the database file.
    pub shape_bucket: u64,
    /// FNV-1a of the machine descriptor's debug form *and* the active
    /// microkernel ISA: wall-clock measurements taken under one backend
    /// (say `GC_FORCE_ISA=scalar`) must never warm-start a process
    /// running another.
    pub machine: u64,
    /// Worker thread count (0 = host parallelism).
    pub threads: u64,
}

impl TuneKey {
    /// The key for an optimized graph under `opts`, bound to the
    /// process-wide active microkernel ISA.
    ///
    /// # Errors
    ///
    /// Propagates fingerprinting errors (cyclic graph, unbound
    /// constant).
    pub fn for_graph(graph: &Graph, opts: &CompileOptions) -> Result<TuneKey, CoreError> {
        Self::for_graph_with_isa(graph, opts, gc_microkernel::arch::active_isa().name())
    }

    /// [`Self::for_graph`] with an explicit ISA name, so tests can
    /// exercise the keying without flipping the process-wide dispatch
    /// table (which is resolved once and never changes).
    pub fn for_graph_with_isa(
        graph: &Graph,
        opts: &CompileOptions,
        isa: &str,
    ) -> Result<TuneKey, CoreError> {
        let gfp = gc_graph::graph_fingerprint(graph)?;
        let bucket = graph
            .inputs()
            .first()
            .and_then(|&i| graph.desc(i).shape().first().copied())
            .unwrap_or(1) as u64;
        let mut h = Fnv1a::new();
        h.write_str(&format!("{:?}", opts.machine));
        h.write_str(" isa=");
        h.write_str(isa);
        Ok(TuneKey {
            graph: gfp,
            shape_bucket: bucket,
            machine: h.finish(),
            threads: opts.threads.unwrap_or(0) as u64,
        })
    }
}

/// One tuned compilation plan: the measured parameter winners plus the
/// schedule decisions of the winning plan, pinned so a warm start does
/// exactly one lowering.
#[derive(Debug, Clone, PartialEq)]
pub struct TunedRecord {
    /// Winning parameters per choice point (exact
    /// `(problem, constraints)` identity).
    pub choices: Vec<ParamChoice>,
    /// Pinned merged-vs-split decision. `None` leaves the projection
    /// gate active (used for trial records, where the gate *is* part
    /// of what is being measured).
    pub merge_coarse: Option<bool>,
    /// Pinned ragged-vs-exact decision; `None` as above.
    pub ragged: Option<bool>,
    /// Projected steady-state cycles of the winning plan.
    pub projected_cycles: f64,
    /// Best host wall time observed for the winning plan
    /// (nanoseconds per execution).
    pub wall_ns: u64,
}

impl TunedRecord {
    /// The override map lowering consults.
    pub fn overrides(&self) -> gc_lowering::ParamOverrides {
        let mut o = gc_lowering::ParamOverrides::new();
        for c in &self.choices {
            o.insert(c.problem, c.constraints, c.params);
        }
        o
    }
}

/// A persistent (or in-memory) map from [`TuneKey`] to [`TunedRecord`].
///
/// Thread-safe behind a mutex; shared into [`CompileOptions`] as an
/// `Arc`. File-backed databases load eagerly on [`TuningDb::open`] and
/// write only on [`TuningDb::save`] — compilation never touches disk.
#[derive(Debug, Default)]
pub struct TuningDb {
    path: Option<PathBuf>,
    entries: Mutex<HashMap<TuneKey, TunedRecord>>,
}

impl TuningDb {
    /// An empty in-memory database ([`TuningDb::save`] is a no-op).
    pub fn in_memory() -> Self {
        TuningDb::default()
    }

    /// Open (or create) a file-backed database. A missing file yields
    /// an empty database that [`TuningDb::save`] will create.
    ///
    /// # Errors
    ///
    /// I/O errors reading the file, or a malformed database.
    pub fn open(path: impl AsRef<Path>) -> io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let entries = match std::fs::read_to_string(&path) {
            Ok(text) => parse_db(&text)?,
            Err(e) if e.kind() == io::ErrorKind::NotFound => HashMap::new(),
            Err(e) => return Err(e),
        };
        Ok(TuningDb {
            path: Some(path),
            entries: Mutex::new(entries),
        })
    }

    /// The backing file, if any.
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }

    /// The record for `key`, if present.
    pub fn lookup(&self, key: &TuneKey) -> Option<TunedRecord> {
        self.entries.lock().unwrap().get(key).cloned()
    }

    /// Insert (or replace) the record for `key`.
    pub fn insert(&self, key: TuneKey, record: TunedRecord) {
        self.entries.lock().unwrap().insert(key, record);
    }

    /// Number of tuned entries.
    pub fn len(&self) -> usize {
        self.entries.lock().unwrap().len()
    }

    /// Whether the database holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Content fingerprint: FNV-1a over the canonical (key-sorted)
    /// serialized form. Two databases fingerprint equal iff they hold
    /// identical entries — the serving plan cache hashes this so plans
    /// compiled under different tuning data never alias.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv1a::new();
        h.write_str(&self.serialize());
        h.finish()
    }

    /// Serialize to the canonical text form (entries key-sorted).
    pub fn serialize(&self) -> String {
        let entries = self.entries.lock().unwrap();
        let mut keys: Vec<TuneKey> = entries.keys().copied().collect();
        keys.sort();
        let mut out = String::from("gc-tunedb v1\n");
        for k in keys {
            write_record(&mut out, &k, &entries[&k]);
        }
        out
    }

    /// Write the database to its backing file (no-op for in-memory).
    ///
    /// # Errors
    ///
    /// I/O errors writing the file.
    pub fn save(&self) -> io::Result<()> {
        match &self.path {
            Some(p) => std::fs::write(p, self.serialize()),
            None => Ok(()),
        }
    }
}

fn opt_usize(v: Option<usize>) -> String {
    match v {
        Some(x) => x.to_string(),
        None => "-".to_string(),
    }
}

fn opt_bool(v: Option<bool>) -> &'static str {
    match v {
        Some(true) => "1",
        Some(false) => "0",
        None => "-",
    }
}

fn write_record(out: &mut String, key: &TuneKey, r: &TunedRecord) {
    // Exhaustive destructuring throughout: adding a field to the key,
    // the record, or any of the three choice-point structs is a
    // compile error here, forcing the format (and its version tag) to
    // be revisited rather than silently dropping data.
    let TuneKey {
        graph,
        shape_bucket,
        machine,
        threads,
    } = *key;
    let TunedRecord {
        choices,
        merge_coarse,
        ragged,
        projected_cycles,
        wall_ns,
    } = r;
    out.push_str(&format!(
        "record {graph:016x} {shape_bucket} {machine:016x} {threads} {} {} {:016x} {wall_ns}\n",
        opt_bool(*merge_coarse),
        opt_bool(*ragged),
        projected_cycles.to_bits(),
    ));
    for c in choices {
        let MatmulProblem {
            batch,
            m,
            n,
            k,
            elem_bytes,
        } = c.problem;
        let Constraints {
            full_n_per_task,
            fixed_mb,
            fixed_kb,
            fixed_tasks,
            allow_k_slice,
            allow_ragged_m,
            allow_ragged_n,
            allow_ragged_k,
        } = c.constraints;
        let MatmulParams {
            mpn,
            npn,
            mb,
            nb,
            kb,
            bs,
            kpn,
            edge,
        } = c.params;
        let edge = match edge {
            EdgePolicy::Pad => "pad",
            EdgePolicy::Tail => "tail",
        };
        out.push_str(&format!(
            "choice {batch} {m} {n} {k} {elem_bytes} | {} {} {} {} {} {} {} {} | \
             {mpn} {npn} {mb} {nb} {kb} {bs} {kpn} {edge}\n",
            u8::from(full_n_per_task),
            opt_usize(fixed_mb),
            opt_usize(fixed_kb),
            opt_usize(fixed_tasks),
            u8::from(allow_k_slice),
            u8::from(allow_ragged_m),
            u8::from(allow_ragged_n),
            u8::from(allow_ragged_k),
        ));
    }
    out.push_str("end\n");
}

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("tunedb: {}", msg.into()),
    )
}

fn parse_usize(s: &str) -> io::Result<usize> {
    s.parse().map_err(|_| bad(format!("bad integer {s:?}")))
}

fn parse_opt_usize(s: &str) -> io::Result<Option<usize>> {
    if s == "-" {
        Ok(None)
    } else {
        parse_usize(s).map(Some)
    }
}

fn parse_opt_bool(s: &str) -> io::Result<Option<bool>> {
    match s {
        "-" => Ok(None),
        "0" => Ok(Some(false)),
        "1" => Ok(Some(true)),
        _ => Err(bad(format!("bad flag {s:?}"))),
    }
}

fn parse_bool(s: &str) -> io::Result<bool> {
    match s {
        "0" => Ok(false),
        "1" => Ok(true),
        _ => Err(bad(format!("bad bool {s:?}"))),
    }
}

fn parse_hex(s: &str) -> io::Result<u64> {
    u64::from_str_radix(s, 16).map_err(|_| bad(format!("bad hex {s:?}")))
}

fn parse_choice(rest: &str) -> io::Result<ParamChoice> {
    let sections: Vec<&str> = rest.split('|').map(str::trim).collect();
    let [prob, cons, par] = sections[..] else {
        return Err(bad("choice line needs 3 '|'-separated sections"));
    };
    let p: Vec<&str> = prob.split_whitespace().collect();
    let [batch, m, n, k, eb] = p[..] else {
        return Err(bad("problem section needs 5 fields"));
    };
    let problem = MatmulProblem {
        batch: parse_usize(batch)?,
        m: parse_usize(m)?,
        n: parse_usize(n)?,
        k: parse_usize(k)?,
        elem_bytes: parse_usize(eb)?,
    };
    let c: Vec<&str> = cons.split_whitespace().collect();
    let [fnt, fmb, fkb, ft, ks, rm, rn, rk] = c[..] else {
        return Err(bad("constraints section needs 8 fields"));
    };
    let constraints = Constraints {
        full_n_per_task: parse_bool(fnt)?,
        fixed_mb: parse_opt_usize(fmb)?,
        fixed_kb: parse_opt_usize(fkb)?,
        fixed_tasks: parse_opt_usize(ft)?,
        allow_k_slice: parse_bool(ks)?,
        allow_ragged_m: parse_bool(rm)?,
        allow_ragged_n: parse_bool(rn)?,
        allow_ragged_k: parse_bool(rk)?,
    };
    let q: Vec<&str> = par.split_whitespace().collect();
    let [mpn, npn, mb, nb, kb, bs, kpn, edge] = q[..] else {
        return Err(bad("params section needs 8 fields"));
    };
    let params = MatmulParams {
        mpn: parse_usize(mpn)?,
        npn: parse_usize(npn)?,
        mb: parse_usize(mb)?,
        nb: parse_usize(nb)?,
        kb: parse_usize(kb)?,
        bs: parse_usize(bs)?,
        kpn: parse_usize(kpn)?,
        edge: match edge {
            "pad" => EdgePolicy::Pad,
            "tail" => EdgePolicy::Tail,
            other => return Err(bad(format!("bad edge policy {other:?}"))),
        },
    };
    Ok(ParamChoice {
        problem,
        constraints,
        params,
    })
}

fn parse_db(text: &str) -> io::Result<HashMap<TuneKey, TunedRecord>> {
    let mut lines = text.lines();
    match lines.next() {
        Some("gc-tunedb v1") => {}
        other => return Err(bad(format!("bad header {other:?}"))),
    }
    let mut entries = HashMap::new();
    let mut current: Option<(TuneKey, TunedRecord)> = None;
    for line in lines {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let (tag, rest) = line.split_once(' ').unwrap_or((line, ""));
        match tag {
            "record" => {
                if current.is_some() {
                    return Err(bad("record without closing end"));
                }
                let f: Vec<&str> = rest.split_whitespace().collect();
                let [graph, bucket, machine, threads, merge, ragged, cycles, wall] = f[..] else {
                    return Err(bad("record line needs 8 fields"));
                };
                let key = TuneKey {
                    graph: parse_hex(graph)?,
                    shape_bucket: parse_usize(bucket)? as u64,
                    machine: parse_hex(machine)?,
                    threads: parse_usize(threads)? as u64,
                };
                let rec = TunedRecord {
                    choices: Vec::new(),
                    merge_coarse: parse_opt_bool(merge)?,
                    ragged: parse_opt_bool(ragged)?,
                    projected_cycles: f64::from_bits(parse_hex(cycles)?),
                    wall_ns: parse_usize(wall)? as u64,
                };
                current = Some((key, rec));
            }
            "choice" => match &mut current {
                Some((_, rec)) => rec.choices.push(parse_choice(rest)?),
                None => return Err(bad("choice outside record")),
            },
            "end" => match current.take() {
                Some((key, rec)) => {
                    entries.insert(key, rec);
                }
                None => return Err(bad("end outside record")),
            },
            other => return Err(bad(format!("unknown tag {other:?}"))),
        }
    }
    if current.is_some() {
        return Err(bad("unterminated record"));
    }
    Ok(entries)
}

/// Tuning budget and measurement settings.
#[derive(Debug, Clone, Copy)]
pub struct TuneConfig {
    /// Analytic candidates ranked per choice point (including the
    /// analytic winner itself).
    pub top_k: usize,
    /// Maximum measured trials across all choice points.
    pub max_trials: usize,
    /// Host executions per wall-clock measurement (minimum is kept).
    pub wall_reps: usize,
}

impl Default for TuneConfig {
    fn default() -> Self {
        TuneConfig {
            top_k: 4,
            max_trials: 24,
            wall_reps: 3,
        }
    }
}

/// What one [`tune_graph`] run did.
#[derive(Debug, Clone)]
pub struct TuneReport {
    /// The database key tuned.
    pub key: TuneKey,
    /// True if the database already held this key (no measurement ran).
    pub warm_start: bool,
    /// Distinct template-parameter choice points the graph exercises.
    pub choice_points: usize,
    /// Measured trials performed (0 on a warm start).
    pub trials: usize,
    /// Projected cycles of the analytic (untuned) plan.
    pub analytic_cycles: f64,
    /// Projected cycles of the winning plan.
    pub best_cycles: f64,
    /// Best host wall time of the winning plan (ns per execution).
    pub wall_ns: u64,
}

impl TuneReport {
    /// Projected speedup of measured tuning over the analytic plan.
    pub fn speedup(&self) -> f64 {
        if self.best_cycles > 0.0 {
            self.analytic_cycles / self.best_cycles
        } else {
            1.0
        }
    }
}

/// Compile + measure one plan: projected cycles on the target machine
/// and best-of-`reps` host wall time.
fn measure(
    opts: &CompileOptions,
    graph: &Graph,
    inputs: &[gc_tensor::Tensor],
    reps: usize,
) -> Result<(f64, u64), CoreError> {
    let compiled = Compiler::new(opts.clone()).compile(graph.clone())?;
    let projected = compiled.project().cycles;
    let mut best_ns = u64::MAX;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        compiled.execute(inputs)?;
        best_ns = best_ns.min(t0.elapsed().as_nanos() as u64);
    }
    Ok((projected, best_ns))
}

fn random_inputs(
    graph: &Graph,
    opts: &CompileOptions,
) -> Result<Vec<gc_tensor::Tensor>, CoreError> {
    // Descriptors must come from the *optimized* graph (low-precision
    // conversion can retype inputs), exactly as Compiler::compile sees
    // them.
    let mut g = graph.clone();
    crate::pipeline::optimize_graph(&mut g, opts)?;
    Ok(g.inputs()
        .iter()
        .enumerate()
        .map(|(i, &lt)| {
            let d = g.desc(lt);
            gc_tensor::Tensor::random(d.shape(), d.dtype(), 0x5eed + i as u64)
        })
        .collect())
}

/// Measured autotuning: discover the graph's template-parameter choice
/// points, measure the analytic top-k candidates at each, and persist
/// the winning record (parameters + pinned schedule decisions) in
/// `db`. Returns immediately (zero trials) if `db` already holds the
/// graph's key.
///
/// `opts` is the compilation configuration to tune *for*; its `tuning`
/// and `param_log` fields are ignored (the tuner manages both).
///
/// # Errors
///
/// Propagates compilation and execution errors.
pub fn tune_graph(
    graph: &Graph,
    opts: &CompileOptions,
    db: &Arc<TuningDb>,
    cfg: &TuneConfig,
) -> Result<TuneReport, CoreError> {
    let mut base = opts.clone();
    base.tuning = None;
    base.param_log = None;

    // The key is computed over the optimized graph, matching the
    // lookup the warm-start path performs inside the pipeline.
    let key = {
        let mut g = graph.clone();
        crate::pipeline::optimize_graph(&mut g, &base)?;
        TuneKey::for_graph(&g, &base)?
    };
    if let Some(rec) = db.lookup(&key) {
        return Ok(TuneReport {
            key,
            warm_start: true,
            choice_points: rec.choices.len(),
            trials: 0,
            analytic_cycles: rec.projected_cycles,
            best_cycles: rec.projected_cycles,
            wall_ns: rec.wall_ns,
        });
    }

    let inputs = random_inputs(graph, &base)?;

    // Baseline: analytic compile with the decision log attached.
    let log: gc_lowering::ParamLog = Arc::new(Mutex::new(Vec::new()));
    let mut logged_opts = base.clone();
    logged_opts.param_log = Some(log.clone());
    let (analytic_cycles, analytic_wall) = measure(&logged_opts, graph, &inputs, cfg.wall_reps)?;

    // Choice points: first-seen order, deduplicated by identity. The
    // log may contain several entries per point (the projection gates
    // lower more than once); the *choice* at a given point is the same
    // in each pass, so first-seen wins.
    let mut points: Vec<ParamChoice> = Vec::new();
    for c in log.lock().unwrap().iter() {
        if !points
            .iter()
            .any(|p| p.problem == c.problem && p.constraints == c.constraints)
        {
            points.push(*c);
        }
    }

    let mut best: Vec<ParamChoice> = points.clone();
    let mut best_cycles = analytic_cycles;
    let mut best_wall = analytic_wall;
    let mut trials = 0usize;

    // Coordinate descent, one pass: vary each choice point across its
    // analytic top-k while holding the current best at every other
    // point. Every trial goes through the same warm-start machinery a
    // database hit uses — an in-memory db holding the trial record —
    // so what we measure is exactly what a warm start will replay.
    'outer: for i in 0..best.len() {
        let ranked = choose_params_ranked(
            &base.machine,
            &best[i].problem,
            &best[i].constraints,
            cfg.top_k,
        );
        for cand in ranked {
            if trials >= cfg.max_trials {
                break 'outer;
            }
            if cand == best[i].params {
                continue;
            }
            let mut trial = best.clone();
            trial[i].params = cand;
            let trial_db = Arc::new(TuningDb::in_memory());
            trial_db.insert(
                key,
                TunedRecord {
                    choices: trial.clone(),
                    merge_coarse: None, // gates stay active during trials
                    ragged: None,
                    projected_cycles: 0.0,
                    wall_ns: 0,
                },
            );
            let mut trial_opts = base.clone();
            trial_opts.tuning = Some(trial_db);
            let (cycles, wall) = measure(&trial_opts, graph, &inputs, cfg.wall_reps)?;
            trials += 1;
            if cycles < best_cycles {
                best = trial;
                best_cycles = cycles;
                best_wall = wall;
            }
        }
    }

    // Final pass: compile the winner once more (gates active) to learn
    // which schedule decisions the winning plan actually uses, then pin
    // them so warm starts lower exactly once.
    let final_db = Arc::new(TuningDb::in_memory());
    final_db.insert(
        key,
        TunedRecord {
            choices: best.clone(),
            merge_coarse: None,
            ragged: None,
            projected_cycles: 0.0,
            wall_ns: 0,
        },
    );
    let mut final_opts = base.clone();
    final_opts.tuning = Some(final_db);
    let report = Compiler::new(final_opts)
        .compile(graph.clone())?
        .report()
        .clone();

    db.insert(
        key,
        TunedRecord {
            choices: best,
            merge_coarse: Some(report.merged_groups > 0),
            // pin the knob setting that produced the plan, not whether
            // the plan has ragged tiles: choice-point identities carry
            // the lowering's allow_ragged_* context
            ragged: Some(report.ragged_kept),
            projected_cycles: best_cycles,
            wall_ns: best_wall,
        },
    );

    Ok(TuneReport {
        key,
        warm_start: false,
        choice_points: points.len(),
        trials,
        analytic_cycles,
        best_cycles,
        wall_ns: best_wall,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_choice() -> ParamChoice {
        ParamChoice {
            problem: MatmulProblem::new(256, 1024, 479, 4),
            constraints: Constraints {
                full_n_per_task: true,
                fixed_mb: Some(32),
                fixed_kb: None,
                fixed_tasks: Some(16),
                allow_k_slice: true,
                allow_ragged_m: false,
                allow_ragged_n: true,
                allow_ragged_k: true,
            },
            params: MatmulParams {
                mpn: 8,
                npn: 4,
                mb: 32,
                nb: 64,
                kb: 60,
                bs: 2,
                kpn: 1,
                edge: EdgePolicy::Tail,
            },
        }
    }

    fn sample_record() -> TunedRecord {
        TunedRecord {
            choices: vec![sample_choice()],
            merge_coarse: Some(true),
            ragged: None,
            // one ULP above 1234567.0 — no short decimal form, to
            // prove bit-exact round-tripping
            projected_cycles: f64::from_bits(0x4132_D687_0000_0001),
            wall_ns: 987654321,
        }
    }

    #[test]
    fn serialize_parse_round_trips_bit_exact() {
        let db = TuningDb::in_memory();
        let key = TuneKey {
            graph: 0xdead_beef_cafe_f00d,
            shape_bucket: 256,
            machine: 42,
            threads: 0,
        };
        db.insert(key, sample_record());
        let text = db.serialize();
        let parsed = parse_db(&text).unwrap();
        assert_eq!(parsed.len(), 1);
        let rec = &parsed[&key];
        assert_eq!(rec, &sample_record());
        assert_eq!(
            rec.projected_cycles.to_bits(),
            sample_record().projected_cycles.to_bits()
        );
    }

    #[test]
    fn fingerprint_tracks_content() {
        let a = TuningDb::in_memory();
        let b = TuningDb::in_memory();
        assert_eq!(a.fingerprint(), b.fingerprint());
        let key = TuneKey {
            graph: 1,
            shape_bucket: 2,
            machine: 3,
            threads: 4,
        };
        a.insert(key, sample_record());
        assert_ne!(a.fingerprint(), b.fingerprint());
        b.insert(key, sample_record());
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn malformed_db_is_rejected() {
        assert!(parse_db("not a db").is_err());
        assert!(parse_db("gc-tunedb v1\nrecord 0 0 0 0 - -\n").is_err());
        assert!(
            parse_db("gc-tunedb v1\nchoice 1 2 3 4 4 | 0 - - - 0 0 0 0 | 1 1 1 1 1 1 1 pad\n")
                .is_err()
        );
        // unterminated record
        assert!(parse_db(
            "gc-tunedb v1\nrecord 0000000000000001 2 0000000000000003 4 - - 0000000000000000 0\n"
        )
        .is_err());
    }

    #[test]
    fn open_missing_file_is_empty_and_save_creates_it() {
        let dir = std::env::temp_dir().join(format!("gc-tunedb-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("db.txt");
        let _ = std::fs::remove_file(&path);
        let db = TuningDb::open(&path).unwrap();
        assert!(db.is_empty());
        let key = TuneKey {
            graph: 7,
            shape_bucket: 8,
            machine: 9,
            threads: 1,
        };
        db.insert(key, sample_record());
        db.save().unwrap();
        let reloaded = TuningDb::open(&path).unwrap();
        assert_eq!(reloaded.lookup(&key).unwrap(), sample_record());
        let _ = std::fs::remove_file(&path);
    }
}
