//! oneDNN Graph Compiler reproduction — public compiler API.
//!
//! The facade crate: build a DNN computation graph with [`gc_graph`],
//! hand it to a [`Compiler`], get back a [`CompiledPartition`] you can
//! execute on real tensors and *project* onto the paper's 32-core Xeon
//! machine model.
//!
//! ```
//! use gc_core::{Compiler, CompileOptions};
//! use gc_graph::{Graph, OpKind, UnaryKind};
//! use gc_machine::MachineDescriptor;
//! use gc_tensor::{DataType, Tensor, TensorDesc};
//!
//! // x[16, 32] x W[32, 8] -> relu
//! let mut g = Graph::new();
//! let x = g.add_input(TensorDesc::new([16, 32], DataType::F32), "x");
//! let w = g.add_constant(Tensor::random(&[32, 8], DataType::F32, 7), "w");
//! let y = g.add_op(OpKind::MatMul, &[x, w])?;
//! let z = g.add_op(OpKind::Unary(UnaryKind::Relu), &[y])?;
//! g.mark_output(z);
//!
//! let mut opts = CompileOptions::new(MachineDescriptor::xeon_8358());
//! opts.threads = Some(1);
//! let compiled = Compiler::new(opts).compile(g)?;
//! let x_val = Tensor::random(&[16, 32], DataType::F32, 1);
//! let (outs, _stats) = compiled.execute(&[x_val])?;
//! assert_eq!(outs[0].desc().volume(), 16 * 8);
//! # Ok::<(), gc_core::CoreError>(())
//! ```

#![warn(missing_docs)]

mod options;
pub mod pipeline;
pub mod tune;

pub use options::CompileOptions;
pub use pipeline::CompileReport;
pub use tune::{tune_graph, TuneConfig, TuneKey, TuneReport, TunedRecord, TuningDb};

use gc_graph::Graph;
use gc_machine::MachineDescriptor;
use gc_runtime::{ExecStats, ThreadPool};
use gc_tensor::Tensor;
use gc_tir::engine::Executable;
use gc_tir::sim::Projection;
use std::fmt;
use std::sync::Arc;

/// Error type of the compiler facade.
#[derive(Debug)]
pub enum CoreError {
    /// Graph construction / pass error.
    Graph(gc_graph::GraphError),
    /// Lowering error.
    Lower(gc_lowering::LowerError),
    /// Execution error.
    Exec(gc_tir::exec::ExecError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Graph(e) => write!(f, "graph: {e}"),
            CoreError::Lower(e) => write!(f, "lower: {e}"),
            CoreError::Exec(e) => write!(f, "exec: {e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Graph(e) => Some(e),
            CoreError::Lower(e) => Some(e),
            CoreError::Exec(e) => Some(e),
        }
    }
}

impl From<gc_graph::GraphError> for CoreError {
    fn from(e: gc_graph::GraphError) -> Self {
        CoreError::Graph(e)
    }
}

impl From<gc_lowering::LowerError> for CoreError {
    fn from(e: gc_lowering::LowerError) -> Self {
        CoreError::Lower(e)
    }
}

impl From<gc_tir::exec::ExecError> for CoreError {
    fn from(e: gc_tir::exec::ExecError) -> Self {
        CoreError::Exec(e)
    }
}

/// The tensor compiler.
#[derive(Debug, Clone)]
pub struct Compiler {
    options: CompileOptions,
}

impl Compiler {
    /// Create a compiler with the given options.
    pub fn new(options: CompileOptions) -> Self {
        Compiler { options }
    }

    /// Compiler with full optimization for `machine`.
    pub fn for_machine(machine: MachineDescriptor) -> Self {
        Compiler::new(CompileOptions::new(machine))
    }

    /// Options in effect.
    pub fn options(&self) -> &CompileOptions {
        &self.options
    }

    /// Compile a computation graph into an executable partition.
    ///
    /// # Errors
    ///
    /// Returns an error if the graph is invalid or uses an unsupported
    /// pattern.
    pub fn compile(&self, graph: Graph) -> Result<CompiledPartition, CoreError> {
        let pool = Arc::new(match self.options.threads {
            Some(n) => ThreadPool::new(n),
            None => ThreadPool::with_host_parallelism(),
        });
        let arts = self.compile_artifacts(graph, pool)?;
        Ok(CompiledPartition {
            exe: arts.exe,
            report: arts.report,
            machine: self.options.machine.clone(),
            input_descs: arts.input_descs,
            output_descs: arts.output_descs,
        })
    }

    /// The reusable compile-to-executable entry point: run the full
    /// pipeline on `graph` and return the raw [`Executable`] plus the
    /// compile report and post-optimization input/output descriptors.
    ///
    /// Unlike [`Compiler::compile`], the caller supplies the thread
    /// pool, so serving runtimes can share one pool (and thus one set
    /// of workers) across many compiled models.
    ///
    /// # Errors
    ///
    /// Returns an error if the graph is invalid or uses an unsupported
    /// pattern.
    pub fn compile_artifacts(
        &self,
        mut graph: Graph,
        pool: Arc<ThreadPool>,
    ) -> Result<CompiledArtifacts, CoreError> {
        pipeline::optimize_graph(&mut graph, &self.options)?;
        let input_descs: Vec<gc_tensor::TensorDesc> = graph
            .inputs()
            .iter()
            .map(|&i| graph.desc(i).clone())
            .collect();
        let output_descs: Vec<gc_tensor::TensorDesc> = graph
            .outputs()
            .iter()
            .map(|&o| graph.desc(o).clone())
            .collect();
        let (parts, groups) = pipeline::partition_graph(&graph, &self.options)?;
        let (lowered, report) = pipeline::lower(&graph, &parts, &groups, &self.options)?;
        let mode = if self.options.interpret {
            gc_tir::ExecMode::Interpret
        } else {
            gc_tir::ExecMode::Compiled
        };
        let exe = Executable::with_mode(lowered.module, lowered.weight_seeds, pool, 1, mode)
            .with_exec_options(if self.options.checked {
                gc_tir::ExecOptions::checked()
            } else {
                gc_tir::ExecOptions::default()
            });
        Ok(CompiledArtifacts {
            exe,
            report,
            input_descs,
            output_descs,
        })
    }
}

/// The raw products of one compilation, for callers (serving runtimes,
/// caches) that manage execution themselves.
#[derive(Debug)]
pub struct CompiledArtifacts {
    /// The executable partition.
    pub exe: Executable,
    /// What the compiler did.
    pub report: CompileReport,
    /// Post-optimization input descriptors (graph-input order).
    pub input_descs: Vec<gc_tensor::TensorDesc>,
    /// Post-optimization output descriptors (graph-output order).
    pub output_descs: Vec<gc_tensor::TensorDesc>,
}

/// A compiled DNN computation partition.
#[derive(Debug)]
pub struct CompiledPartition {
    exe: Executable,
    report: CompileReport,
    machine: MachineDescriptor,
    input_descs: Vec<gc_tensor::TensorDesc>,
    output_descs: Vec<gc_tensor::TensorDesc>,
}

impl CompiledPartition {
    /// Execute with one tensor per graph input (graph-input order).
    /// Outputs come back flattened to rank-1 tensors in graph-output
    /// order (shape metadata is the caller's graph's concern).
    ///
    /// # Errors
    ///
    /// Returns an error on input mismatch.
    pub fn execute(&self, inputs: &[Tensor]) -> Result<(Vec<Tensor>, ExecStats), CoreError> {
        // full shape validation (the engine only checks dtype/volume, so
        // a transposed input of equal volume would otherwise slip by)
        for (i, (t, want)) in inputs.iter().zip(&self.input_descs).enumerate() {
            if t.desc().shape() != want.shape() {
                return Err(CoreError::Exec(gc_tir::exec::ExecError(format!(
                    "input {i} expects shape {:?}, got {:?}",
                    want.shape(),
                    t.desc().shape()
                ))));
            }
        }
        Ok(self.exe.execute(inputs)?)
    }

    /// Expected input descriptors (graph-input order).
    pub fn input_descs(&self) -> &[gc_tensor::TensorDesc] {
        &self.input_descs
    }

    /// Output descriptors (graph-output order; outputs from
    /// [`CompiledPartition::execute`] come back flattened to rank 1
    /// with these volumes).
    pub fn output_descs(&self) -> &[gc_tensor::TensorDesc] {
        &self.output_descs
    }

    /// Project one steady-state execution on the compile-target machine.
    pub fn project(&self) -> Projection {
        self.exe.project(&self.machine)
    }

    /// Project on an arbitrary machine.
    pub fn project_on(&self, machine: &MachineDescriptor) -> Projection {
        self.exe.project(machine)
    }

    /// What the compiler did (partitions, merges, fused post-ops).
    pub fn report(&self) -> &CompileReport {
        &self.report
    }

    /// The underlying executable (advanced inspection).
    pub fn executable(&self) -> &Executable {
        &self.exe
    }

    /// Pretty-print the compiled Tensor IR.
    pub fn tir_text(&self) -> String {
        gc_tir::printer::print_module(self.exe.module())
    }
}
