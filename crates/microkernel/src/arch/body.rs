//! Generic kernel bodies: one body per kernel family, written against
//! the [`SimdF32`] / [`DotU8I8`] traits and instantiated per backend by
//! the `#[target_feature]` wrappers in the arch submodules.
//!
//! # Safety
//!
//! Every function here is `unsafe` with the same two-part contract:
//!
//! - the caller runs on a CPU supporting the backend's ISA (upheld by
//!   the dispatch table, which only hands out detected backends);
//! - slice arguments cover the strided extents documented per function
//!   (upheld by the asserts in the public microkernel entry points).

// The register-tile loops index fixed-size accumulator arrays and
// strided tail ranges on purpose; iterator forms obscure the blocking.
#![allow(clippy::needless_range_loop)]

use super::simd::{DotU8I8, SimdF32};

/// Register-tile columns (B panels) of the brgemm bodies, shared by all
/// backends; rows come from the backend's `MR`.
pub(crate) const NR: usize = 4;

/// One A×B tile product added into C: A is `[m, k]` row-major, B is
/// `[n, k]` panel-major, C is `[m, n]` row-major. Walks C in
/// `S::MR x NR` register blocks; ragged edges dispatch to narrower
/// instantiations of the same const-generic micro body, which keeps
/// each C element's reduction order independent of the block size (and
/// therefore of `m`/`n`), so tail kernels match full kernels bit-exact
/// within one backend.
///
/// # Safety
///
/// `a.len() >= m * k`, `b.len() >= n * k`, `c.len() >= m * n`, and the
/// backend's ISA is available.
#[inline(always)]
pub(crate) unsafe fn gemm_f32<S: SimdF32>(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
) {
    debug_assert!(a.len() >= m * k && b.len() >= n * k && c.len() >= m * n);
    debug_assert!(S::MR <= 4 && S::MR >= 1);
    let mut i = 0;
    while i < m {
        let mr = S::MR.min(m - i);
        let mut j = 0;
        while j < n {
            let nr = NR.min(n - j);
            let a_blk = &a[i * k..];
            let b_blk = &b[j * k..];
            let c_blk = &mut c[i * n + j..];
            match (mr, nr) {
                (1, 1) => micro::<S, 1, 1>(k, n, a_blk, b_blk, c_blk),
                (1, 2) => micro::<S, 1, 2>(k, n, a_blk, b_blk, c_blk),
                (1, 3) => micro::<S, 1, 3>(k, n, a_blk, b_blk, c_blk),
                (1, 4) => micro::<S, 1, 4>(k, n, a_blk, b_blk, c_blk),
                (2, 1) => micro::<S, 2, 1>(k, n, a_blk, b_blk, c_blk),
                (2, 2) => micro::<S, 2, 2>(k, n, a_blk, b_blk, c_blk),
                (2, 3) => micro::<S, 2, 3>(k, n, a_blk, b_blk, c_blk),
                (2, 4) => micro::<S, 2, 4>(k, n, a_blk, b_blk, c_blk),
                (3, 1) => micro::<S, 3, 1>(k, n, a_blk, b_blk, c_blk),
                (3, 2) => micro::<S, 3, 2>(k, n, a_blk, b_blk, c_blk),
                (3, 3) => micro::<S, 3, 3>(k, n, a_blk, b_blk, c_blk),
                (3, 4) => micro::<S, 3, 4>(k, n, a_blk, b_blk, c_blk),
                (4, 1) => micro::<S, 4, 1>(k, n, a_blk, b_blk, c_blk),
                (4, 2) => micro::<S, 4, 2>(k, n, a_blk, b_blk, c_blk),
                (4, 3) => micro::<S, 4, 3>(k, n, a_blk, b_blk, c_blk),
                (4, 4) => micro::<S, 4, 4>(k, n, a_blk, b_blk, c_blk),
                _ => unreachable!("register block {mr}x{nr} out of table"),
            }
            j += nr;
        }
        i += mr;
    }
}

/// The register-tiled micro body: an `MR_ x NR_` block of C at `c[0]`
/// (row stride `n`), A rows at `a[0]` (row stride `k`), B panels at
/// `b[0]` (panel stride `k`). Each output keeps one vector accumulator
/// reduced once at the end — the same order for every block size, so
/// results are bit-identical across register-block dispatch decisions
/// within a backend.
#[inline(always)]
unsafe fn micro<S: SimdF32, const MR_: usize, const NR_: usize>(
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
) {
    let mut acc = [[S::zero(); NR_]; MR_];
    let chunks = k / S::LANES;
    let ap = a.as_ptr();
    let bp = b.as_ptr();
    for ch in 0..chunks {
        let base = ch * S::LANES;
        for jj in 0..NR_ {
            let bv = S::load(bp.add(jj * k + base));
            for ii in 0..MR_ {
                let av = S::load(ap.add(ii * k + base));
                acc[ii][jj] = S::fma(av, bv, acc[ii][jj]);
            }
        }
    }
    for ii in 0..MR_ {
        for jj in 0..NR_ {
            let mut s = S::reduce_add(acc[ii][jj]);
            for l in chunks * S::LANES..k {
                s += a[ii * k + l] * b[jj * k + l];
            }
            c[ii * n + jj] += s;
        }
    }
}

/// Int8 tile product: u8 activations × i8 weights into i32, same
/// layout as [`gemm_f32`]. Exact integer math in every backend.
///
/// # Safety
///
/// `a.len() >= m * k`, `b.len() >= n * k`, `c.len() >= m * n`, and the
/// backend's ISA is available.
#[inline(always)]
pub(crate) unsafe fn gemm_u8i8<D: DotU8I8>(
    m: usize,
    n: usize,
    k: usize,
    a: &[u8],
    b: &[i8],
    c: &mut [i32],
) {
    debug_assert!(a.len() >= m * k && b.len() >= n * k && c.len() >= m * n);
    let steps = k / D::STEP;
    for i in 0..m {
        let ap = a.as_ptr().add(i * k);
        for j in 0..n {
            let bp = b.as_ptr().add(j * k);
            let mut acc = D::zero();
            for s in 0..steps {
                acc = D::step(acc, ap.add(s * D::STEP), bp.add(s * D::STEP));
            }
            let mut sum = D::reduce(acc);
            for l in steps * D::STEP..k {
                sum += a[i * k + l] as i32 * b[j * k + l] as i32;
            }
            c[i * n + j] += sum;
        }
    }
}

/// `dst[i] = max(src[i], 0)`.
///
/// # Safety
///
/// `src.len() == dst.len()` and the backend's ISA is available.
#[inline(always)]
pub(crate) unsafe fn relu<S: SimdF32>(src: &[f32], dst: &mut [f32]) {
    debug_assert_eq!(src.len(), dst.len());
    let n = src.len();
    let z = S::zero();
    let chunks = n / S::LANES;
    for ch in 0..chunks {
        let p = ch * S::LANES;
        S::store(
            dst.as_mut_ptr().add(p),
            S::max(S::load(src.as_ptr().add(p)), z),
        );
    }
    for l in chunks * S::LANES..n {
        let x = src[l];
        dst[l] = if x > 0.0 { x } else { 0.0 };
    }
}

/// In-place relu.
///
/// # Safety
///
/// The backend's ISA is available.
#[inline(always)]
pub(crate) unsafe fn relu_inplace<S: SimdF32>(buf: &mut [f32]) {
    let n = buf.len();
    let z = S::zero();
    let chunks = n / S::LANES;
    for ch in 0..chunks {
        let p = ch * S::LANES;
        S::store(
            buf.as_mut_ptr().add(p),
            S::max(S::load(buf.as_ptr().add(p)), z),
        );
    }
    for l in chunks * S::LANES..n {
        let x = buf[l];
        buf[l] = if x > 0.0 { x } else { 0.0 };
    }
}

/// `dst[i] = a[i] + b[i]`.
///
/// # Safety
///
/// All three slices have equal length and the backend's ISA is
/// available.
#[inline(always)]
pub(crate) unsafe fn binary_add<S: SimdF32>(a: &[f32], b: &[f32], dst: &mut [f32]) {
    debug_assert!(a.len() == dst.len() && b.len() == dst.len());
    let n = dst.len();
    let chunks = n / S::LANES;
    for ch in 0..chunks {
        let p = ch * S::LANES;
        S::store(
            dst.as_mut_ptr().add(p),
            S::add(S::load(a.as_ptr().add(p)), S::load(b.as_ptr().add(p))),
        );
    }
    for l in chunks * S::LANES..n {
        dst[l] = a[l] + b[l];
    }
}

/// `dst[i] = a[i] * b[i]`.
///
/// # Safety
///
/// All three slices have equal length and the backend's ISA is
/// available.
#[inline(always)]
pub(crate) unsafe fn binary_mul<S: SimdF32>(a: &[f32], b: &[f32], dst: &mut [f32]) {
    debug_assert!(a.len() == dst.len() && b.len() == dst.len());
    let n = dst.len();
    let chunks = n / S::LANES;
    for ch in 0..chunks {
        let p = ch * S::LANES;
        S::store(
            dst.as_mut_ptr().add(p),
            S::mul(S::load(a.as_ptr().add(p)), S::load(b.as_ptr().add(p))),
        );
    }
    for l in chunks * S::LANES..n {
        dst[l] = a[l] * b[l];
    }
}

/// `dst[i] += src[i]` — the k-slicing reduction step.
///
/// # Safety
///
/// `src.len() == dst.len()` and the backend's ISA is available.
#[inline(always)]
pub(crate) unsafe fn acc_add<S: SimdF32>(src: &[f32], dst: &mut [f32]) {
    debug_assert_eq!(src.len(), dst.len());
    let n = dst.len();
    let chunks = n / S::LANES;
    for ch in 0..chunks {
        let p = ch * S::LANES;
        S::store(
            dst.as_mut_ptr().add(p),
            S::add(S::load(dst.as_ptr().add(p)), S::load(src.as_ptr().add(p))),
        );
    }
    for l in chunks * S::LANES..n {
        dst[l] += src[l];
    }
}

/// Sum of a slice: `LANES` vector accumulators reduced once at the
/// end, scalar remainder.
///
/// # Safety
///
/// The backend's ISA is available.
#[inline(always)]
pub(crate) unsafe fn reduce_sum<S: SimdF32>(xs: &[f32]) -> f32 {
    let chunks = xs.len() / S::LANES;
    let mut acc = S::zero();
    for ch in 0..chunks {
        acc = S::add(acc, S::load(xs.as_ptr().add(ch * S::LANES)));
    }
    let mut s = S::reduce_add(acc);
    for &x in &xs[chunks * S::LANES..] {
        s += x;
    }
    s
}

/// Max of a slice; `-inf` for an empty slice.
///
/// # Safety
///
/// The backend's ISA is available.
#[inline(always)]
pub(crate) unsafe fn reduce_max<S: SimdF32>(xs: &[f32]) -> f32 {
    let chunks = xs.len() / S::LANES;
    let mut m = f32::NEG_INFINITY;
    if chunks > 0 {
        let mut acc = S::splat(f32::NEG_INFINITY);
        for ch in 0..chunks {
            acc = S::max(acc, S::load(xs.as_ptr().add(ch * S::LANES)));
        }
        m = S::reduce_max(acc);
    }
    for &x in &xs[chunks * S::LANES..] {
        if x > m {
            m = x;
        }
    }
    m
}

/// Dequantize an i32 accumulator tile `[m, n]` into f32:
/// `out[i][j] = (acc[i][j] - a_zero * comp[j]) as f32 * scale`.
/// Every lane op (i32 sub/mul, round-to-nearest i32→f32 convert, f32
/// mul) is elementwise-identical to the scalar expression, so this is
/// bit-exact across backends.
///
/// # Safety
///
/// `acc.len() >= m * n`, `out.len() >= m * n`, `comp.len() >= n`, and
/// the backend's ISA is available.
#[inline(always)]
pub(crate) unsafe fn dequant<S: SimdF32>(
    acc: &[i32],
    m: usize,
    n: usize,
    comp: &[i32],
    a_zero: i32,
    scale: f32,
    out: &mut [f32],
) {
    debug_assert!(acc.len() >= m * n && out.len() >= m * n && comp.len() >= n);
    let az = S::splat_i32(a_zero);
    let sc = S::splat(scale);
    let chunks = n / S::LANES;
    for i in 0..m {
        let arow = acc.as_ptr().add(i * n);
        let orow = out.as_mut_ptr().add(i * n);
        for ch in 0..chunks {
            let p = ch * S::LANES;
            let v = S::sub_i32(
                S::load_i32(arow.add(p)),
                S::mul_i32(az, S::load_i32(comp.as_ptr().add(p))),
            );
            S::store(orow.add(p), S::mul(S::i32_to_f32(v), sc));
        }
        for j in chunks * S::LANES..n {
            *orow.add(j) = (*arow.add(j)).wrapping_sub(a_zero.wrapping_mul(comp[j])) as f32 * scale;
        }
    }
}
