//! Runtime ISA dispatch for the microkernels.
//!
//! The paper's JIT emits AVX-512/VNNI code directly; this reproduction
//! gets the same effect with *one generic kernel body per family*
//! (brgemm f32, brgemm u8×i8, eltwise, reduce, epilogue — see
//! `arch::body`) written against a small SIMD-ops trait (`arch::simd`) and
//! instantiated per backend:
//!
//! - **scalar** — the portable fallback, identical to the
//!   pre-dispatch autovectorized kernels;
//! - **avx2** — `core::arch::x86_64` AVX2 + FMA (8 f32 lanes);
//! - **avx512** — AVX-512 F/BW (16 f32 lanes), with a VNNI `vpdpbusd`
//!   int8 dot where the CPU has it.
//!
//! The default backend is selected **once per process**: the first
//! kernel call (or an explicit [`init`], which the TIR engine performs
//! at plan construction) resolves a table of function pointers from
//! `is_x86_feature_detected!`, clamped by the `GC_FORCE_ISA`
//! environment variable (`scalar` / `avx2` / `avx512` / `auto`). A
//! forced ISA the CPU cannot run is clamped down to the best supported
//! one with a warning rather than faulting. A *thread* can override
//! that choice with [`set_thread_isa`] — this is how heterogeneous
//! engine shards (gc-serve, DESIGN.md "Sharded execution") mix ISAs in
//! one process: each shard's executor and pool workers install the
//! shard's backend at thread start, and every other thread keeps
//! dispatching on the process table.
//!
//! Every public kernel entry point counts its calls per
//! (family × ISA) against the table that actually ran it;
//! [`dispatch_report`] snapshots those process-wide counters so tests,
//! stats, and benches can verify which variant actually executed.
//! Tests that need a *specific* backend regardless of the dispatch
//! choice use [`kernels`] to address a table explicitly.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

pub(crate) mod body;
pub(crate) mod simd;
#[cfg(target_arch = "x86_64")]
pub(crate) mod x86;

use simd::ScalarBackend;

/// An instruction-set backend the dispatch table can select.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Isa {
    /// Portable lane-array kernels (the autovectorized fallback).
    Scalar,
    /// AVX2 + FMA explicit SIMD.
    Avx2,
    /// AVX-512 F/BW explicit SIMD (int8 uses VNNI when detected).
    Avx512,
}

/// Number of [`Isa`] variants (for counter arrays).
const ISA_COUNT: usize = 3;

impl Isa {
    /// Stable lowercase name, also the accepted `GC_FORCE_ISA` value.
    pub fn name(self) -> &'static str {
        match self {
            Isa::Scalar => "scalar",
            Isa::Avx2 => "avx2",
            Isa::Avx512 => "avx512",
        }
    }

    /// Parse a `GC_FORCE_ISA` value; `None` for unknown names.
    pub fn from_name(s: &str) -> Option<Isa> {
        match s.to_ascii_lowercase().as_str() {
            "scalar" => Some(Isa::Scalar),
            "avx2" => Some(Isa::Avx2),
            "avx512" => Some(Isa::Avx512),
            _ => None,
        }
    }

    /// Whether the running CPU can execute this backend.
    pub fn supported(self) -> bool {
        self <= detected_isa()
    }
}

impl std::fmt::Display for Isa {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Kernel families the dispatcher counts separately.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Family {
    /// Full-tile f32 batch-reduce GEMM.
    BrgemmF32,
    /// Full-tile u8×i8 batch-reduce GEMM.
    BrgemmU8I8,
    /// Clamped-height f32 brgemm tails.
    TailF32,
    /// Clamped-height u8×i8 brgemm tails.
    TailU8I8,
    /// Elementwise unary/binary/accumulate kernels.
    Eltwise,
    /// Reductions (sum/max, slice and row-wise).
    Reduce,
    /// Int8 dequantize epilogue.
    Epilogue,
}

/// Number of [`Family`] variants (for counter arrays).
const FAMILY_COUNT: usize = 7;

/// All families, in counter order.
const FAMILIES: [Family; FAMILY_COUNT] = [
    Family::BrgemmF32,
    Family::BrgemmU8I8,
    Family::TailF32,
    Family::TailU8I8,
    Family::Eltwise,
    Family::Reduce,
    Family::Epilogue,
];

impl Family {
    /// Stable snake_case name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Family::BrgemmF32 => "brgemm_f32",
            Family::BrgemmU8I8 => "brgemm_u8i8",
            Family::TailF32 => "tail_f32",
            Family::TailU8I8 => "tail_u8i8",
            Family::Eltwise => "eltwise",
            Family::Reduce => "reduce",
            Family::Epilogue => "epilogue",
        }
    }
}

impl std::fmt::Display for Family {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One backend's kernel entry points. Each pointer is an `unsafe fn`
/// whose single precondition is that the backend's ISA is supported on
/// the running CPU; slice extents are validated by the public entry
/// points before the call.
#[allow(clippy::type_complexity)] // raw fn-pointer signatures are the point of the table
pub(crate) struct KernelTable {
    pub(crate) isa: Isa,
    pub(crate) gemm_f32: unsafe fn(usize, usize, usize, &[f32], &[f32], &mut [f32]),
    pub(crate) gemm_u8i8: unsafe fn(usize, usize, usize, &[u8], &[i8], &mut [i32]),
    pub(crate) relu: unsafe fn(&[f32], &mut [f32]),
    pub(crate) relu_inplace: unsafe fn(&mut [f32]),
    pub(crate) binary_add: unsafe fn(&[f32], &[f32], &mut [f32]),
    pub(crate) binary_mul: unsafe fn(&[f32], &[f32], &mut [f32]),
    pub(crate) acc_add: unsafe fn(&[f32], &mut [f32]),
    pub(crate) reduce_sum: unsafe fn(&[f32]) -> f32,
    pub(crate) reduce_max: unsafe fn(&[f32]) -> f32,
    pub(crate) dequant: unsafe fn(&[i32], usize, usize, &[i32], i32, f32, &mut [f32]),
}

mod scalar_kernels {
    //! Scalar entry points: the generic bodies instantiated with the
    //! portable backend. No feature preconditions; `unsafe` only to
    //! share the [`KernelTable`] pointer signature.
    use super::body;
    use super::simd::ScalarBackend as S;

    pub(crate) unsafe fn gemm_f32(
        m: usize,
        n: usize,
        k: usize,
        a: &[f32],
        b: &[f32],
        c: &mut [f32],
    ) {
        body::gemm_f32::<S>(m, n, k, a, b, c)
    }
    pub(crate) unsafe fn gemm_u8i8(
        m: usize,
        n: usize,
        k: usize,
        a: &[u8],
        b: &[i8],
        c: &mut [i32],
    ) {
        body::gemm_u8i8::<S>(m, n, k, a, b, c)
    }
    pub(crate) unsafe fn relu(src: &[f32], dst: &mut [f32]) {
        body::relu::<S>(src, dst)
    }
    pub(crate) unsafe fn relu_inplace(buf: &mut [f32]) {
        body::relu_inplace::<S>(buf)
    }
    pub(crate) unsafe fn binary_add(a: &[f32], b: &[f32], dst: &mut [f32]) {
        body::binary_add::<S>(a, b, dst)
    }
    pub(crate) unsafe fn binary_mul(a: &[f32], b: &[f32], dst: &mut [f32]) {
        body::binary_mul::<S>(a, b, dst)
    }
    pub(crate) unsafe fn acc_add(src: &[f32], dst: &mut [f32]) {
        body::acc_add::<S>(src, dst)
    }
    pub(crate) unsafe fn reduce_sum(xs: &[f32]) -> f32 {
        body::reduce_sum::<S>(xs)
    }
    pub(crate) unsafe fn reduce_max(xs: &[f32]) -> f32 {
        body::reduce_max::<S>(xs)
    }
    #[allow(clippy::too_many_arguments)]
    pub(crate) unsafe fn dequant(
        acc: &[i32],
        m: usize,
        n: usize,
        comp: &[i32],
        a_zero: i32,
        scale: f32,
        out: &mut [f32],
    ) {
        body::dequant::<S>(acc, m, n, comp, a_zero, scale, out)
    }
}

static SCALAR_TABLE: KernelTable = KernelTable {
    isa: Isa::Scalar,
    gemm_f32: scalar_kernels::gemm_f32,
    gemm_u8i8: scalar_kernels::gemm_u8i8,
    relu: scalar_kernels::relu,
    relu_inplace: scalar_kernels::relu_inplace,
    binary_add: scalar_kernels::binary_add,
    binary_mul: scalar_kernels::binary_mul,
    acc_add: scalar_kernels::acc_add,
    reduce_sum: scalar_kernels::reduce_sum,
    reduce_max: scalar_kernels::reduce_max,
    dequant: scalar_kernels::dequant,
};

#[cfg(target_arch = "x86_64")]
static AVX2_TABLE: KernelTable = KernelTable {
    isa: Isa::Avx2,
    gemm_f32: x86::avx2_kernels::gemm_f32,
    gemm_u8i8: x86::avx2_kernels::gemm_u8i8,
    relu: x86::avx2_kernels::relu,
    relu_inplace: x86::avx2_kernels::relu_inplace,
    binary_add: x86::avx2_kernels::binary_add,
    binary_mul: x86::avx2_kernels::binary_mul,
    acc_add: x86::avx2_kernels::acc_add,
    reduce_sum: x86::avx2_kernels::reduce_sum,
    reduce_max: x86::avx2_kernels::reduce_max,
    dequant: x86::avx2_kernels::dequant,
};

#[cfg(target_arch = "x86_64")]
static AVX512_TABLE: KernelTable = KernelTable {
    isa: Isa::Avx512,
    gemm_f32: x86::avx512_kernels::gemm_f32,
    gemm_u8i8: x86::avx512_kernels::gemm_u8i8,
    relu: x86::avx512_kernels::relu,
    relu_inplace: x86::avx512_kernels::relu_inplace,
    binary_add: x86::avx512_kernels::binary_add,
    binary_mul: x86::avx512_kernels::binary_mul,
    acc_add: x86::avx512_kernels::acc_add,
    reduce_sum: x86::avx512_kernels::reduce_sum,
    reduce_max: x86::avx512_kernels::reduce_max,
    dequant: x86::avx512_kernels::dequant,
};

/// AVX-512 table with the VNNI int8 dot swapped in.
#[cfg(target_arch = "x86_64")]
static AVX512_VNNI_TABLE: KernelTable = KernelTable {
    gemm_u8i8: x86::gemm_u8i8_vnni,
    ..AVX512_TABLE
};

/// Best ISA the running CPU supports (ignores `GC_FORCE_ISA`).
pub fn detected_isa() -> Isa {
    static DETECTED: OnceLock<Isa> = OnceLock::new();
    *DETECTED.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        {
            if is_x86_feature_detected!("avx512f")
                && is_x86_feature_detected!("avx512bw")
                && is_x86_feature_detected!("avx2")
                && is_x86_feature_detected!("fma")
            {
                return Isa::Avx512;
            }
            if is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma") {
                return Isa::Avx2;
            }
        }
        Isa::Scalar
    })
}

/// Whether the VNNI int8 dot is in use for the given ISA on this CPU.
pub fn vnni_active(isa: Isa) -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        isa == Isa::Avx512 && is_x86_feature_detected!("avx512vnni")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = isa;
        false
    }
}

/// The table for one ISA. Caller must have verified `isa.supported()`.
fn table_for(isa: Isa) -> &'static KernelTable {
    match isa {
        Isa::Scalar => &SCALAR_TABLE,
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2 => &AVX2_TABLE,
        #[cfg(target_arch = "x86_64")]
        Isa::Avx512 => {
            if vnni_active(Isa::Avx512) {
                &AVX512_VNNI_TABLE
            } else {
                &AVX512_TABLE
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        _ => &SCALAR_TABLE,
    }
}

/// Resolve the process-wide ISA choice: `GC_FORCE_ISA` if set (clamped
/// to what the CPU supports), else the best detected backend.
fn resolve_isa() -> Isa {
    let detected = detected_isa();
    match std::env::var("GC_FORCE_ISA") {
        Ok(v) if !v.is_empty() && !v.eq_ignore_ascii_case("auto") => match Isa::from_name(&v) {
            Some(forced) if forced <= detected => forced,
            Some(forced) => {
                eprintln!(
                    "[gc-microkernel] GC_FORCE_ISA={forced} not supported on this CPU; \
                     clamping to {detected}"
                );
                detected
            }
            None => {
                eprintln!(
                    "[gc-microkernel] unknown GC_FORCE_ISA value {v:?} \
                     (expected scalar|avx2|avx512|auto); using {detected}"
                );
                detected
            }
        },
        _ => detected,
    }
}

static ACTIVE: OnceLock<&'static KernelTable> = OnceLock::new();

thread_local! {
    /// Per-thread kernel-table override installed by [`set_thread_isa`].
    /// `None` means "dispatch on the process-wide table" — the common
    /// case, and the only one before sharded serving existed.
    static THREAD_TABLE: std::cell::Cell<Option<&'static KernelTable>> =
        const { std::cell::Cell::new(None) };
}

/// The dispatch table for the current thread: the thread-local override
/// when one is installed, else the process-wide active table (resolving
/// it on first use).
#[inline]
pub(crate) fn active() -> &'static KernelTable {
    if let Some(table) = THREAD_TABLE.get() {
        return table;
    }
    ACTIVE.get_or_init(|| table_for(resolve_isa()))
}

/// Install (or clear, with `None`) a kernel-backend override for the
/// *calling thread only*. While installed, every dispatched kernel call
/// made from this thread runs on `isa`'s table instead of the
/// process-wide choice, and is counted against `isa` in the dispatch
/// report. Returns the previously installed override so scoped callers
/// can restore it.
///
/// This is the mechanism behind heterogeneous engine shards
/// (DESIGN.md "Sharded execution"): a shard's executor thread and its
/// pool workers install the shard's ISA once at thread start, so one
/// process can serve scalar and AVX-512 shards side by side. The
/// process-wide table, `GC_FORCE_ISA` handling, and every thread
/// without an override are unaffected.
///
/// # Panics
///
/// Panics if the running CPU does not support `isa` — check
/// [`Isa::supported`] first when probing, exactly as with [`kernels`].
pub fn set_thread_isa(isa: Option<Isa>) -> Option<Isa> {
    let table = isa.map(|isa| {
        assert!(
            isa.supported(),
            "ISA {isa} not supported on this CPU (detected: {})",
            detected_isa()
        );
        table_for(isa)
    });
    THREAD_TABLE.replace(table).map(|t| t.isa)
}

/// The calling thread's installed backend override, if any.
pub fn thread_isa() -> Option<Isa> {
    THREAD_TABLE.get().map(|t| t.isa)
}

/// Resolve the dispatch table now (idempotent). The TIR engine calls
/// this when an executable is constructed so the choice is made at
/// engine init, not in the middle of the first hot loop.
pub fn init() {
    let _ = active();
}

/// The ISA the *current thread* dispatches on: the thread override when
/// one is installed via [`set_thread_isa`], else the process-wide
/// selection (detection clamped by `GC_FORCE_ISA`). Resolves the
/// process table if not yet resolved.
pub fn active_isa() -> Isa {
    active().isa
}

/// Per-(family × ISA) call counters.
static COUNTS: [[AtomicU64; ISA_COUNT]; FAMILY_COUNT] =
    [const { [const { AtomicU64::new(0) }; ISA_COUNT] }; FAMILY_COUNT];

/// Record one kernel-family invocation against an ISA.
#[inline]
pub(crate) fn record(family: Family, isa: Isa) {
    COUNTS[family as usize][isa as usize].fetch_add(1, Ordering::Relaxed);
}

/// One (family, ISA) counter in a [`DispatchReport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DispatchCount {
    /// Kernel family.
    pub family: Family,
    /// Backend that executed it.
    pub isa: Isa,
    /// Invocations since process start.
    pub calls: u64,
}

/// Snapshot of which kernel variants actually executed.
#[derive(Debug, Clone)]
pub struct DispatchReport {
    /// The process-wide selected backend.
    pub active: Isa,
    /// Best backend the CPU supports.
    pub detected: Isa,
    /// Whether the int8 dot runs on VNNI under the active backend.
    pub vnni: bool,
    /// Non-zero (family × ISA) call counters, family-major.
    pub counts: Vec<DispatchCount>,
}

impl DispatchReport {
    /// Total calls recorded against one ISA across all families.
    pub fn calls_for_isa(&self, isa: Isa) -> u64 {
        self.counts
            .iter()
            .filter(|c| c.isa == isa)
            .map(|c| c.calls)
            .sum()
    }

    /// Total calls recorded for one family across all ISAs.
    pub fn calls_for_family(&self, family: Family) -> u64 {
        self.counts
            .iter()
            .filter(|c| c.family == family)
            .map(|c| c.calls)
            .sum()
    }
}

impl std::fmt::Display for DispatchReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "isa dispatch: active={} detected={} vnni={}",
            self.active, self.detected, self.vnni
        )?;
        for c in &self.counts {
            writeln!(f, "  {:>12} x {:<6} {:>12} calls", c.family, c.isa, c.calls)?;
        }
        Ok(())
    }
}

/// Snapshot the process-wide dispatch state and counters. Counters are
/// cumulative since process start; callers wanting a window diff two
/// snapshots.
pub fn dispatch_report() -> DispatchReport {
    let active = active_isa();
    let mut counts = Vec::new();
    for (fi, &family) in FAMILIES.iter().enumerate() {
        for (ii, isa) in [Isa::Scalar, Isa::Avx2, Isa::Avx512].iter().enumerate() {
            let calls = COUNTS[fi][ii].load(Ordering::Relaxed);
            if calls > 0 {
                counts.push(DispatchCount {
                    family,
                    isa: *isa,
                    calls,
                });
            }
        }
    }
    DispatchReport {
        active,
        detected: detected_isa(),
        vnni: vnni_active(active),
        counts,
    }
}

/// Safe handle to one backend's kernels, for differential tests and
/// benches that must compare backends within a single process (the
/// process-wide table is resolved once and never changes). Obtained via
/// [`kernels`], which verifies CPU support, so all methods are safe.
///
/// Calls through a `Kernels` handle are *not* recorded in the dispatch
/// counters — they are for harnesses, not the serving path.
#[derive(Clone, Copy)]
pub struct Kernels {
    table: &'static KernelTable,
}

/// Kernels for a specific backend.
///
/// # Panics
///
/// Panics if the running CPU does not support `isa` — check
/// [`Isa::supported`] first when probing.
pub fn kernels(isa: Isa) -> Kernels {
    assert!(
        isa.supported(),
        "ISA {isa} not supported on this CPU (detected: {})",
        detected_isa()
    );
    Kernels {
        table: table_for(isa),
    }
}

impl Kernels {
    /// Which backend this handle addresses.
    pub fn isa(&self) -> Isa {
        self.table.isa
    }

    /// One f32 tile product `C[m,n] += A[m,k] × B[n,k]` (B panel-major).
    ///
    /// # Panics
    ///
    /// Panics if any slice is shorter than its `m`/`n`/`k` extent.
    pub fn gemm_f32(&self, m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
        assert!(a.len() >= m * k && b.len() >= n * k && c.len() >= m * n);
        unsafe { (self.table.gemm_f32)(m, n, k, a, b, c) }
    }

    /// One u8×i8 tile product into i32.
    ///
    /// # Panics
    ///
    /// Panics if any slice is shorter than its `m`/`n`/`k` extent.
    pub fn gemm_u8i8(&self, m: usize, n: usize, k: usize, a: &[u8], b: &[i8], c: &mut [i32]) {
        assert!(a.len() >= m * k && b.len() >= n * k && c.len() >= m * n);
        unsafe { (self.table.gemm_u8i8)(m, n, k, a, b, c) }
    }

    /// `dst = max(src, 0)`.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn relu(&self, src: &[f32], dst: &mut [f32]) {
        assert_eq!(src.len(), dst.len());
        unsafe { (self.table.relu)(src, dst) }
    }

    /// `dst = a + b` elementwise.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn binary_add(&self, a: &[f32], b: &[f32], dst: &mut [f32]) {
        assert!(a.len() == dst.len() && b.len() == dst.len());
        unsafe { (self.table.binary_add)(a, b, dst) }
    }

    /// `dst = a * b` elementwise.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn binary_mul(&self, a: &[f32], b: &[f32], dst: &mut [f32]) {
        assert!(a.len() == dst.len() && b.len() == dst.len());
        unsafe { (self.table.binary_mul)(a, b, dst) }
    }

    /// `dst += src` elementwise.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn acc_add(&self, src: &[f32], dst: &mut [f32]) {
        assert_eq!(src.len(), dst.len());
        unsafe { (self.table.acc_add)(src, dst) }
    }

    /// Sum of a slice.
    pub fn reduce_sum(&self, xs: &[f32]) -> f32 {
        unsafe { (self.table.reduce_sum)(xs) }
    }

    /// Max of a slice (`-inf` when empty).
    pub fn reduce_max(&self, xs: &[f32]) -> f32 {
        unsafe { (self.table.reduce_max)(xs) }
    }

    /// Dequantize an i32 accumulator tile; see
    /// [`crate::epilogue::dequant_acc`].
    ///
    /// # Panics
    ///
    /// Panics on any length mismatch.
    #[allow(clippy::too_many_arguments)]
    pub fn dequant(
        &self,
        acc: &[i32],
        m: usize,
        n: usize,
        comp: &[i32],
        a_zero: i32,
        scale: f32,
        out: &mut [f32],
    ) {
        assert!(acc.len() == m * n && out.len() == m * n && comp.len() == n);
        unsafe { (self.table.dequant)(acc, m, n, comp, a_zero, scale, out) }
    }
}

// Referenced by module docs; silences the unused-import style warning
// on non-x86 builds where only the scalar backend exists.
#[allow(unused)]
fn _scalar_backend_is_referenced() -> ScalarBackend {
    ScalarBackend
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isa_names_roundtrip() {
        for isa in [Isa::Scalar, Isa::Avx2, Isa::Avx512] {
            assert_eq!(Isa::from_name(isa.name()), Some(isa));
        }
        assert_eq!(Isa::from_name("AVX2"), Some(Isa::Avx2));
        assert_eq!(Isa::from_name("amx"), None);
    }

    #[test]
    fn scalar_always_supported() {
        assert!(Isa::Scalar.supported());
        let _ = kernels(Isa::Scalar);
    }

    #[test]
    fn active_isa_is_detected_unless_forced() {
        // The process-wide choice must follow detection except under an
        // explicit GC_FORCE_ISA — this is the CI smoke test that the
        // AVX2/AVX-512 path is actually selected on capable runners.
        match std::env::var("GC_FORCE_ISA") {
            Ok(v) if !v.is_empty() && !v.eq_ignore_ascii_case("auto") => {
                let forced = Isa::from_name(&v).unwrap_or(detected_isa());
                assert_eq!(active_isa(), forced.min(detected_isa()));
            }
            _ => assert_eq!(active_isa(), detected_isa()),
        }
    }

    #[test]
    fn dispatch_report_counts_brgemm_calls() {
        let before = dispatch_report().calls_for_family(Family::BrgemmF32);
        let shape = crate::brgemm::BrgemmShape::new(2, 2, 8);
        let a = vec![1.0f32; shape.a_len()];
        let b = vec![1.0f32; shape.b_len()];
        let mut c = vec![0.0f32; shape.c_len()];
        crate::brgemm::brgemm_f32(shape, &a, &[0], &b, &[0], &mut c);
        let after = dispatch_report();
        assert!(after.calls_for_family(Family::BrgemmF32) > before);
        assert!(after.counts.iter().all(|c| c.calls > 0));
        // This thread has no override, so the call above landed on the
        // active backend. (Other tests in this binary may legitimately
        // record off-active calls through thread overrides, so we only
        // assert the active counter moved.)
        assert!(after
            .counts
            .iter()
            .any(|c| c.isa == after.active && c.family == Family::BrgemmF32));
    }

    #[test]
    fn thread_isa_override_redirects_dispatch() {
        // Dispatch on this thread with a scalar override: calls must be
        // recorded against scalar regardless of the process-wide table.
        let before = dispatch_report().calls_for_isa(Isa::Scalar);
        let prev = set_thread_isa(Some(Isa::Scalar));
        assert_eq!(thread_isa(), Some(Isa::Scalar));
        assert_eq!(active_isa(), Isa::Scalar);
        let shape = crate::brgemm::BrgemmShape::new(2, 2, 8);
        let a = vec![1.0f32; shape.a_len()];
        let b = vec![1.0f32; shape.b_len()];
        let mut c = vec![0.0f32; shape.c_len()];
        crate::brgemm::brgemm_f32(shape, &a, &[0], &b, &[0], &mut c);
        assert_eq!(set_thread_isa(prev), Some(Isa::Scalar));
        assert_eq!(thread_isa(), None);
        let after = dispatch_report().calls_for_isa(Isa::Scalar);
        assert!(after > before);
        // The result is still correct: 2x2 of k=8 ones-dot-ones.
        assert!(c.iter().all(|&v| v == 8.0));
    }

    #[test]
    fn thread_isa_override_is_thread_local() {
        let _ = set_thread_isa(None);
        std::thread::spawn(|| {
            let _ = set_thread_isa(Some(Isa::Scalar));
            assert_eq!(thread_isa(), Some(Isa::Scalar));
        })
        .join()
        .unwrap();
        // The spawning thread is unaffected.
        assert_eq!(thread_isa(), None);
        assert_eq!(
            active_isa(),
            ACTIVE.get().map(|t| t.isa).unwrap_or(active_isa())
        );
    }

    #[test]
    fn report_displays() {
        init();
        let r = dispatch_report();
        let s = r.to_string();
        assert!(s.contains("isa dispatch"), "{s}");
        assert!(s.contains(r.active.name()), "{s}");
    }
}
