//! x86_64 SIMD backends: AVX2+FMA and AVX-512 (with a VNNI int8 dot
//! where the CPU has it), written directly against
//! [`core::arch::x86_64`] intrinsics.
//!
//! Each backend implements the traits in [`super::simd`] with
//! `#[inline(always)]` methods; the `avx2_kernels` / `avx512_kernels`
//! modules wrap each generic body from [`super::body`] in a
//! `#[target_feature]` function so the whole kernel compiles as one
//! vectorized unit. The wrappers are what the dispatch table stores —
//! they are `unsafe fn`s whose single precondition is that the features
//! named in their attribute are supported by the running CPU.

#![cfg(target_arch = "x86_64")]

use super::body;
use super::simd::{DotU8I8, SimdF32};
use core::arch::x86_64::*;

/// AVX2 + FMA: 8 f32 lanes, 16 vector registers.
#[derive(Clone, Copy)]
pub(crate) struct Avx2;

impl SimdF32 for Avx2 {
    type V = __m256;
    type VI = __m256i;
    const LANES: usize = 8;
    // 3x4 accumulator block: 12 of 16 ymm registers, leaving room for
    // the A broadcast and B load.
    const MR: usize = 3;

    #[inline(always)]
    unsafe fn zero() -> Self::V {
        _mm256_setzero_ps()
    }
    #[inline(always)]
    unsafe fn splat(x: f32) -> Self::V {
        _mm256_set1_ps(x)
    }
    #[inline(always)]
    unsafe fn load(p: *const f32) -> Self::V {
        _mm256_loadu_ps(p)
    }
    #[inline(always)]
    unsafe fn store(p: *mut f32, v: Self::V) {
        _mm256_storeu_ps(p, v)
    }
    #[inline(always)]
    unsafe fn add(a: Self::V, b: Self::V) -> Self::V {
        _mm256_add_ps(a, b)
    }
    #[inline(always)]
    unsafe fn mul(a: Self::V, b: Self::V) -> Self::V {
        _mm256_mul_ps(a, b)
    }
    #[inline(always)]
    unsafe fn max(a: Self::V, b: Self::V) -> Self::V {
        _mm256_max_ps(a, b)
    }
    #[inline(always)]
    unsafe fn fma(a: Self::V, b: Self::V, acc: Self::V) -> Self::V {
        _mm256_fmadd_ps(a, b, acc)
    }
    #[inline(always)]
    unsafe fn reduce_add(v: Self::V) -> f32 {
        let lo = _mm256_castps256_ps128(v);
        let hi = _mm256_extractf128_ps(v, 1);
        let s = _mm_add_ps(lo, hi);
        let s = _mm_add_ps(s, _mm_movehl_ps(s, s));
        let s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 1));
        _mm_cvtss_f32(s)
    }
    #[inline(always)]
    unsafe fn reduce_max(v: Self::V) -> f32 {
        let lo = _mm256_castps256_ps128(v);
        let hi = _mm256_extractf128_ps(v, 1);
        let s = _mm_max_ps(lo, hi);
        let s = _mm_max_ps(s, _mm_movehl_ps(s, s));
        let s = _mm_max_ss(s, _mm_shuffle_ps(s, s, 1));
        _mm_cvtss_f32(s)
    }

    #[inline(always)]
    unsafe fn load_i32(p: *const i32) -> Self::VI {
        _mm256_loadu_si256(p as *const __m256i)
    }
    #[inline(always)]
    unsafe fn splat_i32(x: i32) -> Self::VI {
        _mm256_set1_epi32(x)
    }
    #[inline(always)]
    unsafe fn sub_i32(a: Self::VI, b: Self::VI) -> Self::VI {
        _mm256_sub_epi32(a, b)
    }
    #[inline(always)]
    unsafe fn mul_i32(a: Self::VI, b: Self::VI) -> Self::VI {
        _mm256_mullo_epi32(a, b)
    }
    #[inline(always)]
    unsafe fn i32_to_f32(v: Self::VI) -> Self::V {
        _mm256_cvtepi32_ps(v)
    }
}

/// AVX2 u8×i8 dot: widen both operands to i16 and use `pmaddwd`
/// (16-bit multiply, pairwise add into i32). The products fit i16
/// (|255 * 127| ≤ 32385) and each pair sum fits i32, so this is exact
/// — bit-identical to the scalar dot.
#[derive(Clone, Copy)]
pub(crate) struct Avx2Dot;

impl DotU8I8 for Avx2Dot {
    type Acc = __m256i;
    const STEP: usize = 16;

    #[inline(always)]
    unsafe fn zero() -> Self::Acc {
        _mm256_setzero_si256()
    }
    #[inline(always)]
    unsafe fn step(acc: Self::Acc, a: *const u8, b: *const i8) -> Self::Acc {
        let a16 = _mm256_cvtepu8_epi16(_mm_loadu_si128(a as *const __m128i));
        let b16 = _mm256_cvtepi8_epi16(_mm_loadu_si128(b as *const __m128i));
        _mm256_add_epi32(acc, _mm256_madd_epi16(a16, b16))
    }
    #[inline(always)]
    unsafe fn reduce(acc: Self::Acc) -> i32 {
        let lo = _mm256_castsi256_si128(acc);
        let hi = _mm256_extracti128_si256(acc, 1);
        let s = _mm_add_epi32(lo, hi);
        let s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0b0100_1110));
        let s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0b1011_0001));
        _mm_cvtsi128_si32(s)
    }
}

/// AVX-512: 16 f32 lanes, 32 vector registers.
#[derive(Clone, Copy)]
pub(crate) struct Avx512;

impl SimdF32 for Avx512 {
    type V = __m512;
    type VI = __m512i;
    const LANES: usize = 16;
    // 4x4 accumulator block: 16 of 32 zmm registers.
    const MR: usize = 4;

    #[inline(always)]
    unsafe fn zero() -> Self::V {
        _mm512_setzero_ps()
    }
    #[inline(always)]
    unsafe fn splat(x: f32) -> Self::V {
        _mm512_set1_ps(x)
    }
    #[inline(always)]
    unsafe fn load(p: *const f32) -> Self::V {
        _mm512_loadu_ps(p)
    }
    #[inline(always)]
    unsafe fn store(p: *mut f32, v: Self::V) {
        _mm512_storeu_ps(p, v)
    }
    #[inline(always)]
    unsafe fn add(a: Self::V, b: Self::V) -> Self::V {
        _mm512_add_ps(a, b)
    }
    #[inline(always)]
    unsafe fn mul(a: Self::V, b: Self::V) -> Self::V {
        _mm512_mul_ps(a, b)
    }
    #[inline(always)]
    unsafe fn max(a: Self::V, b: Self::V) -> Self::V {
        _mm512_max_ps(a, b)
    }
    #[inline(always)]
    unsafe fn fma(a: Self::V, b: Self::V, acc: Self::V) -> Self::V {
        _mm512_fmadd_ps(a, b, acc)
    }
    #[inline(always)]
    unsafe fn reduce_add(v: Self::V) -> f32 {
        _mm512_reduce_add_ps(v)
    }
    #[inline(always)]
    unsafe fn reduce_max(v: Self::V) -> f32 {
        _mm512_reduce_max_ps(v)
    }

    #[inline(always)]
    unsafe fn load_i32(p: *const i32) -> Self::VI {
        _mm512_loadu_si512(p as *const __m512i)
    }
    #[inline(always)]
    unsafe fn splat_i32(x: i32) -> Self::VI {
        _mm512_set1_epi32(x)
    }
    #[inline(always)]
    unsafe fn sub_i32(a: Self::VI, b: Self::VI) -> Self::VI {
        _mm512_sub_epi32(a, b)
    }
    #[inline(always)]
    unsafe fn mul_i32(a: Self::VI, b: Self::VI) -> Self::VI {
        _mm512_mullo_epi32(a, b)
    }
    #[inline(always)]
    unsafe fn i32_to_f32(v: Self::VI) -> Self::V {
        _mm512_cvtepi32_ps(v)
    }
}

/// AVX-512 VNNI u8×i8 dot: `vpdpbusd` accumulates 4-element dot groups
/// straight into i32 lanes — the instruction the paper's int8 kernels
/// are built on. Exact.
#[derive(Clone, Copy)]
pub(crate) struct VnniDot;

impl DotU8I8 for VnniDot {
    type Acc = __m512i;
    const STEP: usize = 64;

    #[inline(always)]
    unsafe fn zero() -> Self::Acc {
        _mm512_setzero_si512()
    }
    #[inline(always)]
    unsafe fn step(acc: Self::Acc, a: *const u8, b: *const i8) -> Self::Acc {
        let av = _mm512_loadu_si512(a as *const __m512i);
        let bv = _mm512_loadu_si512(b as *const __m512i);
        _mm512_dpbusd_epi32(acc, av, bv)
    }
    #[inline(always)]
    unsafe fn reduce(acc: Self::Acc) -> i32 {
        _mm512_reduce_add_epi32(acc)
    }
}

/// Generate the `#[target_feature]` entry points for one backend: each
/// is the generic body instantiated with the backend type, compiled
/// with the backend's features enabled so the `#[inline(always)]` trait
/// methods fold into straight-line vector code.
macro_rules! isa_entry_points {
    ($modname:ident, $feat:literal, $simd:ty, $dot:ty) => {
        pub(crate) mod $modname {
            use super::*;

            #[target_feature(enable = $feat)]
            pub(crate) unsafe fn gemm_f32(
                m: usize,
                n: usize,
                k: usize,
                a: &[f32],
                b: &[f32],
                c: &mut [f32],
            ) {
                body::gemm_f32::<$simd>(m, n, k, a, b, c)
            }

            #[target_feature(enable = $feat)]
            pub(crate) unsafe fn gemm_u8i8(
                m: usize,
                n: usize,
                k: usize,
                a: &[u8],
                b: &[i8],
                c: &mut [i32],
            ) {
                body::gemm_u8i8::<$dot>(m, n, k, a, b, c)
            }

            #[target_feature(enable = $feat)]
            pub(crate) unsafe fn relu(src: &[f32], dst: &mut [f32]) {
                body::relu::<$simd>(src, dst)
            }

            #[target_feature(enable = $feat)]
            pub(crate) unsafe fn relu_inplace(buf: &mut [f32]) {
                body::relu_inplace::<$simd>(buf)
            }

            #[target_feature(enable = $feat)]
            pub(crate) unsafe fn binary_add(a: &[f32], b: &[f32], dst: &mut [f32]) {
                body::binary_add::<$simd>(a, b, dst)
            }

            #[target_feature(enable = $feat)]
            pub(crate) unsafe fn binary_mul(a: &[f32], b: &[f32], dst: &mut [f32]) {
                body::binary_mul::<$simd>(a, b, dst)
            }

            #[target_feature(enable = $feat)]
            pub(crate) unsafe fn acc_add(src: &[f32], dst: &mut [f32]) {
                body::acc_add::<$simd>(src, dst)
            }

            #[target_feature(enable = $feat)]
            pub(crate) unsafe fn reduce_sum(xs: &[f32]) -> f32 {
                body::reduce_sum::<$simd>(xs)
            }

            #[target_feature(enable = $feat)]
            pub(crate) unsafe fn reduce_max(xs: &[f32]) -> f32 {
                body::reduce_max::<$simd>(xs)
            }

            #[target_feature(enable = $feat)]
            pub(crate) unsafe fn dequant(
                acc: &[i32],
                m: usize,
                n: usize,
                comp: &[i32],
                a_zero: i32,
                scale: f32,
                out: &mut [f32],
            ) {
                body::dequant::<$simd>(acc, m, n, comp, a_zero, scale, out)
            }
        }
    };
}

isa_entry_points!(avx2_kernels, "avx2,fma", Avx2, Avx2Dot);
// Without VNNI the int8 dot falls back to the AVX2 `pmaddwd` scheme
// (exact either way); the f32/eltwise families still run 512-bit.
isa_entry_points!(avx512_kernels, "avx512f,avx512bw,avx2,fma", Avx512, Avx2Dot);

/// The VNNI int8 entry, split out because it needs its own feature set.
#[target_feature(enable = "avx512f,avx512bw,avx512vnni")]
pub(crate) unsafe fn gemm_u8i8_vnni(
    m: usize,
    n: usize,
    k: usize,
    a: &[u8],
    b: &[i8],
    c: &mut [i32],
) {
    body::gemm_u8i8::<VnniDot>(m, n, k, a, b, c)
}
