//! The SIMD-ops traits the generic kernel bodies are written against,
//! plus the portable scalar backend.
//!
//! Each backend is a zero-sized marker type implementing [`SimdF32`]
//! (f32 lane ops, with the i32 lane subset the int8 epilogue needs) and
//! optionally [`DotU8I8`] (the u8×i8 dot-product step). The kernel
//! bodies in [`super::body`] are generic over these traits and are
//! instantiated once per backend behind a `#[target_feature]` wrapper;
//! the trait methods are `#[inline(always)]` so each instantiation
//! compiles to straight-line vector code inside its wrapper.
//!
//! All trait methods are `unsafe`: callers must guarantee both that the
//! backend's ISA is available on the running CPU and that every pointer
//! is valid for `LANES` (or `STEP`) elements.

/// Elementwise f32 SIMD operations (with the i32 subset used by the
/// dequantize epilogue).
pub(crate) trait SimdF32: Copy {
    /// Vector of [`Self::LANES`] f32 values.
    type V: Copy;
    /// Vector of [`Self::LANES`] i32 values.
    type VI: Copy;
    /// f32 lanes per vector.
    const LANES: usize;
    /// Register-tile rows of the brgemm body for this backend (how many
    /// C rows are accumulated in registers at once).
    const MR: usize;

    unsafe fn zero() -> Self::V;
    unsafe fn splat(x: f32) -> Self::V;
    unsafe fn load(p: *const f32) -> Self::V;
    unsafe fn store(p: *mut f32, v: Self::V);
    unsafe fn add(a: Self::V, b: Self::V) -> Self::V;
    unsafe fn mul(a: Self::V, b: Self::V) -> Self::V;
    /// IEEE `maxps` semantics: if one lane compares unordered (NaN) or
    /// equal, the lane of `b` is returned.
    unsafe fn max(a: Self::V, b: Self::V) -> Self::V;
    /// `a * b + acc` per lane. Backends with hardware FMA contract the
    /// rounding; the scalar backend rounds twice (mul then add), which
    /// is why cross-ISA f32 comparisons carry a 1e-5 tolerance.
    unsafe fn fma(a: Self::V, b: Self::V, acc: Self::V) -> Self::V;
    /// Horizontal sum in a fixed (backend-specific) order.
    unsafe fn reduce_add(v: Self::V) -> f32;
    /// Horizontal max.
    unsafe fn reduce_max(v: Self::V) -> f32;

    unsafe fn load_i32(p: *const i32) -> Self::VI;
    unsafe fn splat_i32(x: i32) -> Self::VI;
    unsafe fn sub_i32(a: Self::VI, b: Self::VI) -> Self::VI;
    /// Lane-wise wrapping i32 multiply (`mullo`).
    unsafe fn mul_i32(a: Self::VI, b: Self::VI) -> Self::VI;
    /// Lane-wise i32 → f32 conversion (round to nearest even, exactly
    /// the semantics of a scalar `as f32` cast).
    unsafe fn i32_to_f32(v: Self::VI) -> Self::V;
}

/// One step of a u8×i8 dot product: consume [`Self::STEP`] elements of
/// each operand into a running i32 accumulator. All implementations are
/// exact integer math, so results are bit-identical across backends.
pub(crate) trait DotU8I8: Copy {
    /// Accumulator state.
    type Acc: Copy;
    /// k elements consumed per step.
    const STEP: usize;

    unsafe fn zero() -> Self::Acc;
    unsafe fn step(acc: Self::Acc, a: *const u8, b: *const i8) -> Self::Acc;
    unsafe fn reduce(acc: Self::Acc) -> i32;
}

/// The portable fallback: 8-wide lane arrays that LLVM autovectorizes
/// where it can. This reproduces the pre-dispatch kernels exactly —
/// same lane width, same mul-then-add rounding, same sequential lane
/// reduction — so `GC_FORCE_ISA=scalar` is bit-identical to the old
/// code path.
#[derive(Clone, Copy)]
pub(crate) struct ScalarBackend;

impl SimdF32 for ScalarBackend {
    type V = [f32; 8];
    type VI = [i32; 8];
    const LANES: usize = 8;
    const MR: usize = 2;

    #[inline(always)]
    unsafe fn zero() -> Self::V {
        [0.0; 8]
    }
    #[inline(always)]
    unsafe fn splat(x: f32) -> Self::V {
        [x; 8]
    }
    #[inline(always)]
    unsafe fn load(p: *const f32) -> Self::V {
        let mut v = [0.0; 8];
        for (l, out) in v.iter_mut().enumerate() {
            *out = *p.add(l);
        }
        v
    }
    #[inline(always)]
    unsafe fn store(p: *mut f32, v: Self::V) {
        for (l, x) in v.iter().enumerate() {
            *p.add(l) = *x;
        }
    }
    #[inline(always)]
    unsafe fn add(a: Self::V, b: Self::V) -> Self::V {
        let mut v = [0.0; 8];
        for l in 0..8 {
            v[l] = a[l] + b[l];
        }
        v
    }
    #[inline(always)]
    unsafe fn mul(a: Self::V, b: Self::V) -> Self::V {
        let mut v = [0.0; 8];
        for l in 0..8 {
            v[l] = a[l] * b[l];
        }
        v
    }
    #[inline(always)]
    unsafe fn max(a: Self::V, b: Self::V) -> Self::V {
        // maxps semantics: NaN or equal lanes take the b operand.
        let mut v = [0.0; 8];
        for l in 0..8 {
            v[l] = if a[l] > b[l] { a[l] } else { b[l] };
        }
        v
    }
    #[inline(always)]
    unsafe fn fma(a: Self::V, b: Self::V, acc: Self::V) -> Self::V {
        let mut v = [0.0; 8];
        for l in 0..8 {
            v[l] = acc[l] + a[l] * b[l];
        }
        v
    }
    #[inline(always)]
    unsafe fn reduce_add(v: Self::V) -> f32 {
        v.iter().sum()
    }
    #[inline(always)]
    unsafe fn reduce_max(v: Self::V) -> f32 {
        let mut m = v[0];
        for &x in &v[1..] {
            if x > m {
                m = x;
            }
        }
        m
    }

    #[inline(always)]
    unsafe fn load_i32(p: *const i32) -> Self::VI {
        let mut v = [0i32; 8];
        for (l, out) in v.iter_mut().enumerate() {
            *out = *p.add(l);
        }
        v
    }
    #[inline(always)]
    unsafe fn splat_i32(x: i32) -> Self::VI {
        [x; 8]
    }
    #[inline(always)]
    unsafe fn sub_i32(a: Self::VI, b: Self::VI) -> Self::VI {
        let mut v = [0i32; 8];
        for l in 0..8 {
            v[l] = a[l].wrapping_sub(b[l]);
        }
        v
    }
    #[inline(always)]
    unsafe fn mul_i32(a: Self::VI, b: Self::VI) -> Self::VI {
        let mut v = [0i32; 8];
        for l in 0..8 {
            v[l] = a[l].wrapping_mul(b[l]);
        }
        v
    }
    #[inline(always)]
    unsafe fn i32_to_f32(v: Self::VI) -> Self::V {
        let mut o = [0.0f32; 8];
        for l in 0..8 {
            o[l] = v[l] as f32;
        }
        o
    }
}

impl DotU8I8 for ScalarBackend {
    // 4-way accumulators mirror VNNI's 4-element dot-product groups,
    // exactly as the pre-dispatch `dot_u8i8` did.
    type Acc = [i32; 4];
    const STEP: usize = 4;

    #[inline(always)]
    unsafe fn zero() -> Self::Acc {
        [0; 4]
    }
    #[inline(always)]
    unsafe fn step(mut acc: Self::Acc, a: *const u8, b: *const i8) -> Self::Acc {
        for (l, slot) in acc.iter_mut().enumerate() {
            *slot += *a.add(l) as i32 * *b.add(l) as i32;
        }
        acc
    }
    #[inline(always)]
    unsafe fn reduce(acc: Self::Acc) -> i32 {
        acc.iter().sum()
    }
}
