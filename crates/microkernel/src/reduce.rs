//! Reduction kernels for fused reduction post-ops (softmax's max and
//! sum, bias gradients, etc.). Slice reductions route through the
//! [`crate::arch`] dispatch table; lane-width accumulators mean the
//! f32 summation order differs across backends (within the 1e-5
//! cross-ISA tolerance), but is fixed within one process.

use crate::arch;

/// Maximum of a slice; `-inf` for an empty slice.
pub fn reduce_max(xs: &[f32]) -> f32 {
    let table = arch::active();
    arch::record(arch::Family::Reduce, table.isa);
    // SAFETY: table holds only supported backends.
    unsafe { (table.reduce_max)(xs) }
}

/// Sum of a slice (lane-width accumulators reduced once at the end).
pub fn reduce_sum(xs: &[f32]) -> f32 {
    let table = arch::active();
    arch::record(arch::Family::Reduce, table.isa);
    // SAFETY: table holds only supported backends.
    unsafe { (table.reduce_sum)(xs) }
}

/// Elementwise running maximum: `acc[i] = max(acc[i], xs[i])`.
///
/// Used for the *partial* half of a split reduction post-op (the paper's
/// two-anchor reduction: partials at anchor #1, final at #2/#3).
///
/// # Panics
///
/// Panics if lengths differ.
pub fn accumulate_max(acc: &mut [f32], xs: &[f32]) {
    assert_eq!(acc.len(), xs.len());
    for (a, &x) in acc.iter_mut().zip(xs) {
        if x > *a {
            *a = x;
        }
    }
}

/// Elementwise running sum: `acc[i] += xs[i]`.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn accumulate_sum(acc: &mut [f32], xs: &[f32]) {
    assert_eq!(acc.len(), xs.len());
    let table = arch::active();
    arch::record(arch::Family::Reduce, table.isa);
    // SAFETY: lengths asserted equal above.
    unsafe { (table.acc_add)(xs, acc) };
}

/// Row-wise reduce of a `[rows, cols]` tile into `out[rows]`.
///
/// # Panics
///
/// Panics if `tile.len() != rows * cols` or `out.len() != rows`.
pub fn reduce_rows_max(tile: &[f32], rows: usize, cols: usize, out: &mut [f32]) {
    assert_eq!(tile.len(), rows * cols);
    assert_eq!(out.len(), rows);
    let table = arch::active();
    arch::record(arch::Family::Reduce, table.isa);
    for (o, row) in out.iter_mut().zip(tile.chunks_exact(cols)) {
        // SAFETY: table holds only supported backends.
        *o = unsafe { (table.reduce_max)(row) };
    }
}

/// Row-wise sum of a `[rows, cols]` tile into `out[rows]`.
///
/// # Panics
///
/// Panics if `tile.len() != rows * cols` or `out.len() != rows`.
pub fn reduce_rows_sum(tile: &[f32], rows: usize, cols: usize, out: &mut [f32]) {
    assert_eq!(tile.len(), rows * cols);
    assert_eq!(out.len(), rows);
    let table = arch::active();
    arch::record(arch::Family::Reduce, table.isa);
    for (o, row) in out.iter_mut().zip(tile.chunks_exact(cols)) {
        // SAFETY: table holds only supported backends.
        *o = unsafe { (table.reduce_sum)(row) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_and_sum() {
        let xs = [1.0f32, -2.0, 5.0, 3.0];
        assert_eq!(reduce_max(&xs), 5.0);
        assert_eq!(reduce_sum(&xs), 7.0);
    }

    #[test]
    fn empty_slices() {
        assert_eq!(reduce_max(&[]), f32::NEG_INFINITY);
        assert_eq!(reduce_sum(&[]), 0.0);
    }

    #[test]
    fn sum_matches_naive_on_odd_lengths() {
        for n in [1usize, 3, 5, 7, 13] {
            let xs: Vec<f32> = (0..n).map(|i| i as f32 + 0.5).collect();
            let naive: f32 = xs.iter().sum();
            assert!((reduce_sum(&xs) - naive).abs() < 1e-5);
        }
    }

    #[test]
    fn running_accumulators() {
        let mut mx = vec![f32::NEG_INFINITY; 3];
        accumulate_max(&mut mx, &[1.0, 5.0, -1.0]);
        accumulate_max(&mut mx, &[2.0, 3.0, -2.0]);
        assert_eq!(mx, vec![2.0, 5.0, -1.0]);
        let mut s = vec![0f32; 3];
        accumulate_sum(&mut s, &[1.0, 2.0, 3.0]);
        accumulate_sum(&mut s, &[1.0, 2.0, 3.0]);
        assert_eq!(s, vec![2.0, 4.0, 6.0]);
    }

    #[test]
    fn row_reductions() {
        let tile = [1.0f32, 2.0, 3.0, 4.0, 5.0, 6.0];
        let mut out = [0f32; 2];
        reduce_rows_max(&tile, 2, 3, &mut out);
        assert_eq!(out, [3.0, 6.0]);
        reduce_rows_sum(&tile, 2, 3, &mut out);
        assert_eq!(out, [6.0, 15.0]);
    }
}
