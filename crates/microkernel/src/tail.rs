//! Edge-tile ("tail") microkernel variants for ragged shapes.
//!
//! When a matmul dimension is not a multiple of its tile size, the last
//! row/column of tiles is *partial*: only `m % MB` rows (or `n % NB`
//! columns) hold live data. The template has two ways to run those
//! tiles, and this module supplies the kernels for both:
//!
//! - **Pad-and-go** — the pack stage zero-fills the tile up to full
//!   size ([`pack_pad_2d`]) and the steady-state full-tile brgemm runs
//!   unchanged; the output store clips the dead rows/columns back off
//!   ([`store_clamped_2d`]).
//! - **Tail kernels** — the brgemm itself is clamped to the valid row
//!   count ([`brgemm_f32_m_tail`], [`brgemm_u8i8_m_tail`]), computing
//!   no wasted FLOPs but paying a per-call dispatch cost for the
//!   narrower register tile.
//!
//! All kernels here are *masked-store* shaped: they never write outside
//! the valid window of the destination, so a caller can alias the
//! padded region with neighbouring data (the plan executor relies on
//! this when the output buffer has exactly the logical extent).

use crate::arch;
use crate::brgemm::{gemm_tile_f32, gemm_tile_u8i8, BrgemmShape};
use crate::eltwise::UnaryOp;

/// f32 batch-reduce GEMM over a partial-height C tile.
///
/// Semantics match [`crate::brgemm::brgemm_f32`] restricted to the
/// first `m_valid` rows: `C[0:m_valid, 0:NB] += Σ_b A_b × B_b`. The A
/// tiles keep their full `[MB, KB]` footprint in memory (only the
/// valid rows are read); `c` is the valid prefix, `m_valid * n`
/// elements with row stride `n`. A `m_valid` of zero is a no-op.
///
/// # Panics
///
/// Panics if `m_valid > shape.m`, the offset arrays differ in length,
/// any tile overruns its buffer, or `c` is not `m_valid * n` elements.
pub fn brgemm_f32_m_tail(
    shape: BrgemmShape,
    m_valid: usize,
    a_buf: &[f32],
    a_offs: &[usize],
    b_buf: &[f32],
    b_offs: &[usize],
    c: &mut [f32],
) {
    let BrgemmShape { m, n, k } = shape;
    assert!(m_valid <= m, "m_valid {m_valid} exceeds tile height {m}");
    assert_eq!(a_offs.len(), b_offs.len(), "batch sizes must match");
    assert_eq!(c.len(), m_valid * n, "C tile must be m_valid*n");
    if m_valid == 0 {
        return;
    }
    arch::record(arch::Family::TailF32, arch::active_isa());
    for (&ao, &bo) in a_offs.iter().zip(b_offs) {
        let a = &a_buf[ao..ao + m * k];
        let b = &b_buf[bo..bo + n * k];
        gemm_tile_f32(m_valid, n, k, &a[..m_valid * k], b, c);
    }
}

/// Int8 batch-reduce GEMM over a partial-height C tile; see
/// [`brgemm_f32_m_tail`] for the clamping contract.
///
/// # Panics
///
/// Panics under the same conditions as [`brgemm_f32_m_tail`].
pub fn brgemm_u8i8_m_tail(
    shape: BrgemmShape,
    m_valid: usize,
    a_buf: &[u8],
    a_offs: &[usize],
    b_buf: &[i8],
    b_offs: &[usize],
    c: &mut [i32],
) {
    let BrgemmShape { m, n, k } = shape;
    assert!(m_valid <= m, "m_valid {m_valid} exceeds tile height {m}");
    assert_eq!(a_offs.len(), b_offs.len(), "batch sizes must match");
    assert_eq!(c.len(), m_valid * n, "C tile must be m_valid*n");
    if m_valid == 0 {
        return;
    }
    arch::record(arch::Family::TailU8I8, arch::active_isa());
    for (&ao, &bo) in a_offs.iter().zip(b_offs) {
        let a = &a_buf[ao..ao + m * k];
        let b = &b_buf[bo..bo + n * k];
        gemm_tile_u8i8(m_valid, n, k, &a[..m_valid * k], b, c);
    }
}

/// Pack a `rows_valid × cols_valid` window of a strided source into a
/// dense `rows × cols` tile, zero-filling the padded remainder.
///
/// `src` addresses element `(r, c)` of the window at
/// `r * src_row_stride + c * src_col_stride`. The destination tile is
/// written in full — valid data in the top-left window, `zero`
/// elsewhere — so downstream full-tile kernels see no garbage.
///
/// # Panics
///
/// Panics if the window exceeds the tile, `dst` is not `rows * cols`
/// elements, or the strided source window overruns `src`.
#[allow(clippy::too_many_arguments)]
pub fn pack_pad_2d<T: Copy>(
    src: &[T],
    src_row_stride: usize,
    src_col_stride: usize,
    dst: &mut [T],
    rows: usize,
    cols: usize,
    rows_valid: usize,
    cols_valid: usize,
    zero: T,
) {
    assert!(
        rows_valid <= rows && cols_valid <= cols,
        "window exceeds tile"
    );
    assert_eq!(dst.len(), rows * cols, "dst tile must be rows*cols");
    for r in 0..rows_valid {
        let drow = &mut dst[r * cols..r * cols + cols];
        for (c, d) in drow[..cols_valid].iter_mut().enumerate() {
            *d = src[r * src_row_stride + c * src_col_stride];
        }
        for d in &mut drow[cols_valid..] {
            *d = zero;
        }
    }
    for d in &mut dst[rows_valid * cols..] {
        *d = zero;
    }
}

/// Masked store: copy the valid `rows_valid × cols_valid` window of a
/// dense `rows × cols` tile into a strided destination, leaving
/// everything outside the window untouched.
///
/// This is the inverse of [`pack_pad_2d`]: `dst` addresses element
/// `(r, c)` at `r * dst_row_stride + c * dst_col_stride`, and the
/// padded rows/columns of `src` are never read.
///
/// # Panics
///
/// Panics if the window exceeds the tile, `src` is smaller than the
/// window it is read from, or the strided destination window overruns
/// `dst`.
#[allow(clippy::too_many_arguments)]
pub fn store_clamped_2d<T: Copy>(
    src: &[T],
    dst: &mut [T],
    dst_row_stride: usize,
    dst_col_stride: usize,
    rows: usize,
    cols: usize,
    rows_valid: usize,
    cols_valid: usize,
) {
    assert!(
        rows_valid <= rows && cols_valid <= cols,
        "window exceeds tile"
    );
    for r in 0..rows_valid {
        let srow = &src[r * cols..r * cols + cols_valid];
        for (c, &s) in srow.iter().enumerate() {
            dst[r * dst_row_stride + c * dst_col_stride] = s;
        }
    }
}

/// Apply a unary post-op to the valid row prefix of a dense `[rows, n]`
/// accumulator tile, skipping the padded rows entirely.
///
/// The pad-and-go epilogue runs unary ops over the full tile (the
/// padding is discarded at the output store anyway); the tail epilogue
/// uses this variant so ops like `exp` never touch the zero-filled pad
/// rows.
///
/// # Panics
///
/// Panics if `tile` is shorter than `rows_valid * n`.
pub fn unary_rows_tail(op: UnaryOp, tile: &mut [f32], n: usize, rows_valid: usize) {
    crate::eltwise::unary_inplace(op, &mut tile[..rows_valid * n]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brgemm::scalar;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn rand_f32(n: usize, rng: &mut StdRng) -> Vec<f32> {
        (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect()
    }

    #[test]
    fn f32_m_tail_matches_full_prefix() {
        // tail kernel over m_valid rows == full kernel's first m_valid
        // rows, bit-exact (same per-row reduction order).
        let mut rng = StdRng::seed_from_u64(7);
        let shape = BrgemmShape::new(8, 6, 24);
        let bs = 3;
        let a = rand_f32(bs * shape.a_len(), &mut rng);
        let b = rand_f32(bs * shape.b_len(), &mut rng);
        let a_offs: Vec<usize> = (0..bs).map(|i| i * shape.a_len()).collect();
        let b_offs: Vec<usize> = (0..bs).map(|i| i * shape.b_len()).collect();
        let mut full = vec![0f32; shape.c_len()];
        crate::brgemm::brgemm_f32(shape, &a, &a_offs, &b, &b_offs, &mut full);
        for m_valid in [0usize, 1, 3, 5, 8] {
            let mut tail = vec![0f32; m_valid * shape.n];
            brgemm_f32_m_tail(shape, m_valid, &a, &a_offs, &b, &b_offs, &mut tail);
            assert_eq!(tail, full[..m_valid * shape.n]);
        }
    }

    #[test]
    fn u8i8_m_tail_matches_scalar() {
        let mut rng = StdRng::seed_from_u64(9);
        let shape = BrgemmShape::new(5, 7, 13);
        let bs = 2;
        let a: Vec<u8> = (0..bs * shape.a_len())
            .map(|_| rng.gen_range(0..64))
            .collect();
        let b: Vec<i8> = (0..bs * shape.b_len())
            .map(|_| rng.gen_range(-32..32))
            .collect();
        let a_offs: Vec<usize> = (0..bs).map(|i| i * shape.a_len()).collect();
        let b_offs: Vec<usize> = (0..bs).map(|i| i * shape.b_len()).collect();
        let mut full = vec![0i32; shape.c_len()];
        scalar::brgemm_u8i8(shape, &a, &a_offs, &b, &b_offs, &mut full);
        let m_valid = 3;
        let mut tail = vec![0i32; m_valid * shape.n];
        brgemm_u8i8_m_tail(shape, m_valid, &a, &a_offs, &b, &b_offs, &mut tail);
        assert_eq!(tail, full[..m_valid * shape.n]);
    }

    #[test]
    fn pack_pad_zero_fills_remainder() {
        // 3x2 valid window of a 5-col row-major source into a 4x4 tile
        let src: Vec<f32> = (0..15).map(|x| x as f32 + 1.0).collect();
        let mut dst = vec![f32::NAN; 16];
        pack_pad_2d(&src, 5, 1, &mut dst, 4, 4, 3, 2, 0.0);
        #[rustfmt::skip]
        let want = vec![
            1.0, 2.0, 0.0, 0.0,
            6.0, 7.0, 0.0, 0.0,
            11.0, 12.0, 0.0, 0.0,
            0.0, 0.0, 0.0, 0.0,
        ];
        assert_eq!(dst, want);
    }

    #[test]
    fn store_clamped_roundtrips_pack_pad() {
        // pack a ragged window, store it back: outside the window the
        // destination is untouched, inside it round-trips exactly.
        let mut rng = StdRng::seed_from_u64(11);
        let (rows, cols, rv, cv) = (6usize, 8usize, 4usize, 5usize);
        let src = rand_f32(rv * 16, &mut rng);
        let mut tile = vec![0f32; rows * cols];
        pack_pad_2d(&src, 16, 1, &mut tile, rows, cols, rv, cv, 0.0);
        let mut out = vec![-9.0f32; rv * 16];
        store_clamped_2d(&tile, &mut out, 16, 1, rows, cols, rv, cv);
        for r in 0..rv {
            for c in 0..16 {
                if c < cv {
                    assert_eq!(out[r * 16 + c], src[r * 16 + c]);
                } else {
                    assert_eq!(out[r * 16 + c], -9.0, "pad column leaked");
                }
            }
        }
    }

    #[test]
    fn unary_tail_skips_pad_rows() {
        let n = 4;
        let mut tile = vec![-2.0f32; 3 * n];
        unary_rows_tail(UnaryOp::Relu, &mut tile, n, 2);
        assert!(tile[..2 * n].iter().all(|&x| x == 0.0));
        assert!(tile[2 * n..].iter().all(|&x| x == -2.0), "pad row touched");
    }

    #[test]
    #[should_panic(expected = "m_valid")]
    fn overlong_tail_panics() {
        let shape = BrgemmShape::new(2, 2, 2);
        let mut c = vec![0f32; 6];
        brgemm_f32_m_tail(shape, 3, &[0.0; 8], &[0], &[0.0; 8], &[0], &mut c);
    }
}
