//! Batch-reduce GEMM microkernels.
//!
//! The batch-reduce GEMM (brgemm) interface follows LIBXSMM/TPP and the
//! paper: given a *batch* of A and B tiles, multiply each pair and sum
//! the products into one C tile:
//!
//! ```text
//! C[0:MB, 0:NB] += sum_{b in 0..BS} A_b[0:MB, 0:KB] x B_b[0:KB, 0:NB]
//! ```
//!
//! Tiles are addressed as offsets into a backing buffer (the template's
//! `A_addr[0..BS] = &A[...]` address arrays). The A tile is row-major
//! `[MB, KB]`; the B tile uses the blocked weight layout `[NB, KB]`
//! (n-major panels, so each output column's operand is contiguous).
//!
//! C accumulation is `+=`: the caller zeroes C once per k-loop, exactly
//! as the template's `C'[...] = 0` statement does.
//!
//! The tile kernels themselves live in [`crate::arch`]: one generic
//! register-tiled body instantiated per backend (scalar / AVX2 /
//! AVX-512), selected once per process by runtime feature detection.

use crate::arch;

/// Tile geometry for one brgemm call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BrgemmShape {
    /// Rows of the C tile (and of each A tile).
    pub m: usize,
    /// Columns of the C tile (and panels of each B tile).
    pub n: usize,
    /// Reduction extent of each tile pair.
    pub k: usize,
}

impl BrgemmShape {
    /// Create a shape.
    pub fn new(m: usize, n: usize, k: usize) -> Self {
        BrgemmShape { m, n, k }
    }

    /// Elements in an A tile.
    pub fn a_len(self) -> usize {
        self.m * self.k
    }

    /// Elements in a B tile.
    pub fn b_len(self) -> usize {
        self.n * self.k
    }

    /// Elements in the C tile.
    pub fn c_len(self) -> usize {
        self.m * self.n
    }
}

/// f32 batch-reduce GEMM: `C += sum_b A_b x B_b`.
///
/// `a_offs`/`b_offs` give the start of each tile in its buffer; the
/// batch size is `a_offs.len()`.
///
/// # Panics
///
/// Panics if the offset arrays differ in length, any tile overruns its
/// buffer, or `c` is not exactly `m * n` elements.
pub fn brgemm_f32(
    shape: BrgemmShape,
    a_buf: &[f32],
    a_offs: &[usize],
    b_buf: &[f32],
    b_offs: &[usize],
    c: &mut [f32],
) {
    let BrgemmShape { m, n, k } = shape;
    assert_eq!(a_offs.len(), b_offs.len(), "batch sizes must match");
    assert_eq!(c.len(), m * n, "C tile must be m*n");
    let table = arch::active();
    arch::record(arch::Family::BrgemmF32, table.isa);
    for (&ao, &bo) in a_offs.iter().zip(b_offs) {
        let a = &a_buf[ao..ao + m * k];
        let b = &b_buf[bo..bo + n * k];
        // SAFETY: the table only holds backends the CPU supports, and
        // the slices above cover the m/n/k extents.
        unsafe { (table.gemm_f32)(m, n, k, a, b, c) };
    }
}

/// One A×B tile product added into C through the active dispatch
/// table. A is `[m, k]` row-major, B is `[n, k]` panel-major; C is
/// walked in backend-sized register blocks (see [`crate::arch`]).
#[inline]
pub(crate) fn gemm_tile_f32(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert!(a.len() >= m * k && b.len() >= n * k && c.len() >= m * n);
    // SAFETY: extents asserted; table holds only supported backends.
    unsafe { (arch::active().gemm_f32)(m, n, k, a, b, c) }
}

/// Int8 batch-reduce GEMM: u8 activations × i8 weights accumulated in
/// i32, uncompensated (zero-point correction is applied by the epilogue).
///
/// # Panics
///
/// Panics under the same conditions as [`brgemm_f32`].
pub fn brgemm_u8i8(
    shape: BrgemmShape,
    a_buf: &[u8],
    a_offs: &[usize],
    b_buf: &[i8],
    b_offs: &[usize],
    c: &mut [i32],
) {
    let BrgemmShape { m, n, k } = shape;
    assert_eq!(a_offs.len(), b_offs.len(), "batch sizes must match");
    assert_eq!(c.len(), m * n, "C tile must be m*n");
    let table = arch::active();
    arch::record(arch::Family::BrgemmU8I8, table.isa);
    for (&ao, &bo) in a_offs.iter().zip(b_offs) {
        let a = &a_buf[ao..ao + m * k];
        let b = &b_buf[bo..bo + n * k];
        // SAFETY: the table only holds backends the CPU supports, and
        // the slices above cover the m/n/k extents.
        unsafe { (table.gemm_u8i8)(m, n, k, a, b, c) };
    }
}

/// One u8×i8 tile product through the active dispatch table; exact
/// integer math in every backend.
#[inline]
pub(crate) fn gemm_tile_u8i8(m: usize, n: usize, k: usize, a: &[u8], b: &[i8], c: &mut [i32]) {
    assert!(a.len() >= m * k && b.len() >= n * k && c.len() >= m * n);
    // SAFETY: extents asserted; table holds only supported backends.
    unsafe { (arch::active().gemm_u8i8)(m, n, k, a, b, c) }
}

/// Reference (scalar, obviously-correct) versions used in tests.
pub mod scalar {
    use super::BrgemmShape;

    /// Scalar f32 brgemm with identical semantics to
    /// [`super::brgemm_f32`].
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as the optimized kernel.
    pub fn brgemm_f32(
        shape: BrgemmShape,
        a_buf: &[f32],
        a_offs: &[usize],
        b_buf: &[f32],
        b_offs: &[usize],
        c: &mut [f32],
    ) {
        let BrgemmShape { m, n, k } = shape;
        assert_eq!(a_offs.len(), b_offs.len());
        assert_eq!(c.len(), m * n);
        for (&ao, &bo) in a_offs.iter().zip(b_offs) {
            for i in 0..m {
                for j in 0..n {
                    let mut s = 0f32;
                    for l in 0..k {
                        s += a_buf[ao + i * k + l] * b_buf[bo + j * k + l];
                    }
                    c[i * n + j] += s;
                }
            }
        }
    }

    /// Scalar int8 brgemm with identical semantics to
    /// [`super::brgemm_u8i8`].
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as the optimized kernel.
    pub fn brgemm_u8i8(
        shape: BrgemmShape,
        a_buf: &[u8],
        a_offs: &[usize],
        b_buf: &[i8],
        b_offs: &[usize],
        c: &mut [i32],
    ) {
        let BrgemmShape { m, n, k } = shape;
        assert_eq!(a_offs.len(), b_offs.len());
        assert_eq!(c.len(), m * n);
        for (&ao, &bo) in a_offs.iter().zip(b_offs) {
            for i in 0..m {
                for j in 0..n {
                    let mut s = 0i32;
                    for l in 0..k {
                        s += a_buf[ao + i * k + l] as i32 * b_buf[bo + j * k + l] as i32;
                    }
                    c[i * n + j] += s;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn rand_f32(n: usize, rng: &mut StdRng) -> Vec<f32> {
        (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect()
    }

    #[test]
    fn brgemm_f32_matches_scalar() {
        let mut rng = StdRng::seed_from_u64(1);
        let shape = BrgemmShape::new(6, 5, 17);
        let bs = 3;
        let a_buf = rand_f32(bs * shape.a_len(), &mut rng);
        let b_buf = rand_f32(bs * shape.b_len(), &mut rng);
        let a_offs: Vec<usize> = (0..bs).map(|i| i * shape.a_len()).collect();
        let b_offs: Vec<usize> = (0..bs).map(|i| i * shape.b_len()).collect();
        let mut c1 = vec![0f32; shape.c_len()];
        let mut c2 = vec![0f32; shape.c_len()];
        brgemm_f32(shape, &a_buf, &a_offs, &b_buf, &b_offs, &mut c1);
        scalar::brgemm_f32(shape, &a_buf, &a_offs, &b_buf, &b_offs, &mut c2);
        for (x, y) in c1.iter().zip(&c2) {
            assert!((x - y).abs() < 1e-4, "{x} vs {y}");
        }
    }

    #[test]
    fn brgemm_f32_accumulates() {
        let shape = BrgemmShape::new(1, 1, 2);
        let a = vec![1.0f32, 2.0];
        let b = vec![3.0f32, 4.0];
        let mut c = vec![10.0f32];
        brgemm_f32(shape, &a, &[0], &b, &[0], &mut c);
        assert_eq!(c[0], 10.0 + 11.0);
    }

    #[test]
    fn brgemm_f32_batch_reduces() {
        // two identical tile pairs -> double the single product
        let shape = BrgemmShape::new(2, 2, 4);
        let mut rng = StdRng::seed_from_u64(2);
        let a = rand_f32(shape.a_len(), &mut rng);
        let b = rand_f32(shape.b_len(), &mut rng);
        let mut c1 = vec![0f32; 4];
        brgemm_f32(shape, &a, &[0], &b, &[0], &mut c1);
        let mut c2 = vec![0f32; 4];
        brgemm_f32(shape, &a, &[0, 0], &b, &[0, 0], &mut c2);
        for (x, y) in c1.iter().zip(&c2) {
            assert!((2.0 * x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn brgemm_u8i8_matches_scalar() {
        let mut rng = StdRng::seed_from_u64(3);
        let shape = BrgemmShape::new(4, 7, 13);
        let bs = 2;
        let a_buf: Vec<u8> = (0..bs * shape.a_len())
            .map(|_| rng.gen_range(0..32))
            .collect();
        let b_buf: Vec<i8> = (0..bs * shape.b_len())
            .map(|_| rng.gen_range(-16..16))
            .collect();
        let a_offs: Vec<usize> = (0..bs).map(|i| i * shape.a_len()).collect();
        let b_offs: Vec<usize> = (0..bs).map(|i| i * shape.b_len()).collect();
        let mut c1 = vec![0i32; shape.c_len()];
        let mut c2 = vec![0i32; shape.c_len()];
        brgemm_u8i8(shape, &a_buf, &a_offs, &b_buf, &b_offs, &mut c1);
        scalar::brgemm_u8i8(shape, &a_buf, &a_offs, &b_buf, &b_offs, &mut c2);
        assert_eq!(c1, c2);
    }

    #[test]
    fn brgemm_u8i8_exact_value() {
        // 1x1 tile, k=3: [1,2,3] . [4,-5,6] = 4 - 10 + 18 = 12
        let shape = BrgemmShape::new(1, 1, 3);
        let mut c = vec![0i32];
        brgemm_u8i8(shape, &[1, 2, 3], &[0], &[4, -5, 6], &[0], &mut c);
        assert_eq!(c[0], 12);
    }

    #[test]
    #[should_panic(expected = "batch sizes must match")]
    fn mismatched_batch_panics() {
        let shape = BrgemmShape::new(1, 1, 1);
        let mut c = vec![0f32];
        brgemm_f32(shape, &[1.0], &[0, 0], &[1.0], &[0], &mut c);
    }

    #[test]
    #[should_panic(expected = "C tile must be m*n")]
    fn wrong_c_size_panics() {
        let shape = BrgemmShape::new(2, 2, 1);
        let mut c = vec![0f32; 3];
        brgemm_f32(shape, &[1.0, 1.0], &[0], &[1.0, 1.0], &[0], &mut c);
    }

    #[test]
    fn empty_batch_is_noop() {
        let shape = BrgemmShape::new(2, 2, 2);
        let mut c = vec![5.0f32; 4];
        brgemm_f32(shape, &[], &[], &[], &[], &mut c);
        assert!(c.iter().all(|&x| x == 5.0));
    }

    #[test]
    fn odd_k_sizes_handled() {
        // k not a multiple of the unroll width
        for k in [1usize, 3, 7, 9, 15] {
            let mut rng = StdRng::seed_from_u64(k as u64);
            let shape = BrgemmShape::new(3, 2, k);
            let a = rand_f32(shape.a_len(), &mut rng);
            let b = rand_f32(shape.b_len(), &mut rng);
            let mut c1 = vec![0f32; 6];
            let mut c2 = vec![0f32; 6];
            brgemm_f32(shape, &a, &[0], &b, &[0], &mut c1);
            scalar::brgemm_f32(shape, &a, &[0], &b, &[0], &mut c2);
            for (x, y) in c1.iter().zip(&c2) {
                assert!((x - y).abs() < 1e-4);
            }
        }
    }
}
