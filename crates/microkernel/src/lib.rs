//! Expert-tuned microkernels for the oneDNN Graph Compiler reproduction.
//!
//! The paper's compiler does not lower compute-intensive inner loops to
//! plain scalar code; it calls carefully hand-tuned *microkernels* that
//! "fulfill a subtask of a DNN OP with data in the fastest cache on a
//! single CPU core" and abstract away the ISA. This crate is that layer:
//!
//! - [`brgemm`] — the batch-reduce GEMM microkernel (LIBXSMM-style), in
//!   f32 and u8×i8→i32 variants, plus obviously-correct scalar versions
//!   for differential testing;
//! - [`eltwise`] — vectorizable slice kernels for fused unary/binary
//!   post-ops;
//! - [`reduce`] — reduction kernels, including the running accumulators
//!   used by split (two-anchor) reduction post-ops;
//! - [`epilogue`] — the int8 dequantize/compensate/requantize epilogue
//!   from the paper's low-precision equation;
//! - [`tail`] — edge-tile variants for ragged shapes: clamped-height
//!   brgemm tails, masked pack/store helpers, and tail epilogues.
//!
//! In the original system these are JIT-generated AVX-512/AMX code;
//! here each kernel family has one generic body written against a
//! small SIMD-ops trait, instantiated per backend (portable scalar,
//! AVX2+FMA, AVX-512/VNNI) and selected once per process by runtime
//! feature detection — see [`arch`]. The interface — offsets into
//! packed, blocked buffers — is the same as the paper's, which is what
//! the lowering templates depend on. Set `GC_FORCE_ISA=scalar` (or
//! `avx2`/`avx512`) to pin the backend; [`arch::dispatch_report`]
//! shows which variants actually ran.
//!
//! # Examples
//!
//! ```
//! use gc_microkernel::brgemm::{brgemm_f32, BrgemmShape};
//!
//! // One 2x2x2 tile pair: C += A x B, B stored as [n][k] panels.
//! let a = [1.0f32, 2.0, 3.0, 4.0]; // [[1,2],[3,4]]
//! let b = [1.0f32, 0.0, 0.0, 1.0]; // panels: n0=[1,0], n1=[0,1] => identity
//! let mut c = [0.0f32; 4];
//! brgemm_f32(BrgemmShape::new(2, 2, 2), &a, &[0], &b, &[0], &mut c);
//! assert_eq!(c, a);
//! ```

#![warn(missing_docs)]

pub mod arch;
pub mod brgemm;
pub mod eltwise;
pub mod epilogue;
pub mod reduce;
pub mod tail;

pub use arch::{dispatch_report, DispatchReport, Isa};
pub use brgemm::{brgemm_f32, brgemm_u8i8, BrgemmShape};
pub use eltwise::{BinaryOp, UnaryOp};
