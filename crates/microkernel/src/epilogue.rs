//! Int8 epilogue kernels: the compiled form of the paper's transformed
//! quantization equation, applied to a brgemm accumulator tile after the
//! k-reduction completes.
//!
//! ```text
//! C = (acc_i32 - a_z * comp[n]) * (a_s * b_s) [+ bias]  (dequantized f32)
//! out_u8 = clamp(round(C / c_s) + c_z)                  (requantized)
//! ```

/// Dequantize an i32 accumulator tile `[m, n]` into f32, applying the
/// zero-point compensation `comp[n]` and the combined scale.
///
/// # Panics
///
/// Panics if `acc.len() != m * n`, `out.len() != m * n`, or
/// `comp.len() != n`.
pub fn dequant_acc(
    acc: &[i32],
    m: usize,
    n: usize,
    comp: &[i32],
    a_zero: i32,
    scale: f32,
    out: &mut [f32],
) {
    assert_eq!(acc.len(), m * n);
    assert_eq!(out.len(), m * n);
    assert_eq!(comp.len(), n);
    let table = crate::arch::active();
    crate::arch::record(crate::arch::Family::Epilogue, table.isa);
    // SAFETY: extents asserted; table holds only supported backends.
    // Every lane op here is elementwise-identical to the scalar
    // expression, so the result is bit-exact across backends.
    unsafe { (table.dequant)(acc, m, n, comp, a_zero, scale, out) };
}

/// Like [`dequant_acc`] but also adds a per-column f32 bias.
///
/// # Panics
///
/// Panics on any length mismatch.
#[allow(clippy::too_many_arguments)]
pub fn dequant_acc_bias(
    acc: &[i32],
    m: usize,
    n: usize,
    comp: &[i32],
    a_zero: i32,
    scale: f32,
    bias: &[f32],
    out: &mut [f32],
) {
    assert_eq!(bias.len(), n);
    dequant_acc(acc, m, n, comp, a_zero, scale, out);
    for orow in out.chunks_exact_mut(n) {
        for (o, &b) in orow.iter_mut().zip(bias) {
            *o += b;
        }
    }
}

/// Requantize an f32 tile to u8 with round-to-nearest and saturation.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn requant_u8(xs: &[f32], inv_scale: f32, zero_point: i32, out: &mut [u8]) {
    assert_eq!(xs.len(), out.len());
    for (o, &x) in out.iter_mut().zip(xs) {
        let q = (x * inv_scale).round() as i64 + zero_point as i64;
        *o = q.clamp(0, 255) as u8;
    }
}

/// Widen a u8 tile to f32 (for mixed-precision post-ops).
///
/// # Panics
///
/// Panics if lengths differ.
pub fn u8_to_f32(src: &[u8], out: &mut [f32]) {
    assert_eq!(src.len(), out.len());
    for (o, &s) in out.iter_mut().zip(src) {
        *o = s as f32;
    }
}

/// Widen an i32 tile to f32.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn i32_to_f32(src: &[i32], out: &mut [f32]) {
    assert_eq!(src.len(), out.len());
    for (o, &s) in out.iter_mut().zip(src) {
        *o = s as f32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dequant_applies_compensation() {
        // acc = raw u8*i8 sums; comp corrects for a_z
        let acc = [10i32, 20, 30, 40];
        let comp = [1i32, 2];
        let mut out = [0f32; 4];
        dequant_acc(&acc, 2, 2, &comp, 3, 0.5, &mut out);
        assert_eq!(
            out,
            [
                (10 - 3) as f32 * 0.5,
                (20 - 6) as f32 * 0.5,
                (30 - 3) as f32 * 0.5,
                (40 - 6) as f32 * 0.5
            ]
        );
    }

    #[test]
    fn dequant_bias_adds_columnwise() {
        let acc = [0i32; 4];
        let comp = [0i32; 2];
        let bias = [1.0f32, -1.0];
        let mut out = [0f32; 4];
        dequant_acc_bias(&acc, 2, 2, &comp, 0, 1.0, &bias, &mut out);
        assert_eq!(out, [1.0, -1.0, 1.0, -1.0]);
    }

    #[test]
    fn requant_saturates_and_rounds() {
        let xs = [0.26f32, -5.0, 1e9];
        let mut out = [0u8; 3];
        requant_u8(&xs, 4.0, 10, &mut out); // scale 0.25
        assert_eq!(out, [11, 0, 255]);
    }

    #[test]
    fn requant_matches_quant_module() {
        // differential check against gc-tensor's scalar quantizer semantics
        let p_scale = 0.1f32;
        let zp = 7;
        let xs: Vec<f32> = (-20..20).map(|i| i as f32 * 0.07).collect();
        let mut out = vec![0u8; xs.len()];
        requant_u8(&xs, 1.0 / p_scale, zp, &mut out);
        for (&o, &x) in out.iter().zip(&xs) {
            let expect = ((x / p_scale).round() as i64 + zp as i64).clamp(0, 255) as u8;
            // multiply-by-reciprocal may differ from division by one ulp
            // exactly at rounding boundaries; allow off-by-one there.
            assert!(
                (o as i64 - expect as i64).abs() <= 1,
                "x={x} got {o} want {expect}"
            );
        }
    }

    #[test]
    fn widenings() {
        let mut f = [0f32; 2];
        u8_to_f32(&[3, 255], &mut f);
        assert_eq!(f, [3.0, 255.0]);
        i32_to_f32(&[-7, 9], &mut f);
        assert_eq!(f, [-7.0, 9.0]);
    }
}
