//! Vectorized elementwise kernels.
//!
//! Fusible OPs lowered into a template anchor become loops whose
//! innermost dimension is executed by one of these slice kernels — the
//! reproduction's stand-in for the vectorized code the JIT emits. The
//! hottest kernels (relu, add, mul, accumulate) route through the
//! [`crate::arch`] dispatch table to the explicit-SIMD backend selected
//! for this process; the rest are scalar loops LLVM autovectorizes.

use crate::arch;

/// Unary elementwise operations available to fused post-ops.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    /// `max(x, 0)`
    Relu,
    /// GELU, tanh approximation.
    Gelu,
    /// Logistic sigmoid.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
    /// Natural exponential.
    Exp,
    /// Square `x * x`.
    Square,
    /// Negation.
    Neg,
    /// Identity (copy).
    Identity,
}

impl UnaryOp {
    /// Apply to one scalar.
    pub fn apply(self, x: f32) -> f32 {
        match self {
            UnaryOp::Relu => x.max(0.0),
            UnaryOp::Gelu => gelu_scalar(x),
            UnaryOp::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            UnaryOp::Tanh => x.tanh(),
            UnaryOp::Exp => x.exp(),
            UnaryOp::Square => x * x,
            UnaryOp::Neg => -x,
            UnaryOp::Identity => x,
        }
    }
}

#[inline]
fn gelu_scalar(x: f32) -> f32 {
    const SQRT_2_OVER_PI: f32 = 0.797_884_6;
    0.5 * x * (1.0 + (SQRT_2_OVER_PI * (x + 0.044_715 * x * x * x)).tanh())
}

/// Binary elementwise operations available to fused post-ops.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinaryOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// Maximum.
    Max,
    /// Minimum.
    Min,
}

impl BinaryOp {
    /// Apply to two scalars.
    pub fn apply(self, a: f32, b: f32) -> f32 {
        match self {
            BinaryOp::Add => a + b,
            BinaryOp::Sub => a - b,
            BinaryOp::Mul => a * b,
            BinaryOp::Div => a / b,
            BinaryOp::Max => a.max(b),
            BinaryOp::Min => a.min(b),
        }
    }
}

/// Apply a unary op over `src` into `dst`.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn unary(op: UnaryOp, src: &[f32], dst: &mut [f32]) {
    assert_eq!(src.len(), dst.len());
    match op {
        // Relu is the hottest post-op: explicit SIMD via the dispatch
        // table.
        UnaryOp::Relu => {
            let table = arch::active();
            arch::record(arch::Family::Eltwise, table.isa);
            // SAFETY: lengths asserted equal; table holds only
            // supported backends.
            unsafe { (table.relu)(src, dst) };
        }
        UnaryOp::Identity => dst.copy_from_slice(src),
        UnaryOp::Square => {
            for (d, &s) in dst.iter_mut().zip(src) {
                *d = s * s;
            }
        }
        UnaryOp::Neg => {
            for (d, &s) in dst.iter_mut().zip(src) {
                *d = -s;
            }
        }
        _ => {
            for (d, &s) in dst.iter_mut().zip(src) {
                *d = op.apply(s);
            }
        }
    }
}

/// Apply a unary op in place.
pub fn unary_inplace(op: UnaryOp, buf: &mut [f32]) {
    match op {
        UnaryOp::Relu => {
            let table = arch::active();
            arch::record(arch::Family::Eltwise, table.isa);
            // SAFETY: table holds only supported backends.
            unsafe { (table.relu_inplace)(buf) };
        }
        UnaryOp::Identity => {}
        _ => {
            for x in buf.iter_mut() {
                *x = op.apply(*x);
            }
        }
    }
}

/// Apply a binary op elementwise: `dst[i] = op(a[i], b[i])`.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn binary(op: BinaryOp, a: &[f32], b: &[f32], dst: &mut [f32]) {
    assert_eq!(a.len(), dst.len());
    assert_eq!(b.len(), dst.len());
    match op {
        // Add and Mul dominate fused binary post-ops: explicit SIMD.
        BinaryOp::Add => {
            let table = arch::active();
            arch::record(arch::Family::Eltwise, table.isa);
            // SAFETY: lengths asserted equal above.
            unsafe { (table.binary_add)(a, b, dst) };
        }
        BinaryOp::Mul => {
            let table = arch::active();
            arch::record(arch::Family::Eltwise, table.isa);
            // SAFETY: lengths asserted equal above.
            unsafe { (table.binary_mul)(a, b, dst) };
        }
        _ => {
            for ((d, &x), &y) in dst.iter_mut().zip(a).zip(b) {
                *d = op.apply(x, y);
            }
        }
    }
}

/// `dst[i] = op(a[i], scalar)` — binary with a broadcast scalar rhs.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn binary_scalar(op: BinaryOp, a: &[f32], scalar: f32, dst: &mut [f32]) {
    assert_eq!(a.len(), dst.len());
    match op {
        BinaryOp::Add => {
            for (d, &x) in dst.iter_mut().zip(a) {
                *d = x + scalar;
            }
        }
        BinaryOp::Mul => {
            for (d, &x) in dst.iter_mut().zip(a) {
                *d = x * scalar;
            }
        }
        BinaryOp::Div => {
            let inv = 1.0 / scalar;
            for (d, &x) in dst.iter_mut().zip(a) {
                *d = x * inv;
            }
        }
        _ => {
            for (d, &x) in dst.iter_mut().zip(a) {
                *d = op.apply(x, scalar);
            }
        }
    }
}

/// Zero a buffer (the template's `C' = 0`).
pub fn zero(buf: &mut [f32]) {
    buf.fill(0.0);
}

/// Zero an i32 accumulator buffer.
pub fn zero_i32(buf: &mut [i32]) {
    buf.fill(0);
}

/// Copy `src` into `dst`.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn copy(src: &[f32], dst: &mut [f32]) {
    dst.copy_from_slice(src);
}

/// Accumulate one f32 partial buffer into another: `dst[i] += src[i]`.
///
/// The reduction step of the k-slicing template: each k-slice's partial
/// accumulator is folded into the task's final accumulator with this
/// kernel.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn acc_add_f32(src: &[f32], dst: &mut [f32]) {
    assert_eq!(src.len(), dst.len());
    let table = arch::active();
    arch::record(arch::Family::Eltwise, table.isa);
    // SAFETY: lengths asserted equal above.
    unsafe { (table.acc_add)(src, dst) };
}

/// Accumulate one i32 partial buffer into another: `dst[i] += src[i]`.
///
/// The u8×i8 variant of the k-slicing reduction; integer addition is
/// associative, so sliced and unsliced int8 matmuls agree bit-for-bit.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn acc_add_i32(src: &[i32], dst: &mut [i32]) {
    assert_eq!(src.len(), dst.len());
    for (d, &s) in dst.iter_mut().zip(src) {
        *d += s;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_kernel() {
        let src = [-1.0f32, 2.0, -3.0, 4.0];
        let mut dst = [0f32; 4];
        unary(UnaryOp::Relu, &src, &mut dst);
        assert_eq!(dst, [0.0, 2.0, 0.0, 4.0]);
    }

    #[test]
    fn unary_matches_scalar_apply() {
        let src: Vec<f32> = (-8..8).map(|i| i as f32 * 0.3).collect();
        for op in [
            UnaryOp::Relu,
            UnaryOp::Gelu,
            UnaryOp::Sigmoid,
            UnaryOp::Tanh,
            UnaryOp::Exp,
            UnaryOp::Square,
            UnaryOp::Neg,
            UnaryOp::Identity,
        ] {
            let mut dst = vec![0f32; src.len()];
            unary(op, &src, &mut dst);
            for (d, &s) in dst.iter().zip(&src) {
                assert_eq!(*d, op.apply(s), "{op:?}");
            }
        }
    }

    #[test]
    fn unary_inplace_matches_out_of_place() {
        let src: Vec<f32> = (-5..5).map(|i| i as f32).collect();
        for op in [UnaryOp::Relu, UnaryOp::Exp, UnaryOp::Identity] {
            let mut a = src.clone();
            unary_inplace(op, &mut a);
            let mut b = vec![0f32; src.len()];
            unary(op, &src, &mut b);
            assert_eq!(a, b, "{op:?}");
        }
    }

    #[test]
    fn binary_kernels() {
        let a = [1.0f32, 2.0, 3.0];
        let b = [4.0f32, 5.0, 6.0];
        let mut d = [0f32; 3];
        binary(BinaryOp::Add, &a, &b, &mut d);
        assert_eq!(d, [5.0, 7.0, 9.0]);
        binary(BinaryOp::Div, &a, &b, &mut d);
        assert_eq!(d, [0.25, 0.4, 0.5]);
        binary(BinaryOp::Max, &a, &b, &mut d);
        assert_eq!(d, [4.0, 5.0, 6.0]);
    }

    #[test]
    fn binary_scalar_div_uses_reciprocal_consistently() {
        let a = [2.0f32, 4.0];
        let mut d = [0f32; 2];
        binary_scalar(BinaryOp::Div, &a, 2.0, &mut d);
        assert_eq!(d, [1.0, 2.0]);
        binary_scalar(BinaryOp::Sub, &a, 1.0, &mut d);
        assert_eq!(d, [1.0, 3.0]);
    }

    #[test]
    fn zero_and_copy() {
        let mut buf = [1.0f32, 2.0];
        zero(&mut buf);
        assert_eq!(buf, [0.0, 0.0]);
        copy(&[3.0, 4.0], &mut buf);
        assert_eq!(buf, [3.0, 4.0]);
        let mut acc = [5i32, 6];
        zero_i32(&mut acc);
        assert_eq!(acc, [0, 0]);
    }

    #[test]
    fn acc_add_kernels() {
        let mut d = [1.0f32, 2.0, 3.0];
        acc_add_f32(&[0.5, -2.0, 1.0], &mut d);
        assert_eq!(d, [1.5, 0.0, 4.0]);
        let mut di = [10i32, -4, 7];
        acc_add_i32(&[1, 4, -7], &mut di);
        assert_eq!(di, [11, 0, 0]);
    }

    #[test]
    #[should_panic]
    fn acc_add_length_mismatch_panics() {
        let mut d = [0f32; 2];
        acc_add_f32(&[1.0, 2.0, 3.0], &mut d);
    }

    #[test]
    #[should_panic]
    fn length_mismatch_panics() {
        let mut d = [0f32; 2];
        unary(UnaryOp::Relu, &[1.0, 2.0, 3.0], &mut d);
    }
}
