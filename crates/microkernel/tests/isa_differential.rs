//! Differential test matrix over the ISA dispatch layer: every kernel
//! family × every CPU-supported backend × aligned and ragged/tail
//! shapes, compared against the scalar backend. f32 families must agree
//! within 1e-5 relative error (FMA contraction and lane-width reduction
//! order differ per backend); integer families must be bit-exact.

use gc_microkernel::arch::{kernels, Isa, Kernels};

/// Every backend the running CPU can execute, scalar first.
fn available() -> Vec<Isa> {
    [Isa::Scalar, Isa::Avx2, Isa::Avx512]
        .into_iter()
        .filter(|isa| isa.supported())
        .collect()
}

/// xorshift-based deterministic fill in [-1, 1).
fn fill_f32(seed: u64, n: usize) -> Vec<f32> {
    let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..n)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            ((s >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0) as f32
        })
        .collect()
}

fn fill_u8(seed: u64, n: usize) -> Vec<u8> {
    fill_f32(seed, n)
        .into_iter()
        .map(|x| ((x * 0.5 + 0.5) * 255.0) as u8)
        .collect()
}

fn fill_i8(seed: u64, n: usize) -> Vec<i8> {
    fill_f32(seed, n)
        .into_iter()
        .map(|x| (x * 127.0) as i8)
        .collect()
}

fn assert_close(got: &[f32], want: &[f32], ctx: &str) {
    assert_eq!(got.len(), want.len(), "{ctx}: length");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        let tol = 1e-5f32.max(w.abs() * 1e-5);
        assert!(
            (g - w).abs() <= tol,
            "{ctx}: element {i}: {g} vs {w} (tol {tol})"
        );
    }
}

/// (m, n, k) tile shapes: SIMD-aligned and ragged/tail-heavy. k values
/// cover multiples of every backend's step (8/16/64) plus primes that
/// leave remainders at each width.
const GEMM_SHAPES: &[(usize, usize, usize)] = &[
    // aligned
    (8, 16, 64),
    (4, 8, 128),
    (16, 4, 64),
    // ragged m/n, aligned k
    (5, 7, 64),
    (3, 1, 16),
    (1, 3, 128),
    // ragged k
    (8, 16, 13),
    (5, 7, 17),
    (6, 5, 63),
    (2, 2, 67),
    (7, 9, 479),
    (1, 1, 1),
];

fn gemm_f32_all(k: &Kernels, m: usize, n: usize, kk: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
    let mut c = fill_f32(99, m * n); // nonzero init exercises accumulation
    k.gemm_f32(m, n, kk, a, b, &mut c);
    c
}

#[test]
fn brgemm_f32_matrix() {
    for isa in available() {
        let kern = kernels(isa);
        let base = kernels(Isa::Scalar);
        for &(m, n, k) in GEMM_SHAPES {
            let a = fill_f32(m as u64 * 31 + k as u64, m * k);
            let b = fill_f32(n as u64 * 17 + k as u64, n * k);
            let got = gemm_f32_all(&kern, m, n, k, &a, &b);
            let want = gemm_f32_all(&base, m, n, k, &a, &b);
            assert_close(&got, &want, &format!("gemm_f32 {isa} {m}x{n}x{k}"));
        }
    }
}

#[test]
fn brgemm_f32_tail_matches_full_prefix_per_isa() {
    // Within one backend, an m-tail result must equal the full tile's
    // row prefix *bit-exactly* (per-row reduction order is independent
    // of the register-block height).
    for isa in available() {
        let kern = kernels(isa);
        let (m, n, k) = (8usize, 6usize, 53usize);
        let a = fill_f32(5, m * k);
        let b = fill_f32(6, n * k);
        let mut full = vec![0f32; m * n];
        kern.gemm_f32(m, n, k, &a, &b, &mut full);
        for m_valid in [1usize, 2, 3, 5, 7, 8] {
            let mut tail = vec![0f32; m_valid * n];
            kern.gemm_f32(m_valid, n, k, &a[..m_valid * k], &b, &mut tail);
            assert_eq!(tail, full[..m_valid * n], "{isa} m_valid={m_valid}");
        }
    }
}

#[test]
fn brgemm_u8i8_matrix_bit_exact() {
    for isa in available() {
        let kern = kernels(isa);
        let base = kernels(Isa::Scalar);
        for &(m, n, k) in GEMM_SHAPES {
            let a = fill_u8(m as u64 * 13 + k as u64, m * k);
            let b = fill_i8(n as u64 * 7 + k as u64, n * k);
            let mut got = vec![3i32; m * n];
            let mut want = vec![3i32; m * n];
            kern.gemm_u8i8(m, n, k, &a, &b, &mut got);
            base.gemm_u8i8(m, n, k, &a, &b, &mut want);
            assert_eq!(got, want, "gemm_u8i8 {isa} {m}x{n}x{k}");
        }
    }
}

#[test]
fn eltwise_matrix() {
    // relu and binary add/mul are elementwise-identical ops in every
    // backend, so even f32 must match bit-exactly.
    for isa in available() {
        let kern = kernels(isa);
        let base = kernels(Isa::Scalar);
        for n in [1usize, 7, 8, 16, 64, 129, 1000] {
            let a = fill_f32(n as u64, n);
            let b = fill_f32(n as u64 + 1, n);
            let (mut g, mut w) = (vec![0f32; n], vec![0f32; n]);
            kern.relu(&a, &mut g);
            base.relu(&a, &mut w);
            assert_eq!(g, w, "relu {isa} n={n}");
            kern.binary_add(&a, &b, &mut g);
            base.binary_add(&a, &b, &mut w);
            assert_eq!(g, w, "add {isa} n={n}");
            kern.binary_mul(&a, &b, &mut g);
            base.binary_mul(&a, &b, &mut w);
            assert_eq!(g, w, "mul {isa} n={n}");
            let mut gacc = a.clone();
            let mut wacc = a.clone();
            kern.acc_add(&b, &mut gacc);
            base.acc_add(&b, &mut wacc);
            assert_eq!(gacc, wacc, "acc_add {isa} n={n}");
        }
    }
}

#[test]
fn reduce_matrix() {
    for isa in available() {
        let kern = kernels(isa);
        let base = kernels(Isa::Scalar);
        for n in [0usize, 1, 5, 8, 16, 17, 64, 479, 1024] {
            let xs = fill_f32(n as u64 + 42, n);
            let (gs, ws) = (kern.reduce_sum(&xs), base.reduce_sum(&xs));
            let tol = 1e-5f32.max(ws.abs() * 1e-5);
            assert!((gs - ws).abs() <= tol, "sum {isa} n={n}: {gs} vs {ws}");
            // max picks one element — exact regardless of lane order.
            assert_eq!(
                kern.reduce_max(&xs),
                base.reduce_max(&xs),
                "max {isa} n={n}"
            );
        }
    }
}

#[test]
fn epilogue_dequant_matrix_bit_exact() {
    for isa in available() {
        let kern = kernels(isa);
        let base = kernels(Isa::Scalar);
        for &(m, n) in &[(1usize, 1usize), (3, 7), (4, 16), (5, 33), (2, 479)] {
            let acc: Vec<i32> = fill_f32(7, m * n)
                .into_iter()
                .map(|x| (x * 100_000.0) as i32)
                .collect();
            let comp: Vec<i32> = fill_f32(8, n)
                .into_iter()
                .map(|x| (x * 1000.0) as i32)
                .collect();
            let (mut g, mut w) = (vec![0f32; m * n], vec![0f32; m * n]);
            kern.dequant(&acc, m, n, &comp, 3, 0.0173, &mut g);
            base.dequant(&acc, m, n, &comp, 3, 0.0173, &mut w);
            assert_eq!(g, w, "dequant {isa} {m}x{n}");
        }
    }
}

#[test]
fn best_detected_isa_is_exercised() {
    // Guards against the matrix silently collapsing to scalar-only: on
    // x86_64 hosts with AVX2/AVX-512 the list must include them.
    let isas = available();
    assert!(isas.contains(&Isa::Scalar));
    #[cfg(target_arch = "x86_64")]
    {
        if is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma") {
            assert!(isas.contains(&Isa::Avx2), "AVX2 detected but not tested");
        }
        if is_x86_feature_detected!("avx512f") && is_x86_feature_detected!("avx512bw") {
            assert!(
                isas.contains(&Isa::Avx512),
                "AVX-512 detected but not tested"
            );
        }
    }
}
