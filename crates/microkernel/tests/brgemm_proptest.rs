//! Property tests pinning the register-tiled brgemm to the scalar
//! reference across random geometries, including every ragged-edge
//! combination of the `MR x NR` dispatch table and k-loop tails.

use gc_microkernel::brgemm::{self, BrgemmShape};
use proptest::prelude::*;

/// Deterministic pseudo-random tile data — the proptest strategies draw
/// only the geometry, so shrinking stays cheap and failures print small.
fn fill_f32(n: usize, seed: u64) -> Vec<f32> {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
    (0..n)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 40) as f32 / (1u64 << 24) as f32) * 2.0 - 1.0
        })
        .collect()
}

fn fill_u8(n: usize, seed: u64) -> Vec<u8> {
    fill_f32(n, seed).iter().map(|x| (x * 31.0) as u8).collect()
}

fn fill_i8(n: usize, seed: u64) -> Vec<i8> {
    fill_f32(n, seed).iter().map(|x| (x * 15.0) as i8).collect()
}

proptest! {
    /// Tiled f32 brgemm matches the scalar reference on random
    /// m/n/k/batch, covering full register blocks, ragged m (m % 2),
    /// ragged n (n % 4), and k tails (k % 8).
    #[test]
    fn tiled_f32_matches_scalar(
        m in 1usize..=9,
        n in 1usize..=11,
        k in 0usize..=33,
        batch in 0usize..=3,
        seed in 0u64..1024,
    ) {
        let shape = BrgemmShape::new(m, n, k);
        let a_buf = fill_f32(batch * shape.a_len() + 1, seed);
        let b_buf = fill_f32(batch * shape.b_len() + 1, seed ^ 0xabcd);
        let a_offs: Vec<usize> = (0..batch).map(|i| i * shape.a_len()).collect();
        let b_offs: Vec<usize> = (0..batch).map(|i| i * shape.b_len()).collect();
        let mut got = fill_f32(shape.c_len(), seed ^ 0x55); // nonzero: += semantics
        let mut want = got.clone();
        brgemm::brgemm_f32(shape, &a_buf, &a_offs, &b_buf, &b_offs, &mut got);
        brgemm::scalar::brgemm_f32(shape, &a_buf, &a_offs, &b_buf, &b_offs, &mut want);
        for (i, (&x, &y)) in got.iter().zip(want.iter()).enumerate() {
            prop_assert!(
                (x - y).abs() <= 1e-4 * (1.0 + y.abs()),
                "c[{}]: {} vs {} (m={} n={} k={} batch={})", i, x, y, m, n, k, batch
            );
        }
    }

    /// Int8 brgemm is integer-exact against the scalar reference.
    #[test]
    fn u8i8_matches_scalar_exactly(
        m in 1usize..=6,
        n in 1usize..=9,
        k in 0usize..=21,
        batch in 0usize..=3,
        seed in 0u64..1024,
    ) {
        let shape = BrgemmShape::new(m, n, k);
        let a_buf = fill_u8(batch * shape.a_len() + 1, seed);
        let b_buf = fill_i8(batch * shape.b_len() + 1, seed ^ 0x1234);
        let a_offs: Vec<usize> = (0..batch).map(|i| i * shape.a_len()).collect();
        let b_offs: Vec<usize> = (0..batch).map(|i| i * shape.b_len()).collect();
        let mut got = vec![7i32; shape.c_len()];
        let mut want = got.clone();
        brgemm::brgemm_u8i8(shape, &a_buf, &a_offs, &b_buf, &b_offs, &mut got);
        brgemm::scalar::brgemm_u8i8(shape, &a_buf, &a_offs, &b_buf, &b_offs, &mut want);
        prop_assert_eq!(got, want);
    }
}

/// The dispatch-table corners the proptest ranges might sample thinly:
/// every (m % MR, n % NR) residue with k around the lane width.
#[test]
fn ragged_edge_grid_matches_scalar() {
    for m in 1..=5 {
        for n in 1..=9 {
            for k in [0usize, 1, 7, 8, 9, 16, 23] {
                let shape = BrgemmShape::new(m, n, k);
                let a = fill_f32(shape.a_len(), (m * 100 + n) as u64);
                let b = fill_f32(shape.b_len(), (n * 100 + k) as u64);
                let mut got = vec![0f32; shape.c_len()];
                let mut want = vec![0f32; shape.c_len()];
                brgemm::brgemm_f32(shape, &a, &[0], &b, &[0], &mut got);
                brgemm::scalar::brgemm_f32(shape, &a, &[0], &b, &[0], &mut want);
                for (x, y) in got.iter().zip(&want) {
                    assert!(
                        (x - y).abs() <= 1e-4 * (1.0 + y.abs()),
                        "m={m} n={n} k={k}: {x} vs {y}"
                    );
                }
            }
        }
    }
}
