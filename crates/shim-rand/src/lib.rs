//! Offline drop-in for the subset of the `rand` 0.8 API this workspace
//! uses. The build container has no crates.io access, so the real crate
//! cannot be fetched; this shim keeps the same call sites compiling
//! (`StdRng::seed_from_u64`, `Rng::gen_range`, `Uniform`/`Distribution`)
//! on top of a deterministic SplitMix64 generator.
//!
//! Determinism matters more than statistical quality here: every test
//! and workload generator seeds explicitly and compares compiled output
//! against a reference computed from the same tensors.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction (the only constructor the workspace uses).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level convenience methods, blanket-implemented for every
/// [`RngCore`] like the real crate does.
pub trait Rng: RngCore {
    /// Uniform sample from a range (`lo..hi` or `lo..=hi`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Sample a value of `T` from the [`distributions::Standard`]
    /// distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    /// Alias: the shim has a single generator.
    pub type SmallRng = StdRng;
}

/// Uniform distributions over primitive types.
pub mod distributions {
    use super::{Range, RangeInclusive, RngCore};

    /// A distribution that can be sampled with any generator.
    pub trait Distribution<T> {
        /// Draw one sample.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Types with a native uniform-range sampler.
    pub trait SampleUniform: Sized + Copy + PartialOrd {
        /// Uniform sample from `[lo, hi)`; `hi` must be greater than
        /// `lo`.
        fn sample_below<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
        /// Uniform sample from `[lo, hi]`.
        fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    }

    macro_rules! impl_int_uniform {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_below<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                    assert!(lo < hi, "empty sample range");
                    let span = (hi as i128 - lo as i128) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (lo as i128 + v as i128) as $t
                }
                fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                    assert!(lo <= hi, "empty sample range");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let v = (rng.next_u64() as u128) % span;
                    (lo as i128 + v as i128) as $t
                }
            }
        )*};
    }

    impl_int_uniform!(u8, i8, u16, i16, u32, i32, u64, i64, usize, isize);

    macro_rules! impl_float_uniform {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_below<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                    assert!(lo < hi, "empty sample range");
                    // 53 bits of mantissa is plenty for both f32/f64.
                    let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                    lo + (hi - lo) * unit
                }
                fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                    Self::sample_below(lo, hi, rng)
                }
            }
        )*};
    }

    impl_float_uniform!(f32, f64);

    /// Range arguments accepted by [`super::Rng::gen_range`].
    pub trait SampleRange<T> {
        /// Draw one sample from the range.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    impl<T: SampleUniform> SampleRange<T> for Range<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            T::sample_below(self.start, self.end, rng)
        }
    }

    impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            T::sample_inclusive(*self.start(), *self.end(), rng)
        }
    }

    /// Uniform distribution over `[lo, hi)`.
    #[derive(Debug, Clone, Copy)]
    pub struct Uniform<T> {
        lo: T,
        hi: T,
    }

    impl<T: SampleUniform> Uniform<T> {
        /// Uniform over `[lo, hi)`.
        pub fn new(lo: T, hi: T) -> Self {
            assert!(lo < hi, "Uniform::new requires lo < hi");
            Uniform { lo, hi }
        }

        /// Uniform over `[lo, hi]`.
        pub fn new_inclusive(lo: T, hi: T) -> UniformInclusive<T> {
            UniformInclusive { lo, hi }
        }
    }

    impl<T: SampleUniform> From<Range<T>> for Uniform<T> {
        fn from(r: Range<T>) -> Self {
            Uniform::new(r.start, r.end)
        }
    }

    impl<T: SampleUniform> Distribution<T> for Uniform<T> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
            T::sample_below(self.lo, self.hi, rng)
        }
    }

    /// Inclusive-range uniform distribution.
    #[derive(Debug, Clone, Copy)]
    pub struct UniformInclusive<T> {
        lo: T,
        hi: T,
    }

    impl<T: SampleUniform> Distribution<T> for UniformInclusive<T> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
            T::sample_inclusive(self.lo, self.hi, rng)
        }
    }

    /// The `Standard` distribution for a few primitive types.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            f32::sample_below(0.0, 1.0, rng)
        }
    }

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            f64::sample_below(0.0, 1.0, rng)
        }
    }

    macro_rules! impl_standard_int {
        ($($t:ty),*) => {$(
            impl Distribution<$t> for Standard {
                fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, Uniform};
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.gen_range(0..1_000_000)).collect();
        let ys: Vec<u64> = (0..8).map(|_| c.gen_range(0..1_000_000)).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let f = rng.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&f));
            let i = rng.gen_range(-16i8..16);
            assert!((-16..16).contains(&i));
            let u = rng.gen_range(3usize..=9);
            assert!((3..=9).contains(&u));
        }
    }

    #[test]
    fn uniform_distribution_sampling() {
        let mut rng = StdRng::seed_from_u64(2);
        let d = Uniform::new(0u8, 16);
        for _ in 0..100 {
            assert!(d.sample(&mut rng) < 16);
        }
        let f = Uniform::new(-1.0f32, 1.0);
        for _ in 0..100 {
            let v = f.sample(&mut rng);
            assert!((-1.0..1.0).contains(&v));
        }
    }

    #[test]
    fn covers_full_int_range_roughly() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 16];
        for _ in 0..400 {
            seen[rng.gen_range(0usize..16)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
