//! Process-wide compiled-plan cache and shared execution resources.
//!
//! The cache key is the full identity of a compiled artifact:
//! canonical graph fingerprint (weights included — they are baked into
//! the executable), shape bucket, a fingerprint of the compile options
//! (which covers dtype legalization, interpret-vs-compiled mode, the
//! active kernel ISA and the tuning-database contents), the thread
//! count (plan decisions depend on the pool width), and the engine
//! shard slot (each shard of a sharded model owns a private executable
//! — see [`PlanKey::shard`]). Loading the same model twice — or the
//! same model in two processes' worth of sessions — compiles once and
//! shares one [`Arc<Executable>`]. Folded constants are shared at a
//! deliberately *coarser* granularity: the engine's [`InitCache`] is
//! keyed by [`PlanKey::fold_digest`] (graph, bucket, options, threads
//! — no shard slot), so every session of one (model, bucket) folds
//! weights once even across shards, while distinct buckets fold
//! separately — their global buffers are bucket-shaped, so sharing
//! across buckets would be incorrect.
//!
//! The plan cache is LRU-bounded ([`DEFAULT_PLAN_CAPACITY`] completed
//! plans, or [`PlanCache::with_capacity`]) so long-lived processes
//! that churn through model variants cannot grow it without bound.

use crate::ServeError;
use gc_runtime::ThreadPool;
use gc_tensor::TensorDesc;
use gc_tir::{Executable, InitCache};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Identity of one compiled plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// Canonical graph fingerprint ([`crate::graph_fingerprint`]).
    pub graph: u64,
    /// Shape bucket, in batching units.
    pub units: u64,
    /// Fingerprint of the [`gc_core::CompileOptions`] in effect.
    pub opts: u64,
    /// Worker threads the embedded pool runs.
    pub threads: u64,
    /// Engine-shard slot this plan executes on: `0` for the unsharded
    /// path, `1..=N` for a sharded model's shards (DESIGN.md "Sharded
    /// execution"). Distinct slots get distinct [`CachedPlan`]s even at
    /// identical width/options, so each shard keeps a **private
    /// exec-state checkout pool** — a shard's executor has concurrency
    /// 1 against its own executable, versus N shards churning one
    /// shared (and width-capped) idle-state pool. Folded constants are
    /// still shared across slots; see [`PlanKey::fold_digest`].
    pub shard: u64,
}

impl PlanKey {
    /// Collapse to one `u64` covering every field (cache audits,
    /// logging).
    pub fn digest(&self) -> u64 {
        crate::hash::combine(&[self.graph, self.units, self.opts, self.threads, self.shard])
    }

    /// The engine-level [`InitCache`] key: every field **except** the
    /// shard slot. The init stage's product (seeded + folded globals)
    /// depends on the graph, bucket shape, options (which fingerprint
    /// the kernel ISA and tuning database) and pool width — but not on
    /// which shard runs it — so all shards of one sharded model fold
    /// their weights exactly once between them.
    pub fn fold_digest(&self) -> u64 {
        crate::hash::combine(&[self.graph, self.units, self.opts, self.threads])
    }
}

/// One cached compilation product.
#[derive(Debug)]
pub struct CachedPlan {
    /// The shared executable.
    pub exe: Arc<Executable>,
    /// Post-optimization input descriptors (graph-input order).
    pub input_descs: Vec<TensorDesc>,
    /// Post-optimization output descriptors (graph-output order).
    pub output_descs: Vec<TensorDesc>,
}

/// One per-key cell: the compiled plan once ready, plus a lock that
/// serializes compile attempts for this key only.
#[derive(Debug, Default)]
struct PlanEntry {
    plan: OnceLock<Arc<CachedPlan>>,
    compiling: Mutex<()>,
    /// Logical-clock stamp of the last hit or compile (LRU ordering).
    last_used: AtomicU64,
}

/// Default [`PlanCache`] capacity: generous — a plan is a few KB of
/// TIR, and capacity-bucketed decode at 1024 positions with 64-way
/// batching is only ~7x7 plans per model — but finite, so a workload
/// that churns through model variants (tests, notebook sessions,
/// per-tenant graphs) cannot grow the process-wide cache without
/// bound.
pub const DEFAULT_PLAN_CAPACITY: usize = 256;

/// A keyed cache of compiled plans with hit/miss accounting and an
/// LRU bound on completed plans.
///
/// Eviction only ever removes *completed* entries: an entry whose
/// compile is in flight holds waiters on its per-key lock and is never
/// dropped out from under them. The bound is therefore on completed
/// plans; transient overshoot equals the number of concurrent
/// first-compiles.
#[derive(Debug)]
pub struct PlanCache {
    map: Mutex<HashMap<PlanKey, Arc<PlanEntry>>>,
    capacity: usize,
    /// Monotone logical clock stamping `PlanEntry::last_used`.
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl Default for PlanCache {
    fn default() -> Self {
        PlanCache::with_capacity(DEFAULT_PLAN_CAPACITY)
    }
}

impl PlanCache {
    /// An empty cache with the default capacity.
    pub fn new() -> Self {
        PlanCache::default()
    }

    /// An empty cache holding at most `capacity` completed plans
    /// (minimum 1).
    pub fn with_capacity(capacity: usize) -> Self {
        PlanCache {
            map: Mutex::new(HashMap::new()),
            capacity: capacity.max(1),
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn touch(&self, entry: &PlanEntry) {
        let now = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        // fetch_max, not store: two threads can draw clock ticks in one
        // order and reach this line in the other, and a plain store
        // would leave the *older* tick as the entry's stamp — making a
        // hot, just-hit entry look stale to the LRU victim scan.
        entry.last_used.fetch_max(now, Ordering::Relaxed);
    }

    /// Evict least-recently-used *completed* entries until at most
    /// `capacity` remain. Called with a fresh map lock after an
    /// insert; in-flight compiles are exempt.
    fn evict_over_capacity(&self) {
        let mut map = self.map.lock().unwrap();
        loop {
            let completed = map.values().filter(|e| e.plan.get().is_some()).count();
            if completed <= self.capacity {
                return;
            }
            let victim = map
                .iter()
                .filter(|(_, e)| e.plan.get().is_some())
                .min_by_key(|(_, e)| e.last_used.load(Ordering::Relaxed))
                .map(|(k, _)| *k);
            match victim {
                Some(k) => {
                    map.remove(&k);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
                None => return,
            }
        }
    }

    /// Return the plan for `key`, compiling it with `compile` on first
    /// use. The map lock is only held for the entry lookup; `compile`
    /// runs under a per-key lock, so concurrent loads of the *same*
    /// model compile exactly once while lookups and compiles of every
    /// other key proceed unstalled (this runs on the request path — a
    /// first-touch of a new bucket must not freeze other models'
    /// traffic for the duration of a compile).
    ///
    /// # Errors
    ///
    /// Propagates `compile`'s error; failures are not cached — the
    /// next caller of the same key retries.
    pub fn get_or_compile(
        &self,
        key: PlanKey,
        compile: impl FnOnce() -> Result<CachedPlan, ServeError>,
    ) -> Result<Arc<CachedPlan>, ServeError> {
        let entry = Arc::clone(self.map.lock().unwrap().entry(key).or_default());
        if let Some(p) = entry.plan.get() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            self.touch(&entry);
            return Ok(Arc::clone(p));
        }
        // Serialize compiles of this key only; recover from a previous
        // compiler panic (poison) by retrying.
        let _compiling = entry
            .compiling
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(p) = entry.plan.get() {
            // Someone else finished while we waited for the key lock.
            self.hits.fetch_add(1, Ordering::Relaxed);
            self.touch(&entry);
            return Ok(Arc::clone(p));
        }
        let plan = Arc::new(compile()?);
        self.misses.fetch_add(1, Ordering::Relaxed);
        let _ = entry.plan.set(Arc::clone(&plan));
        self.touch(&entry);
        self.evict_over_capacity();
        Ok(plan)
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses (= compilations) so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Completed plans dropped by the LRU bound so far.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Most completed plans this cache retains.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Plans currently cached (keys whose compile has completed).
    pub fn len(&self) -> usize {
        self.map
            .lock()
            .unwrap()
            .values()
            .filter(|e| e.plan.get().is_some())
            .count()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every cached plan (tests / model reload).
    pub fn clear(&self) {
        self.map.lock().unwrap().clear();
    }
}

/// The process-wide plan cache [`crate::Model::load`] uses by default.
pub fn plan_cache() -> Arc<PlanCache> {
    static CACHE: OnceLock<Arc<PlanCache>> = OnceLock::new();
    Arc::clone(CACHE.get_or_init(|| Arc::new(PlanCache::new())))
}

/// The process-wide folded-constant cache. Keyed by the [`PlanKey`]
/// digest — graph, bucket, options, threads — so every session of one
/// (model, bucket) folds its weights exactly once, even across
/// distinct `Executable` instances. Distinct buckets fold separately:
/// the folded global set is bucket-shaped.
pub fn init_cache() -> Arc<InitCache> {
    static CACHE: OnceLock<Arc<InitCache>> = OnceLock::new();
    Arc::clone(CACHE.get_or_init(|| Arc::new(InitCache::new())))
}

/// A pool registry for the *unsharded* serving path: one [`ThreadPool`]
/// per worker count, shared by every unsharded model compiled at that
/// width. `0` means host parallelism. Sharded models do **not** draw
/// from this registry — each [`crate::shard::EngineShard`] constructs
/// its own first-class [`gc_tir::Engine`] (own pool, own worker setup
/// for ISA/affinity), which is the point of sharding.
pub fn shared_pool(threads: usize) -> Arc<ThreadPool> {
    static POOLS: OnceLock<Mutex<HashMap<usize, Arc<ThreadPool>>>> = OnceLock::new();
    let pools = POOLS.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = pools.lock().unwrap();
    Arc::clone(map.entry(threads).or_insert_with(|| {
        Arc::new(if threads == 0 {
            ThreadPool::with_host_parallelism()
        } else {
            ThreadPool::new(threads)
        })
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_plan() -> CachedPlan {
        use gc_core::{CompileOptions, Compiler};
        use gc_graph::{Graph, OpKind};
        use gc_tensor::{DataType, Tensor};
        let mut g = Graph::new();
        let x = g.add_input(TensorDesc::new([2, 4], DataType::F32), "x");
        let w = g.add_constant(Tensor::random(&[4, 2], DataType::F32, 3), "w");
        let y = g.add_op(OpKind::MatMul, &[x, w]).unwrap();
        g.mark_output(y);
        let opts = CompileOptions {
            threads: Some(1),
            ..CompileOptions::default()
        };
        let arts = Compiler::new(opts)
            .compile_artifacts(g, shared_pool(1))
            .unwrap();
        CachedPlan {
            exe: Arc::new(arts.exe),
            input_descs: arts.input_descs,
            output_descs: arts.output_descs,
        }
    }

    #[test]
    fn hit_returns_pointer_equal_plan() {
        let cache = PlanCache::new();
        let key = PlanKey {
            graph: 1,
            units: 4,
            opts: 2,
            threads: 1,
            shard: 0,
        };
        let a = cache.get_or_compile(key, || Ok(dummy_plan())).unwrap();
        let b = cache
            .get_or_compile(key, || panic!("must not recompile"))
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert!(Arc::ptr_eq(&a.exe, &b.exe));
        assert_eq!((cache.hits(), cache.misses(), cache.len()), (1, 1, 1));
    }

    #[test]
    fn different_bucket_misses() {
        let cache = PlanCache::new();
        let k4 = PlanKey {
            graph: 1,
            units: 4,
            opts: 2,
            threads: 1,
            shard: 0,
        };
        let k8 = PlanKey { units: 8, ..k4 };
        let a = cache.get_or_compile(k4, || Ok(dummy_plan())).unwrap();
        let b = cache.get_or_compile(k8, || Ok(dummy_plan())).unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!((cache.hits(), cache.misses(), cache.len()), (0, 2, 2));
    }

    #[test]
    fn errors_are_not_cached() {
        let cache = PlanCache::new();
        let key = PlanKey {
            graph: 9,
            units: 1,
            opts: 0,
            threads: 1,
            shard: 0,
        };
        let e = cache.get_or_compile(key, || Err(ServeError::Compile("boom".into())));
        assert!(e.is_err());
        assert_eq!(cache.len(), 0);
        let ok = cache.get_or_compile(key, || Ok(dummy_plan()));
        assert!(ok.is_ok());
    }

    #[test]
    fn same_key_compiles_once_under_contention() {
        use std::sync::atomic::AtomicUsize;
        let cache = Arc::new(PlanCache::new());
        let key = PlanKey {
            graph: 5,
            units: 4,
            opts: 0,
            threads: 1,
            shard: 0,
        };
        let compiles = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let compiles = Arc::clone(&compiles);
                std::thread::spawn(move || {
                    cache
                        .get_or_compile(key, || {
                            compiles.fetch_add(1, Ordering::SeqCst);
                            Ok(dummy_plan())
                        })
                        .unwrap()
                })
            })
            .collect();
        let plans: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(compiles.load(Ordering::SeqCst), 1);
        for p in &plans[1..] {
            assert!(Arc::ptr_eq(&plans[0], p));
        }
    }

    #[test]
    fn concurrent_churn_keeps_lru_accounting_consistent() {
        // Stress the LRU under contention: several threads churn
        // through a keyspace larger than capacity while all of them
        // keep re-touching one shared hot key. Guards the audit
        // invariants: completed plans never exceed capacity (beyond
        // in-flight compiles), every eviction is counted exactly once
        // (len == misses - evictions), and a continuously-touched
        // entry's stamp stays fresh enough to survive the churn —
        // which is what `touch`'s fetch_max (not store) buys under
        // racing stamp updates.
        let cache = Arc::new(PlanCache::with_capacity(8));
        let hot = PlanKey {
            graph: 0,
            units: 4,
            opts: 0,
            threads: 1,
            shard: 0,
        };
        cache.get_or_compile(hot, || Ok(dummy_plan())).unwrap();
        let threads = 4;
        let per_thread = 32;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let cache = Arc::clone(&cache);
                std::thread::spawn(move || {
                    for i in 0..per_thread {
                        let cold = PlanKey {
                            graph: 1 + (t * per_thread + i) as u64,
                            ..hot
                        };
                        cache.get_or_compile(cold, || Ok(dummy_plan())).unwrap();
                        cache
                            .get_or_compile(hot, || panic!("hot key must stay resident"))
                            .unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(cache.len() <= cache.capacity());
        assert_eq!(
            cache.len() as u64,
            cache.misses() - cache.evictions(),
            "every eviction must be counted exactly once"
        );
        assert_eq!(
            cache.misses(),
            1 + (threads * per_thread) as u64,
            "each cold key compiles exactly once; the hot key never recompiles"
        );
    }

    #[test]
    fn compiles_do_not_serialize_across_keys() {
        // Key A's compile blocks until key B's get_or_compile has
        // completed; under a cache-wide compile lock this deadlocks.
        use std::sync::mpsc;
        let cache = Arc::new(PlanCache::new());
        let ka = PlanKey {
            graph: 6,
            units: 4,
            opts: 0,
            threads: 1,
            shard: 0,
        };
        let kb = PlanKey { graph: 7, ..ka };
        let (entered_tx, entered_rx) = mpsc::channel();
        let (done_tx, done_rx) = mpsc::channel();
        let c2 = Arc::clone(&cache);
        let h = std::thread::spawn(move || {
            c2.get_or_compile(ka, || {
                entered_tx.send(()).unwrap();
                done_rx.recv().unwrap();
                Ok(dummy_plan())
            })
        });
        entered_rx.recv().unwrap();
        cache.get_or_compile(kb, || Ok(dummy_plan())).unwrap();
        done_tx.send(()).unwrap();
        h.join().unwrap().unwrap();
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let cache = PlanCache::with_capacity(2);
        let key = |g: u64| PlanKey {
            graph: g,
            units: 4,
            opts: 0,
            threads: 1,
            shard: 0,
        };
        cache.get_or_compile(key(1), || Ok(dummy_plan())).unwrap();
        cache.get_or_compile(key(2), || Ok(dummy_plan())).unwrap();
        // Touch key 1 so key 2 becomes the LRU victim.
        cache.get_or_compile(key(1), || panic!("cached")).unwrap();
        cache.get_or_compile(key(3), || Ok(dummy_plan())).unwrap();
        assert_eq!((cache.len(), cache.evictions()), (2, 1));
        // Key 1 survived; key 2 was evicted and recompiles.
        cache.get_or_compile(key(1), || panic!("cached")).unwrap();
        let recompiled = std::sync::atomic::AtomicUsize::new(0);
        cache
            .get_or_compile(key(2), || {
                recompiled.fetch_add(1, Ordering::SeqCst);
                Ok(dummy_plan())
            })
            .unwrap();
        assert_eq!(recompiled.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn capacity_has_a_floor_of_one() {
        let cache = PlanCache::with_capacity(0);
        assert_eq!(cache.capacity(), 1);
        let k = PlanKey {
            graph: 1,
            units: 1,
            opts: 0,
            threads: 1,
            shard: 0,
        };
        cache.get_or_compile(k, || Ok(dummy_plan())).unwrap();
        cache.get_or_compile(k, || panic!("cached")).unwrap();
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn default_capacity_is_generous() {
        assert_eq!(PlanCache::new().capacity(), DEFAULT_PLAN_CAPACITY);
    }

    #[test]
    fn shared_pool_is_shared_per_width() {
        let a = shared_pool(2);
        let b = shared_pool(2);
        let c = shared_pool(3);
        assert!(Arc::ptr_eq(&a, &b));
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(a.threads(), 2);
        assert_eq!(c.threads(), 3);
    }

    #[test]
    fn plan_key_digest_is_injective_over_fields() {
        let k = PlanKey {
            graph: 1,
            units: 2,
            opts: 3,
            threads: 4,
            shard: 0,
        };
        assert_ne!(k.digest(), PlanKey { graph: 2, ..k }.digest());
        assert_ne!(k.digest(), PlanKey { units: 3, ..k }.digest());
        assert_ne!(k.digest(), PlanKey { opts: 4, ..k }.digest());
        assert_ne!(k.digest(), PlanKey { threads: 5, ..k }.digest());
        assert_ne!(k.digest(), PlanKey { shard: 1, ..k }.digest());
    }

    #[test]
    fn fold_digest_ignores_shard_slot_only() {
        // Shards of one model share folded constants; everything else
        // must still split the fold key.
        let k = PlanKey {
            graph: 1,
            units: 2,
            opts: 3,
            threads: 4,
            shard: 1,
        };
        assert_eq!(k.fold_digest(), PlanKey { shard: 2, ..k }.fold_digest());
        assert_eq!(k.fold_digest(), PlanKey { shard: 0, ..k }.fold_digest());
        assert_ne!(k.fold_digest(), PlanKey { graph: 2, ..k }.fold_digest());
        assert_ne!(k.fold_digest(), PlanKey { units: 3, ..k }.fold_digest());
        assert_ne!(k.fold_digest(), PlanKey { opts: 4, ..k }.fold_digest());
        assert_ne!(k.fold_digest(), PlanKey { threads: 5, ..k }.fold_digest());
    }
}
