//! oneDNN Graph Compiler reproduction — concurrent inference serving
//! runtime (`gc-serve`).
//!
//! The compiler stack below this crate answers "how do I run *one*
//! graph *once*, fast". This crate answers the deployment-side
//! question the paper's integration section leaves to the framework:
//! how a process serves *many* concurrent inference requests against a
//! few models without recompiling, re-folding weights, or serializing
//! every request through one executor.
//!
//! Three pieces:
//!
//! 1. **Model / Session API** ([`Model`], [`Session`]) —
//!    [`Model::load`] canonicalizes and fingerprints the Graph IR and
//!    compiles through a process-wide *plan cache*, so loading the same
//!    model twice (or in two sessions) yields the same
//!    `Arc<Executable>` and runs constant-weight folding exactly once.
//! 2. **Shape-bucketed dynamic batching** — concurrent requests on one
//!    model are coalesced into power-of-two row buckets, padded,
//!    executed once, and scattered back to per-request futures. An
//!    idle model takes a synchronous fast path with no queue hop.
//! 3. **Backpressure + observability** — bounded per-model queues
//!    ([`ServeError::Busy`]), graceful shutdown, and per-model /
//!    per-bucket counters ([`StatsSnapshot`]) with p50/p99 latency.
//! 4. **KV-cache autoregressive decode** ([`DecodeModel`],
//!    [`DecodeSession`]) — per-session KV caches at power-of-two
//!    capacity buckets and a continuous-batching scheduler that
//!    coalesces one pending decode step from many sessions into a
//!    single plan execution per iteration (see [`decode`]).
//! 5. **Sharded execution** ([`EngineShard`], [`shard`]) — a model can
//!    scatter large batches across several independent engine shards
//!    (each with its own thread pool, exec-state checkout pool,
//!    optional core pin, and optional per-thread kernel backend) and
//!    fuse the partial results back into one batch, with per-shard
//!    counters folded into [`StatsSnapshot`]. Enable with
//!    [`ServeConfig::with_shards`]; see DESIGN.md "Sharded execution".
//!
//! ```
//! use gc_graph::{Graph, OpKind, UnaryKind};
//! use gc_serve::{Model, ServeConfig};
//! use gc_tensor::{DataType, Tensor, TensorDesc};
//!
//! let mut g = Graph::new();
//! let x = g.add_input(TensorDesc::new([1, 32], DataType::F32), "x");
//! let w = g.add_constant(Tensor::random(&[32, 8], DataType::F32, 7), "w");
//! let y = g.add_op(OpKind::MatMul, &[x, w])?;
//! let z = g.add_op(OpKind::Unary(UnaryKind::Relu), &[y])?;
//! g.mark_output(z);
//!
//! let model = Model::load(g, ServeConfig::default())?;
//! let session = model.session();
//! let outs = session.infer(&[Tensor::random(&[1, 32], DataType::F32, 1)])?;
//! assert_eq!(outs[0].desc().shape(), &[1, 8]);
//! # Ok::<(), gc_serve::ServeError>(())
//! ```

#![warn(missing_docs)]

pub mod batch;
pub mod cache;
pub mod decode;
pub mod hash;
pub mod model;
pub mod rebatch;
pub mod shard;
pub mod stats;

pub use cache::{init_cache, plan_cache, shared_pool, CachedPlan, PlanCache, PlanKey};
pub use decode::{DecodeConfig, DecodeModel, DecodeSession, StepFuture};
pub use hash::graph_fingerprint;
pub use model::{Model, ServeConfig, Session};
pub use shard::{EngineShard, ShardConfig, ShardJob, ShardPlan, ShardSpec};
pub use stats::{BucketSnapshot, DecodeBucketSnapshot, ShardSnapshot, StatsSnapshot};

use std::fmt;

/// Error type of the serving runtime.
///
/// `Clone` so one failure can be fanned out to every request that was
/// coalesced into the failing batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The model graph cannot be served (invalid, or violates the
    /// batching contract — e.g. a leading dim not divisible by the
    /// template units).
    InvalidModel(String),
    /// A request's tensors don't match the model signature.
    InvalidRequest(String),
    /// The model's bounded request queue is full; the caller should
    /// back off and retry.
    Busy {
        /// Requests currently queued.
        queued: usize,
        /// Queue capacity.
        cap: usize,
    },
    /// The model has been shut down.
    Closed,
    /// Compilation of a shape bucket failed.
    Compile(String),
    /// Execution failed.
    Exec(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::InvalidModel(m) => write!(f, "invalid model: {m}"),
            ServeError::InvalidRequest(m) => write!(f, "invalid request: {m}"),
            ServeError::Busy { queued, cap } => {
                write!(f, "busy: {queued} requests queued (cap {cap})")
            }
            ServeError::Closed => write!(f, "model is shut down"),
            ServeError::Compile(m) => write!(f, "compile: {m}"),
            ServeError::Exec(m) => write!(f, "exec: {m}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<gc_core::CoreError> for ServeError {
    fn from(e: gc_core::CoreError) -> Self {
        // CoreError is not Clone (it wraps source errors); carry the
        // rendered message so batch failures can fan out to waiters.
        match e {
            gc_core::CoreError::Exec(x) => ServeError::Exec(x.to_string()),
            other => ServeError::Compile(other.to_string()),
        }
    }
}

impl From<gc_graph::GraphError> for ServeError {
    fn from(e: gc_graph::GraphError) -> Self {
        ServeError::InvalidModel(e.to_string())
    }
}

impl From<gc_tir::exec::ExecError> for ServeError {
    fn from(e: gc_tir::exec::ExecError) -> Self {
        ServeError::Exec(e.to_string())
    }
}
