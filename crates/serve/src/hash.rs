//! Canonical Graph IR fingerprinting — serving-layer entry point.
//!
//! The actual canonicalization and FNV-1a machinery lives in
//! [`gc_graph::fingerprint`] so the tuning database (gc-core) and the
//! serving plan cache key graphs identically. This module re-exports
//! the hasher and wraps [`gc_graph::graph_fingerprint`] to the serving
//! error type.

use crate::ServeError;
use gc_graph::Graph;

pub use gc_graph::fingerprint::{combine, Fnv1a};

/// Fingerprint a graph's canonical form (see
/// [`gc_graph::graph_fingerprint`]).
///
/// # Errors
///
/// Returns [`ServeError::InvalidModel`] if the graph is cyclic or
/// references a constant with no bound value.
pub fn graph_fingerprint(g: &Graph) -> Result<u64, ServeError> {
    gc_graph::graph_fingerprint(g).map_err(|e| ServeError::InvalidModel(format!("graph: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gc_graph::{OpKind, UnaryKind};
    use gc_tensor::{DataType, Tensor, TensorDesc};

    #[test]
    fn wrapper_matches_graph_crate() {
        let mut g = Graph::new();
        let x = g.add_input(TensorDesc::new([4, 8], DataType::F32), "x");
        let w = g.add_constant(Tensor::random(&[8, 4], DataType::F32, 7), "w");
        let y = g.add_op(OpKind::MatMul, &[x, w]).unwrap();
        let z = g.add_op(OpKind::Unary(UnaryKind::Relu), &[y]).unwrap();
        g.mark_output(z);
        assert_eq!(
            graph_fingerprint(&g).unwrap(),
            gc_graph::graph_fingerprint(&g).unwrap()
        );
    }

    #[test]
    fn unbound_constant_is_invalid_model() {
        // An output that is neither produced nor an input surfaces as
        // InvalidModel through the wrapper.
        let mut g = Graph::new();
        let x = g.add_input(TensorDesc::new([4, 4], DataType::F32), "x");
        let y = g.add_op(OpKind::Unary(UnaryKind::Relu), &[x]).unwrap();
        g.mark_output(y);
        assert!(graph_fingerprint(&g).is_ok());
    }
}
