//! The Model / Session serving API and the dynamic batcher.
//!
//! [`Model::load`] fingerprints the graph and compiles through the
//! process-wide plan cache; [`Session::infer`] either executes
//! synchronously (idle model, no queue hop) or enqueues into the
//! model's bounded request queue, where a dispatcher thread coalesces
//! same-model requests into power-of-two unit buckets, executes each
//! bucket once, and scatters row slices back to per-request futures.
//!
//! # Batching units
//!
//! A model's *template* graph fixes the shape contract. Each variable
//! input `i` has a per-unit row multiplier `k_i = dim0_i /
//! template_units`; a request carrying `u` units must present input
//! `i` with leading dimension `k_i * u` and identical trailing
//! dimensions. By default `template_units` is input 0's leading
//! dimension, making one unit of work one template row.

use crate::batch::{concat_rows, slice_elems};
use crate::cache::{self, CachedPlan, PlanCache, PlanKey};
use crate::hash::{combine, graph_fingerprint, Fnv1a};
use crate::rebatch::{rebatch, validate_template};
use crate::shard::{EngineShard, ShardConfig, ShardPlan, ShardRuntime};
use crate::stats::{ModelStats, StatsSnapshot};
use crate::ServeError;
use gc_core::{CompileOptions, Compiler};
use gc_graph::Graph;
use gc_runtime::{ExecStats, ThreadPool};
use gc_tensor::{Tensor, TensorDesc};
use gc_tir::{Executable, InitCache};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Configuration for [`Model::load`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Compiler options (machine, fusion switches, threads, interpret).
    pub compile: CompileOptions,
    /// Coalescing cap: a dispatched batch carries at most this many
    /// units (a single larger request still executes alone).
    pub max_batch: usize,
    /// How long the dispatcher holds the oldest queued request open
    /// for coalescing before executing what it has.
    pub max_delay: Duration,
    /// Bounded queue capacity in *requests*; enqueueing past it fails
    /// with [`ServeError::Busy`].
    pub queue_cap: usize,
    /// Batching unit in template rows (`None` = input 0's leading dim).
    pub template_units: Option<usize>,
    /// Serve a request synchronously on an idle model, bypassing the
    /// queue (best idle latency). Disable to force every request
    /// through the batcher — maximum coalescing under sustained load.
    pub fast_path: bool,
    /// Plan cache override (`None` = the process-wide cache).
    pub plan_cache: Option<Arc<PlanCache>>,
    /// Folded-constant cache override (`None` = the process-wide one).
    pub init_cache: Option<Arc<InitCache>>,
    /// Sharded execution layout (`None` = one engine, the classic
    /// path). With shards, `compile.threads` is the *total* thread
    /// budget divided across the fleet. See DESIGN.md "Sharded
    /// execution" and [`ServeConfig::with_shards`].
    pub sharding: Option<ShardConfig>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            compile: CompileOptions::default(),
            max_batch: 32,
            max_delay: Duration::from_micros(500),
            queue_cap: 256,
            template_units: None,
            fast_path: true,
            plan_cache: None,
            init_cache: None,
            sharding: None,
        }
    }
}

impl ServeConfig {
    /// Debug knob: serve through checked execution, asserting at
    /// runtime that every plan offset the compiled code evaluates
    /// lands in-bounds. Slower; use to pin down a suspected
    /// miscompile in production shapes. Checked and unchecked
    /// configurations get distinct plan-cache entries, so flipping
    /// this never reuses a plan compiled under the other setting.
    pub fn checked(mut self) -> Self {
        self.compile.checked = true;
        self
    }

    /// Serve with a measured-tuning database: every bucket compile
    /// warm-starts from tuned records where the database has one.
    /// Databases with different contents key distinct plan-cache
    /// entries (the options fingerprint hashes the database content),
    /// so refreshing the database and reloading a model never reuses a
    /// stale plan.
    pub fn with_tuning(mut self, db: Arc<gc_core::TuningDb>) -> Self {
        self.compile.tuning = Some(db);
        self
    }

    /// Serve through `n` uniform engine shards: large batches scatter
    /// into contiguous unit ranges executed concurrently (one per
    /// shard) and fuse back into one result; small batches route whole
    /// to one shard round-robin. `compile.threads` (or the host width
    /// when unset) becomes the *total* budget, divided evenly. For
    /// pinned cores or heterogeneous per-shard ISAs, set
    /// [`ServeConfig::sharding`] with explicit [`crate::ShardSpec`]s.
    pub fn with_shards(mut self, n: usize) -> Self {
        self.sharding = Some(ShardConfig::uniform(n));
        self
    }
}

struct Request {
    inputs: Vec<Tensor>,
    units: usize,
}

type InferResult = Result<(Vec<Tensor>, ExecStats), ServeError>;

struct Slot {
    state: Mutex<Option<InferResult>>,
    cv: Condvar,
}

impl Slot {
    fn new() -> Arc<Slot> {
        Arc::new(Slot {
            state: Mutex::new(None),
            cv: Condvar::new(),
        })
    }

    fn put(&self, r: InferResult) {
        *self.state.lock().unwrap() = Some(r);
        self.cv.notify_all();
    }

    fn take(&self) -> InferResult {
        let mut s = self.state.lock().unwrap();
        loop {
            if let Some(r) = s.take() {
                return r;
            }
            s = self.cv.wait(s).unwrap();
        }
    }
}

struct Pending {
    req: Request,
    slot: Arc<Slot>,
    enqueued_at: Instant,
}

/// Fails every guarded slot on drop unless disarmed: if batch execution
/// unwinds (a panic inside the executor), the waiters blocked in
/// [`Slot::take`] get an error instead of hanging forever.
struct FanoutGuard {
    slots: Vec<Arc<Slot>>,
    armed: bool,
}

impl Drop for FanoutGuard {
    fn drop(&mut self) {
        if self.armed {
            for s in &self.slots {
                s.put(Err(ServeError::Exec(
                    "batch execution panicked; request abandoned".into(),
                )));
            }
        }
    }
}

/// Runs when the dispatcher thread exits — normally or by panic: closes
/// the queue (later requests fail with [`ServeError::Closed`]) and
/// fails every still-queued request so no caller blocks on a dead
/// dispatcher.
struct DispatcherExitGuard(Arc<ModelInner>);

impl Drop for DispatcherExitGuard {
    fn drop(&mut self) {
        let stranded = {
            // The dispatcher never panics while holding the queue lock
            // (batches run with it released), but recover from poison
            // anyway rather than stranding waiters.
            let mut q = self
                .0
                .queue
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            q.closed = true;
            std::mem::take(&mut q.pending)
        };
        self.0.cv.notify_all();
        for p in stranded {
            p.slot.put(Err(ServeError::Closed));
        }
    }
}

struct QueueState {
    pending: VecDeque<Pending>,
    closed: bool,
}

struct ModelInner {
    graph: Graph,
    graph_hash: u64,
    opts_hash: u64,
    config: ServeConfig,
    template_units: usize,
    /// Per-input row multiplier `k_i` (rows per unit).
    unit_dims: Vec<usize>,
    /// Template (pre-optimization) input descriptors for validation.
    template_descs: Vec<TensorDesc>,
    pool: Arc<ThreadPool>,
    plan_cache: Arc<PlanCache>,
    init_cache: Arc<InitCache>,
    /// The shard fleet, when sharded execution is configured.
    shards: Option<ShardRuntime>,
    queue: Mutex<QueueState>,
    cv: Condvar,
    inflight: AtomicUsize,
    stats: ModelStats,
}

/// A loaded, servable model. Owns the dispatcher thread; dropping the
/// model (or calling [`Model::shutdown`]) drains the queue, then every
/// later request fails with [`ServeError::Closed`].
pub struct Model {
    inner: Arc<ModelInner>,
    dispatcher: Mutex<Option<JoinHandle<()>>>,
}

/// A cheap handle for submitting requests to a [`Model`]. Clone one per
/// client thread.
#[derive(Clone)]
pub struct Session {
    inner: Arc<ModelInner>,
}

fn options_fingerprint(opts: &CompileOptions) -> u64 {
    options_fingerprint_isa(opts, gc_microkernel::arch::active_isa().name())
}

/// [`options_fingerprint`] under an explicit kernel backend: sharded
/// models key each shard's plans under the ISA its threads *actually*
/// dispatch on (the per-thread override), not the process-wide one.
fn options_fingerprint_isa(opts: &CompileOptions, isa: &str) -> u64 {
    // Exhaustive destructuring: adding a knob to CompileOptions fails
    // to compile here, forcing a decision on whether (and how) the new
    // knob enters the fingerprint. The previous Debug-string shortcut
    // silently missed knobs whose Debug form is not value-bearing —
    // e.g. a shared tuning database prints as a pointer-shaped struct,
    // so two processes with different tuned entries would have aliased
    // plan-cache keys.
    let CompileOptions {
        machine,
        fusion,
        coarse_fusion,
        low_precision,
        constant_weights,
        propagate_layouts,
        shrink_tensors,
        reuse_buffers,
        reuse_locals,
        forced_post_anchor,
        forced_pack,
        library_params,
        k_slice,
        threads: _, // part of the plan key already; `None` resolves to
        // a host-dependent width, so it must not enter this fingerprint
        interpret,
        validate,
        checked,
        ragged,
        tuning,
        param_log: _, // observability hook; never affects the plan
    } = opts;
    let mut h = Fnv1a::new();
    h.write_str(&format!("{machine:?}"));
    h.write_str(&format!("{fusion:?}"));
    for flag in [
        coarse_fusion,
        low_precision,
        constant_weights,
        propagate_layouts,
        shrink_tensors,
        reuse_buffers,
        reuse_locals,
        library_params,
        k_slice,
        interpret,
        validate,
        checked,
        ragged,
    ] {
        h.write(&[u8::from(*flag)]);
    }
    h.write_str(&format!("{forced_post_anchor:?}"));
    h.write_str(&format!("{forced_pack:?}"));
    // content fingerprint, not identity: two Arcs to equal databases
    // share plans, two databases with different records never do
    match tuning {
        Some(db) => h.write_u64(db.fingerprint()),
        None => h.write_str("untuned"),
    }
    // The microkernel backend the plan dispatches on: plans cached
    // under one ISA (e.g. a GC_FORCE_ISA=scalar run sharing a plan
    // store) must never alias plans for another.
    h.write_str(" isa=");
    h.write_str(isa);
    h.finish()
}

impl Model {
    /// Validate, fingerprint, and compile `graph` for serving.
    ///
    /// Compilation goes through the process-wide plan cache: loading a
    /// structurally identical graph (same weights, options, pool
    /// width) returns the same shared executables, and constant-weight
    /// folding runs at most once per (model, bucket) process-wide.
    /// The bucket a full-template-sized request needs is compiled
    /// eagerly so load surfaces compile errors and first-request
    /// latency stays low; other buckets compile on demand.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidModel`] if the graph violates the
    /// batching contract (see [`crate::rebatch::validate_template`])
    /// and [`ServeError::Compile`] if compilation fails.
    pub fn load(graph: Graph, config: ServeConfig) -> Result<Model, ServeError> {
        let template_units = match config.template_units {
            Some(u) => u,
            None => graph
                .inputs()
                .first()
                .map(|&i| graph.desc(i).shape().first().copied().unwrap_or(0))
                .unwrap_or(0),
        };
        validate_template(&graph, template_units)?;
        if config.max_batch == 0 || config.queue_cap == 0 {
            return Err(ServeError::InvalidModel(
                "max_batch and queue_cap must be > 0".into(),
            ));
        }
        let graph_hash = graph_fingerprint(&graph)?;
        let opts_hash = options_fingerprint(&config.compile);
        let pool = cache::shared_pool(config.compile.threads.unwrap_or(0));
        let plan_cache = config.plan_cache.clone().unwrap_or_else(cache::plan_cache);
        let init_cache = config.init_cache.clone().unwrap_or_else(cache::init_cache);
        let shards = match &config.sharding {
            None => None,
            Some(sc) => {
                if sc.shards.is_empty() {
                    return Err(ServeError::InvalidModel(
                        "sharding configured with zero shards".into(),
                    ));
                }
                // `compile.threads` is the *total* budget when sharded;
                // auto-width specs get an even share.
                let total = config
                    .compile
                    .threads
                    .filter(|&t| t > 0)
                    .unwrap_or_else(|| {
                        std::thread::available_parallelism()
                            .map(std::num::NonZeroUsize::get)
                            .unwrap_or(1)
                    });
                let per_shard = (total / sc.shards.len()).max(1);
                let fleet: Vec<EngineShard> = sc
                    .shards
                    .iter()
                    .enumerate()
                    .map(|(id, spec)| EngineShard::new(id, spec, per_shard))
                    .collect::<Result<_, _>>()?;
                // The fleet topology keys plans: resharding a model
                // (count, widths, or backends) must never reuse plans
                // compiled for another layout.
                let mut topo = Fnv1a::new();
                topo.write_u64(fleet.len() as u64);
                for s in &fleet {
                    topo.write_u64(s.threads() as u64);
                    topo.write_str(s.isa_name());
                }
                let topo = topo.finish();
                let shard_opts = fleet
                    .iter()
                    .map(|s| {
                        combine(&[options_fingerprint_isa(&config.compile, s.isa_name()), topo])
                    })
                    .collect();
                Some(ShardRuntime::new(fleet, sc.min_units_per_shard, shard_opts))
            }
        };
        let unit_dims: Vec<usize> = graph
            .inputs()
            .iter()
            .map(|&i| graph.desc(i).shape()[0] / template_units)
            .collect();
        let template_descs: Vec<TensorDesc> = graph
            .inputs()
            .iter()
            .map(|&i| graph.desc(i).clone())
            .collect();
        let inner = Arc::new(ModelInner {
            graph,
            graph_hash,
            opts_hash,
            template_units,
            unit_dims,
            template_descs,
            pool,
            plan_cache,
            init_cache,
            shards,
            config,
            queue: Mutex::new(QueueState {
                pending: VecDeque::new(),
                closed: false,
            }),
            cv: Condvar::new(),
            inflight: AtomicUsize::new(0),
            stats: ModelStats::new(),
        });
        // Eager warm: compile what a full-template-sized request needs
        // so load surfaces compile errors and first-request latency
        // stays low. Sharded models warm the plans their partition of
        // that batch will use — every shard gets one, since whole-batch
        // round-robin routing eventually reaches them all.
        match &inner.shards {
            None => {
                plan_for_units(&inner, inner.template_units.next_power_of_two())?;
            }
            Some(rt) => {
                inner
                    .stats
                    .register_shards(rt.shards.iter().map(|s| Arc::clone(s.stats())).collect());
                match ShardPlan::partition(
                    inner.template_units,
                    rt.shards.len(),
                    rt.min_units_per_shard,
                    0,
                ) {
                    ShardPlan::Single(_) => {
                        let bucket = inner.template_units.next_power_of_two();
                        for sid in 0..rt.shards.len() {
                            plan_for_shard(&inner, rt, sid, bucket)?;
                        }
                    }
                    ShardPlan::Scatter(parts) => {
                        for (sid, r) in parts {
                            plan_for_shard(&inner, rt, sid, r.len().next_power_of_two())?;
                        }
                    }
                }
            }
        }
        let dispatcher = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("gc-serve-dispatch".into())
                .spawn(move || {
                    let exit = DispatcherExitGuard(inner);
                    dispatcher_loop(&exit.0);
                })
                .expect("spawn dispatcher")
        };
        Ok(Model {
            inner,
            dispatcher: Mutex::new(Some(dispatcher)),
        })
    }

    /// A new request handle.
    pub fn session(&self) -> Session {
        Session {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Point-in-time serving statistics.
    pub fn stats(&self) -> StatsSnapshot {
        self.inner.stats.snapshot()
    }

    /// The canonical graph fingerprint this model is cached under.
    pub fn graph_hash(&self) -> u64 {
        self.inner.graph_hash
    }

    /// The batching unit, in template rows.
    pub fn template_units(&self) -> usize {
        self.inner.template_units
    }

    /// The compiled executable serving bucket `units`, compiling it on
    /// a cache miss (diagnostics and cache-sharing tests; the serving
    /// path uses the same lookup).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Compile`] if the bucket fails to compile.
    pub fn executable_for_units(&self, units: usize) -> Result<Arc<Executable>, ServeError> {
        Ok(Arc::clone(&plan_for_units(&self.inner, units)?.exe))
    }

    /// Stop accepting requests, drain what's queued, and join the
    /// dispatcher. Idempotent; also runs on drop.
    pub fn shutdown(&self) {
        {
            let mut q = self.inner.queue.lock().unwrap();
            if q.closed {
                return;
            }
            q.closed = true;
        }
        self.inner.cv.notify_all();
        if let Some(h) = self.dispatcher.lock().unwrap().take() {
            let _ = h.join();
        }
    }
}

impl Drop for Model {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for Model {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Model")
            .field("graph_hash", &self.inner.graph_hash)
            .field("template_units", &self.inner.template_units)
            .finish_non_exhaustive()
    }
}

impl Session {
    /// Run one inference request; blocks until the result is ready.
    ///
    /// Input `i` must match the model's input `i` in dtype and
    /// trailing dimensions, with leading dimension `k_i * u` for a
    /// request-wide unit count `u` (see the module docs). Outputs come
    /// back shaped, in graph-output order.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidRequest`] on signature mismatch,
    /// [`ServeError::Busy`] when the queue is full,
    /// [`ServeError::Closed`] after shutdown, and
    /// [`ServeError::Compile`]/[`ServeError::Exec`] from the pipeline.
    pub fn infer(&self, inputs: &[Tensor]) -> Result<Vec<Tensor>, ServeError> {
        self.infer_with_stats(inputs).map(|(outs, _)| outs)
    }

    /// [`Session::infer`], plus per-request [`ExecStats`] with
    /// `queue_wait` and `batch_rows` filled in by the batcher.
    ///
    /// # Errors
    ///
    /// See [`Session::infer`].
    pub fn infer_with_stats(
        &self,
        inputs: &[Tensor],
    ) -> Result<(Vec<Tensor>, ExecStats), ServeError> {
        let t0 = Instant::now();
        let inner = &self.inner;
        let units = validate_request(inner, inputs)?;
        let req = Request {
            inputs: inputs.to_vec(),
            units,
        };

        // Fast path: idle model, nothing queued — execute synchronously
        // on the caller thread, no queue hop, no dispatcher wakeup.
        {
            let q = inner.queue.lock().unwrap();
            if q.closed {
                return Err(ServeError::Closed);
            }
            if inner.config.fast_path
                && q.pending.is_empty()
                && inner.inflight.load(Ordering::Relaxed) == 0
            {
                drop(q);
                let mut out = execute_bucket(inner, &[req])?;
                let (outs, stats) = out.pop().expect("one request in, one result out");
                inner.stats.record_fast_path(t0.elapsed());
                return Ok((outs, stats));
            }
        }

        // Queued path.
        let slot = Slot::new();
        {
            let mut q = inner.queue.lock().unwrap();
            if q.closed {
                return Err(ServeError::Closed);
            }
            if q.pending.len() >= inner.config.queue_cap {
                inner.stats.record_busy();
                return Err(ServeError::Busy {
                    queued: q.pending.len(),
                    cap: inner.config.queue_cap,
                });
            }
            q.pending.push_back(Pending {
                req,
                slot: Arc::clone(&slot),
                enqueued_at: Instant::now(),
            });
            inner.stats.enqueued();
        }
        inner.cv.notify_all();
        let result = slot.take();
        if result.is_ok() {
            inner.stats.record_request_latency(t0.elapsed());
        }
        result
    }

    /// Point-in-time serving statistics for the underlying model.
    pub fn stats(&self) -> StatsSnapshot {
        self.inner.stats.snapshot()
    }
}

/// Check a request against the template signature; returns its units.
fn validate_request(inner: &ModelInner, inputs: &[Tensor]) -> Result<usize, ServeError> {
    if inputs.len() != inner.template_descs.len() {
        return Err(ServeError::InvalidRequest(format!(
            "expected {} inputs, got {}",
            inner.template_descs.len(),
            inputs.len()
        )));
    }
    let k0 = inner.unit_dims[0];
    let rows0 = inputs[0].desc().shape().first().copied().unwrap_or(0);
    if k0 == 0 || rows0 == 0 || rows0 % k0 != 0 {
        return Err(ServeError::InvalidRequest(format!(
            "input 0 leading dim {rows0} is not a positive multiple of {k0}"
        )));
    }
    let units = rows0 / k0;
    for (i, (t, want)) in inputs.iter().zip(&inner.template_descs).enumerate() {
        let got = t.desc();
        if got.dtype() != want.dtype() {
            return Err(ServeError::InvalidRequest(format!(
                "input {i} expects {:?}, got {:?}",
                want.dtype(),
                got.dtype()
            )));
        }
        if got.shape().is_empty() || got.shape()[1..] != want.shape()[1..] {
            return Err(ServeError::InvalidRequest(format!(
                "input {i} expects trailing dims {:?}, got shape {:?}",
                &want.shape()[1..],
                got.shape()
            )));
        }
        if got.shape()[0] != inner.unit_dims[i] * units {
            return Err(ServeError::InvalidRequest(format!(
                "input {i} expects leading dim {} for {units} units, got {}",
                inner.unit_dims[i] * units,
                got.shape()[0]
            )));
        }
    }
    Ok(units)
}

/// Look up (or compile) the plan serving bucket `units`.
fn plan_for_units(inner: &ModelInner, units: usize) -> Result<Arc<CachedPlan>, ServeError> {
    let key = PlanKey {
        graph: inner.graph_hash,
        units: units as u64,
        opts: inner.opts_hash,
        threads: inner.pool.threads() as u64,
        shard: 0,
    };
    inner.plan_cache.get_or_compile(key, || {
        let g = rebatch(&inner.graph, inner.template_units, units)?;
        let arts = Compiler::new(inner.config.compile.clone())
            .compile_artifacts(g, Arc::clone(&inner.pool))?;
        let exe = arts
            .exe
            .with_init_cache(Arc::clone(&inner.init_cache), key.fold_digest());
        Ok(CachedPlan {
            exe: Arc::new(exe),
            input_descs: arts.input_descs,
            output_descs: arts.output_descs,
        })
    })
}

/// Look up (or compile) shard `sid`'s private plan for bucket `units`.
///
/// The key's `opts` component carries the shard's *effective* ISA and
/// the fleet topology hash; `shard` is the 1-based slot giving the
/// shard a private executable (and exec-state checkout pool). Folded
/// constants still share across shards with equal options/width via
/// [`PlanKey::fold_digest`].
fn plan_for_shard(
    inner: &ModelInner,
    rt: &ShardRuntime,
    sid: usize,
    units: usize,
) -> Result<Arc<CachedPlan>, ServeError> {
    let shard = &rt.shards[sid];
    let key = PlanKey {
        graph: inner.graph_hash,
        units: units as u64,
        opts: rt.opts_hash[sid],
        threads: shard.threads() as u64,
        shard: sid as u64 + 1,
    };
    inner.plan_cache.get_or_compile(key, || {
        let g = rebatch(&inner.graph, inner.template_units, units)?;
        // Plan decisions (parallel decomposition, buffer sizing) must
        // match the shard's pool, not the process default.
        let copts = inner.config.compile.for_pool_width(shard.threads());
        let arts = Compiler::new(copts).compile_artifacts(g, Arc::clone(shard.pool()))?;
        let exe = arts
            .exe
            .with_init_cache(Arc::clone(&inner.init_cache), key.fold_digest())
            .with_counters(Arc::clone(shard.engine().counters()));
        Ok(CachedPlan {
            exe: Arc::new(exe),
            input_descs: arts.input_descs,
            output_descs: arts.output_descs,
        })
    })
}

/// Concatenate each input across `reqs` along dim 0 and zero-pad to
/// `bucket` units.
fn gather_inputs(
    inner: &ModelInner,
    reqs: &[Request],
    bucket: usize,
) -> Result<Vec<Tensor>, ServeError> {
    let mut batched = Vec::with_capacity(inner.template_descs.len());
    for i in 0..inner.template_descs.len() {
        let parts: Vec<&Tensor> = reqs.iter().map(|r| &r.inputs[i]).collect();
        batched.push(concat_rows(&parts, inner.unit_dims[i] * bucket)?);
    }
    Ok(batched)
}

/// Scatter batch-level outputs back per request: request r at unit
/// offset `off` owns rows [off * k_out, (off + r.units) * k_out) of
/// every output. `outs` hold `units_in_out` units along dim 0 (the
/// requests occupy the leading real units); `descs` carry the logical
/// output shapes (executed tensors may come back layout-flattened).
fn scatter_outputs(
    reqs: &[Request],
    outs: &[Tensor],
    descs: &[TensorDesc],
    units_in_out: usize,
    stats: &ExecStats,
) -> Result<Vec<(Vec<Tensor>, ExecStats)>, ServeError> {
    let mut per_req = Vec::with_capacity(reqs.len());
    let mut off = 0usize;
    for r in reqs {
        let mut req_outs = Vec::with_capacity(outs.len());
        for (o, out) in outs.iter().enumerate() {
            let desc = &descs[o];
            let vol = desc.volume();
            if !vol.is_multiple_of(units_in_out)
                || desc.shape().is_empty()
                || !desc.shape()[0].is_multiple_of(units_in_out)
            {
                return Err(ServeError::Exec(format!(
                    "output {o} ({desc}) does not scale with the batch"
                )));
            }
            let unit_vol = vol / units_in_out;
            let mut shape = desc.shape().to_vec();
            shape[0] = shape[0] / units_in_out * r.units;
            req_outs.push(slice_elems(
                out,
                off * unit_vol,
                r.units * unit_vol,
                TensorDesc::new(shape, desc.dtype()),
            )?);
        }
        per_req.push((req_outs, stats.clone()));
        off += r.units;
    }
    Ok(per_req)
}

/// Coalesce `reqs` into one padded bucket execution and scatter the
/// outputs back per request. Every request gets the same base
/// [`ExecStats`] with `batch_rows` set; `queue_wait` is the caller's
/// business. Sharded models route through the fleet instead (see
/// [`execute_sharded`]).
fn execute_bucket(
    inner: &ModelInner,
    reqs: &[Request],
) -> Result<Vec<(Vec<Tensor>, ExecStats)>, ServeError> {
    if let Some(rt) = &inner.shards {
        return execute_sharded(inner, rt, reqs);
    }
    let total_units: usize = reqs.iter().map(|r| r.units).sum();
    let bucket = total_units.next_power_of_two();
    let plan = plan_for_units(inner, bucket)?;
    let batched = gather_inputs(inner, reqs, bucket)?;

    inner.inflight.fetch_add(1, Ordering::SeqCst);
    let result = plan.exe.execute(&batched);
    inner.inflight.fetch_sub(1, Ordering::SeqCst);
    let (outs, mut stats) = result?;
    stats.batch_rows = (inner.unit_dims[0] * bucket) as u64;

    inner.stats.record_batch(
        bucket as u64,
        reqs.len() as u64,
        total_units as u64,
        (bucket - total_units) as u64,
    );
    scatter_outputs(reqs, &outs, &plan.output_descs, bucket, &stats)
}

/// Sharded execution: route the batch per the fleet's [`ShardPlan`] —
/// whole to one shard (small batches), or scattered into contiguous
/// unit ranges that execute concurrently and fuse back into one batch.
fn execute_sharded(
    inner: &ModelInner,
    rt: &ShardRuntime,
    reqs: &[Request],
) -> Result<Vec<(Vec<Tensor>, ExecStats)>, ServeError> {
    let total_units: usize = reqs.iter().map(|r| r.units).sum();
    match rt.plan(total_units) {
        ShardPlan::Single(sid) => execute_on_shard(inner, rt, sid, reqs, total_units),
        ShardPlan::Scatter(parts) => execute_scattered(inner, rt, parts, reqs, total_units),
    }
}

/// Whole-batch routing: identical to the serial path, except the
/// execution happens on one shard's engine (its executor thread and
/// pool, under its ISA/pinning setup).
fn execute_on_shard(
    inner: &ModelInner,
    rt: &ShardRuntime,
    sid: usize,
    reqs: &[Request],
    total_units: usize,
) -> Result<Vec<(Vec<Tensor>, ExecStats)>, ServeError> {
    let fuse_t0 = Instant::now();
    let bucket = total_units.next_power_of_two();
    let plan = plan_for_shard(inner, rt, sid, bucket)?;
    let batched = gather_inputs(inner, reqs, bucket)?;
    let fuse = fuse_t0.elapsed();

    inner.inflight.fetch_add(1, Ordering::SeqCst);
    let exe = Arc::clone(&plan.exe);
    let job = rt.shards[sid].run(move || {
        let t0 = Instant::now();
        (exe.execute(&batched), t0.elapsed())
    });
    let waited = job.wait();
    inner.inflight.fetch_sub(1, Ordering::SeqCst);
    let (result, wall) = waited?;
    let (outs, mut stats) = result?;
    rt.shards[sid]
        .stats()
        .record_exec(total_units as u64, bucket as u64, wall);
    stats.batch_rows = (inner.unit_dims[0] * bucket) as u64;

    inner.stats.record_batch(
        bucket as u64,
        reqs.len() as u64,
        total_units as u64,
        (bucket - total_units) as u64,
    );
    inner.stats.record_scatter(1, fuse);
    scatter_outputs(reqs, &outs, &plan.output_descs, bucket, &stats)
}

/// One shard's share of a scattered batch, after execution.
struct Partial {
    units: std::ops::Range<usize>,
    bucket: usize,
    plan: Arc<CachedPlan>,
    outs: Vec<Tensor>,
    stats: ExecStats,
}

/// Scatter-execute-fuse: gather the batch once (unpadded), slice each
/// shard's contiguous unit range and pad it to the shard's own
/// power-of-two bucket, execute all shards concurrently, then fuse the
/// partial outputs (padding dropped) back into one `total_units`-unit
/// batch for the ordinary per-request scatter.
fn execute_scattered(
    inner: &ModelInner,
    rt: &ShardRuntime,
    parts: Vec<(usize, std::ops::Range<usize>)>,
    reqs: &[Request],
    total_units: usize,
) -> Result<Vec<(Vec<Tensor>, ExecStats)>, ServeError> {
    let fuse_t0 = Instant::now();
    let full = gather_inputs(inner, reqs, total_units)?;
    let mut prepared = Vec::with_capacity(parts.len());
    for (sid, r) in parts {
        let bucket = r.len().next_power_of_two();
        let plan = plan_for_shard(inner, rt, sid, bucket)?;
        let mut sub = Vec::with_capacity(full.len());
        for (i, f) in full.iter().enumerate() {
            let k = inner.unit_dims[i];
            let unit_vol = f.desc().volume() / total_units;
            let mut shape = f.desc().shape().to_vec();
            shape[0] = k * r.len();
            let slice = slice_elems(
                f,
                r.start * unit_vol,
                r.len() * unit_vol,
                TensorDesc::new(shape, f.desc().dtype()),
            )?;
            sub.push(concat_rows(&[&slice], k * bucket)?);
        }
        prepared.push((sid, r, bucket, plan, sub));
    }
    let fuse_partition = fuse_t0.elapsed();

    inner.inflight.fetch_add(1, Ordering::SeqCst);
    let jobs: Vec<_> = prepared
        .into_iter()
        .map(|(sid, r, bucket, plan, sub)| {
            let exe = Arc::clone(&plan.exe);
            let job = rt.shards[sid].run(move || {
                let t0 = Instant::now();
                (exe.execute(&sub), t0.elapsed())
            });
            (sid, r, bucket, plan, job)
        })
        .collect();
    // Wait for *every* shard before failing: abandoning a live job
    // would let its pool race the next batch on the same shard.
    let mut partials: Vec<Partial> = Vec::with_capacity(jobs.len());
    let mut first_err: Option<ServeError> = None;
    for (sid, r, bucket, plan, job) in jobs {
        match job.wait() {
            Ok((Ok((outs, stats)), wall)) => {
                rt.shards[sid]
                    .stats()
                    .record_exec(r.len() as u64, bucket as u64, wall);
                partials.push(Partial {
                    units: r,
                    bucket,
                    plan,
                    outs,
                    stats,
                });
            }
            Ok((Err(e), _)) => {
                first_err.get_or_insert(e.into());
            }
            Err(e) => {
                first_err.get_or_insert(e);
            }
        }
    }
    inner.inflight.fetch_sub(1, Ordering::SeqCst);
    if let Some(e) = first_err {
        return Err(e);
    }

    // Fuse: per output, drop each shard's padding units and concatenate
    // the real ranges back — they are contiguous and in unit order, so
    // the result is exactly the unpadded batch output.
    let fuse_t1 = Instant::now();
    let n_outs = partials[0].outs.len();
    let mut fused = Vec::with_capacity(n_outs);
    for o in 0..n_outs {
        let mut slices = Vec::with_capacity(partials.len());
        for p in &partials {
            let desc = &p.plan.output_descs[o];
            let vol = desc.volume();
            if vol % p.bucket != 0 || desc.shape().is_empty() || desc.shape()[0] % p.bucket != 0 {
                return Err(ServeError::Exec(format!(
                    "output {o} ({desc}) does not scale with the batch"
                )));
            }
            let unit_vol = vol / p.bucket;
            let mut shape = desc.shape().to_vec();
            shape[0] = shape[0] / p.bucket * p.units.len();
            slices.push(slice_elems(
                &p.outs[o],
                0,
                p.units.len() * unit_vol,
                TensorDesc::new(shape, desc.dtype()),
            )?);
        }
        let rows: usize = slices.iter().map(|s| s.desc().shape()[0]).sum();
        let refs: Vec<&Tensor> = slices.iter().collect();
        fused.push(concat_rows(&refs, rows)?);
    }
    let fuse = fuse_partition + fuse_t1.elapsed();

    // Base request stats: shard 0's execution, with batch_rows covering
    // what the whole fleet executed (per-shard padding included).
    let mut stats = partials[0].stats.clone();
    stats.batch_rows = partials
        .iter()
        .map(|p| (inner.unit_dims[0] * p.bucket) as u64)
        .sum();
    let padded_total: usize = partials.iter().map(|p| p.bucket - p.units.len()).sum();
    // Bucket key = what a single engine would have used; the padding
    // reflects what the shards actually executed.
    inner.stats.record_batch(
        total_units.next_power_of_two() as u64,
        reqs.len() as u64,
        total_units as u64,
        padded_total as u64,
    );
    inner.stats.record_scatter(partials.len(), fuse);
    let fused_descs: Vec<TensorDesc> = fused.iter().map(|t| t.desc().clone()).collect();
    scatter_outputs(reqs, &fused, &fused_descs, total_units, &stats)
}

/// Run one drained batch and fan results (or the shared error) out to
/// every waiter. Panic-safe: if the executor unwinds, every waiter is
/// failed on the way out instead of blocking forever.
fn run_batch(inner: &ModelInner, batch: Vec<Pending>) {
    let started = Instant::now();
    let mut guard = FanoutGuard {
        slots: batch.iter().map(|p| Arc::clone(&p.slot)).collect(),
        armed: true,
    };
    let reqs: Vec<Request> = batch
        .iter()
        .map(|p| Request {
            inputs: p.req.inputs.clone(),
            units: p.req.units,
        })
        .collect();
    match execute_bucket(inner, &reqs) {
        Ok(results) => {
            for (p, (outs, mut stats)) in batch.into_iter().zip(results) {
                stats.queue_wait = started.duration_since(p.enqueued_at);
                p.slot.put(Ok((outs, stats)));
            }
        }
        Err(e) => {
            for p in batch {
                p.slot.put(Err(e.clone()));
            }
        }
    }
    guard.armed = false;
}

fn dispatcher_loop(inner: &ModelInner) {
    let mut q = inner.queue.lock().unwrap();
    loop {
        if q.pending.is_empty() {
            if q.closed {
                return;
            }
            q = inner.cv.wait(q).unwrap();
            continue;
        }
        // Hold the oldest request open for coalescing until the batch
        // fills or its delay budget runs out (skip the wait entirely
        // when draining after shutdown).
        let deadline = q.pending.front().unwrap().enqueued_at + inner.config.max_delay;
        while !q.closed {
            let units: usize = q.pending.iter().map(|p| p.req.units).sum();
            if units >= inner.config.max_batch {
                break;
            }
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            q = inner.cv.wait_timeout(q, deadline - now).unwrap().0;
        }
        // Drain whole requests up to the unit cap; an oversized first
        // request still goes out (alone).
        let mut batch: Vec<Pending> = Vec::new();
        let mut units = 0usize;
        while let Some(p) = q.pending.front() {
            if !batch.is_empty() && units + p.req.units > inner.config.max_batch {
                break;
            }
            units += p.req.units;
            batch.push(q.pending.pop_front().expect("front exists"));
            if units >= inner.config.max_batch {
                break;
            }
        }
        inner.stats.dequeued(batch.len() as u64);
        drop(q);
        run_batch(inner, batch);
        q = inner.queue.lock().unwrap();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gc_graph::{OpKind, UnaryKind};
    use gc_tensor::DataType;

    fn mlp_graph(batch: usize, seed: u64) -> Graph {
        let mut g = Graph::new();
        let x = g.add_input(TensorDesc::new([batch, 16], DataType::F32), "x");
        let w1 = g.add_constant(Tensor::random(&[16, 32], DataType::F32, seed), "w1");
        let h = g.add_op(OpKind::MatMul, &[x, w1]).unwrap();
        let h = g.add_op(OpKind::Unary(UnaryKind::Relu), &[h]).unwrap();
        let w2 = g.add_constant(Tensor::random(&[32, 8], DataType::F32, seed + 1), "w2");
        let y = g.add_op(OpKind::MatMul, &[h, w2]).unwrap();
        g.mark_output(y);
        g
    }

    fn config_with_private_caches(threads: usize) -> ServeConfig {
        ServeConfig {
            compile: CompileOptions {
                threads: Some(threads),
                ..CompileOptions::default()
            },
            plan_cache: Some(Arc::new(PlanCache::new())),
            init_cache: Some(Arc::new(InitCache::new())),
            ..ServeConfig::default()
        }
    }

    #[test]
    fn fast_path_inference_works() {
        let model = Model::load(mlp_graph(4, 1), config_with_private_caches(1)).unwrap();
        let s = model.session();
        let x = Tensor::random(&[4, 16], DataType::F32, 9);
        let (outs, stats) = s.infer_with_stats(&[x]).unwrap();
        assert_eq!(outs[0].desc().shape(), &[4, 8]);
        assert_eq!(stats.queue_wait, Duration::ZERO);
        // template_units defaults to 4 (one unit = one row), so a
        // 4-row request is 4 units in a 4-unit bucket: 4 rows.
        assert_eq!(stats.batch_rows, 4);
        let snap = model.stats();
        assert_eq!(snap.requests, 1);
        assert_eq!(snap.fast_path, 1);
    }

    #[test]
    fn options_fingerprint_sees_every_knob() {
        use gc_core::TuningDb;
        use gc_lowering::anchors::{PackPlacement, PostOpAnchor};
        use gc_machine::MachineDescriptor;

        let base = CompileOptions::default();
        let fp = options_fingerprint(&base);
        // Every public knob, toggled one at a time, must move the
        // fingerprint — with the two deliberate exceptions asserted at
        // the bottom. A knob missing here is a knob someone added to
        // CompileOptions: extend both this list and (by the compile
        // error it just produced) options_fingerprint itself.
        let variants: Vec<(&str, CompileOptions)> = vec![
            (
                "machine",
                CompileOptions {
                    machine: MachineDescriptor::small_generic(),
                    ..base.clone()
                },
            ),
            (
                "fusion",
                CompileOptions {
                    fusion: gc_graph::FusionOptions::disabled(),
                    ..base.clone()
                },
            ),
            (
                "coarse_fusion",
                CompileOptions {
                    coarse_fusion: false,
                    ..base.clone()
                },
            ),
            (
                "low_precision",
                CompileOptions {
                    low_precision: false,
                    ..base.clone()
                },
            ),
            (
                "constant_weights",
                CompileOptions {
                    constant_weights: false,
                    ..base.clone()
                },
            ),
            (
                "propagate_layouts",
                CompileOptions {
                    propagate_layouts: false,
                    ..base.clone()
                },
            ),
            (
                "shrink_tensors",
                CompileOptions {
                    shrink_tensors: false,
                    ..base.clone()
                },
            ),
            (
                "reuse_buffers",
                CompileOptions {
                    reuse_buffers: false,
                    ..base.clone()
                },
            ),
            (
                "reuse_locals",
                CompileOptions {
                    reuse_locals: false,
                    ..base.clone()
                },
            ),
            (
                "forced_post_anchor",
                CompileOptions {
                    forced_post_anchor: Some(PostOpAnchor::P2),
                    ..base.clone()
                },
            ),
            (
                "forced_pack",
                CompileOptions {
                    forced_pack: Some(PackPlacement::PerTask),
                    ..base.clone()
                },
            ),
            (
                "library_params",
                CompileOptions {
                    library_params: true,
                    ..base.clone()
                },
            ),
            (
                "k_slice",
                CompileOptions {
                    k_slice: false,
                    ..base.clone()
                },
            ),
            (
                "interpret",
                CompileOptions {
                    interpret: true,
                    ..base.clone()
                },
            ),
            (
                "validate",
                CompileOptions {
                    validate: false,
                    ..base.clone()
                },
            ),
            (
                "checked",
                CompileOptions {
                    checked: true,
                    ..base.clone()
                },
            ),
            (
                "ragged",
                CompileOptions {
                    ragged: false,
                    ..base.clone()
                },
            ),
            (
                "tuning",
                CompileOptions {
                    tuning: Some(Arc::new(TuningDb::in_memory())),
                    ..base.clone()
                },
            ),
        ];
        for (name, v) in &variants {
            assert_ne!(
                options_fingerprint(v),
                fp,
                "toggling {name} must change the options fingerprint"
            );
        }
        // Two tuning databases with *different contents* must not alias.
        let db = Arc::new(TuningDb::in_memory());
        db.insert(
            gc_core::TuneKey {
                graph: 1,
                shape_bucket: 2,
                machine: 3,
                threads: 0,
            },
            gc_core::TunedRecord {
                choices: vec![],
                merge_coarse: None,
                ragged: None,
                projected_cycles: 1.0,
                wall_ns: 1,
            },
        );
        assert_ne!(
            options_fingerprint(&CompileOptions {
                tuning: Some(db),
                ..base.clone()
            }),
            options_fingerprint(&CompileOptions {
                tuning: Some(Arc::new(TuningDb::in_memory())),
                ..base.clone()
            }),
        );
        // Deliberate exceptions: the pool width is part of the plan key
        // itself, and the decision log is pure observability.
        assert_eq!(
            options_fingerprint(&CompileOptions {
                threads: Some(7),
                ..base.clone()
            }),
            fp
        );
        assert_eq!(
            options_fingerprint(&CompileOptions {
                param_log: Some(Arc::new(std::sync::Mutex::new(Vec::new()))),
                ..base.clone()
            }),
            fp
        );
    }

    #[test]
    fn checked_serving_bitmatches_and_gets_own_plan_cache_entry() {
        let cfg = config_with_private_caches(1);
        let checked_cfg = cfg.clone().checked();
        assert_ne!(
            options_fingerprint(&cfg.compile),
            options_fingerprint(&checked_cfg.compile),
            "checked mode must key its own plan-cache entries"
        );
        let plain = Model::load(mlp_graph(4, 1), cfg).unwrap();
        let checked = Model::load(mlp_graph(4, 1), checked_cfg).unwrap();
        let x = Tensor::random(&[4, 16], DataType::F32, 9);
        let a = plain.session().infer(std::slice::from_ref(&x)).unwrap();
        let b = checked.session().infer(&[x]).unwrap();
        assert_eq!(a[0].f32_slice().unwrap(), b[0].f32_slice().unwrap());
    }

    #[test]
    fn k_slice_knob_keys_its_own_plan_cache_entry() {
        let cfg = config_with_private_caches(1);
        let mut unsliced_cfg = cfg.clone();
        unsliced_cfg.compile.k_slice = false;
        assert_ne!(
            options_fingerprint(&cfg.compile),
            options_fingerprint(&unsliced_cfg.compile),
            "toggling k_slice must never alias cached plans"
        );
    }

    #[test]
    fn two_models_same_graph_share_executables_and_folds() {
        let mut cfg = config_with_private_caches(1);
        cfg.template_units = Some(1);
        let m1 = Model::load(mlp_graph(4, 2), cfg.clone()).unwrap();
        let m2 = Model::load(mlp_graph(4, 2), cfg.clone()).unwrap();
        assert_eq!(m1.graph_hash(), m2.graph_hash());
        let e1 = m1.executable_for_units(4).unwrap();
        let e2 = m2.executable_for_units(4).unwrap();
        assert!(Arc::ptr_eq(&e1, &e2));

        // Run both models once: one init, total, across both sessions.
        let x = Tensor::random(&[4, 16], DataType::F32, 5);
        let a = m1.session().infer(std::slice::from_ref(&x)).unwrap();
        let b = m2.session().infer(&[x]).unwrap();
        assert_eq!(a[0].f32_slice().unwrap(), b[0].f32_slice().unwrap());
        let ic = cfg.init_cache.as_ref().unwrap();
        assert_eq!(ic.compute_count(), 1);
    }

    #[test]
    fn different_weights_do_not_share() {
        let cfg = config_with_private_caches(1);
        let m1 = Model::load(mlp_graph(4, 3), cfg.clone()).unwrap();
        let m2 = Model::load(mlp_graph(4, 4), cfg).unwrap();
        assert_ne!(m1.graph_hash(), m2.graph_hash());
        let e1 = m1.executable_for_units(4).unwrap();
        let e2 = m2.executable_for_units(4).unwrap();
        assert!(!Arc::ptr_eq(&e1, &e2));
    }

    #[test]
    fn batched_requests_complete_and_coalesce() {
        let mut cfg = config_with_private_caches(2);
        cfg.template_units = Some(1);
        cfg.max_delay = Duration::from_millis(5);
        let model = Model::load(mlp_graph(1, 5), cfg).unwrap();
        let mut handles = Vec::new();
        for t in 0..8 {
            let s = model.session();
            handles.push(std::thread::spawn(move || {
                let x = Tensor::random(&[1, 16], DataType::F32, 100 + t);
                (x.clone(), s.infer(&[x]).unwrap())
            }));
        }
        // Serial reference through a fresh single-request model.
        let reference = Model::load(mlp_graph(1, 5), config_with_private_caches(2)).unwrap();
        let rs = reference.session();
        for h in handles {
            let (x, outs) = h.join().unwrap();
            let want = rs.infer(&[x]).unwrap();
            let got = outs[0].f32_slice().unwrap();
            let exp = want[0].f32_slice().unwrap();
            for (g, e) in got.iter().zip(exp) {
                assert!((g - e).abs() <= 1e-5, "batched {g} vs serial {e}");
            }
        }
        let snap = model.stats();
        assert_eq!(snap.requests, 8);
        assert_eq!(snap.queue_depth, 0);
    }

    #[test]
    fn busy_when_queue_full() {
        // Stuff the queue to capacity behind the dispatcher's back (a
        // long coalescing window keeps it from draining even if it
        // wakes), then watch the next request bounce with Busy.
        let mut cfg = config_with_private_caches(1);
        cfg.template_units = Some(1);
        cfg.queue_cap = 2;
        cfg.max_delay = Duration::from_secs(10);
        cfg.max_batch = 64;
        let model = Model::load(mlp_graph(1, 6), cfg).unwrap();
        let s = model.session();
        {
            let mut q = model.inner.queue.lock().unwrap();
            for seed in 0..2 {
                q.pending.push_back(Pending {
                    req: Request {
                        inputs: vec![Tensor::random(&[1, 16], DataType::F32, seed)],
                        units: 1,
                    },
                    slot: Slot::new(),
                    enqueued_at: Instant::now(),
                });
                model.inner.stats.enqueued();
            }
        }
        let x = Tensor::random(&[1, 16], DataType::F32, 9);
        match s.infer(&[x]) {
            Err(ServeError::Busy { queued, cap }) => assert_eq!((queued, cap), (2, 2)),
            other => panic!("expected Busy, got {other:?}"),
        }
        assert_eq!(model.stats().busy_rejections, 1);
        // Shutdown drains the stuffed requests and joins cleanly.
        model.shutdown();
        assert_eq!(model.stats().queue_depth, 0);
    }

    #[test]
    fn shutdown_then_closed() {
        let mut cfg = config_with_private_caches(1);
        cfg.template_units = Some(2);
        let model = Model::load(mlp_graph(2, 7), cfg).unwrap();
        let s = model.session();
        model.shutdown();
        model.shutdown(); // idempotent
        let x = Tensor::random(&[2, 16], DataType::F32, 3);
        assert!(matches!(s.infer(&[x]), Err(ServeError::Closed)));
    }

    #[test]
    fn invalid_requests_rejected() {
        let model = Model::load(mlp_graph(4, 8), config_with_private_caches(1)).unwrap();
        let s = model.session();
        // wrong trailing dim
        let bad = Tensor::random(&[4, 8], DataType::F32, 1);
        assert!(matches!(
            s.infer(&[bad]),
            Err(ServeError::InvalidRequest(_))
        ));
        // wrong input count
        assert!(matches!(s.infer(&[]), Err(ServeError::InvalidRequest(_))));
        // leading dim not a multiple of k0 = 4 (template_units defaults
        // to input 0's leading dim... which makes k0 = 1, so use a
        // model with explicit coarser units)
        let mut cfg = config_with_private_caches(1);
        cfg.template_units = Some(2); // k0 = 2
        let model2 = Model::load(mlp_graph(4, 8), cfg).unwrap();
        let odd = Tensor::random(&[3, 16], DataType::F32, 1);
        assert!(matches!(
            model2.session().infer(&[odd]),
            Err(ServeError::InvalidRequest(_))
        ));
    }

    #[test]
    fn fast_path_can_be_disabled() {
        let mut cfg = config_with_private_caches(1);
        cfg.template_units = Some(1);
        cfg.fast_path = false;
        cfg.max_delay = Duration::from_micros(50);
        let model = Model::load(mlp_graph(1, 12), cfg).unwrap();
        let s = model.session();
        let x = Tensor::random(&[1, 16], DataType::F32, 4);
        let outs = s.infer(&[x]).unwrap();
        assert_eq!(outs[0].desc().shape(), &[1, 8]);
        let snap = model.stats();
        assert_eq!(snap.fast_path, 0); // went through the dispatcher
        assert_eq!(snap.requests, 1);
    }

    #[test]
    fn panicked_batch_fails_waiters_instead_of_hanging() {
        let slot = Slot::new();
        let s2 = Arc::clone(&slot);
        let h = std::thread::spawn(move || {
            let _guard = FanoutGuard {
                slots: vec![s2],
                armed: true,
            };
            panic!("executor blew up");
        });
        assert!(h.join().is_err());
        assert!(matches!(slot.take(), Err(ServeError::Exec(_))));
    }

    #[test]
    fn dispatcher_exit_fails_stranded_requests() {
        // Simulate a dispatcher death with a request still queued: the
        // exit guard must close the model and fail the waiter.
        let mut cfg = config_with_private_caches(1);
        cfg.template_units = Some(1);
        let model = Model::load(mlp_graph(1, 21), cfg).unwrap();
        model.shutdown();
        let slot = Slot::new();
        {
            let mut q = model.inner.queue.lock().unwrap();
            q.pending.push_back(Pending {
                req: Request {
                    inputs: vec![Tensor::random(&[1, 16], DataType::F32, 1)],
                    units: 1,
                },
                slot: Arc::clone(&slot),
                enqueued_at: Instant::now(),
            });
        }
        drop(DispatcherExitGuard(Arc::clone(&model.inner)));
        assert!(matches!(slot.take(), Err(ServeError::Closed)));
        assert!(model.inner.queue.lock().unwrap().pending.is_empty());
        let s = model.session();
        let x = Tensor::random(&[1, 16], DataType::F32, 2);
        assert!(matches!(s.infer(&[x]), Err(ServeError::Closed)));
    }

    #[test]
    fn oversized_request_executes_alone() {
        let mut cfg = config_with_private_caches(1);
        cfg.template_units = Some(1);
        cfg.max_batch = 4;
        let model = Model::load(mlp_graph(1, 9), cfg).unwrap();
        let s = model.session();
        let x = Tensor::random(&[16, 16], DataType::F32, 11);
        let (outs, stats) = s.infer_with_stats(&[x]).unwrap();
        assert_eq!(outs[0].desc().shape(), &[16, 8]);
        assert_eq!(stats.batch_rows, 16);
    }
}
