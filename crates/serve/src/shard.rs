//! Engine shards: scatter-execute-fuse serving across independent
//! engines in one process.
//!
//! One [`EngineShard`] bundles a private [`gc_tir::Engine`] (its own
//! [`ThreadPool`] and exec-state checkout pool), an optional pinned
//! core range, an optional per-thread kernel-backend override
//! (heterogeneous shards mix ISAs in one process via
//! `gc_microkernel::arch::set_thread_isa`), and a dedicated executor
//! thread that runs submitted jobs with panic isolation: a job that
//! unwinds fails only its own waiter — the shard keeps serving.
//!
//! A [`ShardPlan`] decides how a batch meets the shards: large batches
//! are *scattered* — split into contiguous unit ranges, one per shard,
//! executed concurrently, then *fused* (partial outputs merged back
//! into one batch, per-shard counters folded into the model's
//! [`crate::StatsSnapshot`]); small batches are routed whole to one
//! shard round-robin, which is also how several models share a shard
//! fleet. The full lifecycle and the shard-count decision table are in
//! DESIGN.md, section "Sharded execution".

use crate::stats::ShardStats;
use crate::ServeError;
use gc_microkernel::arch;
use gc_microkernel::Isa;
use gc_runtime::{affinity, ThreadPool, WorkerSetup};
use gc_tir::Engine;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;

/// How many real units a shard must receive, at minimum, before a
/// batch is worth scattering (below `shards × this`, the whole batch is
/// routed to a single shard). Overridable via
/// [`ShardConfig::min_units_per_shard`].
pub const DEFAULT_MIN_UNITS_PER_SHARD: usize = 4;

/// Spec for one engine shard.
#[derive(Debug, Clone, Default)]
pub struct ShardSpec {
    /// Pool width; `0` = an even share of the model's thread budget.
    pub threads: usize,
    /// Kernel-backend override for every thread of this shard; `None`
    /// dispatches on the process-wide active backend. Must be
    /// supported by the CPU ([`Isa::supported`]) or load fails.
    pub isa: Option<Isa>,
    /// Core range to pin this shard's threads to (best-effort; see
    /// [`gc_runtime::affinity`]). `None` = unpinned.
    pub cores: Option<Range<usize>>,
}

/// Sharding layout for [`crate::ServeConfig::sharding`].
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// One spec per shard, in shard-id order. Must be non-empty.
    pub shards: Vec<ShardSpec>,
    /// Scatter threshold; see [`DEFAULT_MIN_UNITS_PER_SHARD`].
    pub min_units_per_shard: usize,
}

impl ShardConfig {
    /// `n` identical shards, each with an even share of the thread
    /// budget, no pinning, no ISA override.
    pub fn uniform(n: usize) -> ShardConfig {
        ShardConfig {
            shards: vec![ShardSpec::default(); n],
            min_units_per_shard: DEFAULT_MIN_UNITS_PER_SHARD,
        }
    }
}

type Job = Box<dyn FnOnce() + Send>;

/// One engine shard: a private engine (pool + exec-state checkout
/// pool + counters) behind a dedicated executor thread.
///
/// Jobs submitted through [`EngineShard::run`] execute on the executor
/// thread, which participates in the shard pool's parallel loops
/// (caller-runs model) — so it receives the same per-thread setup as
/// the pool's workers: the ISA override and the core pin. Different
/// shards run concurrently; jobs on one shard run in submission order.
pub struct EngineShard {
    id: usize,
    isa: Option<Isa>,
    engine: Engine,
    stats: Arc<ShardStats>,
    tx: Option<mpsc::Sender<Job>>,
    executor: Option<JoinHandle<()>>,
}

impl EngineShard {
    /// Spawn a shard from `spec`. `default_threads` is the pool width
    /// used when `spec.threads == 0` (an even share of the model's
    /// budget).
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidModel`] if the spec requests an ISA the CPU
    /// does not support, zero threads with a zero default, or an
    /// empty/out-of-range core range.
    pub fn new(
        id: usize,
        spec: &ShardSpec,
        default_threads: usize,
    ) -> Result<EngineShard, ServeError> {
        let threads = if spec.threads > 0 {
            spec.threads
        } else {
            default_threads
        };
        if threads == 0 {
            return Err(ServeError::InvalidModel(format!(
                "shard {id}: zero threads"
            )));
        }
        if let Some(isa) = spec.isa {
            if !isa.supported() {
                return Err(ServeError::InvalidModel(format!(
                    "shard {id}: ISA {} not supported on this CPU (detected {})",
                    isa.name(),
                    arch::detected_isa().name()
                )));
            }
        }
        if let Some(c) = &spec.cores {
            if c.is_empty() || c.end > affinity::MAX_PINNABLE_CORE + 1 {
                return Err(ServeError::InvalidModel(format!(
                    "shard {id}: invalid core range {c:?}"
                )));
            }
        }
        let isa = spec.isa;
        let cores: Option<Vec<usize>> = spec.cores.clone().map(Iterator::collect);

        let setup_isa = isa;
        let setup_cores = cores.clone();
        let setup: WorkerSetup = Arc::new(move |_worker| {
            if let Some(i) = setup_isa {
                arch::set_thread_isa(Some(i));
            }
            if let Some(c) = &setup_cores {
                let _ = affinity::pin_current_thread(c);
            }
        });
        let pool = Arc::new(ThreadPool::with_worker_setup(threads, setup));
        let engine = Engine::new(Arc::clone(&pool));

        let (tx, rx) = mpsc::channel::<Job>();
        let (pin_tx, pin_rx) = mpsc::channel();
        let executor = std::thread::Builder::new()
            .name(format!("gc-shard-{id}"))
            .spawn(move || {
                // Same setup as the pool workers: the executor is the
                // caller-participant in every parallel loop it runs.
                if let Some(i) = isa {
                    arch::set_thread_isa(Some(i));
                }
                let pinned = cores.as_deref().is_some_and(affinity::pin_current_thread);
                let _ = pin_tx.send(pinned);
                for job in rx {
                    job();
                }
            })
            .expect("spawn shard executor");
        let pinned = pin_rx.recv().unwrap_or(false);
        let isa_name = isa.map_or_else(|| arch::active_isa().name(), Isa::name);
        let stats = Arc::new(ShardStats::new(id, threads, isa_name, pinned));
        Ok(EngineShard {
            id,
            isa,
            engine,
            stats,
            tx: Some(tx),
            executor: Some(executor),
        })
    }

    /// Shard index within its model.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Pool width.
    pub fn threads(&self) -> usize {
        self.engine.threads()
    }

    /// The ISA override, if any.
    pub fn isa(&self) -> Option<Isa> {
        self.isa
    }

    /// Name of the backend this shard's threads dispatch on.
    pub fn isa_name(&self) -> &'static str {
        self.isa
            .map_or_else(|| arch::active_isa().name(), Isa::name)
    }

    /// The shard's private thread pool (compile bucket plans against
    /// it).
    pub fn pool(&self) -> &Arc<ThreadPool> {
        self.engine.pool()
    }

    /// The shard's engine instance (attach its counters to compiled
    /// executables for per-shard [`gc_tir::EngineTotals`]).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// The shard's live serving counters.
    pub fn stats(&self) -> &Arc<ShardStats> {
        &self.stats
    }

    /// Submit `job` to the shard's executor; returns a handle to wait
    /// on. A panicking job fails only its own handle (recorded in the
    /// shard's panic counter) — the executor survives and later jobs
    /// run normally.
    pub fn run<T, F>(&self, job: F) -> ShardJob<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let (tx, rx) = mpsc::channel();
        let stats = Arc::clone(&self.stats);
        let id = self.id;
        let wrapped: Job = Box::new(move || {
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
            if result.is_err() {
                stats.record_panic();
            }
            let _ = tx.send(
                result.map_err(|_| ServeError::Exec(format!("job panicked on engine shard {id}"))),
            );
        });
        self.tx
            .as_ref()
            .expect("executor alive until drop")
            .send(wrapped)
            .expect("executor alive until drop");
        ShardJob { rx }
    }
}

impl Drop for EngineShard {
    fn drop(&mut self) {
        // Closing the channel ends the executor's job loop.
        drop(self.tx.take());
        if let Some(h) = self.executor.take() {
            let _ = h.join();
        }
    }
}

impl std::fmt::Debug for EngineShard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineShard")
            .field("id", &self.id)
            .field("threads", &self.threads())
            .field("isa", &self.isa_name())
            .finish_non_exhaustive()
    }
}

/// Handle to one job submitted via [`EngineShard::run`].
#[derive(Debug)]
pub struct ShardJob<T> {
    rx: mpsc::Receiver<Result<T, ServeError>>,
}

impl<T> ShardJob<T> {
    /// Block until the job finishes.
    ///
    /// # Errors
    ///
    /// [`ServeError::Exec`] if the job panicked (or the executor is
    /// gone).
    pub fn wait(self) -> Result<T, ServeError> {
        self.rx
            .recv()
            .unwrap_or_else(|_| Err(ServeError::Exec("engine shard executor is gone".into())))
    }
}

/// How one batch of `total_units` meets the shard fleet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardPlan {
    /// Route the whole batch to this shard (too small to scatter).
    Single(usize),
    /// Scatter: contiguous unit ranges `(shard id, units)`, covering
    /// `0..total_units` in order, one entry per shard.
    Scatter(Vec<(usize, Range<usize>)>),
}

impl ShardPlan {
    /// Partition `total_units` across `shards` shards.
    ///
    /// Batches under `shards × min_units_per_shard` units are routed
    /// whole to shard `route % shards` (callers pass a round-robin
    /// counter, which is also the multi-model placement story: each
    /// small batch — possibly of a different model — lands on the next
    /// shard). Larger batches split into near-equal contiguous ranges,
    /// the remainder spread one unit each over the leading shards.
    ///
    /// # Panics
    ///
    /// If `shards == 0`.
    pub fn partition(
        total_units: usize,
        shards: usize,
        min_units_per_shard: usize,
        route: usize,
    ) -> ShardPlan {
        assert!(shards > 0, "partition over zero shards");
        if shards == 1 || total_units < shards * min_units_per_shard.max(1) {
            return ShardPlan::Single(route % shards);
        }
        let base = total_units / shards;
        let rem = total_units % shards;
        let mut parts = Vec::with_capacity(shards);
        let mut off = 0;
        for s in 0..shards {
            let len = base + usize::from(s < rem);
            parts.push((s, off..off + len));
            off += len;
        }
        ShardPlan::Scatter(parts)
    }
}

/// A model's shard fleet plus the routing state the batcher needs.
pub(crate) struct ShardRuntime {
    pub(crate) shards: Vec<EngineShard>,
    pub(crate) min_units_per_shard: usize,
    /// Per-shard `PlanKey::opts` component: the compile-options
    /// fingerprint under the shard's *effective* ISA, combined with the
    /// fleet topology hash (so shard count and layout key plans).
    pub(crate) opts_hash: Vec<u64>,
    rr: AtomicUsize,
}

impl ShardRuntime {
    pub(crate) fn new(
        shards: Vec<EngineShard>,
        min_units_per_shard: usize,
        opts_hash: Vec<u64>,
    ) -> ShardRuntime {
        debug_assert_eq!(shards.len(), opts_hash.len());
        ShardRuntime {
            shards,
            min_units_per_shard,
            opts_hash,
            rr: AtomicUsize::new(0),
        }
    }

    /// Plan the next batch, advancing the round-robin route.
    pub(crate) fn plan(&self, total_units: usize) -> ShardPlan {
        ShardPlan::partition(
            total_units,
            self.shards.len(),
            self.min_units_per_shard,
            self.rr.fetch_add(1, Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_splits_evenly_with_ragged_remainder() {
        match ShardPlan::partition(11, 4, 1, 0) {
            ShardPlan::Scatter(parts) => {
                assert_eq!(parts, vec![(0, 0..3), (1, 3..6), (2, 6..9), (3, 9..11)]);
            }
            other => panic!("expected scatter, got {other:?}"),
        }
    }

    #[test]
    fn small_batches_route_whole_round_robin() {
        // 6 units over 2 shards at min 4/shard: below the 8-unit
        // threshold, so the whole batch goes to route % shards.
        assert_eq!(ShardPlan::partition(6, 2, 4, 0), ShardPlan::Single(0));
        assert_eq!(ShardPlan::partition(6, 2, 4, 1), ShardPlan::Single(1));
        assert_eq!(ShardPlan::partition(6, 2, 4, 2), ShardPlan::Single(0));
        // At exactly shards × min, scattering kicks in.
        assert!(matches!(
            ShardPlan::partition(8, 2, 4, 0),
            ShardPlan::Scatter(_)
        ));
    }

    #[test]
    fn one_shard_always_routes_single() {
        assert_eq!(ShardPlan::partition(1 << 20, 1, 1, 7), ShardPlan::Single(0));
    }

    #[test]
    fn shard_runs_jobs_in_order_and_returns_values() {
        let shard = EngineShard::new(0, &ShardSpec::default(), 2).unwrap();
        let a = shard.run(|| 40 + 2);
        let b = shard.run(|| "done");
        assert_eq!(a.wait().unwrap(), 42);
        assert_eq!(b.wait().unwrap(), "done");
        assert_eq!(shard.threads(), 2);
    }

    #[test]
    fn panic_fails_only_its_own_job() {
        let shard = EngineShard::new(3, &ShardSpec::default(), 1).unwrap();
        let bad = shard.run(|| panic!("injected"));
        let good = shard.run(|| 7);
        let err = bad.wait().unwrap_err();
        assert!(
            matches!(&err, ServeError::Exec(m) if m.contains("shard 3")),
            "{err:?}"
        );
        // The shard survived: the next job runs normally and the panic
        // is on the books.
        assert_eq!(good.wait().unwrap(), 7);
        assert_eq!(shard.stats().panics(), 1);
    }

    #[test]
    fn isa_override_applies_on_executor_thread() {
        let shard = EngineShard::new(
            0,
            &ShardSpec {
                isa: Some(Isa::Scalar),
                ..ShardSpec::default()
            },
            1,
        )
        .unwrap();
        assert_eq!(shard.isa_name(), "scalar");
        let seen = shard.run(|| arch::active_isa().name()).wait().unwrap();
        assert_eq!(seen, "scalar");
        // The override is confined to the shard's threads.
        assert_eq!(arch::thread_isa(), None);
    }

    #[test]
    fn unsupported_spec_is_rejected_at_construction() {
        if Isa::Avx512.supported() {
            return; // can't name an unsupported ISA on this host
        }
        let err = EngineShard::new(
            0,
            &ShardSpec {
                isa: Some(Isa::Avx512),
                ..ShardSpec::default()
            },
            1,
        )
        .unwrap_err();
        assert!(matches!(err, ServeError::InvalidModel(_)));
    }

    #[test]
    fn zero_threads_rejected() {
        assert!(EngineShard::new(0, &ShardSpec::default(), 0).is_err());
    }
}
