//! KV-cache autoregressive decode serving with continuous batching.
//!
//! The [`crate::Model`] batcher coalesces whole *requests*; decode
//! workloads need something finer. An autoregressive session produces
//! one token per step against a growing per-session KV cache, so the
//! unit of batching is the *step*: every iteration, the scheduler
//! drains one pending step from each session that has one, groups them
//! by cache-capacity bucket, gathers the sessions' caches into one
//! batched tensor, executes a single compiled plan, and scatters each
//! session's output row back to its [`StepFuture`]. Sessions join and
//! leave between iterations — nothing is pinned to a batch.
//!
//! # Template contract
//!
//! A decode model is loaded from a *template builder*, a closure
//! `Fn(rows, cap) -> Graph` producing the per-step graph at a given
//! row count (`sessions x heads`) and cache capacity. The graph must
//! take exactly four inputs, in order:
//!
//! 1. `q    [rows, 1, head_dim]` — the step's query rows,
//! 2. `k_cache [rows, cap, head_dim]` — gathered K caches,
//! 3. `v_cache [rows, cap, head_dim]` — gathered V caches,
//! 4. `mask [rows, 1, cap]` f32 — per-row validity mask,
//!
//! and produce one output `[rows, 1, head_dim]`. The runtime owns the
//! mask: slot `j` gets `0.0` while `j` is below the session's length
//! and a large negative number past it, so one capacity bucket serves
//! every position below it. `gc_bench::workloads::decode_f32` /
//! `decode_int8` are the canonical builders.
//!
//! # Capacity buckets and plan identity
//!
//! Session caches live at power-of-two capacities from
//! [`DecodeConfig::min_capacity`] up to [`DecodeConfig::max_capacity`];
//! a cache doubles (zero-padded) when its length hits its capacity.
//! One compiled plan serves a whole `(capacity, session-slots)` bucket
//! through the masking, so plan count grows with the *log* of the
//! sequence length. Plans are compiled through the process-wide
//! [`PlanCache`] keyed by the built graph's canonical fingerprint, and
//! folded constants share the engine [`gc_tir::InitCache`] identity at
//! the same `(graph, bucket, options, threads)` granularity as the
//! request batcher — per bucket, because folded buffers are
//! bucket-shaped (see DESIGN.md on why cross-bucket fold sharing would
//! be unsound).

use crate::batch::copy_elems;
use crate::cache::{self, CachedPlan, PlanCache, PlanKey};
use crate::hash::{graph_fingerprint, Fnv1a};
use crate::stats::{ModelStats, StatsSnapshot};
use crate::ServeError;
use gc_core::{CompileOptions, Compiler};
use gc_graph::Graph;
use gc_runtime::ThreadPool;
use gc_tensor::{DataType, Storage, Tensor, TensorDesc};
use gc_tir::InitCache;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Mask value for cache slots at or past a session's length. Finite
/// (not `-inf`) so `exp(masked - max)` underflows to exactly `0.0`
/// without ever producing `inf - inf = NaN` in the softmax chain.
pub const MASKED: f32 = -1.0e30;

/// Configuration for [`DecodeModel::load`].
#[derive(Debug, Clone)]
pub struct DecodeConfig {
    /// Compiler options (machine, fusion switches, threads).
    pub compile: CompileOptions,
    /// Most decode steps (sessions) coalesced into one iteration.
    pub max_batch: usize,
    /// How long the scheduler holds the oldest pending step open for
    /// coalescing before executing what it has.
    pub max_delay: Duration,
    /// Smallest cache-capacity bucket (rounded up to a power of two).
    pub min_capacity: usize,
    /// Hard cap on session sequence length (rounded up to a power of
    /// two). A step past it fails with [`ServeError::InvalidRequest`].
    pub max_capacity: usize,
    /// Most concurrently live sessions; [`DecodeModel::session`] fails
    /// with [`ServeError::Busy`] at the bound.
    pub max_sessions: usize,
    /// Plan cache override (`None` = the process-wide cache).
    pub plan_cache: Option<Arc<PlanCache>>,
    /// Folded-constant cache override (`None` = the process-wide one).
    pub init_cache: Option<Arc<InitCache>>,
}

impl Default for DecodeConfig {
    fn default() -> Self {
        DecodeConfig {
            compile: CompileOptions::default(),
            max_batch: 64,
            max_delay: Duration::from_micros(500),
            min_capacity: 16,
            max_capacity: 1024,
            max_sessions: 4096,
            plan_cache: None,
            init_cache: None,
        }
    }
}

/// The per-step graph factory. `rows` is `sessions x heads`, `cap` the
/// cache capacity; see the module docs for the input contract.
pub type TemplateBuilder = dyn Fn(usize, usize) -> Graph + Send + Sync;

type StepResult = Result<Tensor, ServeError>;

/// The awaitable half of one decode step.
///
/// [`Session-decode_step`](DecodeSession::decode_step) returns
/// immediately with one of these; the caller can keep issuing work for
/// other sessions (that is what lets thousands of sessions stay in
/// flight) and [`StepFuture::wait`] when it needs the output row.
#[derive(Debug)]
pub struct StepFuture {
    slot: Arc<StepSlot>,
}

#[derive(Debug)]
struct StepSlot {
    state: Mutex<Option<StepResult>>,
    cv: Condvar,
}

impl StepSlot {
    fn new() -> Arc<StepSlot> {
        Arc::new(StepSlot {
            state: Mutex::new(None),
            cv: Condvar::new(),
        })
    }

    fn put(&self, r: StepResult) {
        *self.state.lock().unwrap() = Some(r);
        self.cv.notify_all();
    }
}

impl StepFuture {
    /// Block until the step completes; returns the attention output
    /// rows `[heads, 1, head_dim]`.
    ///
    /// # Errors
    ///
    /// Propagates the scheduler's error for the batch this step rode
    /// in ([`ServeError::Compile`], [`ServeError::Exec`]) or
    /// [`ServeError::Closed`] if the model shut down first.
    pub fn wait(self) -> StepResult {
        let mut s = self.slot.state.lock().unwrap();
        loop {
            if let Some(r) = s.take() {
                return r;
            }
            s = self.slot.cv.wait(s).unwrap();
        }
    }

    /// Non-blocking poll: `None` while the step is still in flight.
    pub fn try_wait(&self) -> Option<StepResult> {
        self.slot.state.lock().unwrap().take()
    }
}

/// One session's KV state. `k`/`v` are `[heads, cap, head_dim]` with
/// positions `len..` zeroed — the invariant that makes the functional
/// `kv_append` form and the in-place write below bit-identical.
struct SessionState {
    k: Tensor,
    v: Tensor,
    len: usize,
    cap: usize,
    /// A step is pending or executing; one in flight per session.
    busy: bool,
}

struct SessionShared {
    state: Mutex<SessionState>,
}

struct PendingStep {
    session: Arc<SessionShared>,
    q: Tensor,
    /// Valid length at execution time (set at enqueue, after append).
    len: usize,
    cap: usize,
    slot: Arc<StepSlot>,
}

struct DecodeQueue {
    pending: VecDeque<PendingStep>,
    closed: bool,
}

struct DecodeInner {
    builder: Box<TemplateBuilder>,
    config: DecodeConfig,
    heads: usize,
    head_dim: usize,
    q_dtype: DataType,
    kv_dtype: DataType,
    min_capacity: usize,
    max_capacity: usize,
    opts_hash: u64,
    pool: Arc<ThreadPool>,
    plan_cache: Arc<PlanCache>,
    init_cache: Arc<InitCache>,
    queue: Mutex<DecodeQueue>,
    cv: Condvar,
    live_sessions: AtomicUsize,
    stats: ModelStats,
}

/// A loaded autoregressive decode model: per-session KV caches, a
/// continuous-batching scheduler thread, and capacity-bucketed plan
/// compilation. Dropping the model (or [`DecodeModel::shutdown`])
/// drains pending steps, then later steps fail with
/// [`ServeError::Closed`].
pub struct DecodeModel {
    inner: Arc<DecodeInner>,
    scheduler: Mutex<Option<JoinHandle<()>>>,
}

/// One autoregressive session: owns a growing KV cache and submits one
/// decode step at a time. Dropping it frees its [`DecodeConfig`]
/// session slot; any in-flight step still completes (the scheduler
/// keeps the cache alive until the future resolves).
pub struct DecodeSession {
    inner: Arc<DecodeInner>,
    shared: Arc<SessionShared>,
}

/// Runs when the scheduler thread exits — normally or by panic: closes
/// the queue and fails every still-pending step.
struct SchedulerExitGuard(Arc<DecodeInner>);

impl Drop for SchedulerExitGuard {
    fn drop(&mut self) {
        let stranded = {
            let mut q = self
                .0
                .queue
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            q.closed = true;
            std::mem::take(&mut q.pending)
        };
        self.0.cv.notify_all();
        for p in stranded {
            p.session.state.lock().unwrap().busy = false;
            p.slot.put(Err(ServeError::Closed));
        }
    }
}

/// Fails every guarded step slot on drop unless disarmed (executor
/// panic inside an iteration must not strand waiters).
struct StepFanoutGuard {
    steps: Vec<(Arc<SessionShared>, Arc<StepSlot>)>,
    armed: bool,
}

impl Drop for StepFanoutGuard {
    fn drop(&mut self) {
        if self.armed {
            for (sess, slot) in &self.steps {
                sess.state.lock().unwrap().busy = false;
                slot.put(Err(ServeError::Exec(
                    "decode iteration panicked; step abandoned".into(),
                )));
            }
        }
    }
}

impl DecodeModel {
    /// Validate the template builder and start the scheduler.
    ///
    /// The builder is probed at the smallest bucket to pin the
    /// signature (dtypes, `heads`, `head_dim`) and verify the
    /// row-independence contract; the probe bucket's plan is compiled
    /// eagerly so load surfaces compile errors.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidModel`] when the built graph violates the
    /// decode contract, [`ServeError::Compile`] when the probe bucket
    /// fails to compile.
    pub fn load(
        builder: impl Fn(usize, usize) -> Graph + Send + Sync + 'static,
        heads: usize,
        config: DecodeConfig,
    ) -> Result<DecodeModel, ServeError> {
        if heads == 0 {
            return Err(ServeError::InvalidModel("heads must be > 0".into()));
        }
        if config.max_batch == 0 || config.max_sessions == 0 {
            return Err(ServeError::InvalidModel(
                "max_batch and max_sessions must be > 0".into(),
            ));
        }
        let min_capacity = config.min_capacity.max(1).next_power_of_two();
        let max_capacity = config.max_capacity.max(1).next_power_of_two();
        if min_capacity > max_capacity {
            return Err(ServeError::InvalidModel(format!(
                "min_capacity {min_capacity} exceeds max_capacity {max_capacity}"
            )));
        }
        let probe = builder(heads, min_capacity);
        let (q_dtype, kv_dtype, head_dim) = validate_decode_template(&probe, heads, min_capacity)?;
        let opts_hash = {
            let mut canon = config.compile.clone();
            canon.threads = None;
            let mut h = Fnv1a::new();
            h.write_str(&format!("{canon:?}"));
            h.finish()
        };
        let pool = cache::shared_pool(config.compile.threads.unwrap_or(0));
        let plan_cache = config.plan_cache.clone().unwrap_or_else(cache::plan_cache);
        let init_cache = config.init_cache.clone().unwrap_or_else(cache::init_cache);
        let inner = Arc::new(DecodeInner {
            builder: Box::new(builder),
            heads,
            head_dim,
            q_dtype,
            kv_dtype,
            min_capacity,
            max_capacity,
            opts_hash,
            pool,
            plan_cache,
            init_cache,
            config,
            queue: Mutex::new(DecodeQueue {
                pending: VecDeque::new(),
                closed: false,
            }),
            cv: Condvar::new(),
            live_sessions: AtomicUsize::new(0),
            stats: ModelStats::new(),
        });
        decode_plan(&inner, heads, min_capacity)?;
        let scheduler = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("gc-serve-decode".into())
                .spawn(move || {
                    let exit = SchedulerExitGuard(inner);
                    scheduler_loop(&exit.0);
                })
                .expect("spawn decode scheduler")
        };
        Ok(DecodeModel {
            inner,
            scheduler: Mutex::new(Some(scheduler)),
        })
    }

    /// Open a new session with an empty cache at the smallest capacity.
    ///
    /// # Errors
    ///
    /// [`ServeError::Busy`] at the [`DecodeConfig::max_sessions`]
    /// bound, [`ServeError::Closed`] after shutdown.
    pub fn session(&self) -> Result<DecodeSession, ServeError> {
        let inner = &self.inner;
        if inner.queue.lock().unwrap().closed {
            return Err(ServeError::Closed);
        }
        let mut live = inner.live_sessions.load(Ordering::Relaxed);
        loop {
            if live >= inner.config.max_sessions {
                return Err(ServeError::Busy {
                    queued: live,
                    cap: inner.config.max_sessions,
                });
            }
            match inner.live_sessions.compare_exchange(
                live,
                live + 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => live = seen,
            }
        }
        let cap = inner.min_capacity;
        let vol = inner.heads * cap * inner.head_dim;
        Ok(DecodeSession {
            inner: Arc::clone(inner),
            shared: Arc::new(SessionShared {
                state: Mutex::new(SessionState {
                    k: zero_cache(inner, cap, vol),
                    v: zero_cache(inner, cap, vol),
                    len: 0,
                    cap,
                    busy: false,
                }),
            }),
        })
    }

    /// Point-in-time statistics (decode buckets + occupancy included).
    pub fn stats(&self) -> StatsSnapshot {
        self.inner.stats.snapshot()
    }

    /// Sessions currently open.
    pub fn live_sessions(&self) -> usize {
        self.inner.live_sessions.load(Ordering::Relaxed)
    }

    /// Stop accepting steps, fail what's pending, join the scheduler.
    /// Idempotent; also runs on drop.
    pub fn shutdown(&self) {
        {
            let mut q = self.inner.queue.lock().unwrap();
            if q.closed {
                return;
            }
            q.closed = true;
        }
        self.inner.cv.notify_all();
        if let Some(h) = self.scheduler.lock().unwrap().take() {
            let _ = h.join();
        }
    }
}

impl Drop for DecodeModel {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for DecodeModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DecodeModel")
            .field("heads", &self.inner.heads)
            .field("head_dim", &self.inner.head_dim)
            .field("live_sessions", &self.live_sessions())
            .finish_non_exhaustive()
    }
}

fn zero_cache(inner: &DecodeInner, cap: usize, vol: usize) -> Tensor {
    Tensor::from_parts(
        TensorDesc::new([inner.heads, cap, inner.head_dim], inner.kv_dtype),
        Storage::zeros(inner.kv_dtype, vol),
    )
    .expect("zeroed cache tensor")
}

impl DecodeSession {
    /// Submit one decode step: append `k_row`/`v_row` (each
    /// `[heads, 1, head_dim]`) to this session's cache at the next
    /// position, then schedule masked attention of `q_row` against the
    /// cache. Returns immediately with a [`StepFuture`].
    ///
    /// The cache write happens *now*, in place, on the caller thread —
    /// position `len` of every head's `[cap, head_dim]` block is a
    /// plain row memcpy because positions `>= len` are zero by
    /// invariant. The cache doubles in place when full, up to
    /// [`DecodeConfig::max_capacity`].
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidRequest`] on a shape/dtype mismatch, a step
    /// already in flight for this session, or a session at max
    /// capacity; [`ServeError::Closed`] after shutdown.
    pub fn decode_step(
        &self,
        q_row: &Tensor,
        k_row: &Tensor,
        v_row: &Tensor,
    ) -> Result<StepFuture, ServeError> {
        let inner = &self.inner;
        let row_shape = [inner.heads, 1, inner.head_dim];
        for (name, t, dt) in [
            ("q", q_row, inner.q_dtype),
            ("k", k_row, inner.kv_dtype),
            ("v", v_row, inner.kv_dtype),
        ] {
            if t.desc().shape() != row_shape || t.desc().dtype() != dt {
                return Err(ServeError::InvalidRequest(format!(
                    "{name} row expects {:?} {:?}, got {}",
                    row_shape,
                    dt,
                    t.desc()
                )));
            }
        }
        let slot = StepSlot::new();
        let (len, cap) = {
            let mut s = self.shared.state.lock().unwrap();
            if s.busy {
                return Err(ServeError::InvalidRequest(
                    "a decode step is already in flight for this session".into(),
                ));
            }
            if s.len == inner.max_capacity {
                return Err(ServeError::InvalidRequest(format!(
                    "session is at max capacity {}",
                    inner.max_capacity
                )));
            }
            if s.len == s.cap {
                grow_cache(inner, &mut s);
            }
            let (pos, cap) = (s.len, s.cap);
            append_row(&mut s.k, k_row, pos, cap, inner)?;
            append_row(&mut s.v, v_row, pos, cap, inner)?;
            s.len += 1;
            s.busy = true;
            (s.len, s.cap)
        };
        {
            let mut q = inner.queue.lock().unwrap();
            if q.closed {
                self.shared.state.lock().unwrap().busy = false;
                return Err(ServeError::Closed);
            }
            q.pending.push_back(PendingStep {
                session: Arc::clone(&self.shared),
                q: q_row.clone(),
                len,
                cap,
                slot: Arc::clone(&slot),
            });
        }
        inner.cv.notify_all();
        Ok(StepFuture { slot })
    }

    /// Tokens appended so far.
    pub fn len(&self) -> usize {
        self.shared.state.lock().unwrap().len
    }

    /// Whether no step has run yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current cache capacity bucket.
    pub fn capacity(&self) -> usize {
        self.shared.state.lock().unwrap().cap
    }
}

impl Drop for DecodeSession {
    fn drop(&mut self) {
        self.inner.live_sessions.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Double the session's cache capacity, copying each head's used
/// prefix into the wider layout (positions past `len` stay zero).
fn grow_cache(inner: &DecodeInner, s: &mut SessionState) {
    let new_cap = (s.cap * 2).min(inner.max_capacity);
    let d = inner.head_dim;
    let vol = inner.heads * new_cap * d;
    for old in [&mut s.k, &mut s.v] {
        let mut wide = Storage::zeros(inner.kv_dtype, vol);
        for h in 0..inner.heads {
            copy_elems(
                old.storage(),
                h * s.cap * d,
                &mut wide,
                h * new_cap * d,
                s.len * d,
            )
            .expect("cache grow copy");
        }
        *old = Tensor::from_parts(
            TensorDesc::new([inner.heads, new_cap, d], inner.kv_dtype),
            wide,
        )
        .expect("grown cache tensor");
    }
    s.cap = new_cap;
}

/// Write `row [heads, 1, d]` at position `pos` of every head's
/// `[cap, d]` block, in place.
fn append_row(
    cache: &mut Tensor,
    row: &Tensor,
    pos: usize,
    cap: usize,
    inner: &DecodeInner,
) -> Result<(), ServeError> {
    let d = inner.head_dim;
    let dst = cache.make_mut();
    for h in 0..inner.heads {
        copy_elems(row.storage(), h * d, dst, h * cap * d + pos * d, d)?;
    }
    Ok(())
}

/// Check a built template graph against the decode contract; returns
/// `(q_dtype, kv_dtype, head_dim)`.
fn validate_decode_template(
    g: &Graph,
    rows: usize,
    cap: usize,
) -> Result<(DataType, DataType, usize), ServeError> {
    g.validate()
        .map_err(|e| ServeError::InvalidModel(format!("decode template: {e}")))?;
    if g.inputs().len() != 4 {
        return Err(ServeError::InvalidModel(format!(
            "decode template must take [q, k_cache, v_cache, mask], got {} inputs",
            g.inputs().len()
        )));
    }
    let desc = |i: usize| g.desc(g.inputs()[i]).clone();
    let (q, k, v, m) = (desc(0), desc(1), desc(2), desc(3));
    let head_dim = *q
        .shape()
        .last()
        .ok_or_else(|| ServeError::InvalidModel("decode template q input is rank-0".into()))?;
    if q.shape() != [rows, 1, head_dim] {
        return Err(ServeError::InvalidModel(format!(
            "q input must be [{rows}, 1, head_dim], got {q}"
        )));
    }
    if k.shape() != [rows, cap, head_dim] || v.shape() != k.shape() || v.dtype() != k.dtype() {
        return Err(ServeError::InvalidModel(format!(
            "k/v cache inputs must both be [{rows}, {cap}, {head_dim}], got {k} / {v}"
        )));
    }
    if m.shape() != [rows, 1, cap] || m.dtype() != DataType::F32 {
        return Err(ServeError::InvalidModel(format!(
            "mask input must be f32 [{rows}, 1, {cap}], got {m}"
        )));
    }
    if g.outputs().len() != 1 {
        return Err(ServeError::InvalidModel(format!(
            "decode template must have 1 output, got {}",
            g.outputs().len()
        )));
    }
    let out = g.desc(g.outputs()[0]);
    if out.shape() != [rows, 1, head_dim] {
        return Err(ServeError::InvalidModel(format!(
            "decode template output must be [{rows}, 1, {head_dim}], got {out}"
        )));
    }
    // The scheduler concatenates sessions along dim 0; the template
    // must not mix rows across that axis.
    crate::rebatch::check_row_independence(g)?;
    Ok((q.dtype(), k.dtype(), head_dim))
}

/// Look up (or build + compile) the plan for `rows` total head-rows at
/// capacity `cap`.
fn decode_plan(
    inner: &DecodeInner,
    rows: usize,
    cap: usize,
) -> Result<Arc<CachedPlan>, ServeError> {
    let g = (inner.builder)(rows, cap);
    // Re-check the contract at this bucket: the builder is caller code
    // and nothing forces it to scale coherently.
    validate_decode_template(&g, rows, cap)?;
    let key = PlanKey {
        graph: graph_fingerprint(&g)?,
        units: rows as u64,
        opts: inner.opts_hash,
        threads: inner.pool.threads() as u64,
        shard: 0,
    };
    inner.plan_cache.get_or_compile(key, || {
        let arts = Compiler::new(inner.config.compile.clone())
            .compile_artifacts(g, Arc::clone(&inner.pool))?;
        let exe = arts
            .exe
            .with_init_cache(Arc::clone(&inner.init_cache), key.fold_digest());
        Ok(CachedPlan {
            exe: Arc::new(exe),
            input_descs: arts.input_descs,
            output_descs: arts.output_descs,
        })
    })
}

/// Per-scheduler memo of resolved plans. The process-wide
/// [`PlanCache`] already dedupes compiles, but a hit there still costs
/// building and fingerprinting the template graph; the scheduler runs
/// every iteration, so it keeps its own `(rows, cap) -> plan` map.
type PlanMemo = HashMap<(usize, usize), Arc<CachedPlan>>;

/// Execute one coalesced iteration for `steps`, all at capacity `cap`.
fn run_iteration(inner: &DecodeInner, plans: &mut PlanMemo, steps: Vec<PendingStep>, cap: usize) {
    let mut guard = StepFanoutGuard {
        steps: steps
            .iter()
            .map(|p| (Arc::clone(&p.session), Arc::clone(&p.slot)))
            .collect(),
        armed: true,
    };
    let result = execute_iteration(inner, plans, &steps, cap);
    match result {
        Ok(outs) => {
            for (p, out) in steps.into_iter().zip(outs) {
                p.session.state.lock().unwrap().busy = false;
                p.slot.put(Ok(out));
            }
        }
        Err(e) => {
            for p in steps {
                p.session.state.lock().unwrap().busy = false;
                p.slot.put(Err(e.clone()));
            }
        }
    }
    guard.armed = false;
}

fn execute_iteration(
    inner: &DecodeInner,
    plans: &mut PlanMemo,
    steps: &[PendingStep],
    cap: usize,
) -> Result<Vec<Tensor>, ServeError> {
    let sessions = steps.len();
    let session_slots = sessions.next_power_of_two();
    let (heads, d) = (inner.heads, inner.head_dim);
    let rows = session_slots * heads;
    let plan = match plans.get(&(rows, cap)) {
        Some(p) => Arc::clone(p),
        None => {
            let p = decode_plan(inner, rows, cap)?;
            plans.insert((rows, cap), Arc::clone(&p));
            p
        }
    };

    // Gather: q rows, session caches, and the runtime-owned mask. The
    // padding slots keep zero caches/queries and a mask that admits
    // only position 0, so their softmax is well-defined (selects a
    // zero V row) and they cannot produce NaN.
    let mut q_st = Storage::zeros(inner.q_dtype, rows * d);
    let mut k_st = Storage::zeros(inner.kv_dtype, rows * cap * d);
    let mut v_st = Storage::zeros(inner.kv_dtype, rows * cap * d);
    let mut mask = vec![0f32; rows * cap];
    for (i, p) in steps.iter().enumerate() {
        copy_elems(p.q.storage(), 0, &mut q_st, i * heads * d, heads * d)?;
        {
            let s = p.session.state.lock().unwrap();
            if s.cap != cap {
                return Err(ServeError::Exec(format!(
                    "session capacity changed mid-flight: {} vs batch {}",
                    s.cap, cap
                )));
            }
            copy_elems(
                s.k.storage(),
                0,
                &mut k_st,
                i * heads * cap * d,
                heads * cap * d,
            )?;
            copy_elems(
                s.v.storage(),
                0,
                &mut v_st,
                i * heads * cap * d,
                heads * cap * d,
            )?;
        }
        for h in 0..heads {
            let row = (i * heads + h) * cap;
            for j in p.len..cap {
                mask[row + j] = MASKED;
            }
        }
    }
    for slot_row in sessions * heads..rows {
        let row = slot_row * cap;
        for j in 1..cap {
            mask[row + j] = MASKED;
        }
    }
    let batched = vec![
        Tensor::from_parts(TensorDesc::new([rows, 1, d], inner.q_dtype), q_st)
            .map_err(|e| ServeError::Exec(e.to_string()))?,
        Tensor::from_parts(TensorDesc::new([rows, cap, d], inner.kv_dtype), k_st)
            .map_err(|e| ServeError::Exec(e.to_string()))?,
        Tensor::from_parts(TensorDesc::new([rows, cap, d], inner.kv_dtype), v_st)
            .map_err(|e| ServeError::Exec(e.to_string()))?,
        Tensor::from_vec_f32(&[rows, 1, cap], mask).map_err(|e| ServeError::Exec(e.to_string()))?,
    ];
    let (outs, _stats) = plan.exe.execute(&batched)?;
    inner.stats.record_decode_iteration(
        cap as u64,
        rows as u64,
        sessions as u64,
        session_slots as u64,
    );

    // Scatter: session i owns head-rows [i*heads, (i+1)*heads).
    let out = &outs[0];
    let out_dt = out.desc().dtype();
    let per_session = heads * d;
    let mut per_step = Vec::with_capacity(sessions);
    for i in 0..sessions {
        per_step.push(crate::batch::slice_elems(
            out,
            i * per_session,
            per_session,
            TensorDesc::new([heads, 1, d], out_dt),
        )?);
    }
    Ok(per_step)
}

fn scheduler_loop(inner: &DecodeInner) {
    let mut plans = PlanMemo::new();
    let mut q = inner.queue.lock().unwrap();
    loop {
        if q.pending.is_empty() {
            if q.closed {
                return;
            }
            q = inner.cv.wait(q).unwrap();
            continue;
        }
        // Coalescing window: hold the oldest step open until the batch
        // fills or the delay budget runs out (skip when draining).
        let deadline = Instant::now() + inner.config.max_delay;
        while !q.closed && q.pending.len() < inner.config.max_batch {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            q = inner.cv.wait_timeout(q, deadline - now).unwrap().0;
        }
        // Drain one iteration: take the oldest step's capacity bucket
        // and every same-capacity step behind it, up to the batch cap.
        // Steps at other capacities stay queued for the next iteration
        // (the loop immediately comes back around for them).
        let cap = q.pending.front().expect("non-empty").cap;
        let mut steps = Vec::new();
        let mut rest = VecDeque::with_capacity(q.pending.len());
        for p in q.pending.drain(..) {
            if p.cap == cap && steps.len() < inner.config.max_batch {
                steps.push(p);
            } else {
                rest.push_back(p);
            }
        }
        q.pending = rest;
        drop(q);
        run_iteration(inner, &mut plans, steps, cap);
        q = inner.queue.lock().unwrap();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gc_machine::MachineDescriptor;

    fn decode_graph(rows: usize, cap: usize, d: usize) -> Graph {
        use gc_graph::OpKind;
        let mut g = Graph::new();
        let q = g.add_input(TensorDesc::new([rows, 1, d], DataType::F32), "q");
        let k = g.add_input(TensorDesc::new([rows, cap, d], DataType::F32), "k_cache");
        let v = g.add_input(TensorDesc::new([rows, cap, d], DataType::F32), "v_cache");
        let m = g.add_input(TensorDesc::new([rows, 1, cap], DataType::F32), "mask");
        let out = g.add_op(OpKind::DecodeAttention, &[q, k, v, m]).unwrap();
        g.mark_output(out);
        g
    }

    fn config() -> DecodeConfig {
        DecodeConfig {
            compile: CompileOptions {
                threads: Some(1),
                ..CompileOptions::new(MachineDescriptor::xeon_8358())
            },
            min_capacity: 4,
            max_capacity: 16,
            max_delay: Duration::from_micros(100),
            plan_cache: Some(Arc::new(PlanCache::new())),
            init_cache: Some(Arc::new(InitCache::new())),
            ..DecodeConfig::default()
        }
    }

    fn rows(heads: usize, d: usize, seed: u64) -> Tensor {
        Tensor::random(&[heads, 1, d], DataType::F32, seed)
    }

    #[test]
    fn single_session_decodes_and_grows() {
        let (heads, d) = (2, 8);
        let model = DecodeModel::load(move |r, c| decode_graph(r, c, d), heads, config()).unwrap();
        let s = model.session().unwrap();
        assert_eq!(s.capacity(), 4);
        for t in 0..6 {
            let out = s
                .decode_step(
                    &rows(heads, d, t),
                    &rows(heads, d, 100 + t),
                    &rows(heads, d, 200 + t),
                )
                .unwrap()
                .wait()
                .unwrap();
            assert_eq!(out.desc().shape(), &[heads, 1, d]);
            assert!(out.f32_slice().unwrap().iter().all(|x| x.is_finite()));
        }
        assert_eq!(s.len(), 6);
        assert_eq!(s.capacity(), 8); // grew across the 4-bucket boundary
        let snap = model.stats();
        assert_eq!(snap.decode_steps(), 6);
        assert!(!snap.decode_buckets.is_empty());
    }

    #[test]
    fn first_step_matches_v_row() {
        // One token in the cache: probs = softmax([q.k/sqrt(d)]) = [1]
        // over a single unmasked slot, so the output is exactly V row 0.
        let (heads, d) = (3, 16);
        let model = DecodeModel::load(move |r, c| decode_graph(r, c, d), heads, config()).unwrap();
        let s = model.session().unwrap();
        let v = rows(heads, d, 7);
        let out = s
            .decode_step(&rows(heads, d, 1), &rows(heads, d, 2), &v)
            .unwrap()
            .wait()
            .unwrap();
        let (got, want) = (out.f32_slice().unwrap(), v.f32_slice().unwrap());
        for (g, w) in got.iter().zip(want) {
            assert!((g - w).abs() <= 1e-6, "{g} vs {w}");
        }
    }

    #[test]
    fn one_step_in_flight_per_session() {
        let (heads, d) = (1, 4);
        let mut cfg = config();
        cfg.max_delay = Duration::from_secs(1); // hold the batch open
        let model = DecodeModel::load(move |r, c| decode_graph(r, c, d), heads, cfg).unwrap();
        let s = model.session().unwrap();
        let fut = s
            .decode_step(&rows(heads, d, 1), &rows(heads, d, 2), &rows(heads, d, 3))
            .unwrap();
        assert!(matches!(
            s.decode_step(&rows(heads, d, 4), &rows(heads, d, 5), &rows(heads, d, 6)),
            Err(ServeError::InvalidRequest(_))
        ));
        fut.wait().unwrap();
        // After completion the session accepts the next step.
        s.decode_step(&rows(heads, d, 4), &rows(heads, d, 5), &rows(heads, d, 6))
            .unwrap()
            .wait()
            .unwrap();
    }

    #[test]
    fn session_cap_and_closed() {
        let (heads, d) = (1, 4);
        let mut cfg = config();
        cfg.max_sessions = 2;
        let model = DecodeModel::load(move |r, c| decode_graph(r, c, d), heads, cfg).unwrap();
        let s1 = model.session().unwrap();
        let _s2 = model.session().unwrap();
        assert!(matches!(model.session(), Err(ServeError::Busy { .. })));
        drop(s1);
        let _s3 = model.session().unwrap();
        model.shutdown();
        assert!(matches!(model.session(), Err(ServeError::Closed)));
        assert!(matches!(
            _s3.decode_step(&rows(heads, d, 1), &rows(heads, d, 2), &rows(heads, d, 3)),
            Err(ServeError::Closed)
        ));
    }

    #[test]
    fn max_capacity_is_enforced() {
        let (heads, d) = (1, 4);
        let mut cfg = config();
        cfg.min_capacity = 2;
        cfg.max_capacity = 4;
        let model = DecodeModel::load(move |r, c| decode_graph(r, c, d), heads, cfg).unwrap();
        let s = model.session().unwrap();
        for t in 0..4 {
            s.decode_step(&rows(heads, d, t), &rows(heads, d, t), &rows(heads, d, t))
                .unwrap()
                .wait()
                .unwrap();
        }
        assert!(matches!(
            s.decode_step(&rows(heads, d, 9), &rows(heads, d, 9), &rows(heads, d, 9)),
            Err(ServeError::InvalidRequest(_))
        ));
    }

    #[test]
    fn rejects_bad_templates() {
        let (heads, d) = (2, 8);
        // Wrong input count.
        let e = DecodeModel::load(
            move |r, c| {
                let mut g = decode_graph(r, c, d);
                g.add_input(TensorDesc::new([r, 1, d], DataType::F32), "extra");
                g
            },
            heads,
            config(),
        );
        assert!(matches!(e, Err(ServeError::InvalidModel(_))));
        // Builder that ignores its capacity parameter.
        let e = DecodeModel::load(move |r, _c| decode_graph(r, 4, d), heads, {
            let mut c = config();
            c.min_capacity = 8;
            c
        });
        assert!(matches!(e, Err(ServeError::InvalidModel(_))));
    }

    #[test]
    fn concurrent_sessions_coalesce() {
        let (heads, d) = (2, 8);
        let mut cfg = config();
        cfg.max_delay = Duration::from_millis(5);
        let model =
            Arc::new(DecodeModel::load(move |r, c| decode_graph(r, c, d), heads, cfg).unwrap());
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let m = Arc::clone(&model);
            handles.push(std::thread::spawn(move || {
                let s = m.session().unwrap();
                for step in 0..3 {
                    s.decode_step(
                        &rows(heads, d, t * 10 + step),
                        &rows(heads, d, 1000 + t * 10 + step),
                        &rows(heads, d, 2000 + t * 10 + step),
                    )
                    .unwrap()
                    .wait()
                    .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let snap = model.stats();
        assert_eq!(snap.decode_steps(), 24);
        // With 8 threads stepping concurrently, at least some
        // iterations must have coalesced more than one session.
        assert!(snap.decode_iterations() < 24, "{snap}");
    }
}
