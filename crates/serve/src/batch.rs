//! Gather / pad / scatter helpers for dynamic batching.
//!
//! Coalescing concatenates each input across requests along dim 0 and
//! zero-pads to the bucket's row count; scattering slices each
//! request's rows back out of the batched output. Both are plain
//! element copies — soundness (padded rows never influence real rows,
//! and every output row belongs to exactly one request) is enforced at
//! load time by [`crate::rebatch::check_row_independence`], which
//! rejects templates whose ops are not row-independent along dim 0.

use crate::ServeError;
use gc_tensor::{Storage, Tensor, TensorDesc};

macro_rules! for_each_storage {
    ($s:expr, $v:ident => $body:expr) => {
        match $s {
            Storage::F32($v) => Storage::F32($body),
            Storage::Bf16($v) => Storage::Bf16($body),
            Storage::U8($v) => Storage::U8($body),
            Storage::I8($v) => Storage::I8($body),
            Storage::I32($v) => Storage::I32($body),
            Storage::I64($v) => Storage::I64($body),
        }
    };
}

/// Concatenate `parts` along dim 0 and zero-pad the result to
/// `total_rows` rows. All parts must share dtype and trailing dims.
///
/// # Errors
///
/// Returns [`ServeError::InvalidRequest`] on shape/dtype mismatch or if
/// the parts hold more than `total_rows` rows.
pub fn concat_rows(parts: &[&Tensor], total_rows: usize) -> Result<Tensor, ServeError> {
    let first = parts
        .first()
        .ok_or_else(|| ServeError::InvalidRequest("empty batch".into()))?;
    let dtype = first.desc().dtype();
    let tail: Vec<usize> = first.desc().shape()[1..].to_vec();
    let row_vol: usize = tail.iter().product::<usize>().max(1);
    let mut rows = 0usize;
    for p in parts {
        if p.desc().dtype() != dtype || p.desc().shape()[1..] != tail[..] {
            return Err(ServeError::InvalidRequest(format!(
                "batch part mismatch: {} vs {}",
                p.desc(),
                first.desc()
            )));
        }
        rows += p.desc().shape()[0];
    }
    if rows > total_rows {
        return Err(ServeError::InvalidRequest(format!(
            "{rows} rows exceed bucket of {total_rows}"
        )));
    }
    let mut out = Storage::zeros(dtype, total_rows * row_vol);
    let mut off = 0usize;
    for p in parts {
        let n = p.desc().volume();
        copy_elems(p.storage(), 0, &mut out, off, n)?;
        off += n;
    }
    let mut shape = vec![total_rows];
    shape.extend_from_slice(&tail);
    Tensor::from_parts(TensorDesc::new(shape, dtype), out)
        .map_err(|e| ServeError::InvalidRequest(e.to_string()))
}

/// Slice `len` elements starting at `start` out of `t`'s flat storage
/// and shape them as `desc`.
///
/// # Errors
///
/// Returns [`ServeError::Exec`] if the range is out of bounds or
/// `desc` doesn't describe `len` elements of `t`'s dtype.
pub fn slice_elems(
    t: &Tensor,
    start: usize,
    len: usize,
    desc: TensorDesc,
) -> Result<Tensor, ServeError> {
    if desc.volume() != len || desc.dtype() != t.desc().dtype() {
        return Err(ServeError::Exec(format!(
            "scatter target {desc} does not hold {len} elements of {:?}",
            t.desc().dtype()
        )));
    }
    if start + len > t.desc().volume() {
        return Err(ServeError::Exec(format!(
            "scatter range {start}..{} exceeds output volume {}",
            start + len,
            t.desc().volume()
        )));
    }
    let sliced = for_each_storage!(t.storage(), v => v[start..start + len].to_vec());
    Tensor::from_parts(desc, sliced).map_err(|e| ServeError::Exec(e.to_string()))
}

/// Copy `n` elements between same-dtype storages (flat offsets). The
/// decode scheduler uses this to gather session caches straight into a
/// batch buffer without an intermediate per-session copy.
pub(crate) fn copy_elems(
    src: &Storage,
    src_off: usize,
    dst: &mut Storage,
    dst_off: usize,
    n: usize,
) -> Result<(), ServeError> {
    macro_rules! copy {
        ($($var:ident),*) => {
            match (src, dst) {
                $( (Storage::$var(s), Storage::$var(d)) => {
                    d[dst_off..dst_off + n].copy_from_slice(&s[src_off..src_off + n]);
                    Ok(())
                } )*
                _ => Err(ServeError::InvalidRequest("dtype mismatch in batch copy".into())),
            }
        };
    }
    copy!(F32, Bf16, U8, I8, I32, I64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gc_tensor::DataType;

    #[test]
    fn concat_pads_with_zeros() {
        let a = Tensor::from_vec_f32(&[1, 2], vec![1.0, 2.0]).unwrap();
        let b = Tensor::from_vec_f32(&[2, 2], vec![3.0, 4.0, 5.0, 6.0]).unwrap();
        let c = concat_rows(&[&a, &b], 4).unwrap();
        assert_eq!(c.desc().shape(), &[4, 2]);
        assert_eq!(
            c.f32_slice().unwrap(),
            &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 0.0, 0.0]
        );
    }

    #[test]
    fn slice_recovers_rows() {
        let t =
            Tensor::from_vec_f32(&[4, 2], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 0.0, 0.0]).unwrap();
        let b = slice_elems(&t, 2, 4, TensorDesc::new([2, 2], DataType::F32)).unwrap();
        assert_eq!(b.f32_slice().unwrap(), &[3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn mismatched_parts_rejected() {
        let a = Tensor::from_vec_f32(&[1, 2], vec![1.0, 2.0]).unwrap();
        let b = Tensor::from_vec_f32(&[1, 3], vec![3.0, 4.0, 5.0]).unwrap();
        assert!(concat_rows(&[&a, &b], 4).is_err());
    }

    #[test]
    fn overflow_rejected() {
        let a = Tensor::from_vec_f32(&[3, 1], vec![1.0, 2.0, 3.0]).unwrap();
        assert!(concat_rows(&[&a], 2).is_err());
    }

    #[test]
    fn int8_roundtrip_is_exact() {
        let a = Tensor::from_parts(
            TensorDesc::new([2, 2], DataType::I8),
            Storage::I8(vec![-1, 2, -3, 4]),
        )
        .unwrap();
        let c = concat_rows(&[&a], 4).unwrap();
        let back = slice_elems(&c, 0, 4, TensorDesc::new([2, 2], DataType::I8)).unwrap();
        match back.storage() {
            Storage::I8(v) => assert_eq!(v, &[-1, 2, -3, 4]),
            _ => unreachable!(),
        }
    }
}
