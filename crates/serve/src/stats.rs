//! Serving observability: per-model counters, per-bucket breakdowns,
//! and a power-of-two latency histogram for p50/p99.
//!
//! Everything is updated with relaxed atomics on the request path (the
//! histogram takes a short mutex only when a request completes) and
//! read via [`ModelStats::snapshot`], which is what
//! [`crate::Model::stats`] and the bench binary's `--stats` dump show.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Histogram over power-of-two microsecond buckets: bucket `i` covers
/// `[2^i, 2^(i+1))` µs, bucket 0 covers `[0, 2)` µs. 40 buckets reach
/// ~12.7 days — effectively unbounded for a request latency.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    counts: [u64; 40],
    total: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: [0; 40],
            total: 0,
        }
    }

    /// Record one latency sample.
    pub fn record(&mut self, d: Duration) {
        let us = d.as_micros().min(u128::from(u64::MAX)) as u64;
        let idx = (64 - us.leading_zeros() as usize)
            .saturating_sub(1)
            .min(self.counts.len() - 1);
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Samples recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Approximate quantile in µs: the *lower* edge of the bucket
    /// holding the `q`-th sample (q in [0, 1]), i.e. a value every
    /// sample in the bucket is `>=`. Bucket 0 reports 0. `None` when
    /// empty.
    ///
    /// Reporting the lower edge keeps the estimate conservative: the
    /// upper edge would inflate quantiles by up to 2× (a model whose
    /// every request finishes in under 1 µs would report p50 = 2 µs).
    pub fn quantile_us(&self, q: f64) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(if i == 0 { 0 } else { 1u64 << i });
            }
        }
        Some(1u64 << (self.counts.len() - 1))
    }
}

#[derive(Debug, Default)]
struct BucketCounters {
    batches: AtomicU64,
    requests: AtomicU64,
    rows: AtomicU64,
    padded_rows: AtomicU64,
}

/// Number of bins in the decode batch-occupancy histogram: bin `i`
/// counts iterations whose occupancy (steps executed over session
/// slots in the bucket) fell in `[i*10%, (i+1)*10%)`, except bin 10,
/// which means a completely full batch.
pub const OCCUPANCY_BINS: usize = 11;

#[derive(Debug, Default)]
struct DecodeBucketCounters {
    iterations: AtomicU64,
    steps: AtomicU64,
}

/// Live counters for one served model.
///
/// The completed-request count is not stored as a separate counter: it
/// is the latency histogram's sample total, so a [`StatsSnapshot`] can
/// never show a request count that disagrees with its own quantiles.
#[derive(Debug, Default)]
pub struct ModelStats {
    fast_path: AtomicU64,
    batches: AtomicU64,
    busy_rejections: AtomicU64,
    queue_depth: AtomicU64,
    buckets: Mutex<HashMap<u64, BucketCounters>>,
    latency: Mutex<LatencyHistogram>,
    /// Decode iterations keyed by (cache capacity, row bucket).
    decode_buckets: Mutex<HashMap<(u64, u64), DecodeBucketCounters>>,
    /// Batch-occupancy histogram over decode iterations.
    decode_occupancy: Mutex<[u64; OCCUPANCY_BINS]>,
}

impl ModelStats {
    /// Fresh, zeroed counters.
    pub fn new() -> Self {
        ModelStats::default()
    }

    /// A request bypassed the queue; its execution is still counted by
    /// [`ModelStats::record_batch`] (as a batch of one).
    pub(crate) fn record_fast_path(&self, latency: Duration) {
        self.fast_path.fetch_add(1, Ordering::Relaxed);
        self.latency.lock().unwrap().record(latency);
    }

    /// One engine execution of `requests` coalesced requests. Every
    /// completed request passes through here exactly once; its latency
    /// is recorded separately ([`ModelStats::record_fast_path`] or
    /// [`ModelStats::record_request_latency`]) when its waiter wakes.
    pub(crate) fn record_batch(&self, units: u64, requests: u64, rows: u64, padded: u64) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        let map = &mut *self.buckets.lock().unwrap();
        let b = map.entry(units).or_default();
        b.batches.fetch_add(1, Ordering::Relaxed);
        b.requests.fetch_add(requests, Ordering::Relaxed);
        b.rows.fetch_add(rows, Ordering::Relaxed);
        b.padded_rows.fetch_add(padded, Ordering::Relaxed);
    }

    pub(crate) fn record_request_latency(&self, latency: Duration) {
        self.latency.lock().unwrap().record(latency);
    }

    /// One decode-scheduler iteration: `steps` decode steps executed
    /// in one batched plan run at cache capacity `capacity`, row
    /// bucket `rows`, with `slots` session slots available in the
    /// bucket (`steps <= slots`; the difference is padding).
    pub(crate) fn record_decode_iteration(&self, capacity: u64, rows: u64, steps: u64, slots: u64) {
        {
            let map = &mut *self.decode_buckets.lock().unwrap();
            let b = map.entry((capacity, rows)).or_default();
            b.iterations.fetch_add(1, Ordering::Relaxed);
            b.steps.fetch_add(steps, Ordering::Relaxed);
        }
        let bin = ((steps * 10) / slots.max(1)).min(10) as usize;
        self.decode_occupancy.lock().unwrap()[bin] += 1;
    }

    pub(crate) fn record_busy(&self) {
        self.busy_rejections.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn enqueued(&self) {
        self.queue_depth.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn dequeued(&self, n: u64) {
        self.queue_depth.fetch_sub(n, Ordering::Relaxed);
    }

    /// Consistent-enough point-in-time copy of every counter.
    ///
    /// The completed-request count is derived from the latency
    /// histogram total (every completed request records exactly one
    /// latency sample), so `requests` always agrees with the quantiles
    /// taken from the same locked histogram. Reading the separate
    /// relaxed atomic instead could disagree with the histogram by
    /// however many requests completed between the two reads.
    pub fn snapshot(&self) -> StatsSnapshot {
        let hist = self.latency.lock().unwrap().clone();
        let mut buckets: Vec<BucketSnapshot> = self
            .buckets
            .lock()
            .unwrap()
            .iter()
            .map(|(&units, c)| BucketSnapshot {
                units,
                batches: c.batches.load(Ordering::Relaxed),
                requests: c.requests.load(Ordering::Relaxed),
                rows: c.rows.load(Ordering::Relaxed),
                padded_rows: c.padded_rows.load(Ordering::Relaxed),
            })
            .collect();
        buckets.sort_by_key(|b| b.units);
        let mut decode_buckets: Vec<DecodeBucketSnapshot> = self
            .decode_buckets
            .lock()
            .unwrap()
            .iter()
            .map(|(&(capacity, rows), c)| DecodeBucketSnapshot {
                capacity,
                rows,
                iterations: c.iterations.load(Ordering::Relaxed),
                steps: c.steps.load(Ordering::Relaxed),
            })
            .collect();
        decode_buckets.sort_by_key(|b| (b.capacity, b.rows));
        let decode_occupancy = *self.decode_occupancy.lock().unwrap();
        StatsSnapshot {
            kernel_dispatch: KernelDispatchSnapshot::current(),
            requests: hist.total(),
            fast_path: self.fast_path.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            busy_rejections: self.busy_rejections.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            p50_us: hist.quantile_us(0.50),
            p99_us: hist.quantile_us(0.99),
            buckets,
            decode_buckets,
            decode_occupancy,
        }
    }
}

/// Counters for one decode `(capacity, rows)` bucket.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeBucketSnapshot {
    /// Cache capacity (positions) the bucket's plans run at.
    pub capacity: u64,
    /// Row bucket (session slots × heads) of the batched plan.
    pub rows: u64,
    /// Scheduler iterations (= plan executions) at this bucket.
    pub iterations: u64,
    /// Decode steps coalesced into those iterations.
    pub steps: u64,
}

/// Counters for one shape bucket.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BucketSnapshot {
    /// Bucket size in batching units.
    pub units: u64,
    /// Batches executed at this bucket.
    pub batches: u64,
    /// Requests coalesced into those batches.
    pub requests: u64,
    /// Real (request) units executed.
    pub rows: u64,
    /// Zero-padding units executed.
    pub padded_rows: u64,
}

/// Which microkernel backend the process dispatched to, and how many
/// kernel calls each (family × ISA) variant has executed. Taken from
/// the process-wide dispatch counters ([`gc_microkernel::dispatch_report`]),
/// so the counts cover every model in the process, not just this one —
/// the point is verifying *which code* served the traffic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelDispatchSnapshot {
    /// The selected backend (`scalar` / `avx2` / `avx512`), after
    /// `GC_FORCE_ISA` clamping.
    pub active: String,
    /// Best backend the CPU supports.
    pub detected: String,
    /// Whether the int8 dot runs on VNNI under the active backend.
    pub vnni: bool,
    /// Cumulative `(family, isa, calls)` counters, family-major,
    /// zero-count variants omitted.
    pub counts: Vec<(String, String, u64)>,
}

impl KernelDispatchSnapshot {
    /// Snapshot the process-wide dispatch state.
    pub fn current() -> Self {
        let r = gc_microkernel::dispatch_report();
        KernelDispatchSnapshot {
            active: r.active.name().to_string(),
            detected: r.detected.name().to_string(),
            vnni: r.vnni,
            counts: r
                .counts
                .iter()
                .map(|c| {
                    (
                        c.family.name().to_string(),
                        c.isa.name().to_string(),
                        c.calls,
                    )
                })
                .collect(),
        }
    }

    /// Total kernel calls recorded on backends other than `active` —
    /// 0 in a healthy process (the table is resolved once).
    pub fn off_active_calls(&self) -> u64 {
        self.counts
            .iter()
            .filter(|(_, isa, _)| *isa != self.active)
            .map(|(_, _, calls)| calls)
            .sum()
    }
}

/// Point-in-time model statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct StatsSnapshot {
    /// Process-wide microkernel ISA dispatch state and per-variant call
    /// counts.
    pub kernel_dispatch: KernelDispatchSnapshot,
    /// Requests completed (fast-path + batched). Derived from the
    /// latency histogram total, so it always agrees with `p50_us` /
    /// `p99_us` from the same snapshot.
    pub requests: u64,
    /// Requests served synchronously on an idle model.
    pub fast_path: u64,
    /// Engine executions (coalesced batches, including fast-path
    /// batches of one).
    pub batches: u64,
    /// Requests rejected with [`crate::ServeError::Busy`].
    pub busy_rejections: u64,
    /// Requests queued right now.
    pub queue_depth: u64,
    /// Median request latency (µs, bucket lower edge); `None` if no
    /// samples yet.
    pub p50_us: Option<u64>,
    /// 99th-percentile request latency (µs, bucket lower edge).
    pub p99_us: Option<u64>,
    /// Per-bucket breakdown, smallest bucket first.
    pub buckets: Vec<BucketSnapshot>,
    /// Decode iterations per `(capacity, rows)` bucket, sorted.
    pub decode_buckets: Vec<DecodeBucketSnapshot>,
    /// Decode batch-occupancy histogram ([`OCCUPANCY_BINS`] bins; see
    /// the constant for the binning rule).
    pub decode_occupancy: [u64; OCCUPANCY_BINS],
}

impl StatsSnapshot {
    /// Mean requests per engine execution (1.0 = no coalescing);
    /// `None` before the first execution.
    pub fn coalesce_ratio(&self) -> Option<f64> {
        (self.batches > 0).then(|| self.requests as f64 / self.batches as f64)
    }

    /// Decode scheduler iterations across every bucket.
    pub fn decode_iterations(&self) -> u64 {
        self.decode_buckets.iter().map(|b| b.iterations).sum()
    }

    /// Decode steps executed across every bucket.
    pub fn decode_steps(&self) -> u64 {
        self.decode_buckets.iter().map(|b| b.steps).sum()
    }

    /// Mean decode steps per iteration; `None` before the first one.
    pub fn decode_coalesce_ratio(&self) -> Option<f64> {
        let it = self.decode_iterations();
        (it > 0).then(|| self.decode_steps() as f64 / it as f64)
    }
}

impl std::fmt::Display for StatsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "requests={} fast_path={} batches={} coalesce={} busy={} queued={}",
            self.requests,
            self.fast_path,
            self.batches,
            self.coalesce_ratio()
                .map_or("n/a".into(), |r| format!("{r:.2}")),
            self.busy_rejections,
            self.queue_depth,
        )?;
        writeln!(
            f,
            "latency p50={} p99={}",
            self.p50_us.map_or("n/a".into(), |v| format!("{v}us")),
            self.p99_us.map_or("n/a".into(), |v| format!("{v}us")),
        )?;
        writeln!(
            f,
            "isa active={} detected={} vnni={}",
            self.kernel_dispatch.active, self.kernel_dispatch.detected, self.kernel_dispatch.vnni
        )?;
        for (family, isa, calls) in &self.kernel_dispatch.counts {
            writeln!(f, "kernel[{family} x {isa}] calls={calls}")?;
        }
        for b in &self.buckets {
            writeln!(
                f,
                "bucket[{:>4} units] batches={} requests={} rows={} padded={}",
                b.units, b.batches, b.requests, b.rows, b.padded_rows
            )?;
        }
        for b in &self.decode_buckets {
            writeln!(
                f,
                "decode[cap {:>5} x {:>4} rows] iterations={} steps={}",
                b.capacity, b.rows, b.iterations, b.steps
            )?;
        }
        if self.decode_iterations() > 0 {
            write!(f, "decode coalesce=")?;
            match self.decode_coalesce_ratio() {
                Some(r) => write!(f, "{r:.2}")?,
                None => write!(f, "n/a")?,
            }
            write!(f, " occupancy=[")?;
            for (i, c) in self.decode_occupancy.iter().enumerate() {
                if i > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{c}")?;
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles() {
        let mut h = LatencyHistogram::new();
        for _ in 0..99 {
            h.record(Duration::from_micros(10)); // bucket [8,16)
        }
        h.record(Duration::from_millis(100)); // far tail: bucket [65536,131072)
        assert_eq!(h.total(), 100);
        assert_eq!(h.quantile_us(0.5), Some(8));
        assert_eq!(h.quantile_us(0.999), Some(65_536));
        assert_eq!(LatencyHistogram::new().quantile_us(0.5), None);
    }

    #[test]
    fn zero_latency_lands_in_first_bucket() {
        let mut h = LatencyHistogram::new();
        h.record(Duration::ZERO);
        // lower edge of bucket [0, 2): sub-µs requests report 0, not 2
        assert_eq!(h.quantile_us(1.0), Some(0));
    }

    #[test]
    fn quantile_never_exceeds_any_sample_bucket() {
        // the reported quantile must be <= the true latency for every
        // sample at or above that rank (lower-edge conservatism)
        let mut h = LatencyHistogram::new();
        for us in [0u64, 1, 3, 9, 100, 5000] {
            h.record(Duration::from_micros(us));
        }
        assert!(h.quantile_us(0.5).unwrap() <= 9);
        assert!(h.quantile_us(1.0).unwrap() <= 5000);
    }

    #[test]
    fn snapshot_aggregates() {
        let s = ModelStats::new();
        s.record_fast_path(Duration::from_micros(5));
        s.record_batch(1, 1, 1, 0); // the fast-path execution
        s.record_batch(8, 3, 6, 2);
        for _ in 0..3 {
            s.record_request_latency(Duration::from_micros(40));
        }
        let snap = s.snapshot();
        assert_eq!(snap.requests, 4);
        assert_eq!(snap.fast_path, 1);
        assert_eq!(snap.batches, 2);
        assert_eq!(snap.coalesce_ratio(), Some(2.0));
        assert_eq!(snap.buckets.len(), 2);
        assert_eq!(snap.buckets[1].padded_rows, 2);
        assert!(snap.p50_us.is_some());
        assert!(format!("{snap}").contains("bucket[   8 units]"));
    }

    #[test]
    fn snapshot_request_count_matches_latency_samples() {
        // Regression: `requests` used to be a separate relaxed atomic
        // bumped by record_batch, read at a different instant than the
        // mutexed histogram — a snapshot could claim N completed
        // requests while its quantiles were computed over fewer (or
        // more) samples. The count is now the histogram total itself.
        let s = ModelStats::new();
        // batch recorded but waiters not yet woken: no latency samples
        s.record_batch(4, 3, 3, 1);
        let snap = s.snapshot();
        assert_eq!(snap.requests, 0);
        assert_eq!(snap.p50_us, None);
        // waiters wake one by one; requests tracks samples exactly
        s.record_request_latency(Duration::from_micros(7));
        s.record_request_latency(Duration::from_micros(7));
        let snap = s.snapshot();
        assert_eq!(snap.requests, 2);
        assert!(snap.p50_us.is_some());
        s.record_request_latency(Duration::from_micros(7));
        assert_eq!(s.snapshot().requests, 3);
        // per-bucket request attribution is unaffected
        assert_eq!(s.snapshot().buckets[0].requests, 3);
    }

    #[test]
    fn coalesce_ratio_none_before_batches() {
        assert_eq!(ModelStats::new().snapshot().coalesce_ratio(), None);
    }

    #[test]
    fn snapshot_surfaces_kernel_dispatch() {
        // Run one kernel so at least one (family × ISA) counter is
        // non-zero, then check the snapshot carries the dispatch state.
        let mut out = [0f32; 4];
        gc_microkernel::eltwise::unary(
            gc_microkernel::UnaryOp::Relu,
            &[-1.0, 1.0, -2.0, 2.0],
            &mut out,
        );
        let snap = ModelStats::new().snapshot();
        let kd = &snap.kernel_dispatch;
        assert!(["scalar", "avx2", "avx512"].contains(&kd.active.as_str()));
        assert!(!kd.counts.is_empty());
        // A healthy process dispatches everything on the active table.
        assert_eq!(kd.off_active_calls(), 0);
        let shown = format!("{snap}");
        assert!(
            shown.contains(&format!("isa active={}", kd.active)),
            "{shown}"
        );
        assert!(shown.contains("kernel[eltwise x"), "{shown}");
    }

    #[test]
    fn decode_buckets_and_occupancy() {
        let s = ModelStats::new();
        // Two iterations at (cap 16, 8 rows): one full, one at 25%.
        s.record_decode_iteration(16, 8, 4, 4);
        s.record_decode_iteration(16, 8, 1, 4);
        // One iteration after sessions crossed into the 32 bucket.
        s.record_decode_iteration(32, 8, 4, 4);
        let snap = s.snapshot();
        assert_eq!(snap.decode_iterations(), 3);
        assert_eq!(snap.decode_steps(), 9);
        assert_eq!(snap.decode_coalesce_ratio(), Some(3.0));
        assert_eq!(
            snap.decode_buckets,
            vec![
                DecodeBucketSnapshot {
                    capacity: 16,
                    rows: 8,
                    iterations: 2,
                    steps: 5
                },
                DecodeBucketSnapshot {
                    capacity: 32,
                    rows: 8,
                    iterations: 1,
                    steps: 4
                },
            ]
        );
        // Full batches land in the last bin, 25% in bin 2.
        assert_eq!(snap.decode_occupancy[10], 2);
        assert_eq!(snap.decode_occupancy[2], 1);
        let shown = format!("{snap}");
        assert!(shown.contains("decode[cap    16 x    8 rows] iterations=2 steps=5"));
        assert!(shown.contains("decode coalesce=3.00"));
    }

    #[test]
    fn decode_stats_absent_from_display_when_unused() {
        let s = ModelStats::new();
        s.record_batch(4, 1, 1, 3);
        let snap = s.snapshot();
        assert_eq!(snap.decode_coalesce_ratio(), None);
        assert!(!format!("{snap}").contains("decode"));
    }
}
