//! Serving observability: per-model counters, per-bucket breakdowns,
//! a power-of-two latency histogram for p50/p99, and — on sharded
//! models — per-shard execution counters.
//!
//! Everything is updated with relaxed atomics on the request path (the
//! histogram takes a short mutex only when a request completes) and
//! read via [`ModelStats::snapshot`], which is what
//! [`crate::Model::stats`] and the bench binary's `--stats` dump show.
//!
//! # Per-shard counters
//!
//! A sharded model (DESIGN.md "Sharded execution") registers one
//! [`ShardStats`] per engine shard at load. The shard's executor
//! records every sub-batch it runs (units, padding, execution wall
//! time, panics), and the *fusion* step's overhead — partitioning
//! inputs and merging partial outputs back together — is accounted
//! separately in [`StatsSnapshot::fuse_us`], because that copy cost is
//! exactly where shard scaling goes to die on small batches (see the
//! shard-count decision table in DESIGN.md). [`ModelStats::snapshot`]
//! folds all of it into the existing [`StatsSnapshot`], so `model
//! .stats()` is still the single observability entry point.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Histogram over power-of-two microsecond buckets: bucket `i` covers
/// `[2^i, 2^(i+1))` µs, bucket 0 covers `[0, 2)` µs. 40 buckets reach
/// ~12.7 days — effectively unbounded for a request latency.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    counts: [u64; 40],
    total: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: [0; 40],
            total: 0,
        }
    }

    /// Record one latency sample.
    pub fn record(&mut self, d: Duration) {
        let us = d.as_micros().min(u128::from(u64::MAX)) as u64;
        let idx = (64 - us.leading_zeros() as usize)
            .saturating_sub(1)
            .min(self.counts.len() - 1);
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Samples recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Approximate quantile in µs: the *lower* edge of the bucket
    /// holding the `q`-th sample (q in [0, 1]), i.e. a value every
    /// sample in the bucket is `>=`. Bucket 0 reports 0. `None` when
    /// empty.
    ///
    /// Reporting the lower edge keeps the estimate conservative: the
    /// upper edge would inflate quantiles by up to 2× (a model whose
    /// every request finishes in under 1 µs would report p50 = 2 µs).
    pub fn quantile_us(&self, q: f64) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(if i == 0 { 0 } else { 1u64 << i });
            }
        }
        Some(1u64 << (self.counts.len() - 1))
    }
}

#[derive(Debug, Default)]
struct BucketCounters {
    batches: AtomicU64,
    requests: AtomicU64,
    rows: AtomicU64,
    padded_rows: AtomicU64,
}

/// Number of bins in the decode batch-occupancy histogram: bin `i`
/// counts iterations whose occupancy (steps executed over session
/// slots in the bucket) fell in `[i*10%, (i+1)*10%)`, except bin 10,
/// which means a completely full batch.
pub const OCCUPANCY_BINS: usize = 11;

#[derive(Debug, Default)]
struct DecodeBucketCounters {
    iterations: AtomicU64,
    steps: AtomicU64,
}

/// Live counters for one engine shard of a sharded model. Created by
/// `shard::EngineShard`, registered on the model's [`ModelStats`], and
/// surfaced as a [`ShardSnapshot`] per shard in every
/// [`StatsSnapshot`].
#[derive(Debug)]
pub struct ShardStats {
    /// Shard index within the model (0-based; display only — the
    /// plan-cache slot is 1-based, see [`crate::cache::PlanKey::shard`]).
    pub(crate) id: usize,
    /// The shard pool's width (cores it keeps busy).
    pub(crate) threads: usize,
    /// Kernel backend the shard's threads dispatch on.
    pub(crate) isa: &'static str,
    /// Whether the kernel accepted the shard's core-range pin.
    pub(crate) pinned: bool,
    batches: AtomicU64,
    units: AtomicU64,
    padded_units: AtomicU64,
    exec_ns: AtomicU64,
    panics: AtomicU64,
}

impl ShardStats {
    pub(crate) fn new(id: usize, threads: usize, isa: &'static str, pinned: bool) -> Self {
        ShardStats {
            id,
            threads,
            isa,
            pinned,
            batches: AtomicU64::new(0),
            units: AtomicU64::new(0),
            padded_units: AtomicU64::new(0),
            exec_ns: AtomicU64::new(0),
            panics: AtomicU64::new(0),
        }
    }

    /// One sub-batch executed on this shard: `units` real units padded
    /// up to `bucket`, in `wall`.
    pub(crate) fn record_exec(&self, units: u64, bucket: u64, wall: Duration) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.units.fetch_add(units, Ordering::Relaxed);
        self.padded_units
            .fetch_add(bucket.saturating_sub(units), Ordering::Relaxed);
        self.exec_ns.fetch_add(
            wall.as_nanos().min(u128::from(u64::MAX)) as u64,
            Ordering::Relaxed,
        );
    }

    /// A job on this shard's executor panicked (the batch's waiters
    /// were failed; the shard keeps serving).
    pub(crate) fn record_panic(&self) {
        self.panics.fetch_add(1, Ordering::Relaxed);
    }

    /// Jobs that have panicked on this shard so far.
    pub fn panics(&self) -> u64 {
        self.panics.load(Ordering::Relaxed)
    }

    fn snapshot(&self) -> ShardSnapshot {
        ShardSnapshot {
            id: self.id as u64,
            threads: self.threads as u64,
            isa: self.isa.to_string(),
            pinned: self.pinned,
            batches: self.batches.load(Ordering::Relaxed),
            units: self.units.load(Ordering::Relaxed),
            padded_units: self.padded_units.load(Ordering::Relaxed),
            exec_us: self.exec_ns.load(Ordering::Relaxed) / 1_000,
            panics: self.panics.load(Ordering::Relaxed),
        }
    }
}

/// Live counters for one served model.
///
/// The completed-request count is not stored as a separate counter: it
/// is the latency histogram's sample total, so a [`StatsSnapshot`] can
/// never show a request count that disagrees with its own quantiles.
#[derive(Debug, Default)]
pub struct ModelStats {
    fast_path: AtomicU64,
    batches: AtomicU64,
    busy_rejections: AtomicU64,
    queue_depth: AtomicU64,
    buckets: Mutex<HashMap<u64, BucketCounters>>,
    latency: Mutex<LatencyHistogram>,
    /// Decode iterations keyed by (cache capacity, row bucket).
    decode_buckets: Mutex<HashMap<(u64, u64), DecodeBucketCounters>>,
    /// Batch-occupancy histogram over decode iterations.
    decode_occupancy: Mutex<[u64; OCCUPANCY_BINS]>,
    /// Per-shard counters, registered once at model load (empty on
    /// unsharded models).
    shards: Mutex<Vec<Arc<ShardStats>>>,
    /// Batches whose units were scattered across more than one shard.
    scattered_batches: AtomicU64,
    /// Wall time spent in the fuse step (input partitioning + partial-
    /// output merge), outside any shard's own execution.
    fuse_ns: AtomicU64,
}

impl ModelStats {
    /// Fresh, zeroed counters.
    pub fn new() -> Self {
        ModelStats::default()
    }

    /// A request bypassed the queue; its execution is still counted by
    /// [`ModelStats::record_batch`] (as a batch of one).
    pub(crate) fn record_fast_path(&self, latency: Duration) {
        self.fast_path.fetch_add(1, Ordering::Relaxed);
        self.latency.lock().unwrap().record(latency);
    }

    /// One engine execution of `requests` coalesced requests. Every
    /// completed request passes through here exactly once; its latency
    /// is recorded separately ([`ModelStats::record_fast_path`] or
    /// [`ModelStats::record_request_latency`]) when its waiter wakes.
    pub(crate) fn record_batch(&self, units: u64, requests: u64, rows: u64, padded: u64) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        let map = &mut *self.buckets.lock().unwrap();
        let b = map.entry(units).or_default();
        b.batches.fetch_add(1, Ordering::Relaxed);
        b.requests.fetch_add(requests, Ordering::Relaxed);
        b.rows.fetch_add(rows, Ordering::Relaxed);
        b.padded_rows.fetch_add(padded, Ordering::Relaxed);
    }

    pub(crate) fn record_request_latency(&self, latency: Duration) {
        self.latency.lock().unwrap().record(latency);
    }

    /// One decode-scheduler iteration: `steps` decode steps executed
    /// in one batched plan run at cache capacity `capacity`, row
    /// bucket `rows`, with `slots` session slots available in the
    /// bucket (`steps <= slots`; the difference is padding).
    pub(crate) fn record_decode_iteration(&self, capacity: u64, rows: u64, steps: u64, slots: u64) {
        {
            let map = &mut *self.decode_buckets.lock().unwrap();
            let b = map.entry((capacity, rows)).or_default();
            b.iterations.fetch_add(1, Ordering::Relaxed);
            b.steps.fetch_add(steps, Ordering::Relaxed);
        }
        let bin = ((steps * 10) / slots.max(1)).min(10) as usize;
        self.decode_occupancy.lock().unwrap()[bin] += 1;
    }

    /// Install the sharded runtime's per-shard counters (once, at
    /// load).
    pub(crate) fn register_shards(&self, shards: Vec<Arc<ShardStats>>) {
        *self.shards.lock().unwrap() = shards;
    }

    /// One batch was scatter-executed across `shards` shards, with
    /// `fuse` spent partitioning inputs and merging partial outputs.
    pub(crate) fn record_scatter(&self, shards: usize, fuse: Duration) {
        if shards > 1 {
            self.scattered_batches.fetch_add(1, Ordering::Relaxed);
        }
        self.fuse_ns.fetch_add(
            fuse.as_nanos().min(u128::from(u64::MAX)) as u64,
            Ordering::Relaxed,
        );
    }

    pub(crate) fn record_busy(&self) {
        self.busy_rejections.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn enqueued(&self) {
        self.queue_depth.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn dequeued(&self, n: u64) {
        self.queue_depth.fetch_sub(n, Ordering::Relaxed);
    }

    /// Consistent-enough point-in-time copy of every counter.
    ///
    /// The completed-request count is derived from the latency
    /// histogram total (every completed request records exactly one
    /// latency sample), so `requests` always agrees with the quantiles
    /// taken from the same locked histogram. Reading the separate
    /// relaxed atomic instead could disagree with the histogram by
    /// however many requests completed between the two reads.
    pub fn snapshot(&self) -> StatsSnapshot {
        let hist = self.latency.lock().unwrap().clone();
        let mut buckets: Vec<BucketSnapshot> = self
            .buckets
            .lock()
            .unwrap()
            .iter()
            .map(|(&units, c)| BucketSnapshot {
                units,
                batches: c.batches.load(Ordering::Relaxed),
                requests: c.requests.load(Ordering::Relaxed),
                rows: c.rows.load(Ordering::Relaxed),
                padded_rows: c.padded_rows.load(Ordering::Relaxed),
            })
            .collect();
        buckets.sort_by_key(|b| b.units);
        let mut decode_buckets: Vec<DecodeBucketSnapshot> = self
            .decode_buckets
            .lock()
            .unwrap()
            .iter()
            .map(|(&(capacity, rows), c)| DecodeBucketSnapshot {
                capacity,
                rows,
                iterations: c.iterations.load(Ordering::Relaxed),
                steps: c.steps.load(Ordering::Relaxed),
            })
            .collect();
        decode_buckets.sort_by_key(|b| (b.capacity, b.rows));
        let decode_occupancy = *self.decode_occupancy.lock().unwrap();
        let shards: Vec<ShardSnapshot> = self
            .shards
            .lock()
            .unwrap()
            .iter()
            .map(|s| s.snapshot())
            .collect();
        StatsSnapshot {
            kernel_dispatch: KernelDispatchSnapshot::current(),
            requests: hist.total(),
            fast_path: self.fast_path.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            busy_rejections: self.busy_rejections.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            p50_us: hist.quantile_us(0.50),
            p99_us: hist.quantile_us(0.99),
            buckets,
            decode_buckets,
            decode_occupancy,
            shards,
            scattered_batches: self.scattered_batches.load(Ordering::Relaxed),
            fuse_us: self.fuse_ns.load(Ordering::Relaxed) / 1_000,
        }
    }
}

/// Point-in-time counters for one engine shard (see [`ShardStats`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardSnapshot {
    /// Shard index within the model (0-based).
    pub id: u64,
    /// Pool width the shard runs at.
    pub threads: u64,
    /// Kernel backend (`scalar` / `avx2` / `avx512`) the shard's
    /// threads dispatch on — may differ from the process-wide active
    /// backend on heterogeneous shard layouts.
    pub isa: String,
    /// Whether the kernel accepted the shard's core-range pin at spawn.
    pub pinned: bool,
    /// Sub-batches this shard executed.
    pub batches: u64,
    /// Real batching units executed.
    pub units: u64,
    /// Zero-padding units executed (each shard pads its slice to its
    /// own power-of-two bucket).
    pub padded_units: u64,
    /// Wall time inside shard execution (µs), summed over sub-batches.
    pub exec_us: u64,
    /// Jobs that panicked on this shard's executor.
    pub panics: u64,
}

/// Counters for one decode `(capacity, rows)` bucket.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeBucketSnapshot {
    /// Cache capacity (positions) the bucket's plans run at.
    pub capacity: u64,
    /// Row bucket (session slots × heads) of the batched plan.
    pub rows: u64,
    /// Scheduler iterations (= plan executions) at this bucket.
    pub iterations: u64,
    /// Decode steps coalesced into those iterations.
    pub steps: u64,
}

/// Counters for one shape bucket.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BucketSnapshot {
    /// Bucket size in batching units.
    pub units: u64,
    /// Batches executed at this bucket.
    pub batches: u64,
    /// Requests coalesced into those batches.
    pub requests: u64,
    /// Real (request) units executed.
    pub rows: u64,
    /// Zero-padding units executed.
    pub padded_rows: u64,
}

/// Which microkernel backend the process dispatched to, and how many
/// kernel calls each (family × ISA) variant has executed. Taken from
/// the process-wide dispatch counters ([`gc_microkernel::dispatch_report`]),
/// so the counts cover every model in the process, not just this one —
/// the point is verifying *which code* served the traffic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelDispatchSnapshot {
    /// The selected backend (`scalar` / `avx2` / `avx512`), after
    /// `GC_FORCE_ISA` clamping.
    pub active: String,
    /// Best backend the CPU supports.
    pub detected: String,
    /// Whether the int8 dot runs on VNNI under the active backend.
    pub vnni: bool,
    /// Cumulative `(family, isa, calls)` counters, family-major,
    /// zero-count variants omitted.
    pub counts: Vec<(String, String, u64)>,
}

impl KernelDispatchSnapshot {
    /// Snapshot the process-wide dispatch state.
    pub fn current() -> Self {
        let r = gc_microkernel::dispatch_report();
        KernelDispatchSnapshot {
            active: r.active.name().to_string(),
            detected: r.detected.name().to_string(),
            vnni: r.vnni,
            counts: r
                .counts
                .iter()
                .map(|c| {
                    (
                        c.family.name().to_string(),
                        c.isa.name().to_string(),
                        c.calls,
                    )
                })
                .collect(),
        }
    }

    /// Total kernel calls recorded on backends other than the
    /// process-wide `active` table. Zero in an unsharded process (the
    /// table is resolved once); legitimately non-zero when
    /// heterogeneous engine shards install per-thread overrides via
    /// `gc_microkernel::arch::set_thread_isa` — those calls are
    /// counted against the backend that actually ran.
    pub fn off_active_calls(&self) -> u64 {
        self.counts
            .iter()
            .filter(|(_, isa, _)| *isa != self.active)
            .map(|(_, _, calls)| calls)
            .sum()
    }
}

/// Point-in-time model statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct StatsSnapshot {
    /// Process-wide microkernel ISA dispatch state and per-variant call
    /// counts.
    pub kernel_dispatch: KernelDispatchSnapshot,
    /// Requests completed (fast-path + batched). Derived from the
    /// latency histogram total, so it always agrees with `p50_us` /
    /// `p99_us` from the same snapshot.
    pub requests: u64,
    /// Requests served synchronously on an idle model.
    pub fast_path: u64,
    /// Engine executions (coalesced batches, including fast-path
    /// batches of one).
    pub batches: u64,
    /// Requests rejected with [`crate::ServeError::Busy`].
    pub busy_rejections: u64,
    /// Requests queued right now.
    pub queue_depth: u64,
    /// Median request latency (µs, bucket lower edge); `None` if no
    /// samples yet.
    pub p50_us: Option<u64>,
    /// 99th-percentile request latency (µs, bucket lower edge).
    pub p99_us: Option<u64>,
    /// Per-bucket breakdown, smallest bucket first.
    pub buckets: Vec<BucketSnapshot>,
    /// Decode iterations per `(capacity, rows)` bucket, sorted.
    pub decode_buckets: Vec<DecodeBucketSnapshot>,
    /// Decode batch-occupancy histogram ([`OCCUPANCY_BINS`] bins; see
    /// the constant for the binning rule).
    pub decode_occupancy: [u64; OCCUPANCY_BINS],
    /// Per-shard execution counters, shard 0 first. Empty on unsharded
    /// models.
    pub shards: Vec<ShardSnapshot>,
    /// Batches whose units were split across more than one shard (a
    /// batch routed whole to a single shard does not count).
    pub scattered_batches: u64,
    /// Cumulative wall time (µs) in the fuse step — slicing inputs into
    /// per-shard sub-batches and merging partial outputs — outside any
    /// shard's own execution time.
    pub fuse_us: u64,
}

impl StatsSnapshot {
    /// Mean requests per engine execution (1.0 = no coalescing);
    /// `None` before the first execution.
    pub fn coalesce_ratio(&self) -> Option<f64> {
        (self.batches > 0).then(|| self.requests as f64 / self.batches as f64)
    }

    /// Decode scheduler iterations across every bucket.
    pub fn decode_iterations(&self) -> u64 {
        self.decode_buckets.iter().map(|b| b.iterations).sum()
    }

    /// Decode steps executed across every bucket.
    pub fn decode_steps(&self) -> u64 {
        self.decode_buckets.iter().map(|b| b.steps).sum()
    }

    /// Mean decode steps per iteration; `None` before the first one.
    pub fn decode_coalesce_ratio(&self) -> Option<f64> {
        let it = self.decode_iterations();
        (it > 0).then(|| self.decode_steps() as f64 / it as f64)
    }
}

impl std::fmt::Display for StatsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "requests={} fast_path={} batches={} coalesce={} busy={} queued={}",
            self.requests,
            self.fast_path,
            self.batches,
            self.coalesce_ratio()
                .map_or("n/a".into(), |r| format!("{r:.2}")),
            self.busy_rejections,
            self.queue_depth,
        )?;
        writeln!(
            f,
            "latency p50={} p99={}",
            self.p50_us.map_or("n/a".into(), |v| format!("{v}us")),
            self.p99_us.map_or("n/a".into(), |v| format!("{v}us")),
        )?;
        writeln!(
            f,
            "isa active={} detected={} vnni={}",
            self.kernel_dispatch.active, self.kernel_dispatch.detected, self.kernel_dispatch.vnni
        )?;
        for (family, isa, calls) in &self.kernel_dispatch.counts {
            writeln!(f, "kernel[{family} x {isa}] calls={calls}")?;
        }
        for b in &self.buckets {
            writeln!(
                f,
                "bucket[{:>4} units] batches={} requests={} rows={} padded={}",
                b.units, b.batches, b.requests, b.rows, b.padded_rows
            )?;
        }
        for s in &self.shards {
            writeln!(
                f,
                "shard[{}] threads={} isa={} pinned={} batches={} units={} padded={} exec={}us panics={}",
                s.id, s.threads, s.isa, s.pinned, s.batches, s.units, s.padded_units, s.exec_us, s.panics
            )?;
        }
        if !self.shards.is_empty() {
            writeln!(
                f,
                "scatter batches={} fuse={}us",
                self.scattered_batches, self.fuse_us
            )?;
        }
        for b in &self.decode_buckets {
            writeln!(
                f,
                "decode[cap {:>5} x {:>4} rows] iterations={} steps={}",
                b.capacity, b.rows, b.iterations, b.steps
            )?;
        }
        if self.decode_iterations() > 0 {
            write!(f, "decode coalesce=")?;
            match self.decode_coalesce_ratio() {
                Some(r) => write!(f, "{r:.2}")?,
                None => write!(f, "n/a")?,
            }
            write!(f, " occupancy=[")?;
            for (i, c) in self.decode_occupancy.iter().enumerate() {
                if i > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{c}")?;
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles() {
        let mut h = LatencyHistogram::new();
        for _ in 0..99 {
            h.record(Duration::from_micros(10)); // bucket [8,16)
        }
        h.record(Duration::from_millis(100)); // far tail: bucket [65536,131072)
        assert_eq!(h.total(), 100);
        assert_eq!(h.quantile_us(0.5), Some(8));
        assert_eq!(h.quantile_us(0.999), Some(65_536));
        assert_eq!(LatencyHistogram::new().quantile_us(0.5), None);
    }

    #[test]
    fn zero_latency_lands_in_first_bucket() {
        let mut h = LatencyHistogram::new();
        h.record(Duration::ZERO);
        // lower edge of bucket [0, 2): sub-µs requests report 0, not 2
        assert_eq!(h.quantile_us(1.0), Some(0));
    }

    #[test]
    fn quantile_never_exceeds_any_sample_bucket() {
        // the reported quantile must be <= the true latency for every
        // sample at or above that rank (lower-edge conservatism)
        let mut h = LatencyHistogram::new();
        for us in [0u64, 1, 3, 9, 100, 5000] {
            h.record(Duration::from_micros(us));
        }
        assert!(h.quantile_us(0.5).unwrap() <= 9);
        assert!(h.quantile_us(1.0).unwrap() <= 5000);
    }

    #[test]
    fn snapshot_aggregates() {
        let s = ModelStats::new();
        s.record_fast_path(Duration::from_micros(5));
        s.record_batch(1, 1, 1, 0); // the fast-path execution
        s.record_batch(8, 3, 6, 2);
        for _ in 0..3 {
            s.record_request_latency(Duration::from_micros(40));
        }
        let snap = s.snapshot();
        assert_eq!(snap.requests, 4);
        assert_eq!(snap.fast_path, 1);
        assert_eq!(snap.batches, 2);
        assert_eq!(snap.coalesce_ratio(), Some(2.0));
        assert_eq!(snap.buckets.len(), 2);
        assert_eq!(snap.buckets[1].padded_rows, 2);
        assert!(snap.p50_us.is_some());
        assert!(format!("{snap}").contains("bucket[   8 units]"));
    }

    #[test]
    fn snapshot_request_count_matches_latency_samples() {
        // Regression: `requests` used to be a separate relaxed atomic
        // bumped by record_batch, read at a different instant than the
        // mutexed histogram — a snapshot could claim N completed
        // requests while its quantiles were computed over fewer (or
        // more) samples. The count is now the histogram total itself.
        let s = ModelStats::new();
        // batch recorded but waiters not yet woken: no latency samples
        s.record_batch(4, 3, 3, 1);
        let snap = s.snapshot();
        assert_eq!(snap.requests, 0);
        assert_eq!(snap.p50_us, None);
        // waiters wake one by one; requests tracks samples exactly
        s.record_request_latency(Duration::from_micros(7));
        s.record_request_latency(Duration::from_micros(7));
        let snap = s.snapshot();
        assert_eq!(snap.requests, 2);
        assert!(snap.p50_us.is_some());
        s.record_request_latency(Duration::from_micros(7));
        assert_eq!(s.snapshot().requests, 3);
        // per-bucket request attribution is unaffected
        assert_eq!(s.snapshot().buckets[0].requests, 3);
    }

    #[test]
    fn coalesce_ratio_none_before_batches() {
        assert_eq!(ModelStats::new().snapshot().coalesce_ratio(), None);
    }

    #[test]
    fn snapshot_surfaces_kernel_dispatch() {
        // Run one kernel so at least one (family × ISA) counter is
        // non-zero, then check the snapshot carries the dispatch state.
        let mut out = [0f32; 4];
        gc_microkernel::eltwise::unary(
            gc_microkernel::UnaryOp::Relu,
            &[-1.0, 1.0, -2.0, 2.0],
            &mut out,
        );
        let snap = ModelStats::new().snapshot();
        let kd = &snap.kernel_dispatch;
        assert!(["scalar", "avx2", "avx512"].contains(&kd.active.as_str()));
        assert!(!kd.counts.is_empty());
        // No assertion on off_active_calls(): shard tests in this
        // binary install per-thread ISA overrides, which legitimately
        // record calls against non-active tables.
        let shown = format!("{snap}");
        assert!(
            shown.contains(&format!("isa active={}", kd.active)),
            "{shown}"
        );
        assert!(shown.contains("kernel[eltwise x"), "{shown}");
    }

    #[test]
    fn decode_buckets_and_occupancy() {
        let s = ModelStats::new();
        // Two iterations at (cap 16, 8 rows): one full, one at 25%.
        s.record_decode_iteration(16, 8, 4, 4);
        s.record_decode_iteration(16, 8, 1, 4);
        // One iteration after sessions crossed into the 32 bucket.
        s.record_decode_iteration(32, 8, 4, 4);
        let snap = s.snapshot();
        assert_eq!(snap.decode_iterations(), 3);
        assert_eq!(snap.decode_steps(), 9);
        assert_eq!(snap.decode_coalesce_ratio(), Some(3.0));
        assert_eq!(
            snap.decode_buckets,
            vec![
                DecodeBucketSnapshot {
                    capacity: 16,
                    rows: 8,
                    iterations: 2,
                    steps: 5
                },
                DecodeBucketSnapshot {
                    capacity: 32,
                    rows: 8,
                    iterations: 1,
                    steps: 4
                },
            ]
        );
        // Full batches land in the last bin, 25% in bin 2.
        assert_eq!(snap.decode_occupancy[10], 2);
        assert_eq!(snap.decode_occupancy[2], 1);
        let shown = format!("{snap}");
        assert!(shown.contains("decode[cap    16 x    8 rows] iterations=2 steps=5"));
        assert!(shown.contains("decode coalesce=3.00"));
    }

    #[test]
    fn decode_stats_absent_from_display_when_unused() {
        let s = ModelStats::new();
        s.record_batch(4, 1, 1, 3);
        let snap = s.snapshot();
        assert_eq!(snap.decode_coalesce_ratio(), None);
        assert!(!format!("{snap}").contains("decode"));
    }

    #[test]
    fn shard_stats_fold_into_snapshot() {
        let s = ModelStats::new();
        let a = Arc::new(ShardStats::new(0, 4, "avx2", true));
        let b = Arc::new(ShardStats::new(1, 4, "scalar", false));
        s.register_shards(vec![a.clone(), b.clone()]);
        // Shard 0 ran 5 real units padded to an 8 bucket; shard 1 ran
        // 3 padded to 4 and had one job panic.
        a.record_exec(5, 8, Duration::from_micros(120));
        b.record_exec(3, 4, Duration::from_micros(90));
        b.record_panic();
        s.record_scatter(2, Duration::from_micros(15));
        let snap = s.snapshot();
        assert_eq!(snap.shards.len(), 2);
        assert_eq!(
            snap.shards[0],
            ShardSnapshot {
                id: 0,
                threads: 4,
                isa: "avx2".into(),
                pinned: true,
                batches: 1,
                units: 5,
                padded_units: 3,
                exec_us: 120,
                panics: 0,
            }
        );
        assert_eq!(snap.shards[1].isa, "scalar");
        assert_eq!(snap.shards[1].panics, 1);
        assert_eq!(snap.scattered_batches, 1);
        assert_eq!(snap.fuse_us, 15);
        let shown = format!("{snap}");
        assert!(
            shown.contains("shard[0] threads=4 isa=avx2 pinned=true"),
            "{shown}"
        );
        assert!(shown.contains("scatter batches=1 fuse=15us"), "{shown}");
    }

    #[test]
    fn whole_batch_routing_counts_fuse_but_not_scatter() {
        // A small batch routed whole to one shard still pays (tiny)
        // fuse bookkeeping but is not a scattered batch.
        let s = ModelStats::new();
        s.register_shards(vec![Arc::new(ShardStats::new(0, 2, "scalar", false))]);
        s.record_scatter(1, Duration::from_micros(2));
        let snap = s.snapshot();
        assert_eq!(snap.scattered_batches, 0);
        assert_eq!(snap.fuse_us, 2);
    }

    #[test]
    fn unsharded_snapshot_hides_shard_lines() {
        let snap = ModelStats::new().snapshot();
        assert!(snap.shards.is_empty());
        assert!(!format!("{snap}").contains("shard["));
        assert!(!format!("{snap}").contains("scatter "));
    }
}
