//! Rewriting a model graph to a different batch size.
//!
//! A loaded model is a *template* graph built at some batch size; the
//! serving runtime compiles one executable per shape bucket by
//! rebuilding the template with every variable input's leading
//! dimension scaled to the bucket's row count, then re-running shape
//! inference op by op. Constants (weights) are shared untouched, so a
//! model's buckets all reference the same weight tensors.

use crate::ServeError;
use gc_graph::{Graph, LtId, Property};
use gc_tensor::TensorDesc;
use std::collections::HashMap;

/// Validate that `g` can serve as a batch template with `units` rows:
/// at least one variable input, no runtime-constant inputs, and every
/// input's leading dimension divisible by `units`.
///
/// # Errors
///
/// Returns [`ServeError::InvalidModel`] describing the first violation.
pub fn validate_template(g: &Graph, units: usize) -> Result<(), ServeError> {
    if units == 0 {
        return Err(ServeError::InvalidModel(
            "template_units must be > 0".into(),
        ));
    }
    if g.inputs().is_empty() {
        return Err(ServeError::InvalidModel(
            "model graph has no inputs; nothing to batch".into(),
        ));
    }
    for &i in g.inputs() {
        let t = g.tensor(i);
        if t.property == Property::Constant {
            return Err(ServeError::InvalidModel(format!(
                "input {} ({}) is a runtime constant; serving runtime \
                 constants is not supported yet",
                i, t.name
            )));
        }
        let shape = t.desc.shape();
        if shape.is_empty() {
            return Err(ServeError::InvalidModel(format!(
                "input {} ({}) is rank-0; batching needs a leading batch dim",
                i, t.name
            )));
        }
        if !shape[0].is_multiple_of(units) {
            return Err(ServeError::InvalidModel(format!(
                "input {} ({}) leading dim {} is not divisible by \
                 template_units {}",
                i, t.name, shape[0], units
            )));
        }
    }
    Ok(())
}

/// Rebuild `g` with every variable input's leading dimension scaled
/// from `template_units` units to `new_units` units, re-inferring all
/// op output shapes. Constants keep their shapes and values.
///
/// # Errors
///
/// Returns an error if the template is invalid (see
/// [`validate_template`]) or shape inference rejects the scaled shapes.
pub fn rebatch(g: &Graph, template_units: usize, new_units: usize) -> Result<Graph, ServeError> {
    validate_template(g, template_units)?;
    if new_units == 0 {
        return Err(ServeError::InvalidModel("cannot rebatch to 0 units".into()));
    }
    let mut out = Graph::new();
    let mut map: HashMap<LtId, LtId> = HashMap::new();
    for &i in g.inputs() {
        let t = g.tensor(i);
        let mut shape = t.desc.shape().to_vec();
        shape[0] = shape[0] / template_units * new_units;
        let ni = out.add_input(TensorDesc::new(shape, t.desc.dtype()), &t.name);
        map.insert(i, ni);
    }
    let order = g
        .topo_order()
        .map_err(|e| ServeError::InvalidModel(format!("graph: {e}")))?;
    for id in order {
        let op = g.op(id);
        let mut ins = Vec::with_capacity(op.inputs.len());
        for &inp in &op.inputs {
            let mapped = match map.get(&inp) {
                Some(&m) => m,
                None => {
                    let t = g.tensor(inp);
                    let v = g.const_value(inp).ok_or_else(|| {
                        ServeError::InvalidModel(format!(
                            "tensor {} ({}) has no producer and no constant value",
                            inp, t.name
                        ))
                    })?;
                    let c = out.add_constant(v.clone(), &t.name);
                    map.insert(inp, c);
                    c
                }
            };
            ins.push(mapped);
        }
        let new_out = out
            .add_op(op.kind.clone(), &ins)
            .map_err(|e| ServeError::InvalidModel(format!("rebatch {}: {e}", op.kind)))?;
        map.insert(op.outputs[0], new_out);
    }
    for &o in g.outputs() {
        let mapped = *map.get(&o).ok_or_else(|| {
            ServeError::InvalidModel(format!("output {o} is neither produced nor an input"))
        })?;
        out.mark_output(mapped);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gc_graph::{OpKind, UnaryKind};
    use gc_tensor::{DataType, Tensor};

    fn mlp(batch: usize) -> Graph {
        let mut g = Graph::new();
        let x = g.add_input(TensorDesc::new([batch, 8], DataType::F32), "x");
        let w = g.add_constant(Tensor::random(&[8, 4], DataType::F32, 7), "w");
        let y = g.add_op(OpKind::MatMul, &[x, w]).unwrap();
        let z = g.add_op(OpKind::Unary(UnaryKind::Relu), &[y]).unwrap();
        g.mark_output(z);
        g
    }

    #[test]
    fn scales_input_and_output() {
        let g = mlp(4);
        let r = rebatch(&g, 4, 16).unwrap();
        assert_eq!(r.desc(r.inputs()[0]).shape(), &[16, 8]);
        assert_eq!(r.desc(r.outputs()[0]).shape(), &[16, 4]);
        r.validate().unwrap();
    }

    #[test]
    fn constants_are_preserved() {
        let g = mlp(4);
        let r = rebatch(&g, 4, 8).unwrap();
        let w_orig = g.const_value(gc_graph::LtId(1)).unwrap();
        // rebatched graph: t0 = input x, t1 = first-use constant w
        let w_new = r.const_value(gc_graph::LtId(1)).unwrap();
        assert_eq!(w_orig.f32_slice().unwrap(), w_new.f32_slice().unwrap());
    }

    #[test]
    fn fingerprints_differ_per_bucket_but_agree_per_size() {
        let g = mlp(4);
        let a = crate::hash::graph_fingerprint(&rebatch(&g, 4, 8).unwrap()).unwrap();
        let b = crate::hash::graph_fingerprint(&rebatch(&g, 4, 16).unwrap()).unwrap();
        let a2 = crate::hash::graph_fingerprint(&rebatch(&g, 4, 8).unwrap()).unwrap();
        assert_ne!(a, b);
        assert_eq!(a, a2);
    }

    #[test]
    fn rejects_runtime_constant_inputs() {
        let mut g = Graph::new();
        let x = g.add_input(TensorDesc::new([4, 8], DataType::F32), "x");
        let w = g.add_runtime_constant(TensorDesc::new([8, 4], DataType::F32), "w");
        let y = g.add_op(OpKind::MatMul, &[x, w]).unwrap();
        g.mark_output(y);
        assert!(matches!(
            rebatch(&g, 4, 8),
            Err(ServeError::InvalidModel(_))
        ));
    }

    #[test]
    fn rejects_indivisible_units() {
        let g = mlp(4);
        assert!(rebatch(&g, 3, 6).is_err());
    }
}
