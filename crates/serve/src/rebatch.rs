//! Rewriting a model graph to a different batch size.
//!
//! A loaded model is a *template* graph built at some batch size; the
//! serving runtime compiles one executable per shape bucket by
//! rebuilding the template with every variable input's leading
//! dimension scaled to the bucket's row count, then re-running shape
//! inference op by op. Constants (weights) are shared untouched, so a
//! model's buckets all reference the same weight tensors.

use crate::ServeError;
use gc_graph::{Graph, LtId, OpKind, Property};
use gc_tensor::TensorDesc;
use std::collections::{HashMap, HashSet};

/// Validate that `g` can serve as a batch template with `units` rows:
/// at least one variable input, no runtime-constant inputs, every
/// input's leading dimension divisible by `units`, and every op
/// row-independent along the batch dimension (see
/// [`check_row_independence`]).
///
/// # Errors
///
/// Returns [`ServeError::InvalidModel`] describing the first violation.
pub fn validate_template(g: &Graph, units: usize) -> Result<(), ServeError> {
    if units == 0 {
        return Err(ServeError::InvalidModel(
            "template_units must be > 0".into(),
        ));
    }
    if g.inputs().is_empty() {
        return Err(ServeError::InvalidModel(
            "model graph has no inputs; nothing to batch".into(),
        ));
    }
    for &i in g.inputs() {
        let t = g.tensor(i);
        if t.property == Property::Constant {
            return Err(ServeError::InvalidModel(format!(
                "input {} ({}) is a runtime constant; serving runtime \
                 constants is not supported yet",
                i, t.name
            )));
        }
        let shape = t.desc.shape();
        if shape.is_empty() {
            return Err(ServeError::InvalidModel(format!(
                "input {} ({}) is rank-0; batching needs a leading batch dim",
                i, t.name
            )));
        }
        if !shape[0].is_multiple_of(units) {
            return Err(ServeError::InvalidModel(format!(
                "input {} ({}) leading dim {} is not divisible by \
                 template_units {}",
                i, t.name, shape[0], units
            )));
        }
    }
    check_row_independence(g)
}

/// Verify that batching `g` along dim 0 is sound: concatenating
/// requests' rows, executing once, and slicing output rows back out
/// must give each request exactly what it would get alone.
///
/// The check tracks which tensors *derive from the batch dimension*
/// (carry it at dim 0) — every variable input does, and ops propagate
/// the property to their outputs — and rejects any use that could mix
/// rows across requests:
///
/// - a batch-derived rank-2 matmul RHS (the contraction would run
///   *over* the batch, e.g. `x @ transpose(x)`); rank ≥ 3 is fine —
///   the leading axes are per-slice;
/// - a rank-2 transpose of a batch-derived tensor (moves the batch off
///   dim 0);
/// - a reduction or softmax over a rank-1 batch-derived tensor (the
///   last axis *is* the batch);
/// - a batch-derived broadcast operand of lower rank than the other
///   side (right-alignment would put the batch on a trailing axis);
/// - a batch-derived bias or normalization statistic (applied across
///   the channel axis, not per row);
/// - a reorder whose target layout blocks axis 0 (rows would
///   interleave in storage, breaking the flat row scatter).
///
/// Finally, every graph output must itself derive from the batch
/// dimension, or its rows could not be scattered back per request.
///
/// # Errors
///
/// Returns [`ServeError::InvalidModel`] naming the offending op.
pub fn check_row_independence(g: &Graph) -> Result<(), ServeError> {
    let order = g
        .topo_order()
        .map_err(|e| ServeError::InvalidModel(format!("graph: {e}")))?;
    let mut batched: HashSet<LtId> = g.inputs().iter().copied().collect();
    for id in order {
        let op = g.op(id);
        let b = |i: usize| op.inputs.get(i).is_some_and(|lt| batched.contains(lt));
        let rank = |i: usize| g.desc(op.inputs[i]).shape().len();
        let mix = |why: &str| {
            Err(ServeError::InvalidModel(format!(
                "op {} is not row-independent along the batch dim: {why}",
                op.kind
            )))
        };
        let out_batched = match &op.kind {
            OpKind::MatMul | OpKind::QuantizedMatMul { .. } => {
                if b(1) && rank(1) == 2 {
                    return mix("its RHS derives from the batch dimension, so the \
                         contraction would mix rows across requests");
                }
                b(0) || b(1)
            }
            OpKind::Unary(_)
            | OpKind::Quantize { .. }
            | OpKind::Dequantize { .. }
            | OpKind::TypeCast { .. } => b(0),
            OpKind::Binary(_) => {
                if b(1) && rank(1) < rank(0) {
                    return mix("its broadcast operand derives from the batch \
                         dimension but right-aligns it onto a trailing axis");
                }
                b(0) || b(1)
            }
            OpKind::Reduce(_) => {
                if b(0) && rank(0) == 1 {
                    return mix("it reduces over the batch dimension");
                }
                b(0)
            }
            OpKind::Softmax => {
                if b(0) && rank(0) == 1 {
                    return mix("it normalizes over the batch dimension");
                }
                b(0)
            }
            OpKind::KvAppend | OpKind::DecodeAttention => {
                // Shape inference pins every operand to rank 3 with a
                // shared leading axis, and both ops work slice-wise
                // along it: each batch entry's cache/query only meets
                // that entry's operands.
                (0..op.inputs.len()).any(b)
            }
            OpKind::Transpose => {
                if b(0) && rank(0) == 2 {
                    return mix("it moves the batch dimension off dim 0");
                }
                b(0)
            }
            OpKind::Reorder { target } => {
                if b(0) && target.block_of(0).is_some() {
                    return mix("its target layout blocks the batch dimension, \
                         interleaving rows in storage");
                }
                b(0)
            }
            OpKind::BatchNormInference { .. } => {
                if (1..op.inputs.len()).any(b) {
                    return mix("its normalization statistics derive from the batch \
                         dimension");
                }
                b(0)
            }
            OpKind::BiasAdd => {
                if b(1) {
                    return mix("its bias derives from the batch dimension");
                }
                b(0)
            }
        };
        if out_batched {
            batched.insert(op.outputs[0]);
        }
    }
    for &o in g.outputs() {
        if !batched.contains(&o) {
            let t = g.tensor(o);
            return Err(ServeError::InvalidModel(format!(
                "output {} ({}) does not derive from the batch dimension; \
                 its rows cannot be scattered back per request",
                o, t.name
            )));
        }
    }
    Ok(())
}

/// Rebuild `g` with every variable input's leading dimension scaled
/// from `template_units` units to `new_units` units, re-inferring all
/// op output shapes. Constants keep their shapes and values.
///
/// # Errors
///
/// Returns an error if the template is invalid (see
/// [`validate_template`]) or shape inference rejects the scaled shapes.
pub fn rebatch(g: &Graph, template_units: usize, new_units: usize) -> Result<Graph, ServeError> {
    validate_template(g, template_units)?;
    if new_units == 0 {
        return Err(ServeError::InvalidModel("cannot rebatch to 0 units".into()));
    }
    let mut out = Graph::new();
    let mut map: HashMap<LtId, LtId> = HashMap::new();
    for &i in g.inputs() {
        let t = g.tensor(i);
        let mut shape = t.desc.shape().to_vec();
        shape[0] = shape[0] / template_units * new_units;
        let ni = out.add_input(TensorDesc::new(shape, t.desc.dtype()), &t.name);
        map.insert(i, ni);
    }
    let order = g
        .topo_order()
        .map_err(|e| ServeError::InvalidModel(format!("graph: {e}")))?;
    for id in order {
        let op = g.op(id);
        let mut ins = Vec::with_capacity(op.inputs.len());
        for &inp in &op.inputs {
            let mapped = match map.get(&inp) {
                Some(&m) => m,
                None => {
                    let t = g.tensor(inp);
                    let v = g.const_value(inp).ok_or_else(|| {
                        ServeError::InvalidModel(format!(
                            "tensor {} ({}) has no producer and no constant value",
                            inp, t.name
                        ))
                    })?;
                    let c = out.add_constant(v.clone(), &t.name);
                    map.insert(inp, c);
                    c
                }
            };
            ins.push(mapped);
        }
        let new_out = out
            .add_op(op.kind.clone(), &ins)
            .map_err(|e| ServeError::InvalidModel(format!("rebatch {}: {e}", op.kind)))?;
        map.insert(op.outputs[0], new_out);
    }
    for &o in g.outputs() {
        let mapped = *map.get(&o).ok_or_else(|| {
            ServeError::InvalidModel(format!("output {o} is neither produced nor an input"))
        })?;
        out.mark_output(mapped);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gc_graph::{OpKind, UnaryKind};
    use gc_tensor::{DataType, Tensor};

    fn mlp(batch: usize) -> Graph {
        let mut g = Graph::new();
        let x = g.add_input(TensorDesc::new([batch, 8], DataType::F32), "x");
        let w = g.add_constant(Tensor::random(&[8, 4], DataType::F32, 7), "w");
        let y = g.add_op(OpKind::MatMul, &[x, w]).unwrap();
        let z = g.add_op(OpKind::Unary(UnaryKind::Relu), &[y]).unwrap();
        g.mark_output(z);
        g
    }

    #[test]
    fn scales_input_and_output() {
        let g = mlp(4);
        let r = rebatch(&g, 4, 16).unwrap();
        assert_eq!(r.desc(r.inputs()[0]).shape(), &[16, 8]);
        assert_eq!(r.desc(r.outputs()[0]).shape(), &[16, 4]);
        r.validate().unwrap();
    }

    #[test]
    fn constants_are_preserved() {
        let g = mlp(4);
        let r = rebatch(&g, 4, 8).unwrap();
        let w_orig = g.const_value(gc_graph::LtId(1)).unwrap();
        // rebatched graph: t0 = input x, t1 = first-use constant w
        let w_new = r.const_value(gc_graph::LtId(1)).unwrap();
        assert_eq!(w_orig.f32_slice().unwrap(), w_new.f32_slice().unwrap());
    }

    #[test]
    fn fingerprints_differ_per_bucket_but_agree_per_size() {
        let g = mlp(4);
        let a = crate::hash::graph_fingerprint(&rebatch(&g, 4, 8).unwrap()).unwrap();
        let b = crate::hash::graph_fingerprint(&rebatch(&g, 4, 16).unwrap()).unwrap();
        let a2 = crate::hash::graph_fingerprint(&rebatch(&g, 4, 8).unwrap()).unwrap();
        assert_ne!(a, b);
        assert_eq!(a, a2);
    }

    #[test]
    fn rejects_runtime_constant_inputs() {
        let mut g = Graph::new();
        let x = g.add_input(TensorDesc::new([4, 8], DataType::F32), "x");
        let w = g.add_runtime_constant(TensorDesc::new([8, 4], DataType::F32), "w");
        let y = g.add_op(OpKind::MatMul, &[x, w]).unwrap();
        g.mark_output(y);
        assert!(matches!(
            rebatch(&g, 4, 8),
            Err(ServeError::InvalidModel(_))
        ));
    }

    #[test]
    fn rejects_indivisible_units() {
        let g = mlp(4);
        assert!(rebatch(&g, 3, 6).is_err());
    }

    #[test]
    fn rejects_transpose_that_moves_the_batch() {
        // x @ transpose(x) -> [B, B]: every output row reads every
        // request's rows.
        let mut g = Graph::new();
        let x = g.add_input(TensorDesc::new([4, 8], DataType::F32), "x");
        let xt = g.add_op(OpKind::Transpose, &[x]).unwrap();
        let y = g.add_op(OpKind::MatMul, &[x, xt]).unwrap();
        g.mark_output(y);
        assert!(matches!(
            validate_template(&g, 4),
            Err(ServeError::InvalidModel(_))
        ));
    }

    #[test]
    fn rejects_batch_derived_matmul_rhs() {
        // x @ x with square x: the contraction runs over the batch.
        let mut g = Graph::new();
        let x = g.add_input(TensorDesc::new([4, 4], DataType::F32), "x");
        let y = g.add_op(OpKind::MatMul, &[x, x]).unwrap();
        g.mark_output(y);
        assert!(validate_template(&g, 4).is_err());
    }

    #[test]
    fn rejects_reduce_over_rank1_batch() {
        let mut g = Graph::new();
        let x = g.add_input(TensorDesc::new([4], DataType::F32), "x");
        let y = g
            .add_op(OpKind::Reduce(gc_graph::ReduceKind::Sum), &[x])
            .unwrap();
        g.mark_output(y);
        assert!(validate_template(&g, 4).is_err());
    }

    #[test]
    fn rejects_batch_derived_broadcast_operand() {
        // v's batch dim would right-align onto x's trailing axis.
        let mut g = Graph::new();
        let x = g.add_input(TensorDesc::new([4, 4], DataType::F32), "x");
        let v = g.add_input(TensorDesc::new([4], DataType::F32), "v");
        let y = g
            .add_op(OpKind::Binary(gc_graph::BinaryKind::Add), &[x, v])
            .unwrap();
        g.mark_output(y);
        assert!(validate_template(&g, 4).is_err());
    }

    #[test]
    fn rejects_output_not_derived_from_batch() {
        let mut g = Graph::new();
        let x = g.add_input(TensorDesc::new([4, 8], DataType::F32), "x");
        let r = g.add_op(OpKind::Unary(UnaryKind::Relu), &[x]).unwrap();
        let w1 = g.add_constant(Tensor::random(&[8, 8], DataType::F32, 1), "w1");
        let w2 = g.add_constant(Tensor::random(&[8, 8], DataType::F32, 2), "w2");
        let c = g.add_op(OpKind::MatMul, &[w1, w2]).unwrap();
        g.mark_output(r);
        g.mark_output(c);
        assert!(validate_template(&g, 4).is_err());
    }

    #[test]
    fn accepts_per_slice_rank3_transpose_and_matmul() {
        // Last-two-axes ops leave a rank-3 leading batch axis alone.
        let mut g = Graph::new();
        let x = g.add_input(TensorDesc::new([4, 2, 3], DataType::F32), "x");
        let xt = g.add_op(OpKind::Transpose, &[x]).unwrap(); // [4, 3, 2]
        let y = g.add_op(OpKind::MatMul, &[x, xt]).unwrap(); // [4, 2, 2]
        g.mark_output(y);
        validate_template(&g, 4).unwrap();
    }
}
