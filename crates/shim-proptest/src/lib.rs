//! Offline drop-in for the subset of the `proptest` 1.x API this
//! workspace uses. The build container has no crates.io access, so the
//! real crate cannot be fetched; this shim keeps the `proptest!` test
//! suites compiling and running.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! - sampling is plain deterministic pseudo-random (seeded from the test
//!   name), with no shrinking of failing cases;
//! - `prop_assume!` skips the case instead of drawing a replacement;
//! - regression files (`*.proptest-regressions`) are ignored.
//!
//! Failing cases print every sampled argument, which substitutes for
//! shrinking well enough at these input sizes.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Everything a `proptest!` test file needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest, Just,
        ProptestConfig, Strategy, TestCaseError, TestRng,
    };
    /// Mirror of proptest's `prop` module path for `prop::collection`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::{Strategy, TestRng};

    /// Strategy producing `Vec`s with lengths drawn from `len` and
    /// elements from `elem`.
    pub fn vec<S: Strategy>(elem: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        elem: S,
        len: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.below(self.len.start as u64, self.len.end as u64) as usize;
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// Deterministic SplitMix64 generator driving all sampling.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from an arbitrary byte string (the test name).
    pub fn from_name(name: &str) -> TestRng {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[lo, hi)` (`hi > lo`).
    pub fn below(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(hi > lo);
        lo + self.next_u64() % (hi - lo)
    }

    /// Uniform signed in `[lo, hi]`.
    pub fn below_i(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(hi >= lo);
        let span = (hi - lo) as u64 + 1;
        lo + (self.next_u64() % span) as i64
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Map the generated value (subset of proptest's combinator).
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// Strategy returning a fixed value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                rng.below_i(self.start as i64, self.end as i64 - 1) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.below_i(*self.start() as i64, *self.end() as i64) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, i8, u16, i16, u32, i32, i64, usize);

impl Strategy for Range<u64> {
    type Value = u64;
    fn sample(&self, rng: &mut TestRng) -> u64 {
        rng.below(self.start, self.end)
    }
}

impl Strategy for RangeInclusive<u64> {
    type Value = u64;
    fn sample(&self, rng: &mut TestRng) -> u64 {
        rng.below(
            *self.start(),
            self.end().wrapping_add(1).max(*self.start() + 1),
        )
    }
}

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                self.start + (self.end - self.start) * rng.unit_f64() as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                self.start() + (self.end() - self.start()) * rng.unit_f64() as $t
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

/// `any::<T>()` support.
pub trait Arbitrary: Sized {
    /// Strategy type for `T`.
    type Strategy: Strategy<Value = Self>;
    /// The canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Strategy for all values of a type with a small canonical domain.
#[derive(Debug, Clone, Copy, Default)]
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl Strategy for AnyStrategy<bool> {
    type Value = bool;
    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyStrategy<bool>;
    fn arbitrary() -> Self::Strategy {
        AnyStrategy(std::marker::PhantomData)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Strategy for AnyStrategy<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyStrategy<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyStrategy(std::marker::PhantomData)
            }
        }
    )*};
}

impl_arbitrary_int!(u8, i8, u16, i16, u32, i32, u64, i64, usize, isize);

/// The strategy generating every value of `T` (subset of types).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Weighted union built by `prop_oneof!`.
pub struct OneOf<V> {
    options: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> OneOf<V> {
    /// Build from boxed options (used by the macro).
    pub fn new(options: Vec<Box<dyn Strategy<Value = V>>>) -> OneOf<V> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        OneOf { options }
    }
}

impl<V> Strategy for OneOf<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        let i = rng.below(0, self.options.len() as u64) as usize;
        self.options[i].sample(rng)
    }
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject(String),
    /// `prop_assert*!` failed; the test fails.
    Fail(String),
}

/// Runner configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }

    /// Cases to actually run: the configured count, capped by the
    /// `PROPTEST_CASES` environment variable when it is set. Lets CI
    /// bound the cost of every property suite with one knob without
    /// editing per-test configs.
    pub fn effective_cases(&self) -> u32 {
        match std::env::var("PROPTEST_CASES") {
            Ok(v) => match v.trim().parse::<u32>() {
                Ok(cap) => self.cases.min(cap.max(1)),
                Err(_) => self.cases,
            },
            Err(_) => self.cases,
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// Assert inside a `proptest!` body (fails the case, not the process).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Equality assert inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)*);
    }};
}

/// Inequality assert inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} == {:?}", a, b);
    }};
}

/// Skip the case when the sampled inputs are not interesting.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Box a strategy, letting inference unify `Value` across `prop_oneof!`
/// branches (a plain `as` cast would default integer literals too early).
#[doc(hidden)]
pub fn __box_strategy<V, S>(s: S) -> Box<dyn Strategy<Value = V>>
where
    S: Strategy<Value = V> + 'static,
{
    Box::new(s)
}

/// Union of strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![
            $($crate::__box_strategy($strategy)),+
        ])
    };
}

/// Define property tests. Supports the subset
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(24))]
///     #[test]
///     fn name(x in 0usize..8, flag in any::<bool>()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let cases = cfg.effective_cases();
            let mut rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            let mut ran = 0u32;
            let mut attempts = 0u32;
            while ran < cases && attempts < cases * 16 {
                attempts += 1;
                $(let $arg = $crate::Strategy::sample(&{ $strategy }, &mut rng);)+
                let result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                })();
                match result {
                    ::std::result::Result::Ok(()) => { ran += 1; }
                    ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest case failed: {}\n  inputs: {}",
                            msg,
                            vec![$(format!("{} = {:?}", stringify!($arg), $arg)),+].join(", "),
                        );
                    }
                }
            }
        }
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_in_bounds(x in 1usize..=8, y in 0u64..1000, f in 0.25f32..4.0) {
            prop_assert!((1..=8).contains(&x));
            prop_assert!(y < 1000);
            prop_assert!((0.25..4.0).contains(&f));
        }

        #[test]
        fn oneof_and_any(d in prop_oneof![1usize..=4, Just(13)], b in any::<bool>()) {
            prop_assert!(d <= 4 || d == 13);
            let _ = b;
        }

        #[test]
        fn assume_skips(x in 0usize..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case failed")]
    fn failures_report_inputs() {
        proptest! {
            fn inner(x in 0usize..4) {
                prop_assert!(x > 100, "x too small: {}", x);
            }
        }
        inner();
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::from_name("t");
        let mut b = TestRng::from_name("t");
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
    }
}
