//! Ad-hoc breakdown of steady-state execute() time for MLP_1 b1.
//! Run: cargo run --release -p gc-bench --example profile_plan

use gc_bench::workloads::{self, random_inputs};
use gc_core::{CompileOptions, Compiler};
use gc_machine::MachineDescriptor;
use std::time::Instant;

fn main() {
    let graph = workloads::mlp_f32(1, &workloads::mlp1_layers(), 1);
    let inputs = random_inputs(&graph, 3);

    // per-main-call breakdown on the raw plan path (zero weights; same
    // compute shape)
    {
        let mut opts = CompileOptions::new(MachineDescriptor::xeon_8358());
        opts.threads = Some(1);
        let exe = Compiler::new(opts).compile(graph.clone()).expect("compile");
        let module = exe.executable().module();
        let plan = gc_tir::compile_module(module, 1);
        let pool = gc_runtime::ThreadPool::new(1);
        let mut globals: Vec<gc_tensor::Storage> = module
            .globals
            .iter()
            .map(|g| gc_tensor::Storage::zeros(g.dtype, g.elems))
            .collect();
        let mut scratch = gc_tir::plan::PlanScratch::for_plan(&plan);
        for call in &module.main_calls {
            gc_tir::plan::run_plan_call(
                &plan,
                call.func,
                &call.args,
                &mut globals,
                &pool,
                &mut scratch,
            );
        }
        let n = 2000;
        for call in &module.main_calls {
            let t0 = Instant::now();
            for _ in 0..n {
                gc_tir::plan::run_plan_call(
                    &plan,
                    call.func,
                    &call.args,
                    &mut globals,
                    &pool,
                    &mut scratch,
                );
            }
            let per = t0.elapsed() / n;
            let f = &module.funcs[call.func];
            println!(
                "  func {:<28} {:>10?}/call  locals={}B",
                f.name,
                per,
                f.local_bytes()
            );
        }
    }
    for threads in [1usize, 4] {
        for interpret in [false, true] {
            let mut opts = CompileOptions::new(MachineDescriptor::xeon_8358());
            opts.threads = Some(threads);
            opts.interpret = interpret;
            let exe = Compiler::new(opts).compile(graph.clone()).expect("compile");
            exe.execute(&inputs).expect("warm-up");
            let n = 2000;
            let t0 = Instant::now();
            for _ in 0..n {
                exe.execute(&inputs).expect("exec");
            }
            let per = t0.elapsed() / n;
            println!(
                "t{threads} interpret={interpret}: {:?}/call   stats={:?}",
                per,
                exe.executable().plan_stats()
            );
        }
    }
}
