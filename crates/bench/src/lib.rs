//! Benchmark harness for the oneDNN Graph Compiler reproduction.
//!
//! Provides the Table-1 workload generators ([`workloads`]) and the
//! experiment drivers ([`experiments`]) that regenerate every figure of
//! the paper's evaluation: Figure 7 (individual matmul vs primitives)
//! and Figure 8 (MLP / MHA subgraphs across the three settings).

#![warn(missing_docs)]

pub mod experiments;
pub mod workloads;
