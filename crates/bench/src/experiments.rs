//! Experiment drivers regenerating the paper's figures.
//!
//! Each driver returns structured rows; the `fig7` / `fig8` / ablation
//! binaries print them as the tables behind the paper's plots. Two
//! numbers are reported per configuration:
//!
//! - **projected ms** — cycles from the machine-model projector
//!   (32-core Xeon 8358), the primary, paper-shape-comparable series;
//! - **wall ms** — measured on this host (secondary; the host has
//!   neither 32 cores nor AVX-512).

use crate::workloads::{self, random_inputs, MhaConfig, Precision};
use gc_baseline::{Baseline, BaselineOptions};
use gc_core::{CompileOptions, CompiledPartition, Compiler};
use gc_graph::Graph;
use gc_machine::MachineDescriptor;
use gc_tensor::Tensor;
use std::time::Instant;

/// Which optimization setting a measurement used (the three bars of
/// Figure 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Setting {
    /// oneDNN-primitives-style baseline.
    Baseline,
    /// Compiler with coarse-grain fusion disabled (the "middle"
    /// setting).
    NoCoarse,
    /// Full compiler.
    Full,
}

impl std::fmt::Display for Setting {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Setting::Baseline => f.write_str("baseline"),
            Setting::NoCoarse => f.write_str("no-coarse"),
            Setting::Full => f.write_str("full"),
        }
    }
}

/// One measured configuration.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Projected milliseconds on the target machine.
    pub projected_ms: f64,
    /// Median wall milliseconds on the host.
    pub wall_ms: f64,
    /// Barriers per execution.
    pub barriers: u64,
    /// Framework dispatches per execution.
    pub dispatches: usize,
}

/// A Figure-8 style row: one workload/batch/precision across the three
/// settings.
#[derive(Debug, Clone)]
pub struct Fig8Row {
    /// Workload name (MLP_1, MHA_3, ...).
    pub workload: String,
    /// Batch size.
    pub batch: usize,
    /// Precision.
    pub precision: Precision,
    /// Baseline measurement.
    pub baseline: Measurement,
    /// Compiler without coarse-grain fusion.
    pub no_coarse: Measurement,
    /// Full compiler.
    pub full: Measurement,
}

impl Fig8Row {
    /// Full-compiler speedup over the baseline (projected).
    pub fn speedup_full(&self) -> f64 {
        self.baseline.projected_ms / self.full.projected_ms
    }

    /// Middle-setting speedup over the baseline (projected).
    pub fn speedup_no_coarse(&self) -> f64 {
        self.baseline.projected_ms / self.no_coarse.projected_ms
    }
}

/// A Figure-7 row: one individual matmul, compiler vs baseline.
#[derive(Debug, Clone)]
pub struct Fig7Row {
    /// Problem label.
    pub name: String,
    /// Rows, columns, reduction.
    pub mnk: (usize, usize, usize),
    /// Precision.
    pub precision: Precision,
    /// Compiler-generated kernel.
    pub compiler: Measurement,
    /// Expert-tuned primitive.
    pub baseline: Measurement,
}

impl Fig7Row {
    /// Compiler speedup over the primitive (projected).
    pub fn speedup(&self) -> f64 {
        self.baseline.projected_ms / self.compiler.projected_ms
    }
}

/// Harness configuration.
#[derive(Debug, Clone)]
pub struct Harness {
    /// Target machine for projection and heuristics.
    pub machine: MachineDescriptor,
    /// Worker threads for wall-clock runs.
    pub threads: Option<usize>,
    /// Wall-clock repetitions (median taken).
    pub reps: usize,
    /// Skip wall measurement for problems above this many MACs
    /// (projection still runs).
    pub wall_flop_cap: f64,
}

impl Default for Harness {
    fn default() -> Self {
        Harness {
            machine: MachineDescriptor::xeon_8358(),
            threads: None,
            reps: 3,
            wall_flop_cap: 1.2e10,
        }
    }
}

impl Harness {
    /// A faster harness for CI / quick runs.
    pub fn quick() -> Self {
        Harness {
            reps: 1,
            wall_flop_cap: 5e9,
            ..Harness::default()
        }
    }

    fn compile(&self, setting: Setting, graph: Graph) -> CompiledOrBaseline {
        match setting {
            Setting::Baseline => {
                let mut o = BaselineOptions::new(self.machine.clone());
                o.threads = self.threads;
                CompiledOrBaseline::Baseline(Baseline::new(o).build(graph).expect("baseline build"))
            }
            Setting::NoCoarse => {
                let mut o = CompileOptions::without_coarse_fusion(self.machine.clone());
                o.threads = self.threads;
                CompiledOrBaseline::Compiled(
                    Compiler::new(o).compile(graph).expect("compile no-coarse"),
                )
            }
            Setting::Full => {
                let mut o = CompileOptions::new(self.machine.clone());
                o.threads = self.threads;
                CompiledOrBaseline::Compiled(Compiler::new(o).compile(graph).expect("compile"))
            }
        }
    }

    /// Measure one graph under one setting.
    pub fn measure(&self, setting: Setting, graph: Graph, flops: f64, seed: u64) -> Measurement {
        // (graph is cloned for input generation when wall runs happen)
        let exe = self.compile(setting, graph.clone());
        let mut walls = vec![0.0f64];
        let mut barriers = 0;
        // very large problems are projection-only (the host is a single
        // interpreting core; wall time there carries no signal)
        if flops <= self.wall_flop_cap {
            let inputs = random_inputs(&graph, seed);
            exe.execute(&inputs); // warm the constant cache
            walls.clear();
            let reps = if flops > self.wall_flop_cap / 4.0 {
                1
            } else {
                self.reps
            };
            for _ in 0..reps {
                let t0 = Instant::now();
                barriers = exe.execute(&inputs);
                walls.push(t0.elapsed().as_secs_f64() * 1e3);
            }
            walls.sort_by(f64::total_cmp);
        }
        let cycles = exe.project_cycles();
        Measurement {
            projected_ms: self.machine.cycles_to_ms(cycles),
            wall_ms: walls[walls.len() / 2],
            barriers,
            dispatches: exe.dispatches(),
        }
    }

    /// Figure 7: every individual MLP matmul, compiler vs primitives.
    pub fn fig7(&self, precision: Precision) -> Vec<Fig7Row> {
        let mut rows = Vec::new();
        for (name, m, n, k) in workloads::fig7_problems() {
            let flops = 2.0 * (m * n * k) as f64;
            let g = workloads::single_matmul(m, n, k, precision, 1);
            let compiler = self.measure(Setting::Full, g, flops, 5);
            let g = workloads::single_matmul(m, n, k, precision, 1);
            let baseline = self.measure(Setting::Baseline, g, flops, 5);
            rows.push(Fig7Row {
                name,
                mnk: (m, n, k),
                precision,
                compiler,
                baseline,
            });
        }
        rows
    }

    /// Figure 8, MLP half: both MLP workloads × batch sizes.
    pub fn fig8_mlp(&self, precision: Precision, quick: bool) -> Vec<Fig8Row> {
        let batches = if quick {
            vec![32, 512]
        } else {
            workloads::mlp_batch_sizes()
        };
        let mut rows = Vec::new();
        for (wl, layers) in [
            ("MLP_1", workloads::mlp1_layers()),
            ("MLP_2", workloads::mlp2_layers()),
        ] {
            for &batch in &batches {
                let flops: f64 = layers
                    .windows(2)
                    .map(|w| 2.0 * (batch * w[0] * w[1]) as f64)
                    .sum();
                let build = || match precision {
                    Precision::F32 => workloads::mlp_f32(batch, &layers, 1),
                    Precision::Int8 => workloads::mlp_int8(batch, &layers, 1),
                };
                rows.push(Fig8Row {
                    workload: wl.to_string(),
                    batch,
                    precision,
                    baseline: self.measure(Setting::Baseline, build(), flops, 7),
                    no_coarse: self.measure(Setting::NoCoarse, build(), flops, 7),
                    full: self.measure(Setting::Full, build(), flops, 7),
                });
            }
        }
        rows
    }

    /// Figure 8, MHA half: the four MHA configs × batch sizes.
    pub fn fig8_mha(&self, precision: Precision, quick: bool) -> Vec<Fig8Row> {
        let configs = workloads::mha_configs();
        let configs: Vec<MhaConfig> = if quick {
            configs.into_iter().take(2).collect()
        } else {
            configs
        };
        let batches = if quick {
            vec![32]
        } else {
            workloads::mha_batch_sizes()
        };
        let mut rows = Vec::new();
        for cfg in &configs {
            for &batch in &batches {
                let d = cfg.hidden / cfg.heads;
                let bh = batch * cfg.heads;
                let flops = 2.0 * 2.0 * (bh * cfg.seq * cfg.seq * d) as f64;
                let build = || match precision {
                    Precision::F32 => workloads::mha_f32(batch, cfg).0,
                    Precision::Int8 => workloads::mha_int8(batch, cfg).0,
                };
                rows.push(Fig8Row {
                    workload: cfg.name.to_string(),
                    batch,
                    precision,
                    baseline: self.measure(Setting::Baseline, build(), flops, 9),
                    no_coarse: self.measure(Setting::NoCoarse, build(), flops, 9),
                    full: self.measure(Setting::Full, build(), flops, 9),
                });
            }
        }
        rows
    }
}

enum CompiledOrBaseline {
    Compiled(CompiledPartition),
    Baseline(gc_baseline::BaselineExecutable),
}

impl CompiledOrBaseline {
    fn execute(&self, inputs: &[Tensor]) -> u64 {
        match self {
            CompiledOrBaseline::Compiled(c) => c.execute(inputs).expect("exec").1.barriers,
            CompiledOrBaseline::Baseline(b) => b.execute(inputs).expect("exec").1.barriers,
        }
    }

    fn project_cycles(&self) -> f64 {
        match self {
            CompiledOrBaseline::Compiled(c) => c.project().cycles,
            CompiledOrBaseline::Baseline(b) => b.project().cycles,
        }
    }

    fn dispatches(&self) -> usize {
        match self {
            CompiledOrBaseline::Compiled(c) => c.executable().dispatch_count(),
            CompiledOrBaseline::Baseline(b) => b.executable().dispatch_count(),
        }
    }
}

/// Geometric mean of an iterator of positive ratios.
pub fn geomean(xs: impl IntoIterator<Item = f64>) -> f64 {
    let (mut log_sum, mut n) = (0.0f64, 0usize);
    for x in xs {
        log_sum += x.ln();
        n += 1;
    }
    if n == 0 {
        return 1.0;
    }
    (log_sum / n as f64).exp()
}

/// Format the Fig-8 rows as an aligned text table.
pub fn format_fig8(rows: &[Fig8Row]) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:<8} {:>5} {:>5} | {:>12} {:>12} {:>12} | {:>8} {:>8} | {:>10} {:>10}",
        "workload",
        "batch",
        "dtype",
        "base(ms)",
        "no-coarse",
        "full(ms)",
        "spd-nc",
        "spd-full",
        "wall-base",
        "wall-full"
    );
    for r in rows {
        let _ = writeln!(
            s,
            "{:<8} {:>5} {:>5} | {:>12.4} {:>12.4} {:>12.4} | {:>7.2}x {:>7.2}x | {:>10.3} {:>10.3}",
            r.workload,
            r.batch,
            r.precision.to_string(),
            r.baseline.projected_ms,
            r.no_coarse.projected_ms,
            r.full.projected_ms,
            r.speedup_no_coarse(),
            r.speedup_full(),
            r.baseline.wall_ms,
            r.full.wall_ms,
        );
    }
    let _ = writeln!(
        s,
        "geomean speedup: no-coarse {:.2}x, full {:.2}x (projected); wall full {:.2}x",
        geomean(rows.iter().map(Fig8Row::speedup_no_coarse)),
        geomean(rows.iter().map(Fig8Row::speedup_full)),
        geomean(
            rows.iter()
                .filter(|r| r.baseline.wall_ms > 0.0 && r.full.wall_ms > 0.0)
                .map(|r| r.baseline.wall_ms / r.full.wall_ms),
        ),
    );
    s
}

/// Format the Fig-7 rows as an aligned text table.
pub fn format_fig7(rows: &[Fig7Row]) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:<28} {:>5} | {:>12} {:>12} | {:>8}",
        "problem", "dtype", "compiler(ms)", "primitive", "speedup"
    );
    for r in rows {
        let _ = writeln!(
            s,
            "{:<28} {:>5} | {:>12.4} {:>12.4} | {:>7.2}x",
            r.name,
            r.precision.to_string(),
            r.compiler.projected_ms,
            r.baseline.projected_ms,
            r.speedup(),
        );
    }
    let _ = writeln!(
        s,
        "geomean compiler/primitive speedup: {:.3}x",
        geomean(rows.iter().map(Fig7Row::speedup))
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean([2.0, 8.0]) - 4.0).abs() < 1e-9);
        assert_eq!(geomean(Vec::<f64>::new()), 1.0);
    }

    #[test]
    fn measure_runs_one_tiny_config() {
        let mut h = Harness::quick();
        h.threads = Some(1);
        let g = workloads::single_matmul(16, 16, 16, Precision::F32, 1);
        let m = h.measure(Setting::Full, g, 2.0 * 16.0 * 16.0 * 16.0, 1);
        assert!(m.projected_ms > 0.0);
        assert!(m.wall_ms >= 0.0);
        assert_eq!(m.dispatches, 1);
        let g = workloads::single_matmul(16, 16, 16, Precision::F32, 1);
        let b = h.measure(Setting::Baseline, g, 2.0 * 16.0 * 16.0 * 16.0, 1);
        assert!(b.dispatches >= 1);
    }
}
